package camps_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"camps"
	"camps/internal/sim"
)

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	rc := quick("HM1", camps.CAMPS)
	a, err := camps.RunContext(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := camps.RunContext(context.Background(), quick("HM1", camps.CAMPS))
	if err != nil {
		t.Fatal(err)
	}
	if a.GeoMeanIPC != b.GeoMeanIPC || a.RowConflicts != b.RowConflicts || a.ElapsedSim != b.ElapsedSim {
		t.Fatal("RunContext(Background) diverged from Run")
	}
}

func TestRunContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := camps.RunContext(ctx, quick("HM1", camps.BASE))
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// pollCtx is a deterministic context: Err flips to Canceled after the
// Nth poll, letting the test pin exactly which epoch observes the
// cancellation without wall-clock races.
type pollCtx struct {
	context.Context
	polls       atomic.Int64
	cancelAfter int64
	done        chan struct{}
}

func newPollCtx(after int64) *pollCtx {
	return &pollCtx{Context: context.Background(), cancelAfter: after, done: make(chan struct{})}
}

func (c *pollCtx) Done() <-chan struct{} { return c.done }

func (c *pollCtx) Err() error {
	if c.polls.Add(1) > c.cancelAfter {
		return context.Canceled
	}
	return nil
}

func TestRunContextHaltsWithinOneEpoch(t *testing.T) {
	// Baseline: how long the run takes unperturbed.
	full, err := camps.RunContext(context.Background(), quick("HM1", camps.BASE))
	if err != nil {
		t.Fatal(err)
	}

	const epoch = 1 * sim.Microsecond
	if full.ElapsedSim < 10*epoch {
		t.Fatalf("baseline too short (%v) to observe mid-run cancellation", full.ElapsedSim)
	}

	// RunContext polls Err once up front and once per core during warmup
	// (9 polls for the 8-core system); the watcher's first poll during the
	// measured region is number 10, at 1us of simulated time. Cancelling
	// on poll 12 means the run must halt at the third epoch tick — 3us —
	// far before the baseline end.
	ctx := newPollCtx(11)
	rc := quick("HM1", camps.BASE)
	rc.EpochInterval = epoch
	_, err = camps.RunContext(ctx, rc)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "cancelled at 3000.000ns") {
		t.Fatalf("run did not halt at the first epoch after cancellation: %v", err)
	}
}

func TestRunContextCancelMidRunWallClock(t *testing.T) {
	// A large instruction budget that would take many seconds to drain;
	// cancellation must cut it short.
	rc := quick("HM2", camps.CAMPSMOD)
	rc.MeasureInstr = 50_000_000
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := camps.RunContext(ctx, rc)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancelled run still took %v", elapsed)
	}
}

func TestTypedErrors(t *testing.T) {
	// Invalid configuration: message preserved, sentinel matched.
	rc := quick("HM1", camps.BASE)
	rc.System = camps.DefaultSystem()
	rc.System.Processor.Cores = -1
	_, err := camps.RunContext(context.Background(), rc)
	if err == nil || !errors.Is(err, camps.ErrInvalidConfig) {
		t.Fatalf("err = %v, want ErrInvalidConfig match", err)
	}
	if !strings.HasPrefix(err.Error(), "camps: ") || !strings.Contains(err.Error(), "cores must be positive") {
		t.Fatalf("message changed: %q", err.Error())
	}

	// Mix/core mismatch.
	rc2 := quick("HM1", camps.BASE)
	rc2.Mix.Benchmarks = rc2.Mix.Benchmarks[:3]
	_, err = camps.RunContext(context.Background(), rc2)
	if err == nil || !errors.Is(err, camps.ErrMixCoreMismatch) {
		t.Fatalf("err = %v, want ErrMixCoreMismatch match", err)
	}
	if !strings.Contains(err.Error(), "has 3 benchmarks, system has 8 cores") {
		t.Fatalf("message changed: %q", err.Error())
	}

	// Unknown mix, via the re-exported sentinel.
	_, err = camps.MixByID("nope")
	if err == nil || !errors.Is(err, camps.ErrUnknownMix) {
		t.Fatalf("err = %v, want ErrUnknownMix match", err)
	}
	if _, err := camps.AnyMixByID("nope"); !errors.Is(err, camps.ErrUnknownMix) {
		t.Fatalf("AnyMixByID err = %v, want ErrUnknownMix match", err)
	}
}
