module camps

go 1.22
