package camps_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"camps"
)

// goldenRun is the fixed configuration whose exported metrics are pinned
// in testdata/golden_mx1_campsmod.json. It matches TestGoldenDeterminism's
// run so the two tests cross-check each other.
func goldenRun() camps.RunConfig {
	rc := camps.RunConfig{
		Scheme:       camps.CAMPSMOD,
		WarmupRefs:   2_000,
		MeasureInstr: 30_000,
		Seed:         42,
	}
	mix, _ := camps.MixByID("MX1")
	rc.Mix = mix
	return rc
}

// TestSameSeedExportByteIdentical asserts the determinism contract at the
// export layer: two runs of the same seed must marshal to byte-identical
// JSON, and that JSON must match the committed golden snapshot. The golden
// was captured after the sim.NewClock rational-period fix (the old
// truncated 333 ps period ran the 3 GHz core at 3.003 GHz, so every
// pre-fix timing number was slightly off); any future behaviour change —
// intended or not — must update it deliberately:
//
//	UPDATE_GOLDEN=1 go test -run TestSameSeedExportByteIdentical .
func TestSameSeedExportByteIdentical(t *testing.T) {
	rc := goldenRun()
	a, err := camps.RunContext(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := camps.RunContext(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("same-seed runs exported different JSON:\nrun A:\n%s\nrun B:\n%s", aj, bj)
	}
	if a.EventsFired == 0 || a.EventsFired != b.EventsFired {
		t.Fatalf("EventsFired not deterministic: %d vs %d", a.EventsFired, b.EventsFired)
	}

	golden := filepath.Join("testdata", "golden_mx1_campsmod.json")
	want := append(aj, '\n')
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, want, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", golden)
		return
	}
	have, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden snapshot (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(have, want) {
		t.Errorf("export differs from committed golden %s.\nIf the behaviour change is intentional, regenerate with UPDATE_GOLDEN=1.\ngolden:\n%s\ngot:\n%s",
			golden, have, want)
	}
}
