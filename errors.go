package camps

import (
	"errors"

	"camps/internal/fault"
	"camps/internal/sim"
	"camps/internal/workload"
)

// Sentinel errors for the public API. Every error Run/RunContext returns
// keeps its original human-readable message and additionally matches one
// of these under errors.Is, so callers can branch on the failure class
// without parsing strings.
var (
	// ErrInvalidConfig matches every SystemConfig validation failure.
	ErrInvalidConfig = errors.New("camps: invalid configuration")
	// ErrMixCoreMismatch matches a workload (mix or explicit readers)
	// whose width differs from the configured core count.
	ErrMixCoreMismatch = errors.New("camps: workload does not match core count")
	// ErrUnknownMix matches failed mix lookups (MixByID, AnyMixByID).
	ErrUnknownMix = workload.ErrUnknownMix
	// ErrInvariant matches a run aborted by the epoch invariant checker:
	// a structural property of the simulation (request accounting, buffer
	// occupancy, table bounds, clock monotonicity) was violated. The full
	// violation is available via errors.As with *sim.InvariantError.
	ErrInvariant = sim.ErrInvariant
	// ErrBadFaultSpec matches every fault-spec parse or validation failure
	// (RunConfig.Faults and the CLIs' -faults grammar).
	ErrBadFaultSpec = fault.ErrBadSpec
)

// apiError pairs an unchanged legacy message with the sentinels (and,
// where applicable, the underlying cause) it should match under errors.Is.
type apiError struct {
	msg  string
	refs []error
}

func (e *apiError) Error() string   { return e.msg }
func (e *apiError) Unwrap() []error { return e.refs }
