// Benchmarks that regenerate every table and figure of the CAMPS paper's
// evaluation, plus the ablations DESIGN.md calls out. Each benchmark
// iteration is one full system simulation at a reduced (but
// shape-preserving) instruction budget; the figures' values are attached
// via b.ReportMetric, so `go test -bench` output doubles as the numeric
// series behind each figure. cmd/campbench prints the same series as
// aligned tables at full budget.
//
//	go test -bench=Figure5 -benchtime=1x
//	go test -bench=Ablation -benchtime=1x
package camps_test

import (
	"context"
	"fmt"
	"testing"

	"camps"
	"camps/internal/sim"
)

// benchInstr is the per-core measured budget for benchmark runs: large
// enough for stable scheme ordering, small enough to keep the full suite
// in minutes.
const benchInstr = 120_000

func benchRun(b *testing.B, sys camps.SystemConfig, mixID string, s camps.Scheme) camps.Results {
	b.Helper()
	mix, err := camps.MixByID(mixID)
	if err != nil {
		b.Fatal(err)
	}
	res, err := camps.RunContext(context.Background(), camps.RunConfig{
		System:       sys,
		Scheme:       s,
		Mix:          mix,
		WarmupRefs:   20_000,
		MeasureInstr: benchInstr,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1 exercises the Table I configuration end to end: one run
// of the default system, reporting the simulated-vs-wall time ratio.
func BenchmarkTable1DefaultSystem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchRun(b, camps.DefaultSystem(), "MX1", camps.CAMPSMOD)
		b.ReportMetric(float64(res.ElapsedSim)/1e6, "sim_us/op")
		b.ReportMetric(res.GeoMeanIPC, "ipc")
	}
}

// BenchmarkTable2 regenerates the Table II workload set: every mix under
// the paper's proposal, reporting per-mix MPKI (the classification basis).
func BenchmarkTable2Workloads(b *testing.B) {
	for _, mix := range camps.Mixes() {
		mix := mix
		b.Run(mix.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := benchRun(b, camps.DefaultSystem(), mix.ID, camps.CAMPSMOD)
				mean := 0.0
				for _, v := range res.MPKI {
					mean += v / float64(len(res.MPKI))
				}
				b.ReportMetric(mean, "mpki")
				b.ReportMetric(res.GeoMeanIPC, "ipc")
			}
		})
	}
}

// BenchmarkFigure5 regenerates the normalized-speedup figure: every mix
// under every scheme; the speedup column is IPC relative to the same mix
// under BASE (recomputed per iteration so the metric is self-contained).
func BenchmarkFigure5Speedup(b *testing.B) {
	for _, mix := range camps.Mixes() {
		for _, s := range camps.Schemes() {
			mix, s := mix, s
			b.Run(fmt.Sprintf("%s/%v", mix.ID, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					base := benchRun(b, camps.DefaultSystem(), mix.ID, camps.BASE)
					res := benchRun(b, camps.DefaultSystem(), mix.ID, s)
					b.ReportMetric(res.GeoMeanIPC/base.GeoMeanIPC, "speedup")
					b.ReportMetric(res.GeoMeanIPC, "ipc")
				}
			})
		}
	}
}

// BenchmarkFigure6 regenerates the row-buffer-conflict figure for the
// open-page schemes (BASE excluded, as in the paper).
func BenchmarkFigure6Conflicts(b *testing.B) {
	schemes := []camps.Scheme{camps.BASEHIT, camps.MMD, camps.CAMPS, camps.CAMPSMOD}
	for _, mix := range camps.Mixes() {
		for _, s := range schemes {
			mix, s := mix, s
			b.Run(fmt.Sprintf("%s/%v", mix.ID, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := benchRun(b, camps.DefaultSystem(), mix.ID, s)
					demand := res.VaultStats.BufferHits.Value() + res.VaultStats.BufferMisses.Value()
					b.ReportMetric(100*float64(res.RowConflicts)/float64(demand), "conflict_pct")
				}
			})
		}
	}
}

// BenchmarkFigure7 regenerates the prefetching-accuracy figure.
func BenchmarkFigure7Accuracy(b *testing.B) {
	for _, mix := range camps.Mixes() {
		for _, s := range camps.Schemes() {
			mix, s := mix, s
			b.Run(fmt.Sprintf("%s/%v", mix.ID, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := benchRun(b, camps.DefaultSystem(), mix.ID, s)
					b.ReportMetric(res.PrefetchAccuracy*100, "row_acc_pct")
					b.ReportMetric(res.LineAccuracy*100, "line_acc_pct")
				}
			})
		}
	}
}

// BenchmarkFigure8 regenerates the AMAT-reduction figure (MMD and
// CAMPS-MOD vs BASE, as plotted in the paper).
func BenchmarkFigure8AMAT(b *testing.B) {
	for _, mix := range camps.Mixes() {
		for _, s := range []camps.Scheme{camps.MMD, camps.CAMPSMOD} {
			mix, s := mix, s
			b.Run(fmt.Sprintf("%s/%v", mix.ID, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					base := benchRun(b, camps.DefaultSystem(), mix.ID, camps.BASE)
					res := benchRun(b, camps.DefaultSystem(), mix.ID, s)
					b.ReportMetric(100*(base.AMATps-res.AMATps)/base.AMATps, "amat_reduction_pct")
					b.ReportMetric(res.AMATps/1000, "amat_ns")
				}
			})
		}
	}
}

// BenchmarkFigure9 regenerates the normalized-energy figure (BASE, MMD,
// CAMPS-MOD, as plotted in the paper).
func BenchmarkFigure9Energy(b *testing.B) {
	for _, mix := range camps.Mixes() {
		for _, s := range []camps.Scheme{camps.BASE, camps.MMD, camps.CAMPSMOD} {
			mix, s := mix, s
			b.Run(fmt.Sprintf("%s/%v", mix.ID, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					base := benchRun(b, camps.DefaultSystem(), mix.ID, camps.BASE)
					res := benchRun(b, camps.DefaultSystem(), mix.ID, s)
					b.ReportMetric(res.Energy.Total()/base.Energy.Total(), "energy_vs_base")
				}
			})
		}
	}
}

// BenchmarkAblation covers the design-choice sweeps DESIGN.md lists beyond
// the paper's own figures.
func BenchmarkAblation(b *testing.B) {
	const mixID = "HM2"

	b.Run("CTEntries", func(b *testing.B) {
		for _, n := range []int{8, 16, 32, 64} {
			n := n
			b.Run(fmt.Sprintf("%d", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sys := camps.DefaultSystem()
					sys.CAMPS.CTEntries = n
					res := benchRun(b, sys, mixID, camps.CAMPSMOD)
					b.ReportMetric(res.GeoMeanIPC, "ipc")
					b.ReportMetric(res.PrefetchAccuracy*100, "row_acc_pct")
				}
			})
		}
	})

	b.Run("UtilThreshold", func(b *testing.B) {
		for _, th := range []int{1, 2, 4, 8} {
			th := th
			b.Run(fmt.Sprintf("%d", th), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sys := camps.DefaultSystem()
					sys.CAMPS.UtilThreshold = th
					res := benchRun(b, sys, mixID, camps.CAMPSMOD)
					b.ReportMetric(res.GeoMeanIPC, "ipc")
					b.ReportMetric(float64(res.PrefetchesIssued), "fetches")
				}
			})
		}
	})

	b.Run("BufferEntries", func(b *testing.B) {
		for _, entries := range []int64{8, 16, 32} {
			entries := entries
			b.Run(fmt.Sprintf("%d", entries), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sys := camps.DefaultSystem()
					sys.PFBuffer.SizeBytes = entries * int64(sys.PFBuffer.LineBytes)
					res := benchRun(b, sys, mixID, camps.CAMPSMOD)
					b.ReportMetric(res.GeoMeanIPC, "ipc")
					b.ReportMetric(res.BufferHitRate*100, "bufhit_pct")
				}
			})
		}
	})

	// Replacement policy under buffer pressure: the CAMPS engine with LRU
	// (CAMPS) against utilization+recency (CAMPS-MOD) at half the paper's
	// buffer size — this is the CAMPS vs CAMPS-MOD ablation.
	b.Run("ReplacementPolicy", func(b *testing.B) {
		for _, s := range []camps.Scheme{camps.CAMPS, camps.CAMPSMOD} {
			s := s
			b.Run(s.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sys := camps.DefaultSystem()
					sys.PFBuffer.SizeBytes = 8 * int64(sys.PFBuffer.LineBytes)
					res := benchRun(b, sys, mixID, s)
					b.ReportMetric(res.GeoMeanIPC, "ipc")
					b.ReportMetric(res.PrefetchAccuracy*100, "row_acc_pct")
				}
			})
		}
	})

	// Eviction writeback policy: the paper's write-everything-back buffer
	// against a dirty-tracking buffer.
	b.Run("WritebackPolicy", func(b *testing.B) {
		for _, dirtyOnly := range []bool{false, true} {
			dirtyOnly := dirtyOnly
			name := "all"
			if dirtyOnly {
				name = "dirty-only"
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sys := camps.DefaultSystem()
					sys.PFBuffer.WritebackDirtyOnly = dirtyOnly
					res := benchRun(b, sys, mixID, camps.BASE)
					b.ReportMetric(res.GeoMeanIPC, "ipc")
					b.ReportMetric(res.Energy.Total()/1e9, "energy_mJ")
				}
			})
		}
	})
}

// BenchmarkAblationExtra sweeps the infrastructure options the paper holds
// fixed: page policy, scheduler and address interleave, plus the
// no-prefetch reference point.
func BenchmarkAblationExtra(b *testing.B) {
	const mixID = "HM2"

	b.Run("NoPrefetchReference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			none := benchRun(b, camps.DefaultSystem(), mixID, camps.NONE)
			mod := benchRun(b, camps.DefaultSystem(), mixID, camps.CAMPSMOD)
			b.ReportMetric(mod.GeoMeanIPC/none.GeoMeanIPC, "speedup_vs_none")
		}
	})

	b.Run("PagePolicy", func(b *testing.B) {
		for _, pp := range []struct {
			name string
			p    int
		}{{"open", 0}, {"closed", 1}} {
			pp := pp
			b.Run(pp.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sys := camps.DefaultSystem()
					sys.HMC.PagePolicy = camps.PagePolicy(pp.p)
					res := benchRun(b, sys, mixID, camps.CAMPSMOD)
					b.ReportMetric(res.GeoMeanIPC, "ipc")
				}
			})
		}
	})

	b.Run("Scheduler", func(b *testing.B) {
		for _, sp := range []struct {
			name string
			p    int
		}{{"frfcfs", 0}, {"fcfs", 1}} {
			sp := sp
			b.Run(sp.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sys := camps.DefaultSystem()
					sys.HMC.Scheduler = camps.SchedPolicy(sp.p)
					res := benchRun(b, sys, mixID, camps.CAMPSMOD)
					b.ReportMetric(res.GeoMeanIPC, "ipc")
				}
			})
		}
	})

	b.Run("Interleave", func(b *testing.B) {
		for _, il := range []struct {
			name string
			p    int
		}{{"RoRaBaVaCo", 0}, {"RoRaVaBaCo", 1}, {"VaultXOR", 2}} {
			il := il
			b.Run(il.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sys := camps.DefaultSystem()
					sys.HMC.Interleave = camps.AddressInterleave(il.p)
					res := benchRun(b, sys, mixID, camps.CAMPSMOD)
					b.ReportMetric(res.GeoMeanIPC, "ipc")
					demand := res.VaultStats.BufferHits.Value() + res.VaultStats.BufferMisses.Value()
					b.ReportMetric(100*float64(res.RowConflicts)/float64(demand), "conflict_pct")
				}
			})
		}
	})
}

// BenchmarkAblationLinkPower measures the link power-management extension:
// energy saved and latency cost of letting idle link directions sleep.
func BenchmarkAblationLinkPower(b *testing.B) {
	for _, mode := range []struct {
		name  string
		sleep int64 // ns; 0 = disabled
	}{{"always-on", 0}, {"sleep-1us", 1000}, {"sleep-10ns", 10}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := camps.DefaultSystem()
				sys.Links.SleepAfter = sim.Time(mode.sleep) * sim.Nanosecond
				sys.Links.WakeLatency = 25 * sim.Nanosecond
				res := benchRun(b, sys, "LM2", camps.CAMPSMOD)
				b.ReportMetric(res.GeoMeanIPC, "ipc")
				b.ReportMetric(res.Energy.Total()/1e9, "energy_mJ")
				b.ReportMetric(res.AMATps/1000, "amat_ns")
			}
		})
	}
}

// BenchmarkAblationTSVBandwidth tests the paper's core premise — that the
// TSVs provide effectively unlimited internal bandwidth for whole-row
// prefetching. Narrowing the modeled per-vault data path shows where the
// premise breaks and row-granularity prefetching stops paying.
func BenchmarkAblationTSVBandwidth(b *testing.B) {
	for _, mode := range []struct {
		name string
		gbps int64
	}{{"unlimited", 0}, {"40GBps", 40}, {"10GBps", 10}, {"2GBps", 2}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := camps.DefaultSystem()
				sys.HMC.TSVGBps = mode.gbps
				res := benchRun(b, sys, "HM1", camps.CAMPSMOD)
				b.ReportMetric(res.GeoMeanIPC, "ipc")
				b.ReportMetric(res.AMATps/1000, "amat_ns")
				b.ReportMetric(res.BufferHitRate*100, "bufhit_pct")
			}
		})
	}
}

// BenchmarkCoreSideVsMemorySide runs the comparison the paper's §2.4
// motivates: a classic core-side stride prefetcher (with no memory-side
// scheme), the paper's memory-side CAMPS-MOD (with no core-side engine),
// and both together, against the no-prefetch reference.
func BenchmarkCoreSideVsMemorySide(b *testing.B) {
	for _, mode := range []struct {
		name   string
		scheme camps.Scheme
		degree int
	}{
		{"none", camps.NONE, 0},
		{"core-side-stride", camps.NONE, 2},
		{"memory-side-campsmod", camps.CAMPSMOD, 0},
		{"both", camps.CAMPSMOD, 2},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := camps.DefaultSystem()
				sys.Processor.L2PrefetchDegree = mode.degree
				res := benchRun(b, sys, "HM1", mode.scheme)
				b.ReportMetric(res.GeoMeanIPC, "ipc")
				b.ReportMetric(res.AMATps/1000, "amat_ns")
			}
		})
	}
}
