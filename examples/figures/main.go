// Figures: run a reduced version of the paper's evaluation grid (two
// representative mixes, all five schemes) and render Figure 5 and Figure 9
// as ASCII bar charts — the quickest way to *see* the reproduction.
package main

import (
	"context"
	"fmt"
	"log"

	"camps/internal/harness"
	"camps/internal/plot"
	"camps/internal/workload"
)

func main() {
	log.SetFlags(0)

	hm1, _ := workload.MixByID("HM1")
	mx1, _ := workload.MixByID("MX1")
	grid, err := harness.RunContext(context.Background(), harness.Options{
		Mixes:        []workload.Mix{hm1, mx1},
		MeasureInstr: 150_000, // reduced budget: this is a demo
		Progress: func(cr harness.CellResult) {
			fmt.Printf("  finished %s under %v (IPC %.4f)\n", cr.Mix, cr.Scheme, cr.Results.GeoMeanIPC)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println(plot.Bars(grid.Figure5(), plot.Options{
		Width: 36, UseBaseline: true, Baseline: 1.0,
	}))
	fmt.Println(plot.Bars(grid.Figure9(), plot.Options{
		Width: 36, UseBaseline: true, Baseline: 1.0,
	}))
	fmt.Println("Bars to the right of '|' are better than BASE on Figure 5,")
	fmt.Println("and worse (more energy) on Figure 9.")
}
