// Parameter sweep: sensitivity of CAMPS to its two hardware knobs — the
// RUT utilization threshold (paper default 4) and the conflict-table size
// (paper default 32 entries per vault). These are the ablations DESIGN.md
// calls out beyond the paper's own evaluation.
//
// The sweeps run through the experiment orchestrator (internal/exp), so
// the cells of each sweep execute in parallel and Ctrl-C cancels the
// campaign mid-simulation.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"camps"
	"camps/internal/exp"
)

func sweep(ctx context.Context, mix camps.Mix, knob string, values []int64,
	apply func(*camps.SystemConfig, int64)) []exp.CellResult {
	cells := exp.Sweep(mix, camps.CAMPSMOD, 1, knob, values, apply)
	results, _, err := exp.Run(ctx, cells, exp.Options{MeasureInstr: 150_000})
	if err != nil {
		log.Fatal(err)
	}
	return results
}

func main() {
	log.SetFlags(0)
	const mixID = "HM2"
	mix, err := camps.MixByID(mixID)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("CAMPS-MOD sensitivity on %s\n\n", mixID)

	fmt.Println("RUT utilization threshold (paper: 4):")
	fmt.Printf("%10s %10s %12s %12s\n", "threshold", "IPC", "fetches", "accuracy")
	for _, cr := range sweep(ctx, mix, "threshold", []int64{1, 2, 4, 8},
		func(sys *camps.SystemConfig, v int64) { sys.CAMPS.UtilThreshold = int(v) }) {
		r := cr.Results
		fmt.Printf("%10d %10.4f %12d %11.1f%%\n",
			cr.Value, r.GeoMeanIPC, r.PrefetchesIssued, r.PrefetchAccuracy*100)
	}

	fmt.Println("\nconflict-table entries per vault (paper: 32):")
	fmt.Printf("%10s %10s %12s %12s\n", "entries", "IPC", "fetches", "accuracy")
	for _, cr := range sweep(ctx, mix, "ct", []int64{8, 16, 32, 64},
		func(sys *camps.SystemConfig, v int64) { sys.CAMPS.CTEntries = int(v) }) {
		r := cr.Results
		fmt.Printf("%10d %10.4f %12d %11.1f%%\n",
			cr.Value, r.GeoMeanIPC, r.PrefetchesIssued, r.PrefetchAccuracy*100)
	}
}
