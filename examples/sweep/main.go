// Parameter sweep: sensitivity of CAMPS to its two hardware knobs — the
// RUT utilization threshold (paper default 4) and the conflict-table size
// (paper default 32 entries per vault). These are the ablations DESIGN.md
// calls out beyond the paper's own evaluation.
package main

import (
	"fmt"
	"log"

	"camps"
)

func run(sys camps.SystemConfig, mixID string) camps.Results {
	mix, err := camps.MixByID(mixID)
	if err != nil {
		log.Fatal(err)
	}
	res, err := camps.Run(camps.RunConfig{
		System:       sys,
		Scheme:       camps.CAMPSMOD,
		Mix:          mix,
		MeasureInstr: 150_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	log.SetFlags(0)
	const mixID = "HM2"

	fmt.Printf("CAMPS-MOD sensitivity on %s\n\n", mixID)

	fmt.Println("RUT utilization threshold (paper: 4):")
	fmt.Printf("%10s %10s %12s %12s\n", "threshold", "IPC", "fetches", "accuracy")
	for _, th := range []int{1, 2, 4, 8} {
		sys := camps.DefaultSystem()
		sys.CAMPS.UtilThreshold = th
		r := run(sys, mixID)
		fmt.Printf("%10d %10.4f %12d %11.1f%%\n",
			th, r.GeoMeanIPC, r.PrefetchesIssued, r.PrefetchAccuracy*100)
	}

	fmt.Println("\nconflict-table entries per vault (paper: 32):")
	fmt.Printf("%10s %10s %12s %12s\n", "entries", "IPC", "fetches", "accuracy")
	for _, n := range []int{8, 16, 32, 64} {
		sys := camps.DefaultSystem()
		sys.CAMPS.CTEntries = n
		r := run(sys, mixID)
		fmt.Printf("%10d %10.4f %12d %11.1f%%\n",
			n, r.GeoMeanIPC, r.PrefetchesIssued, r.PrefetchAccuracy*100)
	}
}
