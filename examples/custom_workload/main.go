// Custom workload: build your own synthetic benchmark instead of using the
// SPEC CPU2006 stand-ins. This models a database-like mix per core — large
// sequential scans (high row utilization), an index working set that
// collides in DRAM banks (conflict-prone rows), and point lookups (random,
// prefetch-hostile) — and compares all five schemes on it.
package main

import (
	"context"
	"fmt"
	"log"

	"camps"
	"camps/internal/trace"
)

func main() {
	log.SetFlags(0)

	profile := trace.Profile{
		Name:           "dbscan",
		FootprintBytes: 96 << 20, // 96 MiB per core
		GapMean:        2.5,      // moderately compute-bound between accesses
		ReadFrac:       0.85,     // scan-heavy
		Streams:        4,        // four concurrent table scans
		StreamProb:     0.40,
		StrideBytes:    64,
		// An "index" region: four 1 KB row-sized structures that map to the
		// same bank and are accessed in an interleaved fashion — the
		// row-buffer ping-pong CAMPS's conflict table is built for.
		ConflictProb:    0.25,
		ConflictStreams: 4,
		ConflictStride:  512 << 10,
		LineBytes:       64,
	}
	if err := profile.Validate(); err != nil {
		log.Fatal(err)
	}

	cfg := camps.DefaultSystem()
	cores := cfg.Processor.Cores

	fmt.Printf("custom workload %q on %d cores\n\n", profile.Name, cores)
	fmt.Printf("%-10s %10s %12s %12s %10s\n", "scheme", "IPC", "conflicts", "accuracy", "energy")

	var baseIPC float64
	for _, s := range camps.Schemes() {
		// One generator per core, each in its own 512 MiB partition with
		// its own seed.
		readers := make([]trace.Reader, cores)
		for core := 0; core < cores; core++ {
			g, err := trace.NewGenerator(profile, uint64(core)<<29, uint64(7+core))
			if err != nil {
				log.Fatal(err)
			}
			readers[core] = g
		}
		res, err := camps.RunContext(context.Background(), camps.RunConfig{
			Scheme:       s,
			Readers:      readers,
			MeasureInstr: 200_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		if s == camps.BASE {
			baseIPC = res.GeoMeanIPC
		}
		fmt.Printf("%-10v %10.4f %12d %11.1f%% %9.2f\n",
			s, res.GeoMeanIPC, res.RowConflicts, res.PrefetchAccuracy*100,
			res.Energy.Total()/1e9)
	}
	_ = baseIPC
	fmt.Println("\nconflicts = row-buffer conflicts; energy in mJ")
}
