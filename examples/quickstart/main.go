// Quickstart: run one multiprogrammed workload under the paper's baseline
// (BASE) and under CAMPS-MOD, and report the headline comparison — the
// normalized speedup, row-buffer conflict reduction, and prefetch accuracy
// that Figures 5-7 of the paper are built from.
package main

import (
	"context"
	"fmt"
	"log"

	"camps"
)

func main() {
	log.SetFlags(0)

	mix, err := camps.MixByID("HM1")
	if err != nil {
		log.Fatal(err)
	}

	run := func(s camps.Scheme) camps.Results {
		res, err := camps.RunContext(context.Background(), camps.RunConfig{
			Scheme:       s,
			Mix:          mix,
			MeasureInstr: 200_000, // scaled-down measured region for a quick demo
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(camps.BASE)
	mod := run(camps.CAMPSMOD)

	fmt.Printf("workload %s: %v\n\n", mix.ID, mix.Benchmarks)
	fmt.Printf("%-22s %12s %12s\n", "", "BASE", "CAMPS-MOD")
	fmt.Printf("%-22s %12.4f %12.4f\n", "geomean IPC", base.GeoMeanIPC, mod.GeoMeanIPC)
	fmt.Printf("%-22s %12.1f %12.1f\n", "mean read latency ns", base.AMATps/1000, mod.AMATps/1000)
	fmt.Printf("%-22s %12d %12d\n", "row-buffer conflicts", base.RowConflicts, mod.RowConflicts)
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "prefetch accuracy", base.LineAccuracy*100, mod.LineAccuracy*100)
	fmt.Printf("%-22s %12d %12d\n", "rows prefetched", base.PrefetchesIssued, mod.PrefetchesIssued)
	fmt.Printf("%-22s %12.2f %12.2f\n", "energy (mJ)", base.Energy.Total()/1e9, mod.Energy.Total()/1e9)

	speedup := mod.GeoMeanIPC / base.GeoMeanIPC
	fmt.Printf("\nCAMPS-MOD speedup over BASE: %+.1f%%\n", (speedup-1)*100)
	fmt.Printf("(the paper reports +24.9%% for HM workloads on its gem5/SPEC setup)\n")
}
