// Policy comparison: isolate the paper's second contribution — the
// utilization+recency prefetch-buffer replacement policy — by running the
// same conflict-aware engine with LRU (CAMPS) and with utilization+recency
// (CAMPS-MOD) across several prefetch-buffer sizes. Smaller buffers put
// the replacement decision under more pressure, which is where the policy
// earns its keep.
package main

import (
	"context"
	"fmt"
	"log"

	"camps"
)

func main() {
	log.SetFlags(0)

	mix, err := camps.MixByID("HM3") // the most conflict-heavy mix (gcc/mcf/lbm/milc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("conflict-aware engine, LRU vs utilization+recency replacement")
	fmt.Printf("workload %s, prefetch-buffer size sweep\n\n", mix.ID)
	fmt.Printf("%8s %14s %14s %14s %14s\n",
		"entries", "CAMPS IPC", "CAMPS-MOD IPC", "CAMPS acc%", "CAMPS-MOD acc%")

	for _, entries := range []int64{4, 8, 16, 32} {
		sys := camps.DefaultSystem()
		sys.PFBuffer.SizeBytes = entries * int64(sys.PFBuffer.LineBytes)

		var ipc [2]float64
		var acc [2]float64
		for i, s := range []camps.Scheme{camps.CAMPS, camps.CAMPSMOD} {
			res, err := camps.RunContext(context.Background(), camps.RunConfig{
				System:       sys,
				Scheme:       s,
				Mix:          mix,
				MeasureInstr: 200_000,
			})
			if err != nil {
				log.Fatal(err)
			}
			ipc[i] = res.GeoMeanIPC
			acc[i] = res.LineAccuracy * 100
		}
		fmt.Printf("%8d %14.4f %14.4f %13.1f%% %13.1f%%\n",
			entries, ipc[0], ipc[1], acc[0], acc[1])
	}

	fmt.Println("\nThe 16-entry row is the paper's configuration (16 KB / 1 KB rows).")
}
