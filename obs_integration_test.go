package camps_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"camps"
	"camps/internal/obs"
	"camps/internal/report"
	"camps/internal/sim"
)

// TestRunWithObservability runs a small HM1 simulation with the full
// observability suite attached and checks the acceptance contract: at
// least one epoch snapshot carrying row-conflict and prefetch counters,
// events in the tracer, and valid JSONL / Chrome trace exports.
func TestRunWithObservability(t *testing.T) {
	rc := quick("HM1", camps.CAMPSMOD)
	suite := obs.NewSuite(0) // default window; must be wide enough to retain the last epoch marker
	rc.Obs = suite
	rc.EpochInterval = 2 * sim.Microsecond
	res, err := camps.RunContext(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}

	snaps := suite.Snapshots()
	if len(snaps) < 2 { // at least one epoch plus the final snapshot
		t.Fatalf("got %d snapshots, want >= 2 (epochs + final)", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if last.Tag != "final" {
		t.Errorf("last snapshot tag = %q, want final", last.Tag)
	}
	epochs := 0
	for _, s := range snaps {
		if s.Tag == "epoch" {
			epochs++
		}
	}
	if epochs < 1 {
		t.Errorf("no epoch snapshots recorded (epoch ticker not firing)")
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].AtPs < snaps[i-1].AtPs {
			t.Fatalf("snapshots out of order: %d ps after %d ps", snaps[i].AtPs, snaps[i-1].AtPs)
		}
	}

	// The registry aggregates must agree with the run's own results.
	if got := last.Counter("vault.row_conflicts"); got != res.RowConflicts {
		t.Errorf("vault.row_conflicts = %d, want %d from Results", got, res.RowConflicts)
	}
	if got := last.Counter("vault.buffer_hits"); got != res.VaultStats.BufferHits.Value() {
		t.Errorf("vault.buffer_hits = %d, want %d", got, res.VaultStats.BufferHits.Value())
	}
	for _, name := range []string{
		"vault.demand_reads", "vault.row_hits", "vault.fetches_issued",
		"pfbuffer.hits", "cache.l1_hits", "cpu.instructions", "hmc.reads",
	} {
		if last.Counter(name) == 0 {
			t.Errorf("counter %s = 0 after a full run", name)
		}
	}
	if hs, ok := last.Histograms["vault.service_latency_ps"]; !ok || hs.Count == 0 {
		t.Error("vault.service_latency_ps histogram empty or missing")
	}
	if hs, ok := last.Histograms["hmc.read_latency_ps"]; !ok || hs.Count == 0 {
		t.Error("hmc.read_latency_ps histogram empty or missing")
	} else if hs.P50 > hs.P99 || float64(hs.Count) < 1 {
		t.Errorf("read latency summary inconsistent: %+v", hs)
	}

	// The tracer must have seen DRAM and prefetch activity.
	if suite.Tracer.Total() == 0 {
		t.Fatal("tracer recorded no events")
	}
	byType := map[obs.EventType]int{}
	for _, ev := range suite.Tracer.Events() {
		byType[ev.Type]++
	}
	for _, ty := range []obs.EventType{obs.EvRowActivate, obs.EvPrefetchIssue, obs.EvEpoch} {
		if byType[ty] == 0 {
			t.Errorf("no %v events in trace window", ty)
		}
	}

	// Both export formats must be valid.
	var jsonl bytes.Buffer
	if err := suite.WriteMetrics(&jsonl); err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(jsonl.String()), "\n") {
		var s obs.Snapshot
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("metrics line %d invalid JSON: %v", i, err)
		}
	}
	var chrome bytes.Buffer
	if err := suite.Tracer.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != suite.Tracer.Len() {
		t.Errorf("chrome trace has %d events, tracer holds %d", len(doc.TraceEvents), suite.Tracer.Len())
	}

	// The epoch table renders without panicking and carries the epochs.
	tbl := report.Timeseries(snaps, []string{"vault.row_conflicts", "vault.buffer_hits"}, true)
	if tbl.Rows() != len(snaps) {
		t.Errorf("timeseries rows = %d, want %d", tbl.Rows(), len(snaps))
	}
}

// TestRunWithoutObservability: a nil Obs keeps the hot path untouched —
// the run must behave identically to a plain run (guard against
// instrumentation accidentally becoming load-bearing).
func TestRunWithoutObservability(t *testing.T) {
	plain, err := camps.RunContext(context.Background(), quick("LM1", camps.BASE))
	if err != nil {
		t.Fatal(err)
	}
	rc := quick("LM1", camps.BASE)
	rc.Obs = obs.NewSuite(0)
	observed, err := camps.RunContext(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if plain.GeoMeanIPC != observed.GeoMeanIPC || plain.RowConflicts != observed.RowConflicts ||
		plain.ElapsedSim != observed.ElapsedSim {
		t.Errorf("observability changed simulation results: ipc %g vs %g, conflicts %d vs %d, time %d vs %d",
			plain.GeoMeanIPC, observed.GeoMeanIPC, plain.RowConflicts, observed.RowConflicts,
			plain.ElapsedSim, observed.ElapsedSim)
	}
}
