package workload

import (
	"errors"
	"testing"

	"camps/internal/trace"
)

func TestAllBenchmarksValidate(t *testing.T) {
	for _, name := range Names() {
		b, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if err := b.Profile.Validate(); err != nil {
			t.Errorf("benchmark %s: %v", name, err)
		}
		if b.Profile.Name != name {
			t.Errorf("benchmark %s: profile name %q mismatched", name, b.Profile.Name)
		}
	}
	if len(Names()) != 15 {
		t.Fatalf("benchmark table has %d entries, want 15 (Table II)", len(Names()))
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("perlbench"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestMixesMatchTableII(t *testing.T) {
	ms := Mixes()
	if len(ms) != 12 {
		t.Fatalf("mix count = %d, want 12", len(ms))
	}
	wantIDs := []string{"HM1", "HM2", "HM3", "HM4", "LM1", "LM2", "LM3", "LM4", "MX1", "MX2", "MX3", "MX4"}
	for i, m := range ms {
		if m.ID != wantIDs[i] {
			t.Errorf("mix %d = %s, want %s", i, m.ID, wantIDs[i])
		}
		if len(m.Benchmarks) != 8 {
			t.Errorf("mix %s has %d cores, want 8", m.ID, len(m.Benchmarks))
		}
		for _, b := range m.Benchmarks {
			if _, err := Get(b); err != nil {
				t.Errorf("mix %s references unknown benchmark %s", m.ID, b)
			}
		}
	}
	// Spot-check exact rows against the paper's table.
	hm1, _ := MixByID("HM1")
	want := []string{"bwaves", "gems", "gcc", "lbm", "bwaves", "gcc", "lbm", "gems"}
	for i := range want {
		if hm1.Benchmarks[i] != want[i] {
			t.Fatalf("HM1 = %v, want %v", hm1.Benchmarks, want)
		}
	}
	mx3, _ := MixByID("MX3")
	want = []string{"milc", "lbm", "wrf", "bzip2", "lbm", "bzip2", "milc", "wrf"}
	for i := range want {
		if mx3.Benchmarks[i] != want[i] {
			t.Fatalf("MX3 = %v, want %v", mx3.Benchmarks, want)
		}
	}
}

func TestMixClassesAreConsistent(t *testing.T) {
	for _, m := range Mixes() {
		hm, lm := 0, 0
		for _, name := range m.Benchmarks {
			b, _ := Get(name)
			if b.Class == HighIntensity {
				hm++
			} else {
				lm++
			}
		}
		switch m.Group() {
		case "HM":
			if hm != 8 {
				t.Errorf("%s should be all HM, got %d HM / %d LM", m.ID, hm, lm)
			}
		case "LM":
			if lm != 8 {
				t.Errorf("%s should be all LM, got %d HM / %d LM", m.ID, hm, lm)
			}
		case "MX":
			if hm != 4 || lm != 4 {
				t.Errorf("%s should be 4 HM + 4 LM, got %d HM / %d LM", m.ID, hm, lm)
			}
		default:
			t.Errorf("unexpected group %q", m.Group())
		}
	}
}

func TestMixByIDUnknown(t *testing.T) {
	if _, err := MixByID("ZZ9"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

func TestGeneratorsPartitionAddressSpace(t *testing.T) {
	m, _ := MixByID("MX1")
	gens, err := m.Generators(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 8 {
		t.Fatalf("generators = %d, want 8", len(gens))
	}
	for core, g := range gens {
		lo := uint64(core) * coreRegion
		hi := lo + coreRegion
		for i := 0; i < 2000; i++ {
			rec, _ := g.Next()
			if rec.Addr < lo || rec.Addr >= hi {
				t.Fatalf("core %d address %#x outside its region [%#x,%#x)", core, rec.Addr, lo, hi)
			}
		}
	}
}

func TestSameBenchmarkDifferentCoresDiverge(t *testing.T) {
	m, _ := MixByID("HM1") // bwaves on cores 0 and 4
	gens, err := m.Generators(7)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := gens[0].Next()
	b, _ := gens[4].Next()
	// Relative offsets within each core region must differ (the streams
	// are decorrelated by the per-core sub-seed).
	offA := a.Addr % coreRegion
	offB := b.Addr % coreRegion
	same := 0
	for i := 0; i < 100; i++ {
		ra, _ := gens[0].Next()
		rb, _ := gens[4].Next()
		if ra.Addr%coreRegion == rb.Addr%coreRegion {
			same++
		}
	}
	if offA == offB && same > 50 {
		t.Fatal("identical benchmark instances produced correlated streams")
	}
}

func TestGeneratorsDeterministicAcrossCalls(t *testing.T) {
	m, _ := MixByID("LM2")
	g1, _ := m.Generators(99)
	g2, _ := m.Generators(99)
	for core := range g1 {
		for i := 0; i < 500; i++ {
			a, _ := g1[core].Next()
			b, _ := g2[core].Next()
			if a != b {
				t.Fatalf("core %d diverged at %d", core, i)
			}
		}
	}
}

func TestFootprintsMatchIntensityClasses(t *testing.T) {
	// HM benchmarks must vastly exceed a core's shared-L3 slice (2 MiB);
	// LM benchmarks must be within an order of magnitude of it.
	for _, name := range Names() {
		b, _ := Get(name)
		if b.Class == HighIntensity && b.Profile.FootprintBytes < 64*mib {
			t.Errorf("%s: HM footprint %d too small to defeat the L3", name, b.Profile.FootprintBytes)
		}
		if b.Class == LowIntensity && b.Profile.FootprintBytes > 16*mib {
			t.Errorf("%s: LM footprint %d too large to be low-intensity", name, b.Profile.FootprintBytes)
		}
	}
}

func TestClassString(t *testing.T) {
	if HighIntensity.String() != "HM" || LowIntensity.String() != "LM" {
		t.Fatal("class strings wrong")
	}
}

func TestMixGenerationFitsCube(t *testing.T) {
	// 8 cores x 512MiB regions = exactly the 4 GiB cube.
	var _ = trace.Profile{}
	if 8*coreRegion != 4<<30 {
		t.Fatalf("core regions (%d) do not tile the 4GiB cube", 8*coreRegion)
	}
	for _, name := range Names() {
		b, _ := Get(name)
		if b.Profile.FootprintBytes > coreRegion {
			t.Errorf("%s footprint exceeds its core region", name)
		}
	}
}

func TestExtensionBenchmarksValidate(t *testing.T) {
	names := ExtensionNames()
	if len(names) != 4 {
		t.Fatalf("extension benchmarks = %v", names)
	}
	for _, name := range names {
		b, err := GetAny(name)
		if err != nil {
			t.Fatalf("GetAny(%q): %v", name, err)
		}
		if err := b.Profile.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Extensions must not leak into the Table II set.
		if _, err := Get(name); err == nil {
			t.Errorf("%s leaked into the paper's benchmark table", name)
		}
	}
	// GetAny still resolves Table II names.
	if _, err := GetAny("mcf"); err != nil {
		t.Fatal("GetAny lost the Table II set")
	}
	if _, err := GetAny("nope"); err == nil {
		t.Fatal("GetAny accepted unknown name")
	}
}

func TestExtensionMixesRunnable(t *testing.T) {
	ms := ExtensionMixes()
	if len(ms) != 2 {
		t.Fatalf("extension mixes = %v", ms)
	}
	for _, m := range ms {
		if len(m.Benchmarks) != 8 {
			t.Fatalf("%s has %d cores", m.ID, len(m.Benchmarks))
		}
		gens, err := m.Generators(3)
		if err != nil {
			t.Fatalf("%s: %v", m.ID, err)
		}
		for _, g := range gens {
			if _, err := g.Next(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := AnyMixByID("DC1"); err != nil {
		t.Fatal("AnyMixByID lost DC1")
	}
	if _, err := AnyMixByID("HM1"); err != nil {
		t.Fatal("AnyMixByID lost Table II mixes")
	}
	if _, err := AnyMixByID("ZZ"); err == nil {
		t.Fatal("AnyMixByID accepted unknown mix")
	}
	// Table II stays exactly twelve mixes.
	if len(Mixes()) != 12 {
		t.Fatal("extension mixes leaked into Table II")
	}
}

func TestUnknownMixTypedError(t *testing.T) {
	for _, lookup := range []func(string) (Mix, error){MixByID, AnyMixByID} {
		_, err := lookup("ZZ9")
		if err == nil {
			t.Fatal("lookup of bogus mix succeeded")
		}
		if !errors.Is(err, ErrUnknownMix) {
			t.Fatalf("error %v does not match ErrUnknownMix", err)
		}
		var ume *UnknownMixError
		if !errors.As(err, &ume) || ume.ID != "ZZ9" {
			t.Fatalf("error %v does not carry the identifier", err)
		}
		if got, want := err.Error(), `workload: unknown mix "ZZ9"`; got != want {
			t.Fatalf("message changed: %q, want %q", got, want)
		}
	}
	if _, err := MixByID("HM1"); err != nil {
		t.Fatalf("HM1 lookup failed: %v", err)
	}
}
