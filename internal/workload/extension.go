package workload

import (
	"fmt"
	"sort"

	"camps/internal/trace"
)

// Extension benchmarks: datacenter-style profiles beyond the paper's SPEC
// CPU2006 set, for exercising the public API on modern-looking traffic
// (the paper's introduction motivates big-data applications). They are
// kept out of the Table II set so the reproduction figures stay faithful.
var extensions = map[string]Benchmark{
	// In-memory cache: huge footprint, almost pure random point lookups —
	// prefetch-hostile by construction.
	"memcached": {Class: HighIntensity, Profile: trace.Profile{
		Name: "memcached", FootprintBytes: 384 * mib, GapMean: 2.2, ReadFrac: 0.90,
		Streams: 2, StreamProb: 0.08, StrideBytes: line,
		ConflictProb: 0.04, ConflictStreams: 3, ConflictStride: bankStride, LineBytes: line}},
	// LSM-ish key-value store: compaction scans (streams) over a large
	// footprint plus index ping-pong (conflict groups) and random gets.
	"kvstore": {Class: HighIntensity, Profile: trace.Profile{
		Name: "kvstore", FootprintBytes: 256 * mib, GapMean: 2.0, ReadFrac: 0.70,
		Streams: 4, StreamProb: 0.45, StrideBytes: line,
		ConflictProb: 0.25, ConflictStreams: 4, ConflictStride: bankStride, LineBytes: line}},
	// Column-scan analytics: long sequential sweeps, read-dominated.
	"analytics": {Class: HighIntensity, Profile: trace.Profile{
		Name: "analytics", FootprintBytes: 448 * mib, GapMean: 1.6, ReadFrac: 0.95,
		Streams: 6, StreamProb: 0.78, StrideBytes: line,
		ConflictProb: 0.08, ConflictStreams: 3, ConflictStride: bankStride, LineBytes: line}},
	// Web front end: small hot working set, mostly cache-resident.
	"webfront": {Class: LowIntensity, Profile: trace.Profile{
		Name: "webfront", FootprintBytes: 3 * mib, GapMean: 5.0, ReadFrac: 0.82,
		Streams: 3, StreamProb: 0.50, StrideBytes: line,
		ConflictProb: 0.12, ConflictStreams: 3, ConflictStride: bankStride, LineBytes: line}},
}

// ExtensionNames returns the extension benchmark names, sorted.
func ExtensionNames() []string {
	out := make([]string, 0, len(extensions))
	for n := range extensions {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// GetAny returns a benchmark from either the Table II set or the
// extension set.
func GetAny(name string) (Benchmark, error) {
	if b, ok := benchmarks[name]; ok {
		return b, nil
	}
	if b, ok := extensions[name]; ok {
		return b, nil
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// extensionMixes are eight-core datacenter mixes, named DC*.
var extensionMixes = []Mix{
	{"DC1", []string{"memcached", "kvstore", "analytics", "webfront",
		"memcached", "kvstore", "analytics", "webfront"}},
	{"DC2", []string{"analytics", "analytics", "kvstore", "kvstore",
		"memcached", "memcached", "webfront", "webfront"}},
}

// ExtensionMixes returns the datacenter mixes.
func ExtensionMixes() []Mix {
	out := make([]Mix, len(extensionMixes))
	copy(out, extensionMixes)
	return out
}

// AnyMixByID looks a mix up across both Table II and the extension set.
func AnyMixByID(id string) (Mix, error) {
	if m, err := MixByID(id); err == nil {
		return m, nil
	}
	for _, m := range extensionMixes {
		if m.ID == id {
			return m, nil
		}
	}
	return Mix{}, &UnknownMixError{ID: id}
}
