// Package workload defines the synthetic stand-ins for the SPEC CPU2006
// benchmarks the paper uses and the twelve eight-core multiprogrammed
// mixes of Table II (HM1-4, LM1-4, MX1-4).
//
// SPEC traces are proprietary, so each benchmark is characterized by a
// trace.Profile capturing the properties that matter to the mechanisms
// under study: footprint (memory intensity class against the 16 MB shared
// L3), streaming vs. irregular access (row utilization), hot-row behaviour
// (row-buffer conflicts), and read/write mix. The parameters are chosen so
// high-memory-intensity (HM) benchmarks miss the cache hierarchy heavily
// (MPKI >= 20 in the paper's classification) while low-intensity (LM) ones
// mostly hit (1 <= MPKI < 20).
package workload

import (
	"errors"
	"fmt"
	"sort"

	"camps/internal/trace"
)

// Class is a benchmark's memory-intensity class per §4.1.
type Class int

const (
	// HighIntensity marks MPKI >= 20 benchmarks (HM).
	HighIntensity Class = iota
	// LowIntensity marks 1 <= MPKI < 20 benchmarks (LM).
	LowIntensity
)

// String returns the paper's abbreviation.
func (c Class) String() string {
	if c == HighIntensity {
		return "HM"
	}
	return "LM"
}

// Benchmark couples a profile with its intensity class.
type Benchmark struct {
	Profile trace.Profile
	Class   Class
}

const (
	line       = 64
	rowBytes   = 1 << 10
	bankStride = 512 << 10 // same (vault,bank), next row, under RoRaBaVaCo
	mib        = 1 << 20
)

// benchmarks is the parameter table for the 15 SPEC CPU2006 applications
// appearing in Table II. Streaming codes get high StreamProb and several
// streams; pointer-chasing codes get low StreamProb; conflict-prone codes
// get a hot-row set spaced at the bank stride.
var benchmarks = map[string]Benchmark{
	// --- High memory intensity (HM) ---
	"bwaves": {Class: HighIntensity, Profile: trace.Profile{
		Name: "bwaves", FootprintBytes: 192 * mib, GapMean: 1.2, ReadFrac: 0.80,
		Streams: 6, StreamProb: 0.46, StrideBytes: line,
		ConflictProb: 0.15, ConflictStreams: 4, ConflictStride: bankStride, LineBytes: line}},
	"gems": {Class: HighIntensity, Profile: trace.Profile{
		Name: "gems", FootprintBytes: 256 * mib, GapMean: 1.3, ReadFrac: 0.75,
		Streams: 8, StreamProb: 0.39, StrideBytes: line,
		ConflictProb: 0.20, ConflictStreams: 4, ConflictStride: bankStride, LineBytes: line}},
	"gcc": {Class: HighIntensity, Profile: trace.Profile{
		Name: "gcc", FootprintBytes: 96 * mib, GapMean: 1.7, ReadFrac: 0.72,
		Streams: 4, StreamProb: 0.19, StrideBytes: line,
		ConflictProb: 0.32, ConflictStreams: 5, ConflictStride: bankStride, LineBytes: line}},
	"lbm": {Class: HighIntensity, Profile: trace.Profile{
		Name: "lbm", FootprintBytes: 224 * mib, GapMean: 1.1, ReadFrac: 0.55,
		Streams: 4, StreamProb: 0.52, StrideBytes: line,
		ConflictProb: 0.12, ConflictStreams: 3, ConflictStride: bankStride, LineBytes: line}},
	"milc": {Class: HighIntensity, Profile: trace.Profile{
		Name: "milc", FootprintBytes: 160 * mib, GapMean: 1.4, ReadFrac: 0.78,
		Streams: 6, StreamProb: 0.29, StrideBytes: 2 * line,
		ConflictProb: 0.25, ConflictStreams: 4, ConflictStride: bankStride, LineBytes: line}},
	"sphinx": {Class: HighIntensity, Profile: trace.Profile{
		Name: "sphinx", FootprintBytes: 128 * mib, GapMean: 1.6, ReadFrac: 0.88,
		Streams: 5, StreamProb: 0.34, StrideBytes: line,
		ConflictProb: 0.22, ConflictStreams: 4, ConflictStride: bankStride, LineBytes: line}},
	"omnetpp": {Class: HighIntensity, Profile: trace.Profile{
		Name: "omnetpp", FootprintBytes: 128 * mib, GapMean: 1.8, ReadFrac: 0.70,
		Streams: 3, StreamProb: 0.12, StrideBytes: line,
		ConflictProb: 0.38, ConflictStreams: 6, ConflictStride: bankStride, LineBytes: line}},
	"mcf": {Class: HighIntensity, Profile: trace.Profile{
		Name: "mcf", FootprintBytes: 256 * mib, GapMean: 1.2, ReadFrac: 0.76,
		Streams: 3, StreamProb: 0.12, StrideBytes: line,
		ConflictProb: 0.35, ConflictStreams: 6, ConflictStride: bankStride, LineBytes: line}},

	// --- Low memory intensity (LM) ---
	"cactus": {Class: LowIntensity, Profile: trace.Profile{
		Name: "cactus", FootprintBytes: 5 * mib, GapMean: 4.9, ReadFrac: 0.70,
		Streams: 4, StreamProb: 0.44, StrideBytes: line,
		ConflictProb: 0.12, ConflictStreams: 3, ConflictStride: bankStride, LineBytes: line}},
	"bzip2": {Class: LowIntensity, Profile: trace.Profile{
		Name: "bzip2", FootprintBytes: 5 * mib, GapMean: 5.4, ReadFrac: 0.68,
		Streams: 3, StreamProb: 0.29, StrideBytes: line,
		ConflictProb: 0.18, ConflictStreams: 3, ConflictStride: bankStride, LineBytes: line}},
	"astar": {Class: LowIntensity, Profile: trace.Profile{
		Name: "astar", FootprintBytes: 5 * mib, GapMean: 5.2, ReadFrac: 0.74,
		Streams: 2, StreamProb: 0.12, StrideBytes: line,
		ConflictProb: 0.25, ConflictStreams: 4, ConflictStride: bankStride, LineBytes: line}},
	"wrf": {Class: LowIntensity, Profile: trace.Profile{
		Name: "wrf", FootprintBytes: 5 * mib, GapMean: 4.5, ReadFrac: 0.72,
		Streams: 5, StreamProb: 0.49, StrideBytes: line,
		ConflictProb: 0.08, ConflictStreams: 3, ConflictStride: bankStride, LineBytes: line}},
	"tonto": {Class: LowIntensity, Profile: trace.Profile{
		Name: "tonto", FootprintBytes: 5 * mib, GapMean: 5.9, ReadFrac: 0.75,
		Streams: 3, StreamProb: 0.34, StrideBytes: line,
		ConflictProb: 0.15, ConflictStreams: 3, ConflictStride: bankStride, LineBytes: line}},
	"zeusmp": {Class: LowIntensity, Profile: trace.Profile{
		Name: "zeusmp", FootprintBytes: 5 * mib, GapMean: 4.3, ReadFrac: 0.70,
		Streams: 4, StreamProb: 0.52, StrideBytes: line,
		ConflictProb: 0.08, ConflictStreams: 3, ConflictStride: bankStride, LineBytes: line}},
	"h264ref": {Class: LowIntensity, Profile: trace.Profile{
		Name: "h264ref", FootprintBytes: 5 * mib, GapMean: 5.6, ReadFrac: 0.80,
		Streams: 3, StreamProb: 0.39, StrideBytes: line,
		ConflictProb: 0.15, ConflictStreams: 3, ConflictStride: bankStride, LineBytes: line}},
}

// Names returns all benchmark names, sorted.
func Names() []string {
	out := make([]string, 0, len(benchmarks))
	for n := range benchmarks {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns a benchmark by name.
func Get(name string) (Benchmark, error) {
	b, ok := benchmarks[name]
	if !ok {
		return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return b, nil
}

// Mix is one eight-core multiprogrammed workload of Table II.
type Mix struct {
	ID         string
	Benchmarks []string // one per core, in order
}

// mixes reproduces Table II verbatim.
var mixes = []Mix{
	{"HM1", []string{"bwaves", "gems", "gcc", "lbm", "bwaves", "gcc", "lbm", "gems"}},
	{"HM2", []string{"milc", "gems", "sphinx", "omnetpp", "sphinx", "milc", "omnetpp", "gems"}},
	{"HM3", []string{"gcc", "mcf", "lbm", "milc", "mcf", "gcc", "milc", "lbm"}},
	{"HM4", []string{"sphinx", "gcc", "lbm", "bwaves", "sphinx", "bwaves", "lbm", "gcc"}},
	{"LM1", []string{"cactus", "bzip2", "astar", "wrf", "wrf", "bzip2", "cactus", "astar"}},
	{"LM2", []string{"tonto", "zeusmp", "h264ref", "astar", "zeusmp", "h264ref", "astar", "tonto"}},
	{"LM3", []string{"bzip2", "zeusmp", "cactus", "tonto", "cactus", "zeusmp", "bzip2", "tonto"}},
	{"LM4", []string{"astar", "tonto", "bzip2", "h264ref", "tonto", "astar", "bzip2", "h264ref"}},
	{"MX1", []string{"bwaves", "gcc", "cactus", "wrf", "cactus", "gcc", "wrf", "bwaves"}},
	{"MX2", []string{"gems", "sphinx", "tonto", "h264ref", "sphinx", "gems", "h264ref", "tonto"}},
	{"MX3", []string{"milc", "lbm", "wrf", "bzip2", "lbm", "bzip2", "milc", "wrf"}},
	{"MX4", []string{"gcc", "bwaves", "bzip2", "astar", "bwaves", "gcc", "bzip2", "astar"}},
}

// Mixes returns all twelve mixes in presentation order (HM, LM, MX).
func Mixes() []Mix {
	out := make([]Mix, len(mixes))
	copy(out, mixes)
	return out
}

// ErrUnknownMix is the sentinel every mix-lookup failure matches via
// errors.Is, regardless of which identifier was asked for.
var ErrUnknownMix = errors.New("workload: unknown mix")

// UnknownMixError reports a failed mix lookup; it carries the identifier
// for errors.As callers and matches ErrUnknownMix under errors.Is.
type UnknownMixError struct {
	ID string
}

func (e *UnknownMixError) Error() string { return fmt.Sprintf("workload: unknown mix %q", e.ID) }

// Is matches the ErrUnknownMix sentinel.
func (e *UnknownMixError) Is(target error) bool { return target == ErrUnknownMix }

// MixByID looks a mix up by its Table II identifier.
func MixByID(id string) (Mix, error) {
	for _, m := range mixes {
		if m.ID == id {
			return m, nil
		}
	}
	return Mix{}, &UnknownMixError{ID: id}
}

// Group returns the mix family ("HM", "LM" or "MX").
func (m Mix) Group() string {
	if len(m.ID) < 2 {
		return m.ID
	}
	return m.ID[:2]
}

// coreRegion is the physical-address partition given to each core so
// multiprogrammed workloads do not share data: 512 MiB slices of the 4 GiB
// cube.
const coreRegion = 512 * mib

// Generators builds one trace generator per core for the mix. The seed
// decorrelates runs; each core's sub-seed also folds in its index and
// benchmark so identical benchmarks on different cores produce different
// streams.
func (m Mix) Generators(seed uint64) ([]*trace.Generator, error) {
	gens := make([]*trace.Generator, len(m.Benchmarks))
	for core, name := range m.Benchmarks {
		b, err := GetAny(name)
		if err != nil {
			return nil, fmt.Errorf("mix %s core %d: %w", m.ID, core, err)
		}
		base := uint64(core) * coreRegion
		sub := seed ^ (uint64(core)+1)*0x9e3779b97f4a7c15 ^ hashName(name)
		g, err := trace.NewGenerator(b.Profile, base, sub)
		if err != nil {
			return nil, fmt.Errorf("mix %s core %d (%s): %w", m.ID, core, name, err)
		}
		gens[core] = g
	}
	return gens, nil
}

// hashName is FNV-1a over the benchmark name.
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
