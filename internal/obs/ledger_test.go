package obs

import (
	"reflect"
	"testing"
)

// TestLedgerRecordAndSummary: outcomes accumulate per engine and per
// vault, and the summary elides vaults with nothing classified.
func TestLedgerRecordAndSummary(t *testing.T) {
	l := NewPrefetchLedger("CAMPS-MOD")
	l.Record(0, UsefulTimely)
	l.Record(0, UsefulTimely)
	l.Record(0, UsefulLate)
	l.Record(3, EvictedUnused)
	l.Record(3, ConflictVictim)
	l.Record(-1, ConflictVictim) // totals only, no vault row

	if got := l.Total(UsefulTimely); got != 2 {
		t.Errorf("UsefulTimely = %d, want 2", got)
	}
	if got := l.Total(ConflictVictim); got != 2 {
		t.Errorf("ConflictVictim = %d, want 2", got)
	}
	if got := l.Scheme(); got != "CAMPS-MOD" {
		t.Errorf("Scheme = %q", got)
	}

	s := l.Summary()
	if s.Classified() != 6 {
		t.Errorf("Classified = %d, want 6", s.Classified())
	}
	want := []LedgerVault{
		{Vault: 0, UsefulTimely: 2, UsefulLate: 1},
		{Vault: 3, EvictedUnused: 1, ConflictVictim: 1},
	}
	if !reflect.DeepEqual(s.Vaults, want) {
		t.Errorf("vault rows = %+v, want %+v (vaults 1 and 2 must be elided)", s.Vaults, want)
	}
}

// TestLedgerNilSafe: a nil ledger records nothing and reports zeros.
func TestLedgerNilSafe(t *testing.T) {
	var l *PrefetchLedger
	l.Record(0, UsefulTimely)
	if l.Total(UsefulTimely) != 0 || l.Scheme() != "" || l.Summary() != nil {
		t.Error("nil ledger produced data")
	}
	var s *LedgerSummary
	if s.Classified() != 0 {
		t.Error("nil summary classified something")
	}
}

// TestLedgerMetricsRegistered: register publishes the four pf.* outcome
// counters under their literal names.
func TestLedgerMetricsRegistered(t *testing.T) {
	reg := NewRegistry()
	l := NewPrefetchLedger("MMD")
	l.register(reg)
	l.Record(1, UsefulTimely)
	l.Record(1, UsefulLate)
	l.Record(1, UsefulLate)
	l.Record(2, EvictedUnused)

	snap := reg.Snapshot("t", 0)
	for name, want := range map[string]uint64{
		MetricPFUsefulTimely: 1,
		MetricPFUsefulLate:   2,
		MetricPFUnused:       1,
		MetricPFConflict:     0,
	} {
		if got := snap.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestOutcomeStrings: names follow the snake_case taxonomy documented in
// docs/OBSERVABILITY.md.
func TestOutcomeStrings(t *testing.T) {
	want := []string{"useful_timely", "useful_late", "evicted_unused", "conflict_victim"}
	outs := PrefetchOutcomes()
	if len(outs) != len(want) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(want))
	}
	for i, o := range outs {
		if o.String() != want[i] {
			t.Errorf("outcome %d = %q, want %q", i, o.String(), want[i])
		}
	}
}
