package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestTracerRingWraparound: a full ring overwrites oldest-first and
// Events() returns the surviving window in emission order.
func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{At: int64(i), Type: EvRowConflict})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Total() != 10 || tr.Dropped() != 6 {
		t.Errorf("Total/Dropped = %d/%d, want 10/6", tr.Total(), tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		want := int64(6 + i) // events 0..5 were overwritten
		if ev.At != want {
			t.Errorf("event %d At = %d, want %d", i, ev.At, want)
		}
	}
}

// TestTracerPartialRing: before wrapping, all emitted events are retained.
func TestTracerPartialRing(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 3; i++ {
		tr.Emit(Event{At: int64(i)})
	}
	evs := tr.Events()
	if len(evs) != 3 || tr.Dropped() != 0 {
		t.Fatalf("got %d events, %d dropped; want 3, 0", len(evs), tr.Dropped())
	}
	for i, ev := range evs {
		if ev.At != int64(i) {
			t.Errorf("event %d At = %d, want %d", i, ev.At, i)
		}
	}
}

// TestTracerNilSafe: all methods are no-ops on a nil tracer, so call
// sites need no conditionals.
func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{At: 1})
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer must report empty state")
	}
}

// TestEventTypeNames: every defined event type has a name and category
// (catches a new constant added without updating the tables).
func TestEventTypeNames(t *testing.T) {
	for ty := EventType(0); ty < evTypeCount; ty++ {
		if ty.String() == "" || strings.HasPrefix(ty.String(), "event-") {
			t.Errorf("event type %d has no name", ty)
		}
		if ty.Category() == "" || ty.Category() == "other" {
			t.Errorf("event type %v has no category", ty)
		}
	}
	if got := EventType(200).String(); got != "event-200" {
		t.Errorf("unknown type String() = %q", got)
	}
}

// TestWriteJSONL: one valid JSON object per line with the documented keys.
func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{At: 100, Type: EvPrefetchHit, Vault: 3, Bank: 1, Row: 42, Arg: 7})
	tr.Emit(Event{At: 200, Type: EvRowConflict, Vault: 5, Bank: 2, Row: 99})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var first struct {
		AtPs  int64  `json:"at_ps"`
		Type  string `json:"type"`
		Vault int32  `json:"vault"`
		Bank  int32  `json:"bank"`
		Row   int64  `json:"row"`
		Arg   int64  `json:"arg"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not valid JSON: %v", err)
	}
	if first.AtPs != 100 || first.Type != "prefetch-hit" || first.Vault != 3 ||
		first.Bank != 1 || first.Row != 42 || first.Arg != 7 {
		t.Errorf("unexpected first event: %+v", first)
	}
}

// TestWriteChromeTrace: the export is a valid trace_event JSON-object
// document — traceEvents array of instant events with the required
// name/cat/ph/ts/pid/tid keys and vault-keyed timeline rows.
func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{At: 2_000_000, Type: EvRowConflict, Vault: 7, Bank: 3, Row: 11})
	tr.Emit(Event{At: 3_000_000, Type: EvEpoch, Vault: -1})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string           `json:"name"`
			Cat   string           `json:"cat"`
			Phase string           `json:"ph"`
			TsUs  float64          `json:"ts"`
			Pid   *int             `json:"pid"`
			Tid   *int             `json:"tid"`
			Scope string           `json:"s"`
			Args  map[string]int64 `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d trace events, want 2", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "row-conflict" || ev.Cat != "dram" || ev.Phase != "i" || ev.Scope != "t" {
		t.Errorf("unexpected event header: %+v", ev)
	}
	if ev.Pid == nil || ev.Tid == nil {
		t.Fatal("pid/tid must be present")
	}
	if *ev.Tid != 7 {
		t.Errorf("tid = %d, want vault id 7", *ev.Tid)
	}
	if ev.TsUs != 2.0 { // 2e6 ps = 2 us
		t.Errorf("ts = %v us, want 2", ev.TsUs)
	}
	if ev.Args["bank"] != 3 || ev.Args["row"] != 11 {
		t.Errorf("args = %v, want bank 3 row 11", ev.Args)
	}
	// Vault -1 must clamp to a valid (non-negative) timeline row.
	if tid := *doc.TraceEvents[1].Tid; tid < 0 {
		t.Errorf("negative tid %d for vault -1", tid)
	}
}

func BenchmarkTracerEmit(b *testing.B) {
	tr := NewTracer(1 << 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{At: int64(i), Type: EvRowHit, Vault: 1})
	}
}
