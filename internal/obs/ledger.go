package obs

import "fmt"

// PrefetchOutcome classifies what ultimately happened to one prefetched
// row: the ledger's unit of account.
type PrefetchOutcome uint8

const (
	// UsefulTimely rows were fully resident before any demand request
	// wanted them and served at least one demand line.
	UsefulTimely PrefetchOutcome = iota
	// UsefulLate rows served demand traffic, but a demand request for the
	// row was already queued when the fetch completed — the prefetch won
	// the race only partially.
	UsefulLate
	// EvictedUnused rows left the buffer without serving any demand
	// request: pure pollution (includes fault-poisoned rows).
	EvictedUnused
	// ConflictVictim directives never became resident: dropped on fetch
	// queue overflow, i.e. squeezed out by the very bank pressure CAMPS
	// tries to relieve.
	ConflictVictim

	outcomeCount
)

var outcomeNames = [outcomeCount]string{
	UsefulTimely:   "useful_timely",
	UsefulLate:     "useful_late",
	EvictedUnused:  "evicted_unused",
	ConflictVictim: "conflict_victim",
}

// String returns the snake_case outcome name used in metrics and reports.
func (o PrefetchOutcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome-%d", uint8(o))
}

// PrefetchOutcomes returns every outcome in declaration order.
func PrefetchOutcomes() []PrefetchOutcome {
	out := make([]PrefetchOutcome, outcomeCount)
	for i := range out {
		out[i] = PrefetchOutcome(i)
	}
	return out
}

// PrefetchLedger classifies every prefetch a run issues into its final
// outcome, per engine (the whole ledger is labeled with the scheme that
// drove it) and per vault. Like the rest of the obs layer it is
// single-goroutine; a nil ledger is valid and records nothing.
type PrefetchLedger struct {
	scheme   string
	totals   [outcomeCount]uint64
	perVault [][outcomeCount]uint64
}

// NewPrefetchLedger returns a ledger labeled with the prefetch engine
// driving the run (e.g. "CAMPS-MOD").
func NewPrefetchLedger(scheme string) *PrefetchLedger {
	return &PrefetchLedger{scheme: scheme}
}

// register wires the ledger's outcome totals into reg as pf.* counters.
func (l *PrefetchLedger) register(reg *Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc(MetricPFUsefulTimely, func() uint64 { return l.totals[UsefulTimely] })
	reg.CounterFunc(MetricPFUsefulLate, func() uint64 { return l.totals[UsefulLate] })
	reg.CounterFunc(MetricPFUnused, func() uint64 { return l.totals[EvictedUnused] })
	reg.CounterFunc(MetricPFConflict, func() uint64 { return l.totals[ConflictVictim] })
}

// Record classifies one prefetched row. Vault -1 skips the per-vault
// breakdown (used by tests exercising the totals alone).
func (l *PrefetchLedger) Record(vault int, o PrefetchOutcome) {
	if l == nil {
		return
	}
	l.totals[o]++
	if vault < 0 {
		return
	}
	for vault >= len(l.perVault) {
		l.perVault = append(l.perVault, [outcomeCount]uint64{})
	}
	l.perVault[vault][o]++
}

// Total returns the count recorded for one outcome.
func (l *PrefetchLedger) Total(o PrefetchOutcome) uint64 {
	if l == nil {
		return 0
	}
	return l.totals[o]
}

// Scheme returns the prefetch engine label the ledger was created with.
func (l *PrefetchLedger) Scheme() string {
	if l == nil {
		return ""
	}
	return l.scheme
}

// LedgerVault is one vault's outcome counts in a LedgerSummary.
type LedgerVault struct {
	Vault          int    `json:"vault"`
	UsefulTimely   uint64 `json:"useful_timely"`
	UsefulLate     uint64 `json:"useful_late"`
	EvictedUnused  uint64 `json:"evicted_unused"`
	ConflictVictim uint64 `json:"conflict_victim"`
}

// LedgerSummary is the exportable prefetch efficacy report.
type LedgerSummary struct {
	Scheme         string        `json:"scheme"`
	UsefulTimely   uint64        `json:"useful_timely"`
	UsefulLate     uint64        `json:"useful_late"`
	EvictedUnused  uint64        `json:"evicted_unused"`
	ConflictVictim uint64        `json:"conflict_victim"`
	Vaults         []LedgerVault `json:"vaults,omitempty"`
}

// Classified returns the total number of prefetches the summary covers.
func (s *LedgerSummary) Classified() uint64 {
	if s == nil {
		return 0
	}
	return s.UsefulTimely + s.UsefulLate + s.EvictedUnused + s.ConflictVictim
}

// Summary folds the ledger into an exportable report. Vaults with no
// classified prefetches are elided.
func (l *PrefetchLedger) Summary() *LedgerSummary {
	if l == nil {
		return nil
	}
	s := &LedgerSummary{
		Scheme:         l.scheme,
		UsefulTimely:   l.totals[UsefulTimely],
		UsefulLate:     l.totals[UsefulLate],
		EvictedUnused:  l.totals[EvictedUnused],
		ConflictVictim: l.totals[ConflictVictim],
	}
	for v, row := range l.perVault {
		if row == ([outcomeCount]uint64{}) {
			continue
		}
		s.Vaults = append(s.Vaults, LedgerVault{
			Vault:          v,
			UsefulTimely:   row[UsefulTimely],
			UsefulLate:     row[UsefulLate],
			EvictedUnused:  row[EvictedUnused],
			ConflictVictim: row[ConflictVictim],
		})
	}
	return s
}
