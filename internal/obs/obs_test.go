package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestRegistryHandlesStable: repeated lookups of one name return the same
// instance, so components can capture handles once.
func TestRegistryHandlesStable(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter not stable across lookups")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge not stable across lookups")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram not stable across lookups")
	}
}

// TestAdditiveRegistration: multiple CounterFunc/GaugeFunc registrations
// under one name sum at snapshot time — the mechanism replicated vaults
// and cores rely on.
func TestAdditiveRegistration(t *testing.T) {
	r := NewRegistry()
	vaultHits := []uint64{10, 20, 30}
	for i := range vaultHits {
		i := i
		r.CounterFunc("vault.hits", func() uint64 { return vaultHits[i] })
	}
	r.GaugeFunc("vault.queue", func() float64 { return 1.5 })
	r.GaugeFunc("vault.queue", func() float64 { return 2.5 })
	r.Counter("direct").Add(5)

	s := r.Snapshot("t", 123)
	if s.AtPs != 123 || s.Tag != "t" {
		t.Errorf("snapshot header = %d/%q", s.AtPs, s.Tag)
	}
	if got := s.Counter("vault.hits"); got != 60 {
		t.Errorf("vault.hits = %d, want 60", got)
	}
	if got := s.Gauges["vault.queue"]; got != 4.0 {
		t.Errorf("vault.queue = %v, want 4", got)
	}
	if got := s.Counter("direct"); got != 5 {
		t.Errorf("direct = %d, want 5", got)
	}

	// Later snapshots re-read the functions.
	vaultHits[0] = 100
	if got := r.Snapshot("t2", 456).Counter("vault.hits"); got != 150 {
		t.Errorf("after mutation vault.hits = %d, want 150", got)
	}
}

// TestSnapshotHistograms: histogram metrics render to summaries.
func TestSnapshotHistograms(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for v := int64(1); v <= 100; v++ {
		h.ObserveInt(v)
	}
	hs, ok := r.Snapshot("x", 0).Histograms["lat"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Count != 100 || hs.Max != 100 {
		t.Errorf("count/max = %d/%v, want 100/100", hs.Count, hs.Max)
	}
	if hs.Mean != 50.5 {
		t.Errorf("mean = %v, want 50.5", hs.Mean)
	}
	if hs.P50 < 50 || hs.P50 > 50*1.13 {
		t.Errorf("p50 = %v, want within 12.5%% above 50", hs.P50)
	}
	if hs.P99 < 99 || hs.P99 > 100 {
		t.Errorf("p99 = %v, want in [99,100]", hs.P99)
	}
}

// TestMetricNames: names from all five tables, sorted, deduplicated.
func TestMetricNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count")
	r.CounterFunc("a.fn", func() uint64 { return 0 })
	r.CounterFunc("a.fn", func() uint64 { return 0 }) // duplicate name
	r.Gauge("c.gauge")
	r.Histogram("d.hist")
	want := []string{"a.fn", "b.count", "c.gauge", "d.hist"}
	if got := r.MetricNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("MetricNames = %v, want %v", got, want)
	}
}

// TestWriteSnapshotsJSONL: one valid JSON object per line with the
// documented keys.
func TestWriteSnapshotsJSONL(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(3)
	snaps := []Snapshot{r.Snapshot("epoch", 1000), r.Snapshot("final", 2000)}
	var buf bytes.Buffer
	if err := WriteSnapshotsJSONL(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(lines[1]), &s); err != nil {
		t.Fatalf("line 1 not valid JSON: %v", err)
	}
	if s.AtPs != 2000 || s.Tag != "final" || s.Counter("x") != 3 {
		t.Errorf("round-tripped snapshot = %+v", s)
	}
}

// TestSuite: NewSuite wires a registry and tracer; Snap accumulates.
func TestSuite(t *testing.T) {
	s := NewSuite(0)
	if s.Registry == nil || s.Tracer == nil {
		t.Fatal("suite missing registry or tracer")
	}
	if got := len(s.Tracer.buf); got != DefaultTraceCap {
		t.Errorf("default trace cap = %d, want %d", got, DefaultTraceCap)
	}
	s.Registry.Counter("n").Inc()
	s.Snap("e1", 10)
	s.Registry.Counter("n").Inc()
	s.Snap("e2", 20)
	snaps := s.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(snaps))
	}
	if snaps[0].Counter("n") != 1 || snaps[1].Counter("n") != 2 {
		t.Errorf("snapshot counters = %d, %d; want 1, 2",
			snaps[0].Counter("n"), snaps[1].Counter("n"))
	}
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 2 {
		t.Errorf("WriteMetrics wrote %d lines, want 2", n)
	}
}

// TestSuiteTracerDroppedCounter: every suite exposes the tracer's
// overwrite count as a registry metric, so epoch snapshots reveal when
// the ring was too small for the run.
func TestSuiteTracerDroppedCounter(t *testing.T) {
	s := NewSuite(2)
	for i := 0; i < 5; i++ {
		s.Tracer.Emit(Event{At: int64(i), Type: EvEpoch, Vault: -1})
	}
	snap := s.Registry.Snapshot("t", 0)
	if got := snap.Counter(MetricTracerDropped); got != 3 {
		t.Errorf("%s = %d, want 3 (5 emitted into a 2-slot ring)", MetricTracerDropped, got)
	}
	if got := s.Tracer.Dropped(); got != 3 {
		t.Errorf("Tracer.Dropped = %d, want 3", got)
	}
}
