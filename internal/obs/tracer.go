package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// EventType identifies one kind of simulator event.
type EventType uint8

// The typed events the simulator publishes. Field semantics per type are
// documented in docs/OBSERVABILITY.md; unused fields are zero.
const (
	// Vault / DRAM events: Vault, Bank, Row identify the location.
	EvRowActivate EventType = iota
	EvRowHit
	EvRowMiss
	EvRowConflict
	EvRowWriteback // prefetch-buffer row stored back to its bank
	// Prefetch events: Vault, Bank, Row; Arg is per-type context
	// (issue: 1 = inline fetch; hit: line index; evict: utilization).
	EvPrefetchIssue
	EvPrefetchHit
	EvPrefetchEvict
	EvPrefetchDrop
	// MSHR events: Row carries the line address; Arg the outstanding count.
	EvMSHRStall
	EvMSHRCoalesce
	// Link events: Vault is the link id, Bank the direction (0 request,
	// 1 response), Arg the packet bytes.
	EvLinkFlit
	// Epoch marker emitted at each registry snapshot.
	EvEpoch
	// Fault-injection events (internal/fault). LinkCRC: Vault is the link
	// id, Bank the direction, Arg the retry count. VaultStall: Arg the
	// stall duration. Poison: Vault/Bank/Row locate the discarded row.
	// BankFail: Arg the window duration; At is the window start.
	EvFaultLinkCRC
	EvFaultVaultStall
	EvFaultPoison
	EvFaultBankFail
	// Attribution span retirement (internal/obs span layer). At is the
	// span's begin time, Arg its end-to-end latency in ps, Bank the
	// dominant Cause, Row the retirement sequence number. Rendered as a
	// Chrome duration event ("ph":"X").
	EvSpan

	evTypeCount
)

var evNames = [evTypeCount]string{
	EvRowActivate:     "row-activate",
	EvRowHit:          "row-hit",
	EvRowMiss:         "row-miss",
	EvRowConflict:     "row-conflict",
	EvRowWriteback:    "row-writeback",
	EvPrefetchIssue:   "prefetch-issue",
	EvPrefetchHit:     "prefetch-hit",
	EvPrefetchEvict:   "prefetch-evict",
	EvPrefetchDrop:    "prefetch-drop",
	EvMSHRStall:       "mshr-stall",
	EvMSHRCoalesce:    "mshr-coalesce",
	EvLinkFlit:        "link-flit",
	EvEpoch:           "epoch",
	EvFaultLinkCRC:    "fault-link-crc",
	EvFaultVaultStall: "fault-vault-stall",
	EvFaultPoison:     "fault-poison",
	EvFaultBankFail:   "fault-bank-fail",
	EvSpan:            "span",
}

var evCats = [evTypeCount]string{
	EvRowActivate:     "dram",
	EvRowHit:          "dram",
	EvRowMiss:         "dram",
	EvRowConflict:     "dram",
	EvRowWriteback:    "dram",
	EvPrefetchIssue:   "prefetch",
	EvPrefetchHit:     "prefetch",
	EvPrefetchEvict:   "prefetch",
	EvPrefetchDrop:    "prefetch",
	EvMSHRStall:       "mshr",
	EvMSHRCoalesce:    "mshr",
	EvLinkFlit:        "link",
	EvEpoch:           "epoch",
	EvFaultLinkCRC:    "fault",
	EvFaultVaultStall: "fault",
	EvFaultPoison:     "fault",
	EvFaultBankFail:   "fault",
	EvSpan:            "span",
}

// String returns the kebab-case event name used in exports.
func (t EventType) String() string {
	if int(t) < len(evNames) {
		return evNames[t]
	}
	return fmt.Sprintf("event-%d", uint8(t))
}

// Category returns the export category (Chrome trace "cat" field).
func (t EventType) Category() string {
	if int(t) < len(evCats) {
		return evCats[t]
	}
	return "other"
}

// Event is one structured simulator event. It is a flat value type so the
// tracer ring is a single contiguous allocation.
type Event struct {
	At    int64 // simulation time, picoseconds
	Row   int64 // DRAM row or line address, per type
	Arg   int64 // per-type context; see the EventType docs
	Vault int32 // vault id, or link id for EvLinkFlit; -1 when n/a
	Bank  int32 // bank id, or direction for EvLinkFlit
	Type  EventType
}

// DefaultTraceCap is the ring capacity NewSuite uses: large enough for a
// useful chrome://tracing window, small enough (~3 MB) to be free.
const DefaultTraceCap = 1 << 16

// Tracer records events into a fixed ring buffer: when full, the oldest
// events are overwritten, so the trace always holds the most recent
// window of the run. Emit on a nil *Tracer is a no-op, letting
// instrumented components skip the "is tracing on?" conditional.
type Tracer struct {
	buf     []Event
	next    int    // ring write position
	n       int    // valid events, <= len(buf)
	total   uint64 // events ever emitted
	dropped uint64 // events overwritten
}

// NewTracer returns a tracer holding up to capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		panic("obs: tracer capacity must be positive")
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Emit records one event. Zero-allocation; nil-safe.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	if t.n == len(t.buf) {
		t.dropped++
	} else {
		t.n++
	}
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
	t.total++
}

// Len returns the number of events currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Total returns the number of events ever emitted.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Dropped returns the number of events overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil || t.n == 0 {
		return nil
	}
	out := make([]Event, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// jsonlEvent is the JSONL export schema.
type jsonlEvent struct {
	AtPs  int64  `json:"at_ps"`
	Type  string `json:"type"`
	Vault int32  `json:"vault"`
	Bank  int32  `json:"bank"`
	Row   int64  `json:"row"`
	Arg   int64  `json:"arg,omitempty"`
}

// WriteJSONL writes the retained events oldest-first, one JSON object per
// line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		je := jsonlEvent{
			AtPs:  ev.At,
			Type:  ev.Type.String(),
			Vault: ev.Vault,
			Bank:  ev.Bank,
			Row:   ev.Row,
			Arg:   ev.Arg,
		}
		if err := enc.Encode(&je); err != nil {
			return fmt.Errorf("obs: trace jsonl: %w", err)
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name  string           `json:"name"`
	Cat   string           `json:"cat"`
	Phase string           `json:"ph"`
	TsUs  float64          `json:"ts"`
	Pid   int              `json:"pid"`
	Tid   int              `json:"tid"`
	DurUs float64          `json:"dur,omitempty"`
	Scope string           `json:"s,omitempty"`
	Args  map[string]int64 `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace_event document.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the retained events as a Chrome trace_event
// JSON document, loadable in chrome://tracing or https://ui.perfetto.dev.
// Events appear as instant events ("ph":"i") on one timeline row per
// vault (tid = vault id; -1 renders on row 0). EvSpan events render as
// complete duration events ("ph":"X") spanning the request's lifetime,
// so attribution spans show up as bars rather than ticks.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	doc := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(events)),
		DisplayTimeUnit: "ns",
	}
	for _, ev := range events {
		tid := int(ev.Vault)
		if tid < 0 {
			tid = 0
		}
		ce := chromeEvent{
			Name:  ev.Type.String(),
			Cat:   ev.Type.Category(),
			Phase: "i",
			TsUs:  float64(ev.At) / 1e6, // ps -> us
			Pid:   0,
			Tid:   tid,
			Scope: "t",
			Args: map[string]int64{
				"bank": int64(ev.Bank),
				"row":  ev.Row,
				"arg":  ev.Arg,
			},
		}
		if ev.Type == EvSpan {
			ce.Phase = "X"
			ce.DurUs = float64(ev.Arg) / 1e6
			ce.Scope = ""
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&doc); err != nil {
		return fmt.Errorf("obs: chrome trace: %w", err)
	}
	return nil
}
