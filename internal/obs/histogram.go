package obs

import (
	"math"
	"math/bits"
)

// The histogram is log-bucketed with 2^subBits sub-buckets per octave
// (power of two), the classic HDR-lite layout: values below 2^subBits are
// recorded exactly; above that, each octave [2^k, 2^(k+1)) splits into
// 2^subBits equal-width buckets, bounding the relative quantile error at
// 2^-subBits (12.5% with subBits = 3) while keeping the whole structure a
// fixed array — Observe never allocates.
const (
	subBits = 3
	subCnt  = 1 << subBits
	// nBuckets covers every uint64: subCnt exact buckets plus subCnt per
	// octave for octaves subBits..63.
	nBuckets = subCnt + (64-subBits)*subCnt
)

// Histogram is a fixed-size log-bucketed histogram of non-negative
// integer-valued samples (latencies in picoseconds, sizes in bytes, ...).
// Negative samples clamp to zero.
type Histogram struct {
	count   uint64
	sum     float64
	max     uint64
	buckets [nBuckets]uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a sample to its bucket.
func bucketIndex(v uint64) int {
	if v < subCnt {
		return int(v)
	}
	h := uint(bits.Len64(v) - 1) // position of the MSB, >= subBits
	sub := int(v>>(h-subBits)) - subCnt
	return subCnt + int(h-subBits)*subCnt + sub
}

// bucketUpper returns the largest sample value that lands in bucket i,
// the upper edge Quantile reports.
func bucketUpper(i int) uint64 {
	if i < subCnt {
		return uint64(i)
	}
	octave := uint((i - subCnt) / subCnt)
	sub := uint64((i - subCnt) % subCnt)
	low := (subCnt + sub) << octave
	return low + (uint64(1)<<octave - 1)
}

// ObserveInt records one sample.
func (h *Histogram) ObserveInt(v int64) {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	h.count++
	h.sum += float64(u)
	if u > h.max {
		h.max = u
	}
	h.buckets[bucketIndex(u)]++
}

// Observe records one float sample (truncated toward zero).
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	h.ObserveInt(int64(v))
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the
// upper edge of the bucket containing the target sample, clamped at the
// observed maximum. With no samples it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var cum uint64
	for i, b := range h.buckets {
		cum += b
		if cum >= target {
			upper := bucketUpper(i)
			if upper > h.max {
				upper = h.max
			}
			return float64(upper)
		}
	}
	return float64(h.max)
}
