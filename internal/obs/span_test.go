package obs

import (
	"strings"
	"testing"
)

// TestSpanCauseSumEqualsE2E: the cursor-walk construction makes a retired
// span's cause segments sum exactly to its end-to-end latency, and the
// set-wide totals preserve that identity.
func TestSpanCauseSumEqualsE2E(t *testing.T) {
	s := NewSpanSet(4)
	ref := s.Begin(1000)
	s.Advance(ref, CauseFaultRetry, 50)
	s.AdvanceTo(ref, CauseLink, 1300)
	s.AdvanceTo(ref, CauseXbar, 1400)
	s.AdvanceTo(ref, CauseQueue, 2000)
	s.AdvanceTo(ref, CauseBankConflict, 2600)
	s.Retire(ref, CauseService, 3000)

	if got := s.Retired(); got != 1 {
		t.Fatalf("retired = %d, want 1", got)
	}
	wantE2E := uint64(3000 - 1000)
	if s.e2eTotal != wantE2E {
		t.Errorf("e2e total = %d, want %d", s.e2eTotal, wantE2E)
	}
	want := map[Cause]uint64{
		CauseFaultRetry:   50,
		CauseLink:         250, // 1050 -> 1300
		CauseXbar:         100,
		CauseQueue:        600,
		CauseBankConflict: 600,
		CauseService:      400,
	}
	var sum uint64
	for c, w := range want {
		if got := s.CausePs(c); got != w {
			t.Errorf("CausePs(%v) = %d, want %d", c, got, w)
		}
		sum += w
	}
	if sum != wantE2E {
		t.Fatalf("test arithmetic broken: cause sum %d != e2e %d", sum, wantE2E)
	}
	if err := s.CheckInvariant(); err != nil {
		t.Errorf("CheckInvariant: %v", err)
	}
}

// TestSpanNilAndZeroRefSafe: a nil set and the zero ref are no-ops on
// every method, so attribution-off call sites need no conditionals.
func TestSpanNilAndZeroRefSafe(t *testing.T) {
	var nilSet *SpanSet
	ref := nilSet.Begin(0)
	if ref.Valid() {
		t.Error("nil set returned a valid ref")
	}
	nilSet.Advance(ref, CauseQueue, 10)
	nilSet.AdvanceTo(ref, CauseQueue, 10)
	nilSet.SetVault(ref, 3)
	nilSet.Retire(ref, CauseQueue, 10)
	nilSet.Stage(ref)
	if nilSet.Unstage().Valid() {
		t.Error("nil set unstaged a valid ref")
	}
	if nilSet.Started() != 0 || nilSet.Retired() != 0 || nilSet.Active() != 0 {
		t.Error("nil set counted something")
	}
	if nilSet.CheckInvariant() != nil || nilSet.Summary() != nil || nilSet.VaultConflictPs() != nil {
		t.Error("nil set produced non-nil results")
	}

	s := NewSpanSet(2)
	s.Advance(SpanRef{}, CauseQueue, 10)
	s.Retire(SpanRef{}, CauseQueue, 10)
	if s.Started() != 0 || s.Retired() != 0 || s.e2eTotal != 0 {
		t.Error("zero ref mutated the set")
	}
}

// TestSpanStaleRefIgnored: once a span retires and its slot is recycled,
// the old generation-counted ref no longer resolves — advancing or
// re-retiring through it must not corrupt the new occupant.
func TestSpanStaleRefIgnored(t *testing.T) {
	s := NewSpanSet(1)
	old := s.Begin(100)
	s.Retire(old, CauseService, 200)

	fresh := s.Begin(500) // recycles the same slot
	s.Advance(old, CauseQueue, 1000)
	s.Retire(old, CauseQueue, 9999)
	if s.Retired() != 1 {
		t.Fatalf("stale retire counted: retired = %d, want 1", s.Retired())
	}
	s.Retire(fresh, CauseService, 600)
	if got := s.CausePs(CauseService); got != 100+100 {
		t.Errorf("service ps = %d, want 200", got)
	}
	if got := s.CausePs(CauseQueue); got != 0 {
		t.Errorf("stale ref charged %d ps of queue time", got)
	}
	if err := s.CheckInvariant(); err != nil {
		t.Errorf("CheckInvariant: %v", err)
	}
}

// TestSpanAdvanceToMonotone: AdvanceTo charges only forward progress, so
// independently computed segment boundaries can never double-charge.
func TestSpanAdvanceToMonotone(t *testing.T) {
	s := NewSpanSet(1)
	ref := s.Begin(1000)
	s.AdvanceTo(ref, CauseLink, 1500)
	s.AdvanceTo(ref, CauseXbar, 1200) // behind the cursor: no-op
	s.AdvanceTo(ref, CauseXbar, 1500) // at the cursor: no-op
	s.Retire(ref, CauseService, 1600)
	if got := s.CausePs(CauseXbar); got != 0 {
		t.Errorf("backwards AdvanceTo charged %d ps", got)
	}
	if got := s.e2eTotal; got != 600 {
		t.Errorf("e2e = %d, want 600", got)
	}
}

// TestSpanZeroAllocSteadyState: the pooled records make steady-state
// begin/advance/retire traffic allocation-free, matching the engine's
// eventNode discipline.
func TestSpanZeroAllocSteadyState(t *testing.T) {
	s := NewSpanSet(8)
	at := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		at += 100
		ref := s.Begin(at)
		s.SetVault(ref, 3)
		s.AdvanceTo(ref, CauseQueue, at+40)
		s.Retire(ref, CauseService, at+90)
	})
	if allocs != 0 {
		t.Errorf("steady-state span cycle allocates %.1f times per op, want 0", allocs)
	}
}

// TestSpanStageUnstage: the synchronous handoff slot holds exactly one
// ref and empties on claim.
func TestSpanStageUnstage(t *testing.T) {
	s := NewSpanSet(2)
	ref := s.Begin(10)
	s.Stage(ref)
	if got := s.Unstage(); got != ref {
		t.Errorf("Unstage = %+v, want %+v", got, ref)
	}
	if s.Unstage().Valid() {
		t.Error("second Unstage returned a valid ref")
	}
	s.Retire(ref, CauseQueue, 20)
}

// TestSpanVaultHeatmap: conflict picoseconds fold into the span's vault
// at retirement; the heatmap grows on demand.
func TestSpanVaultHeatmap(t *testing.T) {
	s := NewSpanSet(2)
	ref := s.Begin(0)
	s.SetVault(ref, 5)
	s.AdvanceTo(ref, CauseBankConflict, 300)
	s.Retire(ref, CauseService, 400)

	ref = s.Begin(1000)
	s.SetVault(ref, 2)
	s.Retire(ref, CauseService, 1100) // no conflict time

	hm := s.VaultConflictPs()
	if len(hm) != 6 {
		t.Fatalf("heatmap length = %d, want 6", len(hm))
	}
	if hm[5] != 300 || hm[2] != 0 {
		t.Errorf("heatmap = %v, want 300 at v5 and 0 at v2", hm)
	}
}

// TestSpanRetireEmitsTraceEvent: retirement publishes one EvSpan event
// carrying the span's begin time, end-to-end latency, vault, and dominant
// cause — the record the Chrome trace export renders as a duration slice.
func TestSpanRetireEmitsTraceEvent(t *testing.T) {
	tr := NewTracer(4)
	s := NewSpanSet(1)
	s.register(nil, tr)
	ref := s.Begin(2000)
	s.SetVault(ref, 7)
	s.AdvanceTo(ref, CauseBankConflict, 2900)
	s.Retire(ref, CauseService, 3000)

	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Type != EvSpan || ev.At != 2000 || ev.Arg != 1000 || ev.Vault != 7 {
		t.Errorf("event = %+v", ev)
	}
	if Cause(ev.Bank) != CauseBankConflict {
		t.Errorf("dominant cause = %v, want bank_conflict", Cause(ev.Bank))
	}
}

// TestSpanMetricsRegistered: register publishes every span.* counter
// under its compile-time-literal name, and the totals surface in
// snapshots.
func TestSpanMetricsRegistered(t *testing.T) {
	reg := NewRegistry()
	s := NewSpanSet(1)
	s.register(reg, nil)
	ref := s.Begin(0)
	s.AdvanceTo(ref, CauseQueue, 70)
	s.Retire(ref, CauseService, 100)

	snap := reg.Snapshot("t", 0)
	if got := snap.Counter(MetricSpanStarted); got != 1 {
		t.Errorf("%s = %d, want 1", MetricSpanStarted, got)
	}
	if got := snap.Counter(MetricSpanRetired); got != 1 {
		t.Errorf("%s = %d, want 1", MetricSpanRetired, got)
	}
	if got := snap.Counter(MetricSpanE2EPs); got != 100 {
		t.Errorf("%s = %d, want 100", MetricSpanE2EPs, got)
	}
	if got := snap.Counter(CauseMetricName(CauseQueue)); got != 70 {
		t.Errorf("%s = %d, want 70", CauseMetricName(CauseQueue), got)
	}
	for _, c := range Causes() {
		name := CauseMetricName(c)
		if !strings.HasPrefix(name, "span.") || !strings.HasSuffix(name, "_ps") {
			t.Errorf("cause metric %q breaks the span.*_ps convention", name)
		}
		if _, ok := snap.Histograms[name]; c == CauseQueue && !ok {
			t.Errorf("histogram %q missing from snapshot", name)
		}
	}
	if _, ok := snap.Histograms[MetricSpanE2EHist]; !ok {
		t.Errorf("histogram %q missing from snapshot", MetricSpanE2EHist)
	}
}

// TestSpanCheckInvariantDetectsDrift: a corrupted cause total trips the
// sum-equals-e2e invariant.
func TestSpanCheckInvariantDetectsDrift(t *testing.T) {
	s := NewSpanSet(1)
	ref := s.Begin(0)
	s.Retire(ref, CauseService, 100)
	s.causePs[CauseQueue] += 1 // simulate an accounting bug
	if err := s.CheckInvariant(); err == nil {
		t.Error("CheckInvariant missed a cause/e2e mismatch")
	}
	s.causePs[CauseQueue] -= 1
	s.retired++ // more retired than started
	if err := s.CheckInvariant(); err == nil {
		t.Error("CheckInvariant missed retired > started")
	}
}

// TestSpanSummary: the exported summary carries shares and means that
// reflect the folded totals.
func TestSpanSummary(t *testing.T) {
	s := NewSpanSet(2)
	for i := 0; i < 2; i++ {
		ref := s.Begin(int64(i) * 1000)
		s.AdvanceTo(ref, CauseQueue, int64(i)*1000+60)
		s.Retire(ref, CauseService, int64(i)*1000+100)
	}
	sum := s.Summary()
	if sum.SpansStarted != 2 || sum.SpansRetired != 2 || sum.E2ETotalPs != 200 {
		t.Fatalf("summary header = %+v", sum)
	}
	byName := map[string]CauseBreakdown{}
	for _, cb := range sum.Causes {
		byName[cb.Cause] = cb
	}
	q := byName["queue"]
	if q.TotalPs != 120 || q.Share != 0.6 || q.MeanPs != 60 {
		t.Errorf("queue breakdown = %+v", q)
	}
	if sv := byName["service"]; sv.TotalPs != 80 {
		t.Errorf("service breakdown = %+v", sv)
	}
}
