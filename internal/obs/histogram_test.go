package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestBucketIndexExactRange: values below subCnt land in their own bucket
// and are reported exactly.
func TestBucketIndexExactRange(t *testing.T) {
	for v := uint64(0); v < subCnt; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Errorf("bucketIndex(%d) = %d, want %d", v, got, v)
		}
		if up := bucketUpper(int(v)); up != v {
			t.Errorf("bucketUpper(%d) = %d, want %d", v, up, v)
		}
	}
}

// TestBucketIndexMonotoneAndCovering: walking sample values upward never
// decreases the bucket index, every value lands inside its bucket's range,
// and bucket ranges tile the value space without gaps.
func TestBucketIndexMonotoneAndCovering(t *testing.T) {
	last := -1
	for _, v := range bucketProbeValues() {
		i := bucketIndex(v)
		if i < last {
			t.Fatalf("bucketIndex not monotone: bucketIndex(%d) = %d after %d", v, i, last)
		}
		last = i
		if i < 0 || i >= nBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of [0,%d)", v, i, nBuckets)
		}
		if up := bucketUpper(i); v > up {
			t.Errorf("value %d above its bucket upper edge %d (bucket %d)", v, up, i)
		}
	}
}

// TestBucketEdgesContiguous: each bucket's range starts right after the
// previous bucket's upper edge, for the buckets reachable by uint64 values.
func TestBucketEdgesContiguous(t *testing.T) {
	maxIdx := bucketIndex(math.MaxUint64)
	prev := bucketUpper(0)
	for i := 1; i <= maxIdx; i++ {
		up := bucketUpper(i)
		if up <= prev {
			t.Fatalf("bucketUpper(%d) = %d not above bucketUpper(%d) = %d", i, up, i-1, prev)
		}
		// The lowest value in bucket i must map back to bucket i.
		if got := bucketIndex(prev + 1); got != i {
			t.Fatalf("bucketIndex(%d) = %d, want %d (gap or overlap at bucket edge)", prev+1, got, i)
		}
		prev = up
	}
	if up := bucketUpper(maxIdx); up != math.MaxUint64 {
		t.Errorf("top bucket upper edge = %d, want MaxUint64", up)
	}
}

// TestBucketEdgeValues: boundary samples (2^k-1, 2^k, 2^k+1) map into
// buckets whose range actually contains them.
func TestBucketEdgeValues(t *testing.T) {
	for k := uint(1); k < 64; k++ {
		for _, v := range []uint64{1<<k - 1, 1 << k, 1<<k + 1} {
			i := bucketIndex(v)
			up := bucketUpper(i)
			var lo uint64
			if i > 0 {
				lo = bucketUpper(i-1) + 1
			}
			if v < lo || v > up {
				t.Errorf("value %d in bucket %d with range [%d,%d]", v, i, lo, up)
			}
		}
	}
}

// TestHistogramRelativeError: the quantile estimate is an upper bound on
// the exact quantile and within the 2^-subBits relative error guarantee.
func TestHistogramRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	samples := make([]uint64, 0, 10_000)
	for i := 0; i < 10_000; i++ {
		// Log-uniform over ~6 decades, like latency distributions.
		v := uint64(math.Exp(rng.Float64() * 14))
		samples = append(samples, v)
		h.ObserveInt(int64(v))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	relErr := 1.0 / float64(subCnt) // 12.5% with subBits = 3
	for _, q := range []float64{0.50, 0.90, 0.95, 0.99, 1.0} {
		idx := int(math.Ceil(q*float64(len(samples)))) - 1
		exact := float64(samples[idx])
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("q=%.2f: estimate %.0f below exact %.0f", q, got, exact)
		}
		if exact > 0 && got > exact*(1+relErr)+1 {
			t.Errorf("q=%.2f: estimate %.0f exceeds exact %.0f by more than %.1f%%",
				q, got, exact, relErr*100)
		}
	}
}

// TestHistogramSmallCounts: with few samples the quantiles pick the right
// order statistic (ceil(q*n)-th smallest).
func TestHistogramSmallCounts(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile(0.5) = %v, want 0", got)
	}
	for _, v := range []int64{3, 1, 2} {
		h.ObserveInt(v)
	}
	// Exact buckets below subCnt: the median of {1,2,3} must be exactly 2.
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("median of {1,2,3} = %v, want 2", got)
	}
	if got := h.Quantile(1.0); got != 3 {
		t.Errorf("max quantile = %v, want 3", got)
	}
	if got := h.Mean(); got != 2 {
		t.Errorf("mean = %v, want 2", got)
	}
}

// TestHistogramNegativeClamp: negative samples count as zero rather than
// corrupting the bucket array.
func TestHistogramNegativeClamp(t *testing.T) {
	h := NewHistogram()
	h.ObserveInt(-100)
	h.Observe(-3.5)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if h.Max() != 0 || h.Sum() != 0 {
		t.Errorf("max = %d sum = %v, want 0/0", h.Max(), h.Sum())
	}
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("quantile of all-negative samples = %v, want 0", got)
	}
}

// TestHistogramQuantileClamp: the reported quantile never exceeds the
// observed maximum even when the bucket's upper edge does.
func TestHistogramQuantileClamp(t *testing.T) {
	h := NewHistogram()
	h.ObserveInt(1000) // bucket upper edge is above 1000
	if got := h.Quantile(0.99); got != 1000 {
		t.Errorf("single-sample quantile = %v, want clamped 1000", got)
	}
}

// bucketProbeValues returns an increasing sweep of interesting uint64
// values: the exact range, then every octave's edges and interior points.
func bucketProbeValues() []uint64 {
	var vals []uint64
	for v := uint64(0); v < subCnt*4; v++ {
		vals = append(vals, v)
	}
	for k := uint(5); k < 64; k++ {
		base := uint64(1) << k
		vals = append(vals, base-1, base, base+base/4, base+base/2, base+base-1)
	}
	vals = append(vals, math.MaxUint64)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveInt(int64(i) * 997)
	}
}
