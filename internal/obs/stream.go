package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"sync"
)

// StreamServer fans live epoch snapshots out to HTTP subscribers as
// server-sent events. It is the one deliberately cross-goroutine piece
// of the obs layer: Publish is called from the simulation goroutine
// (via Suite.OnSnapshot) while subscribers are served by net/http
// handler goroutines, so — unlike the Registry — it carries a mutex.
//
// Frames follow the SSE wire format: `event: <tag>` followed by a
// `data:` line holding the snapshot as one JSON object (the same shape
// WriteSnapshotsJSONL emits). A bounded backlog is replayed to late
// subscribers so a client attaching after the run finished still sees
// the most recent epochs; slow subscribers drop frames rather than
// stalling the simulation.
type StreamServer struct {
	mu      sync.Mutex
	subs    []chan []byte // subscriber slice, not a map: iteration order must be deterministic
	backlog [][]byte
	closed  bool
	addr    string
}

const (
	streamBacklogCap = 32 // most recent frames replayed to new subscribers
	streamChanCap    = 64 // per-subscriber buffer before frames drop
)

// NewStreamServer returns an empty stream server.
func NewStreamServer() *StreamServer { return &StreamServer{} }

// Publish encodes one snapshot and fans it out. Never blocks: a
// subscriber whose buffer is full misses the frame. Safe on a nil
// receiver (records nothing).
func (s *StreamServer) Publish(snap Snapshot) {
	if s == nil {
		return
	}
	buf, err := json.Marshal(snap)
	if err != nil {
		return // snapshots are plain maps; cannot happen in practice
	}
	s.PublishFrame(snap.Tag, buf)
}

// sseFrame renders one SSE wire frame: `event: <tag>` + `data: <payload>`.
func sseFrame(event string, data []byte) []byte {
	frame := make([]byte, 0, len(data)+len(event)+24)
	frame = append(frame, "event: "...)
	frame = append(frame, event...)
	frame = append(frame, "\ndata: "...)
	frame = append(frame, data...)
	frame = append(frame, "\n\n"...)
	return frame
}

// PublishFrame fans one event with a pre-encoded JSON payload out to
// subscribers, appending it to the replay backlog. Never blocks; frames
// published after Close are dropped. Safe on a nil receiver.
func (s *StreamServer) PublishFrame(event string, data []byte) {
	if s == nil {
		return
	}
	frame := sseFrame(event, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.backlog = append(s.backlog, frame)
	if len(s.backlog) > streamBacklogCap {
		s.backlog = s.backlog[len(s.backlog)-streamBacklogCap:]
	}
	for _, ch := range s.subs {
		select {
		case ch <- frame:
		default: // subscriber too slow; drop the frame for them
		}
	}
}

// Close publishes one final frame (event "terminal") and shuts the
// stream down: every subscriber receives the terminal event (unless its
// buffer was already full) and then sees its channel closed, so Handler
// loops drain and return instead of blocking forever. Late subscribers
// still replay the backlog — terminal frame included — and get an
// immediate end-of-stream, which is how a finished job reports its
// history idempotently. Idempotent; safe on a nil receiver.
func (s *StreamServer) Close(data []byte) {
	if s == nil {
		return
	}
	frame := sseFrame("terminal", data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.backlog = append(s.backlog, frame)
	if len(s.backlog) > streamBacklogCap {
		s.backlog = s.backlog[len(s.backlog)-streamBacklogCap:]
	}
	for _, ch := range s.subs {
		select {
		case ch <- frame:
		default: // subscriber 64 frames behind; it still sees the close
		}
		close(ch)
	}
	s.subs = nil
}

// subscribe registers a new subscriber and returns its channel plus the
// backlog to replay first. On a closed stream the channel comes back
// already closed: the subscriber replays history and ends immediately.
func (s *StreamServer) subscribe() (chan []byte, [][]byte) {
	ch := make(chan []byte, streamChanCap)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		close(ch)
	} else {
		s.subs = append(s.subs, ch)
	}
	replay := make([][]byte, len(s.backlog))
	copy(replay, s.backlog)
	return ch, replay
}

// unsubscribe removes a subscriber channel.
func (s *StreamServer) unsubscribe(ch chan []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, c := range s.subs {
		if c == ch {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			break
		}
	}
}

// Handler returns the SSE endpoint handler. It replays the backlog,
// then streams frames until the client disconnects.
func (s *StreamServer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)

		ch, replay := s.subscribe()
		defer s.unsubscribe(ch)
		for _, frame := range replay {
			if _, err := w.Write(frame); err != nil {
				return
			}
		}
		fl.Flush()
		for {
			select {
			case frame, ok := <-ch:
				if !ok {
					return // stream closed server-side; terminal frame already sent
				}
				if _, err := w.Write(frame); err != nil {
					return
				}
				fl.Flush()
			case <-r.Context().Done():
				return
			}
		}
	})
}

// StartStream binds addr and serves the SSE endpoint at /metrics/stream
// in the background, mirroring cliutil.StartPprof: the listen is
// synchronous so failures surface immediately, but a bound port only
// degrades the run — logf gets a warning and the simulation proceeds
// without streaming. Returns the server and whether it is live.
func StartStream(addr string, logf func(format string, args ...any)) (*StreamServer, bool) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if logf != nil {
			logf("metrics stream disabled: %v", err)
		}
		return nil, false
	}
	s := NewStreamServer()
	mux := http.NewServeMux()
	mux.Handle("/metrics/stream", s.Handler())
	if logf != nil {
		logf("streaming epoch metrics at http://%s/metrics/stream", ln.Addr())
	}
	go func() {
		// Serve returns only on listener failure; the process exiting is
		// the normal shutdown path for a CLI-lifetime server.
		if err := http.Serve(ln, mux); err != nil && logf != nil {
			logf("metrics stream stopped: %v", err)
		}
	}()
	s.addr = ln.Addr().String()
	return s, true
}

// Addr returns the bound listen address ("" when started manually).
func (s *StreamServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.addr
}
