package obs

import "sort"

// This file is the observability layer's side of the parallel-engine
// shard contract (see internal/sim/parallel.go and DESIGN.md §10). The
// obs package stays lock-free and single-writer: instead of sharing hot
// structures across shards, each shard gets its own instance (tracer,
// ledger, histogram) written only by that shard's goroutine, and the
// instances fold back together — deterministically — on the coordinator
// once every shard is parked.

// Merge folds o's samples into h. Bucket counts, sample count, and max
// combine exactly; the sums are integer-valued totals carried in
// float64, so addition is exact until 2^53 and merged summaries equal
// the single-instance summaries a serial run produces.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// OwnHistogram registers a new private histogram instance under name and
// returns it. Unlike Histogram — which hands every caller the same
// instance — each call creates a fresh one, so replicated subsystems
// that run on different shards can observe without sharing memory.
// Snapshots merge every instance of a name (shared and private), so the
// reported distribution is identical either way.
func (r *Registry) OwnHistogram(name string) *Histogram {
	h := NewHistogram()
	if r.histAdd == nil {
		r.histAdd = make(map[string][]*Histogram)
	}
	r.histAdd[name] = append(r.histAdd[name], h)
	return h
}

// mergedHist returns the histogram to summarize for name: the shared
// instance when it is the only one, else a merged copy.
func (r *Registry) mergedHist(name string) *Histogram {
	shared := r.hists[name]
	extra := r.histAdd[name]
	if len(extra) == 0 {
		return shared
	}
	m := NewHistogram()
	m.Merge(shared)
	for _, h := range extra {
		m.Merge(h)
	}
	return m
}

// Merge folds another ledger's classifications into l: totals add and
// per-vault rows add index-wise. The parallel runner gives each vault
// shard a private ledger and merges them into the run's ledger at the
// end; vault slices are disjoint across shards, so the merged per-vault
// rows are exactly the serial ledger's.
func (l *PrefetchLedger) Merge(o *PrefetchLedger) {
	if l == nil || o == nil {
		return
	}
	for i := range l.totals {
		l.totals[i] += o.totals[i]
	}
	for v := range o.perVault {
		for v >= len(l.perVault) {
			l.perVault = append(l.perVault, [outcomeCount]uint64{})
		}
		for i := range o.perVault[v] {
			l.perVault[v][i] += o.perVault[v][i]
		}
	}
}

// Reserve grows the span pool to at least capacity free records and pins
// it: after Reserve, Begin panics instead of growing the pool. Pinning
// is what makes the span set shard-safe — vault shards hold references
// into s.recs while charging causes, so the backing array must never
// move. The parallel runner reserves well above the structural in-flight
// bound (MSHR entries + coalesced secondaries + overflow queue); a
// panic here means that bound was wrong, which must fail loudly rather
// than silently race.
func (s *SpanSet) Reserve(capacity int) {
	if s == nil {
		return
	}
	for len(s.recs) < capacity {
		s.recs = append(s.recs, spanRec{})
		s.free = append(s.free, int32(len(s.recs)-1))
	}
	s.pinned = true
}

// ShardLedgers creates one private ledger per shard, labeled like the
// suite's own, for the parallel runner to hand to vault shards. Call
// MergeShardLedgers once every shard is parked to fold them back.
func (s *Suite) ShardLedgers(n int) []*PrefetchLedger {
	if s == nil || s.Ledger == nil {
		return make([]*PrefetchLedger, n)
	}
	out := make([]*PrefetchLedger, n)
	for i := range out {
		out[i] = NewPrefetchLedger(s.Ledger.Scheme())
	}
	return out
}

// MergeShardLedgers folds the shard ledgers into the suite's ledger, in
// shard order.
func (s *Suite) MergeShardLedgers(shards []*PrefetchLedger) {
	if s == nil || s.Ledger == nil {
		return
	}
	for _, l := range shards {
		s.Ledger.Merge(l)
	}
}

// ShardTracers creates one private tracer per shard with the same
// capacity as the suite's tracer (nil tracers when tracing is off).
// Each shard emits into its own ring; MergeShardTracers canonicalizes
// them into the suite's.
func (s *Suite) ShardTracers(n int) []*Tracer {
	out := make([]*Tracer, n)
	if s == nil || s.Tracer == nil {
		return out
	}
	for i := range out {
		out[i] = NewTracer(len(s.Tracer.buf))
	}
	return out
}

// MergeShardTracers folds the shard tracers into the suite's tracer.
// The merged ring holds the newest events of the union, ordered by
// (timestamp, then emitting shard, coordinator first) — a canonical
// order that depends only on what each shard emitted, never on thread
// interleaving, so same-seed parallel runs export identical traces.
// Equal-timestamp events from different shards may interleave
// differently than a serial run's trace (which orders them by engine
// execution); the metrics and attribution layers are unaffected.
// Dropped/total counts fold additively, matching the serial ring's
// accounting for the same emission stream.
func (s *Suite) MergeShardTracers(shards []*Tracer) {
	if s == nil || s.Tracer == nil {
		return
	}
	mt := s.Tracer
	type tagged struct {
		ev    Event
		shard int
		seq   int
	}
	var all []tagged
	for i, ev := range mt.Events() {
		all = append(all, tagged{ev, 0, i})
	}
	total, dropped := mt.total, mt.dropped
	for si, tr := range shards {
		if tr == nil {
			continue
		}
		for i, ev := range tr.Events() {
			all = append(all, tagged{ev, si + 1, i})
		}
		total += tr.total
		dropped += tr.dropped
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].ev.At != all[j].ev.At {
			return all[i].ev.At < all[j].ev.At
		}
		if all[i].shard != all[j].shard {
			return all[i].shard < all[j].shard
		}
		return all[i].seq < all[j].seq
	})
	if excess := len(all) - len(mt.buf); excess > 0 {
		dropped += uint64(excess)
		all = all[excess:]
	}
	mt.n, mt.next = 0, 0
	for _, t := range all {
		mt.buf[mt.next] = t.ev
		mt.next++
		mt.n++
	}
	if mt.next == len(mt.buf) {
		mt.next = 0
	}
	mt.total, mt.dropped = total, dropped
}
