package obs

import (
	"fmt"
)

// Cause tags one segment of a request's journey through the memory
// system. Every picosecond between a span's begin and its retirement is
// charged to exactly one cause, so the per-cause totals of a retired
// span sum to its end-to-end latency by construction.
type Cause uint8

// The cause taxonomy, in charging order along the request path. Field
// semantics are documented in docs/OBSERVABILITY.md.
const (
	// CauseQueue is time waiting behind other work: MSHR overflow,
	// coalesced secondary misses, and vault read-queue residence not
	// explained by refresh or an injected blackout.
	CauseQueue Cause = iota
	// CauseXbar is crossbar hops and vault ingress-port serialization.
	CauseXbar
	// CauseLink is serialization plus propagation on the serial links
	// (clean transfers; retry time is charged to CauseFaultRetry).
	CauseLink
	// CauseBankConflict is precharge time spent closing another row
	// before this request's row could be activated.
	CauseBankConflict
	// CauseRefreshStall is queue time overlapping the target bank's most
	// recent refresh window.
	CauseRefreshStall
	// CauseFaultRetry is injected-fault time: link CRC retransmissions,
	// vault ingress stalls, and queue time overlapping a bank blackout.
	CauseFaultRetry
	// CauseService is the bank access itself (activate when the bank was
	// idle, column access, data burst).
	CauseService
	// CausePFBufferHit is the prefetch-buffer hit latency for demand
	// requests served from the buffer instead of a bank.
	CausePFBufferHit

	causeCount
)

var causeNames = [causeCount]string{
	CauseQueue:        "queue",
	CauseXbar:         "xbar",
	CauseLink:         "link",
	CauseBankConflict: "bank_conflict",
	CauseRefreshStall: "refresh_stall",
	CauseFaultRetry:   "fault_retry",
	CauseService:      "service",
	CausePFBufferHit:  "pfbuffer_hit",
}

// String returns the snake_case cause name used in metrics and reports.
func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause-%d", uint8(c))
}

// Causes returns every cause in charging order, for report rendering.
func Causes() []Cause {
	out := make([]Cause, causeCount)
	for i := range out {
		out[i] = Cause(i)
	}
	return out
}

// Metric names the attribution layer registers. They are exported
// constants so the statsreg lint rule can verify every span.*/pf.* name
// is a compile-time literal (no dynamic fmt.Sprintf names).
const (
	MetricSpanStarted    = "span.started"
	MetricSpanRetired    = "span.retired"
	MetricSpanE2EPs      = "span.e2e_ps"
	MetricSpanE2EHist    = "span.e2e_latency_ps"
	MetricTracerDropped  = "obs.tracer.dropped"
	metricSpanCausePfx   = "span." // + Cause.String() + "_ps"; see causeMetricNames
	MetricPFUsefulTimely = "pf.useful_timely"
	MetricPFUsefulLate   = "pf.useful_late"
	MetricPFUnused       = "pf.evicted_unused"
	MetricPFConflict     = "pf.conflict_victim"
)

// causeMetricNames holds the per-cause counter names as literals so the
// registry never sees a computed name (the statsreg rule's contract).
var causeMetricNames = [causeCount]string{
	CauseQueue:        "span.queue_ps",
	CauseXbar:         "span.xbar_ps",
	CauseLink:         "span.link_ps",
	CauseBankConflict: "span.bank_conflict_ps",
	CauseRefreshStall: "span.refresh_stall_ps",
	CauseFaultRetry:   "span.fault_retry_ps",
	CauseService:      "span.service_ps",
	CausePFBufferHit:  "span.pfbuffer_hit_ps",
}

// CauseMetricName returns the registered counter name for a cause's
// accumulated picoseconds (e.g. "span.bank_conflict_ps").
func CauseMetricName(c Cause) string { return causeMetricNames[c] }

// spanRec is one pooled span record. Records are recycled through a free
// list exactly like the engine's eventNode pool: the generation counter
// invalidates stale SpanRefs after recycling, and steady-state
// begin/advance/retire traffic allocates nothing.
type spanRec struct {
	start   int64 // span begin, ps
	cursor  int64 // end of the last charged segment, ps
	causePs [causeCount]int64
	vault   int32
	gen     uint32
}

// SpanRef is a generation-counted handle to a live span. The zero value
// means "no span" and every SpanSet method accepts it as a no-op, so
// uninstrumented requests carry no conditionals.
type SpanRef struct {
	id  int32 // record index + 1; 0 = none
	gen uint32
}

// Valid reports whether the ref points at a span (it may still be stale).
func (r SpanRef) Valid() bool { return r.id != 0 }

// SpanSet owns the attribution state of one run: the pooled span records,
// the per-cause totals they fold into on retirement, and the per-vault
// conflict heatmap. Like the Registry it is confined to the simulation
// goroutine. A nil *SpanSet is valid everywhere and records nothing, so
// attribution-off runs pay only a nil check.
type SpanSet struct {
	recs   []spanRec
	free   []int32
	pinned bool // Reserve called: the pool may no longer grow (shard safety)

	// staged carries a span across the synchronous MSHR -> cube handoff
	// without widening the Backend interface: the MSHR stages the primary
	// miss's span immediately before calling the backend, and the cube
	// unstages it inside the same call.
	staged SpanRef

	started  uint64
	retired  uint64
	e2eTotal uint64
	causePs  [causeCount]uint64

	// vaultConflictPs is the conflict heatmap: bank_conflict picoseconds
	// folded per vault at retirement. Grown on demand (vault ids are
	// small and dense).
	vaultConflictPs []uint64

	seq int64 // retired-span sequence, the trace event's Row

	// Registry handles captured at EnableAttribution; folding on the hot
	// path touches only these preallocated structures.
	causeHist [causeCount]*Histogram
	e2eHist   *Histogram
	tr        *Tracer
}

// NewSpanSet returns a span set with capacity preallocated records.
func NewSpanSet(capacity int) *SpanSet {
	if capacity <= 0 {
		capacity = 256
	}
	s := &SpanSet{
		recs: make([]spanRec, capacity),
		free: make([]int32, 0, capacity),
	}
	for i := capacity - 1; i >= 0; i-- {
		s.free = append(s.free, int32(i))
	}
	return s
}

// register wires the span set's totals and histograms into reg and its
// retirement trace events into tr. Called by Suite.EnableAttribution.
func (s *SpanSet) register(reg *Registry, tr *Tracer) {
	s.tr = tr
	if reg == nil {
		return
	}
	reg.CounterFunc(MetricSpanStarted, func() uint64 { return s.started })
	reg.CounterFunc(MetricSpanRetired, func() uint64 { return s.retired })
	reg.CounterFunc(MetricSpanE2EPs, func() uint64 { return s.e2eTotal })
	reg.CounterFunc("span.queue_ps", func() uint64 { return s.causePs[CauseQueue] })
	reg.CounterFunc("span.xbar_ps", func() uint64 { return s.causePs[CauseXbar] })
	reg.CounterFunc("span.link_ps", func() uint64 { return s.causePs[CauseLink] })
	reg.CounterFunc("span.bank_conflict_ps", func() uint64 { return s.causePs[CauseBankConflict] })
	reg.CounterFunc("span.refresh_stall_ps", func() uint64 { return s.causePs[CauseRefreshStall] })
	reg.CounterFunc("span.fault_retry_ps", func() uint64 { return s.causePs[CauseFaultRetry] })
	reg.CounterFunc("span.service_ps", func() uint64 { return s.causePs[CauseService] })
	reg.CounterFunc("span.pfbuffer_hit_ps", func() uint64 { return s.causePs[CausePFBufferHit] })
	s.e2eHist = reg.Histogram(MetricSpanE2EHist)
	for c := Cause(0); c < causeCount; c++ {
		s.causeHist[c] = reg.Histogram(causeMetricNames[c])
	}
}

// rec resolves a ref to its live record, or nil for the zero ref, a
// stale generation, or a nil set.
func (s *SpanSet) rec(ref SpanRef) *spanRec {
	if s == nil || ref.id == 0 {
		return nil
	}
	r := &s.recs[ref.id-1]
	if r.gen != ref.gen {
		return nil
	}
	return r
}

// Begin opens a span at atPs and returns its handle. The pool grows only
// at high water; steady state allocates nothing.
func (s *SpanSet) Begin(atPs int64) SpanRef {
	if s == nil {
		return SpanRef{}
	}
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		if s.pinned {
			// Growing would move the backing array out from under vault
			// shards holding record pointers; see Reserve.
			panic("obs: span pool exhausted after Reserve")
		}
		s.recs = append(s.recs, spanRec{})
		idx = int32(len(s.recs) - 1)
	}
	r := &s.recs[idx]
	r.start = atPs
	r.cursor = atPs
	r.vault = -1
	for i := range r.causePs {
		r.causePs[i] = 0
	}
	s.started++
	return SpanRef{id: idx + 1, gen: r.gen}
}

// SetVault tags the span with its target vault (for the conflict heatmap).
func (s *SpanSet) SetVault(ref SpanRef, vault int) {
	if r := s.rec(ref); r != nil {
		r.vault = int32(vault)
	}
}

// Advance charges d picoseconds to cause and moves the span's cursor.
// Negative or zero durations are ignored.
func (s *SpanSet) Advance(ref SpanRef, c Cause, d int64) {
	if d <= 0 {
		return
	}
	if r := s.rec(ref); r != nil {
		r.causePs[c] += d
		r.cursor += d
	}
}

// AdvanceTo charges the time from the span's cursor up to atPs to cause.
// A cursor already at or past atPs charges nothing, so segments computed
// independently can never overlap or double-charge.
func (s *SpanSet) AdvanceTo(ref SpanRef, c Cause, atPs int64) {
	if r := s.rec(ref); r != nil {
		if d := atPs - r.cursor; d > 0 {
			r.causePs[c] += d
			r.cursor = atPs
		}
	}
}

// Retire charges the final segment (cursor to atPs) to cause and folds
// the span into the per-cause totals, histograms and the vault conflict
// heatmap; the record returns to the pool. The span's cause segments are
// contiguous from start to atPs, so their sum equals the end-to-end
// latency exactly — the invariant CheckInvariant enforces globally.
func (s *SpanSet) Retire(ref SpanRef, c Cause, atPs int64) {
	r := s.rec(ref)
	if r == nil {
		return
	}
	if d := atPs - r.cursor; d > 0 {
		r.causePs[c] += d
		r.cursor = atPs
	}
	e2e := r.cursor - r.start
	s.e2eTotal += uint64(e2e)
	if s.e2eHist != nil {
		s.e2eHist.ObserveInt(e2e)
	}
	dominant := Cause(0)
	for i := Cause(0); i < causeCount; i++ {
		v := r.causePs[i]
		if v == 0 {
			continue
		}
		s.causePs[i] += uint64(v)
		if s.causeHist[i] != nil {
			s.causeHist[i].ObserveInt(v)
		}
		if v > r.causePs[dominant] || r.causePs[dominant] == 0 {
			dominant = i
		}
	}
	if r.vault >= 0 {
		for int(r.vault) >= len(s.vaultConflictPs) {
			s.vaultConflictPs = append(s.vaultConflictPs, 0)
		}
		s.vaultConflictPs[r.vault] += uint64(r.causePs[CauseBankConflict])
	}
	s.seq++
	s.tr.Emit(Event{At: r.start, Type: EvSpan, Vault: r.vault,
		Bank: int32(dominant), Row: s.seq, Arg: e2e})
	s.retired++
	r.gen++
	s.free = append(s.free, ref.id-1)
}

// Stage parks a span for the synchronous handoff to the next layer.
func (s *SpanSet) Stage(ref SpanRef) {
	if s != nil {
		s.staged = ref
	}
}

// Unstage claims the parked span (zero ref when nothing is staged).
func (s *SpanSet) Unstage() SpanRef {
	if s == nil {
		return SpanRef{}
	}
	ref := s.staged
	s.staged = SpanRef{}
	return ref
}

// Started returns spans opened so far.
func (s *SpanSet) Started() uint64 {
	if s == nil {
		return 0
	}
	return s.started
}

// Retired returns spans retired so far.
func (s *SpanSet) Retired() uint64 {
	if s == nil {
		return 0
	}
	return s.retired
}

// Active returns spans currently in flight.
func (s *SpanSet) Active() uint64 {
	if s == nil {
		return 0
	}
	return s.started - s.retired
}

// CausePs returns the picoseconds folded so far for one cause.
func (s *SpanSet) CausePs(c Cause) uint64 {
	if s == nil {
		return 0
	}
	return s.causePs[c]
}

// VaultConflictPs returns the per-vault bank-conflict heatmap (index =
// vault id; vaults that never retired a span may be absent).
func (s *SpanSet) VaultConflictPs() []uint64 {
	if s == nil {
		return nil
	}
	return s.vaultConflictPs
}

// CheckInvariant validates the attribution accounting: retired spans
// never exceed started ones, the free list matches the live count, and
// the per-cause totals sum exactly to the end-to-end total — i.e. every
// retired request's cause columns add up to its measured latency. It is
// read-only and wired into the simulator's epoch invariant checker.
func (s *SpanSet) CheckInvariant() error {
	if s == nil {
		return nil
	}
	if s.retired > s.started {
		return fmt.Errorf("obs: %d spans retired but only %d started", s.retired, s.started)
	}
	live := uint64(len(s.recs)) - uint64(len(s.free))
	staged := uint64(0)
	if s.staged.id != 0 {
		staged = 1 // staged spans are live but counted by the handoff
	}
	if active := s.started - s.retired; live != active && live != active+staged {
		return fmt.Errorf("obs: %d live span records but %d spans in flight", live, active)
	}
	var causeSum uint64
	for _, v := range s.causePs {
		causeSum += v
	}
	if causeSum != s.e2eTotal {
		return fmt.Errorf("obs: cause totals sum to %d ps but end-to-end total is %d ps", causeSum, s.e2eTotal)
	}
	return nil
}

// CauseBreakdown is one cause's share of a run's attributed latency.
type CauseBreakdown struct {
	Cause   string  `json:"cause"`
	TotalPs uint64  `json:"total_ps"`
	Share   float64 `json:"share"`   // of the end-to-end total
	MeanPs  float64 `json:"mean_ps"` // per retired span
}

// AttributionSummary is the end-of-run attribution report: where the
// run's read latency went, per cause and per vault, plus the prefetch
// efficacy ledger. It round-trips through JSON as part of camps.Results.
type AttributionSummary struct {
	SpansStarted    uint64           `json:"spans_started"`
	SpansRetired    uint64           `json:"spans_retired"`
	E2ETotalPs      uint64           `json:"e2e_total_ps"`
	Causes          []CauseBreakdown `json:"causes"`
	VaultConflictPs []uint64         `json:"vault_conflict_ps,omitempty"`
	Ledger          *LedgerSummary   `json:"ledger,omitempty"`
}

// Summary folds the set's totals into an exportable report.
func (s *SpanSet) Summary() *AttributionSummary {
	if s == nil {
		return nil
	}
	sum := &AttributionSummary{
		SpansStarted: s.started,
		SpansRetired: s.retired,
		E2ETotalPs:   s.e2eTotal,
	}
	for c := Cause(0); c < causeCount; c++ {
		cb := CauseBreakdown{Cause: c.String(), TotalPs: s.causePs[c]}
		if s.e2eTotal > 0 {
			cb.Share = float64(s.causePs[c]) / float64(s.e2eTotal)
		}
		if s.retired > 0 {
			cb.MeanPs = float64(s.causePs[c]) / float64(s.retired)
		}
		sum.Causes = append(sum.Causes, cb)
	}
	if len(s.vaultConflictPs) > 0 {
		sum.VaultConflictPs = append([]uint64(nil), s.vaultConflictPs...)
	}
	return sum
}
