package obs

import (
	"bufio"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// readSSEFrame consumes one complete SSE frame (through its blank-line
// terminator) and returns the event name and data payload.
func readSSEFrame(t *testing.T, br *bufio.Reader) (event, data string) {
	t.Helper()
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE frame: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			return event, data
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// TestStreamBacklogReplay: a subscriber attaching after frames were
// published still receives the most recent ones, bounded by the backlog
// cap.
func TestStreamBacklogReplay(t *testing.T) {
	s := NewStreamServer()
	for i := 0; i < streamBacklogCap+10; i++ {
		s.Publish(Snapshot{AtPs: int64(i), Tag: "epoch"})
	}
	if got := len(s.backlog); got != streamBacklogCap {
		t.Fatalf("backlog holds %d frames, want %d", got, streamBacklogCap)
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	br := bufio.NewReader(resp.Body)
	event, data := readSSEFrame(t, br)
	if event != "epoch" {
		t.Errorf("event = %q, want epoch", event)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(data), &snap); err != nil {
		t.Fatalf("data not valid snapshot JSON: %v", err)
	}
	if snap.AtPs != 10 { // oldest surviving frame after the backlog trim
		t.Errorf("first replayed AtPs = %d, want 10", snap.AtPs)
	}
}

// TestStreamLivePublish: frames published while a subscriber is attached
// arrive on its stream.
func TestStreamLivePublish(t *testing.T) {
	s := NewStreamServer()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// The handler registers the subscriber before its first flush; poll
	// until it appears, then publish.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.subs)
		s.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}
	s.Publish(Snapshot{AtPs: 42, Tag: "live"})

	event, data := readSSEFrame(t, bufio.NewReader(resp.Body))
	if event != "live" || !strings.Contains(data, `"at_ps":42`) {
		t.Errorf("frame = %q / %q", event, data)
	}
}

// TestStreamCloseTerminal: Close delivers a terminal frame to attached
// subscribers and ends their streams; late subscribers replay the
// backlog (terminal included) and see immediate end-of-stream.
func TestStreamCloseTerminal(t *testing.T) {
	s := NewStreamServer()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.subs)
		s.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}

	s.PublishFrame("cell", []byte(`{"key":"a"}`))
	s.Close([]byte(`{"state":"done"}`))
	s.PublishFrame("cell", []byte(`{"key":"dropped"}`)) // after Close: ignored

	br := bufio.NewReader(resp.Body)
	event, data := readSSEFrame(t, br)
	if event != "cell" || data != `{"key":"a"}` {
		t.Errorf("first frame = %q / %q", event, data)
	}
	event, data = readSSEFrame(t, br)
	if event != "terminal" || data != `{"state":"done"}` {
		t.Errorf("terminal frame = %q / %q", event, data)
	}
	// The handler returns after the channel closes, so the body ends.
	if _, err := br.ReadByte(); err == nil {
		t.Error("stream kept going after terminal frame")
	}

	// A late subscriber still sees the full history and an immediate end.
	resp2, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	br2 := bufio.NewReader(resp2.Body)
	if event, _ := readSSEFrame(t, br2); event != "cell" {
		t.Errorf("late replay first event = %q, want cell", event)
	}
	if event, _ := readSSEFrame(t, br2); event != "terminal" {
		t.Errorf("late replay second event = %q, want terminal", event)
	}
	if _, err := br2.ReadByte(); err == nil {
		t.Error("late subscriber stream did not end after terminal")
	}
	s.Close(nil) // idempotent
}

// TestStartStreamDegradesOnBoundPort: a port already in use disables
// streaming with a warning instead of failing the run, mirroring
// cliutil.StartPprof.
func TestStartStreamDegradesOnBoundPort(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var msgs []string
	logf := func(format string, args ...any) {
		msgs = append(msgs, format)
	}
	s, ok := StartStream(ln.Addr().String(), logf)
	if ok || s != nil {
		t.Fatalf("StartStream on a bound port = (%v, %v), want (nil, false)", s, ok)
	}
	if len(msgs) != 1 || !strings.Contains(msgs[0], "metrics stream disabled") {
		t.Errorf("warning messages = %q", msgs)
	}
	s.Publish(Snapshot{}) // nil receiver: the caller needs no guard
	if s.Addr() != "" {
		t.Error("nil server reported an address")
	}
}

// TestStartStreamServes: a successful start binds the address, serves
// /metrics/stream, and replays published snapshots to clients.
func TestStartStreamServes(t *testing.T) {
	s, ok := StartStream("127.0.0.1:0", nil)
	if !ok {
		t.Fatal("StartStream failed on an ephemeral port")
	}
	s.Publish(Snapshot{AtPs: 7, Tag: "epoch"})

	resp, err := http.Get("http://" + s.Addr() + "/metrics/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	event, data := readSSEFrame(t, bufio.NewReader(resp.Body))
	if event != "epoch" || !strings.Contains(data, `"at_ps":7`) {
		t.Errorf("frame = %q / %q", event, data)
	}
}
