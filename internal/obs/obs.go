// Package obs is the simulator-wide observability layer: a metrics
// registry of named counters, gauges and log-bucketed latency histograms,
// plus a ring-buffered structured event tracer (see tracer.go).
//
// Design constraints, in order:
//
//  1. Zero allocation on the hot path. Components capture *Counter /
//     *Histogram handles once at instrumentation time; Observe/Inc/Emit
//     touch only preallocated storage. All map lookups happen during
//     registration or at snapshot/export time.
//  2. One registry per simulation. Like the event engine, a Registry is
//     confined to a single goroutine; the harness runs cells in parallel
//     by giving each its own engine *and* its own registry, so nothing
//     here needs atomics or locks.
//  3. Additive registration. Replicated subsystems (32 vault controllers,
//     8 cores) each register a reader function under the *same* metric
//     name; a snapshot sums them. Registering only one vault therefore
//     yields per-vault values and registering all of them yields the
//     cube-wide aggregate, with no coordination between the components.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Counter is a registry-owned monotonic counter. Use it for new metrics
// that have no pre-existing private field; subsystems with existing
// counters alias them via Registry.CounterFunc instead.
type Counter struct {
	v uint64
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.v += d }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a registry-owned instantaneous value.
type Gauge struct {
	v float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Registry holds every registered metric of one simulation.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	counterFns map[string][]func() uint64
	gaugeFns   map[string][]func() float64
	// histAdd holds per-component histogram instances (OwnHistogram, see
	// shard.go); snapshots merge them with the shared instance of the
	// same name.
	histAdd map[string][]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		counterFns: make(map[string][]func() uint64),
		gaugeFns:   make(map[string][]func() float64),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Repeated calls with one name return the same instance.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. Replicated subsystems sharing one name share one histogram,
// which merges their distributions for free.
func (r *Registry) Histogram(name string) *Histogram {
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// CounterFunc registers a reader for an externally owned counter (an
// existing private stats field). Multiple registrations under one name
// sum at snapshot time, so per-vault / per-core components all register
// the same name.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.counterFns[name] = append(r.counterFns[name], fn)
}

// GaugeFunc registers a reader for an externally owned instantaneous
// value. Multiple registrations under one name sum at snapshot time.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.gaugeFns[name] = append(r.gaugeFns[name], fn)
}

// HistSummary is a histogram rendered down to its headline statistics.
type HistSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Snapshot is the state of every registered metric at one instant.
type Snapshot struct {
	AtPs       int64                  `json:"at_ps"`
	Tag        string                 `json:"tag"`
	Counters   map[string]uint64      `json:"counters,omitempty"`
	Gauges     map[string]float64     `json:"gauges,omitempty"`
	Histograms map[string]HistSummary `json:"histograms,omitempty"`
}

// Counter returns a counter's value from the snapshot (0 if absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Snapshot evaluates every metric. Reader functions run here, never on
// the hot path; multiple registrations of one name are summed.
func (r *Registry) Snapshot(tag string, atPs int64) Snapshot {
	s := Snapshot{
		AtPs:     atPs,
		Tag:      tag,
		Counters: make(map[string]uint64, len(r.counters)+len(r.counterFns)),
		Gauges:   make(map[string]float64, len(r.gauges)+len(r.gaugeFns)),
	}
	for name, c := range r.counters {
		s.Counters[name] += c.Value()
	}
	for name, fns := range r.counterFns {
		for _, fn := range fns {
			s.Counters[name] += fn()
		}
	}
	for name, g := range r.gauges {
		s.Gauges[name] += g.Value()
	}
	for name, fns := range r.gaugeFns {
		for _, fn := range fns {
			s.Gauges[name] += fn()
		}
	}
	if len(r.hists)+len(r.histAdd) > 0 {
		s.Histograms = make(map[string]HistSummary, len(r.hists)+len(r.histAdd))
		histNames := make(map[string]bool, len(r.hists)+len(r.histAdd))
		for name := range r.hists {
			histNames[name] = true
		}
		for name := range r.histAdd {
			histNames[name] = true
		}
		for name := range histNames {
			h := r.mergedHist(name)
			s.Histograms[name] = HistSummary{
				Count: h.Count(),
				Mean:  h.Mean(),
				P50:   h.Quantile(0.50),
				P95:   h.Quantile(0.95),
				P99:   h.Quantile(0.99),
				Max:   float64(h.Max()),
			}
		}
	}
	return s
}

// MetricNames returns every registered metric name, sorted, for
// discoverability in CLIs and docs.
func (r *Registry) MetricNames() []string {
	seen := make(map[string]bool)
	for n := range r.counters {
		seen[n] = true
	}
	for n := range r.counterFns {
		seen[n] = true
	}
	for n := range r.gauges {
		seen[n] = true
	}
	for n := range r.gaugeFns {
		seen[n] = true
	}
	for n := range r.hists {
		seen[n] = true
	}
	for n := range r.histAdd {
		seen[n] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteSnapshotsJSONL writes one JSON object per snapshot, one per line
// (map keys are emitted sorted by encoding/json, so output is
// deterministic).
func WriteSnapshotsJSONL(w io.Writer, snaps []Snapshot) error {
	enc := json.NewEncoder(w)
	for i := range snaps {
		if err := enc.Encode(&snaps[i]); err != nil {
			return fmt.Errorf("obs: snapshot %d: %w", i, err)
		}
	}
	return nil
}

// Suite bundles the per-run observability state: the registry every
// subsystem publishes into, the event tracer, the epoch snapshots
// accumulated over the run, and — when EnableAttribution has been
// called — the request-span set and prefetch ledger. A Suite belongs to
// exactly one simulation.
type Suite struct {
	Registry *Registry
	Tracer   *Tracer

	// Spans and Ledger are nil until EnableAttribution: the request path
	// checks only a nil receiver, so attribution-off runs stay free.
	Spans  *SpanSet
	Ledger *PrefetchLedger

	// OnSnapshot, when set, observes every snapshot Snap records — the
	// hook live streaming (StreamServer.Publish) attaches to.
	OnSnapshot func(Snapshot)

	snaps []Snapshot
}

// NewSuite returns a suite whose tracer holds traceCap events
// (traceCap <= 0 selects the default ring size).
func NewSuite(traceCap int) *Suite {
	if traceCap <= 0 {
		traceCap = DefaultTraceCap
	}
	s := &Suite{Registry: NewRegistry(), Tracer: NewTracer(traceCap)}
	s.Registry.CounterFunc(MetricTracerDropped, s.Tracer.Dropped)
	return s
}

// EnableAttribution switches on per-request latency spans and the
// prefetch efficacy ledger, registering their metrics. scheme labels
// the ledger with the prefetch engine driving the run. Idempotent.
func (s *Suite) EnableAttribution(scheme string) {
	if s.Spans == nil {
		s.Spans = NewSpanSet(0)
		s.Spans.register(s.Registry, s.Tracer)
	}
	if s.Ledger == nil {
		s.Ledger = NewPrefetchLedger(scheme)
		s.Ledger.register(s.Registry)
	}
}

// AttributionEnabled reports whether EnableAttribution has been called.
func (s *Suite) AttributionEnabled() bool {
	return s != nil && s.Spans != nil
}

// Attribution folds the span set and ledger into an exportable summary,
// or nil when attribution is off.
func (s *Suite) Attribution() *AttributionSummary {
	if s == nil || s.Spans == nil {
		return nil
	}
	sum := s.Spans.Summary()
	sum.Ledger = s.Ledger.Summary()
	return sum
}

// Snap records one registry snapshot tagged tag at simulation time atPs
// and forwards it to the OnSnapshot hook when one is attached.
func (s *Suite) Snap(tag string, atPs int64) Snapshot {
	snap := s.Registry.Snapshot(tag, atPs)
	s.snaps = append(s.snaps, snap)
	if s.OnSnapshot != nil {
		s.OnSnapshot(snap)
	}
	return snap
}

// Snapshots returns the snapshots recorded so far, in order.
func (s *Suite) Snapshots() []Snapshot { return s.snaps }

// WriteMetrics writes the accumulated snapshots as JSONL.
func (s *Suite) WriteMetrics(w io.Writer) error {
	return WriteSnapshotsJSONL(w, s.snaps)
}
