package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Compact trace format (version 2): per-record varint encoding with
// address deltas. Synthetic traces are dominated by small strides, so
// zig-zag deltas shrink a record from 13 bytes to typically 3–4.
//
// Layout: magic "CAMPSTR2", then per record:
//
//	uvarint gap
//	svarint addressDelta (from the previous record's address; first record
//	        is a delta from zero)
//	byte    flags (bit0 write)

var compactMagic = [8]byte{'C', 'A', 'M', 'P', 'S', 'T', 'R', '2'}

// CompactWriter streams records in the compact format.
type CompactWriter struct {
	w     *bufio.Writer
	prev  uint64
	count uint64
	began bool
}

// NewCompactWriter returns a compact-format writer on w.
func NewCompactWriter(w io.Writer) *CompactWriter {
	return &CompactWriter{w: bufio.NewWriter(w)}
}

// Write appends one record.
func (cw *CompactWriter) Write(rec Record) error {
	if !cw.began {
		if _, err := cw.w.Write(compactMagic[:]); err != nil {
			return err
		}
		cw.began = true
	}
	var buf [binary.MaxVarintLen64 * 2]byte
	n := binary.PutUvarint(buf[:], uint64(rec.Gap))
	n += binary.PutVarint(buf[n:], int64(rec.Addr)-int64(cw.prev))
	if _, err := cw.w.Write(buf[:n]); err != nil {
		return err
	}
	flags := byte(0)
	if rec.Write {
		flags = 1
	}
	if err := cw.w.WriteByte(flags); err != nil {
		return err
	}
	cw.prev = rec.Addr
	cw.count++
	return nil
}

// Count returns records written.
func (cw *CompactWriter) Count() uint64 { return cw.count }

// Flush flushes buffered output.
func (cw *CompactWriter) Flush() error {
	if !cw.began {
		if _, err := cw.w.Write(compactMagic[:]); err != nil {
			return err
		}
		cw.began = true
	}
	return cw.w.Flush()
}

// CompactReader reads the compact format. It implements Reader.
type CompactReader struct {
	r      *bufio.Reader
	prev   uint64
	header bool
}

// NewCompactReader wraps r.
func NewCompactReader(r io.Reader) *CompactReader {
	return &CompactReader{r: bufio.NewReader(r)}
}

// Next implements Reader.
func (cr *CompactReader) Next() (Record, error) {
	if !cr.header {
		var magic [8]byte
		if _, err := io.ReadFull(cr.r, magic[:]); err != nil {
			// A stream with no header at all is corrupt, not empty: a valid
			// empty trace still carries the magic, so plain EOF here would
			// let a truncated file masquerade as zero records.
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return Record{}, fmt.Errorf("trace: compact header: %w", err)
		}
		if magic != compactMagic {
			return Record{}, fmt.Errorf("trace: bad compact magic %q", magic[:])
		}
		cr.header = true
	}
	gap, err := binary.ReadUvarint(cr.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: compact gap: %w", err)
	}
	if gap > 0xFFFFFFFF {
		return Record{}, fmt.Errorf("trace: compact gap %d overflows uint32", gap)
	}
	delta, err := binary.ReadVarint(cr.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: compact delta: %w", err)
	}
	flags, err := cr.r.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("trace: compact flags: %w", err)
	}
	if flags > 1 {
		return Record{}, fmt.Errorf("trace: corrupt compact flags %#x", flags)
	}
	addr := uint64(int64(cr.prev) + delta)
	cr.prev = addr
	return Record{Gap: uint32(gap), Addr: addr, Write: flags == 1}, nil
}

// OpenReader sniffs the magic of a trace stream and returns the matching
// reader (fixed v1 or compact v2). The reader must support at least 8
// bytes of lookahead, which bufio provides.
func OpenReader(r io.Reader) (Reader, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(8)
	if err != nil {
		return nil, fmt.Errorf("trace: sniffing format: %w", err)
	}
	switch {
	case [8]byte(magic) == fileMagic:
		return NewFileReader(br), nil
	case [8]byte(magic) == compactMagic:
		return NewCompactReader(br), nil
	default:
		return nil, fmt.Errorf("trace: unrecognized magic %q", magic)
	}
}
