package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzCompactDecode feeds arbitrary bytes to the compact (v2) trace
// reader. The decoder must never panic and must fail cleanly on garbage;
// whatever prefix it does decode must survive a re-encode/re-decode
// round trip bit-exactly, since the compact format is the archival
// representation of workloads.
func FuzzCompactDecode(f *testing.F) {
	// Seed with real encodings: empty, a small stream, and adversarial
	// delta patterns (negative strides, max gaps).
	encode := func(recs []Record) []byte {
		var buf bytes.Buffer
		w := NewCompactWriter(&buf)
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(encode(nil))
	f.Add(encode([]Record{{Gap: 0, Addr: 64, Write: false}, {Gap: 3, Addr: 128, Write: true}}))
	f.Add(encode([]Record{{Gap: 0xFFFFFFFF, Addr: 1 << 62}, {Gap: 1, Addr: 0}}))
	f.Add([]byte("CAMPSTR2"))           // header only
	f.Add([]byte("CAMPSTR1\x00\x00"))   // wrong magic
	f.Add(append([]byte("CAMPSTR2"), 0x80, 0x80)) // truncated uvarint
	var big [16]byte
	n := binary.PutUvarint(big[:], 1<<40) // gap overflowing uint32
	f.Add(append([]byte("CAMPSTR2"), big[:n]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewCompactReader(bytes.NewReader(data))
		var recs []Record
		for {
			rec, err := r.Next()
			if err != nil {
				if errors.Is(err, io.EOF) && len(data) < len("CAMPSTR2") {
					t.Fatalf("EOF reported for a stream with no valid header")
				}
				break
			}
			recs = append(recs, rec)
			if len(recs) > len(data) { // >= 3 bytes per record: cannot happen
				t.Fatalf("decoded %d records from %d bytes", len(recs), len(data))
			}
		}

		// Round trip the decoded prefix.
		var buf bytes.Buffer
		w := NewCompactWriter(&buf)
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if w.Count() != uint64(len(recs)) {
			t.Fatalf("writer count %d, want %d", w.Count(), len(recs))
		}
		r2 := NewCompactReader(&buf)
		for i, want := range recs {
			got, err := r2.Next()
			if err != nil {
				t.Fatalf("round trip: record %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("round trip: record %d = %+v, want %+v", i, got, want)
			}
		}
		if _, err := r2.Next(); !errors.Is(err, io.EOF) {
			t.Fatalf("round trip: trailing record where EOF expected (err=%v)", err)
		}
	})
}
