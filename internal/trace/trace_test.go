package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func TestSliceReaderAndLimit(t *testing.T) {
	recs := []Record{{Gap: 1, Addr: 64}, {Gap: 2, Addr: 128, Write: true}, {Gap: 3, Addr: 192}}
	r := NewLimit(NewSliceReader(recs), 2)
	var got []Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Fatalf("got %+v", got)
	}
}

func TestFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := []Record{
		{Gap: 0, Addr: 0},
		{Gap: 7, Addr: 0xdeadbeef00, Write: true},
		{Gap: math.MaxUint32, Addr: math.MaxUint64 &^ 63},
	}
	for _, rec := range want {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("count = %d", w.Count())
	}
	fr := NewFileReader(&buf)
	for i, wantRec := range want {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != wantRec {
			t.Fatalf("record %d = %+v, want %+v", i, got, wantRec)
		}
	}
	if _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestFileReaderEmptyFileHasHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFileReader(&buf)
	if _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("empty trace should EOF cleanly, got %v", err)
	}
}

func TestFileReaderRejectsBadMagic(t *testing.T) {
	fr := NewFileReader(bytes.NewReader([]byte("NOTATRACE_____")))
	if _, err := fr.Next(); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestFileReaderRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(Record{Addr: 64})
	_ = w.Flush()
	data := buf.Bytes()[:buf.Len()-3] // chop the last record
	fr := NewFileReader(bytes.NewReader(data))
	if _, err := fr.Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestFileReaderRejectsCorruptFlags(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(Record{Addr: 64})
	_ = w.Flush()
	data := buf.Bytes()
	data[len(data)-1] = 0xFF
	fr := NewFileReader(bytes.NewReader(data))
	if _, err := fr.Next(); err == nil {
		t.Fatal("corrupt flags accepted")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a2 := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/1000 times", same)
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Int63n(1000); v < 0 || v >= 1000 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestRNGPanicsOnBadBounds(t *testing.T) {
	r := NewRNG(1)
	for _, fn := range []func(){
		func() { r.Intn(0) },
		func() { r.Int63n(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad bound did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(3.0))
	}
	mean := sum / n
	// Truncation to uint32 biases the mean down ~0.5; accept a loose band.
	if mean < 1.8 || mean > 3.5 {
		t.Fatalf("geometric mean = %g, want near 3", mean)
	}
	if r.Geometric(0) != 0 {
		t.Fatal("Geometric(0) should be 0")
	}
}

func testProfile() Profile {
	return Profile{
		Name:            "test",
		FootprintBytes:  4 << 20,
		GapMean:         3,
		ReadFrac:        0.7,
		Streams:         4,
		StreamProb:      0.6,
		StrideBytes:     64,
		ConflictProb:    0.2,
		ConflictStreams: 4,
		ConflictStride:  512 << 10,
		LineBytes:       64,
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := MustGenerator(testProfile(), 0, 77)
	g2 := MustGenerator(testProfile(), 0, 77)
	for i := 0; i < 5000; i++ {
		a, _ := g1.Next()
		b, _ := g2.Next()
		if a != b {
			t.Fatalf("diverged at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestGeneratorAddressProperties(t *testing.T) {
	p := testProfile()
	base := uint64(1) << 30
	g := MustGenerator(p, base, 5)
	reads, writes := 0, 0
	for i := 0; i < 20000; i++ {
		rec, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec.Addr%64 != 0 {
			t.Fatalf("address %#x not line aligned", rec.Addr)
		}
		if rec.Addr < base || rec.Addr >= base+uint64(p.FootprintBytes) {
			t.Fatalf("address %#x outside [base, base+footprint)", rec.Addr)
		}
		if rec.Write {
			writes++
		} else {
			reads++
		}
	}
	frac := float64(reads) / float64(reads+writes)
	if frac < 0.65 || frac > 0.75 {
		t.Fatalf("read fraction = %g, want ~0.7", frac)
	}
}

func TestGeneratorStreamsSweepRows(t *testing.T) {
	// A pure-stream profile must touch consecutive lines: consecutive
	// stream accesses from the same stream differ by the stride.
	p := testProfile()
	p.Streams = 1
	p.StreamProb = 1.0
	p.ConflictProb = 0
	g := MustGenerator(p, 0, 3)
	prev, _ := g.Next()
	for i := 0; i < 100; i++ {
		rec, _ := g.Next()
		delta := (rec.Addr - prev.Addr) % uint64(p.FootprintBytes)
		if delta != uint64(p.StrideBytes) {
			t.Fatalf("stream stride = %d, want %d", delta, p.StrideBytes)
		}
		prev = rec
	}
}

func TestGeneratorConflictGroupCollidesInBank(t *testing.T) {
	p := testProfile()
	p.ConflictProb = 1.0
	p.StreamProb = 0.0
	p.FootprintBytes = 8 << 20
	g := MustGenerator(p, 0, 11)
	// Conflict-group members stay one bank stride apart: at every point the
	// active positions pairwise differ by a multiple of ConflictStride
	// modulo at most one line of skew per member, so all observed
	// addresses' (addr mod ConflictStride) values cluster into a window of
	// at most ConflictStreams rows.
	for i := 0; i < 2000; i++ {
		rec, _ := g.Next()
		if rec.Addr%64 != 0 {
			t.Fatalf("unaligned conflict access %#x", rec.Addr)
		}
	}
	// Group members advance one line per touch; over N touches each member
	// moves less than N lines, so two consecutive accesses from different
	// members must differ by nearly a multiple of the stride.
	a, _ := g.Next()
	sawSameBankDifferentRow := false
	for i := 0; i < 2000; i++ {
		b, _ := g.Next()
		diff := int64(b.Addr) - int64(a.Addr)
		if diff < 0 {
			diff = -diff
		}
		if diff >= p.ConflictStride/2 && diff%p.ConflictStride < 2048 {
			sawSameBankDifferentRow = true
			break
		}
		a = b
	}
	if !sawSameBankDifferentRow {
		t.Fatal("conflict group never interleaved distinct rows of the same bank")
	}
}

func TestGeneratorConflictGroupAdvances(t *testing.T) {
	p := testProfile()
	p.ConflictProb = 1.0
	p.StreamProb = 0.0
	p.ConflictStreams = 1 // single member: strictly sequential
	g := MustGenerator(p, 0, 3)
	prev, _ := g.Next()
	for i := 0; i < 50; i++ {
		rec, _ := g.Next()
		if rec.Addr != prev.Addr+uint64(p.StrideBytes) &&
			rec.Addr >= prev.Addr { // allow the wrap/reset case
			t.Fatalf("single-member group did not advance by stride: %#x -> %#x",
				prev.Addr, rec.Addr)
		}
		prev = rec
	}
}

func TestGeneratorValidation(t *testing.T) {
	bad := []func(*Profile){
		func(p *Profile) { p.FootprintBytes = 0 },
		func(p *Profile) { p.ReadFrac = 1.5 },
		func(p *Profile) { p.Streams = 0 },
		func(p *Profile) { p.StreamProb = 0.9; p.ConflictProb = 0.5 },
		func(p *Profile) { p.StrideBytes = 0 },
		func(p *Profile) { p.ConflictProb = 0.1; p.ConflictStreams = 0 },
		func(p *Profile) { p.ConflictStride = 0 },
		func(p *Profile) { p.ConflictStreams = 64; p.FootprintBytes = 1 << 20 },
		func(p *Profile) { p.LineBytes = 0 },
	}
	for i, mutate := range bad {
		p := testProfile()
		mutate(&p)
		if _, err := NewGenerator(p, 0, 1); err == nil {
			t.Fatalf("case %d: invalid profile accepted", i)
		}
	}
}
