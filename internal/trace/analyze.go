package trace

import (
	"errors"
	"io"
	"sort"
)

// Analysis summarizes a reference stream's memory behaviour: the knobs a
// profile was tuned by (read mix, gaps, footprint) and the locality
// properties the prefetching schemes key on (row-episode lengths, stride
// distribution).
type Analysis struct {
	Records uint64
	Reads   uint64
	Writes  uint64
	MeanGap float64 // mean non-memory instructions per reference

	UniqueLines    uint64 // distinct cache lines touched
	FootprintBytes uint64 // span between lowest and highest line touched

	// Row behaviour at rowBytes granularity, over the whole stream (not
	// per bank): an episode is a maximal run of consecutive references to
	// the same row.
	RowEpisodes     uint64
	SameRowRate     float64 // fraction of references staying in the row
	MeanEpisodeLen  float64 // references per episode
	MeanEpisodeUtil float64 // distinct lines per episode

	// TopStrides are the most common line-granularity strides between
	// consecutive references, descending by count.
	TopStrides []StrideCount
}

// StrideCount is one stride's frequency.
type StrideCount struct {
	Stride int64 // bytes between consecutive references
	Count  uint64
}

// Analyze consumes up to maxRecords references (all of them if
// maxRecords <= 0) and summarizes them. lineBytes and rowBytes define the
// cache-line and DRAM-row granularities.
func Analyze(r Reader, lineBytes, rowBytes int64, maxRecords int64) (Analysis, error) {
	if lineBytes <= 0 || rowBytes <= 0 || rowBytes%lineBytes != 0 {
		return Analysis{}, errors.New("trace: Analyze needs positive line/row sizes with row a multiple of line")
	}
	var (
		a         Analysis
		gapSum    float64
		lines     = make(map[uint64]struct{})
		strides   = make(map[int64]uint64)
		minLine   = uint64(0)
		maxLine   = uint64(0)
		havePrev  bool
		prevAddr  uint64
		prevRow   uint64
		epLen     uint64
		epLines   map[uint64]struct{}
		epLenSum  uint64
		epUtilSum uint64
	)
	closeEpisode := func() {
		if epLen == 0 {
			return
		}
		a.RowEpisodes++
		epLenSum += epLen
		epUtilSum += uint64(len(epLines))
	}
	for maxRecords <= 0 || int64(a.Records) < maxRecords {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return Analysis{}, err
		}
		a.Records++
		gapSum += float64(rec.Gap)
		if rec.Write {
			a.Writes++
		} else {
			a.Reads++
		}
		line := rec.Addr / uint64(lineBytes)
		lines[line] = struct{}{}
		if a.Records == 1 || line < minLine {
			minLine = line
		}
		if line > maxLine {
			maxLine = line
		}
		row := rec.Addr / uint64(rowBytes)
		if havePrev {
			strides[int64(rec.Addr)-int64(prevAddr)]++
			if row == prevRow {
				epLen++
				epLines[line] = struct{}{}
			} else {
				closeEpisode()
				epLen = 1
				epLines = map[uint64]struct{}{line: {}}
			}
		} else {
			epLen = 1
			epLines = map[uint64]struct{}{line: {}}
		}
		havePrev = true
		prevAddr, prevRow = rec.Addr, row
	}
	closeEpisode()

	if a.Records == 0 {
		return a, nil
	}
	a.MeanGap = gapSum / float64(a.Records)
	a.UniqueLines = uint64(len(lines))
	a.FootprintBytes = (maxLine - minLine + 1) * uint64(lineBytes)
	if a.Records > 1 {
		same := a.Records - a.RowEpisodes // transitions staying in-row
		a.SameRowRate = float64(same) / float64(a.Records-1)
	}
	if a.RowEpisodes > 0 {
		a.MeanEpisodeLen = float64(epLenSum) / float64(a.RowEpisodes)
		a.MeanEpisodeUtil = float64(epUtilSum) / float64(a.RowEpisodes)
	}
	for s, n := range strides {
		a.TopStrides = append(a.TopStrides, StrideCount{Stride: s, Count: n})
	}
	sort.Slice(a.TopStrides, func(i, j int) bool {
		if a.TopStrides[i].Count != a.TopStrides[j].Count {
			return a.TopStrides[i].Count > a.TopStrides[j].Count
		}
		return a.TopStrides[i].Stride < a.TopStrides[j].Stride
	})
	if len(a.TopStrides) > 8 {
		a.TopStrides = a.TopStrides[:8]
	}
	return a, nil
}
