package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestCompactRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewCompactWriter(&buf)
	want := []Record{
		{Gap: 0, Addr: 0x1000},
		{Gap: 7, Addr: 0x1040, Write: true}, // +64 delta
		{Gap: 3, Addr: 0x0fc0},              // negative delta
		{Gap: 0xFFFFFFFF, Addr: 1 << 40},    // big jump
	}
	for _, rec := range want {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(want)) {
		t.Fatalf("count = %d", w.Count())
	}
	r := NewCompactReader(&buf)
	for i, wr := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != wr {
			t.Fatalf("record %d = %+v, want %+v", i, got, wr)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestCompactIsSmallerForStreams(t *testing.T) {
	g := MustGenerator(testProfile(), 0, 9)
	var v1, v2 bytes.Buffer
	w1 := NewWriter(&v1)
	w2 := NewCompactWriter(&v2)
	for i := 0; i < 10000; i++ {
		rec, _ := g.Next()
		if err := w1.Write(rec); err != nil {
			t.Fatal(err)
		}
		if err := w2.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	_ = w1.Flush()
	_ = w2.Flush()
	if v2.Len() >= v1.Len() {
		t.Fatalf("compact (%d B) not smaller than fixed (%d B)", v2.Len(), v1.Len())
	}
}

func TestCompactRejectsBadInput(t *testing.T) {
	// Bad magic.
	if _, err := NewCompactReader(bytes.NewReader([]byte("XXXXXXXXYY"))).Next(); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Corrupt flags.
	var buf bytes.Buffer
	w := NewCompactWriter(&buf)
	_ = w.Write(Record{Addr: 64})
	_ = w.Flush()
	data := buf.Bytes()
	data[len(data)-1] = 0x7E
	if _, err := NewCompactReader(bytes.NewReader(data)).Next(); err == nil {
		t.Fatal("corrupt flags accepted")
	}
	// Truncated mid-record.
	var buf2 bytes.Buffer
	w2 := NewCompactWriter(&buf2)
	_ = w2.Write(Record{Gap: 300, Addr: 1 << 30})
	_ = w2.Flush()
	trunc := buf2.Bytes()[:buf2.Len()-2]
	r := NewCompactReader(bytes.NewReader(trunc))
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestOpenReaderSniffsFormats(t *testing.T) {
	rec := Record{Gap: 5, Addr: 0x80, Write: true}

	var v1 bytes.Buffer
	w1 := NewWriter(&v1)
	_ = w1.Write(rec)
	_ = w1.Flush()
	r1, err := OpenReader(&v1)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := r1.Next(); got != rec {
		t.Fatalf("v1 sniffed read = %+v", got)
	}

	var v2 bytes.Buffer
	w2 := NewCompactWriter(&v2)
	_ = w2.Write(rec)
	_ = w2.Flush()
	r2, err := OpenReader(&v2)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := r2.Next(); got != rec {
		t.Fatalf("v2 sniffed read = %+v", got)
	}

	if _, err := OpenReader(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("unknown magic accepted")
	}
}
