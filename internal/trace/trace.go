// Package trace defines the memory-reference trace format that drives the
// simulated cores, plus deterministic synthetic generators that stand in
// for SPEC CPU2006 (whose traces are proprietary; see DESIGN.md for the
// substitution argument).
//
// A trace is a stream of Records: each record is one data-memory reference
// annotated with the number of non-memory instructions the core executes
// before it. Generators are infinite and fully determined by their seed.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Record is one memory reference in a core's instruction stream.
type Record struct {
	Gap   uint32 // non-memory instructions executed before this reference
	Addr  uint64 // byte address (line-aligned addresses are conventional)
	Write bool
}

// Reader yields trace records. Next returns io.EOF after the last record.
type Reader interface {
	Next() (Record, error)
}

// SliceReader replays an in-memory record slice.
type SliceReader struct {
	recs []Record
	pos  int
}

// NewSliceReader wraps recs.
func NewSliceReader(recs []Record) *SliceReader { return &SliceReader{recs: recs} }

// Next implements Reader.
func (r *SliceReader) Next() (Record, error) {
	if r.pos >= len(r.recs) {
		return Record{}, io.EOF
	}
	rec := r.recs[r.pos]
	r.pos++
	return rec, nil
}

// Limit caps an underlying reader at n records.
type Limit struct {
	r    Reader
	left int64
}

// NewLimit returns a reader that yields at most n records from r.
func NewLimit(r Reader, n int64) *Limit { return &Limit{r: r, left: n} }

// Next implements Reader.
func (l *Limit) Next() (Record, error) {
	if l.left <= 0 {
		return Record{}, io.EOF
	}
	l.left--
	return l.r.Next()
}

// File format: magic, version, then fixed 13-byte little-endian records
// (gap uint32, addr uint64, flags uint8).

var fileMagic = [8]byte{'C', 'A', 'M', 'P', 'S', 'T', 'R', '1'}

const recordBytes = 13

// Writer streams records to an io.Writer in the binary trace format.
type Writer struct {
	w     *bufio.Writer
	count uint64
	began bool
}

// NewWriter returns a trace writer on w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write appends one record.
func (tw *Writer) Write(rec Record) error {
	if !tw.began {
		if _, err := tw.w.Write(fileMagic[:]); err != nil {
			return err
		}
		tw.began = true
	}
	var buf [recordBytes]byte
	binary.LittleEndian.PutUint32(buf[0:4], rec.Gap)
	binary.LittleEndian.PutUint64(buf[4:12], rec.Addr)
	if rec.Write {
		buf[12] = 1
	}
	if _, err := tw.w.Write(buf[:]); err != nil {
		return err
	}
	tw.count++
	return nil
}

// Count returns the number of records written.
func (tw *Writer) Count() uint64 { return tw.count }

// Flush flushes buffered output. Call before closing the underlying file.
func (tw *Writer) Flush() error {
	if !tw.began {
		if _, err := tw.w.Write(fileMagic[:]); err != nil {
			return err
		}
		tw.began = true
	}
	return tw.w.Flush()
}

// FileReader reads the binary trace format.
type FileReader struct {
	r      *bufio.Reader
	header bool
}

// NewFileReader wraps r.
func NewFileReader(r io.Reader) *FileReader { return &FileReader{r: bufio.NewReader(r)} }

// Next implements Reader.
func (fr *FileReader) Next() (Record, error) {
	if !fr.header {
		var magic [8]byte
		if _, err := io.ReadFull(fr.r, magic[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return Record{}, fmt.Errorf("trace: truncated header: %w", io.ErrUnexpectedEOF)
			}
			return Record{}, err
		}
		if magic != fileMagic {
			return Record{}, fmt.Errorf("trace: bad magic %q", magic[:])
		}
		fr.header = true
	}
	var buf [recordBytes]byte
	if _, err := io.ReadFull(fr.r, buf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return Record{}, err
	}
	rec := Record{
		Gap:   binary.LittleEndian.Uint32(buf[0:4]),
		Addr:  binary.LittleEndian.Uint64(buf[4:12]),
		Write: buf[12] != 0,
	}
	if buf[12] > 1 {
		return Record{}, fmt.Errorf("trace: corrupt flags byte %#x", buf[12])
	}
	return rec, nil
}
