package trace

import (
	"testing"
)

func TestAnalyzeSequentialStream(t *testing.T) {
	// 64 references walking one line at a time: 4 full rows.
	recs := make([]Record, 64)
	for i := range recs {
		recs[i] = Record{Gap: 2, Addr: uint64(i) * 64, Write: i%4 == 3}
	}
	a, err := Analyze(NewSliceReader(recs), 64, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Records != 64 || a.Reads != 48 || a.Writes != 16 {
		t.Fatalf("counts wrong: %+v", a)
	}
	if a.MeanGap != 2 {
		t.Fatalf("mean gap = %g", a.MeanGap)
	}
	if a.UniqueLines != 64 || a.FootprintBytes != 64*64 {
		t.Fatalf("footprint wrong: %d lines, %d bytes", a.UniqueLines, a.FootprintBytes)
	}
	if a.RowEpisodes != 4 {
		t.Fatalf("episodes = %d, want 4", a.RowEpisodes)
	}
	if a.MeanEpisodeLen != 16 || a.MeanEpisodeUtil != 16 {
		t.Fatalf("episode len/util = %g/%g, want 16/16", a.MeanEpisodeLen, a.MeanEpisodeUtil)
	}
	// 60 of 63 transitions stay in-row.
	if a.SameRowRate < 0.94 || a.SameRowRate > 0.96 {
		t.Fatalf("same-row rate = %g", a.SameRowRate)
	}
	if len(a.TopStrides) == 0 || a.TopStrides[0].Stride != 64 {
		t.Fatalf("top stride = %+v, want 64", a.TopStrides)
	}
}

func TestAnalyzePingPong(t *testing.T) {
	// Alternate between two rows: every transition changes row.
	recs := make([]Record, 32)
	for i := range recs {
		addr := uint64(i%2) * 512 << 10 // two rows, one bank stride apart
		recs[i] = Record{Addr: addr + uint64(i/2)*64}
	}
	a, err := Analyze(NewSliceReader(recs), 64, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.SameRowRate != 0 {
		t.Fatalf("ping-pong same-row rate = %g, want 0", a.SameRowRate)
	}
	if a.RowEpisodes != 32 {
		t.Fatalf("episodes = %d, want 32", a.RowEpisodes)
	}
	if a.MeanEpisodeLen != 1 {
		t.Fatalf("episode length = %g, want 1", a.MeanEpisodeLen)
	}
}

func TestAnalyzeMaxRecords(t *testing.T) {
	recs := make([]Record, 100)
	for i := range recs {
		recs[i] = Record{Addr: uint64(i) * 64}
	}
	a, err := Analyze(NewSliceReader(recs), 64, 1024, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Records != 10 {
		t.Fatalf("records = %d, want 10", a.Records)
	}
}

func TestAnalyzeEmptyAndInvalid(t *testing.T) {
	a, err := Analyze(NewSliceReader(nil), 64, 1024, 0)
	if err != nil || a.Records != 0 {
		t.Fatalf("empty analyze: %+v, %v", a, err)
	}
	if _, err := Analyze(NewSliceReader(nil), 0, 1024, 0); err == nil {
		t.Fatal("accepted zero line size")
	}
	if _, err := Analyze(NewSliceReader(nil), 64, 96, 0); err == nil {
		t.Fatal("accepted row not multiple of line")
	}
}

func TestAnalyzeGeneratorMatchesProfileIntent(t *testing.T) {
	// A stream-dominated profile should show long row episodes; a
	// conflict-dominated one should show short episodes.
	streamy := testProfile()
	streamy.Streams = 1 // one stream: global episodes reflect its sweeps
	streamy.StreamProb = 0.95
	streamy.ConflictProb = 0
	ga := MustGenerator(streamy, 0, 3)
	sa, err := Analyze(NewLimit(ga, 20000), 64, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}

	conflicty := testProfile()
	conflicty.StreamProb = 0
	conflicty.ConflictProb = 0.95
	gb := MustGenerator(conflicty, 0, 3)
	sb, err := Analyze(NewLimit(gb, 20000), 64, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}

	if sa.MeanEpisodeLen <= 2*sb.MeanEpisodeLen {
		t.Fatalf("stream episodes (%g) not clearly longer than conflict episodes (%g)",
			sa.MeanEpisodeLen, sb.MeanEpisodeLen)
	}
}
