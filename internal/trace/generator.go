package trace

import "fmt"

// Profile parameterizes a synthetic benchmark's memory behaviour. The knobs
// map onto the properties that drive the CAMPS mechanisms:
//
//   - Plain streams sweep memory one line at a time, producing long
//     row-buffer episodes and high row utilization (the RUT signal).
//   - The conflict group is a set of streams spaced exactly one bank
//     stride apart: under the RoRaBaVaCo mapping its members occupy
//     adjacent rows of the *same bank* and advance together, so their
//     interleaved accesses ping-pong that bank's row buffer. Every access
//     still touches a fresh cache line, so the caches cannot absorb the
//     pattern — this is the conflict-prone traffic the CT exists for.
//   - Random jumps are single-touch rows: pure prefetch poison.
//
// Footprint, against the cache hierarchy, determines the memory-intensity
// class of §4.1.
type Profile struct {
	Name            string
	FootprintBytes  int64   // per-core working set
	GapMean         float64 // mean non-memory instructions per memory op
	ReadFrac        float64 // fraction of references that are reads
	Streams         int     // concurrent plain sequential streams
	StreamProb      float64 // probability of continuing a plain stream
	StrideBytes     int64   // stream stride (usually one cache line)
	ConflictProb    float64 // probability of a conflict-group access
	ConflictStreams int     // members of the conflict group
	ConflictStride  int64   // member spacing: one bank stride
	LineBytes       int64   // cache-line granularity for alignment
}

// Validate reports configuration errors.
func (p Profile) Validate() error {
	switch {
	case p.FootprintBytes <= 0:
		return fmt.Errorf("trace: profile %q: footprint must be positive", p.Name)
	case p.ReadFrac < 0 || p.ReadFrac > 1:
		return fmt.Errorf("trace: profile %q: read fraction outside [0,1]", p.Name)
	case p.Streams <= 0:
		return fmt.Errorf("trace: profile %q: need at least one stream", p.Name)
	case p.StreamProb < 0 || p.StreamProb+p.ConflictProb > 1:
		return fmt.Errorf("trace: profile %q: stream+conflict probability exceeds 1", p.Name)
	case p.StrideBytes <= 0:
		return fmt.Errorf("trace: profile %q: stride must be positive", p.Name)
	case p.ConflictProb > 0 && p.ConflictStreams <= 0:
		return fmt.Errorf("trace: profile %q: conflict accesses need group members", p.Name)
	case p.ConflictStreams > 0 && p.ConflictStride <= 0:
		return fmt.Errorf("trace: profile %q: conflict group needs a positive stride", p.Name)
	case p.ConflictStreams > 0 && int64(p.ConflictStreams)*p.ConflictStride > p.FootprintBytes:
		return fmt.Errorf("trace: profile %q: conflict group exceeds the footprint", p.Name)
	case p.LineBytes <= 0:
		return fmt.Errorf("trace: profile %q: line bytes must be positive", p.Name)
	}
	return nil
}

// Generator produces an endless, deterministic reference stream for one
// core following a Profile. It implements Reader but never returns io.EOF;
// wrap it in a Limit for finite runs.
type Generator struct {
	p       Profile
	rng     *RNG
	base    uint64
	streams []uint64 // current byte offsets within the footprint
	group   []uint64 // conflict-group member offsets
}

// NewGenerator builds a generator whose addresses live in
// [base, base+footprint), deterministic in seed.
func NewGenerator(p Profile, base uint64, seed uint64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{p: p, rng: NewRNG(seed), base: base}
	g.streams = make([]uint64, p.Streams)
	for i := range g.streams {
		g.streams[i] = uint64(g.rng.Int63n(p.FootprintBytes))
	}
	if p.ConflictStreams > 0 {
		g.group = make([]uint64, p.ConflictStreams)
		g.resetGroup()
	}
	return g, nil
}

// resetGroup places the conflict group at a fresh row-aligned position,
// members one bank stride apart (same bank, adjacent rows).
func (g *Generator) resetGroup() {
	p := &g.p
	span := int64(p.ConflictStreams) * p.ConflictStride
	start := uint64(g.rng.Int63n(maxInt64(1, p.FootprintBytes-span)))
	start &^= 1023 // row aligned
	for i := range g.group {
		g.group[i] = start + uint64(i)*uint64(p.ConflictStride)
	}
}

// MustGenerator is NewGenerator for known-good profiles.
func MustGenerator(p Profile, base uint64, seed uint64) *Generator {
	g, err := NewGenerator(p, base, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// Next implements Reader; it never fails.
func (g *Generator) Next() (Record, error) {
	p := &g.p
	gap := g.rng.Geometric(p.GapMean)
	u := g.rng.Float64()
	var off uint64
	switch {
	case u < p.ConflictProb:
		// Conflict group: a random member reads its next line and
		// advances. Members share a bank, so interleaving them ping-pongs
		// the row buffer while every access touches a fresh line.
		m := g.rng.Intn(len(g.group))
		off = g.group[m]
		g.group[m] += uint64(p.StrideBytes)
		if g.group[m] >= uint64(p.FootprintBytes) {
			g.resetGroup()
		}
	case u < p.ConflictProb+p.StreamProb:
		s := g.rng.Intn(len(g.streams))
		off = g.streams[s]
		g.streams[s] = (g.streams[s] + uint64(p.StrideBytes)) % uint64(p.FootprintBytes)
	default:
		// Irregular jump: a single-touch line somewhere in the footprint —
		// pure prefetch poison, deliberately independent of the streams.
		off = uint64(g.rng.Int63n(p.FootprintBytes))
	}
	addr := (g.base + off%uint64(g.p.FootprintBytes)) &^ uint64(p.LineBytes-1)
	return Record{
		Gap:   gap,
		Addr:  addr,
		Write: g.rng.Float64() >= p.ReadFrac,
	}, nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
