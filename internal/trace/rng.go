package trace

import "math"

// RNG is a SplitMix64 pseudo-random generator. It is tiny, fast,
// deterministic across platforms, and owned by this package so that trace
// generation can never be perturbed by changes to the standard library's
// generators.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator. Distinct seeds give independent-looking
// streams; seed 0 is fine.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("trace: Int63n with non-positive bound")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Geometric returns an exponential sample with the given mean, clamped to
// [0, 16*mean]. Used for instruction gaps: only the mean and the presence
// of a tail matter to the core model.
func (r *RNG) Geometric(mean float64) uint32 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	v := -mean * math.Log1p(-u)
	if v > 16*mean {
		v = 16 * mean
	}
	return uint32(v)
}
