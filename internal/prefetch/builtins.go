package prefetch

import (
	"fmt"

	"camps/internal/config"
	"camps/internal/pfbuffer"
)

// The built-in schemes keep fixed numeric identities: exported results
// marshal Scheme as an integer, and the committed same-seed goldens pin
// these values. registerBuiltins registers in exactly this order and
// init asserts the assignment.
const (
	// Base prefetches a whole row on every first access.
	Base Scheme = iota
	// BaseHit prefetches a row with >= 2 pending read-queue requests.
	BaseHit
	// MMD adapts prefetch degree to usefulness, LRU buffer.
	MMD
	// CAMPS is conflict-aware prefetching with LRU buffer management.
	CAMPS
	// CAMPSMOD is CAMPS with utilization+recency buffer management.
	CAMPSMOD
	// None disables prefetching entirely — the unmodified HMC, a reference
	// point beyond the paper's five compared schemes.
	None
	// ASD is a row-granularity adaptation of Hur & Lin's Adaptive Stream
	// Detection (the paper's related work [10]); an extension scheme.
	ASD
	// GHB is a global-history-buffer width prefetcher over the
	// row-activation stream (extension).
	GHB
	// SISB is a temporal next-address predictor with a bounded training
	// table (extension).
	SISB
	// BestOffset scores row offsets against a recent-request table
	// (extension, after Michaud's Best-Offset prefetcher).
	BestOffset
	// Hybrid set-duels the registered candidate engines per vault at epoch
	// granularity (meta-engine extension).
	Hybrid
)

func init() { registerBuiltins() }

// registerBuiltins populates the registry with the paper's five schemes,
// the NONE/ASD references, and the extension zoo — sequentially, with
// constant names (the pfregister analyzer's contract), asserting that
// registration order reproduces the historical Scheme constants.
func registerBuiltins() {
	assert := func(want Scheme, got Scheme) {
		if want != got {
			panic(fmt.Sprintf("prefetch: builtin %s registered as %d, want %d",
				got, int(got), int(want)))
		}
	}
	assert(Base, Register("BASE", Descriptor{
		Doc:    "fetch the whole row on first access, precharge after",
		Paper:  true,
		Policy: pfbuffer.LRU,
		New:    func(_ config.Config, ctx Context) Engine { return newBase(ctx) },
	}))
	assert(BaseHit, Register("BASE-HIT", Descriptor{
		Doc:    "fetch a row once >= 2 reads for it are queued",
		Paper:  true,
		Policy: pfbuffer.LRU,
		New:    func(_ config.Config, ctx Context) Engine { return newBaseHit(ctx) },
	}))
	assert(MMD, Register("MMD", Descriptor{
		Doc:    "sequential-row prefetch, degree adapted to usefulness per epoch",
		Paper:  true,
		Policy: pfbuffer.LRU,
		Knobs: []Knob{
			{Name: "mmd.degree", Help: "MMD maximum prefetch degree",
				Apply: func(c *config.Config, v int64) { c.MMD.MaxDegree = int(v) }},
			{Name: "mmd.epoch", Help: "MMD feedback epoch in demand requests",
				Apply: func(c *config.Config, v int64) { c.MMD.EpochRequests = int(v) }},
		},
		New: func(cfg config.Config, ctx Context) Engine { return newMMD(cfg.MMD, ctx) },
	}))
	assert(CAMPS, Register("CAMPS", Descriptor{
		Doc:    "conflict-aware prefetching (RUT + CT), LRU buffer",
		Paper:  true,
		Policy: pfbuffer.LRU,
		Knobs: []Knob{
			{Name: "ct", Help: "CAMPS conflict-table entries per vault",
				Apply: func(c *config.Config, v int64) { c.CAMPS.CTEntries = int(v) }},
			{Name: "threshold", Help: "CAMPS RUT utilization threshold",
				Apply: func(c *config.Config, v int64) { c.CAMPS.UtilThreshold = int(v) }},
		},
		New: func(cfg config.Config, ctx Context) Engine { return newCAMPS(cfg.CAMPS, ctx) },
	}))
	assert(CAMPSMOD, Register("CAMPS-MOD", Descriptor{
		Doc:    "CAMPS with the utilization+recency buffer policy",
		Paper:  true,
		Policy: pfbuffer.UtilRecency,
		New:    func(cfg config.Config, ctx Context) Engine { return newCAMPS(cfg.CAMPS, ctx) },
	}))
	assert(None, Register("NONE", Descriptor{
		Doc:    "prefetching disabled (unmodified HMC)",
		Policy: pfbuffer.LRU,
		New:    func(config.Config, Context) Engine { return newNone() },
	}))
	assert(ASD, Register("ASD", Descriptor{
		Doc:    "row-granularity adaptive stream detection",
		Policy: pfbuffer.LRU,
		New:    func(_ config.Config, ctx Context) Engine { return newASD(ctx) },
	}))
	assert(GHB, Register("ghb", Descriptor{
		Doc:    "GHB/AIT width prefetcher over row activations",
		Policy: pfbuffer.LRU,
		Knobs: []Knob{
			{Name: "ghb.width", Help: "ghb history occurrences consulted per trigger",
				Apply: func(c *config.Config, v int64) { c.GHB.Width = int(v) }},
			{Name: "ghb.degree", Help: "ghb successors predicted per occurrence",
				Apply: func(c *config.Config, v int64) { c.GHB.Degree = int(v) }},
		},
		New: func(cfg config.Config, ctx Context) Engine { return newGHB(cfg.GHB, ctx) },
	}))
	assert(SISB, Register("sisb", Descriptor{
		Doc:    "temporal next-row prediction, bounded training table",
		Policy: pfbuffer.LRU,
		Knobs: []Knob{
			{Name: "sisb.entries", Help: "sisb successor-table capacity",
				Apply: func(c *config.Config, v int64) { c.SISB.TableEntries = int(v) }},
			{Name: "sisb.degree", Help: "sisb chained predictions per trigger",
				Apply: func(c *config.Config, v int64) { c.SISB.Degree = int(v) }},
		},
		New: func(cfg config.Config, ctx Context) Engine { return newSISB(cfg.SISB, ctx) },
	}))
	assert(BestOffset, Register("bestoffset", Descriptor{
		Doc:     "best-offset prefetch: offset scoring rounds at row granularity",
		Aliases: []string{"best-offset"},
		Policy:  pfbuffer.LRU,
		Knobs: []Knob{
			{Name: "bo.rounds", Help: "bestoffset scoring rounds per learning phase",
				Apply: func(c *config.Config, v int64) { c.BestOffset.RoundMax = int(v) }},
			{Name: "bo.rr", Help: "bestoffset recent-request table entries (power of two)",
				Apply: func(c *config.Config, v int64) { c.BestOffset.RREntries = int(v) }},
		},
		New: func(cfg config.Config, ctx Context) Engine { return newBestOffset(cfg.BestOffset, ctx) },
	}))
	assert(Hybrid, Register("hybrid", Descriptor{
		Doc:    "set-duels registered engines per vault at epoch granularity",
		Meta:   true,
		Policy: pfbuffer.LRU,
		Knobs: []Knob{
			{Name: "hybrid.epoch", Help: "hybrid duel epoch in demand requests",
				Apply: func(c *config.Config, v int64) { c.Hybrid.EpochRequests = int(v) }},
		},
		New: func(cfg config.Config, ctx Context) Engine { return newHybrid(cfg, ctx) },
	}))
}
