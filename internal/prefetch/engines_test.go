package prefetch

import (
	"testing"

	"camps/internal/config"
	"camps/internal/dram"
	"camps/internal/pfbuffer"
)

type fakeQueue map[[2]int64]int

func (q fakeQueue) PendingReadsForRow(bank int, row int64) int {
	return q[[2]int64{int64(bank), row}]
}

func testCtx(q QueueView) Context {
	return Context{Banks: 16, LinesPerRow: 16, RowsPerBank: 8192, Queue: q}
}

func TestSchemeStringsAndParse(t *testing.T) {
	names := []string{"BASE", "BASE-HIT", "MMD", "CAMPS", "CAMPS-MOD"}
	for i, s := range Schemes() {
		if s.String() != names[i] {
			t.Errorf("scheme %d = %q, want %q", i, s.String(), names[i])
		}
		got, err := ParseScheme(names[i])
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", names[i], got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("ParseScheme accepted bogus name")
	}
	if Scheme(42).String() == "" {
		t.Error("unknown scheme produced empty string")
	}
}

func TestSchemeBufferPolicy(t *testing.T) {
	for _, s := range Schemes() {
		want := pfbuffer.LRU
		if s == CAMPSMOD {
			want = pfbuffer.UtilRecency
		}
		if got := Describe(s).Policy; got != want {
			t.Errorf("%v buffer policy = %v, want %v", s, got, want)
		}
	}
}

func TestNewConstructsEveryScheme(t *testing.T) {
	cfg := config.Default()
	for _, s := range AllSchemes() {
		if e := New(s, cfg, testCtx(fakeQueue{})); e == nil {
			t.Errorf("New(%v) returned nil", s)
		}
	}
}

func TestBaseFetchesEveryDemand(t *testing.T) {
	e := newBase(testCtx(nil))
	for _, state := range []dram.RowState{dram.RowHit, dram.RowMiss, dram.RowConflict} {
		f := e.OnDemandServed(Request{Bank: 3, Row: 7, Line: 2}, state, dram.NoRow)
		if len(f) != 1 || f[0].Bank != 3 || f[0].Row != 7 || !f[0].CloseAfter {
			t.Fatalf("BASE on %v returned %+v", state, f)
		}
	}
}

func TestBaseHitNeedsTwoPending(t *testing.T) {
	q := fakeQueue{}
	e := newBaseHit(testCtx(q))
	req := Request{Bank: 1, Row: 5, Line: 0}
	if f := e.OnDemandServed(req, dram.RowHit, dram.NoRow); len(f) != 0 {
		t.Fatalf("BASE-HIT fetched with 0 pending: %+v", f)
	}
	q[[2]int64{1, 5}] = 1
	if f := e.OnDemandServed(req, dram.RowHit, dram.NoRow); len(f) != 0 {
		t.Fatalf("BASE-HIT fetched with 1 pending: %+v", f)
	}
	q[[2]int64{1, 5}] = 2
	f := e.OnDemandServed(req, dram.RowHit, dram.NoRow)
	if len(f) != 1 || f[0].Row != 5 || f[0].CloseAfter {
		t.Fatalf("BASE-HIT with 2 pending returned %+v, want open-row fetch", f)
	}
}

func TestBaseHitNilQueue(t *testing.T) {
	e := newBaseHit(testCtx(nil))
	if f := e.OnDemandServed(Request{}, dram.RowHit, dram.NoRow); f != nil {
		t.Fatal("BASE-HIT with nil queue should not fetch")
	}
}

func TestCAMPSUtilizationTrigger(t *testing.T) {
	cfg := config.Default()
	e := newCAMPS(cfg.CAMPS, testCtx(nil))
	req := func(line int) Request { return Request{Bank: 2, Row: 11, Line: line} }

	// First access: a miss (row just opened, not in CT) -> tracked, no fetch.
	if f := e.OnDemandServed(req(0), dram.RowMiss, dram.NoRow); len(f) != 0 {
		t.Fatalf("fetch on first access: %+v", f)
	}
	// Three more distinct lines as row hits; the 4th distinct line reaches
	// the threshold of 4 and triggers the fetch.
	if f := e.OnDemandServed(req(1), dram.RowHit, dram.NoRow); len(f) != 0 {
		t.Fatalf("premature fetch at util 2: %+v", f)
	}
	if f := e.OnDemandServed(req(2), dram.RowHit, dram.NoRow); len(f) != 0 {
		t.Fatalf("premature fetch at util 3: %+v", f)
	}
	f := e.OnDemandServed(req(3), dram.RowHit, dram.NoRow)
	if len(f) != 1 || f[0].Row != 11 || f[0].Bank != 2 || !f[0].CloseAfter {
		t.Fatalf("no fetch at util 4: %+v", f)
	}
	// RUT entry cleared after the fetch.
	if u := NewRUT(16).Util(2); u != 0 {
		t.Fatalf("fresh RUT should be 0, got %d", u)
	}
	if e.rut.Util(2) != 0 {
		t.Fatalf("RUT not cleared after fetch: util=%d", e.rut.Util(2))
	}
}

func TestCAMPSRepeatedLinesDoNotTrigger(t *testing.T) {
	cfg := config.Default()
	e := newCAMPS(cfg.CAMPS, testCtx(nil))
	req := Request{Bank: 0, Row: 1, Line: 5}
	e.OnDemandServed(req, dram.RowMiss, dram.NoRow)
	for i := 0; i < 10; i++ {
		if f := e.OnDemandServed(req, dram.RowHit, dram.NoRow); len(f) != 0 {
			t.Fatalf("same-line hits triggered fetch: %+v", f)
		}
	}
}

func TestCAMPSConflictPath(t *testing.T) {
	cfg := config.Default()
	e := newCAMPS(cfg.CAMPS, testCtx(nil))

	// Row 100 opens in bank 0 and is profiled.
	e.OnDemandServed(Request{Bank: 0, Row: 100, Line: 0}, dram.RowMiss, dram.NoRow)
	// Row 200 conflicts with row 100: 100 moves to the CT; 200 not in CT,
	// so no fetch yet.
	if f := e.OnDemandServed(Request{Bank: 0, Row: 200, Line: 0}, dram.RowConflict, 100); len(f) != 0 {
		t.Fatalf("fetch on first conflict: %+v", f)
	}
	if e.CTLen() != 1 {
		t.Fatalf("CT len = %d, want 1", e.CTLen())
	}
	// Row 100 comes back (conflicting with 200): it IS in the CT -> fetch
	// it whole, remove from CT.
	f := e.OnDemandServed(Request{Bank: 0, Row: 100, Line: 3}, dram.RowConflict, 200)
	if len(f) != 1 || f[0].Row != 100 || !f[0].CloseAfter {
		t.Fatalf("conflict-prone row not fetched: %+v", f)
	}
	// Row 100 gone from CT; row 200 entered it when displaced.
	if e.CTLen() != 1 {
		t.Fatalf("CT len after fetch = %d, want 1 (row 200)", e.CTLen())
	}
}

func TestCAMPSConflictWithUntrackedDisplacedRow(t *testing.T) {
	cfg := config.Default()
	e := newCAMPS(cfg.CAMPS, testCtx(nil))
	// A conflict whose displaced row was never in the RUT (e.g. opened by a
	// writeback) still lands in the CT via the displacedRow argument.
	e.OnDemandServed(Request{Bank: 1, Row: 50, Line: 0}, dram.RowConflict, 49)
	if e.CTLen() != 1 {
		t.Fatalf("CT len = %d, want 1", e.CTLen())
	}
	f := e.OnDemandServed(Request{Bank: 1, Row: 49, Line: 0}, dram.RowConflict, 50)
	if len(f) != 1 || f[0].Row != 49 {
		t.Fatalf("untracked displaced row not treated as conflict-prone: %+v", f)
	}
}

func TestCAMPSMissAfterCampsFetchIsNotConflictProne(t *testing.T) {
	cfg := config.Default()
	e := newCAMPS(cfg.CAMPS, testCtx(nil))
	// Reach the utilization threshold, fetch, bank precharged.
	for i := 0; i < 4; i++ {
		st := dram.RowHit
		if i == 0 {
			st = dram.RowMiss
		}
		e.OnDemandServed(Request{Bank: 0, Row: 7, Line: i}, st, dram.NoRow)
	}
	// New row opens as a plain miss (bank was precharged): no CT entry,
	// so it should be profiled, not fetched.
	if f := e.OnDemandServed(Request{Bank: 0, Row: 8, Line: 0}, dram.RowMiss, dram.NoRow); len(f) != 0 {
		t.Fatalf("plain miss triggered fetch: %+v", f)
	}
}

func TestCAMPSThresholdOneFetchesImmediately(t *testing.T) {
	cfg := config.Default()
	cfg.CAMPS.UtilThreshold = 1
	e := newCAMPS(cfg.CAMPS, testCtx(nil))
	f := e.OnDemandServed(Request{Bank: 0, Row: 3, Line: 0}, dram.RowMiss, dram.NoRow)
	if len(f) != 1 {
		t.Fatalf("threshold-1 engine should fetch on first access: %+v", f)
	}
}

func TestMMDTwoTouchConfirmation(t *testing.T) {
	cfg := config.Default()
	cfg.MMD.TouchThreshold = 2
	e := newMMD(cfg.MMD, testCtx(nil))
	// First distinct line: no fetch yet.
	if f := e.OnDemandServed(Request{Bank: 4, Row: 10, Line: 0}, dram.RowMiss, dram.NoRow); len(f) != 0 {
		t.Fatalf("fetch on first touch: %+v", f)
	}
	// Same line again: still one distinct line, no fetch.
	if f := e.OnDemandServed(Request{Bank: 4, Row: 10, Line: 0}, dram.RowHit, dram.NoRow); len(f) != 0 {
		t.Fatalf("fetch on repeated line: %+v", f)
	}
	// Second distinct line confirms the row: degree-1 fetch of the row
	// itself, left open (CloseAfter false — MMD is not conflict-aware).
	f := e.OnDemandServed(Request{Bank: 4, Row: 10, Line: 1}, dram.RowHit, dram.NoRow)
	if len(f) != 1 || f[0].Row != 10 || f[0].Bank != 4 || f[0].CloseAfter {
		t.Fatalf("confirmation fetch = %+v, want open-row fetch of row 10", f)
	}
	// Touch history cleared after the fetch.
	if f := e.OnDemandServed(Request{Bank: 4, Row: 10, Line: 2}, dram.RowHit, dram.NoRow); len(f) != 0 {
		t.Fatalf("immediate re-fetch after trigger: %+v", f)
	}
}

func TestMMDRowChangeRestartsHistory(t *testing.T) {
	cfg := config.Default()
	cfg.MMD.TouchThreshold = 2
	e := newMMD(cfg.MMD, testCtx(nil))
	e.OnDemandServed(Request{Bank: 0, Row: 1, Line: 0}, dram.RowMiss, dram.NoRow)
	// Conflict opens row 2: history restarts, so its first touch cannot
	// trigger even though the RUT slot was half full.
	if f := e.OnDemandServed(Request{Bank: 0, Row: 2, Line: 1}, dram.RowConflict, 1); len(f) != 0 {
		t.Fatalf("fetch after row change: %+v", f)
	}
}

func TestMMDDegreeAdaptation(t *testing.T) {
	cfg := config.Default()
	cfg.MMD.TouchThreshold = 2
	cfg.MMD.EpochRequests = 4
	e := newMMD(cfg.MMD, testCtx(nil))
	if e.Degree() != 1 {
		t.Fatalf("initial degree = %d, want 1", e.Degree())
	}
	if e.EpochRequests() != 4 {
		t.Fatalf("EpochRequests = %d, want 4", e.EpochRequests())
	}
	// An epoch of entirely useful evictions: degree rises.
	e.OnEpoch(EpochStats{UsefulTimely: 6, UsefulLate: 2})
	if e.Degree() != 2 {
		t.Fatalf("degree after useful epoch = %d, want 2", e.Degree())
	}
	// At degree 2, a confirmed row also fetches its successor, precharged
	// after the copy.
	e.OnDemandServed(Request{Bank: 3, Row: 50, Line: 0}, dram.RowMiss, dram.NoRow)
	f := e.OnDemandServed(Request{Bank: 3, Row: 50, Line: 1}, dram.RowHit, dram.NoRow)
	if len(f) != 2 || f[0].Row != 50 || f[1].Row != 51 || !f[1].CloseAfter {
		t.Fatalf("degree-2 fetches = %+v", f)
	}
	// An epoch of useless evictions: degree falls.
	e.OnEpoch(EpochStats{EvictedUnused: 8})
	if e.Degree() != 1 {
		t.Fatalf("degree after useless epoch = %d, want 1", e.Degree())
	}
	// OnEviction is inert — classification happens in the vault controller.
	e.OnEviction(pfbuffer.Eviction{Used: false})
	if e.Degree() != 1 {
		t.Fatalf("OnEviction changed degree to %d", e.Degree())
	}
}

func TestMMDRespectsRowBound(t *testing.T) {
	cfg := config.Default()
	cfg.MMD.TouchThreshold = 2
	cfg.MMD.EpochRequests = 4
	ctx := testCtx(nil)
	ctx.RowsPerBank = 11
	e := newMMD(cfg.MMD, ctx)
	e.degree = 2
	e.OnDemandServed(Request{Bank: 0, Row: 10, Line: 0}, dram.RowMiss, dram.NoRow)
	f := e.OnDemandServed(Request{Bank: 0, Row: 10, Line: 1}, dram.RowHit, dram.NoRow)
	if len(f) != 1 || f[0].Row != 10 {
		t.Fatalf("next-row fetch beyond the last row: %+v", f)
	}
}

func TestMMDZeroDegreeFetchesNothingAndProbes(t *testing.T) {
	cfg := config.Default()
	cfg.MMD.TouchThreshold = 2
	e := newMMD(cfg.MMD, testCtx(nil))
	// Drive accuracy to zero across epochs until degree hits 0.
	for i := 0; i < 10 && e.Degree() > 0; i++ {
		e.OnEpoch(EpochStats{EvictedUnused: 1})
	}
	if e.Degree() != 0 {
		t.Fatalf("degree = %d, want 0", e.Degree())
	}
	// A zero-degree engine must not fetch even for a confirmed row.
	e.OnDemandServed(Request{Bank: 0, Row: 5, Line: 0}, dram.RowMiss, dram.NoRow)
	if f := e.OnDemandServed(Request{Bank: 0, Row: 5, Line: 1}, dram.RowHit, dram.NoRow); len(f) != 0 {
		t.Fatalf("zero-degree engine fetched: %+v", f)
	}
	// With no evictions arriving, the next epoch probes back to degree 1.
	e.OnEpoch(EpochStats{})
	if e.Degree() != 1 {
		t.Fatalf("degree after probe epoch = %d, want 1", e.Degree())
	}
}

func TestNoneNeverFetches(t *testing.T) {
	e := newNone()
	for _, state := range []dram.RowState{dram.RowHit, dram.RowMiss, dram.RowConflict} {
		if f := e.OnDemandServed(Request{Bank: 1, Row: 2, Line: 3}, state, dram.NoRow); f != nil {
			t.Fatalf("NONE fetched on %v: %+v", state, f)
		}
	}
	e.OnBufferHit(Request{})
	e.OnEviction(pfbuffer.Eviction{})
}

func TestASDConfirmsAscendingStream(t *testing.T) {
	e := newASD(testCtx(nil))
	// First touch opens the episode.
	if f := e.OnDemandServed(Request{Bank: 0, Row: 9, Line: 0}, dram.RowMiss, dram.NoRow); f != nil {
		t.Fatalf("fetch on episode open: %+v", f)
	}
	// One ascending touch: not confirmed yet.
	if f := e.OnDemandServed(Request{Bank: 0, Row: 9, Line: 1}, dram.RowHit, dram.NoRow); f != nil {
		t.Fatalf("fetch after one ascending touch: %+v", f)
	}
	// Second ascending touch confirms.
	f := e.OnDemandServed(Request{Bank: 0, Row: 9, Line: 2}, dram.RowHit, dram.NoRow)
	if len(f) != 1 || f[0].Row != 9 || f[0].CloseAfter {
		t.Fatalf("confirmation = %+v, want open-row fetch of row 9", f)
	}
}

func TestASDIgnoresNonMonotonicAccess(t *testing.T) {
	e := newASD(testCtx(nil))
	e.OnDemandServed(Request{Bank: 0, Row: 9, Line: 5}, dram.RowMiss, dram.NoRow)
	// Descending and repeated lines never confirm.
	for _, line := range []int{4, 3, 3, 2, 1, 0} {
		if f := e.OnDemandServed(Request{Bank: 0, Row: 9, Line: line}, dram.RowHit, dram.NoRow); f != nil {
			t.Fatalf("non-monotonic access fetched: %+v", f)
		}
	}
}

func TestASDDepthAdaptsToLongEpisodes(t *testing.T) {
	e := newASD(testCtx(nil))
	if e.Depth() != 1 {
		t.Fatalf("initial depth = %d", e.Depth())
	}
	// Feed asdEpoch long episodes (full 16-line sweeps).
	for ep := 0; ep < asdEpoch+1; ep++ {
		row := int64(ep)
		e.OnDemandServed(Request{Bank: 0, Row: row, Line: 0}, dram.RowMiss, dram.NoRow)
		for l := 1; l < 16; l++ {
			e.OnDemandServed(Request{Bank: 0, Row: row, Line: l}, dram.RowHit, dram.NoRow)
		}
	}
	if e.Depth() != 2 {
		t.Fatalf("depth after long episodes = %d, want 2", e.Depth())
	}
	// At depth 2 a confirmation also fetches the successor row.
	e.OnDemandServed(Request{Bank: 3, Row: 100, Line: 0}, dram.RowMiss, dram.NoRow)
	e.OnDemandServed(Request{Bank: 3, Row: 100, Line: 1}, dram.RowHit, dram.NoRow)
	f := e.OnDemandServed(Request{Bank: 3, Row: 100, Line: 2}, dram.RowHit, dram.NoRow)
	if len(f) != 2 || f[1].Row != 101 || !f[1].CloseAfter {
		t.Fatalf("depth-2 fetches = %+v", f)
	}
	// Feed short episodes: depth falls back to 1.
	for ep := 0; ep < 2*asdEpoch+1; ep++ {
		row := int64(1000 + ep)
		e.OnDemandServed(Request{Bank: 1, Row: row, Line: 0}, dram.RowConflict, row-1)
		e.OnDemandServed(Request{Bank: 1, Row: row, Line: 1}, dram.RowHit, dram.NoRow)
	}
	if e.Depth() != 1 {
		t.Fatalf("depth after short episodes = %d, want 1", e.Depth())
	}
}

func TestAllSchemesIncludesExtensions(t *testing.T) {
	// 11 builtins; other tests may register extra probe engines.
	all := AllSchemes()
	if len(all) < 11 {
		t.Fatalf("AllSchemes = %v", all)
	}
	for _, tc := range []struct {
		name string
		want Scheme
	}{
		{"NONE", None}, {"ASD", ASD}, {"ghb", GHB}, {"sisb", SISB},
		{"bestoffset", BestOffset}, {"best-offset", BestOffset}, {"hybrid", Hybrid},
	} {
		if s, err := ParseScheme(tc.name); err != nil || s != tc.want {
			t.Fatalf("ParseScheme(%q) = %v, %v; want %v", tc.name, s, err, tc.want)
		}
	}
	// The paper's figure set stays at five.
	if len(Schemes()) != 5 {
		t.Fatalf("Schemes() = %v", Schemes())
	}
}
