package prefetch

import (
	"camps/internal/config"
	"camps/internal/dram"
	"camps/internal/pfbuffer"
)

// ghbEngine is a width prefetcher over the vault's row-activation stream,
// after the global-history-buffer organization of Nesbit & Smith (HPCA
// 2004) in its address-correlating form: activations enter a bounded
// history ring, and an address index table (AIT) hashed by the activation
// *delta* chains together the history positions where that delta was last
// seen. A trigger walks up to Width prior occurrences of its delta and
// predicts the Degree rows that followed each in the history — the "width"
// traversal — falling back to sequential next rows when the delta is new.
//
// Rows are copied with CloseAfter (like CAMPS, the engine assumes the
// predicted reuse lands in the buffer, not the row buffer).
type ghbEngine struct {
	ctx Context
	cfg config.GHB

	hist []ghbEntry // history ring, indexed by absolute sequence % len
	seq  int64      // next absolute sequence number (total pushes)
	ait  []int64    // delta-hash -> absolute sequence of last push, -1 empty

	lastKey int64 // previous activation's rowKey, -1 before the first
}

// ghbEntry is one row activation in the history ring.
type ghbEntry struct {
	key  int64 // rowKey of the activated row
	prev int64 // absolute sequence of the prior activation with the same delta hash, -1 none
}

func newGHB(cfg config.GHB, ctx Context) *ghbEngine {
	e := &ghbEngine{
		ctx:     ctx,
		cfg:     cfg,
		hist:    make([]ghbEntry, cfg.HistEntries),
		ait:     make([]int64, cfg.AITEntries),
		lastKey: -1,
	}
	for i := range e.ait {
		e.ait[i] = -1
	}
	return e
}

// live reports whether absolute history position p is still in the ring.
func (e *ghbEngine) live(p int64) bool { return p >= 0 && p >= e.seq-int64(len(e.hist)) }

func (e *ghbEngine) OnDemandServed(req Request, state dram.RowState, _ int64) []Fetch {
	if state == dram.RowHit {
		return nil // activations only: the GHB tracks row openings
	}
	key := rowKey(req.Bank, req.Row)
	if e.lastKey < 0 {
		e.lastKey = key
		return nil
	}
	delta := key - e.lastKey
	e.lastKey = key
	h := int(mix64(uint64(delta)) & uint64(len(e.ait)-1))
	chain := e.ait[h]
	e.hist[e.seq%int64(len(e.hist))] = ghbEntry{key: key, prev: chain}
	e.ait[h] = e.seq
	e.seq++

	var fetches []Fetch
	add := func(k int64) {
		if k == key {
			return
		}
		bank, row := rowKeyBank(k), rowKeyRow(k)
		if bank < 0 || bank >= e.ctx.Banks || row < 0 {
			return
		}
		if e.ctx.RowsPerBank > 0 && row >= e.ctx.RowsPerBank {
			return
		}
		for _, f := range fetches {
			if f.Bank == bank && f.Row == row {
				return
			}
		}
		fetches = append(fetches, Fetch{Bank: bank, Row: row, CloseAfter: true})
	}

	// Width traversal: each live chain occurrence contributes the Degree
	// activations that followed it. prev pointers only move backwards in
	// sequence, so the walk cannot cycle; it is additionally bounded by
	// Width.
	ptr := chain
	for w := 0; w < e.cfg.Width && e.live(ptr); w++ {
		for d := int64(1); d <= int64(e.cfg.Degree); d++ {
			s := ptr + d
			if s >= e.seq-1 { // stop before the entry just pushed
				break
			}
			if !e.live(s) {
				continue
			}
			add(e.hist[s%int64(len(e.hist))].key)
		}
		ptr = e.hist[ptr%int64(len(e.hist))].prev
	}
	if len(fetches) > 0 {
		return fetches
	}
	// Cold delta: sequential fallback within the bank.
	for d := int64(1); d <= int64(e.cfg.Degree); d++ {
		row := req.Row + d
		if e.ctx.RowsPerBank > 0 && row >= e.ctx.RowsPerBank {
			break
		}
		fetches = append(fetches, Fetch{Bank: req.Bank, Row: row, CloseAfter: true})
	}
	return fetches
}

func (e *ghbEngine) OnBufferHit(Request) {}

func (e *ghbEngine) OnEviction(pfbuffer.Eviction) {}
