package prefetch

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"camps/internal/config"
	"camps/internal/pfbuffer"
)

// Scheme identifies a registered prefetch engine. Values are assigned in
// registration order, so the built-in schemes keep their historical numeric
// identities (BASE = 0 ... ASD = 6) and exported results remain stable.
type Scheme int

// Knob is one integer configuration parameter an engine exposes for
// parameter sweeps; campsweep lists and applies these by name.
type Knob struct {
	Name  string
	Help  string
	Apply func(c *config.Config, v int64)
}

// Descriptor describes a registered engine: its factory, the buffer
// replacement policy it requires (the capability that replaced the old
// Scheme.BufferPolicy method), and its sweepable config knobs.
type Descriptor struct {
	// Name is the canonical spelling, set by Register.
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Aliases are additional accepted spellings (Lookup/ParseScheme).
	Aliases []string
	// Paper marks the five schemes compared in the paper (Schemes()).
	Paper bool
	// Meta marks engines that delegate to other registered engines (the
	// hybrid); meta engines cannot themselves be hybrid candidates.
	Meta bool
	// Policy is the prefetch-buffer replacement policy the engine needs.
	Policy pfbuffer.Policy
	// Knobs are the engine's sweepable configuration parameters.
	Knobs []Knob
	// New constructs the engine for one vault.
	New func(cfg config.Config, ctx Context) Engine
}

// The registry is append-only and write-once-per-entry: Register runs
// from package init (builtins.go) or from a test's setup, never from a
// simulation or serving path — the globalmut analyzer enforces exactly
// that discipline (Register* is init-context; reaching it from a
// runtime entry point is a finding). Scheme values are registration
// indices, so the init-only rule is also what keeps exported results
// stable: builtins register sequentially from one init function and
// the historical numeric identities (BASE = 0 ...) never move.
//
// The mutex is not for the simulator (which only reads after init); it
// makes the read side safe against tests that register probe engines
// at runtime while other tests read the registry under -race.
var (
	regMu     sync.RWMutex
	regDescs  []Descriptor
	regByName = map[string]Scheme{}
)

// Register adds an engine under a canonical name and returns its Scheme
// value (its registration index). Names are case-insensitive and must be
// unique across canonical names and aliases; registration happens from
// deterministic paths only (the pfregister lint analyzer enforces constant
// literal names not registered from map iteration). Register panics on a
// duplicate or empty name or a nil factory: those are programmer errors at
// package init time.
func Register(name string, d Descriptor) Scheme {
	if name == "" {
		panic("prefetch: Register with empty name")
	}
	if d.New == nil {
		panic(fmt.Sprintf("prefetch: Register(%q) with nil factory", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	d.Name = name
	s := Scheme(len(regDescs))
	for _, spelling := range append([]string{name}, d.Aliases...) {
		key := strings.ToLower(spelling)
		if prev, dup := regByName[key]; dup {
			// regDescs is read directly: prev.String() would re-enter the
			// lock this goroutine already holds.
			panic(fmt.Sprintf("prefetch: Register(%q): spelling %q already names %s",
				name, spelling, regDescs[prev].Name))
		}
		regByName[key] = s
	}
	regDescs = append(regDescs, d)
	return s
}

// Lookup resolves a scheme name (canonical or alias, case-insensitive).
func Lookup(name string) (Scheme, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := regByName[strings.ToLower(name)]
	return s, ok
}

// Describe returns the descriptor registered for the scheme; it panics on
// an unregistered value (use Lookup to validate names first).
func Describe(s Scheme) Descriptor {
	regMu.RLock()
	defer regMu.RUnlock()
	if s < 0 || int(s) >= len(regDescs) {
		panic(fmt.Sprintf("prefetch: unregistered scheme %d", int(s)))
	}
	return regDescs[s]
}

// Names lists every canonical engine name in registration order (which is
// deterministic: builtins register sequentially, never from a map).
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, len(regDescs))
	for i := range regDescs {
		names[i] = regDescs[i].Name
	}
	return names
}

// Schemes lists the paper's five compared schemes in presentation order.
func Schemes() []Scheme {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []Scheme
	for i := range regDescs {
		if regDescs[i].Paper {
			out = append(out, Scheme(i))
		}
	}
	return out
}

// AllSchemes lists every registered scheme in registration order.
func AllSchemes() []Scheme {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Scheme, len(regDescs))
	for i := range out {
		out[i] = Scheme(i)
	}
	return out
}

// String returns the engine's canonical name.
func (s Scheme) String() string {
	regMu.RLock()
	defer regMu.RUnlock()
	if s >= 0 && int(s) < len(regDescs) {
		return regDescs[s].Name
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// ParseScheme resolves a scheme name (as printed by String, or any
// registered alias, case-insensitively) to its Scheme value. The error for
// an unknown name enumerates every registered canonical name, sorted.
func ParseScheme(name string) (Scheme, error) {
	if s, ok := Lookup(name); ok {
		return s, nil
	}
	return 0, fmt.Errorf("prefetch: unknown scheme %q (registered: %s)",
		name, strings.Join(sortedNames(), ", "))
}

// sortedNames returns the canonical names in sorted order for error text
// and listings.
func sortedNames() []string {
	names := Names()
	sort.Strings(names)
	return names
}

// EngineKnobs returns every registered engine's sweep knobs in
// registration order.
func EngineKnobs() []Knob {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []Knob
	for i := range regDescs {
		out = append(out, regDescs[i].Knobs...)
	}
	return out
}

// ValidateConfig checks the parts of the configuration that reference the
// registry — currently that every hybrid candidate names a registered,
// non-meta engine. camps.RunContext calls this alongside config.Validate.
func ValidateConfig(cfg config.Config) error {
	for _, name := range cfg.Hybrid.Candidates {
		s, ok := Lookup(name)
		if !ok {
			return fmt.Errorf("prefetch: hybrid candidate %q is not a registered engine (registered: %s)",
				name, strings.Join(sortedNames(), ", "))
		}
		if Describe(s).Meta {
			return fmt.Errorf("prefetch: hybrid candidate %q is a meta-engine", name)
		}
	}
	return nil
}
