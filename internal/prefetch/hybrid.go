package prefetch

import (
	"camps/internal/config"
	"camps/internal/dram"
	"camps/internal/pfbuffer"
)

// hybridEngine set-duels registered engines per vault. All candidates
// observe the full demand stream, but only the current winner's fetch
// directives are issued, so the duel never perturbs what it measures:
// each candidate's would-be fetches go into a private shadow table, and a
// later demand for a shadowed row — whether it reaches the bank or hits
// the buffer — scores that candidate a hit. Every EpochRequests demand
// requests the scores decay, fresh shadow accuracy is folded in, the live
// winner is additionally reinforced (or demoted) by the controller's
// eviction outcomes (useful_timely vs evicted_unused/conflict_victim, the
// prefetch-ledger taxonomy), and the best-scoring candidate takes over.
// When no candidate scores above zero the hybrid issues nothing — it
// degrades to NONE rather than prefetch on stale evidence.
type hybridEngine struct {
	ctx    Context
	epoch  int
	cands  []hybridCand
	winner int // index into cands; -1 = observing / disabled

	// owner maps fetched rows (direct-mapped by rowKey) to the candidate
	// whose directive fetched them, so eviction feedback reaches only the
	// engine that asked for the row.
	owner []ownerEntry
}

type hybridCand struct {
	name   string
	eng    Engine
	obs    EpochObserver // non-nil when the candidate adapts per epoch
	shadow []int64       // direct-mapped predicted rowKeys, -1 empty
	preds  uint64        // shadow predictions recorded this epoch
	hits   uint64        // shadow predictions confirmed this epoch
	score  int64
}

type ownerEntry struct {
	key  int64
	cand int
}

// newHybrid resolves the configured candidate names against the registry
// (an empty list means every registered fetching engine, i.e. non-meta and
// not NONE). Unresolvable or meta names are skipped here — ValidateConfig
// reports them as errors on the public API path.
func newHybrid(cfg config.Config, ctx Context) *hybridEngine {
	names := cfg.Hybrid.Candidates
	if len(names) == 0 {
		for _, s := range AllSchemes() {
			d := Describe(s)
			if !d.Meta && s != None {
				names = append(names, d.Name)
			}
		}
	}
	e := &hybridEngine{
		ctx:    ctx,
		epoch:  cfg.Hybrid.EpochRequests,
		winner: -1,
		owner:  make([]ownerEntry, cfg.Hybrid.ShadowEntries),
	}
	for i := range e.owner {
		e.owner[i] = ownerEntry{key: -1, cand: -1}
	}
	for _, name := range names {
		s, ok := Lookup(name)
		if !ok || Describe(s).Meta {
			continue
		}
		c := hybridCand{
			name:   Describe(s).Name,
			eng:    Describe(s).New(cfg, ctx),
			shadow: make([]int64, cfg.Hybrid.ShadowEntries),
		}
		for i := range c.shadow {
			c.shadow[i] = -1
		}
		c.obs, _ = c.eng.(EpochObserver)
		e.cands = append(e.cands, c)
	}
	// Warm start on the first configured candidate (the config order makes
	// it the prior) instead of issuing nothing until the first election:
	// the duel can dethrone it after one epoch, but the warmup stream gets
	// prefetched meanwhile.
	if len(e.cands) > 0 {
		e.winner = 0
	}
	return e
}

// Winner exposes the live winner's name for tests and ablations
// ("" while observing or disabled).
func (e *hybridEngine) Winner() string {
	if e.winner < 0 {
		return ""
	}
	return e.cands[e.winner].name
}

func (e *hybridEngine) slot(k int64) int {
	return int(mix64(uint64(k)) & uint64(len(e.owner)-1))
}

// credit scores every candidate that shadow-predicted the row, consuming
// the prediction (one credit per predicted row).
func (e *hybridEngine) credit(key int64) {
	for i := range e.cands {
		c := &e.cands[i]
		if idx := e.slot(key); c.shadow[idx] == key {
			c.hits++
			c.shadow[idx] = -1
		}
	}
}

func (e *hybridEngine) OnDemandServed(req Request, state dram.RowState, displacedRow int64) []Fetch {
	e.credit(rowKey(req.Bank, req.Row))
	var out []Fetch
	for i := range e.cands {
		c := &e.cands[i]
		fs := c.eng.OnDemandServed(req, state, displacedRow)
		for _, f := range fs {
			fk := rowKey(f.Bank, f.Row)
			c.preds++
			c.shadow[e.slot(fk)] = fk
		}
		if i == e.winner {
			out = fs
		}
	}
	for _, f := range out {
		fk := rowKey(f.Bank, f.Row)
		e.owner[e.slot(fk)] = ownerEntry{key: fk, cand: e.winner}
	}
	return out
}

func (e *hybridEngine) OnBufferHit(req Request) {
	// A buffer hit is the winner's prediction paying off in the real
	// system and the same row confirming the shadows' predictions.
	e.credit(rowKey(req.Bank, req.Row))
	for i := range e.cands {
		e.cands[i].eng.OnBufferHit(req)
	}
}

func (e *hybridEngine) OnEviction(ev pfbuffer.Eviction) {
	key := rowKey(ev.ID.Bank, ev.ID.Row)
	idx := e.slot(key)
	if o := e.owner[idx]; o.key == key && o.cand >= 0 && o.cand < len(e.cands) {
		e.cands[o.cand].eng.OnEviction(ev)
		e.owner[idx] = ownerEntry{key: -1, cand: -1}
	}
	// Unowned evictions (overwritten owner slot, pre-takeover residue) are
	// dropped: feedback must not reach an engine that never fetched the row.
}

// EpochRequests implements EpochObserver.
func (e *hybridEngine) EpochRequests() int { return e.epoch }

// OnEpoch closes a duel epoch: candidates that adapt internally get their
// feedback (the winner sees the real eviction outcomes, shadows see their
// shadow accuracy restated in the same terms), scores decay and absorb the
// epoch's shadow accuracy, the live winner is reinforced by the ledger
// signals, and the next winner is elected (first index wins ties; no
// positive score disables fetching).
func (e *hybridEngine) OnEpoch(st EpochStats) {
	for i := range e.cands {
		c := &e.cands[i]
		if c.obs == nil {
			continue
		}
		if i == e.winner {
			c.obs.OnEpoch(st)
			continue
		}
		unused := uint64(0)
		if c.preds > c.hits {
			unused = c.preds - c.hits
		}
		c.obs.OnEpoch(EpochStats{
			Demands:       st.Demands,
			UsefulTimely:  c.hits,
			EvictedUnused: unused,
		})
	}
	for i := range e.cands {
		c := &e.cands[i]
		miss := int64(0)
		if c.preds > c.hits {
			miss = int64(c.preds - c.hits)
		}
		c.score = c.score/2 + 4*int64(c.hits) - miss
		c.preds, c.hits = 0, 0
	}
	if e.winner >= 0 {
		c := &e.cands[e.winner]
		c.score += 2*int64(st.UsefulTimely) + int64(st.UsefulLate) -
			2*int64(st.EvictedUnused) - int64(st.ConflictVictims)
	}
	// Elect with hysteresis: a challenger must beat the incumbent by 25%
	// (its positive score is discounted by a fifth), so a single noisy
	// epoch cannot dethrone a working winner — every takeover churns the
	// buffer and orphans the old winner's eviction feedback.
	best, bestScore := -1, int64(0)
	for i := range e.cands {
		s := e.cands[i].score
		if i != e.winner && s > 0 {
			s -= s / 5
		}
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	e.winner = best
}
