package prefetch

import (
	"camps/internal/dram"
	"camps/internal/pfbuffer"
)

// noneEngine never prefetches: the unmodified HMC with an idle prefetch
// buffer. Not one of the paper's five compared schemes, but the natural
// reference point for "what does prefetching buy at all" and the zero
// point for the ablation benchmarks.
type noneEngine struct{}

func newNone() noneEngine { return noneEngine{} }

func (noneEngine) OnDemandServed(Request, dram.RowState, int64) []Fetch { return nil }

func (noneEngine) OnBufferHit(Request) {}

func (noneEngine) OnEviction(pfbuffer.Eviction) {}
