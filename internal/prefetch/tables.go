package prefetch

import "math/bits"

// rutEntry is one Row Utilization Table entry: the row currently being
// profiled for a bank and the distinct cache lines referenced from it while
// open in the row buffer.
type rutEntry struct {
	row     int64
	touched uint64 // line bitmap
	valid   bool
}

func (e *rutEntry) util() int { return bits.OnesCount64(e.touched) }

// RUT is the Row Utilization Table of §3.1: one entry per bank in the
// vault, each tracking how many distinct cache lines have been accessed
// from the row occupying that bank's row buffer.
type RUT struct {
	entries []rutEntry
}

// NewRUT returns a RUT for the given bank count.
func NewRUT(banks int) *RUT {
	if banks <= 0 {
		panic("prefetch: RUT needs at least one bank")
	}
	return &RUT{entries: make([]rutEntry, banks)}
}

// Track begins (or continues) profiling row in bank's entry and records a
// reference to line. It returns the distinct-line count after the access.
// Tracking a different row than the one resident replaces the entry; the
// caller is responsible for moving the displaced row to the CT first via
// Displace.
func (r *RUT) Track(bank int, row int64, line int) int {
	e := &r.entries[bank]
	if !e.valid || e.row != row {
		*e = rutEntry{row: row, valid: true}
	}
	e.touched |= 1 << uint(line)
	return e.util()
}

// Row returns the row being profiled for bank and whether one is tracked.
func (r *RUT) Row(bank int) (int64, bool) {
	e := &r.entries[bank]
	return e.row, e.valid
}

// Util returns the distinct-line count for bank's tracked row (0 if none).
func (r *RUT) Util(bank int) int {
	e := &r.entries[bank]
	if !e.valid {
		return 0
	}
	return e.util()
}

// Bitmap returns the referenced-line bitmap for bank's tracked row.
func (r *RUT) Bitmap(bank int) uint64 { return r.entries[bank].touched }

// Clear drops bank's entry (after its row has been fetched to the buffer).
func (r *RUT) Clear(bank int) { r.entries[bank] = rutEntry{} }

// Displace removes and returns the row tracked for bank along with its
// referenced-line bitmap, if any; used when a row-buffer conflict replaces
// the open row (the displaced entry moves to the CT, §3.1).
func (r *RUT) Displace(bank int) (row int64, touched uint64, ok bool) {
	e := &r.entries[bank]
	if !e.valid {
		return 0, 0, false
	}
	row, touched = e.row, e.touched
	*e = rutEntry{}
	return row, touched, true
}

// CT is the Conflict Table of §3.1: a small fully associative, LRU-managed
// table of rows recently displaced from row buffers anywhere in the vault,
// each carrying the row-utilization information its RUT entry had
// accumulated ("the replaced entry is moved to CT"). A row found here on
// its next activation has caused a row-buffer conflict and is a prefetch
// candidate.
type CT struct {
	cap     int
	entries []ctEntry // index 0 = LRU, last = MRU
}

type ctEntry struct {
	bank    int
	row     int64
	touched uint64
}

// NewCT returns a conflict table with the given capacity.
func NewCT(capacity int) *CT {
	if capacity <= 0 {
		panic("prefetch: CT needs positive capacity")
	}
	return &CT{cap: capacity}
}

// Len returns the number of resident entries.
func (c *CT) Len() int { return len(c.entries) }

// Capacity returns the table capacity.
func (c *CT) Capacity() int { return c.cap }

// Insert records a displaced row (with its referenced-line bitmap) as the
// MRU entry, evicting the LRU entry if the table is full. Re-inserting a
// resident row refreshes its recency and merges the bitmaps.
func (c *CT) Insert(bank int, row int64, touched uint64) {
	if i := c.find(bank, row); i >= 0 {
		touched |= c.entries[i].touched
		c.entries = append(c.entries[:i], c.entries[i+1:]...)
	} else if len(c.entries) == c.cap {
		c.entries = c.entries[1:]
	}
	c.entries = append(c.entries, ctEntry{bank: bank, row: row, touched: touched})
}

// Contains reports residency without changing recency.
func (c *CT) Contains(bank int, row int64) bool {
	return c.find(bank, row) >= 0
}

// Remove deletes the entry if present, returning its referenced-line
// bitmap and whether it was resident.
func (c *CT) Remove(bank int, row int64) (uint64, bool) {
	i := c.find(bank, row)
	if i < 0 {
		return 0, false
	}
	touched := c.entries[i].touched
	c.entries = append(c.entries[:i], c.entries[i+1:]...)
	return touched, true
}

func (c *CT) find(bank int, row int64) int {
	for i := range c.entries {
		if c.entries[i].bank == bank && c.entries[i].row == row {
			return i
		}
	}
	return -1
}
