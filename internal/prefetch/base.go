package prefetch

import (
	"camps/internal/dram"
	"camps/internal/pfbuffer"
)

// baseEngine is the paper's BASE scheme: prefetch the whole row on the
// first access to it and precharge the bank once the copy completes. Every
// demand that reaches a bank therefore triggers a fetch, the buffer churns
// constantly, and — as §5.2 notes — row-buffer conflicts disappear because
// the bank is always closed behind the copy.
type baseEngine struct {
	ctx Context
}

func newBase(ctx Context) *baseEngine { return &baseEngine{ctx: ctx} }

func (e *baseEngine) OnDemandServed(req Request, _ dram.RowState, _ int64) []Fetch {
	return []Fetch{{Bank: req.Bank, Row: req.Row, CloseAfter: true,
		Touched: 1 << uint(req.Line)}}
}

func (e *baseEngine) OnBufferHit(Request) {}

func (e *baseEngine) OnEviction(pfbuffer.Eviction) {}

// baseHitEngine is the BASE-HIT scheme: fetch a whole row only when the
// read queue holds two or more (further) requests for it, i.e. when there
// is direct evidence the rest of the row is wanted. The bank follows the
// normal open-page policy otherwise, so row-buffer conflicts remain.
type baseHitEngine struct {
	ctx Context
}

func newBaseHit(ctx Context) *baseHitEngine { return &baseHitEngine{ctx: ctx} }

func (e *baseHitEngine) OnDemandServed(req Request, _ dram.RowState, _ int64) []Fetch {
	if e.ctx.Queue == nil {
		return nil
	}
	if e.ctx.Queue.PendingReadsForRow(req.Bank, req.Row) >= 2 {
		// Copy but keep the row open: BASE-HIT follows the normal
		// open-page policy, so row-buffer conflicts remain (it is the
		// scheme with the most conflicts in the paper's Figure 6).
		return []Fetch{{Bank: req.Bank, Row: req.Row, CloseAfter: false,
			Touched: 1 << uint(req.Line)}}
	}
	return nil
}

func (e *baseHitEngine) OnBufferHit(Request) {}

func (e *baseHitEngine) OnEviction(pfbuffer.Eviction) {}
