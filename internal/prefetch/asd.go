package prefetch

import (
	"camps/internal/dram"
	"camps/internal/pfbuffer"
)

// asdEngine is an extension beyond the paper's five compared schemes: a
// row-granularity adaptation of Hur & Lin's Adaptive Stream Detection
// (MICRO 2006), which the paper discusses as related work [10]. The
// original issues prefetches sized by a histogram of observed stream
// lengths; here, streams are detected as monotonically advancing line
// accesses within the open row, the confirmed row is copied to the buffer,
// and a stream-length histogram measured each epoch decides whether the
// *following* row is worth prefetching too (depth 2) — the row-sized
// analogue of "prefetch n+1 while streams keep going".
type asdEngine struct {
	ctx Context

	// Per-bank direction detector for the open row.
	lastRow   []int64
	lastLine  []int
	ascending []int // consecutive ascending line touches

	// Stream-length histogram, epoch based: how many references each
	// row-episode contained before the row changed.
	epLen      []int // current episode length per bank
	hist       [17]uint64
	epochCount int
	depth      int
}

// asdEpoch is the number of closed episodes per adaptation epoch.
const asdEpoch = 256

// asdConfirm is the ascending-touch count that confirms a stream.
const asdConfirm = 2

func newASD(ctx Context) *asdEngine {
	e := &asdEngine{
		ctx:       ctx,
		lastRow:   make([]int64, ctx.Banks),
		lastLine:  make([]int, ctx.Banks),
		ascending: make([]int, ctx.Banks),
		epLen:     make([]int, ctx.Banks),
		depth:     1,
	}
	for i := range e.lastRow {
		e.lastRow[i] = -1
	}
	return e
}

// Depth returns the current prefetch depth (1 = confirmed row only,
// 2 = plus its successor).
func (e *asdEngine) Depth() int { return e.depth }

func (e *asdEngine) OnDemandServed(req Request, state dram.RowState, _ int64) []Fetch {
	b := req.Bank
	if state != dram.RowHit || e.lastRow[b] != req.Row {
		// New episode: close the previous one into the histogram.
		e.closeEpisode(b)
		e.lastRow[b] = req.Row
		e.lastLine[b] = req.Line
		e.ascending[b] = 0
		e.epLen[b] = 1
		return nil
	}
	e.epLen[b]++
	if req.Line > e.lastLine[b] {
		e.ascending[b]++
	} else {
		e.ascending[b] = 0
	}
	e.lastLine[b] = req.Line
	if e.ascending[b] != asdConfirm {
		return nil
	}
	// Stream confirmed: copy the row (leave it open — ASD is not
	// conflict-aware) and, at depth 2, its successor.
	fetches := []Fetch{{Bank: b, Row: req.Row, CloseAfter: false,
		Touched: 1 << uint(req.Line)}}
	if e.depth >= 2 {
		next := req.Row + 1
		if e.ctx.RowsPerBank == 0 || next < e.ctx.RowsPerBank {
			fetches = append(fetches, Fetch{Bank: b, Row: next, CloseAfter: true})
		}
	}
	return fetches
}

// closeEpisode records a finished row episode and adapts depth each epoch.
func (e *asdEngine) closeEpisode(b int) {
	if e.lastRow[b] < 0 || e.epLen[b] == 0 {
		return
	}
	n := e.epLen[b]
	if n > 16 {
		n = 16
	}
	e.hist[n]++
	e.epLen[b] = 0
	e.epochCount++
	if e.epochCount < asdEpoch {
		return
	}
	// Long episodes (rows consumed nearly whole) suggest streams that will
	// run into the next row: raise depth. Mostly-short episodes: stay at 1.
	var short, long uint64
	for l, c := range e.hist {
		if l >= 12 {
			long += c
		} else {
			short += c
		}
	}
	if long > short {
		e.depth = 2
	} else {
		e.depth = 1
	}
	e.hist = [17]uint64{}
	e.epochCount = 0
}

func (e *asdEngine) OnBufferHit(Request) {}

func (e *asdEngine) OnEviction(pfbuffer.Eviction) {}
