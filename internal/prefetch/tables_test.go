package prefetch

import (
	"math/rand"
	"testing"
)

func TestRUTTrackDistinctLines(t *testing.T) {
	r := NewRUT(4)
	if u := r.Track(0, 9, 3); u != 1 {
		t.Fatalf("first track util = %d, want 1", u)
	}
	if u := r.Track(0, 9, 3); u != 1 {
		t.Fatalf("repeat line util = %d, want 1 (distinct lines)", u)
	}
	if u := r.Track(0, 9, 5); u != 2 {
		t.Fatalf("second line util = %d, want 2", u)
	}
	row, ok := r.Row(0)
	if !ok || row != 9 {
		t.Fatalf("Row(0) = %d,%v", row, ok)
	}
	if r.Util(0) != 2 {
		t.Fatalf("Util(0) = %d", r.Util(0))
	}
}

func TestRUTReplaceOnDifferentRow(t *testing.T) {
	r := NewRUT(2)
	r.Track(1, 5, 0)
	r.Track(1, 5, 1)
	if u := r.Track(1, 6, 0); u != 1 {
		t.Fatalf("util after row change = %d, want 1", u)
	}
	row, _ := r.Row(1)
	if row != 6 {
		t.Fatalf("tracked row = %d, want 6", row)
	}
}

func TestRUTClearAndDisplace(t *testing.T) {
	r := NewRUT(2)
	r.Track(0, 3, 0)
	r.Clear(0)
	if _, ok := r.Row(0); ok {
		t.Fatal("entry survived Clear")
	}
	if _, _, ok := r.Displace(0); ok {
		t.Fatal("Displace on empty entry returned ok")
	}
	r.Track(0, 4, 1)
	r.Track(0, 4, 3)
	row, touched, ok := r.Displace(0)
	if !ok || row != 4 {
		t.Fatalf("Displace = %d,%v", row, ok)
	}
	if touched != (1<<1 | 1<<3) {
		t.Fatalf("displaced bitmap = %#x, want lines 1 and 3", touched)
	}
	if _, ok := r.Row(0); ok {
		t.Fatal("entry survived Displace")
	}
}

func TestRUTBanksIndependent(t *testing.T) {
	r := NewRUT(3)
	r.Track(0, 1, 0)
	r.Track(1, 2, 0)
	r.Track(2, 3, 0)
	for bank, want := range []int64{1, 2, 3} {
		if row, ok := r.Row(bank); !ok || row != want {
			t.Fatalf("bank %d tracks %d, want %d", bank, row, want)
		}
	}
}

func TestNewRUTValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRUT(0) did not panic")
		}
	}()
	NewRUT(0)
}

func TestCTInsertContainsRemove(t *testing.T) {
	ct := NewCT(4)
	if ct.Capacity() != 4 {
		t.Fatalf("capacity = %d", ct.Capacity())
	}
	ct.Insert(0, 10, 0)
	ct.Insert(1, 20, 0)
	if !ct.Contains(0, 10) || !ct.Contains(1, 20) || ct.Contains(0, 20) {
		t.Fatal("containment wrong")
	}
	if _, ok := ct.Remove(0, 10); !ok {
		t.Fatal("remove of resident entry failed")
	}
	if _, ok := ct.Remove(0, 10); ok {
		t.Fatal("double remove succeeded")
	}
	if ct.Len() != 1 {
		t.Fatalf("len = %d, want 1", ct.Len())
	}
}

func TestCTLRUEviction(t *testing.T) {
	ct := NewCT(2)
	ct.Insert(0, 1, 0)
	ct.Insert(0, 2, 0)
	ct.Insert(0, 1, 0) // refresh 1 -> LRU is now 2
	ct.Insert(0, 3, 0) // evicts 2
	if ct.Contains(0, 2) {
		t.Fatal("LRU entry 2 should have been evicted")
	}
	if !ct.Contains(0, 1) || !ct.Contains(0, 3) {
		t.Fatal("resident set wrong after LRU eviction")
	}
	if ct.Len() != 2 {
		t.Fatalf("len = %d, want 2", ct.Len())
	}
}

func TestCTDuplicateInsertDoesNotGrow(t *testing.T) {
	ct := NewCT(4)
	for i := 0; i < 10; i++ {
		ct.Insert(2, 7, 0)
	}
	if ct.Len() != 1 {
		t.Fatalf("duplicate inserts grew table to %d", ct.Len())
	}
}

func TestCTNeverExceedsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ct := NewCT(8)
	for i := 0; i < 10000; i++ {
		switch rng.Intn(3) {
		case 0, 1:
			ct.Insert(rng.Intn(16), int64(rng.Intn(100)), 0)
		case 2:
			ct.Remove(rng.Intn(16), int64(rng.Intn(100)))
		}
		if ct.Len() > ct.Capacity() {
			t.Fatalf("CT overflowed: %d > %d", ct.Len(), ct.Capacity())
		}
	}
}

func TestNewCTValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCT(0) did not panic")
		}
	}()
	NewCT(0)
}

func TestCTStoresAndMergesBitmaps(t *testing.T) {
	ct := NewCT(4)
	ct.Insert(0, 9, 0b0011)
	ct.Insert(0, 9, 0b1100) // refresh merges utilization info
	touched, ok := ct.Remove(0, 9)
	if !ok || touched != 0b1111 {
		t.Fatalf("CT bitmap = %#b,%v; want merged 0b1111", touched, ok)
	}
}
