package prefetch

import (
	"fmt"
	"math/bits"

	"camps/internal/config"
	"camps/internal/dram"
	"camps/internal/pfbuffer"
)

// campsEngine implements the conflict-aware prefetching of §3.1.
//
// Row-buffer hit: the served row's utilization is tracked in the RUT; once
// the distinct-line count reaches the threshold (4 in the paper) the whole
// row is fetched to the prefetch buffer and the bank precharged.
//
// Row-buffer miss: the newly activated row is checked against the CT. If
// present, the row was displaced recently — it is conflict-prone — so it is
// fetched whole to the buffer, removed from the CT, and the bank
// precharged. If absent, the row stays open and enters the RUT.
//
// Row-buffer conflict: the displaced row's RUT entry moves to the CT (LRU
// eviction when full), then the new row is handled as a miss.
type campsEngine struct {
	ctx       Context
	rut       *RUT
	ct        *CT
	threshold int
}

func newCAMPS(cfg config.CAMPS, ctx Context) *campsEngine {
	return &campsEngine{
		ctx:       ctx,
		rut:       NewRUT(ctx.Banks),
		ct:        NewCT(cfg.CTEntries),
		threshold: cfg.UtilThreshold,
	}
}

func (e *campsEngine) OnDemandServed(req Request, state dram.RowState, displacedRow int64) []Fetch {
	switch state {
	case dram.RowHit:
		util := e.rut.Track(req.Bank, req.Row, req.Line)
		if util >= e.threshold {
			touched := e.rut.Bitmap(req.Bank)
			e.rut.Clear(req.Bank)
			return []Fetch{{Bank: req.Bank, Row: req.Row, CloseAfter: true, Touched: touched}}
		}
		return nil

	case dram.RowConflict:
		// The open row was displaced to serve this request: its RUT entry
		// (row plus utilization bitmap) moves to the conflict table.
		if displaced, touched, ok := e.rut.Displace(req.Bank); ok {
			e.ct.Insert(req.Bank, displaced, touched)
		} else if displacedRow != dram.NoRow {
			// The displaced row was not under RUT profiling (e.g. it was
			// opened by a writeback); it still conflicted.
			e.ct.Insert(req.Bank, displacedRow, 0)
		}
		return e.onNewRow(req)

	default: // dram.RowMiss
		return e.onNewRow(req)
	}
}

// onNewRow handles a row that was just activated for this request.
func (e *campsEngine) onNewRow(req Request) []Fetch {
	if touched, ok := e.ct.Remove(req.Bank, req.Row); ok {
		// Recently displaced and accessed again: conflict-prone. Fetch it
		// whole and precharge; do not profile it further. The lines it
		// accumulated before displacement seed the buffer entry's
		// utilization, per the CT's stored row-utilization information.
		return []Fetch{{Bank: req.Bank, Row: req.Row, CloseAfter: true,
			Touched: touched | 1<<uint(req.Line)}}
	}
	util := e.rut.Track(req.Bank, req.Row, req.Line)
	if util >= e.threshold {
		// Degenerate configuration (threshold 1): fetch immediately.
		touched := e.rut.Bitmap(req.Bank)
		e.rut.Clear(req.Bank)
		return []Fetch{{Bank: req.Bank, Row: req.Row, CloseAfter: true, Touched: touched}}
	}
	return nil
}

func (e *campsEngine) OnBufferHit(Request) {}

func (e *campsEngine) OnEviction(pfbuffer.Eviction) {}

// CTLen exposes the conflict-table occupancy for tests and ablations.
func (e *campsEngine) CTLen() int { return e.ct.Len() }

// CTCap exposes the conflict-table capacity for tests and invariants.
func (e *campsEngine) CTCap() int { return e.ct.Capacity() }

// CheckInvariant validates the engine's table bounds: CT occupancy within
// capacity, the RUT sized one entry per bank, and every tracked bitmap
// within the vault's lines-per-row mask. It implements the optional
// invariant-checking interface the vault controller probes for.
func (e *campsEngine) CheckInvariant() error {
	if n, c := e.ct.Len(), e.ct.Capacity(); n > c {
		return fmt.Errorf("prefetch: CT holds %d entries over capacity %d", n, c)
	}
	if len(e.rut.entries) != e.ctx.Banks {
		return fmt.Errorf("prefetch: RUT has %d entries for %d banks", len(e.rut.entries), e.ctx.Banks)
	}
	for b := range e.rut.entries {
		en := &e.rut.entries[b]
		if !en.valid {
			continue
		}
		if util := bits.OnesCount64(en.touched); util > e.ctx.LinesPerRow {
			return fmt.Errorf("prefetch: RUT bank %d tracks %d lines of %d per row",
				b, util, e.ctx.LinesPerRow)
		}
	}
	return nil
}
