// Package prefetch implements the memory-side prefetch engines compared in
// the CAMPS paper. Every engine lives in a vault controller, observes the
// demand stream to that vault's banks, and directs whole-row fetches into
// the vault's prefetch buffer:
//
//   - BASE: fetch the whole row on the first access to it (and precharge),
//     the paper's aggressive baseline.
//   - BASE-HIT: fetch a row once two or more requests for it are pending in
//     the read queue.
//   - MMD: a stand-in for the dynamic-degree memory-side prefetcher of
//     Yedlapalli et al. [8]: sequential-row prefetch whose degree adapts to
//     measured usefulness each epoch; LRU buffer management.
//   - CAMPS: the paper's conflict-aware engine built on the Row Utilization
//     Table (RUT) and Conflict Table (CT).
//   - CAMPS-MOD: CAMPS plus the utilization+recency buffer replacement
//     policy (the policy itself lives in package pfbuffer).
package prefetch

import (
	"fmt"

	"camps/internal/config"
	"camps/internal/dram"
	"camps/internal/pfbuffer"
)

// Scheme names one of the five evaluated prefetching schemes.
type Scheme int

const (
	// Base prefetches a whole row on every first access.
	Base Scheme = iota
	// BaseHit prefetches a row with >= 2 pending read-queue requests.
	BaseHit
	// MMD adapts prefetch degree to usefulness, LRU buffer.
	MMD
	// CAMPS is conflict-aware prefetching with LRU buffer management.
	CAMPS
	// CAMPSMOD is CAMPS with utilization+recency buffer management.
	CAMPSMOD
	// None disables prefetching entirely — the unmodified HMC, a reference
	// point beyond the paper's five compared schemes.
	None
	// ASD is a row-granularity adaptation of Hur & Lin's Adaptive Stream
	// Detection (the paper's related work [10]); an extension scheme.
	ASD
)

// Schemes lists the paper's five compared schemes in presentation order.
func Schemes() []Scheme { return []Scheme{Base, BaseHit, MMD, CAMPS, CAMPSMOD} }

// AllSchemes lists every available scheme, including the no-prefetch
// reference and the ASD extension.
func AllSchemes() []Scheme { return append(Schemes(), None, ASD) }

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case Base:
		return "BASE"
	case BaseHit:
		return "BASE-HIT"
	case MMD:
		return "MMD"
	case CAMPS:
		return "CAMPS"
	case CAMPSMOD:
		return "CAMPS-MOD"
	case None:
		return "NONE"
	case ASD:
		return "ASD"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// ParseScheme converts a scheme name (as printed by String) back to a
// Scheme value.
func ParseScheme(name string) (Scheme, error) {
	for _, s := range AllSchemes() {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("prefetch: unknown scheme %q", name)
}

// BufferPolicy returns the prefetch-buffer replacement policy the scheme
// uses: only CAMPS-MOD uses the utilization+recency policy.
func (s Scheme) BufferPolicy() pfbuffer.Policy {
	if s == CAMPSMOD {
		return pfbuffer.UtilRecency
	}
	return pfbuffer.LRU
}

// Request describes one demand access as seen by a vault controller.
type Request struct {
	Bank  int
	Row   int64
	Line  int // cache line index within the row
	Write bool
}

// RowID returns the row the request targets.
func (r Request) RowID() pfbuffer.RowID { return pfbuffer.RowID{Bank: r.Bank, Row: r.Row} }

// Fetch directs the vault controller to bring a whole row into the
// prefetch buffer.
type Fetch struct {
	Bank int
	Row  int64
	// CloseAfter asks the controller to precharge the bank once the row
	// has been copied (CAMPS and BASE do; the open-page schemes do not).
	CloseAfter bool
	// Touched is the bitmap of lines already served from the DRAM row
	// buffer before this fetch (the trigger accesses); it seeds the
	// prefetch-buffer entry's utilization counter.
	Touched uint64
}

// QueueView gives engines read-only visibility into the vault's read queue
// (BASE-HIT's trigger condition).
type QueueView interface {
	// PendingReadsForRow counts queued demand reads targeting the row.
	PendingReadsForRow(bank int, row int64) int
}

// Context carries the vault-level facts engines need.
type Context struct {
	Banks       int
	LinesPerRow int
	RowsPerBank int64
	Queue       QueueView
}

// Engine is a memory-side prefetch engine. Engines are single-vault and are
// driven synchronously by the vault controller's event loop, so they need
// no internal locking.
type Engine interface {
	// Scheme identifies the engine.
	Scheme() Scheme
	// OnDemandServed fires when a demand request has been serviced from a
	// DRAM bank (not the prefetch buffer). state is the row-buffer outcome
	// the request saw; displacedRow is the row that was closed to make room
	// when state is RowConflict, else dram.NoRow. The returned fetches are
	// executed by the controller as bank bandwidth allows.
	OnDemandServed(req Request, state dram.RowState, displacedRow int64) []Fetch
	// OnBufferHit fires when a demand request was served by the prefetch
	// buffer instead of a bank.
	OnBufferHit(req Request)
	// OnEviction fires when a prefetched row leaves the buffer; engines use
	// it for usefulness feedback.
	OnEviction(ev pfbuffer.Eviction)
}

// New constructs the engine for a scheme using the given configuration and
// vault context.
func New(s Scheme, cfg config.Config, ctx Context) Engine {
	switch s {
	case Base:
		return newBase(ctx)
	case BaseHit:
		return newBaseHit(ctx)
	case MMD:
		return newMMD(cfg.MMD, ctx)
	case CAMPS, CAMPSMOD:
		return newCAMPS(s, cfg.CAMPS, ctx)
	case None:
		return newNone()
	case ASD:
		return newASD(ctx)
	}
	panic(fmt.Sprintf("prefetch: unknown scheme %d", int(s)))
}
