// Package prefetch implements the memory-side prefetch engines compared in
// the CAMPS paper, plus extension engines, behind an open string-keyed
// registry (see registry.go). Every engine lives in a vault controller,
// observes the demand stream to that vault's banks, and directs whole-row
// fetches into the vault's prefetch buffer.
//
// The built-in engines (builtins.go):
//
//   - BASE: fetch the whole row on the first access to it (and precharge),
//     the paper's aggressive baseline.
//   - BASE-HIT: fetch a row once two or more requests for it are pending in
//     the read queue.
//   - MMD: a stand-in for the dynamic-degree memory-side prefetcher of
//     Yedlapalli et al. [8]: sequential-row prefetch whose degree adapts to
//     measured usefulness each epoch; LRU buffer management.
//   - CAMPS: the paper's conflict-aware engine built on the Row Utilization
//     Table (RUT) and Conflict Table (CT).
//   - CAMPS-MOD: CAMPS plus the utilization+recency buffer replacement
//     policy (the policy itself lives in package pfbuffer).
//   - NONE: prefetching disabled (the unmodified HMC).
//   - ASD: row-granularity Adaptive Stream Detection (Hur & Lin [10]).
//   - ghb: GHB/AIT width prefetcher over the row-activation stream.
//   - sisb: temporal next-address prediction with a bounded training table.
//   - bestoffset: Best-Offset offset scoring at row granularity.
//   - hybrid: set-duels registered engines per vault at epoch granularity.
package prefetch

import (
	"camps/internal/config"
	"camps/internal/dram"
	"camps/internal/pfbuffer"
)

// Request describes one demand access as seen by a vault controller.
type Request struct {
	Bank  int
	Row   int64
	Line  int // cache line index within the row
	Write bool
}

// RowID returns the row the request targets.
func (r Request) RowID() pfbuffer.RowID { return pfbuffer.RowID{Bank: r.Bank, Row: r.Row} }

// Fetch directs the vault controller to bring a whole row into the
// prefetch buffer.
type Fetch struct {
	Bank int
	Row  int64
	// CloseAfter asks the controller to precharge the bank once the row
	// has been copied (CAMPS and BASE do; the open-page schemes do not).
	CloseAfter bool
	// Touched is the bitmap of lines already served from the DRAM row
	// buffer before this fetch (the trigger accesses); it seeds the
	// prefetch-buffer entry's utilization counter. It bounds LinesPerRow
	// at 64, which config.Validate enforces (config.ErrLineBitmap).
	Touched uint64
}

// QueueView gives engines read-only visibility into the vault's read queue
// (BASE-HIT's trigger condition).
type QueueView interface {
	// PendingReadsForRow counts queued demand reads targeting the row.
	PendingReadsForRow(bank int, row int64) int
}

// Context carries the vault-level facts engines need.
type Context struct {
	Banks       int
	LinesPerRow int
	RowsPerBank int64
	Queue       QueueView
}

// Engine is a memory-side prefetch engine. Engines are single-vault and are
// driven synchronously by the vault controller's event loop, so they need
// no internal locking. Engines may additionally implement EpochObserver to
// receive controller-maintained efficacy feedback at a fixed request cadence.
type Engine interface {
	// OnDemandServed fires when a demand request has been serviced from a
	// DRAM bank (not the prefetch buffer). state is the row-buffer outcome
	// the request saw; displacedRow is the row that was closed to make room
	// when state is RowConflict, else dram.NoRow. The returned fetches are
	// executed by the controller as bank bandwidth allows.
	OnDemandServed(req Request, state dram.RowState, displacedRow int64) []Fetch
	// OnBufferHit fires when a demand request was served by the prefetch
	// buffer instead of a bank.
	OnBufferHit(req Request)
	// OnEviction fires when a prefetched row leaves the buffer; engines use
	// it for usefulness feedback.
	OnEviction(ev pfbuffer.Eviction)
}

// EpochStats is the per-epoch efficacy feedback the vault controller hands
// an EpochObserver engine. The eviction-outcome fields use the prefetch
// ledger's taxonomy (obs.PrefetchOutcome) but are tracked by the controller
// itself, so they are available whether or not attribution is enabled.
type EpochStats struct {
	Demands       uint64 // demand requests served from banks this epoch
	BufferHits    uint64 // demand requests served by the prefetch buffer
	FetchesIssued uint64 // row fetches the controller started

	UsefulTimely    uint64 // evicted rows used, resident before first demand
	UsefulLate      uint64 // evicted rows used, but a demand beat the fill
	EvictedUnused   uint64 // evicted rows never referenced
	ConflictVictims uint64 // fetch directives dropped before residency
}

// EpochObserver is the optional adaptation hook: engines that implement it
// receive OnEpoch every EpochRequests demand requests, immediately before
// the triggering request's own OnDemandServed. This is the adaptation point
// MMD previously buried internally and the signal the hybrid meta-engine
// duels candidates on.
type EpochObserver interface {
	// EpochRequests returns the epoch length in demand requests.
	EpochRequests() int
	// OnEpoch receives the finished epoch's accumulated stats.
	OnEpoch(st EpochStats)
}

// New constructs the engine registered for the scheme using the given
// configuration and vault context. It panics on an unregistered scheme;
// use Lookup/ParseScheme to validate names first.
func New(s Scheme, cfg config.Config, ctx Context) Engine {
	return Describe(s).New(cfg, ctx)
}

// rowKey packs (bank, row) into one comparable key for the history-based
// engines. Rows per bank is bounded far below 2^40 in any valid geometry.
func rowKey(bank int, row int64) int64 { return int64(bank)<<40 | row }

// rowKeyBank and rowKeyRow unpack a rowKey.
func rowKeyBank(k int64) int { return int(k >> 40) }
func rowKeyRow(k int64) int64 { return k & (1<<40 - 1) }

// mix64 is a splitmix64-style finalizer used to hash table indices; fixed
// constants keep every run deterministic.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
