package prefetch

// Conformance suite: every registered engine — builtin or third-party —
// must satisfy the same contract the vault controller relies on. The
// suite runs New() against the full registry, so registering an engine
// is enough to put it under test.

import (
	"fmt"
	"reflect"
	"testing"

	"camps/internal/config"
	"camps/internal/dram"
	"camps/internal/pfbuffer"
)

// confStream is a deterministic xorshift64* generator; no math/rand so the
// suite stays reproducible and simdeterminism-clean.
type confStream struct{ s uint64 }

func (r *confStream) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s * 0x2545f4914f6cdd1d
}

// drive feeds engine e a fixed pseudo-random mix of demand serves, buffer
// hits, and evictions (including evictions of rows the engine never
// fetched, which the controller emits for poisoned fetches) and returns
// the concatenated fetch log.
func drive(e Engine, ctx Context, seed uint64, events int) []Fetch {
	rng := confStream{s: seed}
	var log []Fetch
	for i := 0; i < events; i++ {
		req := Request{
			Bank:  int(rng.next() % uint64(ctx.Banks)),
			Row:   int64(rng.next() % uint64(ctx.RowsPerBank)),
			Line:  int(rng.next() % uint64(ctx.LinesPerRow)),
			Write: rng.next()%8 == 0,
		}
		switch rng.next() % 16 {
		case 0:
			e.OnBufferHit(req)
		case 1:
			// Eviction of a row this engine may never have fetched.
			e.OnEviction(pfbuffer.Eviction{
				ID:    pfbuffer.RowID{Bank: req.Bank, Row: req.Row},
				Used:  rng.next()%2 == 0,
				Late:  rng.next()%4 == 0,
				Dirty: rng.next()%4 == 0,
				Util:  int(rng.next() % 16),
			})
		default:
			states := [...]dram.RowState{dram.RowHit, dram.RowHit, dram.RowMiss, dram.RowConflict}
			st := states[rng.next()%4]
			displaced := dram.NoRow
			if st == dram.RowConflict {
				displaced = int64(rng.next() % uint64(ctx.RowsPerBank))
			}
			log = append(log, e.OnDemandServed(req, st, displaced)...)
		}
		if eo, ok := e.(EpochObserver); ok && i%257 == 256 {
			eo.OnEpoch(EpochStats{
				Demands:       200,
				BufferHits:    rng.next() % 50,
				FetchesIssued: rng.next() % 40,
				UsefulTimely:  rng.next() % 20,
				UsefulLate:    rng.next() % 5,
				EvictedUnused: rng.next() % 20,
			})
		}
	}
	return log
}

func TestEngineConformance(t *testing.T) {
	for _, s := range AllSchemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			cfg := config.Default()
			ctx := testCtx(fakeQueue{})
			e := New(s, cfg, ctx)

			// Fetches stay within the vault's geometry and carry a valid
			// touched-line bitmap.
			lineMask := uint64(1)<<uint(ctx.LinesPerRow) - 1
			log := drive(e, ctx, 0x9e3779b97f4a7c15, 4000)
			for _, f := range log {
				if f.Bank < 0 || f.Bank >= ctx.Banks {
					t.Fatalf("fetch bank %d out of [0,%d)", f.Bank, ctx.Banks)
				}
				if f.Row < 0 || f.Row >= ctx.RowsPerBank {
					t.Fatalf("fetch row %d out of [0,%d)", f.Row, ctx.RowsPerBank)
				}
				if f.Touched&^lineMask != 0 {
					t.Fatalf("fetch touched bitmap %#x exceeds %d lines", f.Touched, ctx.LinesPerRow)
				}
			}
			if s == None && len(log) != 0 {
				t.Fatalf("NONE issued %d fetches", len(log))
			}

			// Same seed, fresh engine: identical fetch log.
			again := drive(New(s, cfg, ctx), ctx, 0x9e3779b97f4a7c15, 4000)
			if !reflect.DeepEqual(log, again) {
				t.Fatalf("engine is non-deterministic: %d vs %d fetches", len(log), len(again))
			}

			// An epoch observer must advertise a positive cadence.
			if eo, ok := e.(EpochObserver); ok && eo.EpochRequests() <= 0 {
				t.Fatalf("EpochRequests() = %d, want > 0", eo.EpochRequests())
			}
		})
	}
}

// TestEvictionOfNeverFetchedRowDoesNotPanic pins the poison-fetch contract:
// the controller reports evictions (with only the RowID populated) for rows
// an engine never asked for, and no engine may panic on them.
func TestEvictionOfNeverFetchedRowDoesNotPanic(t *testing.T) {
	for _, s := range AllSchemes() {
		e := New(s, config.Default(), testCtx(fakeQueue{}))
		for i := 0; i < 64; i++ {
			e.OnEviction(pfbuffer.Eviction{ID: pfbuffer.RowID{Bank: i % 16, Row: int64(i * 31)}})
		}
	}
}

// TestRegistryExtension registers a throwaway engine and checks that every
// registry-driven surface — name parsing, listing, knobs, New — picks it up
// without further wiring. It deliberately uses the public extension path.
func TestRegistryExtension(t *testing.T) {
	name := fmt.Sprintf("conformance-probe-%d", len(Names()))
	s := Register(name, Descriptor{
		Name:   name,
		Doc:    "test-only probe engine",
		Policy: pfbuffer.LRU,
		Knobs: []Knob{{Name: name + ".knob", Help: "probe knob",
			Apply: func(cfg *config.Config, v int64) {}}},
		New: func(cfg config.Config, ctx Context) Engine { return newNone() },
	})
	got, err := ParseScheme(name)
	if err != nil || got != s {
		t.Fatalf("ParseScheme(%q) = %v, %v", name, got, err)
	}
	if s.String() != name {
		t.Fatalf("String() = %q, want %q", s.String(), name)
	}
	found := false
	for _, n := range Names() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() does not list %q", name)
	}
	found = false
	for _, k := range EngineKnobs() {
		if k.Name == name+".knob" {
			found = true
		}
	}
	if !found {
		t.Fatal("EngineKnobs() does not list the probe knob")
	}
	if e := New(s, config.Default(), testCtx(nil)); e == nil {
		t.Fatal("New returned nil for registered probe")
	}
	// Probe stays out of the paper figure set.
	for _, ps := range Schemes() {
		if ps == s {
			t.Fatal("probe leaked into Schemes()")
		}
	}
}

func TestRegisterRejectsDuplicatesAndNilFactory(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate name", func() {
		Register("mmd", Descriptor{Name: "mmd",
			New: func(config.Config, Context) Engine { return newNone() }})
	})
	mustPanic("duplicate alias", func() {
		Register("probe-alias-dup", Descriptor{Name: "probe-alias-dup",
			Aliases: []string{"Best-Offset"},
			New:     func(config.Config, Context) Engine { return newNone() }})
	})
	mustPanic("nil factory", func() {
		Register("probe-nil-new", Descriptor{Name: "probe-nil-new"})
	})
	mustPanic("empty name", func() {
		Register("", Descriptor{New: func(config.Config, Context) Engine { return newNone() }})
	})
}

func TestParseSchemeErrorListsAllNames(t *testing.T) {
	_, err := ParseScheme("definitely-not-registered")
	if err == nil {
		t.Fatal("ParseScheme accepted an unknown name")
	}
	for _, n := range []string{"BASE", "CAMPS-MOD", "ghb", "sisb", "bestoffset", "hybrid"} {
		if !containsSub(err.Error(), n) {
			t.Fatalf("error %q does not enumerate %q", err, n)
		}
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestValidateConfigRejectsBadHybridCandidates(t *testing.T) {
	cfg := config.Default()
	if err := ValidateConfig(cfg); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	cfg.Hybrid.Candidates = []string{"MMD", "nope"}
	if err := ValidateConfig(cfg); err == nil {
		t.Fatal("unknown hybrid candidate accepted")
	}
	cfg.Hybrid.Candidates = []string{"hybrid"}
	if err := ValidateConfig(cfg); err == nil {
		t.Fatal("meta-engine accepted as its own candidate")
	}
}
