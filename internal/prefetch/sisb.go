package prefetch

import (
	"camps/internal/config"
	"camps/internal/dram"
	"camps/internal/pfbuffer"
)

// sisbEngine is a temporal next-address predictor in the spirit of the
// simple irregular-stream buffer (Jain & Lin, ISB): it memorizes, per
// activated row, which row the same bank activated next, in a bounded
// training table evicted FIFO. A trigger follows the learned successor
// chain up to Degree steps and fetches each predicted row. Temporal
// correlation captures irregular but recurring activation sequences that
// stride-style engines miss.
type sisbEngine struct {
	ctx Context
	cfg config.SISB

	next map[int64]int64 // rowKey -> next activated rowKey (same bank stream)
	// ring holds every trained key exactly once, oldest at head: keys are
	// appended only when first inserted into next (updates leave the ring
	// untouched), so the popped key is always resident and FIFO eviction
	// needs no per-entry bookkeeping.
	ring []int64
	head int
	size int

	last []int64 // per-bank previous activation rowKey, -1 before the first
}

func newSISB(cfg config.SISB, ctx Context) *sisbEngine {
	e := &sisbEngine{
		ctx:  ctx,
		cfg:  cfg,
		next: make(map[int64]int64, cfg.TableEntries),
		ring: make([]int64, cfg.TableEntries),
		last: make([]int64, ctx.Banks),
	}
	for i := range e.last {
		e.last[i] = -1
	}
	return e
}

// train records key as the successor of the bank's previous activation.
func (e *sisbEngine) train(prev, key int64) {
	if _, known := e.next[prev]; !known {
		if e.size == len(e.ring) {
			delete(e.next, e.ring[e.head])
			e.ring[e.head] = prev
			e.head = (e.head + 1) % len(e.ring)
		} else {
			e.ring[(e.head+e.size)%len(e.ring)] = prev
			e.size++
		}
	}
	e.next[prev] = key
}

func (e *sisbEngine) OnDemandServed(req Request, state dram.RowState, _ int64) []Fetch {
	if state == dram.RowHit {
		return nil // activations only, like the other history engines
	}
	key := rowKey(req.Bank, req.Row)
	if prev := e.last[req.Bank]; prev >= 0 && prev != key {
		e.train(prev, key)
	}
	e.last[req.Bank] = key

	var fetches []Fetch
	p := key
	for d := 0; d < e.cfg.Degree; d++ {
		nk, ok := e.next[p]
		if !ok || nk == key {
			break
		}
		bank, row := rowKeyBank(nk), rowKeyRow(nk)
		if bank < 0 || bank >= e.ctx.Banks || row < 0 ||
			(e.ctx.RowsPerBank > 0 && row >= e.ctx.RowsPerBank) {
			break
		}
		dup := false
		for _, f := range fetches {
			if f.Bank == bank && f.Row == row {
				dup = true
				break
			}
		}
		if dup {
			break // the chain closed a loop; stop
		}
		fetches = append(fetches, Fetch{Bank: bank, Row: row, CloseAfter: true})
		p = nk
	}
	return fetches
}

func (e *sisbEngine) OnBufferHit(Request) {}

func (e *sisbEngine) OnEviction(pfbuffer.Eviction) {}
