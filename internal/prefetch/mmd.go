package prefetch

import (
	"camps/internal/config"
	"camps/internal/dram"
	"camps/internal/pfbuffer"
)

// mmdEngine stands in for the memory-side prefetcher of Yedlapalli et al.
// ("Meeting Midway", PACT 2013) that the paper compares against: a
// history-confirmed row prefetcher that *dynamically adjusts the prefetch
// degree based on the usefulness of prefetched data* and manages its buffer
// with plain LRU.
//
// Once a row open in the row buffer shows TouchThreshold distinct line
// touches (evidence of spatial locality), the engine copies it to the
// prefetch buffer — leaving the row open, because unlike CAMPS this scheme
// is not conflict-aware — and, at degrees above one, also fetches the
// following rows of the bank. Usefulness feedback arrives through the
// EpochObserver hook: every EpochRequests demand requests the controller
// hands over the epoch's eviction outcomes, and the observed accuracy moves
// the degree up or down; a degree of zero disables prefetching until a
// probe epoch re-enables it.
type mmdEngine struct {
	ctx    Context
	cfg    config.MMD
	degree int
	touch  *RUT // per-bank distinct-line counting of the open row
}

func newMMD(cfg config.MMD, ctx Context) *mmdEngine {
	return &mmdEngine{
		ctx:    ctx,
		cfg:    cfg,
		degree: 1,
		touch:  NewRUT(ctx.Banks),
	}
}

// Degree returns the current prefetch degree (exported for tests and the
// ablation benches).
func (e *mmdEngine) Degree() int { return e.degree }

func (e *mmdEngine) OnDemandServed(req Request, state dram.RowState, _ int64) []Fetch {
	if state != dram.RowHit {
		// A new row occupies the row buffer; restart its touch history.
		e.touch.Displace(req.Bank)
	}
	util := e.touch.Track(req.Bank, req.Row, req.Line)
	if e.degree == 0 || util < e.cfg.TouchThreshold {
		return nil
	}
	touched := e.touch.Bitmap(req.Bank)
	e.touch.Clear(req.Bank)
	fetches := make([]Fetch, 0, e.degree)
	// The confirmed row itself: copied but left open (open-page policy;
	// MMD is not conflict-aware).
	fetches = append(fetches, Fetch{Bank: req.Bank, Row: req.Row, CloseAfter: false, Touched: touched})
	for d := 1; d < e.degree; d++ {
		row := req.Row + int64(d)
		if e.ctx.RowsPerBank > 0 && row >= e.ctx.RowsPerBank {
			break
		}
		fetches = append(fetches, Fetch{Bank: req.Bank, Row: row, CloseAfter: true})
	}
	return fetches
}

func (e *mmdEngine) OnBufferHit(Request) {}

func (e *mmdEngine) OnEviction(pfbuffer.Eviction) {}

// EpochRequests implements EpochObserver: the feedback epoch length.
func (e *mmdEngine) EpochRequests() int { return e.cfg.EpochRequests }

// OnEpoch applies the usefulness feedback. The controller's eviction
// classification reconstructs the engine's historical counters exactly:
// used = timely + late, evicted = used + unused (the fetch-queue-drop
// ConflictVictims never reached the buffer and never counted as evictions
// here).
func (e *mmdEngine) OnEpoch(st EpochStats) {
	used := st.UsefulTimely + st.UsefulLate
	evicted := used + st.EvictedUnused
	if evicted == 0 {
		if e.degree == 0 {
			e.degree = 1 // probe: re-enable to gather fresh evidence
		}
		return
	}
	acc := float64(used) / float64(evicted)
	switch {
	case acc >= e.cfg.HighAccuracy && e.degree < e.cfg.MaxDegree:
		e.degree++
	case acc < e.cfg.LowAccuracy && e.degree > 0:
		e.degree--
	}
}
