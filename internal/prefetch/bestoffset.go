package prefetch

import (
	"camps/internal/config"
	"camps/internal/dram"
	"camps/internal/pfbuffer"
)

// boOffsets is the candidate offset list (in rows), the classic
// Best-Offset set of products of small primes, truncated to row scale.
var boOffsets = [...]int64{1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25, 27, 30, 32, 36}

// boEngine adapts Michaud's Best-Offset prefetcher (HPCA 2016) to row
// granularity: a recent-request (RR) table remembers the rows recently
// activated; each activation of row X tests one candidate offset o by
// probing the RR for X-o — a hit means a fetch of X-o+o issued back then
// would have been timely. Offsets are tested round-robin; when one reaches
// ScoreMax or RoundMax full rounds complete, the best-scoring offset
// becomes the prefetch offset for the next phase (prefetch disabled when
// even the best score is BadScore or lower).
type boEngine struct {
	ctx Context
	cfg config.BestOffset

	rr     []int64 // direct-mapped recent activation keys, -1 empty
	scores [len(boOffsets)]int
	test   int   // next offset index to score
	round  int   // completed scoring rounds this phase
	best   int64 // active prefetch offset in rows; 0 = disabled
}

func newBestOffset(cfg config.BestOffset, ctx Context) *boEngine {
	e := &boEngine{ctx: ctx, cfg: cfg, rr: make([]int64, cfg.RREntries), best: 1}
	for i := range e.rr {
		e.rr[i] = -1
	}
	return e
}

// BestOffsetRows exposes the active offset for tests and ablations
// (0 = prefetch disabled).
func (e *boEngine) BestOffsetRows() int64 { return e.best }

func (e *boEngine) rrIndex(k int64) int {
	return int(mix64(uint64(k)) & uint64(len(e.rr)-1))
}

func (e *boEngine) OnDemandServed(req Request, state dram.RowState, _ int64) []Fetch {
	if state == dram.RowHit {
		return nil // activations only
	}
	// Learning: test one offset per trigger, round-robin.
	o := boOffsets[e.test]
	if base := req.Row - o; base >= 0 {
		bk := rowKey(req.Bank, base)
		if e.rr[e.rrIndex(bk)] == bk {
			e.scores[e.test]++
			if e.scores[e.test] >= e.cfg.ScoreMax {
				e.endPhase()
			}
		}
	}
	if e.test++; e.test == len(boOffsets) {
		e.test = 0
		if e.round++; e.round >= e.cfg.RoundMax {
			e.endPhase()
		}
	}
	key := rowKey(req.Bank, req.Row)
	e.rr[e.rrIndex(key)] = key

	if e.best == 0 {
		return nil
	}
	row := req.Row + e.best
	if e.ctx.RowsPerBank > 0 && row >= e.ctx.RowsPerBank {
		return nil
	}
	return []Fetch{{Bank: req.Bank, Row: row, CloseAfter: true}}
}

// endPhase elects the new offset and starts a fresh scoring phase.
func (e *boEngine) endPhase() {
	bestIdx, bestScore := 0, -1
	for i, s := range e.scores {
		if s > bestScore {
			bestIdx, bestScore = i, s
		}
	}
	if bestScore <= e.cfg.BadScore {
		e.best = 0 // prefetch off until evidence returns
	} else {
		e.best = boOffsets[bestIdx]
	}
	e.scores = [len(boOffsets)]int{}
	e.test, e.round = 0, 0
}

func (e *boEngine) OnBufferHit(Request) {}

func (e *boEngine) OnEviction(pfbuffer.Eviction) {}
