package prefetch

import (
	"testing"

	"camps/internal/config"
	"camps/internal/dram"
)

func TestGHBIgnoresRowHitsAndFirstActivation(t *testing.T) {
	cfg := config.Default()
	e := newGHB(cfg.GHB, testCtx(nil))
	if f := e.OnDemandServed(Request{Bank: 0, Row: 10}, dram.RowHit, dram.NoRow); f != nil {
		t.Fatalf("ghb fetched on a row hit: %+v", f)
	}
	if f := e.OnDemandServed(Request{Bank: 0, Row: 10}, dram.RowMiss, dram.NoRow); f != nil {
		t.Fatalf("ghb fetched on the first activation (no delta yet): %+v", f)
	}
}

func TestGHBColdDeltaSequentialFallback(t *testing.T) {
	cfg := config.Default()
	cfg.GHB.Degree = 2
	e := newGHB(cfg.GHB, testCtx(nil))
	e.OnDemandServed(Request{Bank: 0, Row: 10}, dram.RowMiss, dram.NoRow)
	f := e.OnDemandServed(Request{Bank: 0, Row: 20}, dram.RowMiss, dram.NoRow)
	if len(f) != 2 || f[0].Row != 21 || f[1].Row != 22 || !f[0].CloseAfter {
		t.Fatalf("cold-delta fallback = %+v, want close-after rows 21,22", f)
	}
}

func TestGHBFallbackRespectsRowBound(t *testing.T) {
	cfg := config.Default()
	cfg.GHB.Degree = 4
	ctx := testCtx(nil)
	ctx.RowsPerBank = 22
	e := newGHB(cfg.GHB, ctx)
	e.OnDemandServed(Request{Bank: 0, Row: 10}, dram.RowMiss, dram.NoRow)
	f := e.OnDemandServed(Request{Bank: 0, Row: 20}, dram.RowMiss, dram.NoRow)
	if len(f) != 1 || f[0].Row != 21 {
		t.Fatalf("fallback crossed RowsPerBank: %+v", f)
	}
}

func TestGHBWidthWalkPredictsHistorySuccessors(t *testing.T) {
	cfg := config.Default()
	cfg.GHB.Width = 2
	cfg.GHB.Degree = 1
	e := newGHB(cfg.GHB, testCtx(nil))
	// A constant delta-2 stream: 10, 12, 14, 16. By the fourth activation
	// the delta-2 chain has a live prior occurrence (12@seq0) whose history
	// successor (14@seq1) the width walk predicts.
	for _, r := range []int64{10, 12, 14} {
		e.OnDemandServed(Request{Bank: 0, Row: r}, dram.RowMiss, dram.NoRow)
	}
	f := e.OnDemandServed(Request{Bank: 0, Row: 16}, dram.RowMiss, dram.NoRow)
	if len(f) != 1 || f[0].Row != 14 || f[0].Bank != 0 {
		t.Fatalf("width walk = %+v, want history successor row 14", f)
	}
}

func TestSISBLearnsTemporalSuccessor(t *testing.T) {
	cfg := config.Default()
	e := newSISB(cfg.SISB, testCtx(nil))
	// Train the pair 5 -> 9 on bank 2, then reactivate 5: the learned
	// successor 9 is predicted. Irregular (non-stride) on purpose.
	e.OnDemandServed(Request{Bank: 2, Row: 5}, dram.RowMiss, dram.NoRow)
	if f := e.OnDemandServed(Request{Bank: 2, Row: 9}, dram.RowMiss, dram.NoRow); f != nil {
		t.Fatalf("prediction before any successor was learned: %+v", f)
	}
	f := e.OnDemandServed(Request{Bank: 2, Row: 5}, dram.RowConflict, 9)
	if len(f) != 1 || f[0].Bank != 2 || f[0].Row != 9 || !f[0].CloseAfter {
		t.Fatalf("learned successor not predicted: %+v", f)
	}
}

func TestSISBChainFollowsDegreeSteps(t *testing.T) {
	cfg := config.Default()
	cfg.SISB.Degree = 3
	e := newSISB(cfg.SISB, testCtx(nil))
	// Teach the chain 1 -> 4 -> 2 -> 8, then reactivate 1.
	for _, r := range []int64{1, 4, 2, 8} {
		e.OnDemandServed(Request{Bank: 0, Row: r}, dram.RowMiss, dram.NoRow)
	}
	f := e.OnDemandServed(Request{Bank: 0, Row: 1}, dram.RowMiss, dram.NoRow)
	if len(f) != 3 || f[0].Row != 4 || f[1].Row != 2 || f[2].Row != 8 {
		t.Fatalf("chain walk = %+v, want rows 4,2,8", f)
	}
}

func TestSISBTableEvictsFIFO(t *testing.T) {
	cfg := config.Default()
	cfg.SISB.TableEntries = 2
	e := newSISB(cfg.SISB, testCtx(nil))
	// The 1,2,3,4 stream trains 1->2, 2->3, 3->4 into a 2-entry table:
	// training 3->4 evicts the oldest pair (1->2), leaving {2->3, 3->4}.
	for _, r := range []int64{1, 2, 3, 4} {
		e.OnDemandServed(Request{Bank: 0, Row: r}, dram.RowMiss, dram.NoRow)
	}
	// Reactivating 3 first trains 4->3 (evicting 2->3, now the oldest),
	// then predicts from the surviving 3->4.
	f := e.OnDemandServed(Request{Bank: 0, Row: 3}, dram.RowMiss, dram.NoRow)
	if len(f) == 0 || f[0].Row != 4 {
		t.Fatalf("young pair lost: %+v", f)
	}
	// Activating 2 updates the known key 3 (3->2, no eviction) and finds
	// its own successor pair 2->3 evicted.
	if f := e.OnDemandServed(Request{Bank: 0, Row: 2}, dram.RowMiss, dram.NoRow); len(f) != 0 {
		t.Fatalf("evicted pair still predicted: %+v", f)
	}
}

func TestBestOffsetLearnsStride(t *testing.T) {
	cfg := config.Default()
	cfg.BestOffset.ScoreMax = 2
	e := newBestOffset(cfg.BestOffset, testCtx(nil))
	// A pure stride-3 activation stream: offset 3 is the first candidate
	// (in round-robin order) whose RR probes keep hitting, so it reaches
	// ScoreMax and is elected.
	for i := int64(0); i < 200 && e.BestOffsetRows() != 3; i++ {
		e.OnDemandServed(Request{Bank: 0, Row: 3 * i}, dram.RowMiss, dram.NoRow)
	}
	if e.BestOffsetRows() != 3 {
		t.Fatalf("offset after stride-3 stream = %d, want 3", e.BestOffsetRows())
	}
	f := e.OnDemandServed(Request{Bank: 0, Row: 600}, dram.RowMiss, dram.NoRow)
	if len(f) != 1 || f[0].Row != 603 || !f[0].CloseAfter {
		t.Fatalf("elected offset not applied: %+v", f)
	}
}

func TestBestOffsetDisablesOnBadScore(t *testing.T) {
	cfg := config.Default()
	cfg.BestOffset.RoundMax = 1
	e := newBestOffset(cfg.BestOffset, testCtx(nil))
	// Widely scattered activations give no offset any score; after one
	// round the engine turns itself off rather than pollute the buffer.
	for i := int64(0); i < int64(len(boOffsets)); i++ {
		e.OnDemandServed(Request{Bank: 0, Row: 100 * (i + 1) * (i + 1)}, dram.RowMiss, dram.NoRow)
	}
	if e.BestOffsetRows() != 0 {
		t.Fatalf("offset after scoreless round = %d, want 0 (disabled)", e.BestOffsetRows())
	}
	if f := e.OnDemandServed(Request{Bank: 0, Row: 7}, dram.RowMiss, dram.NoRow); len(f) != 0 {
		t.Fatalf("disabled engine fetched: %+v", f)
	}
}

func TestHybridWarmStartsOnFirstCandidate(t *testing.T) {
	cfg := config.Default()
	e := newHybrid(cfg, testCtx(fakeQueue{}))
	if got := e.Winner(); got != "MMD" {
		t.Fatalf("warm-start winner = %q, want the first configured candidate (MMD)", got)
	}
	if e.EpochRequests() != cfg.Hybrid.EpochRequests {
		t.Fatalf("EpochRequests = %d, want %d", e.EpochRequests(), cfg.Hybrid.EpochRequests)
	}
}

func TestHybridIssuesOnlyWinnersFetches(t *testing.T) {
	cfg := config.Default()
	cfg.Hybrid.Candidates = []string{"NONE", "BASE"}
	e := newHybrid(cfg, testCtx(nil))
	if got := e.Winner(); got != "NONE" {
		t.Fatalf("winner = %q, want NONE", got)
	}
	// BASE would fetch every demand, but NONE holds the buffer: nothing is
	// issued while BASE only shadows.
	if f := e.OnDemandServed(Request{Bank: 1, Row: 7}, dram.RowMiss, dram.NoRow); len(f) != 0 {
		t.Fatalf("non-winner's fetches issued: %+v", f)
	}
}

func TestHybridElectsCreditedCandidate(t *testing.T) {
	cfg := config.Default()
	cfg.Hybrid.Candidates = []string{"NONE", "BASE"}
	e := newHybrid(cfg, testCtx(nil))
	// Repeated demands for one row: BASE shadow-predicts the row each time
	// and the next demand credits it, so BASE's shadow accuracy dominates
	// NONE's empty score at the epoch boundary.
	for i := 0; i < 10; i++ {
		e.OnDemandServed(Request{Bank: 0, Row: 42}, dram.RowMiss, dram.NoRow)
	}
	e.OnEpoch(EpochStats{Demands: 10})
	if got := e.Winner(); got != "BASE" {
		t.Fatalf("winner after credited epoch = %q, want BASE", got)
	}
	f := e.OnDemandServed(Request{Bank: 0, Row: 42}, dram.RowMiss, dram.NoRow)
	if len(f) != 1 || f[0].Row != 42 {
		t.Fatalf("new winner's fetches not issued: %+v", f)
	}
}

func TestHybridDisablesWhenNoCandidateScores(t *testing.T) {
	cfg := config.Default()
	cfg.Hybrid.Candidates = []string{"NONE"}
	e := newHybrid(cfg, testCtx(nil))
	// NONE never predicts, so after an epoch no score is positive and the
	// hybrid degrades to issuing nothing (winner -1).
	e.OnEpoch(EpochStats{Demands: 5})
	if got := e.Winner(); got != "" {
		t.Fatalf("winner with no positive score = %q, want disabled", got)
	}
	if f := e.OnDemandServed(Request{Bank: 0, Row: 3}, dram.RowMiss, dram.NoRow); len(f) != 0 {
		t.Fatalf("disabled hybrid fetched: %+v", f)
	}
}

func TestHybridDefaultCandidatesExcludeMetaAndNone(t *testing.T) {
	cfg := config.Default()
	cfg.Hybrid.Candidates = nil
	e := newHybrid(cfg, testCtx(fakeQueue{}))
	for _, c := range e.cands {
		if c.name == "NONE" || c.name == "hybrid" {
			t.Fatalf("default candidate set includes %q", c.name)
		}
	}
	if len(e.cands) < 9 {
		t.Fatalf("default candidate set too small: %d", len(e.cands))
	}
}
