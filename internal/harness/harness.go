// Package harness drives the paper's evaluation: it runs the (workload mix
// × prefetching scheme) grid and reformats the measurements into the exact
// rows and series of every figure in the CAMPS paper's Section 5 (Figures
// 5 through 9). Cell execution is delegated to the experiment orchestrator
// (internal/exp): each simulation owns its own event engine, so cells run
// in parallel and share nothing, and campaigns gain cancellation,
// timeouts, retries, and checkpoint/resume for free.
package harness

import (
	"context"
	"fmt"
	"sort"
	"time"

	"camps"
	"camps/internal/exp"
	"camps/internal/stats"
	"camps/internal/workload"
)

// CellResult is one completed grid cell, as delivered to Progress; see
// exp.CellResult for the field semantics.
type CellResult = exp.CellResult

// Options configures a grid run.
type Options struct {
	// System is the hardware configuration (zero value: Table I).
	System camps.SystemConfig
	// Seed decorrelates the synthetic traces (default 1).
	Seed uint64
	// WarmupRefs / MeasureInstr scale the per-cell simulation (defaults
	// from camps.RunConfig).
	WarmupRefs   uint64
	MeasureInstr uint64
	// Mixes defaults to all twelve Table II mixes.
	Mixes []workload.Mix
	// Schemes defaults to all five schemes.
	Schemes []camps.Scheme
	// Parallelism bounds concurrently running cells (default NumCPU).
	Parallelism int
	// CellTimeout bounds one cell attempt's wall-clock time (0 = none).
	CellTimeout time.Duration
	// Retries re-runs transiently failing cells (default 0).
	Retries int
	// Checkpoint names a JSONL result store; with Resume set, cells
	// already present in it are not re-executed.
	Checkpoint string
	Resume     bool
	// Progress, when non-nil, receives every completed cell. Calls are
	// serialized.
	Progress func(CellResult)
}

func (o *Options) applyDefaults() {
	if len(o.Mixes) == 0 {
		o.Mixes = workload.Mixes()
	}
	if len(o.Schemes) == 0 {
		o.Schemes = camps.Schemes()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Grid holds the results of a full run, indexed by mix and scheme.
type Grid struct {
	mixes   []workload.Mix
	schemes []camps.Scheme
	cells   map[string]map[camps.Scheme]camps.Results
}

// RunContext executes the grid under ctx. Cancellation propagates into
// every in-flight simulation (which stops within one epoch of simulated
// time) and surfaces as an error wrapping ctx.Err().
func RunContext(ctx context.Context, opts Options) (*Grid, error) {
	opts.applyDefaults()
	g := &Grid{
		mixes:   opts.Mixes,
		schemes: opts.Schemes,
		cells:   make(map[string]map[camps.Scheme]camps.Results),
	}
	for _, m := range opts.Mixes {
		g.cells[m.ID] = make(map[camps.Scheme]camps.Results)
	}

	cells := exp.Grid(opts.Mixes, opts.Schemes, []uint64{opts.Seed})
	results, _, err := exp.Run(ctx, cells, exp.Options{
		System:       opts.System,
		WarmupRefs:   opts.WarmupRefs,
		MeasureInstr: opts.MeasureInstr,
		Parallelism:  opts.Parallelism,
		CellTimeout:  opts.CellTimeout,
		Retries:      opts.Retries,
		Checkpoint:   opts.Checkpoint,
		Resume:       opts.Resume,
		Progress:     opts.Progress,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	for _, r := range results {
		g.cells[r.Mix][r.Scheme] = r.Results
	}
	return g, nil
}

// Cell returns one cell's results.
func (g *Grid) Cell(mixID string, s camps.Scheme) (camps.Results, bool) {
	row, ok := g.cells[mixID]
	if !ok {
		return camps.Results{}, false
	}
	r, ok := row[s]
	return r, ok
}

// MixIDs returns the mixes in presentation order.
func (g *Grid) MixIDs() []string {
	ids := make([]string, 0, len(g.mixes))
	for _, m := range g.mixes {
		ids = append(ids, m.ID)
	}
	return ids
}

// Schemes returns the schemes in presentation order.
func (g *Grid) Schemes() []camps.Scheme { return g.schemes }

func (g *Grid) mustCell(mixID string, s camps.Scheme) camps.Results {
	r, ok := g.Cell(mixID, s)
	if !ok {
		panic(fmt.Sprintf("harness: missing cell %s/%v", mixID, s))
	}
	return r
}

// hasScheme reports whether the grid includes scheme s.
func (g *Grid) hasScheme(s camps.Scheme) bool {
	for _, have := range g.schemes {
		if have == s {
			return true
		}
	}
	return false
}

// schemesFrom filters wanted schemes to those present in the grid.
func (g *Grid) schemesFrom(wanted []camps.Scheme) []camps.Scheme {
	var out []camps.Scheme
	for _, s := range wanted {
		if g.hasScheme(s) {
			out = append(out, s)
		}
	}
	return out
}

// Figure5 reproduces "Normalized performance gains of CAMPS with different
// schemes": per-mix speedup of each scheme's geometric-mean IPC over BASE,
// plus the cross-mix average (geometric mean, as the paper aggregates).
func (g *Grid) Figure5() *stats.Table {
	schemes := g.schemesFrom(camps.Schemes())
	t := &stats.Table{
		Title:   "Figure 5: Normalized speedup over BASE (higher is better)",
		Columns: schemeNames(schemes),
	}
	for _, id := range g.MixIDs() {
		base := g.mustCell(id, camps.BASE).GeoMeanIPC
		row := make([]float64, len(schemes))
		for i, s := range schemes {
			row[i] = stats.Ratio(g.mustCell(id, s).GeoMeanIPC, base)
		}
		t.AddRow(id, row...)
	}
	appendAvg(t, true)
	return t
}

// Figure6 reproduces "Percentage Row Buffer Conflicts Over Different
// Schemes": row-buffer conflicts as a percentage of demand requests, for
// the open-page schemes. BASE is excluded exactly as in the paper (it
// precharges behind every copy, so it has no row-buffer conflicts).
func (g *Grid) Figure6() *stats.Table {
	schemes := g.schemesFrom([]camps.Scheme{camps.BASEHIT, camps.MMD, camps.CAMPS, camps.CAMPSMOD})
	t := &stats.Table{
		Title:   "Figure 6: Row-buffer conflict rate, % of demand requests (lower is better)",
		Columns: schemeNames(schemes),
	}
	for _, id := range g.MixIDs() {
		row := make([]float64, len(schemes))
		for i, s := range schemes {
			r := g.mustCell(id, s)
			demand := float64(r.VaultStats.BufferHits.Value() + r.VaultStats.BufferMisses.Value())
			row[i] = stats.Ratio(float64(r.RowConflicts), demand) * 100
		}
		t.AddRow(id, row...)
	}
	appendAvg(t, false)
	return t
}

// Figure7 reproduces "Prefetching Accuracy of Different Schemes": of all
// prefetches performed, the fraction whose data is actually referenced by
// the processor, in percent. Reported at row granularity (a prefetched row
// counts as useful once any of its lines is served from the buffer), which
// is the granularity the schemes prefetch at. EXPERIMENTS.md discusses the
// one divergence this metric causes (BASE-HIT's trigger guarantees a
// waiting consumer, so its row accuracy is trivially ~100%).
func (g *Grid) Figure7() *stats.Table {
	schemes := g.schemesFrom(camps.Schemes())
	t := &stats.Table{
		Title:   "Figure 7: Prefetching accuracy, % of prefetched rows referenced (higher is better)",
		Columns: schemeNames(schemes),
	}
	for _, id := range g.MixIDs() {
		row := make([]float64, len(schemes))
		for i, s := range schemes {
			row[i] = g.mustCell(id, s).PrefetchAccuracy * 100
		}
		t.AddRow(id, row...)
	}
	appendAvg(t, false)
	return t
}

// Figure8 reproduces "Reduction in Memory Access Latency": percentage AMAT
// reduction relative to BASE for the schemes the paper plots (MMD and
// CAMPS-MOD).
func (g *Grid) Figure8() *stats.Table {
	schemes := g.schemesFrom([]camps.Scheme{camps.MMD, camps.CAMPSMOD})
	t := &stats.Table{
		Title:   "Figure 8: Reduction in average memory access time vs BASE, % (higher is better)",
		Columns: schemeNames(schemes),
	}
	for _, id := range g.MixIDs() {
		base := g.mustCell(id, camps.BASE).AMATps
		row := make([]float64, len(schemes))
		for i, s := range schemes {
			row[i] = stats.Ratio(base-g.mustCell(id, s).AMATps, base) * 100
		}
		t.AddRow(id, row...)
	}
	appendAvg(t, false)
	return t
}

// Figure9 reproduces "Average Energy consumption of HMC": total HMC energy
// normalized to BASE for the schemes the paper plots.
func (g *Grid) Figure9() *stats.Table {
	schemes := g.schemesFrom([]camps.Scheme{camps.BASE, camps.MMD, camps.CAMPSMOD})
	t := &stats.Table{
		Title:   "Figure 9: HMC energy normalized to BASE (lower is better)",
		Columns: schemeNames(schemes),
	}
	for _, id := range g.MixIDs() {
		base := g.mustCell(id, camps.BASE).Energy.Total()
		row := make([]float64, len(schemes))
		for i, s := range schemes {
			row[i] = stats.Ratio(g.mustCell(id, s).Energy.Total(), base)
		}
		t.AddRow(id, row...)
	}
	appendAvg(t, false)
	return t
}

// MPKITable summarizes per-mix memory intensity (highest-MPKI core and
// mean), validating the HM/LM/MX classification of Table II.
func (g *Grid) MPKITable(s camps.Scheme) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("Workload memory intensity under %v (L3 MPKI)", s),
		Columns: []string{"meanMPKI", "maxMPKI"},
	}
	for _, id := range g.MixIDs() {
		r := g.mustCell(id, s)
		maxv := 0.0
		for _, v := range r.MPKI {
			if v > maxv {
				maxv = v
			}
		}
		t.AddRow(id, stats.Mean(r.MPKI), maxv)
	}
	return t
}

// Figures returns all five paper figures in order.
func (g *Grid) Figures() []*stats.Table {
	return []*stats.Table{g.Figure5(), g.Figure6(), g.Figure7(), g.Figure8(), g.Figure9()}
}

// appendAvg adds an AVG row: geometric mean per column when geo is set
// (speedups), arithmetic mean otherwise (percentages/ratios).
func appendAvg(t *stats.Table, geo bool) {
	n := t.Rows()
	if n == 0 {
		return
	}
	avg := make([]float64, len(t.Columns))
	for c := range t.Columns {
		if geo {
			avg[c] = t.ColumnGeoMean(c)
		} else {
			avg[c] = t.ColumnMean(c)
		}
	}
	t.AddRow("AVG", avg...)
}

func schemeNames(ss []camps.Scheme) []string {
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.String()
	}
	return names
}

// GroupAverages returns the average value of column col of table t within
// each mix family (HM, LM, MX), mirroring how the paper quotes per-class
// gains. Rows labelled AVG are skipped.
func GroupAverages(t *stats.Table, col int) map[string]float64 {
	sums := map[string][]float64{}
	for i := 0; i < t.Rows(); i++ {
		label := t.RowLabel(i)
		if label == "AVG" || len(label) < 2 {
			continue
		}
		grp := label[:2]
		sums[grp] = append(sums[grp], t.Value(i, col))
	}
	out := make(map[string]float64, len(sums))
	keys := make([]string, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out[k] = stats.Mean(sums[k])
	}
	return out
}
