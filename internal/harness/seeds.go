package harness

import (
	"context"
	"fmt"

	"camps/internal/stats"
)

// RunSeeds executes the grid once per seed under ctx, for statistical
// confidence in the synthetic-workload setting (each seed draws
// independent traces).
func RunSeeds(ctx context.Context, opts Options, seeds []uint64) ([]*Grid, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("harness: RunSeeds needs at least one seed")
	}
	grids := make([]*Grid, 0, len(seeds))
	for _, seed := range seeds {
		o := opts
		o.Seed = seed
		g, err := RunContext(ctx, o)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		grids = append(grids, g)
	}
	return grids, nil
}

// AverageTables combines same-shaped tables (e.g. the same figure from
// several seeds) into one cell-wise arithmetic mean table.
func AverageTables(tables []*stats.Table) (*stats.Table, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("harness: no tables to average")
	}
	first := tables[0]
	for _, t := range tables[1:] {
		if t.Rows() != first.Rows() || len(t.Columns) != len(first.Columns) {
			return nil, fmt.Errorf("harness: table shapes differ (%dx%d vs %dx%d)",
				t.Rows(), len(t.Columns), first.Rows(), len(first.Columns))
		}
		for r := 0; r < t.Rows(); r++ {
			if t.RowLabel(r) != first.RowLabel(r) {
				return nil, fmt.Errorf("harness: row %d label %q vs %q",
					r, t.RowLabel(r), first.RowLabel(r))
			}
		}
	}
	out := &stats.Table{
		Title:   first.Title + fmt.Sprintf(" (mean of %d seeds)", len(tables)),
		Columns: first.Columns,
	}
	for r := 0; r < first.Rows(); r++ {
		row := make([]float64, len(first.Columns))
		for c := range first.Columns {
			sum := 0.0
			for _, t := range tables {
				sum += t.Value(r, c)
			}
			row[c] = sum / float64(len(tables))
		}
		out.AddRow(first.RowLabel(r), row...)
	}
	return out, nil
}

// SpreadTables returns the cell-wise max-min spread of same-shaped tables,
// a cheap dispersion measure across seeds.
func SpreadTables(tables []*stats.Table) (*stats.Table, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("harness: no tables to spread")
	}
	first := tables[0]
	out := &stats.Table{
		Title:   first.Title + fmt.Sprintf(" (max-min over %d seeds)", len(tables)),
		Columns: first.Columns,
	}
	for r := 0; r < first.Rows(); r++ {
		row := make([]float64, len(first.Columns))
		for c := range first.Columns {
			lo, hi := tables[0].Value(r, c), tables[0].Value(r, c)
			for _, t := range tables[1:] {
				v := t.Value(r, c)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			row[c] = hi - lo
		}
		out.AddRow(first.RowLabel(r), row...)
	}
	return out, nil
}

// FigureAcrossSeeds runs fig (5..9) on each grid and returns the mean
// table.
func FigureAcrossSeeds(grids []*Grid, fig int) (*stats.Table, error) {
	var tables []*stats.Table
	for _, g := range grids {
		var t *stats.Table
		switch fig {
		case 5:
			t = g.Figure5()
		case 6:
			t = g.Figure6()
		case 7:
			t = g.Figure7()
		case 8:
			t = g.Figure8()
		case 9:
			t = g.Figure9()
		default:
			return nil, fmt.Errorf("harness: no figure %d", fig)
		}
		tables = append(tables, t)
	}
	return AverageTables(tables)
}
