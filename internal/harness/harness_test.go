package harness

import (
	"context"
	"errors"
	"strings"
	"testing"

	"camps"
	"camps/internal/stats"
	"camps/internal/workload"
)

// smallGrid runs a reduced grid (2 mixes, all schemes) at test scale.
func smallGrid(t *testing.T) *Grid {
	t.Helper()
	hm1, _ := workload.MixByID("HM1")
	lm1, _ := workload.MixByID("LM1")
	g, err := RunContext(context.Background(), Options{
		Mixes:        []workload.Mix{hm1, lm1},
		WarmupRefs:   5_000,
		MeasureInstr: 50_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGridRunAndAccessors(t *testing.T) {
	g := smallGrid(t)
	if ids := g.MixIDs(); len(ids) != 2 || ids[0] != "HM1" || ids[1] != "LM1" {
		t.Fatalf("mix ids = %v", ids)
	}
	if len(g.Schemes()) != 5 {
		t.Fatalf("schemes = %v", g.Schemes())
	}
	for _, id := range g.MixIDs() {
		for _, s := range g.Schemes() {
			r, ok := g.Cell(id, s)
			if !ok {
				t.Fatalf("missing cell %s/%v", id, s)
			}
			if r.GeoMeanIPC <= 0 {
				t.Fatalf("cell %s/%v has no IPC", id, s)
			}
		}
	}
	if _, ok := g.Cell("ZZ", camps.BASE); ok {
		t.Fatal("bogus mix returned a cell")
	}
}

func TestFigureTablesShape(t *testing.T) {
	g := smallGrid(t)
	figs := g.Figures()
	if len(figs) != 5 {
		t.Fatalf("Figures() returned %d tables", len(figs))
	}
	wantCols := []int{5, 4, 5, 2, 3}
	for i, f := range figs {
		if len(f.Columns) != wantCols[i] {
			t.Errorf("figure %d has %d columns, want %d", i+5, len(f.Columns), wantCols[i])
		}
		// 2 mixes + AVG row.
		if f.Rows() != 3 {
			t.Errorf("figure %d has %d rows, want 3", i+5, f.Rows())
		}
		if f.RowLabel(f.Rows()-1) != "AVG" {
			t.Errorf("figure %d last row = %q, want AVG", i+5, f.RowLabel(f.Rows()-1))
		}
		if !strings.Contains(f.Title, "Figure") {
			t.Errorf("figure %d missing title", i+5)
		}
	}
}

func TestFigure5BaseColumnIsUnity(t *testing.T) {
	g := smallGrid(t)
	f5 := g.Figure5()
	for i := 0; i < f5.Rows()-1; i++ { // skip AVG
		if v := f5.Value(i, 0); v != 1.0 {
			t.Fatalf("BASE column row %d = %g, want 1.0", i, v)
		}
	}
}

func TestFigure9BaseColumnIsUnity(t *testing.T) {
	g := smallGrid(t)
	f9 := g.Figure9()
	for i := 0; i < f9.Rows()-1; i++ {
		if v := f9.Value(i, 0); v != 1.0 {
			t.Fatalf("BASE energy row %d = %g, want 1.0", i, v)
		}
	}
}

func TestFigure6ExcludesBase(t *testing.T) {
	g := smallGrid(t)
	for _, col := range g.Figure6().Columns {
		if col == "BASE" {
			t.Fatal("Figure 6 must exclude BASE, as in the paper")
		}
	}
}

func TestHeadlineOrderingAtTestScale(t *testing.T) {
	// Run the high-signal mix at a budget where the paper's ordering is
	// stable: CAMPS-MOD above BASE-HIT and MMD on speedup.
	hm1, _ := workload.MixByID("HM1")
	g, err := RunContext(context.Background(), Options{
		Mixes:        []workload.Mix{hm1},
		WarmupRefs:   5_000,
		MeasureInstr: 150_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	f5 := g.Figure5()
	avg := f5.Rows() - 1
	baseHit, mmd, mod := f5.Value(avg, 1), f5.Value(avg, 2), f5.Value(avg, 4)
	if mod <= baseHit || mod <= mmd {
		t.Fatalf("CAMPS-MOD avg speedup %g not above BASE-HIT %g and MMD %g", mod, baseHit, mmd)
	}
	// Figure 7 AVG: CAMPS accuracy above BASE accuracy.
	f7 := g.Figure7()
	if f7.Value(avg, 3) <= f7.Value(avg, 0) {
		t.Fatalf("CAMPS accuracy %g not above BASE %g", f7.Value(avg, 3), f7.Value(avg, 0))
	}
	// Figure 9 AVG: CAMPS-MOD uses less energy than BASE.
	f9 := g.Figure9()
	if f9.Value(avg, 2) >= 1.0 {
		t.Fatalf("CAMPS-MOD normalized energy %g not below BASE", f9.Value(avg, 2))
	}
}

func TestGridDeterministicAcrossParallelism(t *testing.T) {
	mx1, _ := workload.MixByID("MX1")
	run := func(par int) camps.Results {
		g, err := RunContext(context.Background(), Options{
			Mixes:        []workload.Mix{mx1},
			Schemes:      []camps.Scheme{camps.CAMPS},
			WarmupRefs:   2_000,
			MeasureInstr: 30_000,
			Parallelism:  par,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, _ := g.Cell("MX1", camps.CAMPS)
		return r
	}
	a, b := run(1), run(4)
	if a.GeoMeanIPC != b.GeoMeanIPC || a.RowConflicts != b.RowConflicts {
		t.Fatal("grid results depend on parallelism")
	}
}

func TestSchemeSubsetGrid(t *testing.T) {
	lm4, _ := workload.MixByID("LM4")
	g, err := RunContext(context.Background(), Options{
		Mixes:        []workload.Mix{lm4},
		Schemes:      []camps.Scheme{camps.BASE, camps.CAMPSMOD},
		WarmupRefs:   2_000,
		MeasureInstr: 30_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	f5 := g.Figure5()
	if len(f5.Columns) != 2 {
		t.Fatalf("subset grid figure 5 columns = %v", f5.Columns)
	}
	// Figure 8 needs MMD/CAMPS-MOD; with only CAMPS-MOD present it still
	// renders a 1-column table.
	f8 := g.Figure8()
	if len(f8.Columns) != 1 || f8.Columns[0] != "CAMPS-MOD" {
		t.Fatalf("subset grid figure 8 columns = %v", f8.Columns)
	}
}

func TestGroupAverages(t *testing.T) {
	tb := &stats.Table{Columns: []string{"x"}}
	tb.AddRow("HM1", 2)
	tb.AddRow("HM2", 4)
	tb.AddRow("LM1", 10)
	tb.AddRow("AVG", 99)
	got := GroupAverages(tb, 0)
	if got["HM"] != 3 || got["LM"] != 10 {
		t.Fatalf("group averages = %v", got)
	}
	if _, ok := got["AV"]; ok {
		t.Fatal("AVG row leaked into group averages")
	}
}

func TestMPKITable(t *testing.T) {
	g := smallGrid(t)
	tb := g.MPKITable(camps.CAMPS)
	if tb.Rows() != 2 {
		t.Fatalf("MPKI table rows = %d", tb.Rows())
	}
	// HM1's mean MPKI exceeds LM1's.
	if tb.Value(0, 0) <= tb.Value(1, 0) {
		t.Fatalf("HM1 MPKI (%g) not above LM1 (%g)", tb.Value(0, 0), tb.Value(1, 0))
	}
}

func TestRunSeedsAndAverages(t *testing.T) {
	lm1, _ := workload.MixByID("LM1")
	opts := Options{
		Mixes:        []workload.Mix{lm1},
		Schemes:      []camps.Scheme{camps.BASE, camps.CAMPSMOD},
		WarmupRefs:   2_000,
		MeasureInstr: 25_000,
	}
	grids, err := RunSeeds(context.Background(), opts, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(grids) != 2 {
		t.Fatalf("grids = %d", len(grids))
	}
	mean, err := FigureAcrossSeeds(grids, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mean.Rows() != 2 || len(mean.Columns) != 2 {
		t.Fatalf("mean table shape %dx%d", mean.Rows(), len(mean.Columns))
	}
	// The BASE column is 1.0 in every seed, so its mean is exactly 1.0.
	if mean.Value(0, 0) != 1.0 {
		t.Fatalf("mean BASE = %g", mean.Value(0, 0))
	}
	spread, err := SpreadTables([]*stats.Table{grids[0].Figure5(), grids[1].Figure5()})
	if err != nil {
		t.Fatal(err)
	}
	if spread.Value(0, 0) != 0 {
		t.Fatalf("BASE spread = %g, want 0", spread.Value(0, 0))
	}
	if _, err := RunSeeds(context.Background(), opts, nil); err == nil {
		t.Fatal("RunSeeds accepted no seeds")
	}
	if _, err := FigureAcrossSeeds(grids, 3); err == nil {
		t.Fatal("accepted bogus figure number")
	}
}

func TestAverageTablesValidation(t *testing.T) {
	a := &stats.Table{Columns: []string{"X"}}
	a.AddRow("r", 1)
	b := &stats.Table{Columns: []string{"X", "Y"}}
	b.AddRow("r", 1, 2)
	if _, err := AverageTables([]*stats.Table{a, b}); err == nil {
		t.Fatal("accepted mismatched shapes")
	}
	c := &stats.Table{Columns: []string{"X"}}
	c.AddRow("other", 1)
	if _, err := AverageTables([]*stats.Table{a, c}); err == nil {
		t.Fatal("accepted mismatched labels")
	}
	if _, err := AverageTables(nil); err == nil {
		t.Fatal("accepted empty input")
	}
	m, err := AverageTables([]*stats.Table{a, a})
	if err != nil || m.Value(0, 0) != 1 {
		t.Fatalf("self-average wrong: %v %v", m, err)
	}
}

func TestProgressReceivesCellResults(t *testing.T) {
	hm1, _ := workload.MixByID("HM1")
	var cells []CellResult
	_, err := RunContext(context.Background(), Options{
		Mixes:        []workload.Mix{hm1},
		Schemes:      []camps.Scheme{camps.BASE, camps.CAMPSMOD},
		WarmupRefs:   2_000,
		MeasureInstr: 25_000,
		Progress:     func(cr CellResult) { cells = append(cells, cr) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("progress fired %d times, want 2", len(cells))
	}
	for _, cr := range cells {
		if cr.Mix != "HM1" || cr.Seed != 1 || cr.Attempt != 1 || cr.Resumed {
			t.Fatalf("cell result = %+v", cr)
		}
		if cr.Duration <= 0 {
			t.Fatalf("cell result has no duration: %+v", cr)
		}
		if cr.Results.GeoMeanIPC <= 0 {
			t.Fatalf("cell result carries no measurements: %+v", cr)
		}
	}
}

func TestRunContextCancelledGrid(t *testing.T) {
	hm1, _ := workload.MixByID("HM1")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Options{
		Mixes:        []workload.Mix{hm1},
		WarmupRefs:   2_000,
		MeasureInstr: 25_000,
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
