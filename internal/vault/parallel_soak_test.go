package vault_test

import (
	"context"
	"testing"

	"camps"
)

// TestParallelSoak exercises the vault controllers under the sharded
// parallel engine at the highest worker count, with every fault class
// active, for long enough that window barriers, mailbox recycling, and
// the halt winddown all cycle thousands of times. It lives in the vault
// package's (external) test suite because the vault controller is the
// unit of sharding: `make race` runs this file uncached under -race, so
// any unsynchronized access between a vault shard and the coordinator —
// in the controller, its observability hooks, or its fault site — is
// caught here rather than in production runs. Correctness of the results
// is asserted by the differential suite at the repo root; this test only
// demands that the run completes and did real work.
func TestParallelSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short mode")
	}
	spec, err := camps.ParseFaultSpec(
		"linkcrc=1e-3,stall=1e-4,stallfor=50ns,poison=2e-3,bankfail=100us,bankfor=2us,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	rc := camps.RunConfig{
		Scheme:       camps.CAMPSMOD,
		WarmupRefs:   5_000,
		MeasureInstr: 60_000,
		Seed:         7,
		Workers:      8,
		Faults:       spec,
	}
	rc.Mix, err = camps.MixByID("HM1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := camps.RunContext(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsFired == 0 || res.Instructions == 0 {
		t.Fatalf("soak run did no work: %d events, %d instructions",
			res.EventsFired, res.Instructions)
	}
}
