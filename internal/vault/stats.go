package vault

import (
	"camps/internal/dram"
	"camps/internal/stats"
)

// Stats aggregates everything a vault controller measures. Figures 6 and 7
// of the paper are computed from these counters; the AMAT figure (8) uses
// the service-latency accumulator combined with link latencies at the HMC
// level.
type Stats struct {
	// Demand traffic.
	DemandReads  stats.Counter
	DemandWrites stats.Counter

	// Prefetch buffer outcomes for demand requests (checked both at
	// arrival and again at service time).
	BufferHits   stats.Counter
	BufferMisses stats.Counter

	// Row-buffer outcomes for demand requests that reached a bank.
	RowHits      stats.Counter
	RowMisses    stats.Counter
	RowConflicts stats.Counter

	// Prefetch activity.
	FetchesIssued    stats.Counter // row fetches executed on a bank
	FetchesDropped   stats.Counter // directives discarded (duplicate/overflow)
	FetchesRedundant stats.Counter // directives whose row was already buffered
	RowWritebacks    stats.Counter // dirty rows stored back to banks

	// Background activity.
	Refreshes   stats.Counter
	WriteBursts stats.Counter // line writes drained to banks

	// Occupancy high-water marks.
	MaxReadQueue  int
	MaxWriteQueue int
	MaxFetchQueue int

	// Service latency of demand requests measured inside the vault
	// (arrival at the controller to data ready), picoseconds.
	ServiceLatency stats.LatencyAccum

	// Aggregated DRAM operation counts across the vault's banks, filled in
	// by Controller.CollectOps; input to the energy model.
	BankOps dram.Ops
}

// BankAccesses returns the number of demand requests serviced by banks.
func (s *Stats) BankAccesses() uint64 {
	return s.RowHits.Value() + s.RowMisses.Value() + s.RowConflicts.Value()
}

// ConflictRate returns row-buffer conflicts as a fraction of demand bank
// accesses (Figure 6's metric).
func (s *Stats) ConflictRate() float64 {
	total := s.BankAccesses()
	if total == 0 {
		return 0
	}
	return float64(s.RowConflicts.Value()) / float64(total)
}

// Merge accumulates another vault's stats into this one (used to aggregate
// across the cube's 32 vaults).
func (s *Stats) Merge(o *Stats) {
	s.DemandReads.Add(o.DemandReads.Value())
	s.DemandWrites.Add(o.DemandWrites.Value())
	s.BufferHits.Add(o.BufferHits.Value())
	s.BufferMisses.Add(o.BufferMisses.Value())
	s.RowHits.Add(o.RowHits.Value())
	s.RowMisses.Add(o.RowMisses.Value())
	s.RowConflicts.Add(o.RowConflicts.Value())
	s.FetchesIssued.Add(o.FetchesIssued.Value())
	s.FetchesDropped.Add(o.FetchesDropped.Value())
	s.FetchesRedundant.Add(o.FetchesRedundant.Value())
	s.RowWritebacks.Add(o.RowWritebacks.Value())
	s.Refreshes.Add(o.Refreshes.Value())
	s.WriteBursts.Add(o.WriteBursts.Value())
	if o.MaxReadQueue > s.MaxReadQueue {
		s.MaxReadQueue = o.MaxReadQueue
	}
	if o.MaxWriteQueue > s.MaxWriteQueue {
		s.MaxWriteQueue = o.MaxWriteQueue
	}
	if o.MaxFetchQueue > s.MaxFetchQueue {
		s.MaxFetchQueue = o.MaxFetchQueue
	}
	s.ServiceLatency.Merge(o.ServiceLatency)
	s.BankOps.Add(o.BankOps)
}
