// Package vault implements the HMC vault controller: per-vault read/write
// queues, FR-FCFS command scheduling over 16 banks with an open-page
// policy, refresh, and — the paper's subject — the memory-side prefetch
// engine and prefetch buffer that live in the vault's logic base.
//
// The controller treats each demand access or prefetch as an atomic job on
// its target bank (the bank enforces command-level timing legality); banks
// run concurrently within a vault, which is where HMC's bank-level
// parallelism comes from. The shared TSV data path is unmodeled by default,
// matching the paper's "huge internal bandwidth" premise; setting
// HMC.TSVGBps bounds it, for the ablation that tests that premise.
package vault

import (
	"fmt"

	"camps/internal/config"
	"camps/internal/dram"
	"camps/internal/fault"
	"camps/internal/obs"
	"camps/internal/pfbuffer"
	"camps/internal/prefetch"
	"camps/internal/sim"
)

// Request is one demand access delivered to a vault.
type Request struct {
	Bank  int
	Row   int64
	Line  int
	Write bool
	// Done is invoked exactly once with the time the request's data is
	// ready at the vault (writes complete on acceptance). May be nil.
	Done func(at sim.Time)
	// Span is the request's attribution span (zero when attribution is
	// off or for writes). The controller charges queue, refresh-stall,
	// blackout, bank-conflict and service segments to it; the cube
	// retires it when the response reaches the processor side.
	Span obs.SpanRef
}

type pending struct {
	req     Request
	arrived sim.Time
}

// Controller is one vault's controller.
type Controller struct {
	eng    *sim.Engine
	cfg    config.Config
	id     int
	scheme prefetch.Scheme
	banks  []*dram.Bank
	busy   []sim.Time // per-bank: time the current job releases the bank
	buffer *pfbuffer.Buffer
	pf     prefetch.Engine

	// Epoch feedback for engines implementing prefetch.EpochObserver (nil
	// otherwise; every field below then stays untouched). The controller
	// counts demand requests and classifies buffer evictions itself —
	// independent of the attribution ledger, which is optional — and hands
	// the engine a fresh EpochStats every epochPeriod demands, immediately
	// before the triggering request's OnDemandServed.
	epochObs    prefetch.EpochObserver
	epochPeriod int
	epochReq    int
	epochAcc    prefetch.EpochStats

	// Request queues hold value-type nodes: enqueue/dequeue move small
	// structs inside preallocated backing arrays instead of allocating a
	// node per request.
	readQ  []pending
	writeQ []pending
	fetchQ []prefetch.Fetch
	storeQ []pfbuffer.RowID

	// Hot-path callbacks and scratch space, allocated once per controller.
	scheduleFn   func()
	retryFn      func()
	fetchScratch []prefetch.Fetch

	// Per-bank queued-work counts, maintained on every enqueue/dequeue.
	// schedule() runs after every bank event; the counts let startJob skip
	// the O(queue-length) scans for the (common) banks with nothing queued.
	readCount  []int
	writeCount []int
	storeCount []int
	fetchCount []int

	timing        dram.Timing
	nextRefresh   []sim.Time
	refreshWakeAt sim.Time // time of the vault's single armed refresh wake
	draining      bool     // write-drain mode latch

	pfHitLat  sim.Time
	lines     int
	maxFetchQ int

	retryArmed bool
	retryAt    sim.Time

	// Activation-rate limits shared by the vault's banks: tRRD between
	// consecutive ACTs and tFAW over any four (power-delivery limits).
	lastAct sim.Time
	actHist [4]sim.Time
	actIdx  int

	// Shared TSV data path for whole-row transfers; free when tsvFree has
	// passed. tsvRowTime == 0 means the path is unmodeled (the paper's
	// huge-internal-bandwidth premise).
	tsvFree    sim.Time
	tsvRowTime sim.Time

	stats Stats

	// Observability (nil unless Instrument was called): tr receives
	// structured events, obsLat mirrors ServiceLatency into the registry's
	// shared histogram. Emit on a nil tracer is a no-op, so the hot paths
	// carry no conditionals.
	tr     *obs.Tracer
	obsLat *obs.Histogram

	// Fault injection (nil unless SetFaults was called with an injector):
	// prefetch-buffer fill poisoning and per-bank blackout windows. All
	// site methods are nil-safe.
	faults *fault.VaultSite

	// Attribution (nil unless AttachAttribution was called): spans
	// receive per-cause latency segments, ledger the final classification
	// of every prefetch. The last refresh / blackout window per bank lets
	// queue time that overlapped them be charged to the right cause.
	spans       *obs.SpanSet
	ledger      *obs.PrefetchLedger
	lastRefNear []window // most recent refresh window per bank
	lastBlkNear []window // most recent blackout window per bank
}

// window is one [start, end) interval on a bank's timeline.
type window struct{ start, end sim.Time }

// Event-order tags (sim.Engine.WithTag). Every event stream rooted in a
// vault carries one of two tags derived from the vault id: requests
// entering the vault (and everything they cause — bank operations,
// completion trampolines, the response path) carry TagSubmit, while the
// vault's self-driven stream (the refresh daemon and what it causes)
// carries TagInternal. The tags make same-instant scheduling collisions
// between different vaults — routine, since vaults are deliberately
// symmetric — order by vault rather than by an engine-local sequence
// counter, which is what lets a sharded run reproduce the serial event
// order exactly (see internal/sim/parallel.go). Tag 0 is everything
// outside the vaults.
func TagSubmit(id int) int32   { return int32(2*id + 1) }
func TagInternal(id int) int32 { return int32(2*id + 2) }

// New returns a vault controller for vault id using the given prefetch
// scheme. All controllers of a cube share one simulation engine.
func New(eng *sim.Engine, cfg config.Config, scheme prefetch.Scheme, id int) *Controller {
	timing := dram.NewTiming(cfg.HMC.Timing, cfg.DRAMClock())
	nbanks := cfg.HMC.Banks()
	c := &Controller{
		eng:         eng,
		cfg:         cfg,
		id:          id,
		scheme:      scheme,
		banks:       make([]*dram.Bank, nbanks),
		busy:        make([]sim.Time, nbanks),
		buffer:      pfbuffer.New(cfg.PFBuffer.Entries(), cfg.LinesPerRow(), prefetch.Describe(scheme).Policy),
		pfHitLat:    cfg.CPUClock().Cycles(cfg.PFBuffer.HitLatency),
		lines:       cfg.LinesPerRow(),
		maxFetchQ:   4 * nbanks,
		timing:      timing,
		nextRefresh: make([]sim.Time, nbanks),
		readCount:   make([]int, nbanks),
		writeCount:  make([]int, nbanks),
		storeCount:  make([]int, nbanks),
		fetchCount:  make([]int, nbanks),
	}
	c.scheduleFn = c.schedule
	c.retryFn = func() {
		c.retryArmed = false
		c.schedule()
	}
	if cfg.HMC.TSVGBps > 0 {
		c.tsvRowTime = sim.Time(int64(cfg.HMC.RowBytes) * 1_000_000_000_000 / (cfg.HMC.TSVGBps * 1_000_000_000))
	}
	// Activation-history sentinels in the distant past so tRRD/tFAW never
	// constrain the first activations.
	past := -(timing.FAW + timing.RRD + 1)
	c.lastAct = past
	for i := range c.actHist {
		c.actHist[i] = past
	}
	for i := range c.banks {
		c.banks[i] = dram.NewBank(timing)
		// Stagger per-bank refresh across the tREFI window.
		c.nextRefresh[i] = timing.REFI * sim.Time(i+1) / sim.Time(nbanks)
	}
	// One daemon wake per vault covers the earliest refresh deadline
	// (daemon: refresh alone must not keep the simulation running);
	// schedule() re-arms it as deadlines advance. Bank 0 holds the minimum
	// of the staggered initial deadlines.
	c.refreshWakeAt = c.nextRefresh[0]
	eng.WithTag(TagInternal(id), func() {
		c.eng.AtDaemon(c.refreshWakeAt, c.scheduleFn)
	})
	c.pf = prefetch.New(scheme, cfg, prefetch.Context{
		Banks:       nbanks,
		LinesPerRow: c.lines,
		RowsPerBank: int64(cfg.HMC.RowsPerBank),
		Queue:       (*queueView)(c),
	})
	if eo, ok := c.pf.(prefetch.EpochObserver); ok {
		c.epochObs = eo
		c.epochPeriod = eo.EpochRequests()
	}
	return c
}

// queueView adapts the controller's read queue to prefetch.QueueView.
type queueView Controller

// PendingReadsForRow counts queued demand reads for (bank,row).
func (q *queueView) PendingReadsForRow(bank int, row int64) int {
	n := 0
	for i := range q.readQ {
		if q.readQ[i].req.Bank == bank && q.readQ[i].req.Row == row {
			n++
		}
	}
	return n
}

// Instrument connects the vault to the observability layer: its counters
// (and the prefetch buffer's) register with reg under the vault.* and
// pfbuffer.* namespaces — additively across vaults, so a full cube's
// snapshot is the aggregate — and structured events flow to tr. Either
// argument may be nil. Call before the simulation starts.
func (c *Controller) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	c.tr = tr
	if reg == nil {
		return
	}
	s := &c.stats
	reg.CounterFunc("vault.demand_reads", s.DemandReads.Value)
	reg.CounterFunc("vault.demand_writes", s.DemandWrites.Value)
	reg.CounterFunc("vault.buffer_hits", s.BufferHits.Value)
	reg.CounterFunc("vault.buffer_misses", s.BufferMisses.Value)
	reg.CounterFunc("vault.row_hits", s.RowHits.Value)
	reg.CounterFunc("vault.row_misses", s.RowMisses.Value)
	reg.CounterFunc("vault.row_conflicts", s.RowConflicts.Value)
	reg.CounterFunc("vault.fetches_issued", s.FetchesIssued.Value)
	reg.CounterFunc("vault.fetches_dropped", s.FetchesDropped.Value)
	reg.CounterFunc("vault.fetches_redundant", s.FetchesRedundant.Value)
	reg.CounterFunc("vault.row_writebacks", s.RowWritebacks.Value)
	reg.CounterFunc("vault.refreshes", s.Refreshes.Value)
	reg.CounterFunc("vault.write_bursts", s.WriteBursts.Value)
	reg.GaugeFunc("vault.read_queue", func() float64 { return float64(len(c.readQ)) })
	reg.GaugeFunc("vault.write_queue", func() float64 { return float64(len(c.writeQ)) })
	reg.GaugeFunc("vault.fetch_queue", func() float64 { return float64(len(c.fetchQ)) })
	// Own instance rather than the shared per-name histogram: under the
	// parallel engine each vault observes from its own shard, so the
	// instances must not share memory. Snapshots merge all instances of
	// the name, so the reported distribution is unchanged.
	c.obsLat = reg.OwnHistogram("vault.service_latency_ps")
	c.buffer.Instrument(reg)
}

// SetTracer redirects the controller's structured-event emissions.
// The parallel runner points each vault at its shard's private ring;
// the rings merge canonically when the run ends (obs.MergeShardTracers).
func (c *Controller) SetTracer(tr *obs.Tracer) { c.tr = tr }

// emit publishes one trace event stamped with this vault's id.
func (c *Controller) emit(t obs.EventType, at sim.Time, bank int, row, arg int64) {
	c.tr.Emit(obs.Event{At: int64(at), Type: t, Vault: int32(c.id), Bank: int32(bank), Row: row, Arg: arg})
}

// SetFaults attaches this vault's fault-injection site (nil detaches).
// Call before the simulation starts.
func (c *Controller) SetFaults(site *fault.VaultSite) { c.faults = site }

/// AttachAttribution connects the vault to the attribution layer: demand
// spans accrue cause segments here, and every prefetch's fate is
// classified into the ledger (the buffer records eviction outcomes; the
// controller records queue-overflow and poison casualties directly).
// Either argument may be nil. Call before the simulation starts.
func (c *Controller) AttachAttribution(spans *obs.SpanSet, ledger *obs.PrefetchLedger) {
	c.spans = spans
	c.ledger = ledger
	if spans != nil && c.lastRefNear == nil {
		c.lastRefNear = make([]window, len(c.banks))
		c.lastBlkNear = make([]window, len(c.banks))
	}
	c.buffer.SetLedger(ledger, c.id)
}

// overlapPs returns the length of the intersection of [a0,a1) and w.
func overlapPs(a0, a1 sim.Time, w window) sim.Time {
	lo, hi := maxTime(a0, w.start), minTime(a1, w.end)
	if hi > lo {
		return hi - lo
	}
	return 0
}

// chargeWait attributes a read's residence in the queue ([arrived, now))
// across blackout, refresh and plain-queue causes. Blackout and refresh
// windows never overlap on one bank (both occupy it exclusively), so the
// two overlaps are disjoint; clamping keeps the total exact regardless.
func (c *Controller) chargeWait(ref obs.SpanRef, b int, arrived, now sim.Time) {
	if c.spans == nil || !ref.Valid() {
		return
	}
	rem := now - arrived
	if blk := overlapPs(arrived, now, c.lastBlkNear[b]); blk > 0 {
		blk = minTime(blk, rem)
		c.spans.Advance(ref, obs.CauseFaultRetry, int64(blk))
		rem -= blk
	}
	if ref2 := overlapPs(arrived, now, c.lastRefNear[b]); ref2 > 0 {
		c.spans.Advance(ref, obs.CauseRefreshStall, int64(minTime(ref2, rem)))
	}
	c.spans.AdvanceTo(ref, obs.CauseQueue, int64(now))
}

// ID returns the vault number.
func (c *Controller) ID() int { return c.id }

// Scheme returns the active prefetch scheme.
func (c *Controller) Scheme() prefetch.Scheme { return c.scheme }

// tickEpoch advances the engine's feedback epoch by one demand request,
// closing the epoch — hand over and reset the accumulated stats — when the
// period is reached. Called immediately before each OnDemandServed, so the
// triggering request lands in the *new* epoch, matching MMD's historical
// count-then-adapt ordering exactly.
func (c *Controller) tickEpoch() {
	if c.epochObs == nil {
		return
	}
	c.epochReq++
	if c.epochReq >= c.epochPeriod {
		c.epochReq = 0
		st := c.epochAcc
		c.epochAcc = prefetch.EpochStats{}
		c.epochObs.OnEpoch(st)
	}
	c.epochAcc.Demands++
}

// noteBufferHit feeds a prefetch-buffer hit into the epoch accumulator.
func (c *Controller) noteBufferHit() {
	if c.epochObs != nil {
		c.epochAcc.BufferHits++
	}
}

// feedEviction classifies a buffer eviction for the epoch accumulator
// (the ledger's taxonomy: used-and-never-late is timely, used is late,
// untouched is unused) and forwards it to the engine. Every eviction the
// engine sees flows through here.
func (c *Controller) feedEviction(ev pfbuffer.Eviction) {
	if c.epochObs != nil {
		switch {
		case ev.Used && !ev.Late:
			c.epochAcc.UsefulTimely++
		case ev.Used:
			c.epochAcc.UsefulLate++
		default:
			c.epochAcc.EvictedUnused++
		}
	}
	c.pf.OnEviction(ev)
}

// Stats returns the controller's statistics. CollectOps must be called
// first to fold in per-bank operation counts.
func (c *Controller) Stats() *Stats { return &c.stats }

// BufferStats returns the prefetch buffer's statistics.
func (c *Controller) BufferStats() pfbuffer.Stats { return c.buffer.Stats() }

// CollectOps aggregates per-bank DRAM operation counters into Stats.
func (c *Controller) CollectOps() {
	c.stats.BankOps = dram.Ops{}
	for _, b := range c.banks {
		c.stats.BankOps.Add(b.Ops())
	}
}

// Flush drains residency-dependent accounting at end of simulation: every
// row still in the prefetch buffer is evicted so accuracy statistics cover
// it, and dirty rows count as writebacks.
func (c *Controller) Flush() {
	for _, ev := range c.buffer.Flush() {
		c.feedEviction(ev)
		if ev.Dirty {
			c.stats.RowWritebacks.Inc()
		}
	}
}

// Submit delivers a demand request to the vault at the current time.
func (c *Controller) Submit(req Request) {
	if req.Bank < 0 || req.Bank >= len(c.banks) {
		panic(fmt.Sprintf("vault %d: bank %d out of range", c.id, req.Bank))
	}
	if req.Line < 0 || req.Line >= c.lines {
		panic(fmt.Sprintf("vault %d: line %d out of range", c.id, req.Line))
	}
	now := c.eng.Now()
	if req.Write {
		c.stats.DemandWrites.Inc()
	} else {
		c.stats.DemandReads.Inc()
	}

	// The controller checks the prefetch buffer before anything else
	// (§3.1: "the vault controller will first check the prefetch buffer").
	id := pfbuffer.RowID{Bank: req.Bank, Row: req.Row}
	if c.buffer.Lookup(id, req.Line, req.Write, now) {
		c.stats.BufferHits.Inc()
		c.noteBufferHit()
		c.emit(obs.EvPrefetchHit, now, req.Bank, req.Row, int64(req.Line))
		c.pf.OnBufferHit(prefetch.Request{Bank: req.Bank, Row: req.Row, Line: req.Line, Write: req.Write})
		c.spans.AdvanceTo(req.Span, obs.CausePFBufferHit, int64(now+c.pfHitLat))
		c.complete(req, now, now+c.pfHitLat)
		return
	}
	c.stats.BufferMisses.Inc()

	p := pending{req: req, arrived: now}
	if req.Write {
		// Posted write: the writer does not wait for the drain.
		c.complete(req, now, now)
		c.writeQ = append(c.writeQ, p)
		c.writeCount[req.Bank]++
		if len(c.writeQ) > c.stats.MaxWriteQueue {
			c.stats.MaxWriteQueue = len(c.writeQ)
		}
	} else {
		c.readQ = append(c.readQ, p)
		c.readCount[req.Bank]++
		if len(c.readQ) > c.stats.MaxReadQueue {
			c.stats.MaxReadQueue = len(c.readQ)
		}
	}
	c.schedule()
}

// complete finishes a demand request, recording service latency.
func (c *Controller) complete(req Request, arrived, ready sim.Time) {
	c.stats.ServiceLatency.Observe(float64(ready - arrived))
	if c.obsLat != nil {
		c.obsLat.ObserveInt(int64(ready - arrived))
	}
	if req.Done == nil {
		return
	}
	if ready <= c.eng.Now() {
		req.Done(ready)
		return
	}
	// AtWhen passes the scheduled time to Done directly, avoiding a
	// closure allocation per delayed completion.
	c.eng.AtWhen(ready, req.Done)
}

// enqueueFetches admits prefetch directives, deduplicating against the
// buffer and the queue and bounding queue growth (prefetches are hints and
// may be discarded under pressure; dropped directives are counted).
func (c *Controller) enqueueFetches(fs []prefetch.Fetch) {
	for _, f := range fs {
		if c.buffer.Contains(pfbuffer.RowID{Bank: f.Bank, Row: f.Row}) {
			c.stats.FetchesRedundant.Inc()
			continue
		}
		dup := false
		for _, q := range c.fetchQ {
			if q.Bank == f.Bank && q.Row == f.Row {
				dup = true
				break
			}
		}
		if dup {
			c.stats.FetchesRedundant.Inc()
			continue
		}
		if len(c.fetchQ) >= c.maxFetchQ {
			// Drop the oldest directive: newer ones reflect fresher state.
			// Shift down in place so the queue keeps its backing array
			// instead of leaking capacity off the front.
			old := c.fetchQ[0]
			copy(c.fetchQ, c.fetchQ[1:])
			c.fetchQ = c.fetchQ[:len(c.fetchQ)-1]
			c.fetchCount[old.Bank]--
			c.stats.FetchesDropped.Inc()
			// Squeezed out of the queue by bank pressure before it could
			// ever become resident: a conflict victim in the ledger.
			c.ledger.Record(c.id, obs.ConflictVictim)
			if c.epochObs != nil {
				c.epochAcc.ConflictVictims++
			}
			c.emit(obs.EvPrefetchDrop, c.eng.Now(), old.Bank, old.Row, 0)
		}
		c.fetchQ = append(c.fetchQ, f)
		c.fetchCount[f.Bank]++
		if len(c.fetchQ) > c.stats.MaxFetchQueue {
			c.stats.MaxFetchQueue = len(c.fetchQ)
		}
	}
}

// updateDrainMode latches write draining above the high watermark and
// releases it below the low watermark.
func (c *Controller) updateDrainMode() {
	high := c.cfg.HMC.WriteQueue * 3 / 4
	low := c.cfg.HMC.WriteQueue / 4
	if len(c.writeQ) >= high {
		c.draining = true
	} else if len(c.writeQ) <= low {
		c.draining = false
	}
}

// schedule starts jobs on every idle bank that has work. If demand work
// remains queued behind busy banks it arms a retry at the earliest bank
// release: bank-release events from demand jobs are ordinary events, but
// refresh completions are daemon events (refresh re-arms itself forever
// and must not keep the simulation alive), so queued work cannot rely on
// them for a wake-up.
func (c *Controller) schedule() {
	now := c.eng.Now()
	c.updateDrainMode()
	for b := range c.banks {
		if c.busy[b] > now {
			continue
		}
		c.startJob(b, now)
	}
	c.armRefreshWake(now)
	if !c.PendingWork() {
		return
	}
	earliest := sim.Time(-1)
	for b := range c.banks {
		if c.busy[b] > now && (earliest < 0 || c.busy[b] < earliest) {
			earliest = c.busy[b]
		}
	}
	if earliest < 0 {
		return // work exists but targets idle banks: a job just started will wake us
	}
	if c.retryArmed && c.retryAt <= earliest {
		return
	}
	c.retryArmed = true
	c.retryAt = earliest
	c.eng.At(earliest, c.retryFn)
}

// armRefreshWake keeps exactly one daemon wake pending at the earliest
// per-bank refresh deadline. Refresh must fire even in an otherwise idle
// vault, but a standing wake per bank would hold banks x vaults daemon
// events in the queue at all times; since deadlines only ever advance, one
// wake per vault re-armed here is enough. A deadline already due is left
// to startJob (idle bank) or the busy bank's release wake — every started
// job schedules one at its release time.
func (c *Controller) armRefreshWake(now sim.Time) {
	// Earliest deadline still in the future: already-due banks are either
	// refreshing or busy, and their release wakes re-enter schedule().
	earliest := sim.Time(-1)
	for _, t := range c.nextRefresh {
		if t > now && (earliest < 0 || t < earliest) {
			earliest = t
		}
	}
	if earliest < 0 {
		return
	}
	if c.refreshWakeAt > now && c.refreshWakeAt <= earliest {
		return // the armed wake already covers the deadline
	}
	c.refreshWakeAt = earliest
	c.eng.AtDaemon(earliest, c.scheduleFn)
}

// startJob picks and launches at most one job for idle bank b.
// Priority: refresh (mandatory), drained writes, demand reads, dirty row
// stores, prefetch fetches, opportunistic writes.
func (c *Controller) startJob(b int, now sim.Time) {
	// An injected blackout makes the bank unavailable for the window. The
	// busy-release retry re-dispatches queued demand when the window
	// closes; the daemon wake covers work the retry path does not watch
	// (refresh, fetch hints) without extending an otherwise-drained run.
	if until := c.faults.BankBlockedUntil(b, now); until > 0 {
		if c.lastBlkNear != nil && until != c.lastBlkNear[b].end {
			// First dispatch attempt inside a new window: record it so
			// queue time overlapping it is charged to fault_retry. The
			// recorded start is the first blocked attempt, a lower bound
			// on the true window start.
			c.lastBlkNear[b] = window{start: now, end: until}
		}
		if until > c.busy[b] {
			c.busy[b] = until
			c.eng.AtDaemon(until, c.scheduleFn)
		}
		return
	}
	if now >= c.nextRefresh[b] {
		c.runRefresh(b, now)
		return
	}
	if c.draining && c.writeCount[b] > 0 {
		if p, ok := c.takeWrite(b); ok {
			c.runWrite(b, now, p)
			return
		}
	}
	if c.readCount[b] > 0 {
		if p, ok := c.takeRead(b, now); ok {
			c.runRead(b, now, p)
			return
		}
	}
	if c.storeCount[b] > 0 {
		if id, ok := c.takeStore(b); ok {
			c.runStore(b, now, id)
			return
		}
	}
	for c.fetchCount[b] > 0 {
		f, ok := c.takeFetch(b)
		if !ok {
			break
		}
		if c.runFetch(b, now, f) {
			return
		}
	}
	if c.writeCount[b] > 0 {
		if p, ok := c.takeWrite(b); ok {
			c.runWrite(b, now, p)
			return
		}
	}
}

// takeRead removes and returns the FR-FCFS choice among queued reads for
// bank b: the oldest row-buffer hit if any, otherwise the oldest request.
// Reads whose row has meanwhile arrived in the prefetch buffer are served
// from it immediately and do not occupy the bank.
func (c *Controller) takeRead(b int, now sim.Time) (pending, bool) {
	for {
		idx := c.pickQueued(c.readQ, b)
		if idx < 0 {
			return pending{}, false
		}
		p := c.readQ[idx]
		c.readQ = append(c.readQ[:idx], c.readQ[idx+1:]...)
		c.readCount[b]--
		// Service-time buffer re-check: a fetch may have landed the row in
		// the buffer after this request was queued.
		id := pfbuffer.RowID{Bank: p.req.Bank, Row: p.req.Row}
		if c.buffer.Lookup(id, p.req.Line, p.req.Write, now) {
			c.stats.BufferHits.Inc()
			c.noteBufferHit()
			c.emit(obs.EvPrefetchHit, now, p.req.Bank, p.req.Row, int64(p.req.Line))
			c.pf.OnBufferHit(prefetch.Request{Bank: p.req.Bank, Row: p.req.Row, Line: p.req.Line, Write: p.req.Write})
			c.chargeWait(p.req.Span, b, p.arrived, now)
			c.spans.AdvanceTo(p.req.Span, obs.CausePFBufferHit, int64(now+c.pfHitLat))
			c.complete(p.req, p.arrived, now+c.pfHitLat)
			continue
		}
		return p, true
	}
}

// takeWrite removes the scheduler's choice among queued writes for bank b.
func (c *Controller) takeWrite(b int) (pending, bool) {
	idx := c.pickQueued(c.writeQ, b)
	if idx < 0 {
		return pending{}, false
	}
	p := c.writeQ[idx]
	c.writeQ = append(c.writeQ[:idx], c.writeQ[idx+1:]...)
	c.writeCount[b]--
	return p, true
}

// pickQueued returns the index of the FR-FCFS choice among queued requests
// for bank b: the oldest row-buffer hit if any, otherwise the oldest
// request; -1 if none target b.
func (c *Controller) pickQueued(q []pending, b int) int {
	open := c.banks[b].OpenRow()
	frfcfs := c.cfg.HMC.Scheduler == config.FRFCFS && open != dram.NoRow
	oldest := -1
	for i := range q {
		if q[i].req.Bank != b {
			continue
		}
		if oldest < 0 {
			oldest = i
		}
		if frfcfs && q[i].req.Row == open {
			return i
		}
	}
	return oldest
}

// takeFetch removes the first queued fetch directive for bank b.
func (c *Controller) takeFetch(b int) (prefetch.Fetch, bool) {
	for i, f := range c.fetchQ {
		if f.Bank == b {
			c.fetchQ = append(c.fetchQ[:i], c.fetchQ[i+1:]...)
			c.fetchCount[b]--
			return f, true
		}
	}
	return prefetch.Fetch{}, false
}

// takeStore removes the first queued dirty-row writeback for bank b.
func (c *Controller) takeStore(b int) (pfbuffer.RowID, bool) {
	for i, id := range c.storeQ {
		if id.Bank == b {
			c.storeQ = append(c.storeQ[:i], c.storeQ[i+1:]...)
			c.storeCount[b]--
			return id, true
		}
	}
	return pfbuffer.RowID{}, false
}

// actAllowedAt returns the earliest time a new ACT may issue anywhere in
// the vault, honoring tRRD and the four-activation window.
func (c *Controller) actAllowedAt() sim.Time {
	t := c.lastAct + c.timing.RRD
	// actHist[actIdx] is the oldest of the last four ACTs: a fifth ACT
	// within tFAW of it would violate the window.
	if faw := c.actHist[c.actIdx] + c.timing.FAW; faw > t {
		t = faw
	}
	return t
}

// recordAct logs an activation for the vault-level rate limits.
func (c *Controller) recordAct(at sim.Time) {
	c.lastAct = at
	c.actHist[c.actIdx] = at
	c.actIdx = (c.actIdx + 1) % len(c.actHist)
}

// activate issues an ACT on bank b at the earliest legal time >= start,
// honoring both the bank's own constraints and the vault-level tRRD/tFAW.
func (c *Controller) activate(b int, start sim.Time, row int64) {
	bank := c.banks[b]
	at := maxTime(start, bank.EarliestActivate())
	at = maxTime(at, c.actAllowedAt())
	bank.Activate(at, row)
	c.recordAct(at)
	c.emit(obs.EvRowActivate, at, b, row, 0)
}

// openFor brings bank b to "row open" for row, returning the row-buffer
// state encountered, the displaced row (or dram.NoRow), the time the
// column path is usable, and — on a conflict — when the precharge that
// closed the displaced row completed (0 otherwise; attribution charges
// the request's time up to it as bank_conflict).
func (c *Controller) openFor(b int, start sim.Time, row int64) (dram.RowState, int64, sim.Time, sim.Time) {
	bank := c.banks[b]
	state := bank.Classify(row)
	displaced := dram.NoRow
	preDone := sim.Time(0)
	switch state {
	case dram.RowHit:
		// Row already open; column legal at EarliestColumn.
	case dram.RowMiss:
		c.activate(b, start, row)
	case dram.RowConflict:
		displaced = bank.OpenRow()
		preAt := maxTime(start, bank.EarliestPrecharge())
		preDone = bank.Precharge(preAt)
		c.activate(b, preDone, row)
	}
	return state, displaced, maxTime(start, bank.EarliestColumn()), preDone
}

// runRead executes one demand read on bank b.
func (c *Controller) runRead(b int, now sim.Time, p pending) {
	bank := c.banks[b]
	state, displaced, colAt, preDone := c.openFor(b, now, p.req.Row)
	dataDone := bank.Read(colAt)
	c.busy[b] = dataDone
	c.recordRowState(state, now, b, p.req.Row)
	// Attribution: queue residence first, then — on a conflict — the
	// precharge closing the displaced row, then the access itself.
	c.chargeWait(p.req.Span, b, p.arrived, now)
	if preDone > 0 {
		c.spans.AdvanceTo(p.req.Span, obs.CauseBankConflict, int64(minTime(preDone, dataDone)))
	}
	c.spans.AdvanceTo(p.req.Span, obs.CauseService, int64(dataDone))
	c.complete(p.req, p.arrived, dataDone)
	c.tickEpoch()
	fetches := c.pf.OnDemandServed(
		prefetch.Request{Bank: p.req.Bank, Row: p.req.Row, Line: p.req.Line, Write: false},
		state, displaced)
	c.dispatchFetches(b, p.req.Row, fetches)
	c.autoPrecharge(b, p.req.Row)
	c.eng.At(c.busy[b], c.scheduleFn)
}

// autoPrecharge closes the row after a demand access under the closed-page
// policy (after any inline fetch has used it).
func (c *Controller) autoPrecharge(b int, row int64) {
	if c.cfg.HMC.PagePolicy != config.ClosedPage {
		return
	}
	bank := c.banks[b]
	if bank.OpenRow() != row {
		return // already closed (e.g. a CloseAfter fetch precharged)
	}
	release := bank.Precharge(maxTime(c.busy[b], bank.EarliestPrecharge()))
	if release > c.busy[b] {
		c.busy[b] = release
	}
}

// runWrite drains one demand write to bank b.
func (c *Controller) runWrite(b int, now sim.Time, p pending) {
	// Service-time buffer re-check: a fetch may have landed the row in the
	// buffer after this write was queued; writing the bank then would
	// leave the buffered copy stale.
	id := pfbuffer.RowID{Bank: p.req.Bank, Row: p.req.Row}
	if c.buffer.Lookup(id, p.req.Line, true, now) {
		c.stats.BufferHits.Inc()
		c.noteBufferHit()
		c.emit(obs.EvPrefetchHit, now, p.req.Bank, p.req.Row, int64(p.req.Line))
		c.pf.OnBufferHit(prefetch.Request{Bank: p.req.Bank, Row: p.req.Row, Line: p.req.Line, Write: true})
		c.schedule()
		return
	}
	bank := c.banks[b]
	state, displaced, colAt, _ := c.openFor(b, now, p.req.Row)
	end := bank.Write(colAt)
	c.busy[b] = end
	c.recordRowState(state, now, b, p.req.Row)
	c.stats.WriteBursts.Inc()
	c.tickEpoch()
	fetches := c.pf.OnDemandServed(
		prefetch.Request{Bank: p.req.Bank, Row: p.req.Row, Line: p.req.Line, Write: true},
		state, displaced)
	c.dispatchFetches(b, p.req.Row, fetches)
	c.autoPrecharge(b, p.req.Row)
	c.eng.At(c.busy[b], c.scheduleFn)
}

// dispatchFetches routes a demand-triggered fetch of the *currently open
// row* into the same bank job — fetch-then-precharge is one action in the
// paper's scheme, and deferring it behind queued demand would let the
// demand stream drain the row from the bank before the copy happens. All
// other fetch targets go through the queue.
func (c *Controller) dispatchFetches(b int, servedRow int64, fetches []prefetch.Fetch) {
	queued := c.fetchScratch[:0]
	for _, f := range fetches {
		if f.Bank == b && f.Row == servedRow && c.banks[b].OpenRow() == servedRow {
			c.runInlineFetch(b, f)
			continue
		}
		queued = append(queued, f)
	}
	c.enqueueFetches(queued)
	c.fetchScratch = queued[:0]
}

// runInlineFetch copies the open row to the buffer immediately after the
// demand column access that triggered it, extending the bank job.
func (c *Controller) runInlineFetch(b int, f prefetch.Fetch) {
	id := pfbuffer.RowID{Bank: f.Bank, Row: f.Row}
	if c.buffer.Contains(id) {
		c.stats.FetchesRedundant.Inc()
		return
	}
	bank := c.banks[b]
	start := c.reserveTSV(bank.EarliestColumn())
	end := c.tsvComplete(start, bank.FetchRow(start, c.lines))
	release := end
	if f.CloseAfter {
		release = bank.Precharge(maxTime(end, bank.EarliestPrecharge()))
	}
	if release > c.busy[b] {
		c.busy[b] = release
	}
	c.stats.FetchesIssued.Inc()
	if c.epochObs != nil {
		c.epochAcc.FetchesIssued++
	}
	c.emit(obs.EvPrefetchIssue, start, b, f.Row, 1)
	c.eng.At(end, func() { c.insertFetched(id, f.Touched, end) })
}

// runFetch copies a whole row into the prefetch buffer. It reports whether
// the fetch actually occupied the bank (false when the row turned out to be
// resident already).
func (c *Controller) runFetch(b int, now sim.Time, f prefetch.Fetch) bool {
	id := pfbuffer.RowID{Bank: f.Bank, Row: f.Row}
	if c.buffer.Contains(id) {
		c.stats.FetchesRedundant.Inc()
		return false
	}
	bank := c.banks[b]
	_, _, colAt, _ := c.openFor(b, now, f.Row)
	start := c.reserveTSV(colAt)
	end := c.tsvComplete(start, bank.FetchRow(start, c.lines))
	release := end
	if f.CloseAfter {
		preAt := maxTime(end, bank.EarliestPrecharge())
		release = bank.Precharge(preAt)
	}
	c.busy[b] = release
	c.stats.FetchesIssued.Inc()
	if c.epochObs != nil {
		c.epochAcc.FetchesIssued++
	}
	c.emit(obs.EvPrefetchIssue, start, b, f.Row, 0)
	c.eng.At(end, func() { c.insertFetched(id, f.Touched, end) })
	c.eng.At(release, c.scheduleFn)
	return true
}

// insertFetched lands a fetched row in the prefetch buffer. A poisoned
// row (fault injection) arrives damaged and is discarded instead: the
// bank work was spent, the buffer is not filled — the next demand access
// misses and re-fetches — and the prefetch engine's usefulness feedback
// is charged with a zero-utilization eviction.
func (c *Controller) insertFetched(id pfbuffer.RowID, touched uint64, at sim.Time) {
	if c.faults.PoisonInsert(id.Bank, id.Row, at) {
		c.feedEviction(pfbuffer.Eviction{ID: id})
		// The fetch was spent but no demand can ever use it: pollution in
		// the ledger, and excluded from buffer accuracy (the row never
		// became resident).
		c.ledger.Record(c.id, obs.EvictedUnused)
		c.buffer.NotePoisoned()
		return
	}
	if ev, ok := c.buffer.Insert(id, touched, at); ok {
		c.onEviction(ev)
	}
	// A demand read for this row already queued means the prefetch lost
	// (part of) the race: any use it sees is late.
	if (*queueView)(c).PendingReadsForRow(id.Bank, id.Row) > 0 {
		c.buffer.MarkLate(id)
	}
}

// reserveTSV returns the earliest time a whole-row TSV transfer may begin
// at or after `at`, honoring the shared data path when it is modeled.
func (c *Controller) reserveTSV(at sim.Time) sim.Time {
	if c.tsvRowTime == 0 {
		return at
	}
	return maxTime(at, c.tsvFree)
}

// tsvComplete returns when a row transfer that began at start and finished
// its bank-side bursts at bankEnd has fully crossed the data path, and
// marks the path busy until then.
func (c *Controller) tsvComplete(start, bankEnd sim.Time) sim.Time {
	if c.tsvRowTime == 0 {
		return bankEnd
	}
	end := maxTime(bankEnd, start+c.tsvRowTime)
	c.tsvFree = end
	return end
}

// runStore writes a dirty evicted row back into its bank.
func (c *Controller) runStore(b int, now sim.Time, id pfbuffer.RowID) {
	bank := c.banks[b]
	_, _, colAt, _ := c.openFor(b, now, id.Row)
	start := c.reserveTSV(colAt)
	end := c.tsvComplete(start, bank.StoreRow(start, c.lines))
	preAt := maxTime(end, bank.EarliestPrecharge())
	release := bank.Precharge(preAt)
	c.busy[b] = release
	c.stats.RowWritebacks.Inc()
	c.emit(obs.EvRowWriteback, start, b, id.Row, 0)
	c.eng.At(release, c.scheduleFn)
}

// runRefresh performs one per-bank refresh (precharging first if needed).
func (c *Controller) runRefresh(b int, now sim.Time) {
	bank := c.banks[b]
	start := now
	if bank.IsOpen() {
		preAt := maxTime(now, bank.EarliestPrecharge())
		start = bank.Precharge(preAt)
	}
	done := bank.Refresh(maxTime(start, bank.EarliestActivate()))
	c.busy[b] = done
	c.stats.Refreshes.Inc()
	if c.lastRefNear != nil {
		c.lastRefNear[b] = window{start: now, end: done}
	}
	c.nextRefresh[b] += c.timing.REFI
	// The bank's next deadline is covered by armRefreshWake when this
	// schedule() pass ends. Daemon: refresh self-sustains forever; queued
	// demand is woken by the scheduler's explicit retry instead.
	c.eng.AtDaemon(done, c.scheduleFn)
}

// onEviction routes a buffer eviction to the engine and queues the row's
// writeback to its bank. The paper's buffer replaces rows *back to the
// memory bank* unconditionally (it has no per-row cleanliness tracking);
// with WritebackDirtyOnly set, only written-to rows go back.
func (c *Controller) onEviction(ev pfbuffer.Eviction) {
	c.emit(obs.EvPrefetchEvict, c.eng.Now(), ev.ID.Bank, ev.ID.Row, int64(ev.Util))
	c.feedEviction(ev)
	if ev.Dirty || !c.cfg.PFBuffer.WritebackDirtyOnly {
		c.storeQ = append(c.storeQ, ev.ID)
		c.storeCount[ev.ID.Bank]++
		c.schedule()
	}
}

// recordRowState counts a demand access's row-buffer outcome and
// publishes it as a trace event.
func (c *Controller) recordRowState(s dram.RowState, at sim.Time, bank int, row int64) {
	switch s {
	case dram.RowHit:
		c.stats.RowHits.Inc()
		c.emit(obs.EvRowHit, at, bank, row, 0)
	case dram.RowMiss:
		c.stats.RowMisses.Inc()
		c.emit(obs.EvRowMiss, at, bank, row, 0)
	case dram.RowConflict:
		c.stats.RowConflicts.Inc()
		c.emit(obs.EvRowConflict, at, bank, row, 0)
	}
}

// CheckInvariant validates the vault's structural invariants: the
// prefetch buffer's occupancy and recency permutation, every bank's
// activate/precharge accounting, and — for engines that expose one — the
// prefetch engine's table bounds (RUT/CT). Read-only; wired into the
// simulator's epoch invariant checker.
func (c *Controller) CheckInvariant() error {
	if err := c.buffer.CheckInvariant(); err != nil {
		return fmt.Errorf("vault %d: %w", c.id, err)
	}
	for b, bank := range c.banks {
		if err := bank.CheckInvariant(); err != nil {
			return fmt.Errorf("vault %d bank %d: %w", c.id, b, err)
		}
	}
	if chk, ok := c.pf.(interface{ CheckInvariant() error }); ok {
		if err := chk.CheckInvariant(); err != nil {
			return fmt.Errorf("vault %d: %w", c.id, err)
		}
	}
	// The per-bank work counters must mirror the queues exactly; a skew
	// would make startJob skip queued work forever.
	for b := range c.banks {
		nr, nw, ns, nf := 0, 0, 0, 0
		for i := range c.readQ {
			if c.readQ[i].req.Bank == b {
				nr++
			}
		}
		for i := range c.writeQ {
			if c.writeQ[i].req.Bank == b {
				nw++
			}
		}
		for _, id := range c.storeQ {
			if id.Bank == b {
				ns++
			}
		}
		for _, f := range c.fetchQ {
			if f.Bank == b {
				nf++
			}
		}
		if nr != c.readCount[b] || nw != c.writeCount[b] || ns != c.storeCount[b] || nf != c.fetchCount[b] {
			return fmt.Errorf("vault %d bank %d: work counts (r=%d w=%d s=%d f=%d) disagree with queues (r=%d w=%d s=%d f=%d)",
				c.id, b, c.readCount[b], c.writeCount[b], c.storeCount[b], c.fetchCount[b], nr, nw, ns, nf)
		}
	}
	return nil
}

// PendingWork reports whether the controller still has queued demand,
// prefetch or writeback work (used by drain loops in tests and at
// simulation end).
func (c *Controller) PendingWork() bool {
	return len(c.readQ) > 0 || len(c.writeQ) > 0 || len(c.storeQ) > 0
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func minTime(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}
