package vault

import (
	"testing"

	"camps/internal/config"
	"camps/internal/dram"
	"camps/internal/prefetch"
	"camps/internal/sim"
)

// smallCfg shrinks refresh pressure out of the way for focused tests.
func smallCfg() config.Config {
	cfg := config.Default()
	cfg.HMC.Timing.TREFI = 1 << 20 // push refresh far out
	return cfg
}

func newVault(t *testing.T, cfg config.Config, scheme prefetch.Scheme) (*sim.Engine, *Controller) {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("config: %v", err)
	}
	eng := sim.NewEngine()
	return eng, New(eng, cfg, scheme, 0)
}

// submitRead sends a read and returns a pointer that receives completion time.
func submitRead(c *Controller, bank int, row int64, line int) *sim.Time {
	done := new(sim.Time)
	*done = -1
	c.Submit(Request{Bank: bank, Row: row, Line: line, Done: func(at sim.Time) { *done = at }})
	return done
}

func TestReadMissLatency(t *testing.T) {
	cfg := smallCfg()
	eng, c := newVault(t, cfg, prefetch.CAMPS)
	done := submitRead(c, 0, 5, 0)
	eng.Run()
	tm := dram.NewTiming(cfg.HMC.Timing, cfg.DRAMClock())
	want := tm.RCD + tm.CL + tm.BL
	if *done != want {
		t.Fatalf("closed-bank read completed at %v, want tRCD+tCL+tBL = %v", *done, want)
	}
	if c.Stats().RowMisses.Value() != 1 {
		t.Fatalf("row misses = %d, want 1", c.Stats().RowMisses.Value())
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	cfg := smallCfg()
	// CAMPS: first access opens row and profiles it (no fetch at util 1).
	eng, c := newVault(t, cfg, prefetch.CAMPS)
	submitRead(c, 0, 5, 0)
	eng.Run()

	hitDone := submitRead(c, 0, 5, 1)
	start := eng.Now()
	eng.Run()
	hitLat := *hitDone - start

	// Now a conflicting row.
	confDone := submitRead(c, 0, 6, 0)
	start = eng.Now()
	eng.Run()
	confLat := *confDone - start

	if hitLat >= confLat {
		t.Fatalf("row hit latency %v not faster than conflict latency %v", hitLat, confLat)
	}
	s := c.Stats()
	if s.RowHits.Value() != 1 || s.RowConflicts.Value() != 1 || s.RowMisses.Value() != 1 {
		t.Fatalf("row state counts = hit %d miss %d conflict %d",
			s.RowHits.Value(), s.RowMisses.Value(), s.RowConflicts.Value())
	}
}

func TestBasePrefetchServesSecondAccessFromBuffer(t *testing.T) {
	cfg := smallCfg()
	eng, c := newVault(t, cfg, prefetch.Base)
	// First access: BASE fetches the whole row and precharges.
	submitRead(c, 0, 7, 0)
	eng.Run()
	if c.Stats().FetchesIssued.Value() != 1 {
		t.Fatalf("BASE issued %d fetches, want 1", c.Stats().FetchesIssued.Value())
	}
	// Second access to the same row: prefetch-buffer hit at pf latency.
	done := submitRead(c, 0, 7, 3)
	start := eng.Now()
	eng.Run()
	wantLat := cfg.CPUClock().Cycles(cfg.PFBuffer.HitLatency)
	if *done-start != wantLat {
		t.Fatalf("buffer hit latency = %v, want %v", *done-start, wantLat)
	}
	s := c.Stats()
	if s.BufferHits.Value() != 1 {
		t.Fatalf("buffer hits = %d, want 1", s.BufferHits.Value())
	}
	// BASE precharged after the copy: no open row left.
	if s.RowConflicts.Value() != 0 {
		t.Fatal("BASE should produce no row-buffer conflicts")
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	cfg := smallCfg()
	eng, c := newVault(t, cfg, prefetch.CAMPS)
	// Open row 5 in bank 0.
	submitRead(c, 0, 5, 0)
	eng.Run()
	// While the bank is busy serving a conflicting row-6 read, queue
	// another row-5 read; FR-FCFS should reorder it first... but the row-6
	// read occupies the bank immediately (it was idle). Instead queue both
	// while the bank is busy: issue a long job first.
	d6 := submitRead(c, 0, 6, 0) // starts immediately, conflict
	d5 := submitRead(c, 0, 5, 1) // queued behind; row 5 no longer open after 6 opens
	d6b := submitRead(c, 0, 6, 1)
	eng.Run()
	// After the first job, row 6 is open; FR-FCFS picks the row-6 hit
	// (d6b) before the older row-5 request (d5).
	if !(*d6b < *d5) {
		t.Fatalf("FR-FCFS did not prefer row hit: d6b=%v d5=%v d6=%v", *d6b, *d5, *d6)
	}
	if c.Stats().RowHits.Value() < 1 {
		t.Fatal("expected at least one row hit from reordering")
	}
}

func TestPostedWriteCompletesImmediatelyAndDrains(t *testing.T) {
	cfg := smallCfg()
	eng, c := newVault(t, cfg, prefetch.CAMPS)
	var done sim.Time = -1
	c.Submit(Request{Bank: 1, Row: 3, Line: 0, Write: true, Done: func(at sim.Time) { done = at }})
	if done != 0 {
		t.Fatalf("posted write completed at %v, want immediately (0)", done)
	}
	eng.Run()
	if c.Stats().WriteBursts.Value() != 1 {
		t.Fatalf("write bursts = %d, want 1 (write drained)", c.Stats().WriteBursts.Value())
	}
	if c.PendingWork() {
		t.Fatal("work left after drain")
	}
}

func TestWriteDrainMode(t *testing.T) {
	cfg := smallCfg()
	eng, c := newVault(t, cfg, prefetch.CAMPS)
	// Flood the write queue past the high watermark (24 of 32) for one bank.
	for i := 0; i < 30; i++ {
		c.Submit(Request{Bank: 0, Row: int64(i), Line: 0, Write: true})
	}
	if !c.draining {
		t.Fatal("drain mode not latched above high watermark")
	}
	eng.Run()
	if c.Stats().WriteBursts.Value() != 30 {
		t.Fatalf("drained %d writes, want 30", c.Stats().WriteBursts.Value())
	}
	if c.draining {
		t.Fatal("drain mode still latched after queue emptied")
	}
	if c.Stats().MaxWriteQueue < 24 {
		t.Fatalf("max write queue = %d, want >= 24", c.Stats().MaxWriteQueue)
	}
}

func TestServiceTimeBufferRecheck(t *testing.T) {
	cfg := smallCfg()
	eng, c := newVault(t, cfg, prefetch.Base)
	// Demand read to row 9 triggers a BASE fetch of the whole row. While
	// the row fetch occupies the bank (it starts after the demand read
	// completes, ~33ns, and runs for ~100ns) a second read to the same row
	// arrives; it misses the buffer on arrival but must be served from the
	// buffer at service time (counted as a buffer hit, no bank access).
	submitRead(c, 0, 9, 0)
	eng.RunUntil(50 * sim.Nanosecond)
	if c.Stats().FetchesIssued.Value() != 1 {
		t.Fatal("test setup: fetch not yet in flight at 50ns")
	}
	d2 := submitRead(c, 0, 9, 5)
	eng.Run()
	if *d2 < 0 {
		t.Fatal("second read never completed")
	}
	s := c.Stats()
	if s.BufferHits.Value() == 0 {
		t.Fatal("service-time buffer re-check never hit")
	}
	// Only the first request should have touched the bank.
	if got := s.BankAccesses(); got != 1 {
		t.Fatalf("bank accesses = %d, want 1", got)
	}
}

func TestCAMPSConflictProneRowGetsFetched(t *testing.T) {
	cfg := smallCfg()
	eng, c := newVault(t, cfg, prefetch.CAMPSMOD)
	// A ping-pong between rows 1 and 2 in bank 0: the second time row 1
	// reopens it is in the CT and gets fetched.
	for i := 0; i < 2; i++ {
		submitRead(c, 0, 1, i)
		eng.Run()
		submitRead(c, 0, 2, i)
		eng.Run()
	}
	if c.Stats().FetchesIssued.Value() == 0 {
		t.Fatal("conflict ping-pong never triggered a CAMPS fetch")
	}
	// Subsequent access to the fetched row is a buffer hit.
	pre := c.Stats().BufferHits.Value()
	submitRead(c, 0, 1, 9)
	eng.Run()
	if c.Stats().BufferHits.Value() != pre+1 {
		t.Fatal("fetched conflict-prone row not served from buffer")
	}
}

func TestCAMPSUtilizationFetch(t *testing.T) {
	cfg := smallCfg()
	eng, c := newVault(t, cfg, prefetch.CAMPS)
	// Four distinct lines from one open row reach the RUT threshold.
	for line := 0; line < 4; line++ {
		submitRead(c, 2, 11, line)
		eng.Run()
	}
	if c.Stats().FetchesIssued.Value() != 1 {
		t.Fatalf("fetches = %d, want 1 after utilization threshold", c.Stats().FetchesIssued.Value())
	}
	// CloseAfter: bank precharged, so next different-row access is a miss,
	// not a conflict.
	pre := c.Stats().RowConflicts.Value()
	submitRead(c, 2, 12, 0)
	eng.Run()
	if c.Stats().RowConflicts.Value() != pre {
		t.Fatal("bank not precharged after CAMPS fetch")
	}
}

func TestRefreshHappensWhileIdle(t *testing.T) {
	cfg := smallCfg()
	cfg.HMC.Timing.TREFI = 6240 // restore realistic refresh
	eng, c := newVault(t, cfg, prefetch.CAMPS)
	tm := dram.NewTiming(cfg.HMC.Timing, cfg.DRAMClock())
	eng.RunUntil(2 * tm.REFI)
	refreshes := c.Stats().Refreshes.Value()
	// Every bank refreshes roughly twice in two tREFI windows.
	banks := uint64(cfg.HMC.Banks())
	if refreshes < banks || refreshes > 3*banks {
		t.Fatalf("refreshes = %d over 2*tREFI, want within [%d,%d]", refreshes, banks, 3*banks)
	}
}

func TestDirtyBufferEvictionWritesBack(t *testing.T) {
	cfg := smallCfg()
	cfg.PFBuffer.SizeBytes = 2 << 10 // 2 entries: force evictions fast
	eng, c := newVault(t, cfg, prefetch.Base)
	// Touch row 0 (fetch), dirty it via a write hit, then fetch two more
	// rows to evict it.
	submitRead(c, 0, 0, 0)
	eng.Run()
	c.Submit(Request{Bank: 0, Row: 0, Line: 1, Write: true}) // buffer write hit -> dirty
	eng.Run()
	submitRead(c, 0, 1, 0)
	eng.Run()
	submitRead(c, 0, 2, 0)
	eng.Run()
	if c.Stats().RowWritebacks.Value() == 0 {
		t.Fatal("dirty row eviction did not write back")
	}
	if c.BufferStats().DirtyEvicts == 0 {
		t.Fatal("dirty eviction not counted in buffer stats")
	}
}

func TestFlushAccountsResidentRows(t *testing.T) {
	cfg := smallCfg()
	eng, c := newVault(t, cfg, prefetch.Base)
	submitRead(c, 0, 3, 0)
	eng.Run()
	// Row 3 resident and used (the triggering demand missed; a second
	// demand hits it).
	submitRead(c, 0, 3, 1)
	eng.Run()
	c.Flush()
	bs := c.BufferStats()
	if bs.Evictions == 0 {
		t.Fatal("flush did not evict resident rows")
	}
	if bs.RowAccuracy() != 1.0 {
		t.Fatalf("accuracy = %g, want 1.0 (the only prefetched row was used)", bs.RowAccuracy())
	}
}

func TestSubmitValidation(t *testing.T) {
	cfg := smallCfg()
	_, c := newVault(t, cfg, prefetch.CAMPS)
	for _, req := range []Request{
		{Bank: -1, Row: 0, Line: 0},
		{Bank: 99, Row: 0, Line: 0},
		{Bank: 0, Row: 0, Line: -1},
		{Bank: 0, Row: 0, Line: 16},
	} {
		req := req
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Submit(%+v) did not panic", req)
				}
			}()
			c.Submit(req)
		}()
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64, uint64) {
		cfg := smallCfg()
		eng := sim.NewEngine()
		c := New(eng, cfg, prefetch.CAMPSMOD, 0)
		var last sim.Time
		for i := 0; i < 200; i++ {
			bank := i % 4
			row := int64(i % 7)
			line := i % 16
			c.Submit(Request{Bank: bank, Row: row, Line: line,
				Write: i%5 == 0, Done: func(at sim.Time) { last = at }})
			eng.RunFor(sim.Time(1000 * (i % 3)))
		}
		eng.Run()
		return last, c.Stats().RowConflicts.Value(), c.Stats().FetchesIssued.Value()
	}
	a1, a2, a3 := run()
	b1, b2, b3 := run()
	if a1 != b1 || a2 != b2 || a3 != b3 {
		t.Fatalf("nondeterministic: (%v,%d,%d) vs (%v,%d,%d)", a1, a2, a3, b1, b2, b3)
	}
}

func TestStatsMerge(t *testing.T) {
	var a, b Stats
	a.RowHits.Add(3)
	a.MaxReadQueue = 5
	b.RowHits.Add(4)
	b.RowConflicts.Add(2)
	b.MaxReadQueue = 9
	b.ServiceLatency.Observe(100)
	a.Merge(&b)
	if a.RowHits.Value() != 7 || a.RowConflicts.Value() != 2 {
		t.Fatalf("merge counts wrong: %+v", a)
	}
	if a.MaxReadQueue != 9 {
		t.Fatalf("merge max = %d, want 9", a.MaxReadQueue)
	}
	if a.ServiceLatency.Count() != 1 {
		t.Fatal("merge lost latency samples")
	}
}

func TestConflictRate(t *testing.T) {
	var s Stats
	if s.ConflictRate() != 0 {
		t.Fatal("empty conflict rate should be 0")
	}
	s.RowHits.Add(6)
	s.RowMisses.Add(2)
	s.RowConflicts.Add(2)
	if got := s.ConflictRate(); got != 0.2 {
		t.Fatalf("conflict rate = %g, want 0.2", got)
	}
}

func TestAllSchemesRunEndToEnd(t *testing.T) {
	for _, scheme := range prefetch.Schemes() {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := smallCfg()
			eng, c := newVault(t, cfg, scheme)
			completed := 0
			for i := 0; i < 500; i++ {
				bank := (i * 7) % 16
				row := int64((i * 3) % 32)
				line := (i * 5) % 16
				c.Submit(Request{Bank: bank, Row: row, Line: line,
					Write: i%4 == 3, Done: func(sim.Time) { completed++ }})
				if i%10 == 0 {
					eng.RunFor(50_000)
				}
			}
			eng.Run()
			if completed != 500 {
				t.Fatalf("%v: completed %d/500", scheme, completed)
			}
			c.CollectOps()
			s := c.Stats()
			if s.BankOps.Activates == 0 {
				t.Fatalf("%v: no DRAM activity recorded", scheme)
			}
			if c.PendingWork() {
				t.Fatalf("%v: pending work after drain", scheme)
			}
		})
	}
}
