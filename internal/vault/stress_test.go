package vault

import (
	"testing"

	"camps/internal/config"
	"camps/internal/prefetch"
	"camps/internal/sim"
)

// TestSingleBankHammer drives every request at one bank — the worst case
// for queueing and FR-FCFS — and checks nothing deadlocks or starves.
func TestSingleBankHammer(t *testing.T) {
	for _, scheme := range prefetch.Schemes() {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := smallCfg()
			eng, c := newVault(t, cfg, scheme)
			completed := 0
			const n = 800
			for i := 0; i < n; i++ {
				row := int64(i % 3) // three-row ping-pong in one bank
				line := i % 16
				c.Submit(Request{Bank: 5, Row: row, Line: line,
					Write: i%7 == 6, Done: func(sim.Time) { completed++ }})
				if i%16 == 0 {
					eng.RunFor(100_000)
				}
			}
			eng.Run()
			if completed != n {
				t.Fatalf("completed %d/%d under single-bank hammer", completed, n)
			}
			if c.PendingWork() {
				t.Fatal("stuck work after hammer")
			}
		})
	}
}

// TestWriteFlood saturates the write queue far past the drain watermark.
func TestWriteFlood(t *testing.T) {
	cfg := smallCfg()
	eng, c := newVault(t, cfg, prefetch.CAMPSMOD)
	const n = 500
	for i := 0; i < n; i++ {
		c.Submit(Request{Bank: i % 16, Row: int64(i % 11), Line: i % 16, Write: true})
	}
	eng.Run()
	if got := c.Stats().WriteBursts.Value() + c.Stats().BufferHits.Value(); got != n {
		t.Fatalf("flood drained %d writes (bursts+buffer absorbs), want %d", got, n)
	}
	if c.Stats().MaxWriteQueue < cfg.HMC.WriteQueue/2 {
		t.Fatalf("flood never pressured the queue: max %d", c.Stats().MaxWriteQueue)
	}
}

// TestRefreshStorm shrinks tREFI so refresh dominates; demand must still
// complete, just slowly.
func TestRefreshStorm(t *testing.T) {
	cfg := config.Default()
	cfg.HMC.Timing.TREFI = 300 // pathological: refresh ~2/3 of the time
	cfg.HMC.Timing.TRFC = 200
	eng, c := newVault(t, cfg, prefetch.CAMPS)
	completed := 0
	for i := 0; i < 100; i++ {
		c.Submit(Request{Bank: i % 16, Row: int64(i), Line: 0,
			Done: func(sim.Time) { completed++ }})
	}
	eng.Run()
	if completed != 100 {
		t.Fatalf("refresh storm starved demand: %d/100", completed)
	}
	if c.Stats().Refreshes.Value() == 0 {
		t.Fatal("no refreshes under storm config")
	}
}

// TestFetchQueueOverflowDropsOldest forces more fetch directives than the
// queue admits; the controller must drop (and count) rather than grow.
func TestFetchQueueOverflowDropsOldest(t *testing.T) {
	cfg := smallCfg()
	// MMD with a huge degree floods the fetch queue with next-row fetches.
	cfg.MMD.MaxDegree = 64
	cfg.MMD.TouchThreshold = 1
	eng, c := newVault(t, cfg, prefetch.MMD)
	// Hold the banks busy with demand so fetches pile up.
	for i := 0; i < 400; i++ {
		c.Submit(Request{Bank: i % 2, Row: int64(i % 50), Line: i % 16})
	}
	// Drive MMD's degree up by reporting useful prefetches.
	eng.Run()
	s := c.Stats()
	if s.MaxFetchQueue > c.maxFetchQ {
		t.Fatalf("fetch queue grew past its bound: %d > %d", s.MaxFetchQueue, c.maxFetchQ)
	}
	if s.FetchesDropped.Value() == 0 && s.MaxFetchQueue < c.maxFetchQ {
		t.Skip("load pattern never filled the fetch queue on this configuration")
	}
}

// TestTinyBufferChurn runs with a 1-entry prefetch buffer: constant
// eviction, every insert displacing the previous row.
func TestTinyBufferChurn(t *testing.T) {
	cfg := smallCfg()
	cfg.PFBuffer.SizeBytes = 1 << 10 // one row
	eng, c := newVault(t, cfg, prefetch.Base)
	completed := 0
	for i := 0; i < 300; i++ {
		c.Submit(Request{Bank: i % 16, Row: int64(i), Line: 0,
			Done: func(sim.Time) { completed++ }})
		if i%8 == 0 {
			eng.RunFor(100_000)
		}
	}
	eng.Run()
	if completed != 300 {
		t.Fatalf("tiny buffer stalled requests: %d/300", completed)
	}
	bs := c.BufferStats()
	if bs.Evictions < bs.Inserts-1 {
		t.Fatalf("1-entry buffer: %d inserts but only %d evictions", bs.Inserts, bs.Evictions)
	}
}

// TestEvictionWritebackPolicy checks both writeback modes: the paper's
// write-everything-back default and the dirty-only variant.
func TestEvictionWritebackPolicy(t *testing.T) {
	run := func(dirtyOnly bool) uint64 {
		cfg := smallCfg()
		cfg.PFBuffer.SizeBytes = 2 << 10
		cfg.PFBuffer.WritebackDirtyOnly = dirtyOnly
		eng, c := newVault(t, cfg, prefetch.Base)
		// Fetch several rows via reads (clean), cycling the 2-entry buffer.
		for i := 0; i < 8; i++ {
			submitRead(c, 0, int64(i), 0)
			eng.Run()
		}
		c.Flush()
		return c.Stats().RowWritebacks.Value()
	}
	all := run(false)
	dirty := run(true)
	if all == 0 {
		t.Fatal("write-everything-back mode produced no row writebacks")
	}
	if dirty != 0 {
		t.Fatalf("dirty-only mode wrote back %d clean rows", dirty)
	}
}

// TestManyRowsManyBanksThroughput is a coarse throughput sanity check:
// spread load must finish much faster than single-bank load.
func TestManyRowsManyBanksThroughput(t *testing.T) {
	run := func(banks int) sim.Time {
		cfg := smallCfg()
		eng, c := newVault(t, cfg, prefetch.CAMPS)
		for i := 0; i < 200; i++ {
			c.Submit(Request{Bank: i % banks, Row: int64(i), Line: 0})
		}
		eng.Run()
		return eng.Now()
	}
	spread := run(16)
	serial := run(1)
	if spread*2 >= serial {
		t.Fatalf("bank-level parallelism missing: 16 banks %v vs 1 bank %v", spread, serial)
	}
}

// TestClosedPagePolicyEliminatesHitsAndConflicts: under closed page every
// demand access finds the bank precharged.
func TestClosedPagePolicy(t *testing.T) {
	cfg := smallCfg()
	cfg.HMC.PagePolicy = config.ClosedPage
	eng, c := newVault(t, cfg, prefetch.None)
	for i := 0; i < 200; i++ {
		submitRead(c, i%4, int64(i%5), i%16)
		eng.Run()
	}
	s := c.Stats()
	if s.RowHits.Value() != 0 || s.RowConflicts.Value() != 0 {
		t.Fatalf("closed page produced %d hits / %d conflicts",
			s.RowHits.Value(), s.RowConflicts.Value())
	}
	if s.RowMisses.Value() != 200 {
		t.Fatalf("closed page misses = %d, want 200", s.RowMisses.Value())
	}
}

// TestFCFSDoesNotReorder: under FCFS a younger row-hit request must not
// bypass an older request to a different row.
func TestFCFSDoesNotReorder(t *testing.T) {
	cfg := smallCfg()
	cfg.HMC.Scheduler = config.FCFS
	eng, c := newVault(t, cfg, prefetch.None)
	// Open row 5.
	submitRead(c, 0, 5, 0)
	eng.Run()
	// Occupy the bank, then queue old(row 6) before young(row 5 hit).
	d6 := submitRead(c, 0, 6, 0)
	dOld := submitRead(c, 0, 7, 0)
	dYoung := submitRead(c, 0, 6, 1) // would be a row hit under FR-FCFS
	eng.Run()
	if !(*d6 < *dOld && *dOld < *dYoung) {
		t.Fatalf("FCFS reordered: d6=%v dOld=%v dYoung=%v", *d6, *dOld, *dYoung)
	}
}

// TestNoPrefetchSchemeNeverFetches.
func TestNoPrefetchSchemeNeverFetches(t *testing.T) {
	cfg := smallCfg()
	eng, c := newVault(t, cfg, prefetch.None)
	for i := 0; i < 300; i++ {
		c.Submit(Request{Bank: i % 16, Row: int64(i % 9), Line: i % 16, Write: i%5 == 4})
	}
	eng.Run()
	if c.Stats().FetchesIssued.Value() != 0 {
		t.Fatal("NONE scheme issued fetches")
	}
	if c.BufferStats().Inserts != 0 {
		t.Fatal("NONE scheme inserted into the buffer")
	}
}

// TestFAWLimitsActivationBursts: five immediate activations across
// different banks must spread over at least one tFAW window.
func TestFAWLimitsActivationBursts(t *testing.T) {
	cfg := smallCfg()
	eng, c := newVault(t, cfg, prefetch.None)
	done := make([]*sim.Time, 5)
	for i := 0; i < 5; i++ {
		done[i] = submitRead(c, i, int64(i), 0) // five banks, all need ACT
	}
	eng.Run()
	tm := c.timing
	// The fifth ACT cannot issue before tFAW after the first; its data
	// completes at least tFAW + tRCD + tCL + tBL after time zero.
	minFifth := tm.FAW + tm.RCD + tm.CL + tm.BL
	latest := sim.Time(0)
	for _, d := range done {
		if *d > latest {
			latest = *d
		}
	}
	if latest < minFifth {
		t.Fatalf("five parallel activations finished at %v, violating tFAW (min %v)",
			latest, minFifth)
	}
}

// TestTSVBandwidthSerializesRowTransfers: with a modeled (narrow) TSV data
// path, back-to-back fetches on different banks must serialize.
func TestTSVBandwidthSerializes(t *testing.T) {
	run := func(gbps int64) sim.Time {
		cfg := smallCfg()
		cfg.HMC.TSVGBps = gbps
		eng, c := newVault(t, cfg, prefetch.Base)
		// BASE fetches the whole row on every access: four fetches on four
		// banks, concurrent unless the TSV path is the bottleneck.
		for b := 0; b < 4; b++ {
			submitRead(c, b, 1, 0)
		}
		eng.Run()
		return eng.Now()
	}
	unlimited := run(0)
	narrow := run(2) // 2 GB/s: one 1KB row takes 500ns
	if narrow <= unlimited {
		t.Fatalf("narrow TSV (%v) not slower than unlimited (%v)", narrow, unlimited)
	}
	// Four 1KB transfers at 2 GB/s serialize to >= 2us total.
	if narrow < 2*sim.Microsecond {
		t.Fatalf("narrow TSV finished at %v, want >= 2us of serialized transfers", narrow)
	}
}
