package lint

import (
	"go/ast"
	"go/types"
)

// TickArith flags conversions and arithmetic that mix sim.Time
// (simulated picoseconds, advanced by the event engine) with
// time.Duration (wall-clock nanoseconds). The two are both int64 under
// the hood and three orders of magnitude apart in unit, so a direct
// conversion is almost always a latent unit bug; code that genuinely
// needs to cross the boundary converts through an explicit int64 with
// named picosecond/nanosecond helpers so the unit change is visible.
var TickArith = &Analyzer{
	Name:  "tickarith",
	Doc:   "flag conversions/arithmetic mixing sim.Time ticks with time.Duration",
	Allow: "tickarith",
	Run:   runTickArith,
}

const simPkgPath = "camps/internal/sim"

func isSimTime(t types.Type) bool  { return t != nil && namedType(t, simPkgPath, "Time") }
func isDuration(t types.Type) bool { return t != nil && namedType(t, "time", "Duration") }

func runTickArith(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if len(n.Args) != 1 {
					return true
				}
				tv, ok := pass.Info.Types[n.Fun]
				if !ok || !tv.IsType() {
					return true
				}
				src := pass.Info.TypeOf(n.Args[0])
				dst := tv.Type
				switch {
				case isSimTime(src) && isDuration(dst):
					pass.Reportf(n.Pos(),
						"conversion of sim.Time (simulated picoseconds) to time.Duration (wall-clock nanoseconds): units differ by 1000x; convert through an explicit int64 picosecond count")
				case isDuration(src) && isSimTime(dst):
					pass.Reportf(n.Pos(),
						"conversion of time.Duration (wall-clock nanoseconds) to sim.Time (simulated picoseconds): units differ by 1000x; convert through an explicit int64 picosecond count")
				}
			case *ast.BinaryExpr:
				x, y := pass.Info.TypeOf(n.X), pass.Info.TypeOf(n.Y)
				if (isSimTime(x) && isDuration(y)) || (isDuration(x) && isSimTime(y)) {
					pass.Reportf(n.Pos(),
						"arithmetic mixing sim.Time ticks and time.Duration: the operands are in different units (ps vs ns)")
				}
			}
			return true
		})
	}
}
