package lint

import (
	"go/ast"
	"go/types"
)

const obsPkgPath = "camps/internal/obs"

// StatsReg flags obs metrics (counters, gauges, histograms) that are
// constructed directly — &obs.Counter{}, obs.NewHistogram() — and then
// only ever observed locally, never registered with a Registry, passed
// on, stored, or returned. Such a metric silently records into a value
// nothing will ever snapshot, which is how an instrumented subsystem
// drops out of the epoch tables without anyone noticing. Obtain handles
// from Registry.Counter/Gauge/Histogram instead, or register a reader
// via CounterFunc/GaugeFunc.
var StatsReg = &Analyzer{
	Name:  "statsreg",
	Doc:   "flag obs metrics never registered and registry names that are not compile-time constants",
	Allow: "unregistered",
	Run:   runStatsReg,
}

func runStatsReg(pass *Pass) {
	if pass.Pkg.Path() == obsPkgPath {
		return // the registry implementation constructs metrics by design
	}
	for _, f := range pass.Files {
		checkMetricNames(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncMetrics(pass, fd)
		}
	}
}

// registryNameMethods are the Registry lookups whose first argument is a
// metric name.
var registryNameMethods = map[string]bool{
	"Counter":     true,
	"Gauge":       true,
	"Histogram":   true,
	"CounterFunc": true,
	"GaugeFunc":   true,
}

// checkMetricNames flags Registry lookups whose metric name is not a
// compile-time constant. Dynamic names (fmt.Sprintf, variables, loop
// concatenations) make the metric namespace unenumerable — dashboards,
// goldens, and this very lint suite can no longer know the full metric
// set at build time — and additive registration silently merges any
// collision. Every span.*/pf.*/vault.* name in the tree is a literal or
// a named constant; this keeps it that way.
func checkMetricNames(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := funcOf(pass.Info, call.Fun)
		if fn == nil || !registryNameMethods[fn.Name()] {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || !namedType(sig.Recv().Type(), obsPkgPath, "Registry") {
			return true
		}
		if tv, ok := pass.Info.Types[call.Args[0]]; !ok || tv.Value == nil {
			pass.Reportf(call.Args[0].Pos(),
				"metric name passed to Registry.%s is not a compile-time constant: use a string literal or named constant so the metric namespace stays enumerable (or //lint:allow-unregistered <reason>)",
				fn.Name())
		}
		return true
	})
}

// creation is one direct metric construction assigned to a local.
type creation struct {
	obj  types.Object
	kind string
	pos  ast.Expr // the creating expression, for the report position
}

func checkFuncMetrics(pass *Pass, fd *ast.FuncDecl) {
	// Pass 1: find locals whose initializer (or any reassignment) is a
	// direct metric construction.
	created := map[types.Object]*creation{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				kind, ok := metricCreation(pass.Info, rhs)
				if !ok {
					continue
				}
				id, isIdent := n.Lhs[i].(*ast.Ident)
				if !isIdent || id.Name == "_" {
					continue
				}
				if obj := pass.Info.ObjectOf(id); obj != nil {
					if _, seen := created[obj]; !seen {
						created[obj] = &creation{obj: obj, kind: kind, pos: rhs}
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, v := range n.Values {
				kind, ok := metricCreation(pass.Info, v)
				if !ok {
					continue
				}
				if obj := pass.Info.ObjectOf(n.Names[i]); obj != nil {
					if _, seen := created[obj]; !seen {
						created[obj] = &creation{obj: obj, kind: kind, pos: v}
					}
				}
			}
		}
		return true
	})
	if len(created) == 0 {
		return
	}

	// Pass 2: a metric is fine if any use lets it reach a registry or an
	// owner — it is passed as an argument, returned, stored into a
	// structure, or reassigned from a Registry getter. Only metrics whose
	// every use is a local method call (h.Observe, c.Inc) are reported.
	escaped := map[types.Object]bool{}
	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.ObjectOf(id)
		c, tracked := created[obj]
		if !tracked || escaped[obj] {
			return true
		}
		if classifyMetricUse(pass.Info, id, c, stack) {
			escaped[obj] = true
		}
		return true
	})

	for _, c := range created {
		if !escaped[c.obj] {
			pass.Reportf(c.pos.Pos(),
				"obs.%s created but never registered: nothing will snapshot it; obtain it from a Registry (%s) or register a reader via %sFunc (or //lint:allow-unregistered <reason>)",
				c.kind, registryGetter(c.kind), readerFunc(c.kind))
		}
	}
}

// classifyMetricUse reports whether this use of a tracked metric lets it
// escape to an owner (true) or keeps it local (false).
func classifyMetricUse(info *types.Info, id *ast.Ident, c *creation, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X != id {
			return false
		}
		// x.Method(...) stays local; x.Method used as a value (e.g. passed
		// to CounterFunc) escapes.
		if len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == p {
				return false
			}
		}
		return true
	case *ast.AssignStmt:
		for i, lhs := range p.Lhs {
			if lhs != id {
				continue
			}
			if len(p.Lhs) != len(p.Rhs) {
				return true
			}
			rhs := p.Rhs[i]
			if rhs == c.pos {
				return false // the creation itself
			}
			if _, isCreation := metricCreation(info, rhs); isCreation {
				return false // reassigned to another raw construction: still unregistered
			}
			// Reassigned from anything else — typically a Registry getter
			// (the conditional-instrumentation idiom) — counts as owned.
			return true
		}
		return true // appears on the RHS: flows somewhere else
	case *ast.ValueSpec:
		for i := range p.Names {
			if p.Names[i] == id && i < len(p.Values) && p.Values[i] == c.pos {
				return false
			}
		}
		return true
	default:
		// Call argument, return value, composite literal element, map/slice
		// store, channel send, comparison, &x, ...: the metric reaches code
		// that can register or own it.
		return true
	}
}

// metricCreation reports whether e directly constructs an obs metric,
// and which kind.
func metricCreation(info *types.Info, e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.CallExpr:
		if fn := funcOf(info, e.Fun); isPkgFunc(fn, obsPkgPath, "NewHistogram") {
			return "Histogram", true
		}
		if id, ok := e.Fun.(*ast.Ident); ok && len(e.Args) == 1 {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
				if k, ok := metricTypeName(info.TypeOf(e.Args[0])); ok {
					return k, true
				}
			}
		}
	case *ast.UnaryExpr:
		if cl, ok := e.X.(*ast.CompositeLit); ok {
			return compositeMetric(info, cl)
		}
	case *ast.CompositeLit:
		return compositeMetric(info, e)
	}
	return "", false
}

func compositeMetric(info *types.Info, cl *ast.CompositeLit) (string, bool) {
	return metricTypeName(info.TypeOf(cl))
}

func metricTypeName(t types.Type) (string, bool) {
	for _, k := range [...]string{"Counter", "Gauge", "Histogram"} {
		if t != nil && namedType(t, obsPkgPath, k) {
			return k, true
		}
	}
	return "", false
}

func registryGetter(kind string) string {
	return "r." + kind + `("name")`
}

func readerFunc(kind string) string {
	if kind == "Gauge" {
		return "Gauge"
	}
	return "Counter"
}
