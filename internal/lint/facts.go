package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// factVersion invalidates every cached summary when the facts schema or
// the summarize walk changes. Bump it whenever either does.
const factVersion = 1

// FactCache is the content-addressed on-disk store for package
// summaries. A package's cache key folds in the facts schema version,
// its own source bytes, and — recursively — the keys of every module
// package it imports, so a summary is reused only when nothing in the
// package's compilation closure changed. Every failure mode (unreadable
// dir, corrupt entry, permission error) degrades to a cache miss: the
// cache can make campslint faster, never wrong.
type FactCache struct {
	dir string
}

// OpenFactCache returns a cache rooted at dir, creating it if needed.
// An empty dir (or an uncreatable one) yields a disabled cache whose
// every lookup misses.
func OpenFactCache(dir string) *FactCache {
	if dir == "" {
		return &FactCache{}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return &FactCache{}
	}
	return &FactCache{dir: dir}
}

// DefaultFactCacheDir is where campslint caches summaries unless
// overridden: <user cache dir>/campslint ("" when no cache dir exists,
// disabling the cache).
func DefaultFactCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "campslint")
}

// Enabled reports whether the cache is backed by a directory.
func (c *FactCache) Enabled() bool { return c.dir != "" }

// Load returns the summary cached under key, or nil on any miss.
func (c *FactCache) Load(key string) *PackageSummary {
	if c.dir == "" {
		return nil
	}
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil {
		return nil
	}
	var s PackageSummary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil
	}
	return &s
}

// Store writes a summary under key (atomically: temp file + rename, so
// a concurrent reader never sees a torn entry). Errors are returned for
// tests but callers may ignore them — a failed store is a future miss.
func (c *FactCache) Store(key string, s *PackageSummary) error {
	if c.dir == "" {
		return nil
	}
	data, err := json.Marshal(s)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(c.dir, key+".json"))
}

// summaryKeys computes the content-addressed cache key of every package
// in the program. Keys are built in dependency order so each package
// can fold in the keys of its module imports: a change anywhere in a
// package's closure changes its key.
func summaryKeys(prog *Program) map[string]string {
	keys := make(map[string]string, len(prog.Pkgs))
	for _, pkg := range prog.Pkgs {
		h := sha256.New()
		fmt.Fprintf(h, "campslint-facts:%d\n", factVersion)
		fmt.Fprintf(h, "pkg:%s\nsrc:%s\n", pkg.Path, pkg.SrcHash)
		var deps []string
		for _, imp := range pkg.Types.Imports() {
			if dk, ok := keys[imp.Path()]; ok {
				deps = append(deps, imp.Path()+"="+dk)
			}
		}
		sort.Strings(deps)
		for _, d := range deps {
			fmt.Fprintf(h, "dep:%s\n", d)
		}
		keys[pkg.Path] = hex.EncodeToString(h.Sum(nil))
	}
	return keys
}

// SummarySet holds the facts of every package in a program, plus how
// many were served from the cache (for -timing output and tests).
type SummarySet struct {
	ByPkg  map[string]*PackageSummary
	Hits   int
	Misses int

	funcs map[string]*FuncSummary // symbol index over every package
}

// Summarize computes (or loads) the summary of every package in the
// program. cache may be nil or disabled.
func Summarize(prog *Program, cache *FactCache) *SummarySet {
	if cache == nil {
		cache = &FactCache{}
	}
	keys := summaryKeys(prog)
	set := &SummarySet{ByPkg: make(map[string]*PackageSummary, len(prog.Pkgs))}
	for _, pkg := range prog.Pkgs {
		key := keys[pkg.Path]
		if s := cache.Load(key); s != nil && s.Package == pkg.Path {
			set.ByPkg[pkg.Path] = s
			set.Hits++
			continue
		}
		s := summarize(pkg)
		set.ByPkg[pkg.Path] = s
		set.Misses++
		cache.Store(key, s) //nolint:errcheck // a failed store is a future miss
	}
	set.funcs = make(map[string]*FuncSummary)
	for _, ps := range set.ByPkg {
		for i := range ps.Funcs {
			set.funcs[ps.Funcs[i].Sym] = &ps.Funcs[i]
		}
	}
	return set
}

// Func returns the summary of one function symbol, or nil.
func (s *SummarySet) Func(sym string) *FuncSummary {
	return s.funcs[sym]
}
