package lint

import (
	"path/filepath"
	"testing"
)

// TestLoadProgramSharedObjectIdentity pins the property the facts layer
// and the call graph stand on: every module package in the closure is
// type-checked from source into ONE *types.Package, so an object seen
// at a call site in one package is the same object as its definition in
// another.
func TestLoadProgramSharedObjectIdentity(t *testing.T) {
	prog, err := LoadProgram(filepath.Join("..", ".."), []string{"./internal/vault"})
	if err != nil {
		t.Fatal(err)
	}
	vault := prog.ByPath["camps/internal/vault"]
	if vault == nil {
		t.Fatal("vault package not loaded")
	}
	if !vault.Target {
		t.Error("matched package should be a target")
	}
	pf := prog.ByPath["camps/internal/prefetch"]
	if pf == nil {
		t.Fatal("dependency camps/internal/prefetch not in the program closure")
	}
	if pf.Target {
		t.Error("dependency-only package should not be a target")
	}

	found := false
	for _, imp := range vault.Types.Imports() {
		if imp.Path() == "camps/internal/prefetch" {
			found = true
			if imp != pf.Types {
				t.Error("vault imports a different *types.Package than the source-checked prefetch: object identity is broken")
			}
		}
	}
	if !found {
		t.Error("vault should import camps/internal/prefetch")
	}

	targets := prog.Targets()
	if len(targets) != 1 || targets[0].Path != "camps/internal/vault" {
		t.Errorf("Targets() = %v, want exactly camps/internal/vault", targets)
	}

	idx := make(map[string]int)
	for i, p := range prog.Pkgs {
		idx[p.Path] = i
	}
	if idx["camps/internal/prefetch"] > idx["camps/internal/vault"] {
		t.Error("Pkgs not in dependency order: prefetch must precede vault")
	}

	for _, p := range prog.Pkgs {
		if p.SrcHash == "" {
			t.Errorf("package %s has no SrcHash", p.Path)
		}
	}
}

// TestProgramSuppression pins the program-wide directive index: a
// reasoned directive in a dependency package suppresses at its line and
// the line below, nowhere else.
func TestProgramSuppression(t *testing.T) {
	prog := loadTestProgram(t, filepath.Join("testdata", "prog", "detflow", "src"))
	util := prog.ByPath["camps/internal/util"]
	if util == nil {
		t.Fatal("util package not loaded")
	}
	// The allow-wallclock directive sits on the time.Now line inside
	// Allowed; find it through the package's own directives.
	dirs := parseDirectives(util.Fset, util.Files)
	if len(dirs) != 1 || dirs[0].name != "wallclock" {
		t.Fatalf("want exactly one wallclock directive in util, got %v", dirs)
	}
	pos := util.Fset.Position(dirs[0].pos)
	if !prog.suppressedAt(pos, "wallclock") {
		t.Error("directive line should be suppressed for its own name")
	}
	if !prog.suppressedAt(pos, "detflow", "wallclock") {
		t.Error("suppression should hold for any of the queried names")
	}
	if prog.suppressedAt(pos, "detflow") {
		t.Error("a wallclock directive must not suppress detflow alone")
	}
	two := pos
	two.Line += 2
	if prog.suppressedAt(two, "wallclock") {
		t.Error("suppression must not reach two lines below the directive")
	}
}
