// Package lint is campslint: a suite of static analyzers that enforce
// the simulator's determinism and concurrency invariants at build time.
//
// The checkpoint/resume store (internal/exp) asserts that a restored
// Results is bit-identical to a fresh run, and the paper's scheme
// comparisons are only meaningful if every scheme sees an identical
// event stream. Those invariants — no wall clock or global RNG in
// simulation code, no map-iteration order leaking into results, context
// threaded through every run path — used to live only in reviewers'
// heads. This package encodes them as compiler-checked rules.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, testdata with "want" comments) but is
// built on the standard library alone: packages are loaded with
// `go list -export` and type-checked with go/types, importing
// dependencies from the build cache's export data (see load.go). The
// repository has no third-party dependencies and the lint layer keeps it
// that way.
//
// Findings are suppressed with a directive comment carrying a mandatory
// reason, e.g.
//
//	t0 := time.Now() //lint:allow-wallclock coarse progress logging only
//
// A directive applies to its own line and the line directly below it; a
// directive without a reason is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Exactly one of Run (a
// per-package check) and RunProgram (a whole-program check over the
// facts layer and call graph) is set.
type Analyzer struct {
	// Name identifies the analyzer in output and in the -only flag.
	Name string
	// Doc is a one-line description shown by -list.
	Doc string
	// Allow is the directive suffix that suppresses this analyzer's
	// findings: //lint:allow-<Allow> <reason>.
	Allow string
	// Run reports findings on one package through pass.Reportf.
	Run func(pass *Pass)
	// RunProgram reports findings across the whole program through
	// pass.Report; it sees every module package via the summaries and
	// the call graph.
	RunProgram func(pass *ProgramPass)
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass carries the whole program through one whole-program
// analyzer: the loaded packages, their summaries (facts), and the call
// graph joining them.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program
	Sums     *SummarySet
	Graph    *CallGraph

	diags []Diagnostic
}

// Report records a finding at an already-resolved position (facts carry
// token.Position, not token.Pos — they survive serialization).
func (p *ProgramPass) Report(pos token.Position, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunProgramAnalyzer applies one whole-program analyzer and returns its
// findings with directives applied program-wide: a reasoned
// //lint:allow-<name> next to a finding suppresses it even when the
// finding sits in a dependency package, and a reasonless directive in a
// target package is itself a finding.
func RunProgramAnalyzer(a *Analyzer, prog *Program, sums *SummarySet, graph *CallGraph) []Diagnostic {
	pass := &ProgramPass{Analyzer: a, Prog: prog, Sums: sums, Graph: graph}
	a.RunProgram(pass)

	var out []Diagnostic
	for _, d := range pass.diags {
		if !prog.suppressedAt(d.Pos, a.Allow) {
			out = append(out, d)
		}
	}
	for _, pkg := range prog.Targets() {
		for _, dir := range parseDirectives(pkg.Fset, pkg.Files) {
			if dir.name == a.Allow && dir.reason == "" {
				out = append(out, Diagnostic{
					Pos:      pkg.Fset.Position(dir.pos),
					Analyzer: a.Name,
					Message: fmt.Sprintf("lint:allow-%s directive needs a reason: //lint:allow-%s <why this is safe>",
						a.Allow, a.Allow),
				})
			}
		}
	}
	sortDiagnostics(out)
	return out
}

// directive is one parsed //lint:allow-<name> <reason> comment.
type directive struct {
	name   string
	reason string
	file   string
	line   int
	pos    token.Pos
}

const directivePrefix = "//lint:allow-"

// parseDirectives extracts every lint directive from the package's
// comments. The reason is cut at any nested "//" so that a trailing
// comment (such as a test's want clause) is not mistaken for a reason.
func parseDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := c.Text[len(directivePrefix):]
				name, reason, _ := strings.Cut(rest, " ")
				if i := strings.Index(reason, "//"); i >= 0 {
					reason = reason[:i]
				}
				pos := fset.Position(c.Pos())
				out = append(out, directive{
					name:   name,
					reason: strings.TrimSpace(reason),
					file:   pos.Filename,
					line:   pos.Line,
					pos:    c.Pos(),
				})
			}
		}
	}
	return out
}

// RunAnalyzer applies one analyzer to one loaded package and returns its
// findings with directives applied: suppressed findings are dropped, and
// a directive for this analyzer that lacks a reason is reported.
func RunAnalyzer(a *Analyzer, pkg *Package) []Diagnostic {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	a.Run(pass)

	dirs := parseDirectives(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, d := range pass.diags {
		suppressed := false
		for _, dir := range dirs {
			if dir.name == a.Allow && dir.reason != "" && dir.file == d.Pos.Filename &&
				(d.Pos.Line == dir.line || d.Pos.Line == dir.line+1) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, dir := range dirs {
		if dir.name == a.Allow && dir.reason == "" {
			out = append(out, Diagnostic{
				Pos:      pkg.Fset.Position(dir.pos),
				Analyzer: a.Name,
				Message: fmt.Sprintf("lint:allow-%s directive needs a reason: //lint:allow-%s <why this is safe>",
					a.Allow, a.Allow),
			})
		}
	}
	sortDiagnostics(out)
	return out
}

// CheckDirectives reports directives whose name matches no analyzer, so
// a typo like //lint:allow-wallclok cannot silently suppress nothing.
func CheckDirectives(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		known[a.Allow] = true
		names = append(names, "allow-"+a.Allow)
	}
	sort.Strings(names)
	var out []Diagnostic
	for _, dir := range parseDirectives(pkg.Fset, pkg.Files) {
		if !known[dir.name] {
			out = append(out, Diagnostic{
				Pos:      pkg.Fset.Position(dir.pos),
				Analyzer: "campslint",
				Message: fmt.Sprintf("unknown directive lint:allow-%s (known directives: %s)",
					dir.name, strings.Join(names, ", ")),
			})
		}
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// inspectStack walks root depth-first, calling fn with every node and the
// stack of its ancestors (outermost first, root excluded from its own
// stack). Returning false skips the node's children.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// enclosingFunc returns the innermost function declaration or literal on
// the stack, or nil.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// funcOf resolves a call-ish expression to the package-level or method
// *types.Func it refers to, or nil.
func funcOf(info *types.Info, e ast.Expr) *types.Func {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function path.name
// (methods never match).
func isPkgFunc(fn *types.Func, path, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == path && fn.Name() == name
}

// namedType reports whether t (after pointer indirection) is the named
// type path.name.
func namedType(t types.Type, path, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}
