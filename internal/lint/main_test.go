package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for end-to-end CLI runs.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runMain(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = Main(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestMainUsageErrors(t *testing.T) {
	if code, _, _ := runMain("-definitely-not-a-flag"); code != ExitUsage {
		t.Errorf("unknown flag: exit = %d, want %d", code, ExitUsage)
	}
	code, _, stderr := runMain("-only", "bogus")
	if code != ExitUsage {
		t.Errorf("unknown analyzer: exit = %d, want %d", code, ExitUsage)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("stderr should name the unknown analyzer, got %q", stderr)
	}
	if code, _, _ := runMain("-only", ","); code != ExitUsage {
		t.Errorf("empty -only selection: exit = %d, want %d", code, ExitUsage)
	}
	// A directory that is not a module: go list fails, which is a usage
	// error, not a finding.
	if code, _, _ := runMain("-C", t.TempDir(), "./..."); code != ExitUsage {
		t.Errorf("unloadable packages: exit = %d, want %d", code, ExitUsage)
	}
}

func TestMainListAndVersion(t *testing.T) {
	code, stdout, _ := runMain("-list")
	if code != ExitClean {
		t.Fatalf("-list: exit = %d, want %d", code, ExitClean)
	}
	for _, a := range All() {
		if !strings.Contains(stdout, a.Name) || !strings.Contains(stdout, "allow-"+a.Allow) {
			t.Errorf("-list output missing analyzer %s / its directive:\n%s", a.Name, stdout)
		}
	}
	code, stdout, _ = runMain("-version")
	if code != ExitClean || !strings.Contains(stdout, "campslint") {
		t.Errorf("-version: exit = %d, stdout = %q", code, stdout)
	}
}

func TestMainCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":   "module scratch\n\ngo 1.22\n",
		"pkg/a.go": "package pkg\n\nfunc F() int { return 1 }\n",
	})
	code, stdout, stderr := runMain("-C", dir, "./...")
	if code != ExitClean {
		t.Fatalf("clean module: exit = %d, want %d\nstdout: %s\nstderr: %s", code, ExitClean, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean module should print nothing, got %q", stdout)
	}
}

func TestMainFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"pkg/a.go": `package pkg

import "fmt"

func Dump(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}
`,
	})
	code, stdout, stderr := runMain("-C", dir, "./...")
	if code != ExitFindings {
		t.Fatalf("module with violation: exit = %d, want %d\nstderr: %s", code, ExitFindings, stderr)
	}
	if !strings.Contains(stdout, "[maporder]") || !strings.Contains(stdout, "a.go:7:") {
		t.Errorf("finding should be attributed to maporder at pkg/a.go:7, got:\n%s", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr should summarize the findings, got %q", stderr)
	}

	// -only restricted to an analyzer that has nothing to say here exits
	// clean: selection is honored.
	code, stdout, _ = runMain("-C", dir, "-only", "tickarith", "./...")
	if code != ExitClean || stdout != "" {
		t.Errorf("-only tickarith: exit = %d, stdout = %q; want clean and empty", code, stdout)
	}
}

func TestMainPositionalAnalyzerSelection(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"pkg/a.go": `package pkg

import "fmt"

func Dump(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}
`,
	})
	// Selection rides as the first positional argument; maporder excluded
	// means the violation stays silent.
	code, stdout, stderr := runMain("-C", dir, "tickarith,statsreg", "./...")
	if code != ExitClean || stdout != "" {
		t.Errorf("positional selection without maporder: exit = %d, stdout = %q, stderr = %q", code, stdout, stderr)
	}
	code, stdout, _ = runMain("-C", dir, "maporder", "./...")
	if code != ExitFindings || !strings.Contains(stdout, "[maporder]") {
		t.Errorf("positional maporder: exit = %d, stdout = %q", code, stdout)
	}
	// A positional list with an unknown name is a package pattern, not a
	// selection — go list then fails on it.
	if code, _, _ := runMain("-C", dir, "maporder,bogus", "./..."); code != ExitUsage {
		t.Errorf("mixed known/unknown positional list should fall through to go list: exit = %d", code)
	}
}

func TestMainTiming(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":   "module scratch\n\ngo 1.22\n",
		"pkg/a.go": "package pkg\n\nfunc F() int { return 1 }\n",
	})
	code, _, stderr := runMain("-C", dir, "-timing", "-fact-cache", "off", "./...")
	if code != ExitClean {
		t.Fatalf("-timing run: exit = %d, stderr = %s", code, stderr)
	}
	for _, want := range []string{"campslint: load", "facts+callgraph", "shardsafe", "maporder"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("-timing stderr missing %q:\n%s", want, stderr)
		}
	}
}

func TestMainAllowBudget(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"pkg/a.go": `package pkg

//lint:allow-noctx scratch helper, caller threads ctx
func F() int { return 1 }
`,
		".campslint-budget": "# directive-name count\nnoctx 1\n",
	})
	code, _, stderr := runMain("-C", dir, "-allow-budget", "./...")
	if code != ExitClean {
		t.Fatalf("directive within budget: exit = %d, stderr = %s", code, stderr)
	}

	// Ratchet the baseline down: the same directive now exceeds it.
	if err := os.WriteFile(filepath.Join(dir, ".campslint-budget"), []byte("noctx 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runMain("-C", dir, "-allow-budget", "./...")
	if code != ExitFindings || !strings.Contains(stderr, "allow budget exceeded") {
		t.Errorf("directive over budget: exit = %d, stderr = %q", code, stderr)
	}

	// A missing baseline file is a usage error, not silent success.
	if err := os.Remove(filepath.Join(dir, ".campslint-budget")); err != nil {
		t.Fatal(err)
	}
	if code, _, _ = runMain("-C", dir, "-allow-budget", "./..."); code != ExitUsage {
		t.Errorf("missing baseline: exit = %d, want %d", code, ExitUsage)
	}
}

// TestMainRealTree is the acceptance gate: the repository itself must be
// campslint-clean.
func TestMainRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module lint in -short mode")
	}
	code, stdout, stderr := runMain("-C", filepath.Join("..", ".."), "-allow-budget", "./...")
	if code != ExitClean {
		t.Fatalf("campslint -allow-budget ./... on the repository: exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, ExitClean, stdout, stderr)
	}
}
