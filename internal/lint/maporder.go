package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags range statements over maps whose iteration order can
// leak into program output: bodies that append to a slice declared
// outside the loop (unless the slice is sorted later in the same
// function), write to an io.Writer or process stdout, or feed report
// tables. Map-to-map transforms, aggregations, and sorted-afterwards key
// collection are all fine.
var MapOrder = &Analyzer{
	Name:  "maporder",
	Doc:   "flag map iteration whose order leaks into slices, writers, or report output",
	Allow: "maporder",
	Run:   runMapOrder,
}

// ioWriterIface is a structural io.Writer, built locally so the analyzer
// does not depend on the analyzed package importing io.
var ioWriterIface = func() *types.Interface {
	params := types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte])))
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	iface := types.NewInterfaceType([]*types.Func{types.NewFunc(token.NoPos, nil, "Write", sig)}, nil)
	iface.Complete()
	return iface
}()

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.Info.TypeOf(rs.X); t == nil {
				return true
			} else if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rs, enclosingFunc(stack))
			return true
		})
	}
}

func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, fn ast.Node) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.Info, call) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.Info.ObjectOf(id)
				if obj == nil || obj.Pos() == token.NoPos {
					continue
				}
				// Targets declared inside the loop body vanish each
				// iteration; only appends that outlive the loop carry its
				// order out.
				if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
					continue
				}
				if sortedAfter(pass.Info, fn, rs, obj) {
					continue
				}
				pass.Reportf(n.Pos(),
					"appends to %s while ranging over a map: iteration order is randomized and leaks into the slice; sort %s afterwards or iterate sorted keys",
					id.Name, id.Name)
			}
		case *ast.CallExpr:
			reportOrderedSink(pass, n)
		}
		return true
	})
}

// reportOrderedSink flags calls inside a map-range body whose effect is
// ordered output: io.Writer writes, stdout prints, JSON encoding, or
// report-table rows.
func reportOrderedSink(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() == nil {
		switch {
		case fn.Pkg().Path() == "fmt" && (fn.Name() == "Fprint" || fn.Name() == "Fprintf" || fn.Name() == "Fprintln"):
			pass.Reportf(call.Pos(),
				"fmt.%s inside range over a map: output order is nondeterministic; collect and sort keys first", fn.Name())
		case fn.Pkg().Path() == "fmt" && (fn.Name() == "Print" || fn.Name() == "Printf" || fn.Name() == "Println"):
			pass.Reportf(call.Pos(),
				"fmt.%s inside range over a map: stdout order is nondeterministic; collect and sort keys first", fn.Name())
		case fn.Pkg().Path() == "io" && fn.Name() == "WriteString":
			pass.Reportf(call.Pos(),
				"io.WriteString inside range over a map: output order is nondeterministic; collect and sort keys first")
		}
		return
	}
	// Method calls: writes on anything io.Writer-shaped, JSON encoding,
	// and stats.Table rows.
	recv := pass.Info.TypeOf(sel.X)
	if recv == nil {
		return
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		if implementsWriter(recv) {
			pass.Reportf(call.Pos(),
				"%s.%s inside range over a map: write order is nondeterministic; collect and sort keys first",
				types.TypeString(recv, types.RelativeTo(pass.Pkg)), fn.Name())
		}
	case "Encode":
		if namedType(recv, "encoding/json", "Encoder") {
			pass.Reportf(call.Pos(),
				"json.Encoder.Encode inside range over a map: record order is nondeterministic; collect and sort keys first")
		}
	case "AddRow":
		if namedType(recv, "camps/internal/stats", "Table") {
			pass.Reportf(call.Pos(),
				"stats.Table.AddRow inside range over a map: report row order is nondeterministic; iterate sorted keys")
		}
	}
}

func implementsWriter(t types.Type) bool {
	if types.Implements(t, ioWriterIface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), ioWriterIface)
	}
	return false
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether, later in the same function, obj is passed
// to a sort or slices call — the collect-then-sort idiom that makes the
// map-range append deterministic.
func sortedAfter(info *types.Info, fn ast.Node, rs *ast.RangeStmt, obj types.Object) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		cf := funcOf(info, call.Fun)
		if cf == nil || cf.Pkg() == nil {
			return true
		}
		if p := cf.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(info, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func mentionsObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
