package lint

import (
	"fmt"
	"path/filepath"
	"strings"
)

// DetFlow is the interprocedural complement to simdeterminism: that
// analyzer flags wall-clock and global-RNG use *written in* a
// simulation package, but a helper one call away — possibly in another
// package — can hide the same source, and nothing syntactic will see
// it. DetFlow propagates nondeterministic-source facts (wall-clock
// reads, global math/rand, map-iteration order escaping through an
// unsorted return, goroutine-ordering-dependent selects) bottom-up
// along the whole-program call graph, then reports every call site
// where a simulation package invokes a non-simulation module function
// that is transitively tainted, naming the chain down to the root
// source. Within simulation packages the source itself is already
// flagged (by simdeterminism, or by the boundary call site of the
// helper's own package), so only boundary crossings are reported — a
// suppressed source (//lint:allow-wallclock with a reason) suppresses
// the whole downstream cascade.
var DetFlow = &Analyzer{
	Name:       "detflow",
	Doc:        "propagate nondeterminism taint along the call graph into simulation packages",
	Allow:      "detflow",
	RunProgram: runDetFlow,
}

// taintInfo records why a function is nondeterministic: the root source
// and the next symbol on the path toward it ("" when the source is in
// the function itself).
type taintInfo struct {
	src NondetSource
	via string
}

// revEdge is one reversed call edge for bottom-up propagation.
type revEdge struct{ caller string }

func runDetFlow(pass *ProgramPass) {
	// Deterministic function order: program package order, then
	// declaration order within each package.
	var all []*FuncSummary
	for _, pkg := range pass.Prog.Pkgs {
		ps := pass.Sums.ByPkg[pkg.Path]
		for i := range ps.Funcs {
			all = append(all, &ps.Funcs[i])
		}
	}

	callers := make(map[string][]revEdge)
	for _, fn := range all {
		for _, c := range fn.Calls {
			for _, callee := range pass.Graph.callees(c) {
				callers[callee] = append(callers[callee], revEdge{caller: fn.Sym})
			}
		}
	}

	// Seed with direct sources, honoring suppressions at the source:
	// an allowed wall-clock read (reasoned directive) must not taint
	// its callers.
	taints := make(map[string]*taintInfo)
	var queue []string
	for _, fn := range all {
		for _, src := range fn.Sources {
			if pass.Prog.suppressedAt(src.Pos, "detflow", "wallclock", "maporder") {
				continue
			}
			if taints[fn.Sym] == nil {
				taints[fn.Sym] = &taintInfo{src: src}
				queue = append(queue, fn.Sym)
			}
		}
	}
	for len(queue) > 0 {
		sym := queue[0]
		queue = queue[1:]
		for _, e := range callers[sym] {
			if taints[e.caller] == nil {
				taints[e.caller] = &taintInfo{src: taints[sym].src, via: sym}
				queue = append(queue, e.caller)
			}
		}
	}

	// Report boundary crossings: simulation package → tainted module
	// function outside the simulation set.
	for _, fn := range all {
		if !simPackages[fn.Pkg] {
			continue
		}
		for _, c := range fn.Calls {
			for _, callee := range pass.Graph.callees(c) {
				t := taints[callee]
				if t == nil {
					continue
				}
				cf := pass.Sums.Func(callee)
				if cf == nil || simPackages[cf.Pkg] {
					continue // stdlib, or flagged in its own package
				}
				pass.Report(c.Pos,
					"call from simulation package %s reaches a nondeterminism source: %s; hoist the source out of the simulation path or seed it explicitly (or //lint:allow-detflow <reason>)",
					fn.Pkg, nondetChain(taints, callee))
				break // one report per call site, even with several tainted impls
			}
		}
	}
}

// nondetChain renders the taint path from sym down to its root source,
// e.g. "campstat.Stamp → time.Now (wall clock) at clock.go:12".
func nondetChain(taints map[string]*taintInfo, sym string) string {
	parts := []string{shortSym(sym)}
	t := taints[sym]
	for t.via != "" {
		parts = append(parts, shortSym(t.via))
		t = taints[t.via]
	}
	return strings.Join(parts, " → ") + " → " + describeSource(t.src)
}

var sourceKindLabel = map[string]string{
	"wallclock":       "wall clock",
	"globalrand":      "process-global RNG",
	"maporder":        "map-iteration order",
	"goroutine-order": "goroutine scheduling order",
}

func describeSource(src NondetSource) string {
	label := sourceKindLabel[src.Kind]
	if label == "" {
		label = src.Kind
	}
	return fmt.Sprintf("%s (%s) at %s:%d", src.Detail, label, filepath.Base(src.Pos.Filename), src.Pos.Line)
}
