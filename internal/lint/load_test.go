package lint

import (
	"path/filepath"
	"testing"
)

func TestLoadPackagesTypeChecksFromSource(t *testing.T) {
	pkgs, err := LoadPackages(filepath.Join("..", ".."), []string{"./internal/obs"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "camps/internal/obs" {
		t.Errorf("Path = %q, want camps/internal/obs", p.Path)
	}
	if len(p.Files) == 0 {
		t.Error("no syntax trees loaded")
	}
	if p.Types == nil || p.Types.Scope().Lookup("Registry") == nil {
		t.Error("type information missing: obs.Registry not in package scope")
	}
	if len(p.Info.Defs) == 0 || len(p.Info.Uses) == 0 {
		t.Error("types.Info not populated")
	}
}

func TestLoadPackagesBadPattern(t *testing.T) {
	if _, err := LoadPackages(filepath.Join("..", ".."), []string{"./does/not/exist"}); err == nil {
		t.Fatal("expected an error for a nonexistent package pattern")
	}
}
