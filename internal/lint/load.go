package lint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one type-checked package under analysis. LoadProgram
// produces these from the build system; tests construct them directly
// from testdata sources.
type Package struct {
	// Path is the package's import path; the package-scoped analyzers
	// (simdeterminism, ctxthread) select on it.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Target marks packages matched by the load patterns. Dependencies
	// inside the module are type-checked from source too (so facts and
	// call-graph edges cross package boundaries with one shared object
	// identity), but diagnostics are only reported in target packages.
	Target bool

	// SrcHash is a content hash over the package's source files, the
	// leaf input of the fact cache's content-addressed keys.
	SrcHash string
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// LoadPackages loads, parses, and type-checks every package matching
// patterns, resolving go commands relative to dir ("" = current
// directory). It returns only the packages matched by the patterns; use
// LoadProgram when whole-program facts or the call graph are needed.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	prog, err := LoadProgram(dir, patterns)
	if err != nil {
		return nil, err
	}
	return prog.Targets(), nil
}

// LoadProgram loads, parses, and type-checks the whole program reached
// from the packages matching patterns, resolving go commands relative to
// dir ("" = current directory). It shells out to `go list -export -json
// -deps` exactly once per call — the single build-system round trip of a
// campslint run — which compiles the module and yields export data for
// the standard library. Every module package in the dependency closure
// (not just the matched ones) is then type-checked from source in
// dependency order, importing module dependencies from the freshly
// checked packages and the standard library from export data. Sharing
// one FileSet and one types.Package per path gives cross-package object
// identity: a *types.Func seen at a call site in one package is the same
// object as its definition in another, which is what the facts layer and
// the call graph key on. Only the standard library and the current
// module are involved — no external tooling.
func LoadProgram(dir string, patterns []string) (*Program, error) {
	args := append([]string{
		"list", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Error",
		"-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list %s: %s", strings.Join(patterns, " "), msg)
	}

	exports := make(map[string]string)
	// `go list -deps` emits packages in dependency order (a package
	// always follows its dependencies), so checking module packages in
	// stream order guarantees every module import is already checked.
	var module []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if derr := dec.Decode(&p); errors.Is(derr, io.EOF) {
			break
		} else if derr != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", derr)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			module = append(module, p)
		}
	}

	fset := token.NewFileSet()
	byPath := make(map[string]*Package, len(module))
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	imp := &programImporter{gc: gc, byPath: byPath}

	prog := &Program{Fset: fset, ByPath: byPath}
	for _, t := range module {
		files := make([]*ast.File, 0, len(t.GoFiles))
		hash := sha256.New()
		fmt.Fprintf(hash, "go:%s\npkg:%s\n", runtime.Version(), t.ImportPath)
		for _, name := range t.GoFiles {
			path := filepath.Join(t.Dir, name)
			src, rerr := os.ReadFile(path)
			if rerr != nil {
				return nil, fmt.Errorf("reading %s: %w", name, rerr)
			}
			fmt.Fprintf(hash, "file:%s:%d\n", name, len(src))
			hash.Write(src)
			f, perr := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
			if perr != nil {
				return nil, fmt.Errorf("parsing %s: %w", name, perr)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, terr := conf.Check(t.ImportPath, fset, files, info)
		if terr != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, terr)
		}
		pkg := &Package{
			Path:    t.ImportPath,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
			Target:  !t.DepOnly,
			SrcHash: hex.EncodeToString(hash.Sum(nil)),
		}
		byPath[t.ImportPath] = pkg
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	return prog, nil
}

// programImporter resolves imports during LoadProgram: module packages
// come from the already-source-checked set (dependency order guarantees
// they exist), the standard library from export data.
type programImporter struct {
	gc     types.Importer
	byPath map[string]*Package
}

func (pi *programImporter) Import(path string) (*types.Package, error) {
	if p, ok := pi.byPath[path]; ok {
		return p.Types, nil
	}
	return pi.gc.Import(path)
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
