package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package under analysis. LoadPackages
// produces these from the build system; tests construct them directly
// from testdata sources.
type Package struct {
	// Path is the package's import path; the package-scoped analyzers
	// (simdeterminism, ctxthread) select on it.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// LoadPackages loads, parses, and type-checks every package matching
// patterns, resolving go commands relative to dir ("" = current
// directory). It shells out to `go list -export -json -deps`, which
// compiles the module and yields export data for every dependency; the
// matched packages themselves are then re-checked from source so the
// analyzers see syntax trees with full type information. Only the
// standard library and the current module are involved — no external
// tooling.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Error",
		"-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list %s: %s", strings.Join(patterns, " "), msg)
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if derr := dec.Decode(&p); errors.Is(derr, io.EOF) {
			break
		} else if derr != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", derr)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, perr := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if perr != nil {
				return nil, fmt.Errorf("parsing %s: %w", name, perr)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, terr := conf.Check(t.ImportPath, fset, files, info)
		if terr != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, terr)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
