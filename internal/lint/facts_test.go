package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestFactCacheRoundTrip(t *testing.T) {
	root := filepath.Join("testdata", "prog", "detflow", "src")
	prog := loadTestProgram(t, root)
	cache := OpenFactCache(t.TempDir())
	if !cache.Enabled() {
		t.Fatal("cache should be enabled")
	}

	s1 := Summarize(prog, cache)
	if s1.Misses != len(prog.Pkgs) || s1.Hits != 0 {
		t.Fatalf("cold cache: hits=%d misses=%d, want 0/%d", s1.Hits, s1.Misses, len(prog.Pkgs))
	}
	s2 := Summarize(prog, cache)
	if s2.Hits != len(prog.Pkgs) || s2.Misses != 0 {
		t.Fatalf("warm cache: hits=%d misses=%d, want %d/0", s2.Hits, s2.Misses, len(prog.Pkgs))
	}
	if !reflect.DeepEqual(s1.ByPkg, s2.ByPkg) {
		t.Error("cached summaries differ from freshly computed ones")
	}
}

// TestFactCacheInvalidation pins the content-addressed key scheme: a
// package's key folds in its own sources and — transitively — its
// module dependencies', so a change anywhere in the closure invalidates
// every dependent.
func TestFactCacheInvalidation(t *testing.T) {
	prog := loadTestProgram(t, filepath.Join("testdata", "prog", "detflow", "src"))
	base := summaryKeys(prog)
	util := prog.ByPath["camps/internal/util"]
	vault := prog.ByPath["camps/internal/vault"]
	if util == nil || vault == nil {
		t.Fatal("test program missing util or vault")
	}

	origUtil, origVault := util.SrcHash, vault.SrcHash
	util.SrcHash = "changed"
	keys := summaryKeys(prog)
	if keys[util.Path] == base[util.Path] {
		t.Error("changing a package's sources must change its key")
	}
	if keys[vault.Path] == base[vault.Path] {
		t.Error("changing a dependency's sources must change the dependent's key")
	}
	util.SrcHash = origUtil

	vault.SrcHash = "changed"
	keys = summaryKeys(prog)
	if keys[util.Path] != base[util.Path] {
		t.Error("changing a dependent must not change the dependency's key")
	}
	if keys[vault.Path] == base[vault.Path] {
		t.Error("changing a package's own sources must change its key")
	}
	vault.SrcHash = origVault

	if keys := summaryKeys(prog); !reflect.DeepEqual(keys, base) {
		t.Error("keys must be a pure function of the program's hashes")
	}
}

func TestFactCacheDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	cache := OpenFactCache(dir)
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if cache.Load("bad") != nil {
		t.Error("corrupt entry must load as a miss, not an error")
	}
	if cache.Load("absent") != nil {
		t.Error("absent entry must load as a miss")
	}

	off := OpenFactCache("")
	if off.Enabled() {
		t.Error("empty dir must disable the cache")
	}
	if err := off.Store("key", &PackageSummary{Package: "p"}); err != nil {
		t.Errorf("disabled store should be a no-op, got %v", err)
	}
	if off.Load("key") != nil {
		t.Error("disabled cache must always miss")
	}
}
