package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestCallGraphEngineDispatch pins the interface-dispatch resolution on
// the real tree: a vault controller's call to Engine.OnDemandServed
// must fan out to every registered engine implementation, or shardsafe
// and detflow would silently skip the prefetcher zoo.
func TestCallGraphEngineDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module call graph in -short mode")
	}
	prog, err := LoadProgram(filepath.Join("..", ".."), []string{"./internal/vault"})
	if err != nil {
		t.Fatal(err)
	}
	sums := Summarize(prog, nil)
	g := BuildCallGraph(prog, sums)

	const method = "camps/internal/prefetch.(Engine).OnDemandServed"
	impls := g.Impls(method)
	for _, engine := range []string{"(campsEngine)", "(baseEngine)", "(noneEngine)", "(hybridEngine)"} {
		found := false
		for _, impl := range impls {
			if strings.Contains(impl, engine) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Impls(%s) missing %s implementation; got %v", method, engine, impls)
		}
	}

	// And the vault package actually carries an interface call edge to
	// that method, so the dispatch is reachable from shard entry points.
	vault := sums.ByPkg["camps/internal/vault"]
	if vault == nil {
		t.Fatal("no summary for camps/internal/vault")
	}
	edge := false
	for i := range vault.Funcs {
		for _, c := range vault.Funcs[i].Calls {
			if c.Callee == method && c.Iface {
				edge = true
			}
		}
	}
	if !edge {
		t.Errorf("no interface call edge from vault to %s", method)
	}
}

// TestReachableStopPrunesButReaches pins the boundary semantics the
// shardsafe analyzer depends on: a stopped symbol is reached (its own
// facts count) but its callees are not followed.
func TestReachableStopPrunesButReaches(t *testing.T) {
	prog := loadTestProgram(t, filepath.Join("testdata", "prog", "shardsafe", "src"))
	sums := Summarize(prog, nil)
	g := BuildCallGraph(prog, sums)

	reached := g.Reachable([]string{"camps/internal/vault.(Controller).Submit"}, func(sym string) bool {
		return symPkg(sym) == "camps/internal/sim"
	})
	if _, ok := reached["camps/internal/sim.Post"]; !ok {
		t.Error("stopped symbol sim.Post should still be reached")
	}
	if _, ok := reached["camps/internal/tally.Bump"]; !ok {
		t.Error("tally.Bump should be reached through Submit")
	}
	if got := pathTo(reached, "camps/internal/tally.Bump"); got != "vault.(Controller).Submit → tally.Bump" {
		t.Errorf("pathTo = %q", got)
	}
}
