package lint

import (
	"go/types"
	"sort"
	"strings"
)

// CallGraph joins the per-package summaries into one whole-program
// graph. Static calls come straight from the facts; calls through an
// interface method are resolved class-hierarchy-analysis style — every
// named type declared anywhere in the module whose method set satisfies
// the interface contributes its method as a possible callee. That is
// what lets the analyzers see through the prefetch.Engine, sim daemon,
// and instrument-hook indirections: a call to Engine.OnDemandServed
// fans out to every registered engine's implementation.
type CallGraph struct {
	sums *SummarySet
	// impls maps an interface method symbol to the implementing
	// methods' symbols, sorted for deterministic traversal.
	impls map[string][]string
}

// BuildCallGraph indexes interface implementations across every package
// of the program and binds them to the summaries.
func BuildCallGraph(prog *Program, sums *SummarySet) *CallGraph {
	g := &CallGraph{sums: sums, impls: make(map[string][]string)}

	// Collect every named type declared in the module: concrete types
	// are implementation candidates, interface types dispatch targets.
	var concrete []types.Type
	var ifaces []*types.Named
	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				if named.Underlying().(*types.Interface).NumMethods() > 0 {
					ifaces = append(ifaces, named)
				}
			} else {
				concrete = append(concrete, named)
			}
		}
	}

	for _, iface := range ifaces {
		it := iface.Underlying().(*types.Interface)
		for _, t := range concrete {
			// Pointer receivers are in *T's method set; value receivers
			// in both. Checking *T covers either spelling.
			if !types.Implements(t, it) && !types.Implements(types.NewPointer(t), it) {
				continue
			}
			for i := 0; i < it.NumMethods(); i++ {
				m := it.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, m.Pkg(), m.Name())
				impl, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				mSym, iSym := funcSym(m), funcSym(impl)
				if mSym == "" || iSym == "" {
					continue
				}
				g.impls[mSym] = append(g.impls[mSym], iSym)
			}
		}
	}
	for sym, list := range g.impls {
		sort.Strings(list)
		g.impls[sym] = dedupSorted(list)
	}
	return g
}

func dedupSorted(list []string) []string {
	out := list[:0]
	for i, s := range list {
		if i == 0 || s != list[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// Impls returns the implementations of one interface method symbol.
func (g *CallGraph) Impls(ifaceMethod string) []string { return g.impls[ifaceMethod] }

// callees resolves one call site to the function symbols it may reach.
func (g *CallGraph) callees(c CallSite) []string {
	if c.Iface {
		return g.impls[c.Callee]
	}
	return []string{c.Callee}
}

// step records how a function was first reached: from which caller,
// through which call site.
type step struct {
	from string
	site CallSite
}

// Reachable walks the graph breadth-first from the entry symbols and
// returns, for every reached symbol, the step that first reached it
// (entries map to a zero step). stop, when non-nil, prunes the walk:
// a symbol for which stop returns true is still *reached* (its own
// facts count) but its callees are not followed — that is how analyzers
// declare approved boundary interfaces. The walk is deterministic:
// entries are sorted, and call sites expand in summary order.
func (g *CallGraph) Reachable(entries []string, stop func(sym string) bool) map[string]step {
	sorted := append([]string(nil), entries...)
	sort.Strings(sorted)
	reached := make(map[string]step)
	queue := make([]string, 0, len(sorted))
	for _, e := range sorted {
		if _, ok := reached[e]; ok {
			continue
		}
		reached[e] = step{}
		queue = append(queue, e)
	}
	for len(queue) > 0 {
		sym := queue[0]
		queue = queue[1:]
		if stop != nil && stop(sym) {
			continue
		}
		fn := g.sums.Func(sym)
		if fn == nil {
			continue // outside the program (stdlib)
		}
		for _, c := range fn.Calls {
			for _, callee := range g.callees(c) {
				if _, ok := reached[callee]; ok {
					continue
				}
				reached[callee] = step{from: sym, site: c}
				queue = append(queue, callee)
			}
		}
	}
	return reached
}

// pathTo renders the call chain that reached sym, entry-first, e.g.
// "camps/internal/vault.(Controller).Submit → camps/internal/prefetch.Register".
func pathTo(reached map[string]step, sym string) string {
	var chain []string
	for cur := sym; ; {
		chain = append(chain, shortSym(cur))
		st, ok := reached[cur]
		if !ok || st.from == "" {
			break
		}
		cur = st.from
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return strings.Join(chain, " → ")
}

// shortSym trims the module path prefix for readable diagnostics:
// "camps/internal/vault.(Controller).Submit" → "vault.(Controller).Submit".
func shortSym(sym string) string {
	pkg := symPkg(sym)
	short := pkg
	if i := strings.LastIndex(pkg, "/"); i >= 0 {
		short = pkg[i+1:]
	}
	return short + "." + symBase(sym)
}
