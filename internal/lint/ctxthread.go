package lint

import (
	"go/ast"
	"go/types"
)

// ctxPackages are the orchestration layers whose exported API must
// thread context.Context: the public root package and the campaign
// scheduler/harness. Simulation internals are event-driven and
// single-goroutine, so they are exempt; cancellation reaches them
// through sim.NewHaltWatcher instead.
var ctxPackages = map[string]bool{
	"camps":                  true,
	"camps/internal/exp":     true,
	"camps/internal/harness": true,
	"camps/internal/serve":   true,
}

// CtxThread flags exported functions in orchestration packages that
// launch goroutines or hard-code context.Background()/TODO() instead of
// accepting a context.Context. A deliberate context-free compatibility
// wrapper carries //lint:allow-noctx <reason>.
var CtxThread = &Analyzer{
	Name:  "ctxthread",
	Doc:   "flag exported orchestration functions that spawn work without accepting a context.Context",
	Allow: "noctx",
	Run:   runCtxThread,
}

func runCtxThread(pass *Pass) {
	if !ctxPackages[pass.Pkg.Path()] {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if acceptsContext(pass.Info, fd) {
				continue
			}
			checkCtxFreeFunc(pass, fd)
		}
	}
}

func acceptsContext(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if t := info.TypeOf(field.Type); t != nil && namedType(t, "context", "Context") {
			return true
		}
	}
	return false
}

func checkCtxFreeFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(),
				"exported %s launches a goroutine but accepts no context.Context: callers cannot cancel it; add a ctx parameter (or //lint:allow-noctx <reason>)",
				fd.Name.Name)
		case *ast.CallExpr:
			for _, arg := range n.Args {
				ac, ok := arg.(*ast.CallExpr)
				if !ok {
					continue
				}
				cf := funcOf(pass.Info, ac.Fun)
				if isPkgFunc(cf, "context", "Background") || isPkgFunc(cf, "context", "TODO") {
					pass.Reportf(arg.Pos(),
						"exported %s passes context.%s but accepts no context.Context: accept and propagate the caller's ctx (or //lint:allow-noctx <reason>)",
						fd.Name.Name, cf.Name())
				}
			}
		}
		return true
	})
}
