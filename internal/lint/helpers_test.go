package lint

// The analysistest-style harness: testdata/src/<importpath>/ holds
// golden packages whose comments carry `// want "regexp"` (or
// backquoted) expectations, one per diagnostic on that line. Packages
// are type-checked from testdata sources; fake camps/internal/* stubs in
// testdata shadow the real packages, and standard-library imports are
// satisfied from the build cache's export data via `go list -export`.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var stdExports struct {
	once sync.Once
	m    map[string]string
	err  error
}

// stdlibExports returns importpath -> export-data file for the full
// dependency closure of the real module, computed once per test binary.
func stdlibExports(t *testing.T) map[string]string {
	t.Helper()
	stdExports.once.Do(func() {
		cmd := exec.Command("go", "list", "-export", "-json=ImportPath,Export", "-deps", "./...")
		cmd.Dir = filepath.Join("..", "..")
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			stdExports.err = fmt.Errorf("go list -export: %v\n%s", err, stderr.String())
			return
		}
		stdExports.m = make(map[string]string)
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if derr := dec.Decode(&p); errors.Is(derr, io.EOF) {
				break
			} else if derr != nil {
				stdExports.err = derr
				return
			}
			if p.Export != "" {
				stdExports.m[p.ImportPath] = p.Export
			}
		}
	})
	if stdExports.err != nil {
		t.Fatalf("loading stdlib export data: %v", stdExports.err)
	}
	return stdExports.m
}

// testImporter resolves imports for testdata packages: paths that exist
// under testdata/src are type-checked from those sources (so fakes
// shadow real camps packages); everything else comes from export data.
type testImporter struct {
	fset    *token.FileSet
	root    string
	gc      types.Importer
	pkgs    map[string]*types.Package
	loading map[string]bool
}

func (ti *testImporter) Import(path string) (*types.Package, error) {
	if p, ok := ti.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(ti.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		if ti.loading[path] {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		pkg, _, _, err := ti.check(path, dir)
		return pkg, err
	}
	return ti.gc.Import(path)
}

func (ti *testImporter) check(path, dir string) (*types.Package, []*ast.File, *types.Info, error) {
	ti.loading[path] = true
	defer delete(ti.loading, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, perr := parser.ParseFile(ti.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, nil, nil, perr
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: ti}
	pkg, err := conf.Check(path, ti.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	ti.pkgs[path] = pkg
	return pkg, files, info, nil
}

// loadTestPackage type-checks testdata/src/<importPath> into a Package
// ready for RunAnalyzer.
func loadTestPackage(t *testing.T, importPath string) *Package {
	t.Helper()
	exports := stdlibExports(t)
	fset := token.NewFileSet()
	ti := &testImporter{
		fset:    fset,
		root:    filepath.Join("testdata", "src"),
		pkgs:    make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
	ti.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	dir := filepath.Join(ti.root, filepath.FromSlash(importPath))
	tpkg, files, info, err := ti.check(importPath, dir)
	if err != nil {
		t.Fatalf("loading testdata package %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Types: tpkg, Info: info}
}

type wantExpectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// parseWants extracts the quoted or backquoted regexps following "want "
// in a comment.
func parseWants(comment string) []string {
	i := strings.Index(comment, "want ")
	if i < 0 {
		return nil
	}
	rest := comment[i+len("want "):]
	var out []string
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return out
		}
		switch rest[0] {
		case '`':
			j := strings.IndexByte(rest[1:], '`')
			if j < 0 {
				return out
			}
			out = append(out, rest[1:1+j])
			rest = rest[j+2:]
		case '"':
			q, err := strconv.QuotedPrefix(rest)
			if err != nil {
				return out
			}
			s, err := strconv.Unquote(q)
			if err != nil {
				return out
			}
			out = append(out, s)
			rest = rest[len(q):]
		default:
			return out
		}
	}
}

// runWantTest runs one analyzer over one testdata package and checks its
// diagnostics against the package's want comments, analysistest-style.
func runWantTest(t *testing.T, a *Analyzer, importPath string) {
	t.Helper()
	pkg := loadTestPackage(t, importPath)
	diags := RunAnalyzer(a, pkg)

	var wants []*wantExpectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				for _, p := range parseWants(c.Text) {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, &wantExpectation{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i].line < wants[j].line })
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}
