package lint

// The analysistest-style harness: testdata/src/<importpath>/ holds
// golden packages whose comments carry `// want "regexp"` (or
// backquoted) expectations, one per diagnostic on that line. Packages
// are type-checked from testdata sources; fake camps/internal/* stubs in
// testdata shadow the real packages, and standard-library imports are
// satisfied from the build cache's export data via `go list -export`.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var stdExports struct {
	once sync.Once
	m    map[string]string
	err  error
}

// stdlibExports returns importpath -> export-data file for the full
// dependency closure of the real module, computed once per test binary.
func stdlibExports(t *testing.T) map[string]string {
	t.Helper()
	stdExports.once.Do(func() {
		cmd := exec.Command("go", "list", "-export", "-json=ImportPath,Export", "-deps", "./...")
		cmd.Dir = filepath.Join("..", "..")
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			stdExports.err = fmt.Errorf("go list -export: %v\n%s", err, stderr.String())
			return
		}
		stdExports.m = make(map[string]string)
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if derr := dec.Decode(&p); errors.Is(derr, io.EOF) {
				break
			} else if derr != nil {
				stdExports.err = derr
				return
			}
			if p.Export != "" {
				stdExports.m[p.ImportPath] = p.Export
			}
		}
	})
	if stdExports.err != nil {
		t.Fatalf("loading stdlib export data: %v", stdExports.err)
	}
	return stdExports.m
}

// testImporter resolves imports for testdata packages: paths that exist
// under the testdata root are type-checked from those sources (so fakes
// shadow real camps packages); everything else comes from export data.
// Packages are recorded in completion order — imports finish before
// their importer, so done is in dependency order, ready for a Program.
type testImporter struct {
	fset    *token.FileSet
	root    string
	gc      types.Importer
	pkgs    map[string]*types.Package
	loading map[string]bool
	done    []*Package
}

func (ti *testImporter) Import(path string) (*types.Package, error) {
	if p, ok := ti.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(ti.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		if ti.loading[path] {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		pkg, _, _, err := ti.check(path, dir)
		return pkg, err
	}
	return ti.gc.Import(path)
}

func (ti *testImporter) check(path, dir string) (*types.Package, []*ast.File, *types.Info, error) {
	ti.loading[path] = true
	defer delete(ti.loading, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	hash := sha256.New()
	fmt.Fprintf(hash, "testdata:%s\n", path)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		full := filepath.Join(dir, e.Name())
		src, rerr := os.ReadFile(full)
		if rerr != nil {
			return nil, nil, nil, rerr
		}
		fmt.Fprintf(hash, "file:%s:%d\n", e.Name(), len(src))
		hash.Write(src)
		f, perr := parser.ParseFile(ti.fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, nil, nil, perr
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: ti}
	pkg, err := conf.Check(path, ti.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	ti.pkgs[path] = pkg
	ti.done = append(ti.done, &Package{
		Path:    path,
		Fset:    ti.fset,
		Files:   files,
		Types:   pkg,
		Info:    info,
		Target:  true,
		SrcHash: hex.EncodeToString(hash.Sum(nil)),
	})
	return pkg, files, info, nil
}

// loadTestPackage type-checks testdata/src/<importPath> into a Package
// ready for RunAnalyzer.
func loadTestPackage(t *testing.T, importPath string) *Package {
	t.Helper()
	exports := stdlibExports(t)
	fset := token.NewFileSet()
	ti := &testImporter{
		fset:    fset,
		root:    filepath.Join("testdata", "src"),
		pkgs:    make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
	ti.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	dir := filepath.Join(ti.root, filepath.FromSlash(importPath))
	tpkg, files, info, err := ti.check(importPath, dir)
	if err != nil {
		t.Fatalf("loading testdata package %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Types: tpkg, Info: info}
}

// loadTestProgram type-checks every package found under root (a
// testdata/prog/<name>/src directory) into a Program in dependency
// order, ready for Summarize/BuildCallGraph/RunProgramAnalyzer. All
// packages are marked as targets.
func loadTestProgram(t *testing.T, root string) *Program {
	t.Helper()
	exports := stdlibExports(t)
	fset := token.NewFileSet()
	ti := &testImporter{
		fset:    fset,
		root:    root,
		pkgs:    make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
	ti.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var paths []string
	seen := make(map[string]bool)
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".go") {
			return err
		}
		rel, rerr := filepath.Rel(root, filepath.Dir(p))
		if rerr != nil {
			return rerr
		}
		ip := filepath.ToSlash(rel)
		if !seen[ip] {
			seen[ip] = true
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", root, err)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := ti.Import(p); err != nil {
			t.Fatalf("loading testdata package %s: %v", p, err)
		}
	}

	prog := &Program{Fset: fset, ByPath: make(map[string]*Package, len(ti.done))}
	for _, pkg := range ti.done {
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.ByPath[pkg.Path] = pkg
	}
	return prog
}

type wantExpectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// parseWants extracts the quoted or backquoted regexps following "want "
// in a comment.
func parseWants(comment string) []string {
	i := strings.Index(comment, "want ")
	if i < 0 {
		return nil
	}
	rest := comment[i+len("want "):]
	var out []string
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return out
		}
		switch rest[0] {
		case '`':
			j := strings.IndexByte(rest[1:], '`')
			if j < 0 {
				return out
			}
			out = append(out, rest[1:1+j])
			rest = rest[j+2:]
		case '"':
			q, err := strconv.QuotedPrefix(rest)
			if err != nil {
				return out
			}
			s, err := strconv.Unquote(q)
			if err != nil {
				return out
			}
			out = append(out, s)
			rest = rest[len(q):]
		default:
			return out
		}
	}
}

// runWantTest runs one analyzer over one testdata package and checks its
// diagnostics against the package's want comments, analysistest-style.
func runWantTest(t *testing.T, a *Analyzer, importPath string) {
	t.Helper()
	pkg := loadTestPackage(t, importPath)
	checkWants(t, []*Package{pkg}, RunAnalyzer(a, pkg))
}

// runProgramWantTest runs one whole-program analyzer over the multi-
// package golden program under root and checks its diagnostics against
// want comments anywhere in the program.
func runProgramWantTest(t *testing.T, a *Analyzer, root string) {
	t.Helper()
	prog := loadTestProgram(t, root)
	sums := Summarize(prog, nil)
	graph := BuildCallGraph(prog, sums)
	checkWants(t, prog.Pkgs, RunProgramAnalyzer(a, prog, sums, graph))
}

// checkWants matches diagnostics against the want comments of the given
// packages: every diagnostic must match a want on its line, and every
// want must be consumed.
func checkWants(t *testing.T, pkgs []*Package, diags []Diagnostic) {
	t.Helper()
	var wants []*wantExpectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := pkg.Fset.Position(c.Pos())
					for _, p := range parseWants(c.Text) {
						re, err := regexp.Compile(p)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
						}
						wants = append(wants, &wantExpectation{file: pos.Filename, line: pos.Line, re: re, raw: p})
					}
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i].line < wants[j].line })
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}
