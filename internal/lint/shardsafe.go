package lint

import "sort"

// shardEntryPkg is the package whose every function is a shard entry
// point: the vault controller owns exactly the state one worker
// goroutine will own when the event engine shards vaults across
// workers, so everything it can reach must stay vault-local.
const shardEntryPkg = "camps/internal/vault"

// shardApproved are the interfaces allowed to cross a shard boundary.
// The event engine serializes cross-vault interaction today and will
// own the epoch barriers of the parallel engine; the observability
// layer's sinks are the sanctioned metrics/trace egress; the crossbar
// and serial links (internal/hmc) are the architectural channel between
// vaults. Calls into these packages are not followed — their internals
// are each audited on their own terms (see DESIGN.md §9, the
// shard-isolation contract).
var shardApproved = map[string]bool{
	"camps/internal/sim": true,
	"camps/internal/obs": true,
	"camps/internal/hmc": true,
}

// ShardSafe certifies the machine-checked precondition of the parallel
// event engine: starting from every vault-controller function, each
// write on the reachable paths must land on receiver-reachable
// (vault-owned) state — locals, parameters, receivers, and anything
// hanging off them — or cross through an approved interface package.
// Two things violate that: a write rooted at a package-level variable
// (shared by all vaults, hence all future worker goroutines), and a
// goroutine launched from a vault path (the engine owns all
// concurrency). Diagnostics name the cross-shard call path.
var ShardSafe = &Analyzer{
	Name:       "shardsafe",
	Doc:        "forbid package-level writes and goroutine launches on vault-controller paths",
	Allow:      "shardsafe",
	RunProgram: runShardSafe,
}

func runShardSafe(pass *ProgramPass) {
	vault := pass.Sums.ByPkg[shardEntryPkg]
	if vault == nil {
		return // program does not include the vault package
	}
	entries := make([]string, 0, len(vault.Funcs))
	for i := range vault.Funcs {
		entries = append(entries, vault.Funcs[i].Sym)
	}
	reached := pass.Graph.Reachable(entries, func(sym string) bool {
		return shardApproved[symPkg(sym)]
	})

	syms := make([]string, 0, len(reached))
	for sym := range reached {
		syms = append(syms, sym)
	}
	sort.Strings(syms)
	for _, sym := range syms {
		fn := pass.Sums.Func(sym)
		if fn == nil || shardApproved[fn.Pkg] {
			continue
		}
		for _, w := range fn.Writes {
			pass.Report(w.Pos,
				"cross-shard write on a vault-controller path: %s writes package-level %s (path: %s); vault state must stay vault-owned or cross through sim/obs/hmc (or //lint:allow-shardsafe <reason>)",
				shortSym(sym), shortSym(w.Target), pathTo(reached, sym))
		}
		for _, g := range fn.Gos {
			pass.Report(g.Pos,
				"goroutine launched on a vault-controller path in %s (path: %s): the event engine owns all concurrency; sharded vaults must not spawn their own (or //lint:allow-shardsafe <reason>)",
				shortSym(sym), pathTo(reached, sym))
		}
	}
}
