package lint

import (
	"go/ast"
	"go/types"
)

const prefetchPkgPath = "camps/internal/prefetch"

// PfRegister guards the prefetch-engine registry. Scheme IDs are assigned
// by registration order and appear verbatim in exported Results (the
// golden traces pin them), and campsweep's -list / ParseScheme error text
// enumerate the registered names — so the name set must be knowable at
// build time and the registration order deterministic. Two patterns break
// that:
//
//   - prefetch.Register called with a name that is not a compile-time
//     constant: the engine namespace becomes unenumerable, and a dynamic
//     name can collide with a builtin only at runtime.
//   - prefetch.Register called from inside a range over a map: Go map
//     iteration order is randomized per process, so the engines would get
//     different Scheme IDs on every run, silently breaking golden exports
//     and checkpoint resume.
var PfRegister = &Analyzer{
	Name:  "pfregister",
	Doc:   "flag prefetch.Register calls with non-constant names or map-iteration registration order",
	Allow: "pfregister",
	Run:   runPfRegister,
}

func runPfRegister(pass *Pass) {
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := funcOf(pass.Info, call.Fun)
			if !isPkgFunc(fn, prefetchPkgPath, "Register") {
				return true
			}
			if tv, ok := pass.Info.Types[call.Args[0]]; !ok || tv.Value == nil {
				pass.Reportf(call.Args[0].Pos(),
					"engine name passed to prefetch.Register is not a compile-time constant: use a string literal or named constant so the engine namespace stays enumerable (or //lint:allow-pfregister <reason>)")
			}
			for _, anc := range stack {
				rs, ok := anc.(*ast.RangeStmt)
				if !ok {
					continue
				}
				if t := pass.Info.TypeOf(rs.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(call.Pos(),
							"prefetch.Register called while ranging over a map: map iteration order is randomized, so Scheme IDs would differ between runs; register from a slice or explicit sequence (or //lint:allow-pfregister <reason>)")
						break
					}
				}
			}
			return true
		})
	}
}
