package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The facts layer: each package under analysis is distilled into one
// serializable PackageSummary — per-function call edges, package-level
// writes, goroutine launches, and nondeterminism sources, each with a
// resolved source position. The whole-program analyzers (shardsafe,
// globalmut, detflow) run entirely over these summaries joined by the
// call graph, so a package whose sources (and dependency closure) are
// unchanged can reuse its cached summary (see facts.go) without
// re-walking its syntax trees, and diagnostics in dependency packages
// can be reconstructed without their ASTs.
//
// Symbols name functions and variables as stable strings:
//
//	pkg/path.Func            package-level function
//	pkg/path.(Type).Method   method (pointer receivers collapse onto the type)
//	pkg/path.init@line       one file's init function
//	pkg/path.Var             package-level variable
//
// Known approximations, chosen so the summaries stay deterministic and
// cheap: calls through plain function values (fields, parameters) are
// not resolved — interface method calls are, via the CHA implementation
// index — and writes through a pointer previously taken from a global
// are not tracked. Both are documented in docs/LINTING.md.

// PackageSummary is one package's exported facts.
type PackageSummary struct {
	Package string        `json:"package"`
	Funcs   []FuncSummary `json:"funcs"`
}

// FuncSummary is the facts of one function (function literals fold into
// their enclosing declaration).
type FuncSummary struct {
	Sym      string         `json:"sym"`
	Pkg      string         `json:"pkg"`
	Pos      token.Position `json:"pos"`
	Exported bool           `json:"exported,omitempty"`
	IsInit   bool           `json:"is_init,omitempty"`

	Calls   []CallSite     `json:"calls,omitempty"`
	Writes  []GlobalWrite  `json:"writes,omitempty"`
	Gos     []GoLaunch     `json:"gos,omitempty"`
	Sources []NondetSource `json:"sources,omitempty"`
}

// CallSite is one statically resolved call edge.
type CallSite struct {
	// Callee is the called function's symbol; for Iface calls it is the
	// interface method, resolved to implementations by the call graph.
	Callee string         `json:"callee"`
	Iface  bool           `json:"iface,omitempty"`
	Pos    token.Position `json:"pos"`
}

// GlobalWrite is one write whose destination roots at a package-level
// variable (an assignment, ++/--, or delete on it or anything reached
// through its fields/elements).
type GlobalWrite struct {
	Target string         `json:"target"`
	Op     string         `json:"op"`
	Pos    token.Position `json:"pos"`
}

// GoLaunch is one `go` statement.
type GoLaunch struct {
	Pos token.Position `json:"pos"`
}

// NondetSource is one direct nondeterminism source: a wall-clock read,
// a global-RNG call, map-iteration order escaping through a return
// without a sort, or a goroutine-ordering-dependent select.
type NondetSource struct {
	Kind   string         `json:"kind"` // "wallclock" | "globalrand" | "maporder" | "goroutine-order"
	Detail string         `json:"detail"`
	Pos    token.Position `json:"pos"`
}

// funcSym returns fn's stable symbol. The empty string means the
// function cannot be named (no package, e.g. error.Error).
func funcSym(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return "" // receiver on an unnamed type
		}
		return fn.Pkg().Path() + ".(" + named.Obj().Name() + ")." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// varSym returns the symbol of a package-level variable.
func varSym(v *types.Var) string {
	return v.Pkg().Path() + "." + v.Name()
}

// symPkg extracts the package path from a symbol.
func symPkg(sym string) string {
	if i := strings.Index(sym, ".("); i >= 0 {
		return sym[:i]
	}
	if i := strings.LastIndex(sym, "."); i >= 0 {
		return sym[:i]
	}
	return sym
}

// symBase returns the symbol's function name with any receiver, e.g.
// "(Controller).Submit" or "Register".
func symBase(sym string) string {
	return strings.TrimPrefix(sym, symPkg(sym)+".")
}

// summarize distills one package into its facts.
func summarize(pkg *Package) *PackageSummary {
	s := &PackageSummary{Package: pkg.Path}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s.Funcs = append(s.Funcs, summarizeFunc(pkg, fd))
		}
	}
	return s
}

func summarizeFunc(pkg *Package, fd *ast.FuncDecl) FuncSummary {
	pos := pkg.Fset.Position(fd.Name.Pos())
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	sym := funcSym(fn)
	isInit := fd.Recv == nil && fd.Name.Name == "init"
	if isInit || sym == "" {
		// init functions share a name; disambiguate by line.
		sym = fmt.Sprintf("%s.%s@%d", pkg.Path, fd.Name.Name, pos.Line)
	}
	fs := FuncSummary{
		Sym:      sym,
		Pkg:      pkg.Path,
		Pos:      pos,
		Exported: fd.Name.IsExported(),
		IsInit:   isInit,
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			summarizeCall(pkg, &fs, n)
		case *ast.GoStmt:
			fs.Gos = append(fs.Gos, GoLaunch{Pos: pkg.Fset.Position(n.Pos())})
		case *ast.SelectStmt:
			comms := 0
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					comms++
				}
			}
			if comms >= 2 {
				fs.Sources = append(fs.Sources, NondetSource{
					Kind:   "goroutine-order",
					Detail: fmt.Sprintf("select with %d communication cases resolves by goroutine scheduling order", comms),
					Pos:    pkg.Fset.Position(n.Pos()),
				})
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				recordGlobalWrite(pkg, &fs, lhs, "assign")
			}
		case *ast.IncDecStmt:
			recordGlobalWrite(pkg, &fs, n.X, "incdec")
		case *ast.RangeStmt:
			summarizeMapOrderEscape(pkg, &fs, fd, n)
		}
		return true
	})
	return fs
}

// summarizeCall records one call expression: a static or interface call
// edge, a delete() on a global map, or a stdlib nondeterminism source.
func summarizeCall(pkg *Package, fs *FuncSummary, call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "delete" && len(call.Args) > 0 {
				recordGlobalWrite(pkg, fs, call.Args[0], "delete")
			}
			return
		}
	}
	fn := funcOf(pkg.Info, call.Fun)
	if fn == nil || fn.Pkg() == nil {
		return // func value, builtin, or conversion: unresolved by design
	}
	pos := pkg.Fset.Position(call.Pos())
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		iface := types.IsInterface(sig.Recv().Type())
		if sym := funcSym(fn); sym != "" {
			fs.Calls = append(fs.Calls, CallSite{Callee: sym, Iface: iface, Pos: pos})
		}
		return
	}
	// Package-level function: record the edge and classify stdlib
	// nondeterminism sources (the same sets simdeterminism checks).
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			fs.Sources = append(fs.Sources, NondetSource{
				Kind:   "wallclock",
				Detail: "time." + fn.Name(),
				Pos:    pos,
			})
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			fs.Sources = append(fs.Sources, NondetSource{
				Kind:   "globalrand",
				Detail: fn.Pkg().Path() + "." + fn.Name(),
				Pos:    pos,
			})
		}
	}
	if sym := funcSym(fn); sym != "" {
		fs.Calls = append(fs.Calls, CallSite{Callee: sym, Pos: pos})
	}
}

// recordGlobalWrite classifies one write destination and records it when
// its root is a package-level variable (of this or any other package).
func recordGlobalWrite(pkg *Package, fs *FuncSummary, lhs ast.Expr, op string) {
	v := writeRoot(pkg.Info, lhs)
	if v == nil || v.Pkg() == nil {
		return
	}
	if v.Parent() != v.Pkg().Scope() {
		return // local, parameter, or receiver: shard-owned by construction
	}
	fs.Writes = append(fs.Writes, GlobalWrite{
		Target: varSym(v),
		Op:     op,
		Pos:    pkg.Fset.Position(lhs.Pos()),
	})
}

// writeRoot unwinds selectors, indexes, stars, and parens to the
// variable a write lands on, or nil when the root is not a variable
// (e.g. the blank identifier or a function call result).
func writeRoot(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if _, isField := info.Selections[x]; isField {
				e = x.X
				continue
			}
			// Qualified identifier pkg.Var: the variable itself.
			if v, ok := info.Uses[x.Sel].(*types.Var); ok {
				return v
			}
			return nil
		case *ast.Ident:
			if v, ok := info.ObjectOf(x).(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// summarizeMapOrderEscape marks the function as a nondeterminism source
// when a range over a map appends to a slice declared outside the loop
// that is later returned without a sort: callers then observe
// map-iteration order. (The per-package maporder analyzer flags the
// append site itself; this fact lets detflow taint callers in other
// packages.)
func summarizeMapOrderEscape(pkg *Package, fs *FuncSummary, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	if t := pkg.Info.TypeOf(rs.X); t == nil {
		return
	} else if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pkg.Info, call) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pkg.Info.ObjectOf(id)
			if obj == nil || obj.Pos() == token.NoPos {
				continue
			}
			if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
				continue // loop-local: order dies with the iteration
			}
			if sortedAfter(pkg.Info, fd, rs, obj) {
				continue
			}
			if !returnsObject(pkg.Info, fd, obj) {
				continue
			}
			fs.Sources = append(fs.Sources, NondetSource{
				Kind:   "maporder",
				Detail: fmt.Sprintf("returns %s appended under a map range without a sort", id.Name),
				Pos:    pkg.Fset.Position(as.Pos()),
			})
		}
		return true
	})
}

// returnsObject reports whether fd returns obj: it appears in a return
// statement's results, or it is a named result (naked returns included).
func returnsObject(info *types.Info, fd *ast.FuncDecl, obj types.Object) bool {
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if info.ObjectOf(name) == obj {
					return true
				}
			}
		}
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return !found
		}
		for _, res := range ret.Results {
			if mentionsObject(info, res, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}
