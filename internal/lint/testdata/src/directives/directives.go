// Golden file for directive validation: a misspelled //lint:allow-*
// suffix must be reported rather than silently suppressing nothing.
package directives

import "time"

func Typo() time.Time {
	return time.Now() //lint:allow-wallclok reason that suppresses nothing because of the typo
}

func Known() time.Time {
	return time.Now() //lint:allow-wallclock fine here: not a simulation package anyway
}
