// Golden file for the pfregister analyzer: Register names must be
// compile-time constants, and registration must not be driven by map
// iteration (Scheme IDs follow registration order).
package pfregister

import (
	"fmt"

	"camps/internal/prefetch"
)

const goodName = "my-engine"

func GoodLiteral() {
	prefetch.Register("stride", prefetch.Descriptor{Name: "stride"})
}

func GoodNamedConstant() {
	prefetch.Register(goodName, prefetch.Descriptor{Name: goodName})
}

func GoodConstantExpression() {
	prefetch.Register(goodName+"-v2", prefetch.Descriptor{})
}

func BadDynamicName(i int) {
	name := fmt.Sprintf("engine-%d", i)
	prefetch.Register(name, prefetch.Descriptor{}) // want `not a compile-time constant`
}

func BadVariableName(names []string) {
	for _, n := range names {
		prefetch.Register(n, prefetch.Descriptor{}) // want `not a compile-time constant`
	}
}

func BadMapIteration(engines map[string]prefetch.Descriptor) {
	for range engines {
		// Constant name, but the registration ORDER still depends on map
		// iteration.
		prefetch.Register("from-map", prefetch.Descriptor{}) // want `ranging over a map`
	}
}

func BadMapIterationDynamic(engines map[string]prefetch.Descriptor) {
	for name, d := range engines {
		prefetch.Register(name, d) // want `not a compile-time constant` `ranging over a map`
	}
}

func GoodSliceIteration(names [3]string) {
	// Slice/array iteration is deterministic; only the non-constant name
	// rule could apply, and a constant name keeps it clean.
	for range names {
		prefetch.Register("fixed", prefetch.Descriptor{})
	}
}

func GoodLookup() {
	if _, ok := prefetch.Lookup("stride"); !ok {
		prefetch.Register("stride", prefetch.Descriptor{})
	}
}

func AllowedDynamic(name string) {
	//lint:allow-pfregister test-only probe engines get generated names
	prefetch.Register(name, prefetch.Descriptor{})
}
