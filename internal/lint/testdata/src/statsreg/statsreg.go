// Golden file for the statsreg analyzer: metrics constructed directly
// and only observed locally are findings — nothing will ever snapshot
// them. Metrics from a registry, metrics that escape, and the
// conditional-instrumentation idiom are fine.
package statsreg

import (
	"fmt"

	"camps/internal/obs"
)

func BadLocalHistogram() {
	h := obs.NewHistogram() // want `obs.Histogram created but never registered`
	h.Observe(1)
	h.Observe(2)
}

func BadLocalCounter() uint64 {
	c := &obs.Counter{} // want `obs.Counter created but never registered`
	c.Inc()
	return c.Value()
}

func BadLocalGauge() {
	g := new(obs.Gauge) // want `obs.Gauge created but never registered`
	g.Set(4.2)
}

func GoodFromRegistry(r *obs.Registry) {
	h := r.Histogram("vault.latency_ps")
	h.Observe(1)
	c := r.Counter("vault.requests")
	c.Inc()
}

func GoodReturned() *obs.Histogram {
	h := obs.NewHistogram()
	h.Observe(1)
	return h
}

func GoodPassedOn(r *obs.Registry) {
	c := &obs.Counter{}
	c.Inc()
	r.CounterFunc("vault.requests", c.Value) // method value hands the counter to the registry
}

func GoodStored() map[string]*obs.Histogram {
	h := obs.NewHistogram()
	return map[string]*obs.Histogram{"lat": h}
}

// GoodConditional is the internal/exp idiom: a throwaway histogram that
// is replaced by the registry-owned one when observability is enabled.
func GoodConditional(r *obs.Registry, enabled bool) {
	h := obs.NewHistogram()
	if enabled {
		h = r.Histogram("exp.cell_wall_ms")
	}
	h.Observe(1)
}

func BadReassignedCreation() {
	h := obs.NewHistogram() // want `obs.Histogram created but never registered`
	h = obs.NewHistogram()
	h.Observe(1)
}

func AllowedDirective() {
	h := obs.NewHistogram() //lint:allow-unregistered scratch accumulator, merged into the suite by hand
	h.Observe(1)
}

// --- metric-name constancy ---
// Registry lookups must name their metric with a compile-time constant;
// computed names make the metric namespace unenumerable.

const goodName = "vault.row_hits"

func GoodLiteralNames(r *obs.Registry) {
	r.Counter("vault.hits").Inc()
	r.Gauge("vault.queue").Set(1)
	r.Histogram("vault.latency_ps").Observe(1)
	r.CounterFunc("vault.misses", func() uint64 { return 0 })
	r.GaugeFunc("vault.depth", func() float64 { return 0 })
}

func GoodNamedConstant(r *obs.Registry) {
	r.Counter(goodName).Inc()
	r.Counter(goodName + "_total").Inc() // constant concatenation is still constant
}

func BadSprintfName(r *obs.Registry, vault int) {
	r.Counter(fmt.Sprintf("vault%d.hits", vault)).Inc() // want `metric name passed to Registry.Counter is not a compile-time constant`
}

func BadVariableName(r *obs.Registry, name string) {
	r.CounterFunc(name, func() uint64 { return 0 }) // want `metric name passed to Registry.CounterFunc is not a compile-time constant`
}

func BadConcatenatedName(r *obs.Registry, suffix string) {
	r.Histogram("span." + suffix).Observe(1) // want `metric name passed to Registry.Histogram is not a compile-time constant`
}

func AllowedDynamicName(r *obs.Registry, name string) {
	r.Gauge(name).Set(1) //lint:allow-unregistered name validated against a static allowlist upstream
}
