// Golden file for the tickarith analyzer: direct conversions between
// sim.Time (simulated picoseconds) and time.Duration (wall-clock
// nanoseconds) are findings; crossing the boundary through an explicit
// int64 picosecond count is not.
package tickarith

import (
	"time"

	"camps/internal/sim"
)

func BadTickToDuration(t sim.Time) time.Duration {
	return time.Duration(t) // want `conversion of sim.Time \(simulated picoseconds\) to time.Duration`
}

func BadDurationToTick(d time.Duration) sim.Time {
	return sim.Time(d) // want `conversion of time.Duration \(wall-clock nanoseconds\) to sim.Time`
}

func BadNestedConversion(t sim.Time) bool {
	return time.Duration(t) > time.Millisecond // want `conversion of sim.Time \(simulated picoseconds\) to time.Duration`
}

func GoodExplicitUnitChange(t sim.Time) time.Duration {
	// ps -> ns is an explicit, visible unit change through int64.
	return time.Duration(t.Ps()/1000) * time.Nanosecond
}

func GoodTickArithmetic(t sim.Time) sim.Time {
	return t*2 + sim.Microsecond // pure tick arithmetic is fine
}

func GoodDurationArithmetic(d time.Duration) time.Duration {
	return d * 3 / 2 // pure duration arithmetic is fine
}

func AllowedDirective(t sim.Time) time.Duration {
	return time.Duration(t) //lint:allow-tickarith intentionally reinterprets ps as ns for a density plot
}
