// Package stats is a testdata stand-in for camps/internal/stats: the
// Table type whose AddRow the maporder analyzer treats as an ordered
// sink.
package stats

type Table struct {
	Title   string
	Columns []string
}

func (t *Table) AddRow(label string, vs ...float64) {}
