// Golden file for the simdeterminism allowlist: camps/internal/exp is
// orchestration, not simulation — its wall-clock timeouts and backoffs
// are legitimate, so this package must produce zero findings.
package exp

import "time"

// TimedAttempt may use the wall clock freely: exp is not a simulation
// package, so nothing here is a finding.
func TimedAttempt() time.Duration {
	t0 := time.Now()
	time.Sleep(time.Millisecond)
	deadline := time.After(time.Second)
	_ = deadline
	return time.Since(t0)
}
