// Package prefetch is a testdata stand-in for camps/internal/prefetch
// with the registry surface the pfregister analyzer recognizes.
package prefetch

type Scheme int

type Engine interface {
	OnBufferHit()
}

type Descriptor struct {
	Name string
	Doc  string
	New  func() Engine
}

func Register(name string, d Descriptor) Scheme { return 0 }

func Lookup(name string) (Scheme, bool) { return 0, false }
