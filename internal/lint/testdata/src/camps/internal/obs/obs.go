// Package obs is a testdata stand-in for camps/internal/obs with the
// metric types and registry surface the statsreg analyzer recognizes.
package obs

type Counter struct{ v uint64 }

func (c *Counter) Inc()          { c.v++ }
func (c *Counter) Add(d uint64)  { c.v += d }
func (c *Counter) Value() uint64 { return c.v }

type Gauge struct{ v float64 }

func (g *Gauge) Set(v float64)   { g.v = v }
func (g *Gauge) Value() float64  { return g.v }

type Histogram struct{ n uint64 }

func NewHistogram() *Histogram { return &Histogram{} }

func (h *Histogram) Observe(v float64) { h.n++ }
func (h *Histogram) Count() uint64     { return h.n }

type Registry struct{}

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name string) *Counter     { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge         { return &Gauge{} }
func (r *Registry) Histogram(name string) *Histogram { return NewHistogram() }

func (r *Registry) CounterFunc(name string, fn func() uint64) {}
func (r *Registry) GaugeFunc(name string, fn func() float64)  {}
