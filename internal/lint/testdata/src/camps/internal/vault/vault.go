// Golden file for the simdeterminism analyzer: camps/internal/vault is a
// simulation package, so wall-clock reads and global RNG are findings;
// owned generators and annotated lines are not.
package vault

import (
	"math/rand"
	"time"
)

func BadWallClock() time.Duration {
	t0 := time.Now()             // want `time.Now in simulation package`
	time.Sleep(time.Millisecond) // want `time.Sleep in simulation package`
	return time.Since(t0)        // want `time.Since in simulation package`
}

func BadTimer() {
	_ = time.After(time.Second)          // want `time.After in simulation package`
	time.AfterFunc(time.Second, func() {}) // want `time.AfterFunc in simulation package`
}

func BadGlobalRand() int {
	rand.Seed(1)          // want `global math/rand.Seed in simulation package`
	return rand.Intn(100) // want `global math/rand.Intn in simulation package`
}

func GoodOwnedRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors are deterministic given the seed
	return r.Intn(100)
}

func GoodTimeArithmetic(a, b time.Time) time.Duration {
	return b.Sub(a) // methods on stored values never read the clock
}

func AllowedWallClock() time.Time {
	return time.Now() //lint:allow-wallclock coarse progress logging only, excluded from Results
}

func MissingReason() {
	time.Sleep(time.Millisecond) //lint:allow-wallclock // want `time.Sleep in simulation package` `directive needs a reason`
}
