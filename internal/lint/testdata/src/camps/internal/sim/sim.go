// Package sim is a testdata stand-in for camps/internal/sim: just enough
// surface for the analyzers' type checks (the real package is not
// imported so the golden files stay self-contained).
package sim

// Time is simulated time in picoseconds.
type Time int64

// Common intervals.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
)

// Ps returns the tick count as an explicit picosecond int64 — the
// sanctioned way to move a sim.Time across a unit boundary.
func (t Time) Ps() int64 { return int64(t) }
