// Golden file for the ctxthread analyzer: camps/internal/harness is an
// orchestration package, so exported functions that spawn goroutines or
// hard-code context.Background/TODO without accepting a context are
// findings; ctx-threading functions, unexported helpers, and annotated
// compatibility wrappers are not.
package harness

import "context"

// RunCampaign is the well-behaved shape: ctx is a parameter.
func RunCampaign(ctx context.Context, cells int) error { return nil }

func BadLaunch() {
	go func() {}() // want `exported BadLaunch launches a goroutine but accepts no context.Context`
}

func BadBackground() {
	_ = RunCampaign(context.Background(), 1) // want `exported BadBackground passes context.Background but accepts no context.Context`
}

func BadTODO() {
	_ = RunCampaign(context.TODO(), 1) // want `exported BadTODO passes context.TODO but accepts no context.Context`
}

func GoodPropagates(ctx context.Context) error {
	go func() {}() // fine: this function's caller holds the context
	return RunCampaign(ctx, 1)
}

func goodUnexported() {
	go func() {}() // unexported helpers are the exported caller's responsibility
}

func GoodCompatWrapper() error {
	//lint:allow-noctx documented context-free wrapper; cancellable callers use RunCampaign
	return RunCampaign(context.Background(), 1)
}
