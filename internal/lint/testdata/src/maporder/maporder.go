// Golden file for the maporder analyzer: map iteration whose order can
// leak into output is a finding; collect-then-sort, map-to-map
// transforms, and pure aggregation are not.
package maporder

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"camps/internal/stats"
)

func BadAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appends to keys while ranging over a map`
	}
	return keys
}

func GoodAppendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted below, so the random order never escapes
	}
	sort.Strings(keys)
	return keys
}

func GoodAppendThenSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func BadFprintf(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt.Fprintf inside range over a map`
	}
}

func BadPrintln(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `fmt.Println inside range over a map`
	}
}

func BadBuilder(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want `WriteString inside range over a map`
	}
	return sb.String()
}

func BadEncoder(w io.Writer, m map[string]int) {
	enc := json.NewEncoder(w)
	for k, v := range m {
		_ = enc.Encode(map[string]int{k: v}) // want `json.Encoder.Encode inside range over a map`
	}
}

func BadAddRow(t *stats.Table, m map[string]float64) {
	for k, v := range m {
		t.AddRow(k, v) // want `stats.Table.AddRow inside range over a map`
	}
}

func GoodMapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v // map-to-map: no order survives
	}
	return out
}

func GoodAggregate(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // commutative fold: order-independent
	}
	return n
}

func GoodLoopLocalAppend(m map[string]string) int {
	total := 0
	for _, v := range m {
		parts := strings.Split(v, ".")
		parts = append(parts, "x") // parts dies each iteration: nothing leaks
		total += len(parts)
	}
	return total
}

func GoodSliceRange(w io.Writer, keys []string) {
	for _, k := range keys {
		fmt.Fprintln(w, k) // ranging a slice is ordered; only maps are flagged
	}
}

func AllowedDirective(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintln(w, k) //lint:allow-maporder debug dump, order is explicitly irrelevant
	}
}
