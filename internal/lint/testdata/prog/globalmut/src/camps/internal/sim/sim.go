package sim

import "camps/internal/knob"

// Run is a simulation entry point; the global write it reaches lives
// two packages away.
func Run() {
	knob.Set(4)
}
