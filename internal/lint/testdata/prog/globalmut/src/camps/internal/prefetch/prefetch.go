// Package prefetch mirrors the real registry idiom: package-level state
// written from init and from a Register-at-init entry point is the
// sanctioned pattern; the same state written from a runtime entry point
// is the violation.
package prefetch

var regNames []string

// Register is init-only by contract; its write is not an entry-set
// violation (but reaching Register from a runtime path would be).
func Register(name string) {
	regNames = append(regNames, name)
}

func init() {
	Register("base")
}

// Reset is an exported runtime entry that illegally clears the registry.
func Reset() {
	regNames = nil // want `package-level prefetch.regNames written outside init: prefetch.Reset is reachable from runtime path prefetch.Reset`
}
