// Package knob is not itself a runtime package, so its functions are
// not entry points — the write below is only a finding because a
// simulation package reaches it.
package knob

var degree int

func init() {
	degree = 8 // init-time write: sanctioned
}

func Set(d int) {
	degree = d // want `package-level knob.degree written outside init: knob.Set is reachable from runtime path sim.Run → knob.Set`
}
