package vault

import (
	"camps/internal/sim"
	"camps/internal/tally"
)

// Controller owns one vault's state — the unit of sharding.
type Controller struct{ served int }

func (c *Controller) Submit(addr uint64) {
	c.served++       // receiver-owned: vault-local, fine
	tally.Bump(addr) // drags a package-level write onto the vault path
	sim.Post(addr)   // approved crossing: sim internals are not followed
}

func (c *Controller) Flush() {
	go c.reset() // want `goroutine launched on a vault-controller path`
}

func (c *Controller) reset() { c.served = 0 }
