// Package sim stands in for the event engine: an approved shard
// boundary. Its own package-level write is audited on sim's terms, not
// flagged on the vault path.
package sim

var queue []uint64

func Post(addr uint64) {
	queue = append(queue, addr)
}
