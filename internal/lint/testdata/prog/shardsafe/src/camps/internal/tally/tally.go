// Package tally is an innocent-looking helper that hides shared state:
// every vault calling Bump writes the same package-level map.
package tally

var counts = map[uint64]int{}

func Bump(addr uint64) {
	counts[addr]++ // want `cross-shard write on a vault-controller path: tally.Bump writes package-level tally.counts`
}
