package vault

import "camps/internal/util"

type Controller struct {
	last int64
	keys []string
}

func (c *Controller) Tick(m map[string]int) {
	c.last = util.Stamp() // want `call from simulation package camps/internal/vault reaches a nondeterminism source: util.Stamp → time.Now \(wall clock\)`
	c.keys = util.Keys(m) // want `util.Keys → returns out appended under a map range without a sort \(map-iteration order\)`
	c.last = util.Wrap()  // want `util.Wrap → util.Stamp → time.Now \(wall clock\)`
	c.last = util.Allowed()
}
