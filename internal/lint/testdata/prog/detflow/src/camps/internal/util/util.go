// Package util is the cross-package helper that hides nondeterminism
// sources from syntactic per-package analysis: it is not a simulation
// package, so simdeterminism never looks at it.
package util

import "time"

// Stamp hides a wall-clock read behind an innocent helper.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Wrap adds one more hop on the way to the clock.
func Wrap() int64 { return Stamp() }

// Keys leaks map-iteration order through its return value.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Allowed is suppressed at the source, so callers stay clean.
func Allowed() int64 {
	return time.Now().UnixNano() //lint:allow-wallclock coarse logging helper, never on result paths
}
