package lint

import (
	"go/token"
)

// Program is the whole-program view of one campslint run: every module
// package in the dependency closure, type-checked from source with one
// shared FileSet and unified object identity. The per-package analyzers
// run over Targets(); the whole-program analyzers (shardsafe, globalmut,
// detflow) consume the summaries and call graph built from all of Pkgs.
type Program struct {
	Fset *token.FileSet
	// Pkgs holds every source-checked module package in dependency
	// order: a package always follows its dependencies.
	Pkgs   []*Package
	ByPath map[string]*Package

	directives map[string][]directive // filename -> directives, lazily built
}

// Targets returns the packages matched by the load patterns, in
// dependency order. Diagnostics are only reported in these.
func (p *Program) Targets() []*Package {
	var out []*Package
	for _, pkg := range p.Pkgs {
		if pkg.Target {
			out = append(out, pkg)
		}
	}
	return out
}

// fileDirectives returns the lint directives of one source file,
// indexing every package in the program (not just targets) on first
// use: a suppression next to a finding in a dependency package must
// hold even when only a downstream package was matched.
func (p *Program) fileDirectives(filename string) []directive {
	if p.directives == nil {
		p.directives = make(map[string][]directive)
		for _, pkg := range p.Pkgs {
			for _, d := range parseDirectives(pkg.Fset, pkg.Files) {
				p.directives[d.file] = append(p.directives[d.file], d)
			}
		}
	}
	return p.directives[filename]
}

// suppressedAt reports whether a finding at pos is covered by a
// reasoned //lint:allow-<name> directive (same line or the line above),
// for any of the given directive names.
func (p *Program) suppressedAt(pos token.Position, names ...string) bool {
	for _, dir := range p.fileDirectives(pos.Filename) {
		if dir.reason == "" {
			continue
		}
		for _, name := range names {
			if dir.name == name && (pos.Line == dir.line || pos.Line == dir.line+1) {
				return true
			}
		}
	}
	return false
}
