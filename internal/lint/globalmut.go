package lint

import (
	"sort"
	"strings"
)

// runtimePkgs are the packages whose exported functions run during a
// simulation or while serving campaigns: the simulation set plus the
// public root package and the orchestration layers. Anything one of
// these can reach executes after init — on the paths the parallel
// engine will run concurrently.
var runtimePkgs = func() map[string]bool {
	m := map[string]bool{
		"camps":                  true,
		"camps/internal/exp":     true,
		"camps/internal/harness": true,
	}
	for p := range simPackages {
		m[p] = true
	}
	return m
}()

// GlobalMut enforces the init-only write discipline for mutable
// package-level state (the prefetch registry being the canonical case,
// DESIGN.md §8): package-level variables may be written during init —
// including the Register-at-init idiom, where an exported Register*
// function is documented init-only — but never from a simulation or
// serving path. The analyzer walks the call graph from every exported
// function of the runtime packages (excluding Register* and init) and
// flags every package-level write it can reach, naming the path.
var GlobalMut = &Analyzer{
	Name:       "globalmut",
	Doc:        "forbid package-level writes reachable from simulation or serving paths (init/Register-at-init only)",
	Allow:      "globalmut",
	RunProgram: runGlobalMut,
}

// initOnlySym reports whether sym is an init-context function: an init
// function or a Register*-named registration entry point (documented
// init-only; reaching one from a runtime path is exactly what this
// analyzer exists to flag, so they are excluded only from the entry
// set, not from the walk).
func initOnlySym(sym string) bool {
	base := symBase(sym)
	if i := strings.LastIndex(base, ")."); i >= 0 {
		base = base[i+2:]
	}
	return strings.HasPrefix(base, "Register") || strings.HasPrefix(base, "init@")
}

func runGlobalMut(pass *ProgramPass) {
	var entries []string
	for _, pkg := range pass.Prog.Pkgs {
		if !runtimePkgs[pkg.Path] {
			continue
		}
		ps := pass.Sums.ByPkg[pkg.Path]
		for i := range ps.Funcs {
			fn := &ps.Funcs[i]
			if fn.Exported && !fn.IsInit && !initOnlySym(fn.Sym) {
				entries = append(entries, fn.Sym)
			}
		}
	}
	reached := pass.Graph.Reachable(entries, nil)

	syms := make([]string, 0, len(reached))
	for sym := range reached {
		syms = append(syms, sym)
	}
	sort.Strings(syms)
	for _, sym := range syms {
		fn := pass.Sums.Func(sym)
		if fn == nil || fn.IsInit {
			continue
		}
		for _, w := range fn.Writes {
			pass.Report(w.Pos,
				"package-level %s written outside init: %s is reachable from runtime path %s; mutable globals may only be written during init or Register-at-init (or //lint:allow-globalmut <reason>)",
				shortSym(w.Target), shortSym(sym), pathTo(reached, sym))
		}
	}
}
