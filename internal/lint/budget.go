package lint

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// The allow budget keeps the escape hatch from quietly becoming the
// door: every //lint:allow-* directive in the tree is counted against a
// committed baseline (.campslint-budget), and campslint -allow-budget
// fails when any directive name is used more often than the baseline
// permits. Adding a suppression therefore requires touching the
// baseline in the same change — a reviewable, diffable act — and
// removing suppressions lets the baseline ratchet down.

// budgetViolation is one directive name used beyond its budget.
type budgetViolation struct {
	name   string
	used   int
	budget int
}

// parseBudget reads a baseline file: one "<name> <count>" pair per
// line, where <name> is the directive suffix (e.g. "noctx" for
// //lint:allow-noctx). Blank lines and #-comments are ignored. Any
// name not listed has a budget of zero.
func parseBudget(path string) (map[string]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	budget := make(map[string]int)
	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"<name> <count>\", got %q", path, lineno, line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%s:%d: bad count %q", path, lineno, fields[1])
		}
		budget[fields[0]] = n
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return budget, nil
}

// checkAllowBudget counts every lint directive in the target packages
// and returns the names used beyond the committed baseline, sorted.
func checkAllowBudget(path string, pkgs []*Package) ([]budgetViolation, error) {
	budget, err := parseBudget(path)
	if err != nil {
		return nil, err
	}
	used := make(map[string]int)
	for _, pkg := range pkgs {
		for _, dir := range parseDirectives(pkg.Fset, pkg.Files) {
			used[dir.name]++
		}
	}
	var out []budgetViolation
	for name, n := range used {
		if n > budget[name] {
			out = append(out, budgetViolation{name: name, used: n, budget: budget[name]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out, nil
}
