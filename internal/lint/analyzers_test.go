package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestSimDeterminism(t *testing.T) {
	runWantTest(t, SimDeterminism, "camps/internal/vault")
}

func TestSimDeterminismExpAllowlisted(t *testing.T) {
	// internal/exp is orchestration: its wall-clock use must produce zero
	// findings, so the testdata file carries no want comments.
	runWantTest(t, SimDeterminism, "camps/internal/exp")
}

func TestSimDeterminismIgnoresNonSimPackages(t *testing.T) {
	// The same wall-clock-heavy source analyzed under a non-simulation
	// import path is clean: package identity, not file content, selects
	// the rule.
	pkg := loadTestPackage(t, "camps/internal/exp")
	if ds := RunAnalyzer(SimDeterminism, pkg); len(ds) != 0 {
		t.Fatalf("expected no findings outside simulation packages, got %v", ds)
	}
}

func TestMapOrder(t *testing.T) {
	runWantTest(t, MapOrder, "maporder")
}

func TestCtxThread(t *testing.T) {
	runWantTest(t, CtxThread, "camps/internal/harness")
}

func TestCtxThreadIgnoresNonOrchestrationPackages(t *testing.T) {
	// maporder's package path is outside the orchestration set, so even
	// its exported functions are exempt from ctx threading.
	pkg := loadTestPackage(t, "maporder")
	if ds := RunAnalyzer(CtxThread, pkg); len(ds) != 0 {
		t.Fatalf("expected no ctxthread findings outside orchestration packages, got %v", ds)
	}
}

func TestTickArith(t *testing.T) {
	runWantTest(t, TickArith, "tickarith")
}

func TestStatsReg(t *testing.T) {
	runWantTest(t, StatsReg, "statsreg")
}

func TestPfRegister(t *testing.T) {
	runWantTest(t, PfRegister, "pfregister")
}

func TestShardSafeProgram(t *testing.T) {
	runProgramWantTest(t, ShardSafe, filepath.Join("testdata", "prog", "shardsafe", "src"))
}

func TestGlobalMutProgram(t *testing.T) {
	runProgramWantTest(t, GlobalMut, filepath.Join("testdata", "prog", "globalmut", "src"))
}

func TestDetFlowProgram(t *testing.T) {
	runProgramWantTest(t, DetFlow, filepath.Join("testdata", "prog", "detflow", "src"))
}

func TestCheckDirectivesFlagsUnknownNames(t *testing.T) {
	pkg := loadTestPackage(t, "directives")
	ds := CheckDirectives(pkg, All())
	if len(ds) != 1 {
		t.Fatalf("expected exactly one unknown-directive finding, got %v", ds)
	}
	if got := ds[0].Message; !strings.Contains(got, "allow-wallclok") {
		t.Fatalf("finding should name the misspelled directive, got %q", got)
	}
}
