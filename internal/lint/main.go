package lint

import (
	"flag"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"camps/internal/cliutil"
)

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		CtxThread, DetFlow, GlobalMut, MapOrder, PfRegister,
		ShardSafe, SimDeterminism, StatsReg, TickArith,
	}
}

// Exit codes of the campslint CLI.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one finding (or allow budget exceeded)
	ExitUsage    = 2 // bad flags, unknown analyzer, or packages failed to load
)

// Main is the campslint CLI: it loads the program matching the argument
// patterns (default ./...) in one pass, runs the analyzer suite —
// per-package analyzers over the target packages, whole-program
// analyzers over the full module closure via the facts layer and call
// graph — and prints findings one per line as
// file:line:col: [analyzer] message. It returns the process exit code.
//
// Analyzers may be selected either with -only or with a first
// positional argument that is a comma-separated list of analyzer
// names, e.g.
//
//	campslint shardsafe,globalmut,detflow ./...
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("campslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: campslint [flags] [analyzer,...] [packages]\n\nAnalyzers (see docs/LINTING.md):\n")
		printAnalyzers(stderr)
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	var (
		dir         = fs.String("C", "", "run as if campslint were started in `dir`")
		only        = fs.String("only", "", "comma-separated `names` of analyzers to run (default all)")
		list        = fs.Bool("list", false, "list analyzers and exit")
		version     = fs.Bool("version", false, "print build information and exit")
		timing      = fs.Bool("timing", false, "report load and per-analyzer wall time on stderr")
		allowBudget = fs.Bool("allow-budget", false, "fail when //lint:allow-* use exceeds the committed baseline")
		budgetFile  = fs.String("budget-file", ".campslint-budget", "allow-budget baseline `file` (relative to -C)")
		factCache   = fs.String("fact-cache", DefaultFactCacheDir(), "facts cache `dir` for whole-program analyzers (\"off\" disables)")
	)
	if err := fs.Parse(args); err != nil {
		return ExitUsage
	}
	if *version {
		cliutil.PrintVersion(stdout, "campslint")
		return ExitClean
	}
	if *list {
		printAnalyzers(stdout)
		return ExitClean
	}

	patterns := fs.Args()
	if *only == "" && len(patterns) > 0 && isAnalyzerList(patterns[0]) {
		*only = patterns[0]
		patterns = patterns[1:]
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(stderr, "campslint: %v\n", err)
		return ExitUsage
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	start := time.Now()
	prog, err := LoadProgram(*dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "campslint: %v\n", err)
		return ExitUsage
	}
	pkgs := prog.Targets()
	loadTime := time.Since(start)

	// The facts layer and call graph are built once and shared by every
	// whole-program analyzer; per-package analyzers never pay for them.
	var sums *SummarySet
	var graph *CallGraph
	var factsTime time.Duration
	if needsProgram(analyzers) {
		cacheDir := *factCache
		if cacheDir == "off" {
			cacheDir = ""
		}
		start = time.Now()
		sums = Summarize(prog, OpenFactCache(cacheDir))
		graph = BuildCallGraph(prog, sums)
		factsTime = time.Since(start)
	}

	var diags []Diagnostic
	type lap struct {
		name string
		d    time.Duration
	}
	var laps []lap
	for _, a := range analyzers {
		start = time.Now()
		if a.RunProgram != nil {
			diags = append(diags, RunProgramAnalyzer(a, prog, sums, graph)...)
		} else {
			for _, pkg := range pkgs {
				diags = append(diags, RunAnalyzer(a, pkg)...)
			}
		}
		laps = append(laps, lap{a.Name, time.Since(start)})
	}
	for _, pkg := range pkgs {
		diags = append(diags, CheckDirectives(pkg, All())...)
	}
	sortDiagnostics(diags)
	for _, d := range diags {
		d.Pos.Filename = relPath(*dir, d.Pos.Filename)
		fmt.Fprintln(stdout, d.String())
	}

	if *timing {
		fmt.Fprintf(stderr, "campslint: load %v (%d packages, %d targets)\n", loadTime.Round(time.Millisecond), len(prog.Pkgs), len(pkgs))
		if sums != nil {
			fmt.Fprintf(stderr, "campslint: facts+callgraph %v (cache: %d hits, %d misses)\n", factsTime.Round(time.Millisecond), sums.Hits, sums.Misses)
		}
		for _, l := range laps {
			fmt.Fprintf(stderr, "campslint: %-16s %v\n", l.name, l.d.Round(time.Millisecond))
		}
	}

	budgetExceeded := false
	if *allowBudget {
		path := *budgetFile
		if *dir != "" && !filepath.IsAbs(path) {
			path = filepath.Join(*dir, path)
		}
		violations, err := checkAllowBudget(path, pkgs)
		if err != nil {
			fmt.Fprintf(stderr, "campslint: %v\n", err)
			return ExitUsage
		}
		for _, v := range violations {
			budgetExceeded = true
			fmt.Fprintf(stderr, "campslint: allow budget exceeded: %d uses of //lint:allow-%s, baseline permits %d (raise %s in the same change, or remove a suppression)\n",
				v.used, v.name, v.budget, *budgetFile)
		}
	}

	if len(diags) > 0 || budgetExceeded {
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "campslint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		return ExitFindings
	}
	return ExitClean
}

// isAnalyzerList reports whether arg names only known analyzers, which
// lets the analyzer selection ride as the first positional argument.
func isAnalyzerList(arg string) bool {
	byName := make(map[string]bool)
	for _, a := range All() {
		byName[a.Name] = true
	}
	parts := strings.Split(arg, ",")
	for _, p := range parts {
		if !byName[strings.TrimSpace(p)] {
			return false
		}
	}
	return len(parts) > 0
}

func needsProgram(analyzers []*Analyzer) bool {
	for _, a := range analyzers {
		if a.RunProgram != nil {
			return true
		}
	}
	return false
}

func selectAnalyzers(only string) ([]*Analyzer, error) {
	all := All()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	known := make([]string, 0, len(all))
	for _, a := range all {
		byName[a.Name] = a
		known = append(known, a.Name)
	}
	sort.Strings(known)
	var out []*Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers")
	}
	return out, nil
}

func printAnalyzers(w io.Writer) {
	for _, a := range All() {
		fmt.Fprintf(w, "  %-16s %s (suppress: //lint:allow-%s <reason>)\n", a.Name, a.Doc, a.Allow)
	}
}

// relPath shortens abs for display when it sits under the working
// directory the run was anchored to.
func relPath(dir, abs string) string {
	base := dir
	if base == "" {
		base = "."
	}
	absBase, err := filepath.Abs(base)
	if err != nil {
		return abs
	}
	if rel, err := filepath.Rel(absBase, abs); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return abs
}
