package lint

import (
	"flag"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"camps/internal/cliutil"
)

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{CtxThread, MapOrder, PfRegister, SimDeterminism, StatsReg, TickArith}
}

// Exit codes of the campslint CLI.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one finding
	ExitUsage    = 2 // bad flags, unknown analyzer, or packages failed to load
)

// Main is the campslint CLI: it loads the packages matching the argument
// patterns (default ./...), runs the analyzer suite, and prints findings
// one per line as file:line:col: [analyzer] message. It returns the
// process exit code.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("campslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: campslint [flags] [packages]\n\nAnalyzers (see docs/LINTING.md):\n")
		printAnalyzers(stderr)
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	var (
		dir     = fs.String("C", "", "run as if campslint were started in `dir`")
		only    = fs.String("only", "", "comma-separated `names` of analyzers to run (default all)")
		list    = fs.Bool("list", false, "list analyzers and exit")
		version = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return ExitUsage
	}
	if *version {
		cliutil.PrintVersion(stdout, "campslint")
		return ExitClean
	}
	if *list {
		printAnalyzers(stdout)
		return ExitClean
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(stderr, "campslint: %v\n", err)
		return ExitUsage
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := LoadPackages(*dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "campslint: %v\n", err)
		return ExitUsage
	}

	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags = append(diags, RunAnalyzer(a, pkg)...)
		}
		diags = append(diags, CheckDirectives(pkg, All())...)
	}
	sortDiagnostics(diags)
	for _, d := range diags {
		d.Pos.Filename = relPath(*dir, d.Pos.Filename)
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "campslint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return ExitFindings
	}
	return ExitClean
}

func selectAnalyzers(only string) ([]*Analyzer, error) {
	all := All()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	known := make([]string, 0, len(all))
	for _, a := range all {
		byName[a.Name] = a
		known = append(known, a.Name)
	}
	sort.Strings(known)
	var out []*Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers")
	}
	return out, nil
}

func printAnalyzers(w io.Writer) {
	for _, a := range All() {
		fmt.Fprintf(w, "  %-16s %s (suppress: //lint:allow-%s <reason>)\n", a.Name, a.Doc, a.Allow)
	}
}

// relPath shortens abs for display when it sits under the working
// directory the run was anchored to.
func relPath(dir, abs string) string {
	base := dir
	if base == "" {
		base = "."
	}
	absBase, err := filepath.Abs(base)
	if err != nil {
		return abs
	}
	if rel, err := filepath.Rel(absBase, abs); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return abs
}
