package lint

import (
	"go/ast"
	"go/types"
)

// simPackages are the packages whose code runs inside (or feeds) the
// discrete-event simulation. The event engine owns time there — a wall
// clock or a process-global RNG would decorrelate runs that must be
// bit-identical. internal/exp is deliberately absent: its wall-clock
// timeouts and retry backoffs are orchestration, not simulation.
var simPackages = map[string]bool{
	"camps/internal/sim":      true,
	"camps/internal/dram":     true,
	"camps/internal/vault":    true,
	"camps/internal/hmc":      true,
	"camps/internal/cache":    true,
	"camps/internal/cpu":      true,
	"camps/internal/prefetch": true,
	"camps/internal/pfbuffer": true,
	"camps/internal/trace":    true,
	"camps/internal/stats":    true,
	"camps/internal/report":   true,
	"camps/internal/fault":    true,
}

// wallClockFuncs are the package-level time functions that read or react
// to the wall clock. Pure time arithmetic (time.Duration constants,
// Time.Sub on stored values) is allowed.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// randConstructors are the math/rand entry points that build an
// explicitly-seeded generator instead of touching the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// SimDeterminism forbids wall-clock reads and global math/rand use in
// simulation packages.
var SimDeterminism = &Analyzer{
	Name:  "simdeterminism",
	Doc:   "forbid time.Now/time.Since and global math/rand in simulation packages",
	Allow: "wallclock",
	Run:   runSimDeterminism,
}

func runSimDeterminism(pass *Pass) {
	if !simPackages[pass.Pkg.Path()] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (t.Sub, r.Intn on an owned *rand.Rand) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s in simulation package %s: wall-clock reads break run-to-run determinism; use sim.Engine time, or //lint:allow-wallclock <reason>",
						fn.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"global %s.%s in simulation package %s: process-global RNG state breaks run-to-run determinism; use trace.RNG or an explicitly seeded rand.New",
						fn.Pkg().Path(), fn.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
}
