package exp

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"camps"
	"camps/internal/obs"
	"camps/internal/workload"
)

// fakeCells enumerates n synthetic grid cells (distinct seeds).
func fakeCells(n int) []Cell {
	mix, _ := workload.MixByID("HM1")
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell{Mix: mix, Scheme: camps.CAMPS, Seed: uint64(i + 1)}
	}
	return cells
}

// fakeResults returns distinguishable results for a cell.
func fakeResults(c Cell) camps.Results {
	return camps.Results{Mix: c.Mix.ID, Scheme: c.Scheme, GeoMeanIPC: float64(c.Seed)}
}

func TestGridEnumeration(t *testing.T) {
	mixes := workload.Mixes()[:2]
	schemes := []camps.Scheme{camps.BASE, camps.CAMPSMOD}
	cells := Grid(mixes, schemes, []uint64{0, 7})
	if len(cells) != 8 {
		t.Fatalf("enumerated %d cells, want 8", len(cells))
	}
	// Seed 0 normalizes to the camps default 1 for stable checkpoint keys.
	if cells[0].Key() != "HM1/BASE/seed=1" {
		t.Fatalf("first key = %q", cells[0].Key())
	}
	keys := map[string]bool{}
	for _, c := range cells {
		if keys[c.Key()] {
			t.Fatalf("duplicate key %s", c.Key())
		}
		keys[c.Key()] = true
	}
}

func TestSweepEnumerationAppliesKnob(t *testing.T) {
	mix, _ := workload.MixByID("HM2")
	cells := Sweep(mix, camps.CAMPSMOD, 0, "ct", []int64{8, 64},
		func(sys *camps.SystemConfig, v int64) { sys.CAMPS.CTEntries = int(v) })
	if len(cells) != 2 {
		t.Fatalf("enumerated %d cells", len(cells))
	}
	if cells[1].Key() != "HM2/CAMPS-MOD/seed=1/ct=64" {
		t.Fatalf("key = %q", cells[1].Key())
	}
	sys := camps.DefaultSystem()
	cells[0].Apply(&sys)
	if sys.CAMPS.CTEntries != 8 {
		t.Fatalf("apply set CTEntries = %d, want 8", sys.CAMPS.CTEntries)
	}
}

func TestRunCompletesAllCellsInOrder(t *testing.T) {
	cells := fakeCells(9)
	var calls atomic.Uint64
	var progress []CellResult
	res, st, err := Run(context.Background(), cells, Options{
		Parallelism: 3,
		Progress:    func(cr CellResult) { progress = append(progress, cr) },
		RunCell: func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
			calls.Add(1)
			return fakeResults(c), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 9 || calls.Load() != 9 || len(progress) != 9 {
		t.Fatalf("res=%d calls=%d progress=%d, want 9 each", len(res), calls.Load(), len(progress))
	}
	for i, r := range res {
		if r.Seed != uint64(i+1) {
			t.Fatalf("result %d has seed %d: not in enumeration order", i, r.Seed)
		}
		if r.Attempt != 1 || r.Resumed {
			t.Fatalf("result %d: attempt=%d resumed=%v", i, r.Attempt, r.Resumed)
		}
		if r.Results.GeoMeanIPC != float64(r.Seed) {
			t.Fatalf("result %d carries wrong results", i)
		}
	}
	if st.Started != 9 || st.Completed != 9 || st.Retried != 0 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryTransientThenSucceed(t *testing.T) {
	cells := fakeCells(1)
	var calls atomic.Uint64
	res, st, err := Run(context.Background(), cells, Options{
		Retries: 3,
		Backoff: time.Millisecond,
		RunCell: func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
			if calls.Add(1) < 3 {
				return camps.Results{}, fmt.Errorf("transient blip")
			}
			return fakeResults(c), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Attempt != 3 {
		t.Fatalf("res=%v", res)
	}
	if st.Retried != 2 || st.Started != 3 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetriesExhausted(t *testing.T) {
	cells := fakeCells(1)
	var calls atomic.Uint64
	_, st, err := Run(context.Background(), cells, Options{
		Retries: 2,
		Backoff: time.Millisecond,
		RunCell: func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
			calls.Add(1)
			return camps.Results{}, fmt.Errorf("still broken")
		},
	})
	if err == nil {
		t.Fatal("campaign succeeded despite exhausted retries")
	}
	if calls.Load() != 3 {
		t.Fatalf("runCell called %d times, want 3", calls.Load())
	}
	if st.Failed != 1 || st.Retried != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPermanentFailureIsNotRetried(t *testing.T) {
	cells := fakeCells(1)
	var calls atomic.Uint64
	_, st, err := Run(context.Background(), cells, Options{
		Retries: 5,
		Backoff: time.Millisecond,
		RunCell: func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
			calls.Add(1)
			return camps.Results{}, fmt.Errorf("wrapped: %w", camps.ErrInvalidConfig)
		},
	})
	if err == nil || !errors.Is(err, camps.ErrInvalidConfig) {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("permanent failure retried: %d calls", calls.Load())
	}
	if st.Failed != 1 || st.Retried != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCellTimeout(t *testing.T) {
	cells := fakeCells(1)
	_, _, err := Run(context.Background(), cells, Options{
		CellTimeout: 5 * time.Millisecond,
		RunCell: func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
			<-ctx.Done() // a simulation that honors cancellation
			return camps.Results{}, fmt.Errorf("cell timed out: %w", ctx.Err())
		},
	})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestCampaignCancellation(t *testing.T) {
	cells := fakeCells(16)
	ctx, cancel := context.WithCancel(context.Background())
	var completed atomic.Uint64
	res, st, err := Run(ctx, cells, Options{
		Parallelism: 2,
		RunCell: func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
			if completed.Add(1) == 4 {
				cancel()
			}
			if err := ctx.Err(); err != nil {
				return camps.Results{}, err
			}
			return fakeResults(c), nil
		},
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res) == len(cells) {
		t.Fatal("cancelled campaign still completed every cell")
	}
	if st.Cancelled == 0 {
		t.Fatalf("stats = %+v: no cells recorded as cancelled", st)
	}
}

func TestDuplicateCellsRejected(t *testing.T) {
	cells := fakeCells(2)
	cells[1].Seed = cells[0].Seed
	_, _, err := Run(context.Background(), cells, Options{
		RunCell: func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
			return fakeResults(c), nil
		},
	})
	if !errors.Is(err, ErrDuplicateCell) {
		t.Fatalf("err = %v, want ErrDuplicateCell", err)
	}
}

func TestCheckpointResumeSkipsDoneCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	cells := fakeCells(10)

	// First run: cancel once 4 cells have been checkpointed.
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	firstDone := 0
	_, st1, err := Run(ctx, cells, Options{
		Parallelism: 1,
		Checkpoint:  path,
		Progress: func(cr CellResult) {
			mu.Lock()
			firstDone++
			if firstDone == 4 {
				cancel()
			}
			mu.Unlock()
		},
		RunCell: func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
			return fakeResults(c), nil
		},
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("first run err = %v", err)
	}
	if st1.Completed < 4 {
		t.Fatalf("first run completed %d cells, want >= 4", st1.Completed)
	}

	// Second run resumes: only the remaining cells execute.
	var calls atomic.Uint64
	res, st2, err := Run(context.Background(), cells, Options{
		Parallelism: 2,
		Checkpoint:  path,
		Resume:      true,
		RunCell: func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
			calls.Add(1)
			return fakeResults(c), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("resumed campaign returned %d cells, want 10", len(res))
	}
	if st2.Resumed != st1.Completed {
		t.Fatalf("resumed %d cells, want %d", st2.Resumed, st1.Completed)
	}
	if want := 10 - st1.Completed; calls.Load() != want {
		t.Fatalf("second run executed %d cells, want %d", calls.Load(), want)
	}
	resumed := 0
	for _, r := range res {
		if r.Resumed {
			resumed++
			if r.Results.GeoMeanIPC != float64(r.Seed) {
				t.Fatalf("resumed cell %s lost its results", r.Mix)
			}
		}
	}
	if uint64(resumed) != st2.Resumed {
		t.Fatalf("resumed flag on %d results, stats say %d", resumed, st2.Resumed)
	}

	// Third run: everything resumes, nothing executes.
	_, st3, err := Run(context.Background(), cells, Options{
		Checkpoint: path,
		Resume:     true,
		RunCell: func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
			t.Error("fully-checkpointed campaign executed a cell")
			return fakeResults(c), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st3.Resumed != 10 || st3.Started != 0 {
		t.Fatalf("stats = %+v", st3)
	}
}

func TestWithoutResumeCheckpointIsIgnoredOnRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	cells := fakeCells(3)
	runAll := Options{
		Checkpoint: path,
		RunCell: func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
			return fakeResults(c), nil
		},
	}
	if _, _, err := Run(context.Background(), cells, runAll); err != nil {
		t.Fatal(err)
	}
	// Resume off: cells re-execute even though the store has them.
	var calls atomic.Uint64
	runAll.RunCell = func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
		calls.Add(1)
		return fakeResults(c), nil
	}
	if _, _, err := Run(context.Background(), cells, runAll); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("executed %d cells, want 3", calls.Load())
	}
}

func TestObsInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	cells := fakeCells(4)
	_, _, err := Run(context.Background(), cells, Options{
		Obs: reg,
		RunCell: func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
			time.Sleep(time.Millisecond)
			return fakeResults(c), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot("final", 0)
	if snap.Counter("exp.cells_completed") != 4 || snap.Counter("exp.cells_started") != 4 {
		t.Fatalf("snapshot counters = %+v", snap.Counters)
	}
	h := reg.Histogram("exp.cell_wall_ms")
	if h.Count() != 4 {
		t.Fatalf("latency histogram has %d samples, want 4", h.Count())
	}
}
