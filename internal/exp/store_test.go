package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"camps"
	"camps/internal/workload"
)

func testRecord(seed uint64) Record {
	mix, _ := workload.MixByID("HM1")
	c := Cell{Mix: mix, Scheme: camps.CAMPSMOD, Seed: seed}
	cr := CellResult{Attempt: 1, Results: camps.Results{Mix: "HM1", GeoMeanIPC: float64(seed) * 0.5}}
	return recordOf(c, cr)
}

func TestStoreAppendAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		if err := s.Append(testRecord(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	done := s2.Done()
	if len(done) != 3 {
		t.Fatalf("reloaded %d records", len(done))
	}
	rec, ok := done["HM1/CAMPS-MOD/seed=2"]
	if !ok {
		t.Fatalf("missing record; keys = %v", done)
	}
	if rec.Results.GeoMeanIPC != 1.0 {
		t.Fatalf("results lost in round-trip: %+v", rec.Results)
	}
	cr := rec.cellResult()
	if !cr.Resumed || cr.Scheme != camps.CAMPSMOD || cr.Seed != 2 {
		t.Fatalf("cellResult = %+v", cr)
	}
}

func TestStoreResultsRoundTripCounters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord(1)
	rec.Results.VaultStats.RowConflicts.Add(77)
	rec.Results.BufferStats.FirstUseDelay.Observe(123)
	if err := s.Append(rec); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	back := s2.Done()[rec.Key]
	if back.Results.VaultStats.RowConflicts.Value() != 77 {
		t.Fatalf("counter lost: %d", back.Results.VaultStats.RowConflicts.Value())
	}
	if back.Results.BufferStats.FirstUseDelay.Mean() != 123 {
		t.Fatalf("latency accumulator lost: %g", back.Results.BufferStats.FirstUseDelay.Mean())
	}
}

func TestStoreTornFinalLineIsRepaired(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Append(testRecord(1))
	s.Append(testRecord(2))
	s.Close()

	// Simulate a crash mid-append: a truncated trailing record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"HM1/CAMPS-MOD/seed=3","resul`)
	f.Close()

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("len after torn append = %d, want 2", s2.Len())
	}
	// The torn bytes must be truncated away so the next append is clean.
	if err := s2.Append(testRecord(3)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 3 {
		t.Fatalf("len after repair+append = %d, want 3", s3.Len())
	}
}

func TestStoreRejectsCorruptInterior(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	if err := os.WriteFile(path, []byte("not json\n{\"key\":\"k\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenStore(path)
	if err == nil || !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("err = %v, want corrupt-record error", err)
	}
}

// TestStoreCompact: re-appending records for cells the store already
// holds (exactly what resumed campaigns do) grows the file; Compact
// rewrites it down to the latest record per key, keeps the newest
// values, and leaves the store usable for further appends.
func TestStoreCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for seed := uint64(1); seed <= 4; seed++ {
			rec := testRecord(seed)
			rec.Attempt = round + 1 // newest round must survive compaction
			if err := s.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	kept, dropped, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if kept != 4 || dropped != 8 {
		t.Fatalf("Compact = (kept %d, dropped %d), want (4, 8)", kept, dropped)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the file: %d -> %d bytes", before.Size(), after.Size())
	}

	// The store stays live: appends after Compact land in the new file.
	if err := s.Append(testRecord(5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 5 {
		t.Fatalf("reloaded %d records, want 5", s2.Len())
	}
	if got := s2.Done()["HM1/CAMPS-MOD/seed=2"].Attempt; got != 3 {
		t.Fatalf("compaction kept attempt %d, want the latest (3)", got)
	}
	// Compacting an already-compact store is a no-op.
	kept, dropped, err = s2.Compact()
	if err != nil || kept != 5 || dropped != 0 {
		t.Fatalf("second Compact = (%d, %d, %v), want (5, 0, nil)", kept, dropped, err)
	}
}

// TestStoreCreateSyncsParentDirectory: regression note for the
// create-without-directory-fsync bug. Append fsyncs made the *contents*
// durable, but the file's directory entry is separate metadata: on
// journaling filesystems a crash shortly after creation could lose the
// whole store even though every record in it had been synced. OpenStore
// now fsyncs the parent directory when it creates the file (syncDir,
// shared with AtomicWriteFile's rename path). Durability across power
// loss is untestable in-process; this pins the code path — creation in
// a freshly made directory — and the store's usability through it.
func TestStoreCreateSyncsParentDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "s.jsonl")
	s, err := OpenStore(path) // creates: must sync the parent directory
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(path) // reopen: the non-creating path
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("reloaded %d records, want 1", s2.Len())
	}
}

func TestStoreEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 0 {
		t.Fatalf("fresh store has %d records", s.Len())
	}
}
