package exp

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"camps"
)

// FuzzStoreRepair throws arbitrary bytes at the JSONL checkpoint loader.
// OpenStore's contract under corruption: never panic; repair a torn
// final line by truncating it away; reject corruption elsewhere with an
// error; and leave any successfully-opened store in a usable,
// stable state (appends land, reopening sees them, re-repair is a
// no-op).
func FuzzStoreRepair(f *testing.F) {
	rec := Record{Key: "HM1/CAMPS/seed=1", Mix: "HM1", Scheme: "CAMPS", Seed: 1, Attempt: 1,
		Results: camps.Results{Scheme: camps.CAMPS}}
	line, err := json.Marshal(rec)
	if err != nil {
		f.Fatal(err)
	}
	line = append(line, '\n')

	f.Add([]byte{})                                   // empty store
	f.Add(line)                                       // one complete record
	f.Add(append(append([]byte{}, line...), line[:20]...)) // torn append
	f.Add([]byte("{\"key\":\"\"}\n"))                 // keyless record
	f.Add([]byte("not json at all\n{\"key\":\"x\"}\n")) // corruption before the end
	f.Add([]byte("\n\n\n"))
	f.Add(bytes.Repeat([]byte("{"), 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "ckpt.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenStore(path)
		if err != nil {
			return // rejected as corrupt: fine, as long as we did not panic
		}
		n := s.Len()

		// The repaired store accepts appends and round-trips them.
		extra := Record{Key: "fuzz/extra", Mix: "MX1", Scheme: "BASE", Seed: 7, Attempt: 1}
		if aerr := s.Append(extra); aerr != nil {
			t.Fatalf("append after repair: %v", aerr)
		}
		if s.Len() < n+1 && s.done["fuzz/extra"].Key != "fuzz/extra" {
			t.Fatalf("append did not land: len %d -> %d", n, s.Len())
		}
		if cerr := s.Close(); cerr != nil {
			t.Fatalf("close: %v", cerr)
		}

		// Repair is stable: reopening succeeds and sees every surviving
		// record plus the appended one.
		s2, err := OpenStore(path)
		if err != nil {
			t.Fatalf("reopen after repair+append: %v", err)
		}
		defer s2.Close()
		got, ok := s2.Done()["fuzz/extra"]
		if !ok || got.Mix != "MX1" || got.Seed != 7 {
			t.Fatalf("appended record lost on reopen: %+v", got)
		}
		if s2.Len() != s.Len() {
			t.Fatalf("record count changed across reopen: %d != %d", s2.Len(), s.Len())
		}
	})
}
