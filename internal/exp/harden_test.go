package exp

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"camps"
)

func TestPanicInCellIsRecoveredAndRetried(t *testing.T) {
	cells := fakeCells(1)
	var calls atomic.Uint64
	res, st, err := Run(context.Background(), cells, Options{
		Retries: 2,
		Backoff: time.Millisecond,
		RunCell: func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
			if calls.Add(1) == 1 {
				panic("index out of range in buggy prefetcher")
			}
			return fakeResults(c), nil
		},
	})
	if err != nil {
		t.Fatalf("recovered panic failed the campaign: %v", err)
	}
	if len(res) != 1 || res[0].Attempt != 2 {
		t.Fatalf("res = %+v, want one cell on attempt 2", res)
	}
	if st.Retried != 1 {
		t.Fatalf("stats = %+v, want one retry", st)
	}
}

func TestPanicExhaustingRetriesIsTyped(t *testing.T) {
	cells := fakeCells(1)
	_, st, err := Run(context.Background(), cells, Options{
		RunCell: func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
			panic("always broken")
		},
	})
	if err == nil {
		t.Fatal("panicking cell succeeded")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Cell != cells[0].Key() || !strings.Contains(pe.Error(), "always broken") {
		t.Fatalf("panic error lost context: %v", pe)
	}
	if len(pe.Stack) == 0 || !bytes.Contains(pe.Stack, []byte("goroutine")) {
		t.Fatal("panic error carries no stack")
	}
	if st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWatchdogKillsHungCell(t *testing.T) {
	cells := fakeCells(1)
	release := make(chan struct{})
	defer close(release) // unblock the abandoned goroutine at test end
	_, st, err := Run(context.Background(), cells, Options{
		CellTimeout: 5 * time.Millisecond,
		HangGrace:   20 * time.Millisecond,
		RunCell: func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
			<-release // a deadlocked simulation: never polls ctx
			return fakeResults(c), nil
		},
	})
	if err == nil {
		t.Fatal("hung cell succeeded")
	}
	var he *HangError
	if !errors.As(err, &he) {
		t.Fatalf("err = %v, want *HangError", err)
	}
	if he.Cell != cells[0].Key() || he.Grace != 20*time.Millisecond {
		t.Fatalf("hang error lost context: cell=%q grace=%v", he.Cell, he.Grace)
	}
	// The dump must cover all goroutines so the hang site is visible.
	if !bytes.Contains(he.Stack, []byte("TestWatchdogKillsHungCell")) {
		t.Fatal("goroutine dump does not include the hung cell's stack")
	}
	if st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHangIsRetriedLikeAnyTransientFailure(t *testing.T) {
	cells := fakeCells(1)
	var calls atomic.Uint64
	res, _, err := Run(context.Background(), cells, Options{
		CellTimeout: 5 * time.Millisecond,
		HangGrace:   10 * time.Millisecond,
		Retries:     1,
		Backoff:     time.Millisecond,
		RunCell: func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
			if calls.Add(1) == 1 {
				select {} // first attempt deadlocks forever
			}
			return fakeResults(c), nil
		},
	})
	if err != nil {
		t.Fatalf("retry after hang failed: %v", err)
	}
	if len(res) != 1 || res[0].Attempt != 2 {
		t.Fatalf("res = %+v, want success on attempt 2", res)
	}
}

func TestBadFaultSpecIsPermanent(t *testing.T) {
	cells := fakeCells(1)
	var calls atomic.Uint64
	opts := Options{
		Retries: 5,
		Backoff: time.Millisecond,
		Faults:  camps.FaultSpec{LinkCRCRate: 2}, // invalid: rate > 1
	}
	opts.RunCell = func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
		calls.Add(1)
		return ExecuteCell(ctx, c, o)
	}
	_, st, err := Run(context.Background(), cells, opts)
	if !errors.Is(err, camps.ErrBadFaultSpec) {
		t.Fatalf("err = %v, want ErrBadFaultSpec", err)
	}
	if calls.Load() != 1 || st.Retried != 0 {
		t.Fatalf("deterministic spec failure retried: calls=%d stats=%+v", calls.Load(), st)
	}
}

// The satellite scenario: a campaign killed mid-checkpoint-write leaves a
// torn final record; resuming must repair the store and finish with every
// cell present exactly once — none lost, none duplicated, the torn one
// re-executed.
func TestCrashMidCheckpointWriteThenResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	cells := fakeCells(8)

	run := func(n int) Options {
		return Options{
			Parallelism: 1,
			Checkpoint:  path,
			Resume:      true,
			RunCell: func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
				return fakeResults(c), nil
			},
		}
	}
	if _, st, err := Run(context.Background(), cells[:5], run(5)); err != nil || st.Completed != 5 {
		t.Fatalf("first leg: %v %+v", err, st)
	}

	// Simulate SIGKILL mid-Append: chop the last record in half.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	last := lines[len(lines)-1]
	torn := data[:len(data)-len(last)/2-1] // keep half of the final record, no newline
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	var reran []string
	opts := run(8)
	inner := opts.RunCell
	opts.RunCell = func(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
		reran = append(reran, c.Key())
		return inner(ctx, c, o)
	}
	res, st, err := Run(context.Background(), cells, opts)
	if err != nil {
		t.Fatal(err)
	}
	// 4 intact checkpoints resume; the torn 5th plus the 3 never-run cells
	// re-execute.
	if st.Resumed != 4 || st.Completed != 4 {
		t.Fatalf("stats after repair = %+v, want 4 resumed + 4 completed", st)
	}
	if len(reran) != 4 {
		t.Fatalf("re-executed %v, want the torn cell and the 3 pending ones", reran)
	}
	seen := map[string]int{}
	for _, r := range res {
		key := Cell{Mix: cells[0].Mix, Scheme: r.Scheme, Seed: r.Seed}.Key()
		seen[key]++
	}
	if len(res) != 8 || len(seen) != 8 {
		t.Fatalf("final campaign has %d results over %d keys, want 8 distinct", len(res), len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("cell %s appears %d times", k, n)
		}
	}

	// The store itself must now hold all 8, cleanly parseable.
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 8 {
		t.Fatalf("store has %d records, want 8", s.Len())
	}
}

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := AtomicWriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte("v2-longer"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2-longer" {
		t.Fatalf("content = %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
	if err := AtomicWriteFile(filepath.Join(dir, "missing", "x"), []byte("x"), 0o644); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
}
