package exp

import "camps"

// Knob is one sweepable configuration dimension: a hardware parameter of
// the simulated system or an engine-exported tuning parameter. The table
// is shared by cmd/campsweep (the -knob flag) and internal/serve (the
// job spec's knob/values sweep), so both surfaces accept exactly the
// same dimensions.
type Knob struct {
	Name  string
	Help  string
	Apply func(sys *camps.SystemConfig, v int64)
}

// hardwareKnobs are the simulator-level dimensions; engine knobs come
// from the prefetch registry (camps.EngineKnobs) and are merged in by
// Knobs.
var hardwareKnobs = []Knob{
	{"buffer", "prefetch-buffer entries per vault",
		func(sys *camps.SystemConfig, v int64) {
			sys.PFBuffer.SizeBytes = v * int64(sys.PFBuffer.LineBytes)
		}},
	{"window", "per-core MLP window (outstanding misses)",
		func(sys *camps.SystemConfig, v int64) { sys.Processor.WindowSize = int(v) }},
	{"tsv", "per-vault TSV bandwidth in GB/s (0 = unlimited)",
		func(sys *camps.SystemConfig, v int64) { sys.HMC.TSVGBps = v }},
	{"vaults", "vault count (power of two)",
		func(sys *camps.SystemConfig, v int64) { sys.HMC.Vaults = int(v) }},
	{"mshrs", "shared L3 MSHR entries",
		func(sys *camps.SystemConfig, v int64) { sys.L3.MSHRs = int(v) }},
	{"readq", "vault read-queue depth",
		func(sys *camps.SystemConfig, v int64) { sys.HMC.ReadQueue = int(v) }},
	{"port", "vault crossbar ingress port GB/s (0 = unbounded)",
		func(sys *camps.SystemConfig, v int64) { sys.Links.VaultPortGBps = v }},
	{"l2pf", "core-side L2 stride prefetch degree (0 = off)",
		func(sys *camps.SystemConfig, v int64) { sys.Processor.L2PrefetchDegree = int(v) }},
}

// Knobs returns every sweepable knob keyed by name: the hardware table
// above merged with the prefetch registry's per-engine knobs (ct,
// threshold, mmd.degree, ghb.width, ...), so a newly registered engine's
// parameters are sweepable everywhere without touching this file. The
// map is built fresh on every call — callers own it, and the package
// keeps no mutable state.
func Knobs() map[string]Knob {
	m := make(map[string]Knob, len(hardwareKnobs)+8)
	for _, k := range hardwareKnobs {
		m[k.Name] = k
	}
	for _, ek := range camps.EngineKnobs() {
		if _, dup := m[ek.Name]; dup {
			panic("exp: engine knob shadows hardware knob: " + ek.Name)
		}
		m[ek.Name] = Knob{Name: ek.Name, Help: ek.Help, Apply: ek.Apply}
	}
	return m
}

// LookupKnob returns the named knob, or false if no such dimension is
// registered.
func LookupKnob(name string) (Knob, bool) {
	k, ok := Knobs()[name]
	return k, ok
}
