// Package exp orchestrates simulation campaigns: it shards the cells of a
// design-space exploration — (mix × scheme × seed × knob-value) points —
// across a bounded worker pool, applies per-cell wall-clock timeouts and
// bounded retry-with-backoff, checkpoints every completed cell to a JSONL
// store so an interrupted campaign resumes where it stopped, and threads
// context.Context cancellation down into each simulation via
// camps.RunContext.
//
// The harness grid runner (internal/harness) and the 1-D sweep CLI
// (cmd/campsweep) are thin clients of this package: a grid and a sweep are
// both just cell enumerations handed to Run.
package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"camps"
	"camps/internal/obs"
	"camps/internal/workload"
)

// Cell is one point of a campaign's design space.
type Cell struct {
	// Mix and Scheme select the workload and prefetcher under test.
	Mix    workload.Mix
	Scheme camps.Scheme
	// Seed decorrelates the synthetic traces (0 means the camps default 1;
	// enumerators normalize it so checkpoint keys are stable).
	Seed uint64
	// Knob/Value name a single configuration override for 1-D sweeps.
	// They are part of the cell's identity (and so of its checkpoint key);
	// Apply performs the actual mutation and is not serialized.
	Knob  string
	Value int64
	Apply func(*camps.SystemConfig) `json:"-"`
}

// Key uniquely identifies the cell within a campaign; it is the primary
// key of the checkpoint store.
func (c Cell) Key() string {
	k := fmt.Sprintf("%s/%v/seed=%d", c.Mix.ID, c.Scheme, c.Seed)
	if c.Knob != "" {
		k += fmt.Sprintf("/%s=%d", c.Knob, c.Value)
	}
	return k
}

// Grid enumerates mixes × schemes × seeds in row-major presentation order,
// the full-factorial campaign of the paper's evaluation.
func Grid(mixes []workload.Mix, schemes []camps.Scheme, seeds []uint64) []Cell {
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	cells := make([]Cell, 0, len(mixes)*len(schemes)*len(seeds))
	for _, seed := range seeds {
		if seed == 0 {
			seed = 1
		}
		for _, m := range mixes {
			for _, s := range schemes {
				cells = append(cells, Cell{Mix: m, Scheme: s, Seed: seed})
			}
		}
	}
	return cells
}

// Sweep enumerates one knob across values for a fixed mix/scheme/seed —
// the 1-D ablation campaign behind cmd/campsweep.
func Sweep(mix workload.Mix, scheme camps.Scheme, seed uint64, knob string,
	values []int64, apply func(*camps.SystemConfig, int64)) []Cell {
	if seed == 0 {
		seed = 1
	}
	cells := make([]Cell, 0, len(values))
	for _, v := range values {
		v := v
		cells = append(cells, Cell{
			Mix: mix, Scheme: scheme, Seed: seed, Knob: knob, Value: v,
			Apply: func(sys *camps.SystemConfig) { apply(sys, v) },
		})
	}
	return cells
}

// CellResult is one completed cell: identity, execution bookkeeping, and
// the simulation's measurements. It is the single argument of Progress
// callbacks, so adding fields does not break callers.
type CellResult struct {
	Mix    string
	Scheme camps.Scheme
	Seed   uint64
	Knob   string
	Value  int64
	// Attempt is the 1-based attempt that produced the result (>1 after
	// transient-failure retries).
	Attempt int
	// Duration is the wall-clock time of the successful attempt (zero for
	// resumed cells, which were not executed in this process).
	Duration time.Duration
	// Resumed marks a cell restored from the checkpoint store rather than
	// executed.
	Resumed bool
	Results camps.Results
}

// Options configures a campaign.
type Options struct {
	// System is the hardware configuration every cell starts from (zero
	// value: Table I). A cell's Apply override mutates a copy.
	System camps.SystemConfig
	// WarmupRefs / MeasureInstr scale the per-cell simulation (defaults
	// from camps.RunConfig).
	WarmupRefs   uint64
	MeasureInstr uint64
	// Faults is the deterministic fault environment applied to every cell
	// (zero value: fault-free). The cell's Seed combines with Faults.Seed,
	// so each cell sees its own reproducible fault schedule.
	Faults camps.FaultSpec
	// CheckInvariants arms the per-run invariant checker in every cell; a
	// violation fails the cell with an error matching camps.ErrInvariant
	// (deterministic, so it is never retried).
	CheckInvariants bool
	// Parallelism is the worker count (default NumCPU).
	Parallelism int
	// QueueDepth bounds the cell queue feeding the workers (default
	// 2×Parallelism), so enormous campaigns do not buffer every cell.
	QueueDepth int
	// CellTimeout is the wall-clock budget of one attempt (0 = none). An
	// attempt that exceeds it is cancelled mid-simulation and counts as a
	// transient failure.
	CellTimeout time.Duration
	// Retries is how many additional attempts a transiently failing cell
	// gets (default 0). Permanent failures — invalid configuration,
	// mix/core mismatch, unknown mix — are never retried.
	Retries int
	// Backoff is the wait before the first retry, doubling per attempt
	// (default 100ms).
	Backoff time.Duration
	// HangGrace is how long past context cancellation (cell timeout or
	// campaign cancellation) the watchdog lets an attempt keep running
	// before declaring it hung, abandoning its goroutine, and failing the
	// cell with a *HangError carrying a full goroutine dump (default 2s).
	HangGrace time.Duration
	// Checkpoint names the JSONL result store ("" = no checkpointing).
	// Every completed cell is appended and fsync'd as soon as it finishes,
	// so an interrupted campaign leaves a valid store behind.
	Checkpoint string
	// Resume skips cells already present in the checkpoint store,
	// surfacing them as CellResults with Resumed set.
	Resume bool
	// Obs, when non-nil, receives the scheduler's counters
	// (exp.cells_started/completed/retried/cancelled/failed/resumed) and
	// the per-cell wall-clock latency histogram (exp.cell_wall_ms).
	// Snapshot it after Run returns; during the run it is written
	// concurrently by the workers.
	Obs *obs.Registry
	// Progress, when non-nil, receives every completed cell (including
	// resumed ones) as it lands. Calls are serialized; the callback need
	// not be safe for concurrent use.
	Progress func(CellResult)
	// Gate, when non-nil, is acquired before every cell attempt sequence
	// and released when the cell finishes (success or failure). It is how
	// a service hosting many concurrent campaigns imposes global and
	// per-tenant in-flight-cell caps on top of Parallelism: Acquire may
	// block until a slot frees, and must return promptly with ctx.Err()
	// once ctx is cancelled. Acquire/Release are called from worker
	// goroutines and must be safe for concurrent use.
	Gate Gate
	// CellObs, when non-nil, supplies the obs suite for each cell's
	// simulation (nil return = that cell runs without observability).
	// This is the hook job-granular epoch streaming attaches to: the
	// suite's OnSnapshot sees every epoch as the cell simulates. Called
	// from worker goroutines; must be safe for concurrent use.
	CellObs func(Cell) *obs.Suite
	// RunCell, when non-nil, replaces cell execution entirely — the seam
	// result caches, dry-run estimators, and tests plug into. Overrides
	// that only wrap (cache lookaside, accounting) fall back to
	// ExecuteCell for the real simulation. Called from worker goroutines;
	// must be safe for concurrent use.
	RunCell func(ctx context.Context, c Cell, o *Options) (camps.Results, error)
}

// Gate throttles cell execution across campaign boundaries; see
// Options.Gate.
type Gate interface {
	// Acquire blocks until a slot is available or ctx is cancelled
	// (returning ctx.Err()).
	Acquire(ctx context.Context) error
	// Release returns the slot taken by the matching Acquire.
	Release()
}

func (o *Options) applyDefaults() {
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 2 * o.Parallelism
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.HangGrace <= 0 {
		o.HangGrace = 2 * time.Second
	}
	if o.RunCell == nil {
		o.RunCell = ExecuteCell
	}
}

// Stats summarizes a campaign's scheduler activity.
type Stats struct {
	// Started counts execution attempts (retries included).
	Started uint64
	// Completed counts cells that produced results in this process.
	Completed uint64
	// Retried counts transient failures that were given another attempt.
	Retried uint64
	// Cancelled counts cells abandoned because the campaign context was
	// cancelled.
	Cancelled uint64
	// Failed counts cells whose final attempt failed.
	Failed uint64
	// Resumed counts cells restored from the checkpoint store.
	Resumed uint64
}

// ErrDuplicateCell reports two cells with the same Key in one campaign,
// which would make the checkpoint ambiguous.
var ErrDuplicateCell = errors.New("exp: duplicate cell key")

// Run executes the campaign under ctx and returns the completed cells in
// enumeration order (resumed cells included), plus scheduler statistics.
// On cancellation it returns the cells completed so far and an error
// wrapping ctx.Err(); the checkpoint store, if any, already holds every
// completed cell, so re-running with Resume finishes the campaign without
// re-executing them.
func Run(ctx context.Context, cells []Cell, opts Options) ([]CellResult, Stats, error) {
	opts.applyDefaults()

	seen := make(map[string]struct{}, len(cells))
	for _, c := range cells {
		k := c.Key()
		if _, dup := seen[k]; dup {
			return nil, Stats{}, fmt.Errorf("%w: %s", ErrDuplicateCell, k)
		}
		seen[k] = struct{}{}
	}

	var (
		mu    sync.Mutex // guards st, results, store appends, Progress, lat
		st    Stats
		lat   = obs.NewHistogram()
		done  = map[string]Record{}
		store *Store
	)
	if opts.Obs != nil {
		instrument(opts.Obs, &st, &mu)
		lat = opts.Obs.Histogram("exp.cell_wall_ms")
	}
	if opts.Checkpoint != "" {
		var err error
		store, err = OpenStore(opts.Checkpoint)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("exp: checkpoint: %w", err)
		}
		defer store.Close()
		if opts.Resume {
			done = store.Done()
		}
	}

	results := make([]*CellResult, len(cells))
	finish := func(i int, cr CellResult) {
		mu.Lock()
		defer mu.Unlock()
		results[i] = &cr
		if opts.Progress != nil {
			opts.Progress(cr)
		}
	}

	var pending []int
	for i, c := range cells {
		if rec, ok := done[c.Key()]; ok {
			st.Resumed++
			finish(i, rec.cellResult())
			continue
		}
		pending = append(pending, i)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	queue := make(chan int, opts.QueueDepth)
	if opts.Obs != nil {
		// Queue depth is the scheduler's backpressure signal: a full queue
		// means the enumerator is ahead of the workers.
		opts.Obs.GaugeFunc("exp.queue_depth", func() float64 { return float64(len(queue)) })
	}
	go func() {
		defer close(queue)
		for _, i := range pending {
			select {
			case queue <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < opts.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				c := cells[i]
				if runCtx.Err() != nil {
					mu.Lock()
					st.Cancelled++
					mu.Unlock()
					continue
				}
				if opts.Gate != nil {
					// The gate slot covers the whole attempt sequence
					// (retries included), so a cell never runs half-admitted.
					if err := opts.Gate.Acquire(runCtx); err != nil {
						mu.Lock()
						st.Cancelled++
						mu.Unlock()
						continue
					}
				}
				res, attempt, dur, err := runWithRetry(runCtx, c, &opts, &st, &mu)
				if opts.Gate != nil {
					opts.Gate.Release()
				}
				if err != nil {
					mu.Lock()
					cancelled := runCtx.Err() != nil
					if cancelled {
						st.Cancelled++
					} else {
						st.Failed++
					}
					mu.Unlock()
					if !cancelled {
						fail(fmt.Errorf("exp: cell %s: %w", c.Key(), err))
					}
					continue
				}
				cr := CellResult{
					Mix: c.Mix.ID, Scheme: c.Scheme, Seed: c.Seed,
					Knob: c.Knob, Value: c.Value,
					Attempt: attempt, Duration: dur, Results: res,
				}
				mu.Lock()
				st.Completed++
				lat.Observe(float64(dur) / float64(time.Millisecond))
				var serr error
				if store != nil {
					serr = store.Append(recordOf(c, cr))
				}
				mu.Unlock()
				if serr != nil {
					fail(fmt.Errorf("exp: checkpoint cell %s: %w", c.Key(), serr))
					continue
				}
				finish(i, cr)
			}
		}()
	}
	wg.Wait()

	out := make([]CellResult, 0, len(cells))
	for _, r := range results {
		if r != nil {
			out = append(out, *r)
		}
	}
	if firstErr != nil {
		return out, st, firstErr
	}
	if err := ctx.Err(); err != nil {
		return out, st, fmt.Errorf("exp: campaign cancelled: %w", err)
	}
	return out, st, nil
}

// runWithRetry executes one cell with per-attempt timeouts and bounded
// exponential backoff. It returns the successful attempt's result, or the
// last error once the attempts are exhausted, a permanent failure is seen,
// or the campaign context is cancelled.
func runWithRetry(ctx context.Context, c Cell, opts *Options, st *Stats, mu *sync.Mutex) (camps.Results, int, time.Duration, error) {
	var lastErr error
	attempts := opts.Retries + 1
	attempt := 1
	for ; attempt <= attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return camps.Results{}, attempt, 0, err
		}
		mu.Lock()
		st.Started++
		mu.Unlock()

		actx, cancel := ctx, context.CancelFunc(func() {})
		if opts.CellTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, opts.CellTimeout)
		}
		t0 := time.Now()
		// runAttempt isolates the attempt in its own goroutine: panics come
		// back as *PanicError, and a cell that ignores cancellation is
		// abandoned after HangGrace as *HangError — both ordinary cell
		// errors, so the worker (and the campaign) survive either.
		res, err := runAttempt(actx, c, opts)
		dur := time.Since(t0)
		cancel()
		if err == nil {
			return res, attempt, dur, nil
		}
		lastErr = err
		if cerr := ctx.Err(); cerr != nil {
			return camps.Results{}, attempt, dur, cerr
		}
		if permanent(err) || attempt == attempts {
			break
		}
		mu.Lock()
		st.Retried++
		mu.Unlock()
		backoff := opts.Backoff << (attempt - 1)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return camps.Results{}, attempt, dur, ctx.Err()
		}
	}
	if attempt > attempts {
		attempt = attempts
	}
	return camps.Results{}, attempt, 0, lastErr
}

// permanent reports whether err can never succeed on retry: configuration
// and workload-shape errors are deterministic, so retrying them only burns
// the budget.
func permanent(err error) bool {
	return errors.Is(err, camps.ErrInvalidConfig) ||
		errors.Is(err, camps.ErrMixCoreMismatch) ||
		errors.Is(err, camps.ErrUnknownMix) ||
		errors.Is(err, camps.ErrBadFaultSpec) ||
		errors.Is(err, camps.ErrInvariant)
}

// ExecuteCell runs one cell's real simulation under the options' system,
// fault, and observability settings — the default cell executor behind
// Run, exported so RunCell overrides that merely wrap execution (result
// caches, accounting shims) can fall back to the genuine article.
func ExecuteCell(ctx context.Context, c Cell, o *Options) (camps.Results, error) {
	sys := o.System
	if c.Apply != nil {
		if sys.Processor.Cores == 0 {
			sys = camps.DefaultSystem()
		}
		c.Apply(&sys)
	}
	var suite *obs.Suite
	if o.CellObs != nil {
		suite = o.CellObs(c)
	}
	return camps.RunContext(ctx, camps.RunConfig{
		System:          sys,
		Scheme:          c.Scheme,
		Mix:             c.Mix,
		Seed:            c.Seed,
		WarmupRefs:      o.WarmupRefs,
		MeasureInstr:    o.MeasureInstr,
		Faults:          o.Faults,
		CheckInvariants: o.CheckInvariants,
		Obs:             suite,
	})
}

// instrument exposes the campaign counters through an obs registry. The
// CounterFuncs take the scheduler mutex, so snapshots are safe at any
// time; the latency histogram is only safe to read after Run returns.
func instrument(reg *obs.Registry, st *Stats, mu *sync.Mutex) {
	locked := func(v *uint64) func() uint64 {
		return func() uint64 {
			mu.Lock()
			defer mu.Unlock()
			return *v
		}
	}
	reg.CounterFunc("exp.cells_started", locked(&st.Started))
	reg.CounterFunc("exp.cells_completed", locked(&st.Completed))
	reg.CounterFunc("exp.cells_retried", locked(&st.Retried))
	reg.CounterFunc("exp.cells_cancelled", locked(&st.Cancelled))
	reg.CounterFunc("exp.cells_failed", locked(&st.Failed))
	reg.CounterFunc("exp.cells_resumed", locked(&st.Resumed))
}
