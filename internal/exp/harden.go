package exp

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"camps"
)

// PanicError is a panic recovered from one cell's simulation attempt. The
// worker that ran the cell survives; the panic is converted into an
// ordinary (retryable) cell error carrying the panicking goroutine's
// stack, so one buggy configuration cannot take down a whole campaign.
type PanicError struct {
	Cell  string // cell key
	Value any    // the recovered panic value
	Stack []byte // stack of the panicking goroutine
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exp: cell %s panicked: %v\n%s", e.Cell, e.Value, e.Stack)
}

// HangError reports a cell whose simulation did not return within
// HangGrace after its context was cancelled — a deadlock or a hot loop
// that never polls cancellation. The watchdog abandons the attempt (the
// goroutine is leaked; Go offers no way to kill it) and captures an
// all-goroutine stack dump so the hang site is diagnosable post-mortem.
type HangError struct {
	Cell  string        // cell key
	Grace time.Duration // how long past cancellation the cell was given
	Stack []byte        // all-goroutine dump taken when the watchdog fired
}

func (e *HangError) Error() string {
	return fmt.Sprintf("exp: cell %s hung: still running %v after cancellation; goroutine dump:\n%s",
		e.Cell, e.Grace, e.Stack)
}

// attemptOutcome carries one attempt's result out of its goroutine. The
// channel is buffered, so a cell that finally unwinds after the watchdog
// abandoned it does not block forever.
type attemptOutcome struct {
	res camps.Results
	err error
}

// runAttempt executes one cell attempt in its own goroutine so the worker
// can survive panics and abandon hangs. It returns when the attempt
// finishes, or — once the attempt's context is cancelled (cell timeout or
// campaign cancellation) — after at most HangGrace more wall-clock time,
// whichever comes first.
func runAttempt(ctx context.Context, c Cell, opts *Options) (camps.Results, error) {
	ch := make(chan attemptOutcome, 1)
	go func() {
		defer func() {
			if v := recover(); v != nil {
				buf := make([]byte, 64<<10)
				buf = buf[:runtime.Stack(buf, false)]
				ch <- attemptOutcome{err: &PanicError{Cell: c.Key(), Value: v, Stack: buf}}
			}
		}()
		res, err := opts.RunCell(ctx, c, opts)
		ch <- attemptOutcome{res: res, err: err}
	}()

	select {
	case out := <-ch:
		return out.res, out.err
	case <-ctx.Done():
	}
	// Cancelled. A well-behaved simulation observes it within one epoch of
	// simulated time; give it HangGrace of wall clock to unwind.
	timer := time.NewTimer(opts.HangGrace)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.res, out.err
	case <-timer.C:
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	return camps.Results{}, &HangError{Cell: c.Key(), Grace: opts.HangGrace, Stack: buf}
}

// AtomicWriteFile durably replaces path with data: the bytes land in a
// temporary file in the same directory, are fsync'd, and are renamed over
// path, so readers observe either the old file or the complete new one —
// never a partial write, even across a crash. The containing directory is
// fsync'd too, making the rename itself durable.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Directory fsync is best-effort: some filesystems reject it, and
	// the rename is already atomic — only its durability is at stake.
	syncDir(path)
	return nil
}
