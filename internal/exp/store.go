package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"camps"
)

// Record is one line of the campaign checkpoint: the cell's identity, the
// execution bookkeeping, and the full simulation results. camps.Results
// round-trips through JSON (its embedded counters and latency accumulators
// have custom marshalers), so a resumed cell is indistinguishable from a
// freshly-run one to downstream consumers.
type Record struct {
	Key     string        `json:"key"`
	Mix     string        `json:"mix"`
	Scheme  string        `json:"scheme"`
	Seed    uint64        `json:"seed"`
	Knob    string        `json:"knob,omitempty"`
	Value   int64         `json:"value,omitempty"`
	Attempt int           `json:"attempt"`
	WallMS  float64       `json:"wall_ms"`
	Results camps.Results `json:"results"`
}

// recordOf builds the checkpoint record for a completed cell.
func recordOf(c Cell, cr CellResult) Record {
	return Record{
		Key:     c.Key(),
		Mix:     c.Mix.ID,
		Scheme:  c.Scheme.String(),
		Seed:    c.Seed,
		Knob:    c.Knob,
		Value:   c.Value,
		Attempt: cr.Attempt,
		WallMS:  float64(cr.Duration) / float64(time.Millisecond),
		Results: cr.Results,
	}
}

// cellResult reconstitutes a resumed cell from its checkpoint record.
func (r Record) cellResult() CellResult {
	scheme, err := camps.ParseScheme(r.Scheme)
	if err != nil {
		// The scheme name came from Scheme.String(), so this only happens
		// on a hand-edited store; fall back to what the results recorded.
		scheme = r.Results.Scheme
	}
	return CellResult{
		Mix: r.Mix, Scheme: scheme, Seed: r.Seed,
		Knob: r.Knob, Value: r.Value,
		Attempt: r.Attempt, Resumed: true, Results: r.Results,
	}
}

// Store is an append-only JSONL checkpoint of completed cells. Appends are
// fsync'd one record at a time, so the file is consistent after a crash or
// SIGKILL: at worst the final line is truncated, and Open repairs that by
// truncating back to the last complete record.
type Store struct {
	f    *os.File
	done map[string]Record
	// lines counts records physically in the file (superseded duplicates
	// included), so Compact can report how much it reclaimed.
	lines int
}

// OpenStore opens (creating if needed) the checkpoint at path, loads every
// complete record, and positions the file for appending. A torn final
// line — the signature of a crash mid-append — is discarded and truncated
// away; a corrupt record elsewhere is an error, since it means the file is
// not one of ours.
//
// When the call creates the file, the parent directory is fsync'd too:
// per-record Append fsyncs make the *contents* durable, but on
// journaling filesystems the directory entry itself is a separate piece
// of metadata — without the directory sync, a crash shortly after
// creation can lose the whole file even though every byte in it was
// synced.
func OpenStore(path string) (*Store, error) {
	_, statErr := os.Stat(path)
	creating := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if creating {
		syncDir(path)
	}
	s := &Store{f: f, done: make(map[string]Record)}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// syncDir fsyncs path's parent directory, making a just-created or
// just-renamed directory entry durable. Best-effort, like the rename
// sync in AtomicWriteFile: some filesystems reject directory fsync, and
// only durability — not consistency — is at stake.
func syncDir(path string) {
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

func (s *Store) load() error {
	data, err := io.ReadAll(s.f)
	if err != nil {
		return err
	}
	var valid int // offset just past the last complete, parseable record
	for valid < len(data) {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break // no trailing newline: a torn append, drop it
		}
		line := data[valid : valid+nl+1]
		var rec Record
		if jerr := json.Unmarshal(line, &rec); jerr != nil || rec.Key == "" {
			if valid+nl+1 == len(data) {
				break // the corrupt line is the file's last: torn append
			}
			if jerr == nil {
				jerr = fmt.Errorf("record has no key")
			}
			return fmt.Errorf("checkpoint %s: corrupt record at offset %d: %w", s.f.Name(), valid, jerr)
		}
		valid += nl + 1
		s.done[rec.Key] = rec
		s.lines++
	}
	if err := s.f.Truncate(int64(valid)); err != nil {
		return err
	}
	_, err = s.f.Seek(int64(valid), io.SeekStart)
	return err
}

// Done returns the loaded records keyed by cell key (a copy).
func (s *Store) Done() map[string]Record {
	out := make(map[string]Record, len(s.done))
	for k, v := range s.done {
		out[k] = v
	}
	return out
}

// Len returns the number of records in the store.
func (s *Store) Len() int { return len(s.done) }

// Append durably writes one record: marshal, write, fsync. The record is
// visible to a subsequent OpenStore as soon as Append returns.
func (s *Store) Append(rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := s.f.Write(b); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.done[rec.Key] = rec
	s.lines++
	return nil
}

// Compact rewrites the store keeping only the latest record per cell key,
// in sorted key order. Resumed campaigns re-append records the file
// already holds (the map keeps the latest, but the file keeps them all),
// so a long-lived store grows without bound until compacted. The rewrite
// goes through AtomicWriteFile — temp file, fsync, rename, directory
// fsync — so a crash mid-compaction leaves either the old file or the
// complete new one. Returns the records kept and the superseded lines
// dropped.
func (s *Store) Compact() (kept, dropped int, err error) {
	keys := make([]string, 0, len(s.done))
	for k := range s.done {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	for _, k := range keys {
		b, merr := json.Marshal(s.done[k])
		if merr != nil {
			return 0, 0, merr
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	path := s.f.Name()
	if err := AtomicWriteFile(path, buf.Bytes(), 0o644); err != nil {
		return 0, 0, err
	}
	// Swap the handle: the old descriptor still points at the unlinked
	// pre-compaction inode, so appends through it would vanish.
	if err := s.f.Close(); err != nil {
		return 0, 0, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return 0, 0, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return 0, 0, err
	}
	dropped = s.lines - len(s.done)
	s.lines = len(s.done)
	s.f = f
	return len(s.done), dropped, nil
}

// Close releases the underlying file.
func (s *Store) Close() error { return s.f.Close() }
