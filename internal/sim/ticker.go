package sim

// Ticker invokes a callback on every edge of a clock until stopped.
// It is used for periodic maintenance work such as DRAM refresh windows
// and epoch-based feedback in prefetchers.
type Ticker struct {
	eng      *Engine
	interval Time
	fn       func()
	ev       Event
	stopped  bool
	daemon   bool
	inline   bool   // run fn in place even under barrier deferral
	tick     func() // rearm closure, built once
}

// NewTicker schedules fn every interval picoseconds, first firing one
// interval from now.
func NewTicker(eng *Engine, interval Time, fn func()) *Ticker {
	return newTicker(eng, interval, fn, false)
}

// NewDaemonTicker is NewTicker with daemon scheduling: ticks fire while
// other (non-daemon) work keeps the simulation alive but never extend it.
// It is the epoch hook used for periodic observability snapshots —
// metrics collection must not change when a simulation ends.
func NewDaemonTicker(eng *Engine, interval Time, fn func()) *Ticker {
	return newTicker(eng, interval, fn, true)
}

func newTicker(eng *Engine, interval Time, fn func(), daemon bool) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{eng: eng, interval: interval, fn: fn, daemon: daemon}
	t.tick = func() {
		if t.stopped {
			return
		}
		if t.eng.deferOn && !t.inline {
			// Parallel run: the tick event keeps its place in the event
			// order (so event counts match the serial engine), but the
			// body — which typically reads state owned by other shards —
			// runs at the next window barrier, when every shard is parked.
			t.eng.deferBody(t.fn)
		} else {
			t.fn()
		}
		if !t.stopped {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	if t.daemon {
		t.ev = t.eng.AtDaemon(t.eng.Now()+t.interval, t.tick)
	} else {
		t.ev = t.eng.After(t.interval, t.tick)
	}
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	t.eng.Cancel(t.ev)
}

// NewHaltWatcher arms a daemon ticker that polls cond every interval of
// simulated time and halts the engine the first time cond returns true.
// It is the cancellation hook for externally-driven shutdown (for example
// a context.Context): the poll rides the daemon queue, so it never extends
// a simulation that drains naturally, and a cancelled run stops within one
// interval of simulated time. The returned ticker can be stopped early.
func NewHaltWatcher(eng *Engine, interval Time, cond func() bool) *Ticker {
	var t *Ticker
	t = newTicker(eng, interval, func() {
		if cond() {
			eng.Halt()
			t.Stop()
		}
	}, true)
	// The watcher must run in place even under the parallel runner's
	// barrier deferral: cond is thread-safe by contract (typically a
	// context check) and Halt must take effect mid-window.
	t.inline = true
	return t
}
