package sim

// Ticker invokes a callback on every edge of a clock until stopped.
// It is used for periodic maintenance work such as DRAM refresh windows
// and epoch-based feedback in prefetchers.
type Ticker struct {
	eng      *Engine
	interval Time
	fn       func()
	ev       *Event
	stopped  bool
}

// NewTicker schedules fn every interval picoseconds, first firing one
// interval from now.
func NewTicker(eng *Engine, interval Time, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{eng: eng, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.eng.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	t.eng.Cancel(t.ev)
}
