// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time is measured in integer picoseconds (Time). Events scheduled for the
// same instant fire in the order they were scheduled (FIFO tie-breaking via
// a monotonically increasing sequence number), which makes every simulation
// built on this kernel fully deterministic for a given input.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp in picoseconds.
type Time int64

// Common durations expressed in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
)

// String renders the time in nanoseconds for human consumption.
func (t Time) String() string {
	return fmt.Sprintf("%.3fns", float64(t)/1000.0)
}

// Clock converts between a fixed-frequency cycle domain and simulation time.
type Clock struct {
	period Time // picoseconds per cycle
}

// NewClock returns a clock with the given frequency in MHz.
// A 3 GHz clock is NewClock(3000).
func NewClock(freqMHz int64) Clock {
	if freqMHz <= 0 {
		panic("sim: clock frequency must be positive")
	}
	return Clock{period: Time(1_000_000 / freqMHz)}
}

// NewClockPeriod returns a clock with an explicit period.
func NewClockPeriod(period Time) Clock {
	if period <= 0 {
		panic("sim: clock period must be positive")
	}
	return Clock{period: period}
}

// Period returns the clock period.
func (c Clock) Period() Time { return c.period }

// Cycles converts a cycle count to a duration.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.period }

// ToCycles converts a duration to whole elapsed cycles (floor).
func (c Clock) ToCycles(d Time) int64 { return int64(d / c.period) }

// NextEdge returns the earliest time >= t that falls on a clock edge.
func (c Clock) NextEdge(t Time) Time {
	rem := t % c.period
	if rem == 0 {
		return t
	}
	return t + c.period - rem
}

// Event is a scheduled callback.
type Event struct {
	when   Time
	seq    uint64
	idx    int // heap index, -1 once popped or cancelled
	daemon bool
	fn     func()
}

// When returns the time the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e != nil && e.idx >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine owns the event queue and the current simulation time.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now       Time
	seq       uint64
	queue     eventHeap
	fired     uint64
	halted    bool
	nonDaemon int
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug, and silently reordering time would make
// results meaningless.
func (e *Engine) At(t Time, fn func()) *Event {
	return e.schedule(t, fn, false)
}

// AtDaemon schedules a daemon event: it fires like any other event while
// the simulation is alive, but does not by itself keep Run going. Use it
// for self-rearming background work (DRAM refresh windows, periodic
// feedback) that would otherwise make Run non-terminating.
func (e *Engine) AtDaemon(t Time, fn func()) *Event {
	return e.schedule(t, fn, true)
}

func (e *Engine) schedule(t Time, fn func(), daemon bool) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := &Event{when: t, seq: e.seq, daemon: daemon, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	if !daemon {
		e.nonDaemon++
	}
	return ev
}

// After schedules fn to run d picoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.idx < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.idx)
	ev.idx = -1
	ev.fn = nil
	if !ev.daemon {
		e.nonDaemon--
	}
	return true
}

// Halt stops Run/RunUntil after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Halted reports whether Halt has been called.
func (e *Engine) Halted() bool { return e.halted }

// Step executes the single earliest pending event.
// It reports false if the queue is empty or the engine has halted.
func (e *Engine) Step() bool {
	if e.halted || len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	if !ev.daemon {
		e.nonDaemon--
	}
	e.now = ev.when
	fn := ev.fn
	ev.fn = nil
	e.fired++
	fn()
	return true
}

// Run executes events until no non-daemon events remain or Halt is called.
// Daemon events that fall before the last non-daemon event still fire in
// time order; daemon events beyond it stay queued.
func (e *Engine) Run() {
	for !e.halted && e.nonDaemon > 0 && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline. On return the
// engine's time is min(deadline, time of last fired event); events beyond
// the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for !e.halted && len(e.queue) > 0 && e.queue[0].when <= deadline {
		e.Step()
	}
	if !e.halted && e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d picoseconds.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
