// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time is measured in integer picoseconds (Time). Events scheduled for the
// same instant fire in the order they were scheduled (FIFO tie-breaking via
// a monotonically increasing sequence number), which makes every simulation
// built on this kernel fully deterministic for a given input.
//
// The kernel is allocation-free in steady state: event nodes are pooled on
// the engine and recycled when they fire or are cancelled, and the pending
// queue is a concrete 4-ary heap (no container/heap interface dispatch).
// Handles returned by At/After/AtDaemon are generation-checked values, so a
// handle to an event that has already fired or been cancelled stays inert
// even after its node has been reused for a newer event.
package sim

import (
	"fmt"
	"math/bits"
)

// Time is a simulation timestamp in picoseconds.
type Time int64

// Common durations expressed in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
)

// String renders the time in nanoseconds for human consumption.
func (t Time) String() string {
	return fmt.Sprintf("%.3fns", float64(t)/1000.0)
}

// Clock converts between a fixed-frequency cycle domain and simulation
// time. The period is held as an exact rational number of picoseconds
// (num/den), so frequencies whose period is not a whole picosecond — the
// reference 3 GHz core clock is 1000/3 ps — convert without drift:
// NewClock(3000).Cycles(3_000_000) is exactly one millisecond, where the
// old integer-truncated period (333 ps) silently ran the core at 3.003 GHz.
type Clock struct {
	num Time // period numerator, picoseconds
	den Time // period denominator (>= 1); num/den is reduced
}

// NewClock returns a clock with the given frequency in MHz.
// A 3 GHz clock is NewClock(3000).
func NewClock(freqMHz int64) Clock {
	if freqMHz <= 0 {
		panic("sim: clock frequency must be positive")
	}
	g := gcd(1_000_000, freqMHz)
	return Clock{num: Time(1_000_000 / g), den: Time(freqMHz / g)}
}

// NewClockPeriod returns a clock with an explicit whole-picosecond period.
func NewClockPeriod(period Time) Clock {
	if period <= 0 {
		panic("sim: clock period must be positive")
	}
	return Clock{num: period, den: 1}
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Integral reports whether the period is a whole number of picoseconds.
func (c Clock) Integral() bool { return c.den == 1 }

// Period returns the exact period of an integral clock. For clocks whose
// period is not a whole picosecond (3 GHz = 1000/3 ps) no exact Time
// period exists; Period panics rather than silently truncating — convert
// through Cycles/ToCycles, which stay exact, or inspect PeriodRational.
func (c Clock) Period() Time {
	if c.den != 1 {
		panic(fmt.Sprintf("sim: clock period %d/%d ps is not a whole picosecond; use Cycles/ToCycles", c.num, c.den))
	}
	return c.num
}

// PeriodRational returns the period as an exact fraction num/den of
// picoseconds per cycle, in lowest terms.
func (c Clock) PeriodRational() (num, den Time) { return c.num, c.den }

// Cycles converts a cycle count to a duration: the time of the n-th clock
// edge, exact whenever n*num is divisible by den and rounded down (sub-ps)
// otherwise. Cumulative conversions do not drift: Cycles(n) is always
// within one picosecond of the true rational instant.
//
// The intermediate product n*num is formed in 128 bits: with a reduced
// rational period the factors alone can overflow int64 well inside the
// representable time range (a 2999 MHz clock has num=1000000, den=2999,
// so the old int64 product wrapped around ~51 simulated minutes and
// silently corrupted every conversion after that).
func (c Clock) Cycles(n int64) Time { return Time(mulDivBias(n, int64(c.num), 0, int64(c.den))) }

// ToCycles converts a duration to whole elapsed cycles (floor).
// The d*den intermediate is 128-bit for the same reason as Cycles.
func (c Clock) ToCycles(d Time) int64 { return mulDivBias(int64(d), int64(c.den), 0, int64(c.num)) }

// ToCyclesCeil converts a duration to cycles, rounding up: the first cycle
// boundary at or after d. It is the resume-on-next-edge conversion for
// components whose native clock is the cycle domain.
func (c Clock) ToCyclesCeil(d Time) int64 {
	return mulDivBias(int64(d), int64(c.den), uint64(c.num-1), int64(c.num))
}

// mulDivBias computes trunc((a*b + bias) / c) with a full 128-bit
// intermediate, for c > 0 and 0 <= bias < c. Truncation is toward zero,
// matching Go's int64 division, so results agree exactly with the old
// single-word arithmetic everywhere that arithmetic did not overflow. A
// quotient that cannot be represented in int64 panics: the result would
// be meaningless, and wrapping silently is precisely the bug this
// replaces.
func mulDivBias(a, b int64, bias uint64, c int64) int64 {
	neg := (a < 0) != (b < 0)
	ua, ub := uint64(a), uint64(b)
	if a < 0 {
		ua = -ua
	}
	if b < 0 {
		ub = -ub
	}
	hi, lo := bits.Mul64(ua, ub)
	if neg {
		// Value is -(hi:lo) + bias. A product smaller than the bias flips
		// the sign back to a (small) positive value.
		if hi == 0 && lo < bias {
			return int64((bias - lo) / uint64(c))
		}
		var borrow uint64
		lo, borrow = bits.Sub64(lo, bias, 0)
		hi -= borrow
	} else {
		var carry uint64
		lo, carry = bits.Add64(lo, bias, 0)
		hi += carry
	}
	uc := uint64(c)
	if hi >= uc {
		panic(fmt.Sprintf("sim: clock conversion overflows int64 (%d * %d / %d)", a, b, c))
	}
	q, _ := bits.Div64(hi, lo, uc)
	if neg {
		if q > 1<<63 {
			panic(fmt.Sprintf("sim: clock conversion overflows int64 (%d * %d / %d)", a, b, c))
		}
		return -int64(q)
	}
	if q > 1<<63-1 {
		panic(fmt.Sprintf("sim: clock conversion overflows int64 (%d * %d / %d)", a, b, c))
	}
	return int64(q)
}

// NextEdge returns the earliest time >= t that falls on a clock edge
// (edge k lives at Cycles(k)).
func (c Clock) NextEdge(t Time) Time {
	return c.Cycles(c.ToCyclesCeil(t))
}

// Event is a handle to a scheduled callback. It is a small value: copy it
// freely. The zero Event is not scheduled. Handles are generation-checked
// against the engine's pooled event nodes, so a stale handle — one whose
// event already fired or was cancelled, even if the underlying node now
// carries a newer event — reports Scheduled() == false and cancels as a
// no-op instead of touching the new occupant.
type Event struct {
	n   *eventNode
	gen uint64
}

// eventNode is the pooled representation of one scheduled callback.
// Exactly one of fn/fnAt/fnArg is set. fnAt receives the scheduled time,
// which lets completion callbacks of the form func(){ done(t) } be
// scheduled without a closure allocation (see Engine.AtWhen); fnArg
// receives a fixed uint64 carried in the node, which does the same for
// address-taking callbacks (see Engine.AtArg).
type eventNode struct {
	when   Time
	sched  Time  // engine time when the event was scheduled
	tag    int32 // actor stream of the scheduler (see nodeLess); inherited
	seq    uint64
	gen    uint64 // bumped on every recycle; pairs with Event.gen
	arg    uint64 // fnArg's argument
	idx    int32  // position in the heap, -1 once fired or cancelled
	daemon bool
	fn     func()
	fnAt   func(Time)
	fnArg  func(uint64)
}

// When returns the time the event is scheduled for, or 0 if the handle is
// stale (already fired or cancelled).
func (e Event) When() Time {
	if !e.Scheduled() {
		return 0
	}
	return e.n.when
}

// Scheduled reports whether the event is still pending. A stale handle
// never reports true, even if its node has been recycled for a new event.
func (e Event) Scheduled() bool {
	return e.n != nil && e.n.gen == e.gen && e.n.idx >= 0
}

// nodeChunk is how many event nodes are allocated at once when the free
// list runs dry; steady-state scheduling allocates nothing.
const nodeChunk = 128

// Engine owns the event queue and the current simulation time.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now       Time
	seq       uint64
	heap      []*eventNode // 4-ary min-heap on (when, sched, seq)
	free      []*eventNode
	fired     uint64
	halted    bool
	nonDaemon int

	// curSched/curTag are the sched and tag stamps of the event currently
	// firing: the engine time at which that event was scheduled and the
	// actor stream it belongs to. Together with now they name the event's
	// position in the deterministic total order, which is what
	// cross-shard mailboxes key replay on (see parallel.go). curTag also
	// propagates: events scheduled while an event fires inherit its tag,
	// so a whole causal stream carries its root's tag without the model
	// re-stating it at every hop.
	curSched Time
	curTag   int32

	// haltWhen/haltSched/haltTag pin the exact position in the event
	// order at which Halt was first called; the parallel runner's
	// winddown fires exactly the events that precede it. haltPinned
	// guards the pin so winddown (which temporarily clears halted to
	// step) cannot move it.
	haltWhen   Time
	haltSched  Time
	haltTag    int32
	haltPinned bool

	// Replay mode (parallel runner only): while a cross-shard completion
	// recorded at virtual time vnow is being re-applied, Now() reports
	// vnow and new events are stamped as if scheduled then, so callbacks
	// behave byte-identically to the serial engine that would have run
	// them in place.
	replay bool
	vnow   Time
	vtag   int32

	// Deferral (parallel runner only): while defer mode is on, ticker
	// bodies that read cross-shard state run at the next window barrier
	// instead of mid-window (the events themselves still fire in place).
	deferOn   bool
	deferredQ []func()
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time. During a cross-shard replay
// (parallel runner) it reports the virtual time the replayed completion
// originally executed at, so replayed callbacks observe the same clock
// they would have seen on the serial engine.
func (e *Engine) Now() Time {
	if e.replay {
		return e.vnow
	}
	return e.now
}

// CurSched returns the sched stamp of the event currently firing (the
// engine time at which it was scheduled). Paired with Now() it names the
// firing event's position in the deterministic event order.
func (e *Engine) CurSched() Time {
	if e.replay {
		return e.vnow
	}
	return e.curSched
}

// CurTag returns the actor tag of the event currently firing. Tags refine
// the event order below (when, sched): two events with the same timestamp
// and scheduling time but different tags order by tag, which gives
// cross-shard messages a total order that does not depend on any single
// engine's sequence counter (see nodeLess and parallel.go).
func (e *Engine) CurTag() int32 {
	if e.replay {
		return e.vtag
	}
	return e.curTag
}

// WithTag runs fn with the engine's scheduling tag set to tag: events
// scheduled inside fn (and, transitively, their whole causal streams)
// carry it. Models use it to root an actor's stream — a vault tags its
// construction-time daemon, the cube tags each request as it enters a
// vault's stream — so that same-instant events of different actors order
// by actor rather than by scheduling history.
func (e *Engine) WithTag(tag int32, fn func()) {
	if e.replay {
		old := e.vtag
		e.vtag = tag
		fn()
		e.vtag = old
		return
	}
	old := e.curTag
	e.curTag = tag
	fn()
	e.curTag = old
}

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug, and silently reordering time would make
// results meaningless.
func (e *Engine) At(t Time, fn func()) Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	return e.schedule(t, fn, nil, nil, 0, false)
}

// AtWhen schedules fn to run at absolute time t and invokes it with that
// time. It is At for completion callbacks of the shape
// func() { done(t) }: passing done directly avoids allocating a closure
// just to capture t, which matters on the per-request hot path.
func (e *Engine) AtWhen(t Time, fn func(Time)) Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	return e.schedule(t, nil, fn, nil, 0, false)
}

// AtArg schedules fn to run at absolute time t with a fixed uint64
// argument, carried in the event node. It is At for hot-path callbacks of
// the shape func() { issue(addr) }: binding the method value once and
// passing the address through AtArg avoids allocating a capturing closure
// per scheduled call.
func (e *Engine) AtArg(t Time, fn func(uint64), arg uint64) Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	return e.schedule(t, nil, nil, fn, arg, false)
}

// AtTag schedules fn to run at absolute time t, stamped with the given
// actor tag instead of inheriting the current event's. It is WithTag for
// a single hot-path scheduling call: no closure, no save/restore.
func (e *Engine) AtTag(t Time, tag int32, fn func()) Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	return e.scheduleTagged(t, tag, fn, nil, nil, 0, false)
}

// AtDaemon schedules a daemon event: it fires like any other event while
// the simulation is alive, but does not by itself keep Run going. Use it
// for self-rearming background work (DRAM refresh windows, periodic
// feedback) that would otherwise make Run non-terminating.
func (e *Engine) AtDaemon(t Time, fn func()) Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	return e.schedule(t, fn, nil, nil, 0, true)
}

func (e *Engine) schedule(t Time, fn func(), fnAt func(Time), fnArg func(uint64), arg uint64, daemon bool) Event {
	tag := e.curTag
	if e.replay {
		tag = e.vtag
	}
	return e.scheduleTagged(t, tag, fn, fnAt, fnArg, arg, daemon)
}

func (e *Engine) scheduleTagged(t Time, tag int32, fn func(), fnAt func(Time), fnArg func(uint64), arg uint64, daemon bool) Event {
	sched := e.now
	if e.replay {
		// A replayed completion schedules as of its virtual time: the
		// stamp (and the in-the-past check) must match what the serial
		// engine would have done at that instant.
		sched = e.vnow
	}
	if t < sched {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, sched))
	}
	nd := e.alloc()
	nd.when = t
	nd.sched = sched
	nd.tag = tag
	nd.seq = e.seq
	nd.daemon = daemon
	nd.fn = fn
	nd.fnAt = fnAt
	nd.fnArg = fnArg
	nd.arg = arg
	e.seq++
	e.heapPush(nd)
	if !daemon {
		e.nonDaemon++
	}
	return Event{n: nd, gen: nd.gen}
}

// alloc takes a node from the free list, refilling it a chunk at a time so
// steady-state scheduling performs no allocations.
func (e *Engine) alloc() *eventNode {
	if n := len(e.free); n > 0 {
		nd := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return nd
	}
	chunk := make([]eventNode, nodeChunk)
	for i := 1; i < nodeChunk; i++ {
		e.free = append(e.free, &chunk[i])
	}
	return &chunk[0]
}

// recycle returns a fired or cancelled node to the pool. Bumping the
// generation first is what invalidates every outstanding handle to it.
func (e *Engine) recycle(nd *eventNode) {
	nd.gen++
	nd.fn = nil
	nd.fnAt = nil
	nd.fnArg = nil
	e.free = append(e.free, nd)
}

// After schedules fn to run d picoseconds from now.
func (e *Engine) After(d Time, fn func()) Event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event — including a stale handle whose node now holds
// a newer event — is a no-op and returns false.
func (e *Engine) Cancel(ev Event) bool {
	nd := ev.n
	if nd == nil || nd.gen != ev.gen || nd.idx < 0 {
		return false
	}
	e.heapRemove(int(nd.idx))
	if !nd.daemon {
		e.nonDaemon--
	}
	e.recycle(nd)
	return true
}

// Halt stops Run/RunUntil after the currently executing event returns.
// The first call pins the engine's exact position in the event order
// ((now, curSched, curTag)); the parallel runner's winddown uses it to
// fire, on every shard, exactly the events a serial engine would have
// fired before halting.
func (e *Engine) Halt() {
	if !e.haltPinned {
		e.haltPinned = true
		e.haltWhen, e.haltSched, e.haltTag = e.now, e.curSched, e.curTag
	}
	e.halted = true
}

// Halted reports whether Halt has been called.
func (e *Engine) Halted() bool { return e.halted }

// Step executes the single earliest pending event.
// It reports false if the queue is empty or the engine has halted.
func (e *Engine) Step() bool {
	if e.halted || len(e.heap) == 0 {
		return false
	}
	nd := e.heapPop()
	if !nd.daemon {
		e.nonDaemon--
	}
	e.now = nd.when
	e.curSched = nd.sched
	e.curTag = nd.tag
	when := nd.when
	fn, fnAt, fnArg, arg := nd.fn, nd.fnAt, nd.fnArg, nd.arg
	// Recycle before invoking: the callback may schedule new events, and
	// letting it reuse this node immediately keeps the pool at its
	// high-water mark. Outstanding handles are invalidated by the
	// generation bump, so the reuse is invisible to them.
	e.recycle(nd)
	e.fired++
	switch {
	case fn != nil:
		fn()
	case fnAt != nil:
		fnAt(when)
	default:
		fnArg(arg)
	}
	return true
}

// Run executes events until no non-daemon events remain or Halt is called.
// Daemon events that fall before the last non-daemon event still fire in
// time order; daemon events beyond it stay queued.
func (e *Engine) Run() {
	for !e.halted && e.nonDaemon > 0 && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline. On return the
// engine's time is min(deadline, time of last fired event); events beyond
// the deadline remain queued. If Halt is called mid-run, time stays at the
// halting event. A deadline already in the past is an explicit no-op:
// nothing fires and Now() is unchanged.
func (e *Engine) RunUntil(deadline Time) {
	for !e.halted && len(e.heap) > 0 && e.heap[0].when <= deadline {
		e.Step()
	}
	if !e.halted && e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d picoseconds. RunFor(0) fires events
// scheduled for the current instant and leaves Now() unchanged. A
// negative duration panics, matching After: running time backwards always
// indicates a model bug (it used to fall through RunUntil's loops as a
// silent no-op).
func (e *Engine) RunFor(d Time) {
	if d < 0 {
		panic("sim: negative duration")
	}
	e.RunUntil(e.now + d)
}

// The pending queue is a 4-ary min-heap ordered by (when, sched, tag,
// seq), stored flat with parent/child arithmetic. Compared with
// container/heap this is monomorphic (no interface dispatch, no
// any-boxing) and shallower (log4 vs log2 levels), which is worth ~2x on
// the schedule/step hot path.
//
// The first three components are portable across engines; only seq is
// engine-local. sched survives the move between engines, so the parallel
// runner can interleave same-instant events from different shards the way
// one serial engine would have; tag disambiguates the common remaining
// collision — two independent actors (vaults) scheduling at the same
// engine time for the same target time — by actor stream rather than by
// a sequence counter that no longer means anything across engines. seq
// breaks the final tie, which by construction only arises between events
// of one actor stream on one engine, where FIFO order is reproducible.

func nodeLess(a, b *eventNode) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	if a.sched != b.sched {
		return a.sched < b.sched
	}
	if a.tag != b.tag {
		return a.tag < b.tag
	}
	return a.seq < b.seq
}

func (e *Engine) heapPush(nd *eventNode) {
	e.heap = append(e.heap, nd)
	e.siftUp(len(e.heap) - 1, nd)
}

// siftUp places nd at index i or above, shifting larger ancestors down.
func (e *Engine) siftUp(i int, nd *eventNode) {
	h := e.heap
	for i > 0 {
		p := (i - 1) / 4
		if !nodeLess(nd, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].idx = int32(i)
		i = p
	}
	h[i] = nd
	nd.idx = int32(i)
}

// siftDown places nd at index i or below, shifting smaller children up.
func (e *Engine) siftDown(i int, nd *eventNode) {
	h := e.heap
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if nodeLess(h[c], h[best]) {
				best = c
			}
		}
		if !nodeLess(h[best], nd) {
			break
		}
		h[i] = h[best]
		h[i].idx = int32(i)
		i = best
	}
	h[i] = nd
	nd.idx = int32(i)
}

func (e *Engine) heapPop() *eventNode {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.heap = h[:n]
	if n > 0 {
		e.siftDown(0, last)
	}
	top.idx = -1
	return top
}

func (e *Engine) heapRemove(i int) {
	h := e.heap
	nd := h[i]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.heap = h[:n]
	if i < n {
		// Re-seat the displaced last element: it may need to move either
		// direction relative to position i.
		e.siftDown(i, last)
		if int(last.idx) == i {
			e.siftUp(i, last)
		}
	}
	nd.idx = -1
}
