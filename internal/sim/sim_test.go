package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockConversions(t *testing.T) {
	cpu := NewClock(3000) // 3 GHz: period is 1000/3 ps, not a whole picosecond
	if cpu.Integral() {
		t.Fatal("3GHz clock claims an integral period")
	}
	if num, den := cpu.PeriodRational(); num != 1000 || den != 3 {
		t.Fatalf("3GHz period = %d/%d ps, want 1000/3", num, den)
	}
	dram := NewClock(800) // DDR3-1600 bus clock
	if !dram.Integral() {
		t.Fatal("800MHz clock claims a non-integral period")
	}
	if got := dram.Period(); got != 1250 {
		t.Fatalf("800MHz period = %d ps, want 1250", got)
	}
	if got := dram.Cycles(11); got != 13750 {
		t.Fatalf("11 DRAM cycles = %v ps, want 13750", got)
	}
	if got := dram.ToCycles(13750); got != 11 {
		t.Fatalf("ToCycles(13750) = %d, want 11", got)
	}
}

// Regression for the clock-period truncation drift: the old implementation
// stored the 3 GHz period as trunc(1e6/3000) = 333 ps, so 3 million cycles
// measured 999 µs — the core silently ran at 3.003 GHz. The rational clock
// must land exactly on one millisecond.
func TestClockExactRational(t *testing.T) {
	cpu := NewClock(3000)
	if got := cpu.Cycles(3_000_000); got != Millisecond {
		t.Fatalf("3M cycles at 3GHz = %d ps, want exactly %d (1ms); drift = %d ps",
			got, Millisecond, got-Millisecond)
	}
	if got := cpu.ToCycles(Millisecond); got != 3_000_000 {
		t.Fatalf("ToCycles(1ms) = %d, want 3000000", got)
	}
	// Cumulative conversions stay within one picosecond of the true
	// rational instant at any cycle count.
	for _, n := range []int64{1, 2, 3, 7, 999, 1_000_001, 3_000_000_000} {
		got := cpu.Cycles(n)
		exact := float64(n) * 1000.0 / 3.0
		if d := float64(got) - exact; d < -1 || d > 0 {
			t.Fatalf("Cycles(%d) = %d, exact %.2f: rounding outside [-1,0]", n, got, exact)
		}
	}
	// Ceil conversion: first edge at or after an instant.
	if got := cpu.ToCyclesCeil(1); got != 1 {
		t.Fatalf("ToCyclesCeil(1) = %d, want 1", got)
	}
	if got := cpu.ToCyclesCeil(333); got != 1 { // edge 1 is at 333.33 ps
		t.Fatalf("ToCyclesCeil(333) = %d, want 1", got)
	}
	if got := cpu.ToCyclesCeil(334); got != 2 {
		t.Fatalf("ToCyclesCeil(334) = %d, want 2", got)
	}
}

func TestClockPeriodPanicsWhenNotIntegral(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Period() on a 3GHz clock did not panic")
		}
	}()
	NewClock(3000).Period()
}

func TestClockNextEdge(t *testing.T) {
	c := NewClockPeriod(100)
	cases := []struct{ in, want Time }{
		{0, 0}, {1, 100}, {99, 100}, {100, 100}, {101, 200},
	}
	for _, tc := range cases {
		if got := c.NextEdge(tc.in); got != tc.want {
			t.Errorf("NextEdge(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestClockPanicsOnBadFrequency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClock(0) did not panic")
		}
	}()
	NewClock(0)
}

func TestEngineFiresInTimeOrder(t *testing.T) {
	eng := NewEngine()
	var order []Time
	for _, tm := range []Time{50, 10, 30, 20, 40} {
		tm := tm
		eng.At(tm, func() { order = append(order, tm) })
	}
	eng.Run()
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("fired %d events, want 5", len(order))
	}
	if eng.Now() != 50 {
		t.Fatalf("final time %v, want 50", eng.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	eng := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		eng.At(7, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order at %d: %v", i, order[:i+1])
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine()
	var hits []Time
	eng.At(10, func() {
		hits = append(hits, eng.Now())
		eng.After(5, func() { hits = append(hits, eng.Now()) })
	})
	eng.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("nested scheduling produced %v, want [10 15]", hits)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	eng := NewEngine()
	eng.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		eng.At(50, func() {})
	})
	eng.Run()
}

func TestEngineCancel(t *testing.T) {
	eng := NewEngine()
	fired := false
	ev := eng.At(10, func() { fired = true })
	if !ev.Scheduled() {
		t.Fatal("freshly scheduled event reports not scheduled")
	}
	if !eng.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if ev.Scheduled() {
		t.Fatal("cancelled event still reports scheduled")
	}
	if eng.Cancel(ev) {
		t.Fatal("double cancel returned true")
	}
	eng.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineCancelZero(t *testing.T) {
	eng := NewEngine()
	if eng.Cancel(Event{}) {
		t.Fatal("Cancel of zero Event returned true")
	}
	if (Event{}).Scheduled() {
		t.Fatal("zero Event reports scheduled")
	}
}

// A handle to an event that already fired must stay inert even after the
// engine recycles its node for a newer event: Scheduled() must not report
// the new occupant, and Cancel must not cancel it.
func TestEngineStaleHandleAfterFire(t *testing.T) {
	eng := NewEngine()
	ev := eng.At(10, func() {})
	eng.Run()
	if ev.Scheduled() {
		t.Fatal("fired event still reports scheduled")
	}
	// Reuse the pooled node for a new event. With chunked pooling the node
	// just recycled is on top of the free list, so this occupies it.
	fired := false
	ev2 := eng.At(20, func() { fired = true })
	if ev.Scheduled() {
		t.Fatal("stale handle reports scheduled after node reuse")
	}
	if ev.When() != 0 {
		t.Fatalf("stale handle When() = %v, want 0", ev.When())
	}
	if eng.Cancel(ev) {
		t.Fatal("stale handle cancelled the node's new occupant")
	}
	eng.Run()
	if !fired {
		t.Fatal("new occupant did not fire")
	}
	_ = ev2
}

// Same staleness guarantee for the cancel-then-reschedule order.
func TestEngineStaleHandleAfterCancel(t *testing.T) {
	eng := NewEngine()
	ev := eng.At(10, func() { t.Fatal("cancelled event fired") })
	if !eng.Cancel(ev) {
		t.Fatal("cancel failed")
	}
	fired := false
	ev2 := eng.At(10, func() { fired = true })
	if ev.Scheduled() {
		t.Fatal("cancelled handle reports scheduled after node reuse")
	}
	if eng.Cancel(ev) {
		t.Fatal("double cancel through a stale handle succeeded")
	}
	if !ev2.Scheduled() {
		t.Fatal("fresh handle on the recycled node reports not scheduled")
	}
	eng.Run()
	if !fired {
		t.Fatal("rescheduled event did not fire")
	}
}

// Pooled nodes must make the schedule/fire cycle allocation-free in steady
// state; this is the 0 allocs/op acceptance bar for the hot path.
func TestEngineSteadyStateZeroAlloc(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	// Warm the pool past its high-water mark.
	for i := 0; i < 4*nodeChunk; i++ {
		eng.At(eng.Now(), fn)
	}
	for eng.Step() {
	}
	allocs := testing.AllocsPerRun(1000, func() {
		eng.At(eng.Now()+1, fn)
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule+Step allocates %.1f per op in steady state, want 0", allocs)
	}
}

func TestEngineRunUntil(t *testing.T) {
	eng := NewEngine()
	var fired []Time
	for _, tm := range []Time{10, 20, 30, 40} {
		tm := tm
		eng.At(tm, func() { fired = append(fired, tm) })
	}
	eng.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %d events, want 2", len(fired))
	}
	if eng.Now() != 25 {
		t.Fatalf("time after RunUntil(25) = %v, want 25", eng.Now())
	}
	if eng.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", eng.Pending())
	}
	eng.RunFor(10)
	if len(fired) != 3 || eng.Now() != 35 {
		t.Fatalf("RunFor(10): fired=%v now=%v", fired, eng.Now())
	}
}

func TestEngineRunUntilBeforeFirstEvent(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.At(100, func() { fired = true })
	eng.RunUntil(50)
	if fired {
		t.Fatal("event beyond the deadline fired")
	}
	if eng.Now() != 50 {
		t.Fatalf("time advanced to %v, want the deadline 50", eng.Now())
	}
	if eng.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", eng.Pending())
	}
	eng.Run()
	if !fired || eng.Now() != 100 {
		t.Fatalf("after Run: fired=%v now=%v", fired, eng.Now())
	}
}

func TestEngineHaltInsideDaemonEvent(t *testing.T) {
	eng := NewEngine()
	var fired []Time
	eng.AtDaemon(10, func() {
		fired = append(fired, eng.Now())
		eng.Halt()
	})
	eng.At(20, func() { fired = append(fired, eng.Now()) })
	eng.RunUntil(100)
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired = %v, want only the daemon at 10", fired)
	}
	if !eng.Halted() {
		t.Fatal("Halted() false after daemon Halt")
	}
	// Halt inside RunUntil must pin time at the halting event, not the
	// deadline.
	if eng.Now() != 10 {
		t.Fatalf("time = %v after halt at 10, want 10", eng.Now())
	}
}

func TestEngineRunForZero(t *testing.T) {
	eng := NewEngine()
	eng.At(5, func() {})
	eng.Run()
	var fired []int
	eng.At(eng.Now(), func() {
		fired = append(fired, 1)
		// Nested same-instant work also falls inside RunFor(0).
		eng.At(eng.Now(), func() { fired = append(fired, 2) })
	})
	eng.At(eng.Now()+1, func() { fired = append(fired, 3) })
	eng.RunFor(0)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("RunFor(0) fired %v, want the two now-instant events", fired)
	}
	if eng.Now() != 5 {
		t.Fatalf("RunFor(0) moved time to %v, want 5", eng.Now())
	}
}

func TestEngineHalt(t *testing.T) {
	eng := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		eng.At(Time(i), func() {
			count++
			if count == 3 {
				eng.Halt()
			}
		})
	}
	eng.Run()
	if count != 3 {
		t.Fatalf("halt did not stop the engine: fired %d", count)
	}
	if !eng.Halted() {
		t.Fatal("Halted() false after Halt")
	}
}

func TestEngineFiredCounter(t *testing.T) {
	eng := NewEngine()
	for i := 0; i < 17; i++ {
		eng.At(Time(i), func() {})
	}
	eng.Run()
	if eng.Fired() != 17 {
		t.Fatalf("Fired() = %d, want 17", eng.Fired())
	}
}

// Property: for any set of scheduled times, the engine fires them in
// nondecreasing time order and ends at the max time.
func TestEngineOrderingProperty(t *testing.T) {
	prop := func(times []uint16) bool {
		eng := NewEngine()
		var fired []Time
		for _, raw := range times {
			tm := Time(raw)
			eng.At(tm, func() { fired = append(fired, tm) })
		}
		eng.Run()
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i-1] > fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving At and Cancel at random leaves exactly the
// uncancelled events firing, in order.
func TestEngineCancelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		eng := NewEngine()
		type rec struct {
			ev        Event
			when      Time
			cancelled bool
		}
		var recs []*rec
		var fired []Time
		n := 1 + rng.Intn(64)
		for i := 0; i < n; i++ {
			r := &rec{when: Time(rng.Intn(1000))}
			r.ev = eng.At(r.when, func() { fired = append(fired, r.when) })
			recs = append(recs, r)
		}
		for _, r := range recs {
			if rng.Intn(2) == 0 {
				r.cancelled = true
				if !eng.Cancel(r.ev) {
					t.Fatal("cancel of pending event failed")
				}
			}
		}
		var want []Time
		for _, r := range recs {
			if !r.cancelled {
				want = append(want, r.when)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		eng.Run()
		if len(fired) != len(want) {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(fired), len(want))
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("trial %d: fired[%d]=%v want %v", trial, i, fired[i], want[i])
			}
		}
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	eng := NewEngine()
	var ticks []Time
	tk := NewTicker(eng, 100, func() { ticks = append(ticks, eng.Now()) })
	eng.RunUntil(550)
	tk.Stop()
	want := []Time{100, 200, 300, 400, 500}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
	eng.RunUntil(2000)
	if len(ticks) != len(want) {
		t.Fatal("ticker fired after Stop")
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	eng := NewEngine()
	count := 0
	var tk *Ticker
	tk = NewTicker(eng, 10, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	eng.RunUntil(1000)
	if count != 2 {
		t.Fatalf("ticker fired %d times after in-callback Stop, want 2", count)
	}
}

func BenchmarkEngineSchedule(b *testing.B) {
	eng := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.At(Time(i), fn)
		if eng.Pending() > 1024 {
			for eng.Pending() > 0 {
				eng.Step()
			}
		}
	}
}

func TestDaemonEventsDoNotKeepRunAlive(t *testing.T) {
	eng := NewEngine()
	daemonFired := 0
	var rearm func(Time)
	rearm = func(at Time) {
		eng.AtDaemon(at, func() {
			daemonFired++
			rearm(eng.Now() + 10) // self-rearming background work
		})
	}
	rearm(5)
	normal := 0
	eng.At(27, func() { normal++ })
	eng.Run() // must terminate despite the endless daemon chain
	if normal != 1 {
		t.Fatal("normal event did not fire")
	}
	// Daemon events at 5, 15, 25 precede the normal event at 27 and fire;
	// the one at 35 stays queued.
	if daemonFired != 3 {
		t.Fatalf("daemon fired %d times, want 3", daemonFired)
	}
	if eng.Now() != 27 {
		t.Fatalf("time = %v, want 27", eng.Now())
	}
}

func TestRunWithOnlyDaemonEventsReturnsImmediately(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.AtDaemon(10, func() { fired = true })
	eng.Run()
	if fired {
		t.Fatal("daemon event fired with no non-daemon work")
	}
	if eng.Pending() != 1 {
		t.Fatal("daemon event should remain queued")
	}
}

func TestRunUntilFiresDaemonEvents(t *testing.T) {
	eng := NewEngine()
	fired := 0
	eng.AtDaemon(10, func() { fired++ })
	eng.AtDaemon(20, func() { fired++ })
	eng.RunUntil(15)
	if fired != 1 {
		t.Fatalf("RunUntil fired %d daemon events, want 1", fired)
	}
}

func TestCancelDaemonEvent(t *testing.T) {
	eng := NewEngine()
	ev := eng.AtDaemon(10, func() {})
	if !eng.Cancel(ev) {
		t.Fatal("cancel of daemon event failed")
	}
	eng.At(20, func() {})
	eng.Run() // must not crash the non-daemon bookkeeping
	if eng.Now() != 20 {
		t.Fatalf("time = %v", eng.Now())
	}
}

func TestDaemonTickerFiresWithoutExtendingRun(t *testing.T) {
	eng := NewEngine()
	var ticks []Time
	tk := NewDaemonTicker(eng, 100, func() { ticks = append(ticks, eng.Now()) })
	eng.At(250, func() {}) // non-daemon work keeps the run alive to 250
	eng.Run()              // must stop at 250, not tick forever
	tk.Stop()
	want := []Time{100, 200}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
	if eng.Now() != 250 {
		t.Fatalf("engine stopped at %d, want 250", eng.Now())
	}
}

func TestDaemonTickerAloneDoesNotRun(t *testing.T) {
	eng := NewEngine()
	fired := 0
	NewDaemonTicker(eng, 10, func() { fired++ })
	eng.Run() // only daemon work pending: returns immediately
	if fired != 0 {
		t.Fatalf("daemon ticker fired %d times with no live work", fired)
	}
}

func TestHaltWatcherStopsWithinOneInterval(t *testing.T) {
	eng := NewEngine()
	// A chain of non-daemon events that would run to t=10000 unless halted.
	var step func()
	step = func() {
		if eng.Now() < 10000 {
			eng.After(10, step)
		}
	}
	eng.After(10, step)

	cancelled := false
	NewHaltWatcher(eng, 100, func() bool { return cancelled })
	eng.At(555, func() { cancelled = true })
	eng.Run()
	if !eng.Halted() {
		t.Fatal("engine did not halt")
	}
	// The condition flips at 555; the next watcher tick is 600.
	if eng.Now() != 600 {
		t.Fatalf("halted at %v, want 600 (first tick after cancellation)", eng.Now())
	}
}

func TestHaltWatcherNeverExtendsRun(t *testing.T) {
	eng := NewEngine()
	NewHaltWatcher(eng, 100, func() bool { return false })
	eng.At(250, func() {})
	eng.Run()
	if eng.Halted() || eng.Now() != 250 {
		t.Fatalf("halted=%v now=%v, want clean drain at 250", eng.Halted(), eng.Now())
	}
}

func TestHaltWatcherStop(t *testing.T) {
	eng := NewEngine()
	w := NewHaltWatcher(eng, 100, func() bool { return true })
	w.Stop()
	eng.At(250, func() {})
	eng.Run()
	if eng.Halted() {
		t.Fatal("stopped watcher still halted the engine")
	}
}
