package sim

import (
	"errors"
	"fmt"
	"testing"
)

func TestCheckerPassesCleanRun(t *testing.T) {
	eng := NewEngine()
	c := NewChecker(eng, 10)
	calls := 0
	c.Register(Invariant{Name: "always-ok", Check: func() error {
		calls++
		return nil
	}})
	eng.At(100, func() {})
	eng.Run()
	c.Final()
	if err := c.Err(); err != nil {
		t.Fatalf("clean run reported violation: %v", err)
	}
	if calls == 0 {
		t.Fatal("invariant never checked")
	}
}

func TestCheckerHaltsOnViolation(t *testing.T) {
	eng := NewEngine()
	c := NewChecker(eng, 10)
	broken := false
	cause := errors.New("count drifted")
	c.Register(Invariant{Name: "accounting", Check: func() error {
		if broken {
			return cause
		}
		return nil
	}})
	eng.At(25, func() { broken = true })
	fired := false
	eng.At(500, func() { fired = true })
	eng.Run()

	err := c.Err()
	if err == nil {
		t.Fatal("violation not detected")
	}
	if !errors.Is(err, ErrInvariant) {
		t.Fatalf("error does not match ErrInvariant: %v", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("error does not match the check's cause: %v", err)
	}
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("error is not *InvariantError: %T", err)
	}
	if ie.Name != "accounting" {
		t.Fatalf("violated invariant = %q, want accounting", ie.Name)
	}
	if ie.At < 25 {
		t.Fatalf("violation time %v before the state broke at 25", ie.At)
	}
	if fired {
		t.Fatal("engine kept running after the violation")
	}
	if !eng.Halted() {
		t.Fatal("engine not halted")
	}
}

func TestCheckerFirstRegisteredWins(t *testing.T) {
	eng := NewEngine()
	c := NewChecker(eng, 10)
	c.Register(
		Invariant{Name: "first", Check: func() error { return errors.New("a") }},
		Invariant{Name: "second", Check: func() error { return errors.New("b") }},
	)
	eng.At(50, func() {})
	eng.Run()
	var ie *InvariantError
	if !errors.As(c.Err(), &ie) || ie.Name != "first" {
		t.Fatalf("got %v, want the first registered invariant", c.Err())
	}
}

func TestCheckerFinalChecksDrainedEngine(t *testing.T) {
	eng := NewEngine()
	c := NewChecker(eng, 1000) // interval longer than the run
	state := 0
	c.Register(Invariant{Name: "final-only", Check: func() error {
		if state != 1 {
			return fmt.Errorf("state = %d, want 1", state)
		}
		return nil
	}})
	eng.At(5, func() { state = 2 })
	eng.Run()
	if c.Err() != nil {
		t.Fatalf("violation before Final: %v", c.Err())
	}
	c.Final()
	if c.Err() == nil {
		t.Fatal("Final missed the violation")
	}
}

func TestCheckerIsDaemon(t *testing.T) {
	eng := NewEngine()
	NewChecker(eng, 10)
	eng.At(15, func() {})
	eng.Run()
	// A non-daemon checker would keep rearming and Run would never return
	// (or time would advance past the last real event). The last real event
	// is at 15; the checker tick at 10 fires, the one at 20 must not.
	if eng.Now() != 15 {
		t.Fatalf("engine time = %v, want 15 (checker extended the run)", eng.Now())
	}
}

func TestCheckerRegisterValidation(t *testing.T) {
	eng := NewEngine()
	c := NewChecker(eng, 10)
	for _, iv := range []Invariant{{Name: "", Check: func() error { return nil }}, {Name: "x"}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%+v) did not panic", iv)
				}
			}()
			c.Register(iv)
		}()
	}
}
