package sim

import (
	"context"
	"fmt"
	"sync"
)

// This file is the conservative parallel runner for sharded simulations:
// one main engine (shard 0) plus N vault-shard engines execute
// lookahead-sized windows concurrently, exchanging work through a
// Mailbox drained at window barriers. The scheme is classic
// Chandy-Misra conservative synchronization specialized to the CAMPS
// topology: shards only interact through the crossbar + serial links,
// whose fixed minimum latencies bound how far one shard's present can
// affect another shard's future.
//
// Execution is a skewed pipeline. In step s, shard 0 runs the window
// [sW, (s+1)W) while every vault shard runs [(s-1)W, sW): requests
// posted by shard 0 during its window always land at or after the
// window's start, so the one-window lag means vault shards have every
// request in hand before they need it, with no request-side lookahead
// requirement at all. Responses need the window to satisfy
// minResponse >= 2W (see the runner's caller), so a completion recorded
// in vault window s-1 is never due on shard 0 before (s+1)W — one full
// window after the barrier that replays it.
//
// Determinism: every event carries the (when, sched, tag, seq) key (see
// nodeLess), and cross-shard messages carry the (when, sched, tag) of
// the event that produced them. The tag component is what makes the
// order portable: same-instant scheduling collisions between independent
// actors — two vaults completing reads at the same picosecond, a request
// arriving while its vault acts — are resolved by actor stream, not by
// an engine-local sequence counter. Mailboxes are FIFO per shard and
// merged in key order at each barrier, and completions are re-applied
// under replay mode (Now() = the completion's original execution time),
// so the merged event order — and therefore the run's output — is the
// serial engine's order. The residual ambiguity is a pair of events with
// identical (when, sched, tag) whose scheduling interleaved across
// engines (possible only through multi-hop causal coincidences); the
// differential determinism suite polices that this never surfaces.

// Mailbox moves messages between shard 0 and the vault shards at window
// barriers. Implementations queue messages during window execution
// (each queue written by exactly one shard's goroutine) and move them
// here, on the coordinator, while every shard is parked at the barrier.
//
// When limit is true only messages strictly before the (lw, ls, lt)
// event key may be delivered or replayed; the rest must be discarded —
// they correspond to events a halted serial engine would never have
// fired. Both methods report how many messages they moved, which the
// halt winddown uses to detect quiescence.
type Mailbox interface {
	// DeliverDown inserts the requests shard 0 posted during its last
	// window into the destination shard engines (via Engine.DeliverAt),
	// in posting order.
	DeliverDown(limit bool, lw, ls Time, lt int32) int
	// ReplayUp re-applies the completions vault shards recorded during
	// their last window to shard 0, merged across shards in event-key
	// order (via Engine.BeginReplay/EndReplay).
	ReplayUp(limit bool, lw, ls Time, lt int32) int
}

// DeliverAt schedules fn on the engine exactly as if it had been
// scheduled at engine time sched by actor stream tag: the event sorts by
// (when, sched, tag) like every other, so a request crossing a shard
// boundary keeps the position in the event order it held on the engine
// that produced it. It is the mailbox-delivery entry point of the
// parallel runner; same-key messages delivered in FIFO order stay FIFO
// (the fresh seq stamps preserve it).
func (e *Engine) DeliverAt(when, sched Time, tag int32, fn func()) {
	if fn == nil {
		panic("sim: nil event function")
	}
	if when < e.now {
		panic(fmt.Sprintf("sim: delivering event at %v before now %v", when, e.now))
	}
	nd := e.alloc()
	nd.when = when
	nd.sched = sched
	nd.tag = tag
	nd.seq = e.seq
	nd.daemon = false
	nd.fn = fn
	e.seq++
	e.heapPush(nd)
	e.nonDaemon++
}

// BeginReplay puts the engine in replay mode at virtual time at, in
// actor stream tag: until EndReplay, Now() reports at and new events are
// stamped (and past-checked) as if scheduled then by that stream. The
// mailbox layer wraps each cross-shard completion in a replay so its
// callback — branch decisions, latency observations, follow-on
// scheduling — executes byte-identically to the serial engine that
// would have run it in place.
func (e *Engine) BeginReplay(at Time, tag int32) {
	e.replay = true
	e.vnow = at
	e.vtag = tag
}

// EndReplay leaves replay mode.
func (e *Engine) EndReplay() { e.replay = false }

// deferBody queues fn to run at the next window barrier; ticker bodies
// use it (via deferOn) so mid-window reads of cross-shard state move to
// a point where every shard is parked.
func (e *Engine) deferBody(fn func()) { e.deferredQ = append(e.deferredQ, fn) }

// flushDeferred runs the queued barrier bodies in deferral order.
func (e *Engine) flushDeferred() {
	for i := 0; i < len(e.deferredQ); i++ {
		e.deferredQ[i]() // bodies never re-defer: they run directly here
	}
	e.deferredQ = e.deferredQ[:0]
}

// runWindow fires every pending event strictly before until, then parks
// the clock at the window boundary. Halt stops it mid-window with the
// clock at the halting event, exactly like Run.
func (e *Engine) runWindow(until Time) {
	for !e.halted && len(e.heap) > 0 && e.heap[0].when < until {
		e.Step()
	}
	if !e.halted && e.now < until {
		e.now = until
	}
}

// keyBefore reports whether event key (w, s, t) sorts strictly before
// (lw, ls, lt): the portable prefix of nodeLess, shared by the winddown
// and the mailbox limit checks.
func keyBefore(w, s Time, t int32, lw, ls Time, lt int32) bool {
	if w != lw {
		return w < lw
	}
	if s != ls {
		return s < ls
	}
	return t < lt
}

// runBeforeKey fires every pending event whose (when, sched, tag) key
// sorts strictly before (lw, ls, lt), ignoring the halted flag: it is
// the winddown primitive that lets shards finish exactly the events a
// serial engine would have fired before the halt. Reports how many
// events fired.
func (e *Engine) runBeforeKey(lw, ls Time, lt int32) int {
	fired := 0
	wasHalted := e.halted
	for len(e.heap) > 0 {
		nd := e.heap[0]
		if !keyBefore(nd.when, nd.sched, nd.tag, lw, ls, lt) {
			break
		}
		e.halted = false
		e.Step()
		fired++
	}
	e.halted = wasHalted
	return fired
}

// RunParallel executes the sharded simulation: main (shard 0, which owns
// everything that is not a vault) plus the vault-shard engines, in
// lookahead windows of the given width, exchanging cross-shard messages
// through box at every barrier. It returns when main halts (the normal
// termination: the winddown then fires, on every shard, exactly the
// events that precede the halt in the serial event order) or when no
// non-daemon events remain anywhere.
//
// The window must satisfy 2*window <= the minimum cross-shard response
// latency; the caller (which knows the link timing) is responsible for
// picking it. On return main's clock and fired-event count cover the
// whole system, so callers that read Now()/Fired() off the main engine
// see exactly what a serial run would have reported. Termination by
// draining (no Halt) parks the clock at the last window boundary rather
// than the last event — campaign runs always terminate by Halt and are
// unaffected.
//
// ctx is polled at barriers as a backstop; model-level cancellation
// should use a halt watcher on the main engine, which stays
// deterministic relative to the simulated clock.
func RunParallel(ctx context.Context, main *Engine, shards []*Engine, window Time, box Mailbox) {
	if window <= 0 {
		panic("sim: parallel window must be positive")
	}
	main.deferOn = true
	defer func() { main.deferOn = false }()

	work := make([]chan Time, len(shards))
	done := make(chan struct{}, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		work[i] = make(chan Time)
		wg.Add(1)
		go func(e *Engine, w <-chan Time) {
			defer wg.Done()
			for until := range w {
				e.runWindow(until)
				done <- struct{}{}
			}
		}(sh, work[i])
	}

	vaultEnd, mainEnd := Time(0), window
	for {
		// Skewed pipeline step: vault shards execute the window the main
		// shard finished last step, concurrently with the main shard's
		// next one. The coordinator runs shard 0 itself.
		for i := range work {
			work[i] <- vaultEnd
		}
		main.runWindow(mainEnd)
		for range shards {
			<-done
		}
		if main.halted {
			break
		}
		box.DeliverDown(false, 0, 0, 0)
		box.ReplayUp(false, 0, 0, 0)
		main.flushDeferred()
		live := main.nonDaemon
		for _, sh := range shards {
			live += sh.nonDaemon
		}
		if live == 0 {
			break
		}
		if ctx != nil && ctx.Err() != nil {
			main.Halt()
			break
		}
		vaultEnd, mainEnd = mainEnd, mainEnd+window
	}
	for i := range work {
		close(work[i])
	}
	wg.Wait()

	if main.halted {
		// Winddown: the halt was discovered mid-window on shard 0, with
		// vault shards one window behind — so no shard has executed past
		// the halt. Deliver, run, and replay in rounds, each bounded to
		// events strictly before the halt key, until nothing moves.
		hw, hs, ht := main.haltWhen, main.haltSched, main.haltTag
		for {
			moved := box.DeliverDown(true, hw, hs, ht)
			fired := 0
			for _, sh := range shards {
				fired += sh.runBeforeKey(hw, hs, ht)
			}
			moved += box.ReplayUp(true, hw, hs, ht)
			fired += main.runBeforeKey(hw, hs, ht)
			if moved == 0 && fired == 0 {
				break
			}
		}
		main.now = hw
	}
	main.flushDeferred()
	for _, sh := range shards {
		main.fired += sh.fired
	}
}
