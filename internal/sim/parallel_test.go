package sim

import (
	"fmt"
	"strings"
	"testing"
)

// Clock conversions must survive durations and cycle counts whose
// intermediate product overflows int64. Regression for the d*den wrap: a
// 2999 MHz clock has den=2999 after reduction, so the old single-word
// ToCycles corrupted every conversion past ~51 simulated minutes.
func TestClockConversionExtremeDurations(t *testing.T) {
	c := NewClock(2999)
	// One simulated hour: 3.6e15 ps. d*den ~ 1.08e19 overflows int64.
	hour := Time(3_600_000_000_000_000)
	wantCycles := int64(10_796_400_000_000) // 3.6e15 ps * 2999 MHz / 1e6
	if got := c.ToCycles(hour); got != wantCycles {
		t.Fatalf("ToCycles(1h at 2999MHz) = %d, want %d", got, wantCycles)
	}
	if got := c.ToCyclesCeil(hour); got != wantCycles {
		t.Fatalf("ToCyclesCeil(1h at 2999MHz) = %d, want %d (exact edge)", got, wantCycles)
	}
	if got := c.ToCyclesCeil(hour + 1); got != wantCycles+1 {
		t.Fatalf("ToCyclesCeil(1h+1ps) = %d, want %d", got, wantCycles+1)
	}
	if got := c.Cycles(wantCycles); got != hour {
		t.Fatalf("Cycles(%d) = %d, want %d", wantCycles, got, hour)
	}
	// Round-trip consistency deep into the representable range: floor
	// then ceil must bracket the instant for a non-integral period.
	cpu := NewClock(3000) // 1000/3 ps period
	for _, d := range []Time{1 << 40, 1 << 50, 1 << 60, 1<<62 + 12345} {
		n := cpu.ToCycles(d)
		if at := cpu.Cycles(n); at > d {
			t.Fatalf("Cycles(ToCycles(%d)) = %d, past the instant", d, at)
		}
		if edge := cpu.NextEdge(d); edge < d {
			t.Fatalf("NextEdge(%d) = %d, before the instant", d, edge)
		}
	}
}

func TestClockConversionOverflowPanics(t *testing.T) {
	defer func() {
		msg, _ := recover().(string)
		if !strings.Contains(msg, "overflows") {
			t.Fatalf("unrepresentable conversion did not panic with overflow (got %q)", msg)
		}
	}()
	// Quotient exceeds int64: ~9.2e18 cycles * (1e6/2999) ps/cycle.
	NewClock(2999).Cycles(1<<63 - 1)
}

func TestRunForNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunFor(-1) did not panic")
		}
	}()
	NewEngine().RunFor(-1)
}

func TestRunUntilPastDeadlineIsNoop(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.At(5, func() { fired = true })
	eng.RunFor(10)
	if !fired || eng.Now() != 10 {
		t.Fatalf("setup: fired=%v now=%v", fired, eng.Now())
	}
	eng.At(15, func() { t.Fatal("event fired despite past deadline") })
	eng.RunUntil(3) // explicitly documented no-op
	if eng.Now() != 10 {
		t.Fatalf("RunUntil(past) moved the clock to %v", eng.Now())
	}
}

// Same-instant events must fire in scheduling-time order before
// falling back to sequence order: on one engine that is identical to
// pure FIFO (the clock never runs backwards while scheduling), and it is
// the property that lets cross-shard messages keep their serial position.
func TestSameInstantOrderBySchedThenSeq(t *testing.T) {
	eng := NewEngine()
	var order []string
	eng.At(20, func() { order = append(order, "sched0-a") }) // scheduled at t=0
	eng.At(10, func() {
		eng.At(20, func() { order = append(order, "sched10") })
	})
	eng.At(20, func() { order = append(order, "sched0-b") })
	eng.Run()
	want := "sched0-a,sched0-b,sched10"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("same-instant order = %s, want %s", got, want)
	}
}

func TestDeliverAtKeepsForeignSchedPosition(t *testing.T) {
	eng := NewEngine()
	var order []string
	eng.At(10, func() {
		eng.At(100, func() { order = append(order, "local-sched10") })
	})
	// A message produced elsewhere at engine time 5 must sort ahead of a
	// local event scheduled at time 10, even though it is inserted last.
	eng.At(50, func() { order = append(order, "local-sched0") }) // placeholder to advance clock
	eng.DeliverAt(100, 5, 0, func() { order = append(order, "foreign-sched5") })
	eng.Run()
	want := "local-sched0,foreign-sched5,local-sched10"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("delivery order = %s, want %s", got, want)
	}
}

func TestReplayModeVirtualClock(t *testing.T) {
	eng := NewEngine()
	eng.At(40, func() {})
	eng.Run()
	if eng.Now() != 40 {
		t.Fatalf("now = %v", eng.Now())
	}
	eng.BeginReplay(25, 0)
	if eng.Now() != 25 {
		t.Fatalf("replay Now() = %v, want virtual 25", eng.Now())
	}
	var at Time
	eng.AtWhen(30, func(w Time) { at = w }) // legal: 30 >= virtual now, though < real now
	eng.EndReplay()
	if eng.Now() != 40 {
		t.Fatalf("Now() after replay = %v, want 40", eng.Now())
	}
	eng.runBeforeKey(41, 0, 0)
	if at != 30 {
		t.Fatalf("replay-scheduled event fired at %v, want 30", at)
	}
}

// toyBox is a minimal Mailbox for a two-shard model that mirrors the
// cube/vault seam: the main shard posts jobs that arrive at the "vault"
// shard reqLat later, the vault records completions, and each completion
// is replayed onto the main shard, which schedules the response arrival
// respLat after the vault executed. respLat is the cross-shard response
// latency, so any window <= respLat/2 is legal.
type toyMsg struct {
	when, sched Time
	do          func()
}

type toyBox struct {
	main, vault *Engine
	down, up    []toyMsg
}

func (b *toyBox) DeliverDown(limit bool, lw, ls Time, lt int32) int {
	moved := 0
	for _, m := range b.down {
		if limit && !keyBefore(m.when, m.sched, 0, lw, ls, lt) {
			continue
		}
		b.vault.DeliverAt(m.when, m.sched, 0, m.do)
		moved++
	}
	b.down = b.down[:0]
	return moved
}

func (b *toyBox) ReplayUp(limit bool, lw, ls Time, lt int32) int {
	moved := 0
	for _, m := range b.up {
		if limit && !keyBefore(m.when, m.sched, 0, lw, ls, lt) {
			continue
		}
		b.main.BeginReplay(m.when, 0)
		m.do()
		b.main.EndReplay()
		moved++
	}
	b.up = b.up[:0]
	return moved
}

// runToyModel executes jobs posts through either a serial engine or a
// sharded pair, returning the main-side and vault-side logs plus the
// total fired-event count. Behavior on both paths is written against the
// same Engine API, so any divergence is a runner bug.
func runToyModel(jobs int, haltAt Time, parallel bool) (mainLog, vaultLog []string, fired uint64, now Time) {
	const reqLat, respLat, window = 700, 800, 400
	main := NewEngine()
	vaultEng := main
	box := &toyBox{}
	if parallel {
		vaultEng = NewEngine()
		box.main, box.vault = main, vaultEng
	}
	ve := func() *Engine { return vaultEng }
	for i := 0; i < jobs; i++ {
		i := i
		post := Time(i) * 90
		main.At(post, func() {
			mainLog = append(mainLog, fmt.Sprintf("post%d@%d", i, main.Now()))
			arrive := main.Now() + reqLat
			vaultWork := func() {
				e := ve()
				vaultLog = append(vaultLog, fmt.Sprintf("vault%d@%d", i, e.Now()))
				finish := func() {
					back := main.Now() + respLat // virtual now under replay
					main.At(back, func() {
						mainLog = append(mainLog, fmt.Sprintf("done%d@%d", i, main.Now()))
					})
				}
				if parallel {
					box.up = append(box.up, toyMsg{when: e.Now(), sched: e.CurSched(), do: finish})
				} else {
					finish()
				}
			}
			if parallel {
				box.down = append(box.down, toyMsg{when: arrive, sched: main.Now(), do: vaultWork})
			} else {
				main.At(arrive, vaultWork)
			}
		})
	}
	if haltAt > 0 {
		main.At(haltAt, func() { main.Halt() })
	}
	if parallel {
		RunParallel(nil, main, []*Engine{vaultEng}, window, box)
	} else {
		main.Run()
	}
	return mainLog, vaultLog, main.Fired(), main.Now()
}

func TestRunParallelMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name   string
		jobs   int
		haltAt Time
	}{
		{"drain", 40, 0},
		{"halt-midstream", 40, 2111},
		{"halt-before-first-response", 10, 900},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sm, sv, sf, sn := runToyModel(tc.jobs, tc.haltAt, false)
			pm, pv, pf, pn := runToyModel(tc.jobs, tc.haltAt, true)
			if got, want := strings.Join(pm, "\n"), strings.Join(sm, "\n"); got != want {
				t.Errorf("main-shard log diverged:\nparallel:\n%s\nserial:\n%s", got, want)
			}
			if got, want := strings.Join(pv, "\n"), strings.Join(sv, "\n"); got != want {
				t.Errorf("vault-shard log diverged:\nparallel:\n%s\nserial:\n%s", got, want)
			}
			if pf != sf {
				t.Errorf("fired = %d, serial %d", pf, sf)
			}
			if tc.haltAt > 0 && pn != sn {
				t.Errorf("halted now = %v, serial %v", pn, sn)
			}
		})
	}
}
