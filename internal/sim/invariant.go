package sim

import (
	"errors"
	"fmt"
)

// ErrInvariant matches every invariant violation under errors.Is.
var ErrInvariant = errors.New("sim: invariant violated")

// Invariant is one named structural property of a simulation, checked
// periodically. It returns nil while the property holds. Checks must be
// read-only: a checker runs on the daemon queue and must not perturb the
// simulation it observes.
type Invariant struct {
	Name  string
	Check func() error
}

// InvariantError is the typed error a failed check produces. It wraps
// both ErrInvariant and the check's own error, so callers can match the
// class (errors.Is(err, sim.ErrInvariant)) or the specific cause.
type InvariantError struct {
	Name string // the violated invariant
	At   Time   // simulation time of the check
	Err  error  // what the check reported
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("sim: invariant %q violated at %v: %v", e.Name, e.At, e.Err)
}

// Unwrap exposes both the class sentinel and the underlying cause.
func (e *InvariantError) Unwrap() []error { return []error{ErrInvariant, e.Err} }

// Checker runs registered invariants every interval of simulated time on
// the daemon queue (so checking never extends a run) and halts the engine
// on the first violation, preserving it as a typed error instead of
// letting corrupted state propagate into results.
type Checker struct {
	eng    *Engine
	ticker *Ticker
	inv    []Invariant
	err    *InvariantError
	last   Time // previous check time, for the built-in monotone clock
}

// NewChecker arms a checker on eng with the given interval. The built-in
// monotone-clock invariant (engine time never moves backwards between
// checks) is always registered; add model-level invariants with Register
// before the simulation runs.
func NewChecker(eng *Engine, interval Time) *Checker {
	c := &Checker{eng: eng, last: eng.Now()}
	c.Register(Invariant{Name: "monotone-clock", Check: func() error {
		if now := eng.Now(); now < c.last {
			return fmt.Errorf("clock moved backwards: %v after %v", now, c.last)
		}
		return nil
	}})
	c.ticker = NewDaemonTicker(eng, interval, c.run)
	return c
}

// Register adds an invariant. Registration order is check order, which
// keeps violation reports deterministic when several properties break at
// once (the first registered failing invariant wins).
func (c *Checker) Register(inv ...Invariant) {
	for _, iv := range inv {
		if iv.Name == "" || iv.Check == nil {
			panic("sim: invariant needs a name and a check")
		}
	}
	c.inv = append(c.inv, inv...)
}

// run executes one round of checks; on the first failure it records the
// violation and halts the engine.
func (c *Checker) run() {
	for _, iv := range c.inv {
		if err := iv.Check(); err != nil {
			c.err = &InvariantError{Name: iv.Name, At: c.eng.Now(), Err: err}
			c.ticker.Stop()
			c.eng.Halt()
			return
		}
	}
	c.last = c.eng.Now()
}

// Final runs one last round of checks immediately (outside the ticker),
// for end-of-run validation after the engine has drained. It is a no-op
// if a violation was already recorded.
func (c *Checker) Final() {
	if c.err == nil {
		c.run()
	}
}

// Err returns the first recorded violation, or nil. The concrete type is
// *InvariantError; it matches ErrInvariant under errors.Is.
func (c *Checker) Err() error {
	if c.err == nil {
		return nil
	}
	return c.err
}

// Stop cancels future checks.
func (c *Checker) Stop() { c.ticker.Stop() }
