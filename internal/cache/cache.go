// Package cache implements the three-level cache hierarchy of Table I:
// private L1 and L2 per core and one shared L3, all with 64-byte lines,
// true-LRU set associativity, and write-back/write-allocate semantics.
//
// The caches are functional models with timing metadata: an access
// resolves, in zero simulated time, to the level that services it plus the
// cumulative lookup latency; misses past L3 and dirty L3 evictions are the
// traffic that reaches the HMC.
package cache

import (
	"fmt"
	"math/bits"

	"camps/internal/config"
	"camps/internal/obs"
	"camps/internal/stats"
)

// Level is one set-associative cache.
type Level struct {
	sets      int
	ways      int
	lineShift uint
	setMask   uint64
	tags      []uint64 // sets*ways
	state     []uint8  // bit0 valid, bit1 dirty
	lru       []uint8  // LRU rank within the set; 0 = LRU, ways-1 = MRU
	hitLat    int64

	hits   stats.Counter
	misses stats.Counter
	evicts stats.Counter
	wbacks stats.Counter

	prefInstalled stats.Counter
	prefUseful    stats.Counter
}

const (
	stValid uint8 = 1 << 0
	stDirty uint8 = 1 << 1
	stPref  uint8 = 1 << 2 // installed by a core-side prefetch, unused yet
)

// NewLevel builds a cache level from its configuration.
func NewLevel(cfg config.CacheLevel) *Level {
	sets := int(cfg.SizeBytes) / cfg.Ways / cfg.LineBytes
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d must be a positive power of two", sets))
	}
	n := sets * cfg.Ways
	return &Level{
		sets:      sets,
		ways:      cfg.Ways,
		lineShift: uint(bits.TrailingZeros64(uint64(cfg.LineBytes))),
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, n),
		state:     make([]uint8, n),
		lru:       make([]uint8, n),
		hitLat:    cfg.HitLatency,
	}
}

// HitLatency returns the level's lookup latency in CPU cycles.
func (l *Level) HitLatency() int64 { return l.hitLat }

// Sets returns the number of sets.
func (l *Level) Sets() int { return l.sets }

// Hits returns the hit count.
func (l *Level) Hits() uint64 { return l.hits.Value() }

// Misses returns the miss count.
func (l *Level) Misses() uint64 { return l.misses.Value() }

// Writebacks returns the number of dirty lines evicted.
func (l *Level) Writebacks() uint64 { return l.wbacks.Value() }

func (l *Level) index(addr uint64) (set int, lineTag uint64) {
	line := addr >> l.lineShift
	return int(line & l.setMask), line >> uint(bits.TrailingZeros64(uint64(l.sets)))
}

// Lookup probes for addr; on a hit it refreshes LRU and, for writes, sets
// the dirty bit.
func (l *Level) Lookup(addr uint64, write bool) bool {
	set, tag := l.index(addr)
	base := set * l.ways
	for w := 0; w < l.ways; w++ {
		i := base + w
		if l.state[i]&stValid != 0 && l.tags[i] == tag {
			l.touch(set, w)
			if write {
				l.state[i] |= stDirty
			}
			if l.state[i]&stPref != 0 {
				l.state[i] &^= stPref
				l.prefUseful.Inc()
			}
			l.hits.Inc()
			return true
		}
	}
	l.misses.Inc()
	return false
}

// Contains probes without disturbing LRU or statistics.
func (l *Level) Contains(addr uint64) bool {
	set, tag := l.index(addr)
	base := set * l.ways
	for w := 0; w < l.ways; w++ {
		i := base + w
		if l.state[i]&stValid != 0 && l.tags[i] == tag {
			return true
		}
	}
	return false
}

// Victim describes a line displaced by Install.
type Victim struct {
	Addr  uint64
	Dirty bool
	Valid bool
}

// Install places addr into its set as MRU, returning the displaced line.
// Installing an already-present line refreshes it (and may set dirty).
func (l *Level) Install(addr uint64, dirty bool) Victim {
	return l.install(addr, dirty, false)
}

// InstallPrefetched installs a line brought in by a core-side prefetcher;
// its first demand hit counts toward prefetch usefulness.
func (l *Level) InstallPrefetched(addr uint64) Victim {
	l.prefInstalled.Inc()
	return l.install(addr, false, true)
}

func (l *Level) install(addr uint64, dirty, prefetched bool) Victim {
	set, tag := l.index(addr)
	base := set * l.ways
	// Already present: refresh (a prefetch overlay never downgrades the
	// line's state).
	for w := 0; w < l.ways; w++ {
		i := base + w
		if l.state[i]&stValid != 0 && l.tags[i] == tag {
			l.touch(set, w)
			if dirty {
				l.state[i] |= stDirty
			}
			return Victim{}
		}
	}
	// Free way?
	way := -1
	for w := 0; w < l.ways; w++ {
		if l.state[base+w]&stValid == 0 {
			way = w
			// A never-used way carries a stale LRU rank; neutralize it so
			// touch() does not decrement other lines spuriously.
			l.lru[base+w] = 0xFF
			break
		}
	}
	var victim Victim
	if way < 0 {
		// Evict the LRU way.
		for w := 0; w < l.ways; w++ {
			if l.lru[base+w] == 0 {
				way = w
				break
			}
		}
		i := base + way
		victim = Victim{
			Addr:  l.reconstruct(set, l.tags[i]),
			Dirty: l.state[i]&stDirty != 0,
			Valid: true,
		}
		l.evicts.Inc()
		if victim.Dirty {
			l.wbacks.Inc()
		}
	}
	i := base + way
	l.tags[i] = tag
	l.state[i] = stValid
	if dirty {
		l.state[i] |= stDirty
	}
	if prefetched {
		l.state[i] |= stPref
	}
	l.touch(set, way)
	return victim
}

// PrefetchInstalled returns lines installed by a core-side prefetcher.
func (l *Level) PrefetchInstalled() uint64 { return l.prefInstalled.Value() }

// PrefetchUseful returns prefetched lines that saw a demand hit.
func (l *Level) PrefetchUseful() uint64 { return l.prefUseful.Value() }

// reconstruct rebuilds a line's base address from set and tag.
func (l *Level) reconstruct(set int, tag uint64) uint64 {
	line := tag<<uint(bits.TrailingZeros64(uint64(l.sets))) | uint64(set)
	return line << l.lineShift
}

// touch makes way w of set the MRU entry.
func (l *Level) touch(set, w int) {
	base := set * l.ways
	old := l.lru[base+w]
	for k := 0; k < l.ways; k++ {
		if l.state[base+k]&stValid != 0 && l.lru[base+k] > old {
			l.lru[base+k]--
		}
	}
	// MRU rank is the number of other valid lines in the set.
	valid := 0
	for k := 0; k < l.ways; k++ {
		if l.state[base+k]&stValid != 0 && k != w {
			valid++
		}
	}
	l.lru[base+w] = uint8(valid)
}

// Hierarchy is the full per-chip cache stack.
type Hierarchy struct {
	l1, l2 []*Level
	l3     *Level
	cfg    config.Config

	l3MissPerCore []stats.Counter
}

// NewHierarchy builds the stack for cfg.Processor.Cores cores.
func NewHierarchy(cfg config.Config) *Hierarchy {
	h := &Hierarchy{cfg: cfg, l3: NewLevel(cfg.L3)}
	h.l1 = make([]*Level, cfg.Processor.Cores)
	h.l2 = make([]*Level, cfg.Processor.Cores)
	h.l3MissPerCore = make([]stats.Counter, cfg.Processor.Cores)
	for i := range h.l1 {
		h.l1[i] = NewLevel(cfg.L1)
		h.l2[i] = NewLevel(cfg.L2)
	}
	return h
}

// Instrument registers the hierarchy's hit/miss counters with the
// observability registry under the cache.* namespace (private levels are
// aggregated across cores at snapshot time).
func (h *Hierarchy) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for _, l := range h.l1 {
		reg.CounterFunc("cache.l1_hits", l.hits.Value)
		reg.CounterFunc("cache.l1_misses", l.misses.Value)
	}
	for _, l := range h.l2 {
		reg.CounterFunc("cache.l2_hits", l.hits.Value)
		reg.CounterFunc("cache.l2_misses", l.misses.Value)
	}
	reg.CounterFunc("cache.l3_hits", h.l3.hits.Value)
	reg.CounterFunc("cache.l3_misses", h.l3.misses.Value)
}

// Result describes how an access resolved.
type Result struct {
	// Level that serviced the access: 1..3, or 4 for main memory.
	Level int
	// Latency is the cumulative lookup latency in CPU cycles, excluding
	// main-memory time (added by the caller for Level 4).
	Latency int64
	// Writebacks lists dirty L3 victims that must be written to memory.
	Writebacks []uint64
}

// Access performs one data reference for core. Misses install the line in
// every level on the path; dirty victims cascade downward, and dirty L3
// victims surface as memory writebacks.
func (h *Hierarchy) Access(core int, addr uint64, write bool) Result {
	if core < 0 || core >= len(h.l1) {
		panic(fmt.Sprintf("cache: core %d out of range", core))
	}
	l1, l2 := h.l1[core], h.l2[core]
	res := Result{Latency: l1.HitLatency()}
	if l1.Lookup(addr, write) {
		res.Level = 1
		return res
	}
	res.Latency += l2.HitLatency()
	if l2.Lookup(addr, false) {
		res.Level = 2
		h.fillL1(core, addr, write, &res)
		return res
	}
	res.Latency += h.l3.HitLatency()
	if h.l3.Lookup(addr, false) {
		res.Level = 3
		h.fillL2(core, addr, &res)
		h.fillL1(core, addr, write, &res)
		return res
	}
	// Miss to memory: install everywhere on the way back.
	res.Level = 4
	h.l3MissPerCore[core].Inc()
	if v := h.l3.Install(addr, false); v.Valid && v.Dirty {
		res.Writebacks = append(res.Writebacks, v.Addr)
	}
	h.fillL2(core, addr, &res)
	h.fillL1(core, addr, write, &res)
	return res
}

// fillL1 installs addr into core's L1, cascading a dirty victim into L2.
func (h *Hierarchy) fillL1(core int, addr uint64, write bool, res *Result) {
	if v := h.l1[core].Install(addr, write); v.Valid && v.Dirty {
		h.installDirty(h.l2[core], v.Addr, res, func(v2 Victim) {
			h.installDirty(h.l3, v2.Addr, res, func(v3 Victim) {
				res.Writebacks = append(res.Writebacks, v3.Addr)
			})
		})
	}
}

// fillL2 installs addr into core's L2, cascading a dirty victim into L3.
func (h *Hierarchy) fillL2(core int, addr uint64, res *Result) {
	if v := h.l2[core].Install(addr, false); v.Valid && v.Dirty {
		h.installDirty(h.l3, v.Addr, res, func(v3 Victim) {
			res.Writebacks = append(res.Writebacks, v3.Addr)
		})
	}
}

// installDirty writes a dirty victim into a lower level; if that in turn
// displaces a dirty line, onDirty handles it.
func (h *Hierarchy) installDirty(lvl *Level, addr uint64, res *Result, onDirty func(Victim)) {
	if lvl.Lookup(addr, true) {
		return
	}
	if v := lvl.Install(addr, true); v.Valid && v.Dirty {
		onDirty(v)
	}
}

// InstallPrefetched installs a line fetched by core's L2 prefetcher into
// its L2 and the shared L3, returning dirty L3 victims that must be
// written to memory. It is the fill path of the core-side prefetching
// ablation; the installed lines count toward prefetch usefulness on their
// first demand hit.
func (h *Hierarchy) InstallPrefetched(core int, addr uint64) []uint64 {
	var wbs []uint64
	if v := h.l3.InstallPrefetched(addr); v.Valid && v.Dirty {
		wbs = append(wbs, v.Addr)
	}
	if v := h.l2[core].InstallPrefetched(addr); v.Valid && v.Dirty {
		res := Result{}
		h.installDirty(h.l3, v.Addr, &res, func(v3 Victim) {
			wbs = append(wbs, v3.Addr)
		})
		wbs = append(wbs, res.Writebacks...)
	}
	return wbs
}

// L1 returns core's L1 (for tests).
func (h *Hierarchy) L1(core int) *Level { return h.l1[core] }

// L2 returns core's L2 (for tests).
func (h *Hierarchy) L2(core int) *Level { return h.l2[core] }

// L3 returns the shared L3.
func (h *Hierarchy) L3() *Level { return h.l3 }

// L3Misses returns core's L3 miss count (the MPKI numerator).
func (h *Hierarchy) L3Misses(core int) uint64 { return h.l3MissPerCore[core].Value() }
