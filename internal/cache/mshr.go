package cache

import (
	"camps/internal/obs"
	"camps/internal/sim"
	"camps/internal/stats"
)

// Backend is the memory below the MSHR file (the HMC cube).
type Backend interface {
	// ReadLine fetches one cache line; done fires when data returns.
	ReadLine(addr uint64, done func(at sim.Time))
	// WriteLine posts one cache-line writeback.
	WriteLine(addr uint64)
}

// MSHRFile models the shared L3 miss-status holding registers: it bounds
// the number of distinct outstanding line fetches and coalesces concurrent
// misses to the same line into one memory request. Requests that arrive
// with the file full wait in an overflow queue and issue as entries free
// up — the structural hazard a real MSHR file creates.
type MSHRFile struct {
	eng     *sim.Engine
	backend Backend
	entries int

	pending  map[uint64][]func(at sim.Time)
	overflow []mshrReq

	coalesced stats.Counter
	stalls    stats.Counter
	issued    stats.Counter
	peak      int

	tr *obs.Tracer // nil unless Instrument was called
}

type mshrReq struct {
	addr uint64
	done func(at sim.Time)
}

// NewMSHRFile wraps backend with an entries-deep MSHR file.
func NewMSHRFile(eng *sim.Engine, backend Backend, entries int) *MSHRFile {
	if entries <= 0 {
		panic("cache: MSHR file needs at least one entry")
	}
	return &MSHRFile{
		eng:     eng,
		backend: backend,
		entries: entries,
		pending: make(map[uint64][]func(at sim.Time)),
	}
}

// Instrument registers the MSHR file's counters with the observability
// registry under the mshr.* namespace and publishes stall/coalesce trace
// events to tr. Either argument may be nil.
func (m *MSHRFile) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	m.tr = tr
	if reg == nil {
		return
	}
	reg.CounterFunc("mshr.coalesced", m.coalesced.Value)
	reg.CounterFunc("mshr.stalls", m.stalls.Value)
	reg.CounterFunc("mshr.issued", m.issued.Value)
	reg.GaugeFunc("mshr.outstanding", func() float64 { return float64(len(m.pending)) })
	reg.GaugeFunc("mshr.peak", func() float64 { return float64(m.peak) })
}

// ReadLine implements Backend with coalescing and entry bounding.
func (m *MSHRFile) ReadLine(addr uint64, done func(at sim.Time)) {
	if waiters, ok := m.pending[addr]; ok {
		// Secondary miss: ride the outstanding fetch.
		m.pending[addr] = append(waiters, done)
		m.coalesced.Inc()
		m.tr.Emit(obs.Event{At: int64(m.eng.Now()), Type: obs.EvMSHRCoalesce,
			Vault: -1, Row: int64(addr), Arg: int64(len(m.pending))})
		return
	}
	if len(m.pending) >= m.entries {
		m.stalls.Inc()
		m.overflow = append(m.overflow, mshrReq{addr: addr, done: done})
		m.tr.Emit(obs.Event{At: int64(m.eng.Now()), Type: obs.EvMSHRStall,
			Vault: -1, Row: int64(addr), Arg: int64(len(m.overflow))})
		return
	}
	m.allocate(addr, done)
}

// WriteLine passes writebacks straight through (posted writes occupy no
// MSHR in this model; they carry their own data).
func (m *MSHRFile) WriteLine(addr uint64) { m.backend.WriteLine(addr) }

func (m *MSHRFile) allocate(addr uint64, done func(at sim.Time)) {
	m.pending[addr] = []func(at sim.Time){done}
	if len(m.pending) > m.peak {
		m.peak = len(m.pending)
	}
	m.issued.Inc()
	m.backend.ReadLine(addr, func(at sim.Time) {
		waiters := m.pending[addr]
		delete(m.pending, addr)
		for _, w := range waiters {
			w(at)
		}
		m.drainOverflow()
	})
}

// drainOverflow walks the queue once: requests matching an outstanding
// line coalesce onto it (regardless of capacity); others issue while
// entries are free; the rest keep waiting in order.
func (m *MSHRFile) drainOverflow() {
	kept := m.overflow[:0]
	for _, req := range m.overflow {
		if waiters, ok := m.pending[req.addr]; ok {
			m.pending[req.addr] = append(waiters, req.done)
			m.coalesced.Inc()
			continue
		}
		if len(m.pending) < m.entries {
			m.allocate(req.addr, req.done)
			continue
		}
		kept = append(kept, req)
	}
	m.overflow = kept
}

// Coalesced returns secondary misses merged into outstanding fetches.
func (m *MSHRFile) Coalesced() uint64 { return m.coalesced.Value() }

// Stalls returns requests that waited for a free entry.
func (m *MSHRFile) Stalls() uint64 { return m.stalls.Value() }

// Issued returns distinct line fetches sent to the backend.
func (m *MSHRFile) Issued() uint64 { return m.issued.Value() }

// Peak returns the maximum simultaneous outstanding entries.
func (m *MSHRFile) Peak() int { return m.peak }

// Outstanding returns the current outstanding entry count.
func (m *MSHRFile) Outstanding() int { return len(m.pending) }
