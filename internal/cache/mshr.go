package cache

import (
	"camps/internal/obs"
	"camps/internal/sim"
	"camps/internal/stats"
)

// Backend is the memory below the MSHR file (the HMC cube).
type Backend interface {
	// ReadLine fetches one cache line; done fires when data returns.
	ReadLine(addr uint64, done func(at sim.Time))
	// WriteLine posts one cache-line writeback.
	WriteLine(addr uint64)
}

// MSHRFile models the shared L3 miss-status holding registers: it bounds
// the number of distinct outstanding line fetches and coalesces concurrent
// misses to the same line into one memory request. Requests that arrive
// with the file full wait in an overflow queue and issue as entries free
// up — the structural hazard a real MSHR file creates.
type MSHRFile struct {
	eng     *sim.Engine
	backend Backend
	entries int

	// The file is a fixed table of entry slots: index maps an outstanding
	// line address to its slot, free lists the idle slots, and pool
	// recycles waiter slices. Each slot's completion callback is bound at
	// construction, so a primary miss issues to the backend without
	// allocating a closure or a waiter slice in steady state.
	table    []mshrEntry
	index    map[uint64]int32
	free     []int32
	pool     [][]waiter
	overflow []mshrReq

	coalesced stats.Counter
	stalls    stats.Counter
	issued    stats.Counter
	peak      int

	tr    *obs.Tracer  // nil unless Instrument was called
	spans *obs.SpanSet // nil unless AttachSpans was called
}

type mshrEntry struct {
	addr    uint64
	waiters []waiter
	fire    func(at sim.Time) // completion callback bound to this slot
}

// waiter is one requester riding an outstanding line fetch. The primary
// miss's span travels with the backend request (staged through the span
// set), so its waiter carries the zero ref; secondary misses keep their
// spans here and retire them as queue time when the fetch returns.
type waiter struct {
	done func(at sim.Time)
	span obs.SpanRef
}

type mshrReq struct {
	addr uint64
	done func(at sim.Time)
	span obs.SpanRef
}

// NewMSHRFile wraps backend with an entries-deep MSHR file.
func NewMSHRFile(eng *sim.Engine, backend Backend, entries int) *MSHRFile {
	if entries <= 0 {
		panic("cache: MSHR file needs at least one entry")
	}
	m := &MSHRFile{
		eng:     eng,
		backend: backend,
		entries: entries,
		table:   make([]mshrEntry, entries),
		index:   make(map[uint64]int32, entries),
		free:    make([]int32, 0, entries),
	}
	for i := entries - 1; i >= 0; i-- {
		slot := int32(i)
		m.table[i].fire = func(at sim.Time) { m.complete(slot, at) }
		m.free = append(m.free, slot)
	}
	return m
}

// Instrument registers the MSHR file's counters with the observability
// registry under the mshr.* namespace and publishes stall/coalesce trace
// events to tr. Either argument may be nil.
func (m *MSHRFile) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	m.tr = tr
	if reg == nil {
		return
	}
	reg.CounterFunc("mshr.coalesced", m.coalesced.Value)
	reg.CounterFunc("mshr.stalls", m.stalls.Value)
	reg.CounterFunc("mshr.issued", m.issued.Value)
	reg.GaugeFunc("mshr.outstanding", func() float64 { return float64(len(m.index)) })
	reg.GaugeFunc("mshr.peak", func() float64 { return float64(m.peak) })
}

// AttachSpans makes every demand read entering the MSHR file open an
// attribution span that follows the request down the memory hierarchy.
// spans may be nil (attribution off).
func (m *MSHRFile) AttachSpans(spans *obs.SpanSet) { m.spans = spans }

// ReadLine implements Backend with coalescing and entry bounding.
func (m *MSHRFile) ReadLine(addr uint64, done func(at sim.Time)) {
	ref := m.spans.Begin(int64(m.eng.Now()))
	if slot, ok := m.index[addr]; ok {
		// Secondary miss: ride the outstanding fetch.
		e := &m.table[slot]
		e.waiters = append(e.waiters, waiter{done: done, span: ref})
		m.coalesced.Inc()
		m.tr.Emit(obs.Event{At: int64(m.eng.Now()), Type: obs.EvMSHRCoalesce,
			Vault: -1, Row: int64(addr), Arg: int64(len(m.index))})
		return
	}
	if len(m.index) >= m.entries {
		m.stalls.Inc()
		m.overflow = append(m.overflow, mshrReq{addr: addr, done: done, span: ref})
		m.tr.Emit(obs.Event{At: int64(m.eng.Now()), Type: obs.EvMSHRStall,
			Vault: -1, Row: int64(addr), Arg: int64(len(m.overflow))})
		return
	}
	m.allocate(addr, done, ref)
}

// WriteLine passes writebacks straight through (posted writes occupy no
// MSHR in this model; they carry their own data).
func (m *MSHRFile) WriteLine(addr uint64) { m.backend.WriteLine(addr) }

func (m *MSHRFile) allocate(addr uint64, done func(at sim.Time), ref obs.SpanRef) {
	slot := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	e := &m.table[slot]
	e.addr = addr
	var ws []waiter
	if n := len(m.pool); n > 0 {
		ws = m.pool[n-1]
		m.pool[n-1] = nil
		m.pool = m.pool[:n-1]
	}
	// The primary's span rides the backend request, not the waiter list:
	// stage it for the synchronous handoff so the cube can claim it
	// inside ReadLine. Its waiter carries the zero ref.
	e.waiters = append(ws, waiter{done: done})
	m.index[addr] = slot
	if len(m.index) > m.peak {
		m.peak = len(m.index)
	}
	m.issued.Inc()
	m.spans.Stage(ref)
	m.backend.ReadLine(addr, e.fire)
	if leftover := m.spans.Unstage(); leftover.Valid() {
		// Span-unaware backend (tests): fall back to retiring the
		// primary's span alongside the waiters so nothing leaks.
		if s, ok := m.index[addr]; ok && s == slot {
			m.table[slot].waiters[0].span = leftover
		} else { // the backend completed synchronously
			m.spans.Retire(leftover, obs.CauseQueue, int64(m.eng.Now()))
		}
	}
}

// complete fires when slot's line fetch returns. The slot is vacated
// before the waiters run: a waiter may re-enter ReadLine (even for the
// same address — that correctly issues a fresh fetch) and may claim this
// very slot, so the entry must not be touched afterwards.
func (m *MSHRFile) complete(slot int32, at sim.Time) {
	e := &m.table[slot]
	ws := e.waiters
	e.waiters = nil
	delete(m.index, e.addr)
	m.free = append(m.free, slot)
	for _, w := range ws {
		// Secondary misses spent their whole life waiting behind the
		// primary fetch; their spans close here as queue time.
		m.spans.Retire(w.span, obs.CauseQueue, int64(at))
		w.done(at)
	}
	m.drainOverflow()
	for i := range ws {
		ws[i] = waiter{} // drop callback refs before the slice is recycled
	}
	m.pool = append(m.pool, ws[:0])
}

// drainOverflow walks the queue once: requests matching an outstanding
// line coalesce onto it (regardless of capacity); others issue while
// entries are free; the rest keep waiting in order.
func (m *MSHRFile) drainOverflow() {
	kept := m.overflow[:0]
	for _, req := range m.overflow {
		if slot, ok := m.index[req.addr]; ok {
			e := &m.table[slot]
			e.waiters = append(e.waiters, waiter{done: req.done, span: req.span})
			m.coalesced.Inc()
			continue
		}
		if len(m.index) < m.entries {
			// Time stalled in the overflow queue is queue time; the rest
			// of the journey accrues downstream.
			m.spans.AdvanceTo(req.span, obs.CauseQueue, int64(m.eng.Now()))
			m.allocate(req.addr, req.done, req.span)
			continue
		}
		kept = append(kept, req)
	}
	m.overflow = kept
}

// Coalesced returns secondary misses merged into outstanding fetches.
func (m *MSHRFile) Coalesced() uint64 { return m.coalesced.Value() }

// Stalls returns requests that waited for a free entry.
func (m *MSHRFile) Stalls() uint64 { return m.stalls.Value() }

// Issued returns distinct line fetches sent to the backend.
func (m *MSHRFile) Issued() uint64 { return m.issued.Value() }

// Peak returns the maximum simultaneous outstanding entries.
func (m *MSHRFile) Peak() int { return m.peak }

// Outstanding returns the current outstanding entry count.
func (m *MSHRFile) Outstanding() int { return len(m.index) }
