package cache

import "camps/internal/stats"

// StrideDetector is a classic core-side stride prefetcher's training
// table, fed with the L2 miss stream. The CAMPS paper's §2.4 argues that
// in an HMC, *memory-side* prefetching beats this kind of core-side
// engine because the core side can neither see bank state nor move whole
// rows over the TSVs; this detector exists so that claim can be tested
// rather than assumed (see the CoreSidePrefetch ablation).
//
// Entries are indexed by 4 KB region. A stride is confirmed after it
// repeats; confirmed entries predict the next Degree lines along the
// stride.
type StrideDetector struct {
	entries []strideEntry
	degree  int

	trained   stats.Counter
	predicted stats.Counter
}

type strideEntry struct {
	tag        uint64 // region id
	lastAddr   uint64
	stride     int64
	confidence int
	valid      bool
}

// strideConfidence is the number of consecutive identical strides that
// confirm a pattern.
const strideConfidence = 2

// NewStrideDetector returns a detector with the given table size
// (regions tracked) and prefetch degree.
func NewStrideDetector(tableSize, degree int) *StrideDetector {
	if tableSize <= 0 || degree <= 0 {
		panic("cache: stride detector needs positive table size and degree")
	}
	return &StrideDetector{entries: make([]strideEntry, tableSize), degree: degree}
}

// Observe trains on one miss address and returns the predicted prefetch
// addresses (empty until the stride is confirmed).
func (d *StrideDetector) Observe(addr uint64) []uint64 {
	region := addr >> 12
	e := &d.entries[region%uint64(len(d.entries))]
	if !e.valid || e.tag != region {
		*e = strideEntry{tag: region, lastAddr: addr, valid: true}
		return nil
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.confidence < strideConfidence {
			e.confidence++
		}
	} else {
		e.stride = stride
		e.confidence = 1
	}
	e.lastAddr = addr
	d.trained.Inc()
	if e.confidence < strideConfidence {
		return nil
	}
	out := make([]uint64, 0, d.degree)
	next := int64(addr)
	for i := 0; i < d.degree; i++ {
		next += e.stride
		if next < 0 {
			break
		}
		out = append(out, uint64(next))
	}
	d.predicted.Add(uint64(len(out)))
	return out
}

// Trained returns the number of observations that updated a valid entry.
func (d *StrideDetector) Trained() uint64 { return d.trained.Value() }

// Predicted returns the number of prefetch addresses emitted.
func (d *StrideDetector) Predicted() uint64 { return d.predicted.Value() }
