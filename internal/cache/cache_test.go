package cache

import (
	"math/rand"
	"sort"
	"testing"

	"camps/internal/config"
)

func tinyLevel(ways int) *Level {
	return NewLevel(config.CacheLevel{
		SizeBytes:  int64(ways * 4 * 64), // 4 sets
		Ways:       ways,
		LineBytes:  64,
		HitLatency: 2,
		MSHRs:      4,
	})
}

func TestLevelHitMiss(t *testing.T) {
	l := tinyLevel(2)
	if l.Lookup(0, false) {
		t.Fatal("hit on empty cache")
	}
	l.Install(0, false)
	if !l.Lookup(0, false) {
		t.Fatal("miss after install")
	}
	if !l.Contains(0) || l.Contains(64) {
		t.Fatal("Contains wrong")
	}
	if l.Hits() != 1 || l.Misses() != 1 {
		t.Fatalf("hits %d misses %d", l.Hits(), l.Misses())
	}
}

func TestLevelLRUEviction(t *testing.T) {
	l := tinyLevel(2) // 4 sets, so same-set addresses differ by 4*64=256
	a, b, c := uint64(0), uint64(256), uint64(512)
	l.Install(a, false)
	l.Install(b, false)
	l.Lookup(a, false) // a MRU, b LRU
	v := l.Install(c, false)
	if !v.Valid || v.Addr != b {
		t.Fatalf("evicted %+v, want line %#x", v, b)
	}
	if !l.Contains(a) || !l.Contains(c) || l.Contains(b) {
		t.Fatal("residency wrong after eviction")
	}
}

func TestLevelDirtyEviction(t *testing.T) {
	l := tinyLevel(1)
	l.Install(0, false)
	l.Lookup(0, true) // dirty via write hit
	v := l.Install(256, false)
	if !v.Valid || !v.Dirty || v.Addr != 0 {
		t.Fatalf("dirty eviction = %+v", v)
	}
	if l.Writebacks() != 1 {
		t.Fatalf("writebacks = %d", l.Writebacks())
	}
	// Clean eviction.
	v = l.Install(512, false)
	if v.Dirty {
		t.Fatal("clean line evicted dirty")
	}
}

func TestLevelInstallExistingRefreshes(t *testing.T) {
	l := tinyLevel(2)
	l.Install(0, false)
	v := l.Install(0, true) // refresh + dirty
	if v.Valid {
		t.Fatal("reinstall evicted something")
	}
	v2 := l.Install(256, false)
	if v2.Valid {
		t.Fatal("install into free way evicted")
	}
	v3 := l.Install(512, false) // evicts LRU = line 256? No: 0 refreshed first, then 256 -> LRU is 0.
	if !v3.Valid || v3.Addr != 0 || !v3.Dirty {
		t.Fatalf("evicted %+v, want dirty line 0", v3)
	}
}

func TestVictimAddressReconstruction(t *testing.T) {
	l := tinyLevel(1)
	addr := uint64(0xABCD00) // set = (0xABCD00>>6)&3
	l.Install(addr, false)
	conflict := addr + 256 // same set, different tag (4 sets * 64B)
	v := l.Install(conflict, false)
	if !v.Valid || v.Addr != addr {
		t.Fatalf("reconstructed victim %#x, want %#x", v.Addr, addr)
	}
}

// Property: per-set LRU ranks of valid lines always form a permutation.
func TestLevelLRUPermutationInvariant(t *testing.T) {
	l := tinyLevel(4)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(64)) * 64
		if rng.Intn(2) == 0 {
			l.Lookup(addr, rng.Intn(4) == 0)
		} else {
			l.Install(addr, rng.Intn(4) == 0)
		}
		for set := 0; set < l.Sets(); set++ {
			var ranks []int
			for w := 0; w < l.ways; w++ {
				if l.state[set*l.ways+w]&stValid != 0 {
					ranks = append(ranks, int(l.lru[set*l.ways+w]))
				}
			}
			sort.Ints(ranks)
			for j, r := range ranks {
				if r != j {
					t.Fatalf("set %d LRU ranks not a permutation: %v", set, ranks)
				}
			}
		}
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := config.Default()
	h := NewHierarchy(cfg)
	// Cold miss: level 4, latency 2+6+20.
	r := h.Access(0, 0, false)
	if r.Level != 4 || r.Latency != 28 {
		t.Fatalf("cold access = %+v, want level 4 latency 28", r)
	}
	// Immediately after: L1 hit.
	r = h.Access(0, 0, false)
	if r.Level != 1 || r.Latency != 2 {
		t.Fatalf("repeat access = %+v, want level 1 latency 2", r)
	}
	if h.L3Misses(0) != 1 {
		t.Fatalf("L3 misses = %d, want 1", h.L3Misses(0))
	}
}

func TestHierarchyL2AndL3Hits(t *testing.T) {
	cfg := config.Default()
	h := NewHierarchy(cfg)
	h.Access(0, 0, false) // install everywhere
	// Evict from L1 (32KB, 2-way, 64B -> 256 sets; same L1 set every 16KB)
	// while staying in L2 (256KB, 4-way -> 1024 sets; same set every 64KB).
	h.Access(0, 16384, false)
	h.Access(0, 32768, false) // L1 set now {16K, 32K}; 0 evicted from L1
	r := h.Access(0, 0, false)
	if r.Level != 2 || r.Latency != 8 {
		t.Fatalf("L2 hit = %+v, want level 2 latency 8", r)
	}
	// L3 hit by another core (L3 shared; its L1/L2 are cold).
	r = h.Access(1, 0, false)
	if r.Level != 3 || r.Latency != 28 {
		t.Fatalf("cross-core L3 hit = %+v, want level 3 latency 28", r)
	}
}

func TestHierarchyWritebackSurfacesAtMemory(t *testing.T) {
	cfg := config.Default()
	// Shrink L3 so we can force dirty evictions quickly.
	cfg.L1 = config.CacheLevel{SizeBytes: 128, Ways: 1, LineBytes: 64, HitLatency: 2, MSHRs: 4}
	cfg.L2 = config.CacheLevel{SizeBytes: 256, Ways: 1, LineBytes: 64, HitLatency: 6, MSHRs: 4}
	cfg.L3 = config.CacheLevel{SizeBytes: 512, Ways: 1, LineBytes: 64, HitLatency: 20, MSHRs: 4, Shared: true}
	h := NewHierarchy(cfg)

	h.Access(0, 0, true) // dirty line 0 in L1
	// Walk addresses mapping to the same sets until line 0 is forced out
	// of all three levels; collect writebacks.
	var wbs []uint64
	for i := 1; i <= 64; i++ {
		r := h.Access(0, uint64(i)*512*8, true)
		wbs = append(wbs, r.Writebacks...)
	}
	found := false
	for _, a := range wbs {
		if a == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dirty line 0 never surfaced as a memory writeback (got %v)", wbs)
	}
}

func TestHierarchyPrivateness(t *testing.T) {
	cfg := config.Default()
	h := NewHierarchy(cfg)
	h.Access(0, 4096, false)
	// Core 1's private caches must not hold core 0's line.
	if h.L1(1).Contains(4096) || h.L2(1).Contains(4096) {
		t.Fatal("private caches leaked across cores")
	}
	if !h.L3().Contains(4096) {
		t.Fatal("shared L3 missing the line")
	}
}

func TestHierarchyCoreRangePanics(t *testing.T) {
	h := NewHierarchy(config.Default())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range core did not panic")
		}
	}()
	h.Access(99, 0, false)
}

func TestHierarchyFootprintDrivesMissRate(t *testing.T) {
	cfg := config.Default()
	h := NewHierarchy(cfg)
	// Small footprint (1 MiB): after warmup, high hit rate.
	rng := rand.New(rand.NewSource(1))
	warm := func(foot uint64, core int, n int) (miss uint64) {
		pre := h.L3Misses(core)
		for i := 0; i < n; i++ {
			h.Access(core, (uint64(rng.Intn(int(foot/64))))*64, false)
		}
		return h.L3Misses(core) - pre
	}
	warm(1<<20, 0, 50000) // warmup
	smallMisses := warm(1<<20, 0, 50000)
	// Large footprint (256 MiB) on another core: mostly misses.
	warm(256<<20, 1, 50000)
	largeMisses := warm(256<<20, 1, 50000)
	if smallMisses*10 >= largeMisses {
		t.Fatalf("footprint does not differentiate miss rates: small %d, large %d",
			smallMisses, largeMisses)
	}
}
