package cache

import (
	"testing"

	"camps/internal/config"
	"camps/internal/sim"
)

// stubMem completes reads after a fixed delay and records them.
type stubMem struct {
	eng    *sim.Engine
	lat    sim.Time
	reads  []uint64
	writes []uint64
}

func (s *stubMem) ReadLine(addr uint64, done func(at sim.Time)) {
	s.reads = append(s.reads, addr)
	at := s.eng.Now() + s.lat
	s.eng.At(at, func() { done(at) })
}

func (s *stubMem) WriteLine(addr uint64) { s.writes = append(s.writes, addr) }

func TestMSHRCoalescesSameLine(t *testing.T) {
	eng := sim.NewEngine()
	mem := &stubMem{eng: eng, lat: 100}
	m := NewMSHRFile(eng, mem, 4)
	got := 0
	for i := 0; i < 3; i++ {
		m.ReadLine(0x40, func(sim.Time) { got++ })
	}
	eng.Run()
	if len(mem.reads) != 1 {
		t.Fatalf("backend saw %d reads, want 1 (coalesced)", len(mem.reads))
	}
	if got != 3 {
		t.Fatalf("%d waiters completed, want 3", got)
	}
	if m.Coalesced() != 2 || m.Issued() != 1 {
		t.Fatalf("coalesced=%d issued=%d", m.Coalesced(), m.Issued())
	}
}

func TestMSHRBoundsOutstanding(t *testing.T) {
	eng := sim.NewEngine()
	mem := &stubMem{eng: eng, lat: 1000}
	m := NewMSHRFile(eng, mem, 2)
	done := 0
	for i := 0; i < 6; i++ {
		m.ReadLine(uint64(i)*64, func(sim.Time) { done++ })
	}
	// Only 2 issued immediately; 4 stalled.
	if m.Outstanding() != 2 || m.Stalls() != 4 {
		t.Fatalf("outstanding=%d stalls=%d", m.Outstanding(), m.Stalls())
	}
	eng.Run()
	if done != 6 {
		t.Fatalf("completed %d/6", done)
	}
	if len(mem.reads) != 6 {
		t.Fatalf("backend reads = %d, want 6", len(mem.reads))
	}
	if m.Peak() != 2 {
		t.Fatalf("peak = %d, want 2 (the bound)", m.Peak())
	}
}

func TestMSHROverflowCoalesces(t *testing.T) {
	eng := sim.NewEngine()
	mem := &stubMem{eng: eng, lat: 100}
	m := NewMSHRFile(eng, mem, 1)
	done := 0
	m.ReadLine(0x00, func(sim.Time) { done++ }) // occupies the single entry
	m.ReadLine(0x40, func(sim.Time) { done++ }) // overflows
	m.ReadLine(0x40, func(sim.Time) { done++ }) // overflows, same line
	eng.Run()
	if done != 3 {
		t.Fatalf("completed %d/3", done)
	}
	// 0x40 issued once: its queued duplicate coalesced at drain time.
	if len(mem.reads) != 2 {
		t.Fatalf("backend reads = %d, want 2", len(mem.reads))
	}
	if m.Coalesced() != 1 {
		t.Fatalf("coalesced = %d, want 1", m.Coalesced())
	}
}

func TestMSHRWritePassThrough(t *testing.T) {
	eng := sim.NewEngine()
	mem := &stubMem{eng: eng, lat: 10}
	m := NewMSHRFile(eng, mem, 1)
	m.WriteLine(0x1000)
	if len(mem.writes) != 1 || mem.writes[0] != 0x1000 {
		t.Fatalf("writes = %v", mem.writes)
	}
}

func TestMSHRValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-entry MSHR accepted")
		}
	}()
	NewMSHRFile(sim.NewEngine(), &stubMem{}, 0)
}

func TestStrideDetectorConfirmsAndPredicts(t *testing.T) {
	d := NewStrideDetector(8, 2)
	base := uint64(0x10000)
	// First two observations train; stride confirmed on the third.
	if p := d.Observe(base); p != nil {
		t.Fatalf("prediction on first touch: %v", p)
	}
	if p := d.Observe(base + 64); p != nil {
		t.Fatalf("prediction before confidence: %v", p)
	}
	p := d.Observe(base + 128)
	if len(p) != 2 || p[0] != base+192 || p[1] != base+256 {
		t.Fatalf("predictions = %v, want next two lines", p)
	}
	if d.Predicted() != 2 {
		t.Fatalf("predicted counter = %d", d.Predicted())
	}
}

func TestStrideDetectorResetsOnRegionChange(t *testing.T) {
	d := NewStrideDetector(8, 1)
	d.Observe(0x1000)
	d.Observe(0x1040)
	d.Observe(0x1080) // confirmed in region 1
	// A different region aliasing the same entry restarts training.
	alias := uint64(0x1000 + 8*4096)
	if p := d.Observe(alias); p != nil {
		t.Fatalf("prediction right after region change: %v", p)
	}
}

func TestStrideDetectorNegativeStride(t *testing.T) {
	d := NewStrideDetector(8, 1)
	// All addresses within one 4 KB region (region-indexed table).
	d.Observe(0x2f00)
	d.Observe(0x2f00 - 64)
	p := d.Observe(0x2f00 - 128)
	if len(p) != 1 || p[0] != 0x2f00-192 {
		t.Fatalf("negative-stride prediction = %v", p)
	}
}

func TestStrideDetectorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad detector params accepted")
		}
	}()
	NewStrideDetector(0, 1)
}

func TestLevelPrefetchUsefulness(t *testing.T) {
	l := tinyLevel(2)
	l.InstallPrefetched(0)
	if l.PrefetchInstalled() != 1 {
		t.Fatal("install not counted")
	}
	if l.PrefetchUseful() != 0 {
		t.Fatal("useful counted before any hit")
	}
	l.Lookup(0, false)
	if l.PrefetchUseful() != 1 {
		t.Fatal("first demand hit not counted as useful")
	}
	l.Lookup(0, false)
	if l.PrefetchUseful() != 1 {
		t.Fatal("second hit double-counted usefulness")
	}
}

func TestHierarchyInstallPrefetched(t *testing.T) {
	cfg := config.Default()
	h := NewHierarchy(cfg)
	wbs := h.InstallPrefetched(0, 0x4000)
	if len(wbs) != 0 {
		t.Fatalf("cold prefetch install wrote back %v", wbs)
	}
	if !h.L2(0).Contains(0x4000) || !h.L3().Contains(0x4000) {
		t.Fatal("prefetched line missing from L2/L3")
	}
	if h.L1(0).Contains(0x4000) {
		t.Fatal("prefetched line leaked into L1")
	}
	// A subsequent demand access hits L2 and counts usefulness there.
	r := h.Access(0, 0x4000, false)
	if r.Level != 2 {
		t.Fatalf("post-prefetch access level = %d, want 2", r.Level)
	}
	if h.L2(0).PrefetchUseful() != 1 {
		t.Fatal("L2 usefulness not counted")
	}
}
