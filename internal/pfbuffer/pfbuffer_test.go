package pfbuffer

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestLookupMissThenInsertHit(t *testing.T) {
	b := New(4, 16, LRU)
	id := RowID{Bank: 1, Row: 42}
	if b.Lookup(id, 0, false, 0) {
		t.Fatal("hit on empty buffer")
	}
	if _, evicted := b.Insert(id, 0, 0); evicted {
		t.Fatal("insert into empty buffer evicted")
	}
	if !b.Contains(id) {
		t.Fatal("row missing after insert")
	}
	if !b.Lookup(id, 3, false, 0) {
		t.Fatal("miss after insert")
	}
	s := b.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Inserts != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if u, ok := b.Utilization(id); !ok || u != 1 {
		t.Fatalf("utilization = %d,%v; want 1,true", u, ok)
	}
}

func TestDuplicateInsertIgnored(t *testing.T) {
	b := New(2, 16, LRU)
	id := RowID{Bank: 0, Row: 1}
	b.Insert(id, 0, 0)
	if _, evicted := b.Insert(id, 0, 0); evicted {
		t.Fatal("duplicate insert evicted something")
	}
	if b.Stats().Inserts != 1 {
		t.Fatalf("duplicate insert counted: %d", b.Stats().Inserts)
	}
	if b.Len() != 1 {
		t.Fatalf("len = %d, want 1", b.Len())
	}
}

func TestDistinctLineUtilization(t *testing.T) {
	b := New(2, 16, LRU)
	id := RowID{Bank: 0, Row: 7}
	b.Insert(id, 0, 0)
	for _, line := range []int{5, 5, 5, 2, 2} {
		b.Lookup(id, line, false, 0)
	}
	if u, _ := b.Utilization(id); u != 2 {
		t.Fatalf("utilization = %d, want 2 (distinct lines only)", u)
	}
	if b.Stats().LinesUseful != 2 {
		t.Fatalf("LinesUseful = %d, want 2", b.Stats().LinesUseful)
	}
}

func TestLRUEviction(t *testing.T) {
	b := New(2, 16, LRU)
	a, c, d := RowID{0, 1}, RowID{0, 2}, RowID{0, 3}
	b.Insert(a, 0, 0)
	b.Insert(c, 0, 0)
	b.Lookup(a, 0, false, 0) // a becomes MRU; c is LRU
	ev, evicted := b.Insert(d, 0, 0)
	if !evicted || ev.ID != c {
		t.Fatalf("evicted %+v, want row %v", ev, c)
	}
	if !b.Contains(a) || !b.Contains(d) || b.Contains(c) {
		t.Fatal("wrong residency after LRU eviction")
	}
}

func TestUtilRecencyPrefersFullyConsumedRow(t *testing.T) {
	lines := 4
	b := New(2, lines, UtilRecency)
	full, partial := RowID{0, 1}, RowID{0, 2}
	b.Insert(full, 0, 0)
	b.Insert(partial, 0, 0)
	for l := 0; l < lines; l++ {
		b.Lookup(full, l, false, 0) // fully consumed AND most recently used
	}
	b.Lookup(partial, 0, false, 0)
	b.Lookup(full, 0, false, 0) // full row is MRU again
	ev, evicted := b.Insert(RowID{0, 3}, 0, 0)
	if !evicted || ev.ID != full {
		t.Fatalf("evicted %+v, want fully consumed row despite MRU status", ev)
	}
	if b.Stats().FullRowEvicts != 1 {
		t.Fatal("full-row eviction not counted")
	}
}

func TestUtilRecencyMinimumSum(t *testing.T) {
	// 3 entries, 8 lines/row. Build known util/recency state.
	b := New(3, 8, UtilRecency)
	r0, r1, r2 := RowID{0, 10}, RowID{0, 11}, RowID{0, 12}
	b.Insert(r0, 0, 0) // recency 0
	b.Insert(r1, 0, 0) // recency 1
	b.Insert(r2, 0, 0) // recency 2
	// r0: util 3, recency becomes MRU after touches -> touch then demote others.
	b.Lookup(r0, 0, false, 0)
	b.Lookup(r0, 1, false, 0)
	b.Lookup(r0, 2, false, 0) // r0: util 3, recency 2; r1: 0,0; r2: 0,1
	// sums: r0=5, r1=0, r2=1 -> evict r1.
	ev, evicted := b.Insert(RowID{0, 13}, 0, 0)
	if !evicted || ev.ID != r1 {
		t.Fatalf("evicted %v, want %v (min util+recency)", ev.ID, r1)
	}
}

func TestUtilRecencyTieBreaksOnUtilization(t *testing.T) {
	b := New(2, 8, UtilRecency)
	lo, hi := RowID{0, 1}, RowID{0, 2}
	b.Insert(lo, 0, 0)        // recency 0, util 0 -> sum 0... need equal sums.
	b.Insert(hi, 0, 0)        // recency 1
	b.Lookup(lo, 0, false, 0) // lo: util 1, recency 1; hi: util 0, recency 0.
	// sums: lo=2, hi=0 -> evict hi (lower sum). Make sums equal instead:
	b.Lookup(hi, 0, false, 0)
	b.Lookup(hi, 1, false, 0) // hi: util 2, recency 1; lo: util 1, recency 0 -> sums 3 vs 1.
	b.Lookup(lo, 1, false, 0) // lo: util 2, recency 1; hi: util 2, recency 0 -> sums 3 vs 2.
	b.Lookup(hi, 2, false, 0) // hi: util 3, recency 1; lo: util 2, recency 0 -> 4 vs 2.
	// Directly verify the documented rule with a crafted equal-sum state:
	// lo(util 2, recency 0)=2 vs hi(util 3, recency 1)=4 -> lo evicted (min sum).
	ev, evicted := b.Insert(RowID{0, 3}, 0, 0)
	if !evicted || ev.ID != lo {
		t.Fatalf("evicted %v, want %v", ev.ID, lo)
	}
}

func TestUtilRecencyEqualSumPrefersLowerUtil(t *testing.T) {
	b := New(2, 8, UtilRecency)
	a, c := RowID{0, 1}, RowID{0, 2}
	b.Insert(a, 0, 0)        // a recency 0
	b.Insert(c, 0, 0)        // c recency 1
	b.Lookup(c, 0, false, 0) // c: util 1, recency 1 -> sum 2
	b.Lookup(a, 0, false, 0)
	b.Lookup(a, 1, false, 0) // a: util 2, recency 1; c: util 1, recency 0 -> sums 3 vs 1? evict c.
	// Construct exact tie: a(util 2, recency 0) vs c(util 1, recency 1).
	b.Lookup(c, 1, false, 0) // c: util 2, recency 1; a: util 2, recency 0 -> sums 2 vs 3.
	ev, evicted := b.Insert(RowID{0, 9}, 0, 0)
	if !evicted || ev.ID != a {
		t.Fatalf("evicted %v, want %v (lower sum)", ev.ID, a)
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	b := New(1, 16, LRU)
	d := RowID{0, 5}
	b.Insert(d, 0, 0)
	b.Lookup(d, 0, true, 0) // write marks dirty
	ev, evicted := b.Insert(RowID{0, 6}, 0, 0)
	if !evicted || !ev.Dirty || !ev.Used || ev.Util != 1 {
		t.Fatalf("eviction = %+v, want dirty used util=1", ev)
	}
	if b.Stats().DirtyEvicts != 1 {
		t.Fatal("dirty eviction not counted")
	}
}

func TestAccuracyAccounting(t *testing.T) {
	b := New(2, 4, LRU)
	used, unused := RowID{0, 1}, RowID{0, 2}
	b.Insert(used, 0, 0)
	b.Insert(unused, 0, 0)
	b.Lookup(used, 0, false, 0)
	b.Lookup(used, 1, false, 0)
	s := b.Stats()
	if got := s.RowAccuracy(); got != 0.5 {
		t.Fatalf("row accuracy = %g, want 0.5", got)
	}
	if got := s.LineAccuracy(4); got != 0.25 {
		t.Fatalf("line accuracy = %g, want 2/8", got)
	}
}

func TestFlushReturnsDirtyRows(t *testing.T) {
	b := New(4, 16, UtilRecency)
	clean, dirty := RowID{0, 1}, RowID{1, 2}
	b.Insert(clean, 0, 0)
	b.Insert(dirty, 0, 0)
	b.Lookup(dirty, 7, true, 0)
	evs := b.Flush()
	if len(evs) != 1 || evs[0].ID != dirty {
		t.Fatalf("flush returned %+v, want just the dirty row", evs)
	}
	if b.Len() != 0 {
		t.Fatal("buffer not empty after flush")
	}
	if b.Stats().Evictions != 2 {
		t.Fatalf("flush should count evictions, got %d", b.Stats().Evictions)
	}
}

func TestDrop(t *testing.T) {
	b := New(2, 16, LRU)
	id := RowID{0, 3}
	if _, ok := b.Drop(id); ok {
		t.Fatal("drop of absent row returned eviction")
	}
	b.Insert(id, 0, 0)
	ev, ok := b.Drop(id)
	if !ok || ev.ID != id {
		t.Fatalf("drop returned %+v", ev)
	}
	if b.Contains(id) {
		t.Fatal("row still resident after drop")
	}
}

func TestLookupLineOutOfRangePanics(t *testing.T) {
	b := New(2, 16, LRU)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range line did not panic")
		}
	}()
	b.Lookup(RowID{0, 1}, 16, false, 0)
}

func TestNewValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 16, LRU) },
		func() { New(4, 0, LRU) },
		func() { New(4, 65, LRU) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid New did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || UtilRecency.String() != "UtilRecency" || Policy(9).String() != "unknown" {
		t.Fatal("policy strings wrong")
	}
}

// Invariant: after any operation sequence the recency values of valid
// entries are a permutation of 0..len-1 (§3.2: MRU holds n-1, LRU holds 0).
func checkRecencyPermutation(t *testing.T, b *Buffer) {
	t.Helper()
	rs := b.Recencies()
	sort.Ints(rs)
	for i, r := range rs {
		if r != i {
			t.Fatalf("recency values not a permutation: %v", rs)
		}
	}
}

func TestRecencyPermutationInvariant(t *testing.T) {
	for _, pol := range []Policy{LRU, UtilRecency} {
		rng := rand.New(rand.NewSource(99))
		b := New(16, 16, pol)
		for op := 0; op < 5000; op++ {
			id := RowID{Bank: rng.Intn(4), Row: int64(rng.Intn(40))}
			switch rng.Intn(3) {
			case 0:
				b.Insert(id, 0, 0)
			case 1:
				b.Lookup(id, rng.Intn(16), rng.Intn(4) == 0, 0)
			case 2:
				b.Drop(id)
			}
			checkRecencyPermutation(t, b)
			if b.Len() > b.Entries() {
				t.Fatal("buffer overfull")
			}
		}
	}
}

// Invariant: hits+misses equals lookups, inserts-evictions equals residency.
func TestCountingInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := New(8, 16, UtilRecency)
	lookups := uint64(0)
	for op := 0; op < 10000; op++ {
		id := RowID{Bank: rng.Intn(2), Row: int64(rng.Intn(30))}
		if rng.Intn(2) == 0 {
			b.Insert(id, 0, 0)
		} else {
			b.Lookup(id, rng.Intn(16), false, 0)
			lookups++
		}
	}
	s := b.Stats()
	if s.Hits+s.Misses != lookups {
		t.Fatalf("hits %d + misses %d != lookups %d", s.Hits, s.Misses, lookups)
	}
	if s.Inserts-s.Evictions != uint64(b.Len()) {
		t.Fatalf("inserts %d - evictions %d != resident %d", s.Inserts, s.Evictions, b.Len())
	}
}

// Property via testing/quick: any operation sequence keeps the buffer's
// counting invariants and the recency permutation.
func TestQuickOperationSequences(t *testing.T) {
	type op struct {
		Kind uint8
		Bank uint8
		Row  uint8
		Line uint8
	}
	prop := func(ops []op, policyBit bool) bool {
		pol := LRU
		if policyBit {
			pol = UtilRecency
		}
		b := New(6, 16, pol)
		lookups := uint64(0)
		for _, o := range ops {
			id := RowID{Bank: int(o.Bank % 4), Row: int64(o.Row % 24)}
			switch o.Kind % 3 {
			case 0:
				b.Insert(id, uint64(o.Line), 0)
			case 1:
				b.Lookup(id, int(o.Line%16), o.Line%5 == 0, 0)
				lookups++
			case 2:
				b.Drop(id)
			}
			if b.Len() > b.Entries() {
				return false
			}
			rs := b.Recencies()
			seen := map[int]bool{}
			for _, r := range rs {
				if r < 0 || r >= b.Len() || seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		s := b.Stats()
		return s.Hits+s.Misses == lookups &&
			s.Inserts-s.Evictions == uint64(b.Len())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFirstUseDelayTimeliness(t *testing.T) {
	b := New(2, 16, LRU)
	id := RowID{Bank: 0, Row: 9}
	b.Insert(id, 0, 1000)
	b.Lookup(id, 0, false, 4000) // first use 3000ps later
	b.Lookup(id, 1, false, 9000) // further hits don't re-observe
	s := b.Stats()
	if s.FirstUseDelay.Count() != 1 {
		t.Fatalf("timeliness samples = %d, want 1", s.FirstUseDelay.Count())
	}
	if s.FirstUseDelay.Mean() != 3000 {
		t.Fatalf("first-use delay = %g ps, want 3000", s.FirstUseDelay.Mean())
	}
}
