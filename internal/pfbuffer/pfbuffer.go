// Package pfbuffer implements the per-vault prefetch buffer of the CAMPS
// paper: a small, fully associative store of whole DRAM rows (16 entries of
// 1 KB in the default configuration) kept in the vault controller's logic
// base.
//
// The buffer tracks, for every resident row, which distinct cache lines
// have been referenced (the row's *utilization*) and an exact LRU ordering
// expressed as the paper's *recency counters*: the most recently used row
// holds the value n-1 and the least recently used row holds 0, with the
// counters of all valid entries forming a permutation of 0..n-1 at all
// times.
//
// Two replacement policies are provided: classic LRU (used by the BASE,
// BASE-HIT and MMD schemes) and the paper's utilization+recency policy
// (CAMPS-MOD): evict a fully consumed row first; otherwise evict the row
// with the minimum utilization+recency sum, breaking ties toward lower
// utilization.
package pfbuffer

import (
	"fmt"
	"math/bits"

	"camps/internal/obs"
	"camps/internal/sim"
	"camps/internal/stats"
)

// RowID identifies a DRAM row within one vault.
type RowID struct {
	Bank int
	Row  int64
}

// String renders the row id.
func (r RowID) String() string { return fmt.Sprintf("b%d/r%d", r.Bank, r.Row) }

// Policy selects the replacement policy.
type Policy int

const (
	// LRU evicts the least recently used row.
	LRU Policy = iota
	// UtilRecency is the CAMPS-MOD policy described in §3.2 of the paper.
	UtilRecency
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case UtilRecency:
		return "UtilRecency"
	}
	return "unknown"
}

// Eviction describes a row leaving the buffer so the vault controller can
// account for it (dirty rows are written back to the bank).
type Eviction struct {
	ID    RowID
	Dirty bool
	Used  bool // at least one demand reference while resident
	Util  int  // distinct lines referenced while resident
	Late  bool // a demand for the row was already queued when it landed
}

// Stats aggregates buffer behaviour for the accuracy figures.
type Stats struct {
	Hits          uint64 // demand references served by the buffer
	Misses        uint64 // demand references not present
	Inserts       uint64 // rows prefetched into the buffer
	Evictions     uint64
	UsedRows      uint64 // inserted rows referenced at least once (final)
	LinesUseful   uint64 // distinct lines referenced across inserted rows
	DirtyEvicts   uint64
	FullRowEvicts uint64 // evictions of fully consumed rows (CAMPS-MOD fast path)

	// Fault-poisoned fetches discarded before insertion. They never
	// became resident, so they appear in neither Inserts nor the
	// accuracy ratios below — the bank work was spent, but charging them
	// against line accuracy would misstate the prefetch policy's skill.
	RowsPoisoned  uint64
	LinesPoisoned uint64 // RowsPoisoned * linesPerRow

	// FirstUseDelay measures prefetch timeliness (§2.3 of the paper): the
	// time between a row's insertion and its first demand hit, in
	// picoseconds. Too-early prefetches also show up as unused evictions
	// (Inserts - UsedRows).
	FirstUseDelay stats.LatencyAccum
}

// RowAccuracy returns the fraction of prefetched rows that were referenced.
func (s Stats) RowAccuracy() float64 {
	if s.Inserts == 0 {
		return 0
	}
	return float64(s.UsedRows) / float64(s.Inserts)
}

// LineAccuracy returns the fraction of prefetched lines that were
// referenced, given lines per row. Poisoned fetches are excluded from
// the denominator by construction: they are counted in LinesPoisoned,
// never in Inserts.
func (s Stats) LineAccuracy(linesPerRow int) float64 {
	if s.Inserts == 0 || linesPerRow == 0 {
		return 0
	}
	return float64(s.LinesUseful) / float64(s.Inserts*uint64(linesPerRow))
}

type entry struct {
	id       RowID
	valid    bool
	dirty    bool
	touched  uint64 // bitmap of referenced lines (linesPerRow <= 64)
	recency  int    // permutation rank among valid entries; MRU = nValid-1
	used     bool
	late     bool // a demand was already queued when the row landed
	insertAt sim.Time
}

func (e *entry) util() int { return bits.OnesCount64(e.touched) }

// Buffer is one vault's prefetch buffer.
type Buffer struct {
	entries     []entry
	linesPerRow int
	policy      Policy
	nValid      int
	stats       Stats

	// Prefetch efficacy ledger (nil unless SetLedger was called): every
	// eviction classifies its row's final outcome. The buffer owns this
	// because Flush surfaces only dirty evictions to the controller —
	// evict() is the one chokepoint that sees every row leave.
	ledger      *obs.PrefetchLedger
	ledgerVault int
}

// New returns an empty buffer with the given entry count, lines per row and
// replacement policy.
func New(entries, linesPerRow int, policy Policy) *Buffer {
	if entries <= 0 {
		panic("pfbuffer: need at least one entry")
	}
	if linesPerRow <= 0 || linesPerRow > 64 {
		panic("pfbuffer: linesPerRow must be in 1..64")
	}
	return &Buffer{
		entries:     make([]entry, entries),
		linesPerRow: linesPerRow,
		policy:      policy,
	}
}

// Entries returns the buffer capacity in rows.
func (b *Buffer) Entries() int { return len(b.entries) }

// Len returns the number of valid rows currently resident.
func (b *Buffer) Len() int { return b.nValid }

// Policy returns the replacement policy in use.
func (b *Buffer) Policy() Policy { return b.policy }

// Stats returns a copy of the accumulated statistics. Call Flush first for
// end-of-simulation accuracy accounting.
func (b *Buffer) Stats() Stats { return b.stats }

// Instrument registers the buffer's counters with the observability
// registry under the pfbuffer.* namespace. Registration is additive: all
// of a cube's buffers register the same names and snapshots report the
// aggregate (see obs.Registry.CounterFunc).
func (b *Buffer) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("pfbuffer.hits", func() uint64 { return b.stats.Hits })
	reg.CounterFunc("pfbuffer.misses", func() uint64 { return b.stats.Misses })
	reg.CounterFunc("pfbuffer.inserts", func() uint64 { return b.stats.Inserts })
	reg.CounterFunc("pfbuffer.evictions", func() uint64 { return b.stats.Evictions })
	reg.CounterFunc("pfbuffer.used_rows", func() uint64 { return b.stats.UsedRows })
	reg.CounterFunc("pfbuffer.lines_useful", func() uint64 { return b.stats.LinesUseful })
	reg.CounterFunc("pfbuffer.dirty_evicts", func() uint64 { return b.stats.DirtyEvicts })
	reg.CounterFunc("pfbuffer.full_row_evicts", func() uint64 { return b.stats.FullRowEvicts })
	reg.CounterFunc("pfbuffer.rows_poisoned", func() uint64 { return b.stats.RowsPoisoned })
	reg.CounterFunc("pfbuffer.lines_poisoned", func() uint64 { return b.stats.LinesPoisoned })
	reg.GaugeFunc("pfbuffer.occupancy", func() float64 { return float64(b.nValid) })
}

// SetLedger attaches the prefetch efficacy ledger; evictions classify
// their row's outcome into it, labeled with this buffer's vault id. A
// nil ledger detaches classification.
func (b *Buffer) SetLedger(lg *obs.PrefetchLedger, vault int) {
	b.ledger = lg
	b.ledgerVault = vault
}

// MarkLate flags a resident row as having lost the race to a queued
// demand request: any use it sees is "late" in the efficacy ledger.
func (b *Buffer) MarkLate(id RowID) {
	if i := b.find(id); i >= 0 {
		b.entries[i].late = true
	}
}

// NotePoisoned accounts a fault-poisoned fetch that was discarded before
// insertion (see Stats.RowsPoisoned).
func (b *Buffer) NotePoisoned() {
	b.stats.RowsPoisoned++
	b.stats.LinesPoisoned += uint64(b.linesPerRow)
}

// Contains reports whether the row is resident, without touching any
// replacement state.
func (b *Buffer) Contains(id RowID) bool { return b.find(id) >= 0 }

func (b *Buffer) find(id RowID) int {
	for i := range b.entries {
		if b.entries[i].valid && b.entries[i].id == id {
			return i
		}
	}
	return -1
}

// Lookup serves a demand reference for one line of a row. On a hit it
// updates the line bitmap, the recency ordering and (for writes) the dirty
// bit, and returns true. On a miss it only counts the miss.
func (b *Buffer) Lookup(id RowID, line int, write bool, now sim.Time) bool {
	if line < 0 || line >= b.linesPerRow {
		panic(fmt.Sprintf("pfbuffer: line %d out of range [0,%d)", line, b.linesPerRow))
	}
	i := b.find(id)
	if i < 0 {
		b.stats.Misses++
		return false
	}
	e := &b.entries[i]
	bit := uint64(1) << uint(line)
	if e.touched&bit == 0 {
		e.touched |= bit
		b.stats.LinesUseful++
	}
	if !e.used {
		e.used = true
		b.stats.UsedRows++
		b.stats.FirstUseDelay.Observe(float64(now - e.insertAt))
	}
	if write {
		e.dirty = true
	}
	b.promote(i)
	b.stats.Hits++
	return true
}

// promote implements the paper's recency counters: the accessed row takes
// the maximum value (entries-1, i.e. 15 in the default configuration) and
// every row whose counter exceeded the accessed row's old value
// decrements. With a full buffer the counters form a permutation of
// 0..n-1, exactly as §3.2 describes (MRU = 15, LRU = 0); an evicted row's
// rank is inherited by its replacement, which keeps the permutation
// closed.
func (b *Buffer) promote(i int) {
	old := b.entries[i].recency
	top := b.nValid - 1
	for j := range b.entries {
		if b.entries[j].valid && b.entries[j].recency > old {
			b.entries[j].recency--
		}
	}
	b.entries[i].recency = top
}

// Insert places a freshly prefetched row into the buffer as the MRU entry.
// alreadyTouched is the bitmap of lines that were already referenced from
// the DRAM row buffer before the copy (the trigger accesses): the paper
// defines a row's utilization as the distinct lines referenced within it,
// so those lines count toward replacement decisions — but not toward
// prefetch-usefulness statistics, since the buffer never served them.
// If the row is already resident the call is a no-op (no eviction, no
// insert counted). If the buffer is full the policy chooses a victim,
// which is returned (second result true) so the caller can write back
// dirty data. The eviction record is a value: the insert path allocates
// nothing.
func (b *Buffer) Insert(id RowID, alreadyTouched uint64, now sim.Time) (Eviction, bool) {
	if b.find(id) >= 0 {
		return Eviction{}, false
	}
	if b.linesPerRow < 64 {
		alreadyTouched &= 1<<uint(b.linesPerRow) - 1
	}
	var ev Eviction
	evicted := false
	slot := -1
	for i := range b.entries {
		if !b.entries[i].valid {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = b.victim()
		ev = b.evict(slot)
		evicted = true
	}
	e := &b.entries[slot]
	*e = entry{id: id, valid: true, recency: b.nValid, touched: alreadyTouched, insertAt: now}
	b.nValid++
	b.stats.Inserts++
	return ev, evicted
}

// victim selects the replacement index per the active policy. The buffer
// must be full.
func (b *Buffer) victim() int {
	if b.policy == UtilRecency {
		// First preference: any fully consumed row; all of its data has
		// already been transferred to the processor.
		best := -1
		for i := range b.entries {
			if b.entries[i].util() == b.linesPerRow {
				if best < 0 || b.entries[i].recency < b.entries[best].recency {
					best = i
				}
			}
		}
		if best >= 0 {
			b.stats.FullRowEvicts++
			return best
		}
		// Otherwise: minimum utilization+recency, ties toward lower
		// utilization, further ties toward lower recency (deterministic).
		best = 0
		for i := 1; i < len(b.entries); i++ {
			bi, bb := &b.entries[i], &b.entries[best]
			si, sb := bi.util()+bi.recency, bb.util()+bb.recency
			switch {
			case si < sb:
				best = i
			case si == sb && bi.util() < bb.util():
				best = i
			case si == sb && bi.util() == bb.util() && bi.recency < bb.recency:
				best = i
			}
		}
		return best
	}
	// LRU: recency 0 is the least recently used by construction.
	for i := range b.entries {
		if b.entries[i].recency == 0 {
			return i
		}
	}
	panic("pfbuffer: full buffer without an LRU entry")
}

// evict removes entry i and returns its eviction record, repairing the
// recency permutation of the remaining entries (equivalently: the next
// insert inherits the victim's rank before being promoted to MRU).
func (b *Buffer) evict(i int) Eviction {
	e := &b.entries[i]
	if !e.valid {
		panic("pfbuffer: evicting invalid entry")
	}
	ev := Eviction{ID: e.id, Dirty: e.dirty, Used: e.used, Util: e.util(), Late: e.late}
	old := e.recency
	e.valid = false
	for j := range b.entries {
		if b.entries[j].valid && b.entries[j].recency > old {
			b.entries[j].recency--
		}
	}
	b.nValid--
	b.stats.Evictions++
	if ev.Dirty {
		b.stats.DirtyEvicts++
	}
	// Every resident row leaves through here (replacement, Drop, Flush),
	// so this is where its final efficacy verdict is recorded.
	switch {
	case ev.Used && !ev.Late:
		b.ledger.Record(b.ledgerVault, obs.UsefulTimely)
	case ev.Used:
		b.ledger.Record(b.ledgerVault, obs.UsefulLate)
	default:
		b.ledger.Record(b.ledgerVault, obs.EvictedUnused)
	}
	return ev
}

// Drop removes a specific row if resident, returning its eviction record
// (second result false if absent). Used by failure-injection tests and
// future coherence extensions; the CAMPS schemes themselves never drop
// rows explicitly.
func (b *Buffer) Drop(id RowID) (Eviction, bool) {
	i := b.find(id)
	if i < 0 {
		return Eviction{}, false
	}
	return b.evict(i), true
}

// Flush evicts every resident row (in recency order, LRU first) and
// returns the dirty ones; call at end of simulation so writeback traffic
// and accuracy accounting include resident rows.
func (b *Buffer) Flush() []Eviction {
	var dirty []Eviction
	for b.nValid > 0 {
		idx := -1
		for i := range b.entries {
			if b.entries[i].valid && b.entries[i].recency == 0 {
				idx = i
				break
			}
		}
		if idx < 0 {
			panic("pfbuffer: valid entries without recency 0")
		}
		ev := b.evict(idx)
		if ev.Dirty {
			dirty = append(dirty, ev)
		}
	}
	return dirty
}

// CheckInvariant validates the buffer's structural invariants: occupancy
// within capacity, the valid-entry count matching nValid, every touched
// bitmap within the lines-per-row mask, and the recency counters of valid
// entries forming a permutation of 0..nValid-1 (§3.2). It is read-only
// and is wired into the simulator's epoch invariant checker.
func (b *Buffer) CheckInvariant() error {
	if b.nValid < 0 || b.nValid > len(b.entries) {
		return fmt.Errorf("pfbuffer: occupancy %d outside [0,%d]", b.nValid, len(b.entries))
	}
	mask := ^uint64(0)
	if b.linesPerRow < 64 {
		mask = 1<<uint(b.linesPerRow) - 1
	}
	valid := 0
	seen := make([]bool, len(b.entries))
	for i := range b.entries {
		e := &b.entries[i]
		if !e.valid {
			continue
		}
		valid++
		if e.touched&^mask != 0 {
			return fmt.Errorf("pfbuffer: entry %s touched bitmap %#x exceeds %d lines",
				e.id, e.touched, b.linesPerRow)
		}
		if e.recency < 0 || e.recency >= b.nValid || seen[e.recency] {
			return fmt.Errorf("pfbuffer: recency counters are not a permutation of 0..%d (entry %s has %d)",
				b.nValid-1, e.id, e.recency)
		}
		seen[e.recency] = true
	}
	if valid != b.nValid {
		return fmt.Errorf("pfbuffer: %d valid entries but occupancy count %d", valid, b.nValid)
	}
	return nil
}

// Recencies returns the recency values of all valid entries; exposed for
// invariant checking in tests.
func (b *Buffer) Recencies() []int {
	var out []int
	for i := range b.entries {
		if b.entries[i].valid {
			out = append(out, b.entries[i].recency)
		}
	}
	return out
}

// Utilization returns the distinct-line count of a resident row and whether
// it is resident.
func (b *Buffer) Utilization(id RowID) (int, bool) {
	i := b.find(id)
	if i < 0 {
		return 0, false
	}
	return b.entries[i].util(), true
}
