package pfbuffer

import (
	"testing"

	"camps/internal/obs"
)

// TestPoisonedFetchesExcludedFromAccuracy is the regression test for the
// poisoned-row accounting fix: a fault-poisoned fetch is discarded before
// insertion, so it must not dilute RowAccuracy or LineAccuracy — it is
// counted separately in RowsPoisoned/LinesPoisoned.
func TestPoisonedFetchesExcludedFromAccuracy(t *testing.T) {
	const lines = 16
	b := New(4, lines, UtilRecency)
	control := New(4, lines, UtilRecency)

	feed := func(buf *Buffer) {
		buf.Insert(RowID{Bank: 0, Row: 1}, 0, 0)
		for l := 0; l < lines; l++ { // fully consumed row
			buf.Lookup(RowID{Bank: 0, Row: 1}, l, false, 100)
		}
		buf.Insert(RowID{Bank: 0, Row: 2}, 0, 0) // never referenced
		buf.Flush()
	}
	feed(b)
	feed(control)
	for i := 0; i < 3; i++ {
		b.NotePoisoned()
	}

	got, want := b.Stats(), control.Stats()
	if got.RowsPoisoned != 3 || got.LinesPoisoned != 3*lines {
		t.Errorf("poison counters = %d rows / %d lines, want 3 / %d",
			got.RowsPoisoned, got.LinesPoisoned, 3*lines)
	}
	if got.Inserts != want.Inserts {
		t.Errorf("Inserts = %d, want %d (poisoned fetches must not count as inserts)",
			got.Inserts, want.Inserts)
	}
	if ra, wra := got.RowAccuracy(), want.RowAccuracy(); ra != wra {
		t.Errorf("RowAccuracy = %v, want %v (unchanged by poisoning)", ra, wra)
	}
	if la, wla := got.LineAccuracy(lines), want.LineAccuracy(lines); la != wla {
		t.Errorf("LineAccuracy = %v, want %v (unchanged by poisoning)", la, wla)
	}
	if wra := want.RowAccuracy(); wra != 0.5 {
		t.Fatalf("control RowAccuracy = %v, want 0.5 (test setup broken)", wra)
	}
}

// TestEvictionLedgerClassification: every row leaving the buffer gets
// exactly one efficacy verdict — timely use, late use, or pure pollution
// — through replacement, Drop, and Flush alike.
func TestEvictionLedgerClassification(t *testing.T) {
	lg := obs.NewPrefetchLedger("TEST")
	b := New(2, 4, LRU)
	b.SetLedger(lg, 7)

	// Row 1: used before any queued demand -> useful_timely (via Drop).
	b.Insert(RowID{Row: 1}, 0, 0)
	b.Lookup(RowID{Row: 1}, 0, false, 10)
	b.Drop(RowID{Row: 1})

	// Row 2: a demand was queued when it landed -> useful_late (via Drop).
	b.Insert(RowID{Row: 2}, 0, 0)
	b.MarkLate(RowID{Row: 2})
	b.Lookup(RowID{Row: 2}, 1, false, 20)
	b.Drop(RowID{Row: 2})

	// Rows 3 and 4 fill the two-entry buffer unused; row 5 forces one
	// replacement eviction and Flush drains the remaining two — three
	// evicted_unused in total.
	b.Insert(RowID{Row: 3}, 0, 0)
	b.Insert(RowID{Row: 4}, 0, 0)
	b.Insert(RowID{Row: 5}, 0, 0)
	b.Flush()

	if got := lg.Total(obs.UsefulTimely); got != 1 {
		t.Errorf("useful_timely = %d, want 1", got)
	}
	if got := lg.Total(obs.UsefulLate); got != 1 {
		t.Errorf("useful_late = %d, want 1", got)
	}
	if got := lg.Total(obs.EvictedUnused); got != 3 {
		t.Errorf("evicted_unused = %d, want 3", got)
	}
	sum := lg.Summary()
	if len(sum.Vaults) != 1 || sum.Vaults[0].Vault != 7 {
		t.Fatalf("vault rows = %+v, want exactly vault 7", sum.Vaults)
	}
	if sum.Classified() != b.Stats().Evictions {
		t.Errorf("classified %d outcomes but buffer evicted %d rows",
			sum.Classified(), b.Stats().Evictions)
	}
}

// TestMarkLateAbsentRow: marking a row that is not resident is a no-op.
func TestMarkLateAbsentRow(t *testing.T) {
	lg := obs.NewPrefetchLedger("TEST")
	b := New(2, 4, LRU)
	b.SetLedger(lg, 0)
	b.MarkLate(RowID{Row: 9})
	b.Insert(RowID{Row: 1}, 0, 0)
	b.Lookup(RowID{Row: 1}, 0, false, 5)
	b.Flush()
	if got := lg.Total(obs.UsefulTimely); got != 1 {
		t.Errorf("useful_timely = %d, want 1 (MarkLate on absent row leaked)", got)
	}
}
