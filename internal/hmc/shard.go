package hmc

import (
	"camps/internal/config"
	"camps/internal/obs"
	"camps/internal/prefetch"
	"camps/internal/sim"
	"camps/internal/vault"
)

// This file is the memory system's side of the parallel-engine shard
// contract (internal/sim/parallel.go, DESIGN.md §10). The cube splits at
// its natural seam: the external controller, links, and crossbar stay on
// the coordinator (shard 0) with the cores and caches, while the vault
// controllers — the independent actors CAMPS' whole design is built
// around — move to vault shards, each with its own event engine. The two
// directions of traffic across the seam become mailbox messages:
//
//   - down (request): Access computes the request's vault-arrival time
//     exactly as in serial (link, crossbar, injected stall — all
//     coordinator-owned state), then records a downRec instead of
//     scheduling the submit event locally. The barrier delivers it into
//     the owning shard's engine with the original (when, sched) key, so
//     it fires in the same position of the merged event order.
//   - up (response): the read's Done callback — invoked by the vault's
//     completion trampoline on the vault engine — records an upRec
//     stamped with that engine's (Now, CurSched). The barrier replays
//     completions onto the coordinator in merged key order under
//     BeginReplay, so the response path (link response pipe, latency
//     accounting, span retirement, the processor-side wakeup) executes
//     byte-identically to the serial engine.
//
// Pools follow shard ownership. downRecs are allocated by the
// coordinator and consumed on vault shards, so they recycle in two
// phases: the firing shard parks its spent records on a shard-owned
// spent list, and the next barrier folds the spent lists back into the
// coordinator's free list while everyone is parked. upRecs are plain
// values in shard-owned slices, reset after each replay.

// downRec is one pooled request crossing to a vault shard.
type downRec struct {
	rt          *ShardRuntime
	shard       int
	v           *vault.Controller
	req         vault.Request
	when, sched sim.Time
	tag         int32
	fireFn      func() // bound once: deliver req to the vault, then park on the spent list
}

func (d *downRec) fire() {
	v, req := d.v, d.req
	d.req = vault.Request{}
	d.v = nil
	sp := &d.rt.spentDown[d.shard]
	*sp = append(*sp, d)
	v.Submit(req)
}

// upRec is one read completion crossing back to the coordinator.
type upRec struct {
	when, sched sim.Time
	tag         int32
	ready       sim.Time
	a           *access
}

// ShardRuntime carries the cube's parallel state and implements
// sim.Mailbox for sim.RunParallel.
type ShardRuntime struct {
	main    *sim.Engine
	engs    []*sim.Engine // vault-shard engines, shard index order
	shardOf []int         // vault id -> shard index

	down      [][]*downRec // per shard: filled by the coordinator during its window
	spentDown [][]*downRec // per shard: filled by that shard as deliveries fire
	downFree  []*downRec   // coordinator-owned pool

	up [][]upRec // per shard: filled by that shard during its window

	merge []int // scratch cursor per shard for the replay k-way merge
}

// Engines returns the vault-shard engines in shard order.
func (rt *ShardRuntime) Engines() []*sim.Engine { return rt.engs }

// Shards returns the number of vault shards.
func (rt *ShardRuntime) Shards() int { return len(rt.engs) }

// ShardOf returns the owning shard index of each vault (index = vault id).
func (rt *ShardRuntime) ShardOf() []int { return rt.shardOf }

// PlanShards assigns vaults to shards in contiguous, near-equal slices
// (e.g. 32 vaults over 7 shards: 5,5,5,5,4,4,4). Contiguity keeps each
// shard's working set dense and the assignment trivially deterministic.
func PlanShards(vaults, shards int) []int {
	of := make([]int, vaults)
	base, extra := vaults/shards, vaults%shards
	v := 0
	for s := 0; s < shards; s++ {
		n := base
		if s < extra {
			n++
		}
		for i := 0; i < n; i++ {
			of[v] = s
			v++
		}
	}
	return of
}

// ResponseLookahead returns the minimum latency from a vault completing
// a read (the completion trampoline firing on the vault engine) to any
// effect on the coordinator shard: the crossbar hop back plus the clean
// serialization and propagation of a full response packet. Sleep wakeup,
// pipe backpressure, and CRC retries only add to it. The parallel window
// must satisfy 2*window <= this bound — see sim.RunParallel.
func ResponseLookahead(cfg config.Config) sim.Time {
	l := cfg.Links
	ser := sim.Time(int64(l.HeaderBytes+cfg.L3.LineBytes) * 1_000_000_000_000 / l.BytesPerSecond())
	return l.SwitchDelay + ser + l.PropDelay
}

// NewCubeSharded builds a cube whose vaults are distributed over
// shards vault-shard engines per plan (shardOf[vault] = shard index),
// while the links, crossbar, and controller state live on main. The
// returned runtime is the sim.Mailbox to run the simulation with:
//
//	sim.RunParallel(ctx, main, rt.Engines(), window, rt)
//
// with window <= ResponseLookahead(cfg)/2.
func NewCubeSharded(main *sim.Engine, cfg config.Config, scheme prefetch.Scheme,
	engs []*sim.Engine, shardOf []int) (*Cube, *ShardRuntime) {
	rt := &ShardRuntime{
		main:      main,
		engs:      engs,
		shardOf:   shardOf,
		down:      make([][]*downRec, len(engs)),
		spentDown: make([][]*downRec, len(engs)),
		up:        make([][]upRec, len(engs)),
		merge:     make([]int, len(engs)),
	}
	c := &Cube{
		eng:       main,
		cfg:       cfg,
		mapping:   NewMapping(cfg),
		vaults:    make([]*vault.Controller, cfg.HMC.Vaults),
		links:     make([]*Link, cfg.Links.Count),
		lineBytes: cfg.L3.LineBytes,
		headerB:   cfg.Links.HeaderBytes,
		switchLat: cfg.Links.SwitchDelay,
		ctrlLat:   cfg.Links.CtrlOverhead,
		readHist:  stats5ns(),
		shard:     rt,
	}
	for i := range c.vaults {
		// Each controller is constructed on its owning shard's engine:
		// its refresh daemon and all scheduling ride that engine.
		c.vaults[i] = vault.New(engs[shardOf[i]], cfg, scheme, i)
	}
	for i := range c.links {
		c.links[i] = NewLink(cfg.Links)
	}
	if cfg.Links.VaultPortGBps > 0 {
		c.portBps = cfg.Links.VaultPortGBps * 1_000_000_000
		c.portFree = make([]sim.Time, cfg.HMC.Vaults)
	}
	return c, rt
}

// SetShardObs points each vault (and its fault site, when faults are
// wired) at per-shard observability instances: tracer i and ledger i
// receive everything the vaults of shard i emit. Call after Instrument /
// AttachAttribution / SetFaults; the per-shard instances fold back into
// the run's suite when the simulation ends (obs.MergeShardTracers,
// obs.MergeShardLedgers).
func (c *Cube) SetShardObs(tracers []*obs.Tracer, ledgers []*obs.PrefetchLedger) {
	rt := c.shard
	if rt == nil {
		return
	}
	for i, v := range c.vaults {
		s := rt.shardOf[i]
		if tracers != nil {
			v.SetTracer(tracers[s])
			if c.vsites != nil {
				c.vsites[i].SetTracer(tracers[s])
			}
		}
		if ledgers != nil && ledgers[s] != nil {
			v.AttachAttribution(c.spans, ledgers[s])
		}
	}
}

// pushDown queues one request for delivery into vault's shard at the
// next barrier. Runs on the coordinator, inside Access.
func (rt *ShardRuntime) pushDown(vaultID int, v *vault.Controller, req vault.Request, when, sched sim.Time) {
	var d *downRec
	if n := len(rt.downFree); n > 0 {
		d = rt.downFree[n-1]
		rt.downFree[n-1] = nil
		rt.downFree = rt.downFree[:n-1]
	} else {
		d = &downRec{rt: rt}
		d.fireFn = d.fire
	}
	d.shard = rt.shardOf[vaultID]
	d.v = v
	d.req = req
	d.when = when
	d.sched = sched
	d.tag = vault.TagSubmit(vaultID)
	rt.down[d.shard] = append(rt.down[d.shard], d)
}

// pushUp queues one read completion for replay onto the coordinator.
// Runs on a's owning vault shard, as the read's Done callback.
func (rt *ShardRuntime) pushUp(shard int, a *access, ready sim.Time) {
	e := rt.engs[shard]
	rt.up[shard] = append(rt.up[shard], upRec{
		when:  e.Now(),
		sched: e.CurSched(),
		tag:   e.CurTag(),
		ready: ready,
		a:     a,
	})
}

func keyBefore(w, s sim.Time, t int32, lw, ls sim.Time, lt int32) bool {
	if w != lw {
		return w < lw
	}
	if s != ls {
		return s < ls
	}
	return t < lt
}

// DeliverDown implements sim.Mailbox: recycle the spent-record lists
// (every shard is parked at the barrier), then insert the queued
// requests into their shard engines. Limited delivery drops messages at
// or past the halt key — requests a halted serial engine would never
// have submitted; their reads simply stay in flight, exactly as when a
// serial run halts with the submit event still queued.
func (rt *ShardRuntime) DeliverDown(limit bool, lw, ls sim.Time, lt int32) int {
	for i := range rt.spentDown {
		for j, d := range rt.spentDown[i] {
			rt.downFree = append(rt.downFree, d)
			rt.spentDown[i][j] = nil
		}
		rt.spentDown[i] = rt.spentDown[i][:0]
	}
	moved := 0
	for i := range rt.down {
		for _, d := range rt.down[i] {
			if limit && !keyBefore(d.when, d.sched, d.tag, lw, ls, lt) {
				continue
			}
			rt.engs[i].DeliverAt(d.when, d.sched, d.tag, d.fireFn)
			moved++
		}
		rt.down[i] = rt.down[i][:0]
	}
	return moved
}

// ReplayUp implements sim.Mailbox: merge the per-shard completion FIFOs
// by (when, sched, tag) — each FIFO is already key-sorted because its
// engine fires events in key order, and the tag component makes the
// merged order total (two shards never produce the same vault tag) —
// and re-apply each completion on the coordinator under replay at its
// original execution time. Limited replay drops completions at or past
// the halt key, which the serial engine would never have fired.
func (rt *ShardRuntime) ReplayUp(limit bool, lw, ls sim.Time, lt int32) int {
	for i := range rt.merge {
		rt.merge[i] = 0
	}
	moved := 0
	for {
		best := -1
		var bw, bs sim.Time
		var bt int32
		for i := range rt.up {
			if rt.merge[i] >= len(rt.up[i]) {
				continue
			}
			r := rt.up[i][rt.merge[i]]
			if best < 0 || keyBefore(r.when, r.sched, r.tag, bw, bs, bt) {
				best, bw, bs, bt = i, r.when, r.sched, r.tag
			}
		}
		if best < 0 {
			break
		}
		r := rt.up[best][rt.merge[best]]
		rt.merge[best]++
		if limit && !keyBefore(r.when, r.sched, r.tag, lw, ls, lt) {
			continue
		}
		rt.main.BeginReplay(r.when, r.tag)
		r.a.vdoneFn(r.ready)
		rt.main.EndReplay()
		moved++
	}
	for i := range rt.up {
		rt.up[i] = rt.up[i][:0]
	}
	return moved
}
