package hmc

import (
	"errors"
	"testing"

	"camps/internal/fault"
	"camps/internal/prefetch"
	"camps/internal/sim"
)

// issueBatch drives n reads round-robin across vaults and returns the
// mean read latency in picoseconds.
func issueBatch(cube *Cube, eng *sim.Engine, n int) float64 {
	m := cube.Mapping()
	for i := 0; i < n; i++ {
		addr := m.Encode(Location{Vault: i % 32, Bank: i % 16, Row: int64(i % 64), Line: i % 16})
		cube.Access(addr, false, nil)
	}
	eng.Run()
	return cube.ReadAMAT().Mean()
}

func TestCubeZeroSpecIdenticalToDisabled(t *testing.T) {
	run := func(set bool) (float64, fault.Counts) {
		eng := sim.NewEngine()
		cube := NewCube(eng, testCfg(), prefetch.CAMPS)
		var inj *fault.Injector
		if set {
			inj = fault.NewInjector(fault.Spec{}, 1)
		}
		cube.SetFaults(inj) // nil injector is valid and injects nothing
		return issueBatch(cube, eng, 200), inj.Counts()
	}
	base, _ := run(false)
	zero, counts := run(true)
	if base != zero {
		t.Fatalf("zero-rate spec perturbed latency: %v vs %v", zero, base)
	}
	if counts != (fault.Counts{}) {
		t.Fatalf("zero-rate spec injected faults: %+v", counts)
	}
}

func TestCubeLinkCRCSlowsReads(t *testing.T) {
	run := func(spec fault.Spec) (float64, fault.Counts) {
		eng := sim.NewEngine()
		cube := NewCube(eng, testCfg(), prefetch.CAMPS)
		inj := fault.NewInjector(spec, 1)
		cube.SetFaults(inj)
		return issueBatch(cube, eng, 200), inj.Counts()
	}
	clean, _ := run(fault.Spec{})
	faulty, counts := run(fault.Spec{LinkCRCRate: 1, LinkMaxRetries: 1})
	if counts.LinkCRCErrors == 0 || counts.LinkRetries == 0 {
		t.Fatalf("rate-1 CRC spec injected nothing: %+v", counts)
	}
	if faulty <= clean {
		t.Fatalf("CRC retries did not slow reads: %v vs clean %v", faulty, clean)
	}
}

func TestCubeVaultStallSlowsReads(t *testing.T) {
	run := func(spec fault.Spec) (float64, fault.Counts) {
		eng := sim.NewEngine()
		cube := NewCube(eng, testCfg(), prefetch.CAMPS)
		inj := fault.NewInjector(spec, 1)
		cube.SetFaults(inj)
		return issueBatch(cube, eng, 64), inj.Counts()
	}
	clean, _ := run(fault.Spec{})
	faulty, counts := run(fault.Spec{VaultStallRate: 1, VaultStallTime: 200 * sim.Nanosecond})
	if counts.VaultStalls == 0 {
		t.Fatalf("rate-1 stall spec injected nothing: %+v", counts)
	}
	// Every read stalls 200ns on ingress; the mean must shift by at least
	// a large fraction of it (bank-level overlap can absorb a little).
	if faulty < clean+float64(100*sim.Nanosecond) {
		t.Fatalf("stalls shifted mean only %v -> %v", clean, faulty)
	}
}

func TestCubeBankBlackoutsCounted(t *testing.T) {
	eng := sim.NewEngine()
	cube := NewCube(eng, testCfg(), prefetch.CAMPS)
	inj := fault.NewInjector(fault.Spec{
		BankFailPeriod:   2 * sim.Microsecond,
		BankFailDuration: 500 * sim.Nanosecond,
	}, 1)
	cube.SetFaults(inj)
	// Hammer one bank long enough to cross several windows.
	m := cube.Mapping()
	for i := 0; i < 400; i++ {
		cube.Access(m.Encode(Location{Vault: 0, Bank: 0, Row: int64(i % 128)}), false, nil)
	}
	eng.Run()
	if inj.Counts().BankBlackouts == 0 {
		t.Fatal("sustained traffic never hit a blackout window")
	}
	if got := cube.ReadAMAT().Count(); got != 400 {
		t.Fatalf("only %d of 400 reads completed under blackouts", got)
	}
}

func TestCubePoisonForcesRefetch(t *testing.T) {
	run := func(spec fault.Spec) (*Cube, fault.Counts) {
		eng := sim.NewEngine()
		cube := NewCube(eng, testCfg(), prefetch.Base) // BASE fetches on first touch
		inj := fault.NewInjector(spec, 1)
		cube.SetFaults(inj)
		issueBatch(cube, eng, 200)
		cube.Flush()
		return cube, inj.Counts()
	}
	clean, _ := run(fault.Spec{})
	if clean.BufferStats().Inserts == 0 {
		t.Fatal("BASE produced no buffer inserts even without faults")
	}
	poisoned, counts := run(fault.Spec{PoisonRate: 1})
	if counts.PoisonedRows == 0 {
		t.Fatalf("rate-1 poison spec injected nothing: %+v", counts)
	}
	if got := poisoned.BufferStats().Inserts; got != 0 {
		t.Fatalf("poisoned fetches still inserted %d rows", got)
	}
	vs := poisoned.VaultStats()
	if vs.FetchesIssued.Value() == 0 {
		t.Fatal("no fetches issued under poisoning (nothing to poison)")
	}
}

// The acceptance-criterion test: a deliberately injected accounting bug
// must surface through the epoch invariant checker as a typed error, not
// as silently corrupted statistics.
func TestInvariantCheckerCatchesAccountingBug(t *testing.T) {
	eng := sim.NewEngine()
	cube := NewCube(eng, testCfg(), prefetch.CAMPS)
	chk := sim.NewChecker(eng, sim.Microsecond)
	chk.Register(cube.Invariants()...)

	m := cube.Mapping()
	for i := 0; i < 64; i++ {
		cube.Access(m.Encode(Location{Vault: i % 32, Row: int64(i)}), false, nil)
	}
	// The bug: a read counted as issued that never enters the pipeline.
	eng.At(500*sim.Nanosecond, func() { cube.reads.Inc() })
	eng.Run()
	chk.Final()

	err := chk.Err()
	if err == nil {
		t.Fatal("accounting bug not detected")
	}
	if !errors.Is(err, sim.ErrInvariant) {
		t.Fatalf("violation is not typed: %v", err)
	}
	var ie *sim.InvariantError
	if !errors.As(err, &ie) || ie.Name != "hmc-read-accounting" {
		t.Fatalf("wrong invariant reported: %v", err)
	}
}

// A clean run must pass every cube invariant, including the final check
// after the engine drains.
func TestInvariantCheckerCleanRun(t *testing.T) {
	for _, scheme := range prefetch.AllSchemes() {
		eng := sim.NewEngine()
		cube := NewCube(eng, testCfg(), scheme)
		chk := sim.NewChecker(eng, sim.Microsecond)
		chk.Register(cube.Invariants()...)
		issueBatch(cube, eng, 200)
		chk.Final()
		if err := chk.Err(); err != nil {
			t.Fatalf("%v: clean run violated invariant: %v", scheme, err)
		}
	}
}
