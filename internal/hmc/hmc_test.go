package hmc

import (
	"testing"
	"testing/quick"

	"camps/internal/config"
	"camps/internal/prefetch"
	"camps/internal/sim"
)

func testCfg() config.Config {
	cfg := config.Default()
	cfg.HMC.Timing.TREFI = 1 << 20 // keep refresh out of latency tests
	return cfg
}

func TestMappingDecodeKnownAddresses(t *testing.T) {
	m := NewMapping(config.Default())
	// Address 0: everything zero.
	loc := m.Decode(0)
	if loc != (Location{}) {
		t.Fatalf("Decode(0) = %+v", loc)
	}
	// One cache line up: line 1, same vault/bank/row.
	loc = m.Decode(64)
	if loc != (Location{Line: 1}) {
		t.Fatalf("Decode(64) = %+v", loc)
	}
	// One full row up (1KB): next vault (Co bits exhausted -> Va).
	loc = m.Decode(1024)
	if loc != (Location{Vault: 1}) {
		t.Fatalf("Decode(1024) = %+v", loc)
	}
	// 32 rows up (32KB): vault wraps, bank 1.
	loc = m.Decode(32 * 1024)
	if loc != (Location{Bank: 1}) {
		t.Fatalf("Decode(32KB) = %+v", loc)
	}
	// 16 banks * 32 vaults * 1KB = 512KB: row 1.
	loc = m.Decode(512 * 1024)
	if loc != (Location{Row: 1}) {
		t.Fatalf("Decode(512KB) = %+v", loc)
	}
}

func TestMappingRoundTrip(t *testing.T) {
	m := NewMapping(config.Default())
	prop := func(raw uint64) bool {
		addr := Address(raw % m.Capacity())
		loc := m.Decode(addr)
		return m.Encode(loc) == m.LineAddress(addr)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMappingEncodeValidation(t *testing.T) {
	m := NewMapping(config.Default())
	for _, loc := range []Location{
		{Vault: 32}, {Vault: -1}, {Bank: 16}, {Row: 8192}, {Line: 16}, {Line: -1},
	} {
		loc := loc
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Encode(%+v) did not panic", loc)
				}
			}()
			m.Encode(loc)
		}()
	}
}

func TestMappingDistributesAcrossVaults(t *testing.T) {
	m := NewMapping(config.Default())
	seen := map[int]bool{}
	for i := 0; i < 32; i++ {
		seen[m.Decode(Address(i*1024)).Vault] = true
	}
	if len(seen) != 32 {
		t.Fatalf("32 consecutive rows hit %d vaults, want 32", len(seen))
	}
}

func TestPipeSerializationAndBackpressure(t *testing.T) {
	cfg := config.Default()
	l := NewLink(cfg.Links)
	// 24 GB/s -> 80 bytes take 80/24e9 s = 3333 ps.
	first := l.SendRequest(0, 80)
	wantSer := sim.Time(80 * 1_000_000_000_000 / cfg.Links.BytesPerSecond())
	if first != wantSer+cfg.Links.PropDelay {
		t.Fatalf("first packet arrives at %v, want %v", first, wantSer+cfg.Links.PropDelay)
	}
	// Second packet sent at the same instant queues behind the first.
	second := l.SendRequest(0, 80)
	if second != first+wantSer {
		t.Fatalf("second packet arrives at %v, want %v", second, first+wantSer)
	}
	// Response direction is independent.
	resp := l.SendResponse(0, 80)
	if resp != first {
		t.Fatalf("response direction shares request bandwidth: %v vs %v", resp, first)
	}
	s := l.Stats()
	if s.ReqPackets != 2 || s.ReqBytes != 160 || s.RespPackets != 1 {
		t.Fatalf("link stats = %+v", s)
	}
	if s.ReqBusy != 2*wantSer {
		t.Fatalf("req busy = %v, want %v", s.ReqBusy, 2*wantSer)
	}
}

func TestCubeReadCompletes(t *testing.T) {
	cfg := testCfg()
	eng := sim.NewEngine()
	cube := NewCube(eng, cfg, prefetch.CAMPS)
	var done sim.Time = -1
	cube.Access(0x1234<<6, false, func(at sim.Time) { done = at })
	eng.Run()
	if done < 0 {
		t.Fatal("read never completed")
	}
	// Sanity: latency covers link + bank access, i.e. tens of ns.
	if done < 30*sim.Nanosecond || done > 500*sim.Nanosecond {
		t.Fatalf("read latency %v outside plausible range", done)
	}
	if cube.Reads() != 1 || cube.Writes() != 0 {
		t.Fatalf("counters: reads %d writes %d", cube.Reads(), cube.Writes())
	}
	if cube.ReadAMAT().Count() != 1 {
		t.Fatal("AMAT sample missing")
	}
}

func TestCubeWritePostedCompletion(t *testing.T) {
	cfg := testCfg()
	eng := sim.NewEngine()
	cube := NewCube(eng, cfg, prefetch.CAMPS)
	var wdone, rdone sim.Time = -1, -1
	cube.Access(0, true, func(at sim.Time) { wdone = at })
	cube.Access(0, false, func(at sim.Time) { rdone = at })
	eng.Run()
	if wdone < 0 || rdone < 0 {
		t.Fatal("requests did not complete")
	}
	if wdone >= rdone {
		t.Fatalf("posted write (%v) should complete before read data returns (%v)", wdone, rdone)
	}
	if cube.ReadAMAT().Count() != 1 {
		t.Fatal("writes must not contribute AMAT samples")
	}
}

func TestCubeRoutesToCorrectVault(t *testing.T) {
	cfg := testCfg()
	eng := sim.NewEngine()
	cube := NewCube(eng, cfg, prefetch.CAMPS)
	m := cube.Mapping()
	addr := m.Encode(Location{Vault: 7, Bank: 3, Row: 99, Line: 5})
	cube.Access(addr, false, nil)
	eng.Run()
	if got := cube.Vault(7).Stats().DemandReads.Value(); got != 1 {
		t.Fatalf("vault 7 saw %d reads, want 1", got)
	}
	for i := 0; i < cube.Vaults(); i++ {
		if i == 7 {
			continue
		}
		if cube.Vault(i).Stats().DemandReads.Value() != 0 {
			t.Fatalf("vault %d saw traffic meant for vault 7", i)
		}
	}
}

func TestCubeParallelVaultsFasterThanSingleVault(t *testing.T) {
	cfg := testCfg()
	m := NewMapping(cfg)

	run := func(sameVault bool) sim.Time {
		eng := sim.NewEngine()
		cube := NewCube(eng, cfg, prefetch.CAMPS)
		var last sim.Time
		for i := 0; i < 16; i++ {
			var loc Location
			if sameVault {
				loc = Location{Vault: 0, Bank: 0, Row: int64(i * 2)} // conflicts
			} else {
				loc = Location{Vault: i % 32, Bank: i % 16, Row: int64(i)}
			}
			cube.Access(m.Encode(loc), false, func(at sim.Time) {
				if at > last {
					last = at
				}
			})
		}
		eng.Run()
		return last
	}
	spread := run(false)
	serial := run(true)
	if spread >= serial {
		t.Fatalf("vault-parallel accesses (%v) not faster than single-bank conflicts (%v)", spread, serial)
	}
}

func TestCubeFlushAndAggregates(t *testing.T) {
	cfg := testCfg()
	eng := sim.NewEngine()
	cube := NewCube(eng, cfg, prefetch.Base)
	for i := 0; i < 64; i++ {
		cube.Access(Address(i*64), i%8 == 7, nil)
	}
	eng.Run()
	cube.Flush()
	vs := cube.VaultStats()
	if vs.DemandReads.Value()+vs.DemandWrites.Value() != 64 {
		t.Fatalf("aggregate demand = %d, want 64",
			vs.DemandReads.Value()+vs.DemandWrites.Value())
	}
	if vs.BankOps.Activates == 0 {
		t.Fatal("no activations collected")
	}
	bs := cube.BufferStats()
	if bs.Inserts == 0 {
		t.Fatal("BASE inserted nothing into prefetch buffers")
	}
	ls := cube.LinkStats()
	total := uint64(0)
	for _, s := range ls {
		total += s.ReqPackets
	}
	if total != 64 {
		t.Fatalf("links carried %d request packets, want 64", total)
	}
}

func TestCubeDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		cfg := testCfg()
		eng := sim.NewEngine()
		cube := NewCube(eng, cfg, prefetch.CAMPSMOD)
		for i := 0; i < 300; i++ {
			addr := Address((i * 7919) % (1 << 22))
			cube.Access(m64(addr), i%5 == 0, nil)
			eng.RunFor(sim.Time(i%4) * 500)
		}
		eng.Run()
		cube.Flush()
		vs := cube.VaultStats()
		return vs.RowConflicts.Value(), cube.ReadAMAT().Mean()
	}
	a1, a2 := run()
	b1, b2 := run()
	if a1 != b1 || a2 != b2 {
		t.Fatalf("nondeterministic cube: (%d,%g) vs (%d,%g)", a1, a2, b1, b2)
	}
}

func m64(a Address) Address { return a &^ 63 }

func TestMappingVariantsRoundTrip(t *testing.T) {
	for _, scheme := range []config.AddressInterleave{
		config.RoRaBaVaCo, config.RoRaVaBaCo, config.VaultXOR,
	} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := config.Default()
			cfg.HMC.Interleave = scheme
			m := NewMapping(cfg)
			if m.Scheme() != scheme {
				t.Fatalf("scheme = %v", m.Scheme())
			}
			prop := func(raw uint64) bool {
				addr := Address(raw % m.Capacity())
				loc := m.Decode(addr)
				return m.Encode(loc) == m.LineAddress(addr)
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
				t.Fatal(err)
			}
			// Inverse direction: every location encodes/decodes to itself.
			rng := uint64(12345)
			next := func(n uint64) uint64 { rng = rng*6364136223846793005 + 1; return rng % n }
			for i := 0; i < 500; i++ {
				loc := Location{
					Vault: int(next(32)), Bank: int(next(16)),
					Row: int64(next(8192)), Line: int(next(16)),
				}
				if got := m.Decode(m.Encode(loc)); got != loc {
					t.Fatalf("%v: %+v -> %+v", scheme, loc, got)
				}
			}
		})
	}
}

func TestMappingVariantsInterleaveDifferently(t *testing.T) {
	cfg := config.Default()
	m0 := NewMapping(cfg)
	cfg.HMC.Interleave = config.RoRaVaBaCo
	m1 := NewMapping(cfg)
	// Under RoRaBaVaCo, +1KB moves to the next vault; under RoRaVaBaCo it
	// moves to the next bank of the same vault.
	a, b := m0.Decode(1024), m1.Decode(1024)
	if a.Vault != 1 || a.Bank != 0 {
		t.Fatalf("RoRaBaVaCo Decode(1KB) = %+v", a)
	}
	if b.Vault != 0 || b.Bank != 1 {
		t.Fatalf("RoRaVaBaCo Decode(1KB) = %+v", b)
	}
}

func TestVaultXORSpreadsBankStride(t *testing.T) {
	cfg := config.Default()
	cfg.HMC.Interleave = config.VaultXOR
	m := NewMapping(cfg)
	// Under the paper's mapping, +512KB keeps the same vault (next row of
	// the same bank); under VaultXOR it lands in a different vault.
	base := m.Decode(0)
	next := m.Decode(512 << 10)
	if next.Vault == base.Vault {
		t.Fatal("VaultXOR did not spread the bank stride across vaults")
	}
}

func TestLinkPowerManagement(t *testing.T) {
	cfg := config.Default()
	cfg.Links.SleepAfter = 100 * sim.Nanosecond
	cfg.Links.WakeLatency = 20 * sim.Nanosecond
	l := NewLink(cfg.Links)
	// First packet: pipe starts awake at time 0... after an initial idle
	// gap longer than SleepAfter it is asleep and pays the wake latency.
	first := l.SendRequest(500*sim.Nanosecond, 80)
	ser := sim.Time(80 * 1_000_000_000_000 / cfg.Links.BytesPerSecond())
	want := 500*sim.Nanosecond + cfg.Links.WakeLatency + ser + cfg.Links.PropDelay
	if first != want {
		t.Fatalf("woken packet arrives at %v, want %v", first, want)
	}
	s := l.Stats()
	if s.Wakes != 1 {
		t.Fatalf("wakes = %d, want 1", s.Wakes)
	}
	if s.ReqSlept != 500*sim.Nanosecond-100*sim.Nanosecond {
		t.Fatalf("slept = %v, want 400ns", s.ReqSlept)
	}
	// A back-to-back packet pays no wake latency.
	second := l.SendRequest(first-cfg.Links.PropDelay, 80)
	if second != first+ser {
		t.Fatalf("warm packet arrives at %v, want %v", second, first+ser)
	}
	if l.Stats().Wakes != 1 {
		t.Fatal("warm packet counted a wake")
	}
}

func TestLinkPowerDisabledByDefault(t *testing.T) {
	l := NewLink(config.Default().Links)
	l.SendRequest(10*sim.Microsecond, 80)
	if s := l.Stats(); s.Wakes != 0 || s.ReqSlept != 0 {
		t.Fatalf("default links slept: %+v", s)
	}
}

func TestVaultIngressPortSerializes(t *testing.T) {
	run := func(gbps int64) sim.Time {
		cfg := testCfg()
		cfg.Links.VaultPortGBps = gbps
		eng := sim.NewEngine()
		cube := NewCube(eng, cfg, prefetch.None)
		m := cube.Mapping()
		// Eight writes (80-byte packets) into ONE vault, different banks:
		// with an ingress bound they serialize at the port.
		var last sim.Time
		for i := 0; i < 8; i++ {
			addr := m.Encode(Location{Vault: 3, Bank: i, Row: 1})
			cube.Access(addr, false, func(at sim.Time) {
				if at > last {
					last = at
				}
			})
		}
		eng.Run()
		return last
	}
	free := run(0)
	bound := run(1) // 1 GB/s: one 16B header packet takes 16ns
	if bound <= free {
		t.Fatalf("ingress port had no effect: %v vs %v", bound, free)
	}
}
