package hmc

import (
	"fmt"

	"camps/internal/config"
	"camps/internal/fault"
	"camps/internal/obs"
	"camps/internal/pfbuffer"
	"camps/internal/prefetch"
	"camps/internal/sim"
	"camps/internal/stats"
	"camps/internal/vault"
)

// Cube is a complete HMC main-memory system: the external (processor-side)
// HMC controller, the serial links, the crossbar, and all vault
// controllers. It is the component the cache hierarchy talks to.
type Cube struct {
	eng     *sim.Engine
	cfg     config.Config
	mapping Mapping
	vaults  []*vault.Controller
	links   []*Link

	lineBytes int
	headerB   int
	switchLat sim.Time
	ctrlLat   sim.Time

	// Optional per-vault crossbar ingress serialization.
	portFree []sim.Time
	portBps  int64

	reads    stats.Counter
	writes   stats.Counter
	inflight uint64             // reads issued whose data is not yet back
	readAMAT stats.LatencyAccum // request issue -> data back at controller
	readHist *stats.Histogram   // same samples, 5ns buckets to 2us

	// Observability (nil unless Instrument was called).
	obsLat *obs.Histogram

	// Free list of in-flight access records; steady-state Access calls
	// allocate nothing.
	accFree []*access

	// Fault injection (empty unless SetFaults was called with an
	// injector): per-vault ingress-stall sites. All site methods are
	// nil-safe, so a cube without faults carries no extra state.
	vsites []*fault.VaultSite

	// Attribution (nil unless AttachAttribution was called): the cube
	// claims each read's staged span from the MSHR layer, charges the
	// request path (link, crossbar, injected stalls) and retires the span
	// when the response reaches the processor side.
	spans *obs.SpanSet

	// Parallel shard runtime (nil on the serial path, see NewCubeSharded):
	// when set, vault submissions and read completions cross shard
	// boundaries through its mailboxes instead of local scheduling.
	shard *ShardRuntime
}

// stats5ns returns the cube's read-latency histogram (5ns buckets to 2us).
func stats5ns() *stats.Histogram { return stats.NewHistogram(400, 5000) }

// NewCube builds the cube with one prefetch scheme across all vaults.
func NewCube(eng *sim.Engine, cfg config.Config, scheme prefetch.Scheme) *Cube {
	c := &Cube{
		eng:       eng,
		cfg:       cfg,
		mapping:   NewMapping(cfg),
		vaults:    make([]*vault.Controller, cfg.HMC.Vaults),
		links:     make([]*Link, cfg.Links.Count),
		lineBytes: cfg.L3.LineBytes,
		headerB:   cfg.Links.HeaderBytes,
		switchLat: cfg.Links.SwitchDelay,
		ctrlLat:   cfg.Links.CtrlOverhead,
		readHist:  stats5ns(),
	}
	for i := range c.vaults {
		c.vaults[i] = vault.New(eng, cfg, scheme, i)
	}
	for i := range c.links {
		c.links[i] = NewLink(cfg.Links)
	}
	if cfg.Links.VaultPortGBps > 0 {
		c.portBps = cfg.Links.VaultPortGBps * 1_000_000_000
		c.portFree = make([]sim.Time, cfg.HMC.Vaults)
	}
	return c
}

// Instrument connects the whole memory system to the observability
// layer: the cube registers its controller-level counters and read-latency
// histogram under the hmc.* namespace, every vault (and its prefetch
// buffer) registers under vault.* / pfbuffer.*, and links publish flit
// events. Either argument may be nil. Call before the simulation starts.
func (c *Cube) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	if reg != nil {
		reg.CounterFunc("hmc.reads", c.reads.Value)
		reg.CounterFunc("hmc.writes", c.writes.Value)
		reg.GaugeFunc("hmc.inflight_reads", func() float64 { return float64(c.inflight) })
		c.obsLat = reg.Histogram("hmc.read_latency_ps")
	}
	for _, v := range c.vaults {
		v.Instrument(reg, tr)
	}
	for i, l := range c.links {
		l.Instrument(tr, i)
	}
}

// ingress returns the time a request packet of n bytes arriving at the
// crossbar at `at` is fully delivered into vault v, honoring the vault's
// ingress port when modeled.
func (c *Cube) ingress(v int, at sim.Time, n int) sim.Time {
	arrive := at + c.switchLat
	if c.portBps == 0 {
		return arrive
	}
	start := arrive
	if c.portFree[v] > start {
		start = c.portFree[v]
	}
	end := start + sim.Time(int64(n)*1_000_000_000_000/c.portBps)
	c.portFree[v] = end
	return end
}

// AttachAttribution threads the attribution layer through the memory
// system: the cube charges link/crossbar segments and retires spans,
// every vault charges its queue/conflict/service segments, and the
// prefetch buffers classify evictions into the ledger. Either argument
// may be nil. Call before the simulation starts.
func (c *Cube) AttachAttribution(spans *obs.SpanSet, ledger *obs.PrefetchLedger) {
	c.spans = spans
	for _, v := range c.vaults {
		v.AttachAttribution(spans, ledger)
	}
}

// SetFaults threads a fault injector through the whole memory path: CRC
// sites onto every link direction, and stall/poison/blackout sites onto
// every vault. A nil injector leaves the cube fault-free (all sites nil).
// Call before the simulation starts.
func (c *Cube) SetFaults(inj *fault.Injector) {
	for i, l := range c.links {
		l.SetFaults(inj, i)
	}
	c.vsites = make([]*fault.VaultSite, len(c.vaults))
	for i, v := range c.vaults {
		site := inj.Vault(i, c.cfg.HMC.Banks())
		c.vsites[i] = site
		v.SetFaults(site)
	}
}

// Invariants returns the memory system's structural invariants for the
// simulator's epoch checker: read-request accounting (issued == completed
// + in-flight) and every vault's internal state (prefetch-buffer
// occupancy and recency permutation, bank activate/precharge accounting,
// prefetch-engine table bounds). All checks are read-only.
func (c *Cube) Invariants() []sim.Invariant {
	return []sim.Invariant{
		{Name: "hmc-read-accounting", Check: func() error {
			issued, completed := c.reads.Value(), c.readAMAT.Count()
			if issued != completed+c.inflight {
				return fmt.Errorf("hmc: %d reads issued but %d completed + %d in flight",
					issued, completed, c.inflight)
			}
			return nil
		}},
		{Name: "vault-state", Check: func() error {
			for _, v := range c.vaults {
				if err := v.CheckInvariant(); err != nil {
					return err
				}
			}
			return nil
		}},
	}
}

// Mapping returns the cube's address mapping.
func (c *Cube) Mapping() Mapping { return c.mapping }

// linkFor statically routes a vault's traffic over one link, spreading
// vaults evenly (32 vaults over 4 links).
func (c *Cube) linkFor(vaultID int) *Link { return c.links[vaultID%len(c.links)] }

// Access issues one cache-line request to the cube at the current time.
// For reads, done fires when the data arrives back at the processor-side
// controller. For writes, done fires when the request packet has been
// accepted by the vault (posted-write semantics). done may be nil.
func (c *Cube) Access(addr Address, write bool, done func(at sim.Time)) {
	now := c.eng.Now()
	loc := c.mapping.Decode(addr)
	link := c.linkFor(loc.Vault)

	reqBytes := c.headerB
	if write {
		reqBytes += c.lineBytes
		c.writes.Inc()
	} else {
		c.reads.Inc()
	}

	// External controller processing, then serialization over the link,
	// then the crossbar hop (and optional vault ingress port).
	atCube, reqRetry := link.SendRequestTimed(now+c.ctrlLat, reqBytes)
	preStall := c.ingress(loc.Vault, atCube, reqBytes)
	atVault := preStall
	if c.vsites != nil {
		// Injected TSV/arbitration stall: the vault sees the request late.
		atVault += c.vsites[loc.Vault].StallDelay(atVault)
	}

	if write && c.shard != nil {
		// Parallel posted write: nothing comes back, so no access record —
		// the request value rides the mailbox to its shard and the
		// acceptance callback stays on the coordinator, as in serial.
		req := vault.Request{Bank: loc.Bank, Row: loc.Row, Line: loc.Line, Write: true}
		c.shard.pushDown(loc.Vault, c.vaults[loc.Vault], req, atVault, now)
		if done != nil {
			c.eng.AtWhen(atVault, done)
		}
		return
	}

	a := c.allocAccess()
	a.v = c.vaults[loc.Vault]
	a.link = link
	a.start = now
	a.done = done
	a.req = vault.Request{Bank: loc.Bank, Row: loc.Row, Line: loc.Line, Write: write}
	if !write {
		c.inflight++
		a.req.Done = a.vdoneFn
		if c.shard != nil {
			// The vault invokes Done on its own engine; the push records
			// the completion for barrier replay instead of running the
			// response path on the wrong shard.
			a.shard = c.shard.shardOf[loc.Vault]
			a.req.Done = a.pushFn
		}
		// Claim the span the MSHR staged for this read and charge the
		// request path: CRC retransmissions first (folded into the link
		// delivery), then controller+link up to delivery at the cube,
		// crossbar/ingress, and any injected ingress stall.
		if ref := c.spans.Unstage(); ref.Valid() {
			c.spans.Advance(ref, obs.CauseFaultRetry, int64(reqRetry))
			c.spans.AdvanceTo(ref, obs.CauseLink, int64(atCube))
			c.spans.AdvanceTo(ref, obs.CauseXbar, int64(preStall))
			c.spans.AdvanceTo(ref, obs.CauseFaultRetry, int64(atVault))
			c.spans.SetVault(ref, loc.Vault)
			a.req.Span = ref
		}
	}
	if c.shard != nil {
		c.shard.pushDown(loc.Vault, a.v, a.req, atVault, now)
		return
	}
	// The submit roots the request's stream inside the vault: tagging it
	// here (rather than inheriting the core stream's tag) is what keys
	// every downstream event — bank operations, the completion trampoline,
	// the response path — to the vault, identically in serial and sharded
	// runs (see vault.TagSubmit).
	c.eng.AtTag(atVault, vault.TagSubmit(loc.Vault), a.submitFn)

	if write && done != nil {
		c.eng.AtWhen(atVault, done)
	}
}

// access is the pooled per-request state of one in-flight cube access: its
// submit and read-completion callbacks are bound to the record once, so
// issuing a request schedules engine events without allocating closures.
type access struct {
	c     *Cube
	v     *vault.Controller
	link  *Link
	req   vault.Request
	done  func(at sim.Time)
	start sim.Time
	shard int // owning vault shard (parallel mode only)

	submitFn func()
	vdoneFn  func(sim.Time)
	pushFn   func(sim.Time) // parallel mode: Done callback recording the completion
}

func (c *Cube) allocAccess() *access {
	if n := len(c.accFree); n > 0 {
		a := c.accFree[n-1]
		c.accFree[n-1] = nil
		c.accFree = c.accFree[:n-1]
		return a
	}
	a := &access{c: c}
	a.submitFn = a.submit
	a.vdoneFn = a.readDone
	if c.shard != nil {
		a.pushFn = a.pushUp
	}
	return a
}

// pushUp is the parallel-mode Done callback: it runs on the access's
// vault shard and records the completion for barrier replay.
func (a *access) pushUp(ready sim.Time) {
	a.c.shard.pushUp(a.shard, a, ready)
}

func (c *Cube) releaseAccess(a *access) {
	a.v = nil
	a.link = nil
	a.done = nil
	a.req = vault.Request{}
	c.accFree = append(c.accFree, a)
}

// submit delivers the request to its vault. Writes release the record
// immediately (posted semantics: nothing comes back); reads keep it alive
// until readDone. The record is released before Submit runs because Submit
// may complete a read synchronously (prefetch-buffer hit), and readDone
// releasing an already-released record would corrupt the free list.
func (a *access) submit() {
	if a.req.Done == nil {
		v, req := a.v, a.req
		a.c.releaseAccess(a)
		v.Submit(req)
		return
	}
	a.v.Submit(a.req) // released in readDone
}

// readDone fires when the vault has the read's data ready; it models the
// response path back to the processor-side controller and recycles the
// access record before invoking the caller's callback (which may itself
// issue new accesses).
func (a *access) readDone(ready sim.Time) {
	c, link, start, done := a.c, a.link, a.start, a.done
	ref := a.req.Span
	c.releaseAccess(a)
	// Response: crossbar back, response packet with data.
	back, respRetry := link.SendResponseTimed(ready+c.switchLat, c.headerB+c.lineBytes)
	// The vault advanced the span to `ready`; the crossbar hop, any CRC
	// retransmissions, and the link transfer close it out at `back`.
	c.spans.AdvanceTo(ref, obs.CauseXbar, int64(ready+c.switchLat))
	c.spans.Advance(ref, obs.CauseFaultRetry, int64(respRetry))
	c.spans.Retire(ref, obs.CauseLink, int64(back))
	c.inflight--
	c.readAMAT.Observe(float64(back - start))
	c.readHist.Observe(float64(back - start))
	if c.obsLat != nil {
		c.obsLat.ObserveInt(int64(back - start))
	}
	if done != nil {
		if back <= c.eng.Now() {
			done(back)
		} else {
			c.eng.AtWhen(back, done)
		}
	}
}

// Reads returns the number of read requests issued.
func (c *Cube) Reads() uint64 { return c.reads.Value() }

// Writes returns the number of write requests issued.
func (c *Cube) Writes() uint64 { return c.writes.Value() }

// ReadAMAT returns the accumulated read-latency distribution (the
// main-memory access time the paper's Figure 8 reports), in picoseconds.
func (c *Cube) ReadAMAT() stats.LatencyAccum { return c.readAMAT }

// ReadLatencyQuantile returns an upper bound on the q-quantile of read
// latency in picoseconds (5 ns resolution; +Inf past 2 us).
func (c *Cube) ReadLatencyQuantile(q float64) float64 { return c.readHist.Quantile(q) }

// Vault returns vault controller i (for tests and detailed inspection).
func (c *Cube) Vault(i int) *vault.Controller { return c.vaults[i] }

// Vaults returns the vault count.
func (c *Cube) Vaults() int { return len(c.vaults) }

// LinkStats returns per-link traffic counters.
func (c *Cube) LinkStats() []LinkStats {
	out := make([]LinkStats, len(c.links))
	for i, l := range c.links {
		out[i] = l.Stats()
	}
	return out
}

// Flush finalizes end-of-run accounting in every vault (buffer flush for
// prefetch accuracy, DRAM op collection).
func (c *Cube) Flush() {
	for _, v := range c.vaults {
		v.Flush()
		v.CollectOps()
	}
}

// VaultStats aggregates all vault statistics into one Stats value.
// Call Flush first.
func (c *Cube) VaultStats() vault.Stats {
	var agg vault.Stats
	for _, v := range c.vaults {
		agg.Merge(v.Stats())
	}
	return agg
}

// BufferStats aggregates all prefetch-buffer statistics.
func (c *Cube) BufferStats() pfbuffer.Stats {
	var agg pfbuffer.Stats
	for _, v := range c.vaults {
		s := v.BufferStats()
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.Inserts += s.Inserts
		agg.Evictions += s.Evictions
		agg.UsedRows += s.UsedRows
		agg.LinesUseful += s.LinesUseful
		agg.DirtyEvicts += s.DirtyEvicts
		agg.FullRowEvicts += s.FullRowEvicts
		agg.RowsPoisoned += s.RowsPoisoned
		agg.LinesPoisoned += s.LinesPoisoned
		agg.FirstUseDelay.Merge(s.FirstUseDelay)
	}
	return agg
}
