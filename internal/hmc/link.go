package hmc

import (
	"camps/internal/config"
	"camps/internal/fault"
	"camps/internal/obs"
	"camps/internal/sim"
	"camps/internal/stats"
)

// pipe is one direction of a serial link: a bandwidth-limited,
// store-and-forward packet channel. Serialization occupies the lane group
// for bytes/bandwidth; propagation (SerDes + flight) adds a fixed latency
// on top. Packets on one pipe are delivered in FIFO order.
//
// With link power management enabled (SleepAfter > 0), a pipe idle for
// longer than SleepAfter goes to sleep; the next packet pays WakeLatency
// and the slept interval is credited to the energy model.
type pipe struct {
	bytesPerSec int64
	prop        sim.Time
	nextFree    sim.Time

	sleepAfter sim.Time
	wakeLat    sim.Time

	packets stats.Counter
	bytes   stats.Counter
	busy    sim.Time // accumulated serialization time, for utilization
	slept   sim.Time // accumulated time in the low-power state
	wakes   stats.Counter

	// Observability (nil unless Link.Instrument was called): every packet
	// is published as an EvLinkFlit stamped with the link id and direction.
	tr     *obs.Tracer
	linkID int32
	dir    int32 // 0 request, 1 response

	// Fault injection (nil unless Link.SetFaults was called with an
	// injector): CRC-failed packets are retransmitted, charging the retry
	// turnaround plus a full re-serialization per retry.
	faults    *fault.LinkSite
	retryTurn sim.Time
}

func newPipe(l config.Links) *pipe {
	return &pipe{
		bytesPerSec: l.BytesPerSecond(),
		prop:        l.PropDelay,
		sleepAfter:  l.SleepAfter,
		wakeLat:     l.WakeLatency,
		retryTurn:   l.RetryTurnaround,
	}
}

// serTime returns the serialization time for a packet of n bytes.
func (p *pipe) serTime(n int) sim.Time {
	// bytes * 1e12 ps/s / (bytes/s); fits easily in int64 for sane sizes.
	return sim.Time(int64(n) * 1_000_000_000_000 / p.bytesPerSec)
}

// send schedules a packet of n bytes entering the pipe at time at and
// returns its delivery time at the far end plus the portion of the
// serialization spent on CRC retransmissions (zero on a clean transfer;
// attribution charges it to fault_retry rather than link time).
func (p *pipe) send(at sim.Time, n int) (delivery, retry sim.Time) {
	start := at
	if p.nextFree > start {
		start = p.nextFree
	}
	if p.sleepAfter > 0 && start-p.nextFree > p.sleepAfter {
		// The pipe slept from sleepAfter past its last activity until now.
		p.slept += start - p.nextFree - p.sleepAfter
		p.wakes.Inc()
		start += p.wakeLat
	}
	ser := p.serTime(n)
	// CRC retries: each retransmission re-serializes the packet after the
	// retry turnaround, occupying the lane group for the whole exchange.
	// Packets are FIFO per pipe, so the draw order is deterministic.
	if r := p.faults.PacketRetries(start); r > 0 {
		retry = sim.Time(r) * (p.retryTurn + p.serTime(n))
		ser += retry
	}
	p.nextFree = start + ser
	p.packets.Inc()
	p.bytes.Add(uint64(n))
	p.busy += ser
	p.tr.Emit(obs.Event{At: int64(start), Type: obs.EvLinkFlit, Vault: p.linkID, Bank: p.dir, Arg: int64(n)})
	return start + ser + p.prop, retry
}

// Link is one full-duplex serial link: a request pipe toward the cube and
// a response pipe back to the processor.
type Link struct {
	req  *pipe
	resp *pipe
}

// NewLink builds a link from the configuration.
func NewLink(l config.Links) *Link {
	return &Link{req: newPipe(l), resp: newPipe(l)}
}

// Instrument publishes the link's packets as EvLinkFlit trace events
// tagged with id. tr may be nil.
func (l *Link) Instrument(tr *obs.Tracer, id int) {
	l.req.tr, l.req.linkID, l.req.dir = tr, int32(id), 0
	l.resp.tr, l.resp.linkID, l.resp.dir = tr, int32(id), 1
}

// SetFaults attaches the fault injector's per-direction CRC sites to this
// link (id is the link number). A nil injector detaches injection. Call
// before the simulation starts.
func (l *Link) SetFaults(inj *fault.Injector, id int) {
	l.req.faults = inj.Link(id, 0)
	l.resp.faults = inj.Link(id, 1)
}

// SendRequest transmits a request packet of n bytes at time at; the result
// is its arrival time at the cube.
func (l *Link) SendRequest(at sim.Time, n int) sim.Time {
	d, _ := l.req.send(at, n)
	return d
}

// SendResponse transmits a response packet of n bytes at time at; the
// result is its arrival time at the processor-side controller.
func (l *Link) SendResponse(at sim.Time, n int) sim.Time {
	d, _ := l.resp.send(at, n)
	return d
}

// SendRequestTimed is SendRequest plus the retransmission time folded
// into the delivery (for latency attribution).
func (l *Link) SendRequestTimed(at sim.Time, n int) (delivery, retry sim.Time) {
	return l.req.send(at, n)
}

// SendResponseTimed is SendResponse plus the retransmission time folded
// into the delivery (for latency attribution).
func (l *Link) SendResponseTimed(at sim.Time, n int) (delivery, retry sim.Time) {
	return l.resp.send(at, n)
}

// LinkStats summarizes one link's traffic.
type LinkStats struct {
	ReqPackets, ReqBytes   uint64
	RespPackets, RespBytes uint64
	ReqBusy, RespBusy      sim.Time
	ReqSlept, RespSlept    sim.Time
	Wakes                  uint64
}

// Stats returns the link's counters.
func (l *Link) Stats() LinkStats {
	return LinkStats{
		ReqPackets:  l.req.packets.Value(),
		ReqBytes:    l.req.bytes.Value(),
		RespPackets: l.resp.packets.Value(),
		RespBytes:   l.resp.bytes.Value(),
		ReqBusy:     l.req.busy,
		RespBusy:    l.resp.busy,
		ReqSlept:    l.req.slept,
		RespSlept:   l.resp.slept,
		Wakes:       l.req.wakes.Value() + l.resp.wakes.Value(),
	}
}
