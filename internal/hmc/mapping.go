// Package hmc assembles the full Hybrid Memory Cube: the RoRaBaVaCo
// address mapping of Table I, the four full-duplex serial links connecting
// the processor-side controller to the cube, the internal crossbar, and the
// 32 vault controllers (package vault) that do the real work.
package hmc

import (
	"fmt"
	"math/bits"

	"camps/internal/config"
)

// Address is a physical byte address within the cube.
type Address uint64

// Location is a fully decoded address.
type Location struct {
	Vault int
	Bank  int
	Row   int64
	Line  int // cache-line index within the row
}

// Mapping implements the configured address interleave. The paper's
// default is RoRaBaVaCo (row-rank-bank-vault-column): the low bits select
// the byte within a row (the column), then the vault, then the bank, then
// the row (HMC has no ranks). Consecutive rows of one bank are therefore
// 512 KB apart in the physical address space, while consecutive 1 KB
// blocks rotate across vaults. RoRaVaBaCo and VaultXOR variants are
// provided for mapping-sensitivity ablations.
type Mapping struct {
	scheme    config.AddressInterleave
	lineShift uint // log2(line bytes)
	lineBits  uint // log2(lines per row)
	vaultBits uint
	bankBits  uint
	rowBits   uint
	lineBytes uint64
	linesMask uint64
	vaultMask uint64
	bankMask  uint64
	rowMask   uint64
	capacity  uint64
}

// NewMapping derives the mapping from the configuration.
func NewMapping(cfg config.Config) Mapping {
	m := Mapping{
		scheme:    cfg.HMC.Interleave,
		lineShift: uint(bits.TrailingZeros64(uint64(cfg.L3.LineBytes))),
		lineBits:  uint(bits.TrailingZeros64(uint64(cfg.LinesPerRow()))),
		vaultBits: uint(bits.TrailingZeros64(uint64(cfg.HMC.Vaults))),
		bankBits:  uint(bits.TrailingZeros64(uint64(cfg.HMC.Banks()))),
		rowBits:   uint(bits.TrailingZeros64(uint64(cfg.HMC.RowsPerBank))),
		lineBytes: uint64(cfg.L3.LineBytes),
	}
	m.linesMask = 1<<m.lineBits - 1
	m.vaultMask = 1<<m.vaultBits - 1
	m.bankMask = 1<<m.bankBits - 1
	m.rowMask = 1<<m.rowBits - 1
	m.capacity = uint64(cfg.HMC.CapacityBytes())
	return m
}

// Capacity returns the cube capacity in bytes.
func (m Mapping) Capacity() uint64 { return m.capacity }

// Scheme returns the interleave in use.
func (m Mapping) Scheme() config.AddressInterleave { return m.scheme }

// Decode splits a byte address into its location. Addresses beyond the
// cube capacity wrap (the row field simply truncates), matching how real
// controllers mask physical addresses.
func (m Mapping) Decode(addr Address) Location {
	a := uint64(addr) >> m.lineShift // whole-line granularity
	line := a & m.linesMask
	a >>= m.lineBits
	var vlt, bank, row uint64
	switch m.scheme {
	case config.RoRaVaBaCo:
		bank = a & m.bankMask
		a >>= m.bankBits
		vlt = a & m.vaultMask
		a >>= m.vaultBits
		row = a & m.rowMask
	case config.VaultXOR:
		vlt = a & m.vaultMask
		a >>= m.vaultBits
		bank = a & m.bankMask
		a >>= m.bankBits
		row = a & m.rowMask
		vlt ^= row & m.vaultMask
	default: // RoRaBaVaCo
		vlt = a & m.vaultMask
		a >>= m.vaultBits
		bank = a & m.bankMask
		a >>= m.bankBits
		row = a & m.rowMask
	}
	return Location{Vault: int(vlt), Bank: int(bank), Row: int64(row), Line: int(line)}
}

// Encode reassembles a location into the lowest byte address of its line.
func (m Mapping) Encode(loc Location) Address {
	if loc.Vault < 0 || uint64(loc.Vault) > m.vaultMask {
		panic(fmt.Sprintf("hmc: vault %d out of range", loc.Vault))
	}
	if loc.Bank < 0 || uint64(loc.Bank) > m.bankMask {
		panic(fmt.Sprintf("hmc: bank %d out of range", loc.Bank))
	}
	if loc.Row < 0 || uint64(loc.Row) > m.rowMask {
		panic(fmt.Sprintf("hmc: row %d out of range", loc.Row))
	}
	if loc.Line < 0 || uint64(loc.Line) > m.linesMask {
		panic(fmt.Sprintf("hmc: line %d out of range", loc.Line))
	}
	row := uint64(loc.Row)
	vlt := uint64(loc.Vault)
	bank := uint64(loc.Bank)
	var a uint64
	switch m.scheme {
	case config.RoRaVaBaCo:
		a = row
		a = a<<m.vaultBits | vlt
		a = a<<m.bankBits | bank
	case config.VaultXOR:
		a = row
		a = a<<m.bankBits | bank
		a = a<<m.vaultBits | (vlt ^ (row & m.vaultMask))
	default:
		a = row
		a = a<<m.bankBits | bank
		a = a<<m.vaultBits | vlt
	}
	a = a<<m.lineBits | uint64(loc.Line)
	return Address(a << m.lineShift)
}

// LineAddress truncates an address to its cache-line base.
func (m Mapping) LineAddress(addr Address) Address {
	return addr &^ Address(m.lineBytes-1)
}
