package dram

import (
	"fmt"

	"camps/internal/sim"
)

// NoRow is the OpenRow value of a precharged bank.
const NoRow int64 = -1

// Ops counts the DRAM operations a bank has performed; the energy model
// multiplies these by per-operation energies.
type Ops struct {
	Activates  uint64
	Precharges uint64
	Reads      uint64 // single-line column reads
	Writes     uint64 // single-line column writes
	RowFetches uint64 // whole-row transfers bank -> prefetch buffer
	RowStores  uint64 // whole-row transfers prefetch buffer -> bank
	Refreshes  uint64
}

// Add accumulates another Ops into this one.
func (o *Ops) Add(b Ops) {
	o.Activates += b.Activates
	o.Precharges += b.Precharges
	o.Reads += b.Reads
	o.Writes += b.Writes
	o.RowFetches += b.RowFetches
	o.RowStores += b.RowStores
	o.Refreshes += b.Refreshes
}

// Bank is one DRAM bank's row buffer and timing state.
type Bank struct {
	t       Timing
	openRow int64

	// Earliest legal issue times for each command class.
	nextAct sim.Time
	nextPre sim.Time
	nextCol sim.Time // next RD or WR

	ops Ops
}

// NewBank returns a precharged bank.
func NewBank(t Timing) *Bank {
	return &Bank{t: t, openRow: NoRow}
}

// OpenRow returns the currently open row, or NoRow.
func (b *Bank) OpenRow() int64 { return b.openRow }

// IsOpen reports whether any row is open.
func (b *Bank) IsOpen() bool { return b.openRow != NoRow }

// Ops returns the operation counters.
func (b *Bank) Ops() Ops { return b.ops }

// EarliestActivate returns the earliest time an ACT may issue.
func (b *Bank) EarliestActivate() sim.Time { return b.nextAct }

// EarliestPrecharge returns the earliest time a PRE may issue.
func (b *Bank) EarliestPrecharge() sim.Time { return b.nextPre }

// EarliestColumn returns the earliest time a RD/WR may issue.
func (b *Bank) EarliestColumn() sim.Time { return b.nextCol }

// Activate opens row at time at (which must respect EarliestActivate) and
// returns the time the row becomes usable (at+tRCD).
func (b *Bank) Activate(at sim.Time, row int64) sim.Time {
	if b.openRow != NoRow {
		panic(fmt.Sprintf("dram: ACT on open bank (row %d open)", b.openRow))
	}
	if at < b.nextAct {
		panic(fmt.Sprintf("dram: ACT at %v before earliest %v", at, b.nextAct))
	}
	if row < 0 {
		panic("dram: ACT of negative row")
	}
	b.openRow = row
	b.nextCol = at + b.t.RCD
	b.nextPre = at + b.t.RAS
	b.ops.Activates++
	return at + b.t.RCD
}

// Precharge closes the open row at time at and returns the time the bank is
// ready for the next ACT (at+tRP).
func (b *Bank) Precharge(at sim.Time) sim.Time {
	if b.openRow == NoRow {
		panic("dram: PRE on closed bank")
	}
	if at < b.nextPre {
		panic(fmt.Sprintf("dram: PRE at %v before earliest %v", at, b.nextPre))
	}
	b.openRow = NoRow
	b.nextAct = at + b.t.RP
	b.ops.Precharges++
	return at + b.t.RP
}

// Read issues a single-line column read at time at. It returns the time the
// line's data transfer completes (at + tCL + tBL).
func (b *Bank) Read(at sim.Time) sim.Time {
	b.checkColumn(at, "RD")
	b.nextCol = at + b.t.CCD
	if pre := at + b.t.RTP; pre > b.nextPre {
		b.nextPre = pre
	}
	b.ops.Reads++
	return at + b.t.CL + b.t.BL
}

// Write issues a single-line column write at time at. It returns the time
// the write burst completes on the data bus (at + tCWL + tBL); the bank
// cannot precharge until tWR after that.
func (b *Bank) Write(at sim.Time) sim.Time {
	b.checkColumn(at, "WR")
	b.nextCol = at + b.t.CCD
	end := at + b.t.CWL + b.t.BL
	if pre := end + b.t.WR; pre > b.nextPre {
		b.nextPre = pre
	}
	b.ops.Writes++
	return end
}

// FetchRow streams the whole open row (lines consecutive bursts) to the
// vault's prefetch buffer over the TSVs. It returns the completion time of
// the last burst. The caller is expected to precharge afterwards, per the
// CAMPS policy.
func (b *Bank) FetchRow(at sim.Time, lines int) sim.Time {
	b.checkColumn(at, "FETCH")
	if lines <= 0 {
		panic("dram: FetchRow needs at least one line")
	}
	end := at + b.t.CL + sim.Time(lines)*b.t.BL
	b.nextCol = end
	if pre := end; pre > b.nextPre {
		b.nextPre = pre
	}
	b.ops.RowFetches++
	return end
}

// StoreRow streams a whole dirty row from the prefetch buffer back into the
// open row. It returns the completion time; precharge is legal tWR later.
func (b *Bank) StoreRow(at sim.Time, lines int) sim.Time {
	b.checkColumn(at, "STORE")
	if lines <= 0 {
		panic("dram: StoreRow needs at least one line")
	}
	end := at + b.t.CWL + sim.Time(lines)*b.t.BL
	b.nextCol = end
	if pre := end + b.t.WR; pre > b.nextPre {
		b.nextPre = pre
	}
	b.ops.RowStores++
	return end
}

// Refresh performs a refresh starting at time at; the bank must be
// precharged. It returns the time the bank may activate again.
func (b *Bank) Refresh(at sim.Time) sim.Time {
	if b.openRow != NoRow {
		panic("dram: REF on open bank")
	}
	if at < b.nextAct {
		panic(fmt.Sprintf("dram: REF at %v before earliest ACT %v", at, b.nextAct))
	}
	b.nextAct = at + b.t.RFC
	b.ops.Refreshes++
	return b.nextAct
}

// CheckInvariant validates the bank's structural invariants: every ACT
// opens a row and every PRE closes one, so an open bank has performed
// exactly one more activate than precharges and a closed bank an equal
// number (refresh requires the precharged state and changes neither).
// It is read-only and is wired into the simulator's epoch checker.
func (b *Bank) CheckInvariant() error {
	if b.openRow < NoRow {
		return fmt.Errorf("dram: open row %d below NoRow", b.openRow)
	}
	want := b.ops.Precharges
	if b.openRow != NoRow {
		want++
	}
	if b.ops.Activates != want {
		return fmt.Errorf("dram: %d activates vs %d precharges with open row %d",
			b.ops.Activates, b.ops.Precharges, b.openRow)
	}
	return nil
}

func (b *Bank) checkColumn(at sim.Time, op string) {
	if b.openRow == NoRow {
		panic(fmt.Sprintf("dram: %s on closed bank", op))
	}
	if at < b.nextCol {
		panic(fmt.Sprintf("dram: %s at %v before earliest %v", op, at, b.nextCol))
	}
}

// RowState classifies what servicing a request for row means given the
// bank's current state.
type RowState int

const (
	// RowHit: the target row is open.
	RowHit RowState = iota
	// RowMiss: the bank is precharged (ACT needed, no PRE).
	RowMiss
	// RowConflict: a different row is open (PRE+ACT needed).
	RowConflict
)

// String returns the conventional name of the state.
func (s RowState) String() string {
	switch s {
	case RowHit:
		return "hit"
	case RowMiss:
		return "miss"
	case RowConflict:
		return "conflict"
	}
	return "unknown"
}

// Classify returns how a request for row would be served right now.
func (b *Bank) Classify(row int64) RowState {
	switch b.openRow {
	case row:
		return RowHit
	case NoRow:
		return RowMiss
	default:
		return RowConflict
	}
}
