package dram

import (
	"math/rand"
	"testing"

	"camps/internal/config"
	"camps/internal/sim"
)

func testTiming() Timing {
	cfg := config.Default()
	return NewTiming(cfg.HMC.Timing, cfg.DRAMClock())
}

func TestNewTimingConversion(t *testing.T) {
	tm := testTiming()
	// DDR3-1600 bus clock: 1250 ps/cycle, tRCD = 11 cycles.
	if tm.RCD != 13750 {
		t.Fatalf("RCD = %v ps, want 13750", tm.RCD)
	}
	if tm.RP != tm.RCD || tm.CL != tm.RCD {
		t.Fatalf("tRP/tCL should equal tRCD per Table I: %v %v %v", tm.RCD, tm.RP, tm.CL)
	}
	if tm.BL != 5000 {
		t.Fatalf("BL = %v, want 4 cycles = 5000 ps", tm.BL)
	}
}

func TestBankActivateReadPrecharge(t *testing.T) {
	b := NewBank(testTiming())
	tm := testTiming()
	if b.IsOpen() {
		t.Fatal("new bank should be precharged")
	}
	if b.Classify(5) != RowMiss {
		t.Fatal("closed bank should classify as miss")
	}

	ready := b.Activate(0, 5)
	if ready != tm.RCD {
		t.Fatalf("row ready at %v, want %v", ready, tm.RCD)
	}
	if !b.IsOpen() || b.OpenRow() != 5 {
		t.Fatal("row 5 should be open")
	}
	if b.Classify(5) != RowHit || b.Classify(6) != RowConflict {
		t.Fatal("classification after ACT wrong")
	}

	done := b.Read(ready)
	if done != ready+tm.CL+tm.BL {
		t.Fatalf("read done at %v, want %v", done, ready+tm.CL+tm.BL)
	}

	// tRAS dominates: precharge is not legal before ACT+tRAS.
	if b.EarliestPrecharge() < tm.RAS {
		t.Fatalf("earliest PRE %v violates tRAS %v", b.EarliestPrecharge(), tm.RAS)
	}
	preAt := b.EarliestPrecharge()
	actReady := b.Precharge(preAt)
	if actReady != preAt+tm.RP {
		t.Fatalf("bank ready at %v, want %v", actReady, preAt+tm.RP)
	}
	if b.IsOpen() {
		t.Fatal("bank should be closed after PRE")
	}
	if b.EarliestActivate() != actReady {
		t.Fatalf("earliest ACT %v, want %v", b.EarliestActivate(), actReady)
	}
	ops := b.Ops()
	if ops.Activates != 1 || ops.Reads != 1 || ops.Precharges != 1 {
		t.Fatalf("ops = %+v", ops)
	}
}

func TestBankWriteRecovery(t *testing.T) {
	tm := testTiming()
	b := NewBank(tm)
	ready := b.Activate(0, 1)
	end := b.Write(ready)
	if end != ready+tm.CWL+tm.BL {
		t.Fatalf("write end = %v, want %v", end, ready+tm.CWL+tm.BL)
	}
	if b.EarliestPrecharge() != end+tm.WR {
		t.Fatalf("earliest PRE after write = %v, want %v", b.EarliestPrecharge(), end+tm.WR)
	}
}

func TestBankColumnToColumn(t *testing.T) {
	tm := testTiming()
	b := NewBank(tm)
	ready := b.Activate(0, 1)
	b.Read(ready)
	if b.EarliestColumn() != ready+tm.CCD {
		t.Fatalf("tCCD not enforced: next col %v, want %v", b.EarliestColumn(), ready+tm.CCD)
	}
}

func TestBankFetchRow(t *testing.T) {
	tm := testTiming()
	b := NewBank(tm)
	ready := b.Activate(0, 9)
	end := b.FetchRow(ready, 16)
	want := ready + tm.CL + 16*tm.BL
	if end != want {
		t.Fatalf("row fetch end = %v, want %v", end, want)
	}
	if b.Ops().RowFetches != 1 {
		t.Fatal("row fetch not counted")
	}
	// Row fetch holds the column path until it completes.
	if b.EarliestColumn() != end {
		t.Fatalf("column free at %v, want %v", b.EarliestColumn(), end)
	}
	// CAMPS precharges after a fetch; must be legal at max(end, tRAS).
	preAt := b.EarliestPrecharge()
	if preAt < end {
		t.Fatalf("PRE legal at %v before fetch completes at %v", preAt, end)
	}
	b.Precharge(preAt)
}

func TestBankStoreRow(t *testing.T) {
	tm := testTiming()
	b := NewBank(tm)
	ready := b.Activate(0, 3)
	end := b.StoreRow(ready, 16)
	want := ready + tm.CWL + 16*tm.BL
	if end != want {
		t.Fatalf("row store end = %v, want %v", end, want)
	}
	if b.EarliestPrecharge() != end+tm.WR {
		t.Fatal("write recovery not enforced after row store")
	}
	if b.Ops().RowStores != 1 {
		t.Fatal("row store not counted")
	}
}

func TestBankRefresh(t *testing.T) {
	tm := testTiming()
	b := NewBank(tm)
	ready := b.Refresh(0)
	if ready != tm.RFC {
		t.Fatalf("refresh ready at %v, want %v", ready, tm.RFC)
	}
	if b.EarliestActivate() != tm.RFC {
		t.Fatal("ACT should wait for tRFC")
	}
	b.Activate(tm.RFC, 1)
}

func TestBankIllegalCommandsPanic(t *testing.T) {
	tm := testTiming()
	cases := []struct {
		name string
		fn   func(b *Bank)
	}{
		{"ACT on open bank", func(b *Bank) { b.Activate(0, 1); b.Activate(b.EarliestActivate(), 2) }},
		{"ACT in the past", func(b *Bank) {
			b.Activate(0, 1)
			b.Precharge(b.EarliestPrecharge())
			b.Activate(0, 2)
		}},
		{"PRE on closed bank", func(b *Bank) { b.Precharge(0) }},
		{"PRE before tRAS", func(b *Bank) { b.Activate(0, 1); b.Precharge(1) }},
		{"RD on closed bank", func(b *Bank) { b.Read(0) }},
		{"RD before tRCD", func(b *Bank) { b.Activate(0, 1); b.Read(1) }},
		{"WR on closed bank", func(b *Bank) { b.Write(0) }},
		{"REF on open bank", func(b *Bank) { b.Activate(0, 1); b.Refresh(tm.RAS * 2) }},
		{"fetch zero lines", func(b *Bank) { r := b.Activate(0, 1); b.FetchRow(r, 0) }},
		{"store zero lines", func(b *Bank) { r := b.Activate(0, 1); b.StoreRow(r, 0) }},
		{"negative row", func(b *Bank) { b.Activate(0, -2) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.fn(NewBank(tm))
		})
	}
}

func TestOpsAdd(t *testing.T) {
	a := Ops{Activates: 1, Reads: 2, RowFetches: 3}
	a.Add(Ops{Activates: 10, Writes: 5, Refreshes: 7, Precharges: 2, RowStores: 1})
	if a.Activates != 11 || a.Reads != 2 || a.Writes != 5 || a.RowFetches != 3 ||
		a.Refreshes != 7 || a.Precharges != 2 || a.RowStores != 1 {
		t.Fatalf("Ops.Add wrong: %+v", a)
	}
}

func TestRowStateString(t *testing.T) {
	if RowHit.String() != "hit" || RowMiss.String() != "miss" || RowConflict.String() != "conflict" {
		t.Fatal("RowState strings wrong")
	}
	if RowState(99).String() != "unknown" {
		t.Fatal("unknown RowState string wrong")
	}
}

// Property: a random but legality-respecting command stream never panics and
// keeps earliest-issue times monotonically nondecreasing.
func TestBankRandomLegalStream(t *testing.T) {
	tm := testTiming()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		b := NewBank(tm)
		now := sim.Time(0)
		for step := 0; step < 500; step++ {
			if b.IsOpen() {
				switch rng.Intn(5) {
				case 0:
					at := maxTime(now, b.EarliestPrecharge())
					now = b.Precharge(at)
				case 1, 2:
					at := maxTime(now, b.EarliestColumn())
					now = b.Read(at)
				case 3:
					at := maxTime(now, b.EarliestColumn())
					now = b.Write(at)
				case 4:
					at := maxTime(now, b.EarliestColumn())
					now = b.FetchRow(at, 16)
				}
			} else {
				if rng.Intn(8) == 0 {
					at := maxTime(now, b.EarliestActivate())
					now = b.Refresh(at)
				} else {
					at := maxTime(now, b.EarliestActivate())
					now = b.Activate(at, int64(rng.Intn(128)))
				}
			}
		}
		ops := b.Ops()
		if ops.Activates == 0 {
			t.Fatal("random stream never activated")
		}
		// Every PRE must pair with a prior ACT.
		if ops.Precharges > ops.Activates {
			t.Fatalf("more precharges (%d) than activates (%d)", ops.Precharges, ops.Activates)
		}
	}
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
