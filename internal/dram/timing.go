// Package dram models HMC DRAM banks: the row-buffer state machine, the
// DDR3-1600-like timing constraints of Table I, refresh, and per-bank
// operation counters that feed the energy model.
//
// Banks are passive timing calculators: the vault controller decides *what*
// to issue and *when*; a Bank enforces legality (earliest-issue times) and
// records state transitions. All times are absolute simulation timestamps.
package dram

import (
	"camps/internal/config"
	"camps/internal/sim"
)

// Timing holds the bank timing constraints as durations (picoseconds),
// converted once from the cycle counts in the configuration.
type Timing struct {
	RCD  sim.Time // ACT -> RD/WR
	RP   sim.Time // PRE -> ACT
	CL   sim.Time // RD -> first data
	BL   sim.Time // burst occupancy for one 64B line
	RAS  sim.Time // ACT -> PRE
	WR   sim.Time // end of write burst -> PRE
	RTP  sim.Time // RD -> PRE
	CCD  sim.Time // column-to-column
	CWL  sim.Time // WR -> first data
	RRD  sim.Time // ACT -> ACT across banks (enforced by the vault)
	FAW  sim.Time // four-activation window (enforced by the vault)
	RFC  sim.Time // refresh duration
	REFI sim.Time // refresh interval
}

// NewTiming converts cycle-denominated configuration timing into durations
// using the DRAM bus clock.
func NewTiming(t config.DRAMTiming, clk sim.Clock) Timing {
	return Timing{
		RCD:  clk.Cycles(t.TRCD),
		RP:   clk.Cycles(t.TRP),
		CL:   clk.Cycles(t.TCL),
		BL:   clk.Cycles(t.TBL),
		RAS:  clk.Cycles(t.TRAS),
		WR:   clk.Cycles(t.TWR),
		RTP:  clk.Cycles(t.TRTP),
		CCD:  clk.Cycles(t.TCCD),
		CWL:  clk.Cycles(t.TCWL),
		RRD:  clk.Cycles(t.TRRD),
		FAW:  clk.Cycles(t.TFAW),
		RFC:  clk.Cycles(t.TRFC),
		REFI: clk.Cycles(t.TREFI),
	}
}
