package config

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultMatchesTableI(t *testing.T) {
	c := Default()
	if c.Processor.Cores != 8 || c.Processor.FreqMHz != 3000 || c.Processor.IssueWidth != 4 {
		t.Errorf("processor = %+v, want 8 cores @ 3GHz, width 4", c.Processor)
	}
	if c.L1.SizeBytes != 32<<10 || c.L1.Ways != 2 || c.L1.HitLatency != 2 {
		t.Errorf("L1 = %+v, want 32KB 2-way 2cyc", c.L1)
	}
	if c.L2.SizeBytes != 256<<10 || c.L2.Ways != 4 || c.L2.HitLatency != 6 {
		t.Errorf("L2 = %+v, want 256KB 4-way 6cyc", c.L2)
	}
	if c.L3.SizeBytes != 16<<20 || c.L3.Ways != 16 || c.L3.HitLatency != 20 || !c.L3.Shared {
		t.Errorf("L3 = %+v, want 16MB 16-way 20cyc shared", c.L3)
	}
	if c.L3.LineBytes != 64 {
		t.Errorf("line = %d, want 64", c.L3.LineBytes)
	}
	if c.HMC.Vaults != 32 || c.HMC.Layers != 8 || c.HMC.BanksPerLayer != 2 {
		t.Errorf("HMC = %+v, want 32 vaults, 8 layers, 2 banks/layer", c.HMC)
	}
	if c.HMC.Banks() != 16 {
		t.Errorf("banks per vault = %d, want 16", c.HMC.Banks())
	}
	if c.HMC.RowBytes != 1024 {
		t.Errorf("row = %d, want 1KB", c.HMC.RowBytes)
	}
	tm := c.HMC.Timing
	if tm.TRCD != 11 || tm.TRP != 11 || tm.TCL != 11 {
		t.Errorf("timing = %+v, want tRCD=tRP=tCL=11", tm)
	}
	if c.HMC.ReadQueue != 32 || c.HMC.WriteQueue != 32 {
		t.Errorf("queues = %d/%d, want 32/32", c.HMC.ReadQueue, c.HMC.WriteQueue)
	}
	if c.Links.Count != 4 || c.Links.LanesPerDir != 16 {
		t.Errorf("links = %+v, want 4 links x 16 lanes", c.Links)
	}
	if c.PFBuffer.SizeBytes != 16<<10 || c.PFBuffer.Entries() != 16 || c.PFBuffer.HitLatency != 22 {
		t.Errorf("pfbuffer = %+v, want 16KB / 16 entries / 22cyc", c.PFBuffer)
	}
	if c.CAMPS.UtilThreshold != 4 || c.CAMPS.CTEntries != 32 {
		t.Errorf("CAMPS = %+v, want threshold 4, CT 32", c.CAMPS)
	}
}

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestCapacity(t *testing.T) {
	c := Default()
	want := int64(4) << 30 // 32 vaults * 16 banks * 8192 rows * 1KB
	if got := c.HMC.CapacityBytes(); got != want {
		t.Fatalf("capacity = %d, want %d", got, want)
	}
}

func TestLinesPerRow(t *testing.T) {
	if got := Default().LinesPerRow(); got != 16 {
		t.Fatalf("lines per row = %d, want 16", got)
	}
}

func TestLinkBandwidth(t *testing.T) {
	c := Default()
	// 16 lanes * 12 Gbps / 8 = 24 GB/s per direction.
	if got := c.Links.BytesPerSecond(); got != 24_000_000_000 {
		t.Fatalf("link bandwidth = %d B/s, want 24e9", got)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"zero cores", func(c *Config) { c.Processor.Cores = 0 }, "cores"},
		{"bad line", func(c *Config) { c.L1.LineBytes = 48 }, "line size"},
		{"mismatched lines", func(c *Config) { c.L2.LineBytes = 128 }, "match"},
		{"non-pow2 vaults", func(c *Config) { c.HMC.Vaults = 33 }, "vault"},
		{"row smaller than line", func(c *Config) { c.HMC.RowBytes = 32 }, ""},
		{"pf line mismatch", func(c *Config) { c.PFBuffer.LineBytes = 512 }, "prefetch buffer line"},
		{"refresh window", func(c *Config) { c.HMC.Timing.TREFI = 10 }, "tREFI"},
		{"zero threshold", func(c *Config) { c.CAMPS.UtilThreshold = 0 }, "threshold"},
		{"mmd thresholds", func(c *Config) { c.MMD.LowAccuracy = 0.9 }, "MMD"},
		{"zero queue", func(c *Config) { c.HMC.ReadQueue = 0 }, "queue"},
		{"zero ghb width", func(c *Config) { c.GHB.Width = 0 }, "GHB"},
		{"zero sisb degree", func(c *Config) { c.SISB.Degree = 0 }, "SISB"},
		{"zero bo rounds", func(c *Config) { c.BestOffset.RoundMax = 0 }, "best-offset"},
		{"zero hybrid epoch", func(c *Config) { c.Hybrid.EpochRequests = 0 }, "hybrid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Default()
			tc.mutate(&c)
			err := c.Validate()
			if err == nil {
				t.Fatal("Validate accepted a broken config")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// Regression: prefetch.Fetch carries touched lines as a uint64 bitmap, so
// a geometry with more than 64 lines per row would silently truncate
// utilization tracking. Validate must reject it with a typed error.
func TestValidateRejectsOversizedLineBitmap(t *testing.T) {
	c := Default()
	c.HMC.RowBytes = 16384 // 256 lines of 64 bytes
	err := c.Validate()
	if err == nil {
		t.Fatal("Validate accepted 256 lines per row")
	}
	if !errors.Is(err, ErrLineBitmap) {
		t.Fatalf("error %q is not ErrLineBitmap", err)
	}
	// Exactly 64 lines still fits the bitmap.
	c = Default()
	c.HMC.RowBytes = 64 * c.L3.LineBytes
	if err := c.Validate(); errors.Is(err, ErrLineBitmap) {
		t.Fatalf("64 lines per row rejected: %v", err)
	}
}

func TestValidateJoinsMultipleErrors(t *testing.T) {
	c := Default()
	c.Processor.Cores = 0
	c.HMC.Vaults = 3
	err := c.Validate()
	if err == nil {
		t.Fatal("expected errors")
	}
	msg := err.Error()
	if !strings.Contains(msg, "cores") || !strings.Contains(msg, "vault") {
		t.Fatalf("joined error missing parts: %q", msg)
	}
}

// Property: Validate never panics and always returns a verdict, for any
// perturbation of the numeric fields.
func TestValidateNeverPanics(t *testing.T) {
	prop := func(cores, ways, line, vaults, rows, entries int16, thr int8) bool {
		c := Default()
		c.Processor.Cores = int(cores)
		c.L1.Ways = int(ways)
		c.L2.LineBytes = int(line)
		c.HMC.Vaults = int(vaults)
		c.HMC.RowsPerBank = int(rows)
		c.PFBuffer.SizeBytes = int64(entries)
		c.CAMPS.UtilThreshold = int(thr)
		_ = c.Validate() // must not panic
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyStrings(t *testing.T) {
	if OpenPage.String() != "open" || ClosedPage.String() != "closed" {
		t.Fatal("page policy strings")
	}
	if FRFCFS.String() != "FR-FCFS" || FCFS.String() != "FCFS" {
		t.Fatal("scheduler strings")
	}
	if RoRaBaVaCo.String() != "RoRaBaVaCo" || RoRaVaBaCo.String() != "RoRaVaBaCo" ||
		VaultXOR.String() != "VaultXOR" {
		t.Fatal("interleave strings")
	}
}

func TestDefaultKnobsAreThePapers(t *testing.T) {
	c := Default()
	if c.HMC.PagePolicy != OpenPage {
		t.Error("default page policy must be open (Table I)")
	}
	if c.HMC.Scheduler != FRFCFS {
		t.Error("default scheduler must be FR-FCFS (Table I)")
	}
	if c.HMC.Interleave != RoRaBaVaCo {
		t.Error("default interleave must be RoRaBaVaCo (Table I)")
	}
	if c.HMC.TSVGBps != 0 {
		t.Error("TSV path must be unmodeled by default (paper premise)")
	}
	if c.Links.SleepAfter != 0 {
		t.Error("link power management must be off by default")
	}
	if c.Links.VaultPortGBps != 0 {
		t.Error("vault ingress bound must be off by default")
	}
	if c.Processor.L2PrefetchDegree != 0 {
		t.Error("core-side prefetcher must be off by default")
	}
	if c.PFBuffer.WritebackDirtyOnly {
		t.Error("eviction writeback must follow the paper (write all) by default")
	}
}
