// Package config holds the simulated-system configuration. The defaults
// reproduce Table I of the CAMPS paper (ICPP 2018): an 8-core 3 GHz
// processor with a three-level cache hierarchy in front of a 32-vault HMC
// whose vault controllers run DDR3-1600-like DRAM timing and host a 16 KB
// fully associative prefetch buffer each.
package config

import (
	"errors"
	"fmt"

	"camps/internal/sim"
)

// Processor describes the core model.
type Processor struct {
	Cores      int   // number of cores
	FreqMHz    int64 // core clock
	IssueWidth int   // non-memory instructions retired per cycle
	WindowSize int   // max in-flight L1 misses per core (MLP window)

	// L2PrefetchDegree enables a core-side stride prefetcher on each
	// core's L2 miss stream with the given degree (0 disables it — the
	// paper's configuration). Used by the core-side vs memory-side
	// ablation motivated by the paper's §2.4.
	L2PrefetchDegree int
}

// CacheLevel describes one cache level.
type CacheLevel struct {
	SizeBytes  int64
	Ways       int
	LineBytes  int
	HitLatency int64 // in CPU cycles
	MSHRs      int
	Shared     bool
}

// DRAMTiming holds per-bank timing constraints in DRAM bus cycles.
// The paper fixes tRCD, tRP and tCL at 11 cycles (DDR3-1600); the remaining
// constraints use standard DDR3-1600 values so command interactions beyond
// the paper's three are still legal.
type DRAMTiming struct {
	TRCD  int64 // ACT -> RD/WR
	TRP   int64 // PRE -> ACT
	TCL   int64 // RD -> first data
	TBL   int64 // data burst occupancy for one 64B line
	TRAS  int64 // ACT -> PRE (min row open)
	TWR   int64 // end of write data -> PRE
	TRTP  int64 // RD -> PRE
	TCCD  int64 // RD -> RD / column-to-column
	TCWL  int64 // WR -> first data
	TRRD  int64 // ACT -> ACT, different banks in a vault
	TFAW  int64 // four-activation window per vault
	TRFC  int64 // refresh duration
	TREFI int64 // refresh interval
}

// PagePolicy selects what happens to a row after a demand column access.
type PagePolicy int

const (
	// OpenPage leaves the row open for potential row-buffer hits — the
	// paper's configuration (Table I).
	OpenPage PagePolicy = iota
	// ClosedPage precharges immediately after every demand access,
	// trading hits for conflict immunity; provided for ablations.
	ClosedPage
)

// String names the policy.
func (p PagePolicy) String() string {
	if p == ClosedPage {
		return "closed"
	}
	return "open"
}

// SchedPolicy selects the vault controller's request scheduler.
type SchedPolicy int

const (
	// FRFCFS is first-ready, first-come-first-serve [31] — the paper's
	// configuration: row-buffer hits bypass older requests.
	FRFCFS SchedPolicy = iota
	// FCFS serves strictly oldest-first; provided for ablations.
	FCFS
)

// String names the policy.
func (s SchedPolicy) String() string {
	if s == FCFS {
		return "FCFS"
	}
	return "FR-FCFS"
}

// AddressInterleave selects the physical address mapping.
type AddressInterleave int

const (
	// RoRaBaVaCo is the paper's mapping (Table I): row, rank, bank, vault,
	// column from MSB to LSB. Consecutive 1 KB blocks rotate across
	// vaults; rows of one bank are 512 KB apart.
	RoRaBaVaCo AddressInterleave = iota
	// RoRaVaBaCo swaps bank and vault: consecutive 1 KB blocks rotate
	// across the banks of one vault before moving to the next vault.
	RoRaVaBaCo
	// VaultXOR is RoRaBaVaCo with the vault index XOR-folded with the low
	// row bits, a classic conflict-spreading hash.
	VaultXOR
)

// String names the interleave.
func (a AddressInterleave) String() string {
	switch a {
	case RoRaVaBaCo:
		return "RoRaVaBaCo"
	case VaultXOR:
		return "VaultXOR"
	}
	return "RoRaBaVaCo"
}

// HMC describes the cube organization.
type HMC struct {
	Vaults        int
	Layers        int
	BanksPerLayer int // banks per vault per layer
	RowBytes      int // row buffer size
	RowsPerBank   int
	FreqMHz       int64 // DRAM bus clock (DDR3-1600 -> 800 MHz)
	ReadQueue     int
	WriteQueue    int
	PagePolicy    PagePolicy
	Scheduler     SchedPolicy
	Interleave    AddressInterleave
	// TSVGBps bounds the per-vault TSV data path used by whole-row
	// transfers (prefetch fetches and writebacks), in GB/s. 0 models the
	// paper's premise of effectively unlimited internal bandwidth; finite
	// values exist to test when that premise breaks (ablation).
	TSVGBps int64
	Timing  DRAMTiming
}

// Banks returns the number of banks in one vault.
func (h HMC) Banks() int { return h.Layers * h.BanksPerLayer }

// CapacityBytes returns the total cube capacity.
func (h HMC) CapacityBytes() int64 {
	return int64(h.Vaults) * int64(h.Banks()) * int64(h.RowsPerBank) * int64(h.RowBytes)
}

// Links describes the processor-to-cube serial links.
type Links struct {
	Count        int
	LanesPerDir  int
	LaneGbps     int64
	HeaderBytes  int      // packet header+tail overhead
	PropDelay    sim.Time // one-way propagation + SerDes latency
	SwitchDelay  sim.Time // crossbar traversal
	CtrlOverhead sim.Time // external HMC controller processing per packet

	// Link power management (an extension after Ahn et al. [13], which the
	// paper cites; disabled by default). A link direction idle for longer
	// than SleepAfter enters a low-power state and pays WakeLatency on the
	// next packet.
	SleepAfter  sim.Time // 0 disables power management
	WakeLatency sim.Time

	// VaultPortGBps bounds each vault's crossbar ingress port, serializing
	// request packets into the vault. 0 (default) leaves the crossbar a
	// pure fixed-latency switch.
	VaultPortGBps int64

	// RetryTurnaround is the protocol latency of one link-level CRC retry
	// (error detection + retry-pointer exchange) on top of the packet's
	// re-serialization. It is a hardware property; whether retries happen
	// at all is governed by the fault-injection spec.
	RetryTurnaround sim.Time
}

// BytesPerSecond returns one link's per-direction bandwidth in bytes/s.
func (l Links) BytesPerSecond() int64 {
	return int64(l.LanesPerDir) * l.LaneGbps * 1_000_000_000 / 8
}

// PFBuffer describes the per-vault prefetch buffer.
type PFBuffer struct {
	SizeBytes  int64
	LineBytes  int   // one entry = one DRAM row
	HitLatency int64 // CPU cycles
	// WritebackDirtyOnly stores only written-to rows back to the bank on
	// eviction. The paper's design writes every replaced row back ("more
	// frequent replacements of rows from the prefetch buffer back to
	// memory bank"), i.e. the buffer does not track per-row cleanliness;
	// that is the default (false). Setting true models a dirty-tracking
	// buffer and is exercised by the ablation benchmarks.
	WritebackDirtyOnly bool
}

// Entries returns the number of rows the buffer can hold.
func (p PFBuffer) Entries() int { return int(p.SizeBytes) / p.LineBytes }

// CAMPS holds the parameters of the CAMPS prefetch engine.
type CAMPS struct {
	UtilThreshold int // RUT counter value that triggers a row fetch (paper: 4)
	CTEntries     int // conflict-table entries per vault (paper: 32)
}

// MMD holds the parameters of the MMD comparison prefetcher.
type MMD struct {
	MaxDegree      int     // maximum rows prefetched per trigger
	TouchThreshold int     // distinct line touches confirming a row
	EpochRequests  int     // feedback epoch length in demand requests
	HighAccuracy   float64 // raise degree above this accuracy
	LowAccuracy    float64 // lower degree below this accuracy
}

// GHB holds the parameters of the ghb width prefetcher: a per-vault
// global history buffer of row activations with an address-index table
// hashed by activation delta.
type GHB struct {
	HistEntries int // global-history ring entries (power of two)
	AITEntries  int // address-index-table slots (power of two)
	Width       int // history chain occurrences consulted per trigger
	Degree      int // successors predicted per chain occurrence
}

// SISB holds the parameters of the sisb temporal next-address predictor:
// a bounded FIFO-evicted table of row-activation successors.
type SISB struct {
	TableEntries int // bounded successor-table capacity
	Degree       int // chained predictions issued per trigger
}

// BestOffset holds the parameters of the bestoffset engine: offset
// scoring rounds against a recent-request table, after Michaud's
// Best-Offset prefetcher, at row granularity.
type BestOffset struct {
	RREntries int // recent-request table slots (power of two)
	ScoreMax  int // offset score that ends a learning phase early
	RoundMax  int // full scoring rounds per learning phase
	BadScore  int // winning score at or below which prefetch disables
}

// Hybrid holds the parameters of the hybrid meta-engine, which set-duels
// registered engines per vault at epoch granularity.
type Hybrid struct {
	EpochRequests int // duel epoch length in demand requests
	ShadowEntries int // per-candidate shadow prediction slots (power of two)
	// Candidates names the engines to duel (prefetch registry names).
	// Empty means every registered fetching engine.
	Candidates []string
}

// Config is the full simulated-system configuration.
type Config struct {
	Processor  Processor
	L1         CacheLevel
	L2         CacheLevel
	L3         CacheLevel
	HMC        HMC
	Links      Links
	PFBuffer   PFBuffer
	CAMPS      CAMPS
	MMD        MMD
	GHB        GHB
	SISB       SISB
	BestOffset BestOffset
	Hybrid     Hybrid
}

// Default returns the Table I configuration.
func Default() Config {
	return Config{
		Processor: Processor{
			Cores:      8,
			FreqMHz:    3000,
			IssueWidth: 4,
			WindowSize: 8,
		},
		L1: CacheLevel{SizeBytes: 32 << 10, Ways: 2, LineBytes: 64, HitLatency: 2, MSHRs: 8},
		L2: CacheLevel{SizeBytes: 256 << 10, Ways: 4, LineBytes: 64, HitLatency: 6, MSHRs: 16},
		L3: CacheLevel{SizeBytes: 16 << 20, Ways: 16, LineBytes: 64, HitLatency: 20, MSHRs: 64, Shared: true},
		HMC: HMC{
			Vaults:        32,
			Layers:        8,
			BanksPerLayer: 2,
			RowBytes:      1 << 10,
			RowsPerBank:   8192, // 4 GiB cube
			FreqMHz:       800,  // DDR3-1600
			ReadQueue:     32,
			WriteQueue:    32,
			Timing: DRAMTiming{
				TRCD: 11, TRP: 11, TCL: 11,
				TBL: 4, TRAS: 28, TWR: 12, TRTP: 6,
				TCCD: 4, TCWL: 8, TRRD: 5, TFAW: 24,
				TRFC: 208, TREFI: 6240,
			},
		},
		Links: Links{
			Count:        4,
			LanesPerDir:  16,
			LaneGbps:     12, // 12.5 in the paper; integer Gbps keeps time math exact
			HeaderBytes:  16,
			PropDelay:    3200 * sim.Picosecond,
			SwitchDelay:  1250 * sim.Picosecond,
			CtrlOverhead: 1000 * sim.Picosecond,
			// HMC-style link retry: the retry pointer round trip costs about
			// one propagation each way on top of re-serialization.
			RetryTurnaround: 6400 * sim.Picosecond,
		},
		PFBuffer:   PFBuffer{SizeBytes: 16 << 10, LineBytes: 1 << 10, HitLatency: 22},
		CAMPS:      CAMPS{UtilThreshold: 4, CTEntries: 32},
		MMD:        MMD{MaxDegree: 4, TouchThreshold: 3, EpochRequests: 512, HighAccuracy: 0.75, LowAccuracy: 0.40},
		GHB:        GHB{HistEntries: 256, AITEntries: 256, Width: 2, Degree: 2},
		SISB:       SISB{TableEntries: 2048, Degree: 2},
		BestOffset: BestOffset{RREntries: 64, ScoreMax: 31, RoundMax: 100, BadScore: 1},
		Hybrid: Hybrid{
			EpochRequests: 256,
			ShadowEntries: 256,
			Candidates:    []string{"MMD", "CAMPS", "CAMPS-MOD", "ghb", "sisb", "bestoffset"},
		},
	}
}

// ErrLineBitmap reports a geometry whose rows hold more cache lines than
// the 64-bit per-row line bitmap (prefetch.Fetch.Touched) can represent.
var ErrLineBitmap = errors.New("config: lines per row exceeds 64-bit line bitmap")

// Validate checks internal consistency.
func (c Config) Validate() error {
	var errs []error
	check := func(ok bool, format string, args ...any) {
		if !ok {
			errs = append(errs, fmt.Errorf(format, args...))
		}
	}
	check(c.Processor.Cores > 0, "config: cores must be positive, got %d", c.Processor.Cores)
	check(c.Processor.FreqMHz > 0, "config: cpu frequency must be positive")
	check(c.Processor.IssueWidth > 0, "config: issue width must be positive")
	check(c.Processor.WindowSize > 0, "config: window size must be positive")
	for _, lvl := range []struct {
		name string
		l    CacheLevel
	}{{"L1", c.L1}, {"L2", c.L2}, {"L3", c.L3}} {
		check(lvl.l.SizeBytes > 0, "config: %s size must be positive", lvl.name)
		check(lvl.l.Ways > 0, "config: %s ways must be positive", lvl.name)
		check(lvl.l.LineBytes > 0 && isPow2(int64(lvl.l.LineBytes)),
			"config: %s line size must be a positive power of two", lvl.name)
		if lvl.l.Ways > 0 && lvl.l.LineBytes > 0 {
			sets := lvl.l.SizeBytes / int64(lvl.l.Ways) / int64(lvl.l.LineBytes)
			check(sets > 0 && isPow2(sets), "config: %s set count %d must be a power of two", lvl.name, sets)
		}
		check(lvl.l.MSHRs > 0, "config: %s MSHR count must be positive", lvl.name)
	}
	check(c.L1.LineBytes == c.L2.LineBytes && c.L2.LineBytes == c.L3.LineBytes,
		"config: cache line sizes must match across levels")
	check(isPow2(int64(c.HMC.Vaults)), "config: vault count must be a power of two")
	check(isPow2(int64(c.HMC.Banks())), "config: banks per vault must be a power of two")
	check(isPow2(int64(c.HMC.RowBytes)), "config: row size must be a power of two")
	check(isPow2(int64(c.HMC.RowsPerBank)), "config: rows per bank must be a power of two")
	check(c.HMC.RowBytes >= c.L3.LineBytes, "config: row must hold at least one cache line")
	check(c.HMC.ReadQueue > 0 && c.HMC.WriteQueue > 0, "config: vault queues must be positive")
	t := c.HMC.Timing
	check(t.TRCD > 0 && t.TRP > 0 && t.TCL > 0 && t.TBL > 0 && t.TRAS > 0,
		"config: core DRAM timing parameters must be positive")
	check(t.TREFI > t.TRFC, "config: tREFI (%d) must exceed tRFC (%d)", t.TREFI, t.TRFC)
	check(t.TFAW >= t.TRRD, "config: tFAW (%d) must be at least tRRD (%d)", t.TFAW, t.TRRD)
	check(c.Links.Count > 0 && c.Links.LanesPerDir > 0 && c.Links.LaneGbps > 0,
		"config: link parameters must be positive")
	check(c.Links.RetryTurnaround >= 0, "config: link retry turnaround must not be negative")
	check(c.PFBuffer.LineBytes == c.HMC.RowBytes,
		"config: prefetch buffer line (%d) must equal row size (%d)",
		c.PFBuffer.LineBytes, c.HMC.RowBytes)
	check(c.PFBuffer.Entries() > 0, "config: prefetch buffer must hold at least one row")
	check(c.CAMPS.UtilThreshold > 0, "config: CAMPS utilization threshold must be positive")
	check(c.CAMPS.CTEntries > 0, "config: CAMPS conflict table must have entries")
	check(c.MMD.MaxDegree > 0, "config: MMD max degree must be positive")
	check(c.MMD.TouchThreshold > 0, "config: MMD touch threshold must be positive")
	check(c.MMD.EpochRequests > 0, "config: MMD epoch must be positive")
	check(c.MMD.LowAccuracy < c.MMD.HighAccuracy,
		"config: MMD low-accuracy threshold must be below high-accuracy threshold")
	check(c.GHB.HistEntries > 0 && isPow2(int64(c.GHB.HistEntries)),
		"config: GHB history entries must be a positive power of two")
	check(c.GHB.AITEntries > 0 && isPow2(int64(c.GHB.AITEntries)),
		"config: GHB address-index entries must be a positive power of two")
	check(c.GHB.Width > 0, "config: GHB width must be positive")
	check(c.GHB.Degree > 0, "config: GHB degree must be positive")
	check(c.SISB.TableEntries > 0, "config: SISB table entries must be positive")
	check(c.SISB.Degree > 0, "config: SISB degree must be positive")
	check(c.BestOffset.RREntries > 0 && isPow2(int64(c.BestOffset.RREntries)),
		"config: best-offset RR entries must be a positive power of two")
	check(c.BestOffset.ScoreMax > 0, "config: best-offset score max must be positive")
	check(c.BestOffset.RoundMax > 0, "config: best-offset round max must be positive")
	check(c.BestOffset.BadScore >= 0, "config: best-offset bad score must not be negative")
	check(c.Hybrid.EpochRequests > 0, "config: hybrid epoch must be positive")
	check(c.Hybrid.ShadowEntries > 0 && isPow2(int64(c.Hybrid.ShadowEntries)),
		"config: hybrid shadow entries must be a positive power of two")
	if c.L3.LineBytes > 0 && c.LinesPerRow() > 64 {
		errs = append(errs, fmt.Errorf("%w: row of %d bytes holds %d lines of %d bytes",
			ErrLineBitmap, c.HMC.RowBytes, c.LinesPerRow(), c.L3.LineBytes))
	}
	return errors.Join(errs...)
}

// LinesPerRow returns cache lines per DRAM row.
func (c Config) LinesPerRow() int { return c.HMC.RowBytes / c.L3.LineBytes }

// CPUClock returns the core clock.
func (c Config) CPUClock() sim.Clock { return sim.NewClock(c.Processor.FreqMHz) }

// DRAMClock returns the DRAM bus clock.
func (c Config) DRAMClock() sim.Clock { return sim.NewClock(c.HMC.FreqMHz) }

func isPow2(v int64) bool { return v > 0 && v&(v-1) == 0 }
