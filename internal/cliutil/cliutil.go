// Package cliutil holds the flag behaviours shared by every cmd/*
// binary: -version build-info printing and the -pprof debug server, so
// the five CLIs stay consistent without each reimplementing them.
package cliutil

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
	"runtime"
	"runtime/debug"
	"sync"
)

// PrintVersion writes tool's build information (module version, VCS
// revision, Go toolchain) as reported by the Go runtime.
func PrintVersion(w io.Writer, tool string) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		fmt.Fprintf(w, "%s: build info unavailable\n", tool)
		return
	}
	version := bi.Main.Version
	if version == "" || version == "(devel)" {
		version = "devel"
	}
	fmt.Fprintf(w, "%s %s (%s, %s)\n", tool, version, bi.GoVersion, bi.Main.Path)
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision", "vcs.time", "vcs.modified", "GOARCH", "GOOS":
			fmt.Fprintf(w, "  %s=%s\n", s.Key, s.Value)
		}
	}
}

var registerRuntimeOnce sync.Once

// StartPprof serves net/http/pprof plus a /debug/runtime JSON endpoint
// (heap, GC, goroutine counts) on addr in a background goroutine. The
// bind happens synchronously: a bound port (or any other listen failure)
// is logged and the run continues without profiling — the debug server
// must never abort a simulation. It returns true when the server is up.
// Profiling a simulation is then e.g.:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
func StartPprof(addr string, logf func(format string, args ...any)) bool {
	// DefaultServeMux panics on duplicate registration, so guard against a
	// second StartPprof in one process (tests, embedded uses).
	registerRuntimeOnce.Do(func() {
		http.HandleFunc("/debug/runtime", func(w http.ResponseWriter, _ *http.Request) {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{
				"goroutines":     runtime.NumGoroutine(),
				"heap_alloc":     ms.HeapAlloc,
				"heap_objects":   ms.HeapObjects,
				"total_alloc":    ms.TotalAlloc,
				"num_gc":         ms.NumGC,
				"pause_total_ns": ms.PauseTotalNs,
			})
		})
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if logf != nil {
			logf("pprof disabled (%v); continuing without profiling", err)
		}
		return false
	}
	go func() {
		if serr := http.Serve(ln, nil); serr != nil && logf != nil {
			logf("pprof server stopped: %v", serr)
		}
	}()
	if logf != nil {
		logf("serving pprof on http://%s/debug/pprof/ (runtime metrics at /debug/runtime)", ln.Addr())
	}
	return true
}
