package cliutil

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
)

func TestPrintVersionNamesTheTool(t *testing.T) {
	var sb strings.Builder
	PrintVersion(&sb, "campslint")
	out := sb.String()
	if !strings.HasPrefix(out, "campslint") {
		t.Fatalf("output should lead with the tool name, got %q", out)
	}
	// Under `go test` build info is available, so the header carries the
	// Go toolchain version and module path.
	if !strings.Contains(out, "go1") {
		t.Errorf("output should include the Go toolchain version, got %q", out)
	}
	if strings.Count(out, "\n") < 1 {
		t.Errorf("output should be at least one full line, got %q", out)
	}
}

func TestPrintVersionDistinctTools(t *testing.T) {
	// Every CLI shares this helper; the tool name must be the only thing
	// that differs.
	var a, b strings.Builder
	PrintVersion(&a, "campsim")
	PrintVersion(&b, "campsweep")
	sa := strings.TrimPrefix(a.String(), "campsim")
	sb := strings.TrimPrefix(b.String(), "campsweep")
	if sa != sb {
		t.Errorf("version payload differs between tools:\n%q\n%q", sa, sb)
	}
}

func TestStartPprofAnnouncesEndpoint(t *testing.T) {
	var (
		mu   sync.Mutex
		logs []string
	)
	logf := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		logs = append(logs, fmt.Sprintf(format, args...))
	}
	// The bind is synchronous, so port 0 resolves to a real address before
	// StartPprof returns and the announcement carries it.
	if !StartPprof("127.0.0.1:0", logf) {
		t.Fatal("bind to an ephemeral port failed")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logs) == 0 || !strings.Contains(logs[0], "pprof") {
		t.Fatalf("StartPprof should announce the endpoint synchronously, got %v", logs)
	}
	if strings.Contains(logs[0], ":0/") {
		t.Fatalf("announcement should carry the resolved port, got %q", logs[0])
	}
}

func TestStartPprofBoundPortDegradesGracefully(t *testing.T) {
	// Occupy a port, then ask StartPprof for it: the run must continue
	// (no exit, no panic), with the failure logged.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var (
		mu   sync.Mutex
		logs []string
	)
	logf := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		logs = append(logs, fmt.Sprintf(format, args...))
	}
	if StartPprof(ln.Addr().String(), logf) {
		t.Fatal("StartPprof claimed success on an already-bound port")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logs) != 1 || !strings.Contains(logs[0], "continuing without profiling") {
		t.Fatalf("bound port should log and continue, got %v", logs)
	}
}

func TestStartPprofNilLogf(t *testing.T) {
	// Must not panic without a logger, on success or failure.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	StartPprof(ln.Addr().String(), nil) // bound port, nil logger
	StartPprof("127.0.0.1:0", nil)      // fresh port, nil logger
}
