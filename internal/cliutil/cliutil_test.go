package cliutil

import (
	"strings"
	"sync"
	"testing"
)

func TestPrintVersionNamesTheTool(t *testing.T) {
	var sb strings.Builder
	PrintVersion(&sb, "campslint")
	out := sb.String()
	if !strings.HasPrefix(out, "campslint") {
		t.Fatalf("output should lead with the tool name, got %q", out)
	}
	// Under `go test` build info is available, so the header carries the
	// Go toolchain version and module path.
	if !strings.Contains(out, "go1") {
		t.Errorf("output should include the Go toolchain version, got %q", out)
	}
	if strings.Count(out, "\n") < 1 {
		t.Errorf("output should be at least one full line, got %q", out)
	}
}

func TestPrintVersionDistinctTools(t *testing.T) {
	// Every CLI shares this helper; the tool name must be the only thing
	// that differs.
	var a, b strings.Builder
	PrintVersion(&a, "campsim")
	PrintVersion(&b, "campsweep")
	sa := strings.TrimPrefix(a.String(), "campsim")
	sb := strings.TrimPrefix(b.String(), "campsweep")
	if sa != sb {
		t.Errorf("version payload differs between tools:\n%q\n%q", sa, sb)
	}
}

func TestStartPprofAnnouncesEndpoint(t *testing.T) {
	var (
		mu   sync.Mutex
		logs []string
	)
	logf := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		logs = append(logs, format)
	}
	// Port 0 would race the listener for the bound address; the
	// announcement itself is synchronous, which is what we verify. The
	// server goroutine fails later on the unroutable address without
	// crashing the process.
	StartPprof("127.0.0.1:0", logf)
	mu.Lock()
	defer mu.Unlock()
	if len(logs) == 0 || !strings.Contains(logs[0], "pprof") {
		t.Fatalf("StartPprof should announce the endpoint synchronously, got %v", logs)
	}
}

func TestStartPprofNilLogf(t *testing.T) {
	// Must not panic without a logger.
	StartPprof("127.0.0.1:0", nil)
}
