package fault

import (
	"errors"
	"testing"
)

// FuzzParseSpec asserts the parser's contract over arbitrary input: it
// never panics, every failure wraps ErrBadSpec, and every accepted spec
// validates, survives defaulting, and round-trips through String.
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("linkcrc=1e-4")
	f.Add("linkcrc=1e-4,linkretries=5,stall=5e-5,stallfor=80ns,poison=1e-3,bankfail=200us,bankfor=2us,seed=7")
	f.Add("stallfor=2.5us")
	f.Add("bankfail=1ms")
	f.Add("linkcrc=2")
	f.Add("nope=1")
	f.Add("linkcrc")
	f.Add("linkcrc=0.1,linkcrc=0.2")
	f.Add("seed=18446744073709551615")
	f.Add(" linkcrc = 0.5 , seed = 3 ")
	f.Add(",")
	f.Add("=")
	f.Add("stallfor=9999999999999999999ms")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSpec(text)
		if err != nil {
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("error does not wrap ErrBadSpec: %v", err)
			}
			if s != (Spec{}) {
				t.Fatalf("error with non-zero spec: %+v", s)
			}
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("accepted spec fails Validate: %v (spec %+v)", verr, s)
		}
		d := s.withDefaults()
		if derr := d.Validate(); derr != nil {
			t.Fatalf("defaulted spec fails Validate: %v (spec %+v)", derr, d)
		}
		// String must re-parse; the result must match up to defaulting.
		again, rerr := ParseSpec(s.String())
		if rerr != nil {
			t.Fatalf("String() output rejected: %v (text %q)", rerr, s.String())
		}
		if again.withDefaults() != d {
			t.Fatalf("round trip changed spec:\n  in  %+v\n  out %+v", d, again.withDefaults())
		}
		// NewInjector must be total over valid specs.
		inj := NewInjector(s, 1)
		inj.Link(0, 0).PacketRetries(0)
		v := inj.Vault(0, 4)
		v.StallDelay(0)
		v.PoisonInsert(0, 0, 0)
		v.BankBlockedUntil(0, 0)
	})
}
