package fault

import (
	"errors"
	"strings"
	"testing"

	"camps/internal/obs"
	"camps/internal/sim"
)

func TestParseSpecRoundTrip(t *testing.T) {
	in := "linkcrc=0.0001,stall=5e-05,stallfor=80000ps,poison=0.001,bankfail=200000000ps,seed=7"
	s, err := ParseSpec(in)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", in, err)
	}
	if s.LinkCRCRate != 1e-4 || s.VaultStallRate != 5e-5 || s.PoisonRate != 1e-3 {
		t.Fatalf("rates wrong: %+v", s)
	}
	if s.VaultStallTime != 80*sim.Nanosecond {
		t.Fatalf("stallfor = %v, want 80ns", s.VaultStallTime)
	}
	if s.BankFailPeriod != 200*sim.Microsecond {
		t.Fatalf("bankfail = %v, want 200us", s.BankFailPeriod)
	}
	if s.Seed != 7 {
		t.Fatalf("seed = %d, want 7", s.Seed)
	}
	// String renders back into the grammar and re-parses to the same spec.
	again, err := ParseSpec(s.String())
	if err != nil {
		t.Fatalf("ParseSpec(String()) = %v (text %q)", err, s.String())
	}
	if again != s {
		t.Fatalf("round trip changed spec:\n  in  %+v\n  out %+v", s, again)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []string{
		"linkcrc",                  // not key=value
		"linkcrc=",                 // empty value
		"=0.5",                     // empty key
		"linkcrc=2",                // rate out of range
		"linkcrc=-0.1",             // negative rate
		"linkcrc=zebra",            // not a number
		"nope=1",                   // unknown key
		"stall=0.1,stall=0.2",      // duplicate key
		"stallfor=10xs",            // bad duration suffix
		"stallfor=-5ns",            // negative duration
		"bankfor=1us",              // bankfor without bankfail
		"bankfail=1us,bankfor=2us", // window longer than period
		"seed=-1",                  // seed not a uint
		"linkcrc=0.1,,stall=0.1",   // empty field
	}
	for _, c := range cases {
		if _, err := ParseSpec(c); !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseSpec(%q) = %v, want ErrBadSpec", c, err)
		}
	}
}

func TestParseSpecEmptyIsDisabled(t *testing.T) {
	for _, text := range []string{"", "  "} {
		s, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		if s.Enabled() {
			t.Fatalf("ParseSpec(%q).Enabled() = true", text)
		}
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want sim.Time
	}{
		{"5", 5},
		{"5ps", 5},
		{"5ns", 5 * sim.Nanosecond},
		{"2.5us", 2500 * sim.Nanosecond},
		{"1ms", sim.Millisecond},
		{"0", 0},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseDuration(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
}

func TestDefaults(t *testing.T) {
	s := Spec{LinkCRCRate: 0.1, BankFailPeriod: 1000}.withDefaults()
	if s.LinkMaxRetries != 3 {
		t.Errorf("default LinkMaxRetries = %d, want 3", s.LinkMaxRetries)
	}
	if s.VaultStallTime != 100*sim.Nanosecond {
		t.Errorf("default VaultStallTime = %v, want 100ns", s.VaultStallTime)
	}
	if s.BankFailDuration != 10 {
		t.Errorf("default BankFailDuration = %v, want period/100 = 10", s.BankFailDuration)
	}
}

// Identical seed and spec must reproduce the exact draw sequence at every
// site; a different run seed must (with overwhelming probability) differ.
func TestInjectorDeterminism(t *testing.T) {
	spec := Spec{LinkCRCRate: 0.3, VaultStallRate: 0.3, PoisonRate: 0.3,
		BankFailPeriod: 1000 * sim.Nanosecond}
	draw := func(runSeed uint64) ([]int, []sim.Time, []bool, []sim.Time) {
		inj := NewInjector(spec, runSeed)
		link := inj.Link(2, 1)
		vault := inj.Vault(5, 8)
		var retries []int
		var stalls []sim.Time
		var poisons []bool
		var blocks []sim.Time
		for i := 0; i < 200; i++ {
			at := sim.Time(i) * 10 * sim.Nanosecond
			retries = append(retries, link.PacketRetries(at))
			stalls = append(stalls, vault.StallDelay(at))
			poisons = append(poisons, vault.PoisonInsert(i%8, int64(i), at))
			blocks = append(blocks, vault.BankBlockedUntil(i%8, at))
		}
		return retries, stalls, poisons, blocks
	}
	r1, s1, p1, b1 := draw(42)
	r2, s2, p2, b2 := draw(42)
	for i := range r1 {
		if r1[i] != r2[i] || s1[i] != s2[i] || p1[i] != p2[i] || b1[i] != b2[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	r3, s3, p3, b3 := draw(43)
	same := true
	for i := range r1 {
		if r1[i] != r3[i] || s1[i] != s3[i] || p1[i] != p3[i] || b1[i] != b3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different run seeds produced identical schedules")
	}
}

// A nil injector and a zero-rate spec both inject nothing.
func TestInjectorDisabled(t *testing.T) {
	for name, inj := range map[string]*Injector{
		"nil":  nil,
		"zero": NewInjector(Spec{}, 1),
	} {
		link := inj.Link(0, 0)
		vault := inj.Vault(0, 4)
		for i := 0; i < 100; i++ {
			at := sim.Time(i) * sim.Nanosecond
			if link.PacketRetries(at) != 0 {
				t.Fatalf("%s: PacketRetries != 0", name)
			}
			if vault.StallDelay(at) != 0 {
				t.Fatalf("%s: StallDelay != 0", name)
			}
			if vault.PoisonInsert(0, 0, at) {
				t.Fatalf("%s: PoisonInsert = true", name)
			}
			if vault.BankBlockedUntil(0, at) != 0 {
				t.Fatalf("%s: BankBlockedUntil != 0", name)
			}
		}
		if inj.Counts() != (Counts{}) {
			t.Fatalf("%s: counts = %+v, want zero", name, inj.Counts())
		}
	}
}

func TestLinkRetriesBounded(t *testing.T) {
	inj := NewInjector(Spec{LinkCRCRate: 1, LinkMaxRetries: 2}, 1)
	link := inj.Link(0, 0)
	for i := 0; i < 50; i++ {
		if got := link.PacketRetries(0); got != 2 {
			t.Fatalf("PacketRetries with rate 1 = %d, want cap 2", got)
		}
	}
	c := inj.Counts()
	if c.LinkCRCErrors != 50 || c.LinkRetries != 100 {
		t.Fatalf("counts = %+v, want 50 errors / 100 retries", c)
	}
}

func TestBankWindowsArePureArithmetic(t *testing.T) {
	spec := Spec{BankFailPeriod: 1000, BankFailDuration: 100}
	inj := NewInjector(spec, 9)
	v := inj.Vault(0, 2)
	// Find the phase by scanning; then the window must repeat each period
	// and the answer must not depend on query frequency or order.
	var start sim.Time = -1
	for at := sim.Time(0); at < 2000; at++ {
		if v.BankBlockedUntil(0, at) != 0 {
			start = at
			break
		}
	}
	if start < 0 {
		t.Fatal("no blackout window found in two periods")
	}
	end := v.BankBlockedUntil(0, start)
	if end != start+100 {
		t.Fatalf("window end = %d, want start+duration = %d", end, start+100)
	}
	// Same query answered identically, later window found one period on.
	if again := v.BankBlockedUntil(0, start); again != end {
		t.Fatalf("repeat query changed answer: %d vs %d", again, end)
	}
	if next := v.BankBlockedUntil(0, start+1000); next != end+1000 {
		t.Fatalf("next window end = %d, want %d", next, end+1000)
	}
	// Each distinct window counted once despite repeated queries.
	if c := inj.Counts().BankBlackouts; c != 2 {
		t.Fatalf("BankBlackouts = %d, want 2", c)
	}
	// The other bank's phase differs (drawn from its own stream).
	if v.phase[0] == v.phase[1] {
		t.Fatal("two banks drew identical phases (suspicious keying)")
	}
}

func TestInstrumentCountsAndEvents(t *testing.T) {
	inj := NewInjector(Spec{PoisonRate: 1}, 1)
	reg := obs.NewRegistry()
	tr := obs.NewTracer(16)
	inj.Instrument(reg, tr)
	v := inj.Vault(3, 4)
	if !v.PoisonInsert(1, 77, 500) {
		t.Fatal("PoisonInsert with rate 1 = false")
	}
	snap := reg.Snapshot("test", 0)
	got, ok := snap.Counters["fault.poisoned_rows"]
	if !ok {
		t.Fatal("fault.poisoned_rows not registered")
	}
	if got != 1 {
		t.Fatalf("fault.poisoned_rows = %d, want 1", got)
	}
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Type != obs.EvFaultPoison ||
		evs[0].Vault != 3 || evs[0].Bank != 1 || evs[0].Row != 77 {
		t.Fatalf("trace events = %+v", evs)
	}
	if !strings.Contains(obs.EvFaultPoison.String(), "fault") {
		t.Fatalf("event name %q lacks fault prefix", obs.EvFaultPoison.String())
	}
}

func TestGrammarMentionsEveryKey(t *testing.T) {
	g := Grammar()
	for _, k := range specKeys {
		if !strings.Contains(g, k.key) {
			t.Errorf("Grammar() missing key %q", k.key)
		}
	}
}
