// Package fault is the simulator's deterministic fault-injection layer.
//
// The paper's HMC model (and the seed simulator) assumes an ideal logic
// base: link packets, TSV transfers and prefetch-buffer fills never fail.
// The HMC specification the paper builds on defines per-link CRC with
// retry, and degraded-memory behaviour is exactly where prefetch value is
// most fragile — so this package makes faults a first-class, *repeatable*
// workload dimension:
//
//   - HMC link packet CRC errors, modeled as retransmissions that charge
//     the link's serialization path plus a configurable retry turnaround.
//   - Transient vault ingress stalls (crossbar/TSV arbitration glitches).
//   - Prefetch-buffer entry poisoning: a fetched row arrives damaged, is
//     discarded before insert, and the miss is charged to the prefetch
//     engine's usefulness feedback (forcing a re-fetch to recover it).
//   - Periodic DRAM bank unavailability windows (per-bank blackouts).
//
// Every decision is drawn from a splitmix64 stream owned by one injection
// site (a link direction, a vault, a bank), keyed by the run seed, the
// spec seed and the site identity. Site-local streams make the schedule
// independent of cross-component event interleaving: the same seed and the
// same spec produce bit-identical simulations, per campslint's
// simdeterminism rules (no wall clock, no global RNG).
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"camps/internal/sim"
)

// ErrBadSpec matches every fault-spec parse or validation failure under
// errors.Is.
var ErrBadSpec = errors.New("fault: invalid fault spec")

// Spec describes the fault environment of one run. The zero value (and any
// spec whose Enabled method reports false) injects nothing and is
// guaranteed not to perturb the simulation in any way.
type Spec struct {
	// Seed decorrelates fault schedules across specs that otherwise share a
	// run seed. It combines with the run seed; 0 is a valid value.
	Seed uint64

	// LinkCRCRate is the per-packet probability that a link packet fails
	// CRC and must be retransmitted. Each retransmission charges the retry
	// turnaround (config.Links.RetryTurnaround) plus a full
	// re-serialization of the packet.
	LinkCRCRate float64
	// LinkMaxRetries bounds retransmissions per packet (default 3). The
	// packet is delivered after the last retry regardless — links are
	// lossy in latency, never in data, matching HMC's retry guarantee.
	LinkMaxRetries int

	// VaultStallRate is the per-request probability that a request's
	// delivery into its vault is delayed by VaultStallTime (a transient
	// crossbar/TSV arbitration stall).
	VaultStallRate float64
	// VaultStallTime is the stall duration (default 100ns).
	VaultStallTime sim.Time

	// PoisonRate is the per-insert probability that a row fetched into the
	// prefetch buffer arrives damaged and is discarded: the buffer is not
	// filled, and the prefetch engine's feedback tables are charged with a
	// zero-utilization eviction.
	PoisonRate float64

	// BankFailPeriod, when positive, opens one unavailability window per
	// bank every period; the window's phase within the period is drawn
	// per (vault,bank), so blackouts do not align across the cube.
	BankFailPeriod sim.Time
	// BankFailDuration is each window's length (default period/100,
	// capped at period).
	BankFailDuration sim.Time
}

// Enabled reports whether the spec can inject any fault at all. A disabled
// spec behaves identically to no fault layer.
func (s Spec) Enabled() bool {
	return s.LinkCRCRate > 0 || s.VaultStallRate > 0 || s.PoisonRate > 0 ||
		s.BankFailPeriod > 0
}

// withDefaults fills the derived fields of a valid spec.
func (s Spec) withDefaults() Spec {
	if s.LinkMaxRetries <= 0 {
		s.LinkMaxRetries = 3
	}
	if s.VaultStallTime <= 0 {
		s.VaultStallTime = 100 * sim.Nanosecond
	}
	if s.BankFailPeriod > 0 {
		if s.BankFailDuration <= 0 {
			s.BankFailDuration = s.BankFailPeriod / 100
			if s.BankFailDuration <= 0 {
				s.BankFailDuration = 1
			}
		}
		if s.BankFailDuration > s.BankFailPeriod {
			s.BankFailDuration = s.BankFailPeriod
		}
	}
	return s
}

// Validate checks the spec's internal consistency. Every error wraps
// ErrBadSpec.
func (s Spec) Validate() error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	for _, r := range []struct {
		name string
		v    float64
	}{{"linkcrc", s.LinkCRCRate}, {"stall", s.VaultStallRate}, {"poison", s.PoisonRate}} {
		if r.v < 0 || r.v > 1 {
			bad("%s rate %g outside [0,1]", r.name, r.v)
		}
	}
	if s.LinkMaxRetries < 0 {
		bad("linkretries %d negative", s.LinkMaxRetries)
	}
	if s.VaultStallTime < 0 {
		bad("stallfor %v negative", s.VaultStallTime)
	}
	if s.BankFailPeriod < 0 {
		bad("bankfail period %v negative", s.BankFailPeriod)
	}
	if s.BankFailDuration < 0 {
		bad("bankfor %v negative", s.BankFailDuration)
	}
	if s.BankFailDuration > 0 && s.BankFailPeriod == 0 {
		bad("bankfor set without bankfail period")
	}
	if s.BankFailPeriod > 0 && s.BankFailDuration > s.BankFailPeriod {
		bad("bankfor %v exceeds bankfail period %v", s.BankFailDuration, s.BankFailPeriod)
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrBadSpec, errors.Join(errs...))
}

// specKeys documents the grammar, in presentation order.
var specKeys = []struct{ key, help string }{
	{"linkcrc", "per-packet link CRC error probability (0..1)"},
	{"linkretries", "max retransmissions per packet (default 3)"},
	{"stall", "per-request vault ingress stall probability (0..1)"},
	{"stallfor", "vault stall duration, e.g. 100ns (default 100ns)"},
	{"poison", "per-insert prefetch-buffer poison probability (0..1)"},
	{"bankfail", "period of per-bank unavailability windows, e.g. 200us"},
	{"bankfor", "duration of each bank window (default period/100)"},
	{"seed", "fault-schedule seed, combined with the run seed"},
}

// Grammar returns a one-line-per-key description of the spec grammar for
// CLI help text.
func Grammar() string {
	var b strings.Builder
	for _, k := range specKeys {
		fmt.Fprintf(&b, "  %-12s %s\n", k.key, k.help)
	}
	return b.String()
}

// ParseSpec parses the textual fault-spec grammar: a comma-separated list
// of key=value pairs, e.g.
//
//	linkcrc=1e-4,stall=5e-5,stallfor=80ns,poison=1e-3,bankfail=200us,seed=7
//
// Rates are floats in [0,1]; durations take ps/ns/us/ms suffixes (a bare
// number means picoseconds). An empty string is the zero (disabled) spec.
// Every error wraps ErrBadSpec.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	seen := map[string]bool{}
	for _, field := range strings.Split(text, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			return Spec{}, fmt.Errorf("%w: empty field", ErrBadSpec)
		}
		key, val, ok := strings.Cut(field, "=")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return Spec{}, fmt.Errorf("%w: field %q is not key=value", ErrBadSpec, field)
		}
		if seen[key] {
			return Spec{}, fmt.Errorf("%w: duplicate key %q", ErrBadSpec, key)
		}
		seen[key] = true
		var err error
		switch key {
		case "linkcrc":
			s.LinkCRCRate, err = parseRate(val)
		case "linkretries":
			var n int64
			n, err = strconv.ParseInt(val, 10, 32)
			s.LinkMaxRetries = int(n)
		case "stall":
			s.VaultStallRate, err = parseRate(val)
		case "stallfor":
			s.VaultStallTime, err = ParseDuration(val)
		case "poison":
			s.PoisonRate, err = parseRate(val)
		case "bankfail":
			s.BankFailPeriod, err = ParseDuration(val)
		case "bankfor":
			s.BankFailDuration, err = ParseDuration(val)
		case "seed":
			s.Seed, err = strconv.ParseUint(val, 10, 64)
		default:
			keys := make([]string, len(specKeys))
			for i, k := range specKeys {
				keys[i] = k.key
			}
			sort.Strings(keys)
			return Spec{}, fmt.Errorf("%w: unknown key %q (have %s)",
				ErrBadSpec, key, strings.Join(keys, ", "))
		}
		if err != nil {
			return Spec{}, fmt.Errorf("%w: %s=%q: %v", ErrBadSpec, key, val, err)
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

func parseRate(val string) (float64, error) {
	r, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, errors.New("not a number")
	}
	if r < 0 || r > 1 {
		return 0, errors.New("rate outside [0,1]")
	}
	return r, nil
}

// ParseDuration parses a simulation duration with a ps/ns/us/ms suffix; a
// bare integer is picoseconds. Fractional values are allowed ("2.5us").
func ParseDuration(val string) (sim.Time, error) {
	unit := sim.Picosecond
	num := val
	switch {
	case strings.HasSuffix(val, "ms"):
		unit, num = sim.Millisecond, val[:len(val)-2]
	case strings.HasSuffix(val, "us"):
		unit, num = sim.Microsecond, val[:len(val)-2]
	case strings.HasSuffix(val, "ns"):
		unit, num = sim.Nanosecond, val[:len(val)-2]
	case strings.HasSuffix(val, "ps"):
		unit, num = sim.Picosecond, val[:len(val)-2]
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(num), 64)
	if err != nil {
		return 0, errors.New("not a duration (want e.g. 100ns, 2.5us)")
	}
	if f < 0 {
		return 0, errors.New("negative duration")
	}
	d := sim.Time(f * float64(unit))
	if f > 0 && d <= 0 {
		return 0, errors.New("duration overflows or rounds to zero")
	}
	return d, nil
}

// String renders the spec back into the grammar ParseSpec accepts (only
// non-zero fields are emitted, keys in grammar order). Parse(s.String())
// yields a spec equal to s up to defaulted fields.
func (s Spec) String() string {
	var parts []string
	add := func(format string, args ...any) {
		parts = append(parts, fmt.Sprintf(format, args...))
	}
	if s.LinkCRCRate > 0 {
		add("linkcrc=%g", s.LinkCRCRate)
	}
	if s.LinkMaxRetries > 0 {
		add("linkretries=%d", s.LinkMaxRetries)
	}
	if s.VaultStallRate > 0 {
		add("stall=%g", s.VaultStallRate)
	}
	if s.VaultStallTime > 0 {
		add("stallfor=%dps", int64(s.VaultStallTime))
	}
	if s.PoisonRate > 0 {
		add("poison=%g", s.PoisonRate)
	}
	if s.BankFailPeriod > 0 {
		add("bankfail=%dps", int64(s.BankFailPeriod))
	}
	if s.BankFailDuration > 0 {
		add("bankfor=%dps", int64(s.BankFailDuration))
	}
	if s.Seed != 0 {
		add("seed=%d", s.Seed)
	}
	return strings.Join(parts, ",")
}
