package fault

import (
	"camps/internal/obs"
	"camps/internal/sim"
)

// stream is a splitmix64 sequence owned by exactly one injection site and
// fault class. Site-local streams keep the fault schedule independent of
// how events from different components interleave: adding a vault or
// reordering equal-time events elsewhere cannot shift this site's draws.
type stream struct {
	state uint64
}

func (s *stream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (s *stream) float() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// mix folds words into a single well-distributed 64-bit value (the
// splitmix64 finalizer applied to a running combination). Used to derive a
// site stream's seed from (run seed, spec seed, fault class, site id).
func mix(words ...uint64) uint64 {
	h := uint64(0x8c72fba6f4a4bd21)
	for _, w := range words {
		h ^= w
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// Fault classes, part of each site stream's key.
const (
	classLinkCRC uint64 = iota + 1
	classVaultStall
	classPoison
	classBankFail
)

// Counts aggregates every injection the layer performed during one run.
// It round-trips through JSON as part of camps.Results.
type Counts struct {
	// LinkCRCErrors counts packets that failed CRC at least once;
	// LinkRetries counts individual retransmissions (>= errors).
	LinkCRCErrors uint64 `json:"link_crc_errors"`
	LinkRetries   uint64 `json:"link_retries"`
	// VaultStalls counts delayed request deliveries.
	VaultStalls uint64 `json:"vault_stalls"`
	// PoisonedRows counts prefetch-buffer fills discarded as damaged.
	PoisonedRows uint64 `json:"poisoned_rows"`
	// BankBlackouts counts unavailability windows that actually blocked a
	// bank job (windows nothing tried to use are not counted).
	BankBlackouts uint64 `json:"bank_blackouts"`
}

// Total returns the sum of all injection counters.
func (c Counts) Total() uint64 {
	return c.LinkCRCErrors + c.LinkRetries + c.VaultStalls + c.PoisonedRows + c.BankBlackouts
}

// Injector owns one run's fault schedule. Like the event engine it is
// confined to a single goroutine; the orchestrator gives each parallel
// cell its own injector. A nil *Injector is valid everywhere and injects
// nothing.
type Injector struct {
	spec   Spec
	seed   uint64
	counts Counts // link-class counters; vault-class counters live per site

	// vsites registers every vault site handed out, so Counts and the
	// fault.* metrics can fold the per-site counters back together.
	vsites []*VaultSite

	// Observability (nil unless Instrument was called). Emit on a nil
	// tracer is a no-op, so injection sites carry no conditionals.
	tr *obs.Tracer
}

// NewInjector builds the injector for one run. The run seed and the spec
// seed both feed every site stream, so distinct runs of one spec (or
// distinct specs on one run seed) draw independent schedules. The spec's
// defaults are applied here; Validate should have been called first.
func NewInjector(spec Spec, runSeed uint64) *Injector {
	return &Injector{spec: spec.withDefaults(), seed: mix(runSeed, spec.Seed)}
}

// Spec returns the spec the injector was built from (defaults applied).
func (inj *Injector) Spec() Spec { return inj.spec }

// Counts returns the injections performed so far, folding the per-site
// vault counters into the injector's link counters. Under the parallel
// engine the sites are written by different shards, so call it only
// while the simulation is parked (between windows or after the run).
func (inj *Injector) Counts() Counts {
	if inj == nil {
		return Counts{}
	}
	c := inj.counts
	c.VaultStalls = inj.vaultStalls()
	c.PoisonedRows = inj.poisonedRows()
	c.BankBlackouts = inj.bankBlackouts()
	return c
}

func (inj *Injector) vaultStalls() uint64 {
	var n uint64
	for _, v := range inj.vsites {
		n += v.stalls
	}
	return n
}

func (inj *Injector) poisonedRows() uint64 {
	var n uint64
	for _, v := range inj.vsites {
		n += v.poisoned
	}
	return n
}

func (inj *Injector) bankBlackouts() uint64 {
	var n uint64
	for _, v := range inj.vsites {
		n += v.blackouts
	}
	return n
}

// Instrument registers the injector's counters with the observability
// registry under the fault.* namespace and publishes every injection as a
// structured trace event. Either argument may be nil. Call before the
// simulation starts.
func (inj *Injector) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	if inj == nil {
		return
	}
	inj.tr = tr
	if reg == nil {
		return
	}
	c := &inj.counts
	reg.CounterFunc("fault.link_crc_errors", func() uint64 { return c.LinkCRCErrors })
	reg.CounterFunc("fault.link_retries", func() uint64 { return c.LinkRetries })
	reg.CounterFunc("fault.vault_stalls", inj.vaultStalls)
	reg.CounterFunc("fault.poisoned_rows", inj.poisonedRows)
	reg.CounterFunc("fault.bank_blackouts", inj.bankBlackouts)
}

// LinkSite is one link direction's injection state. A nil *LinkSite (from
// a nil injector) injects nothing.
type LinkSite struct {
	inj  *Injector
	rng  stream
	id   int32
	dir  int32
	rate float64
	max  int
}

// Link returns the injection site for one direction of link id
// (dir 0 = request, 1 = response). Returns nil on a nil injector.
func (inj *Injector) Link(id, dir int) *LinkSite {
	if inj == nil {
		return nil
	}
	return &LinkSite{
		inj:  inj,
		rng:  stream{state: mix(inj.seed, classLinkCRC, uint64(id), uint64(dir))},
		id:   int32(id),
		dir:  int32(dir),
		rate: inj.spec.LinkCRCRate,
		max:  inj.spec.LinkMaxRetries,
	}
}

// PacketRetries draws the retransmission count for one packet sent at
// time at: 0 for a clean packet, otherwise the number of extra transfers
// the link must perform (bounded by the spec's retry cap; the packet is
// delivered after the last retry regardless).
func (s *LinkSite) PacketRetries(at sim.Time) int {
	if s == nil || s.rate <= 0 {
		return 0
	}
	retries := 0
	for retries < s.max && s.rng.float() < s.rate {
		retries++
	}
	if retries == 0 {
		return 0
	}
	s.inj.counts.LinkCRCErrors++
	s.inj.counts.LinkRetries += uint64(retries)
	s.inj.tr.Emit(obs.Event{At: int64(at), Type: obs.EvFaultLinkCRC,
		Vault: s.id, Bank: s.dir, Arg: int64(retries)})
	return retries
}

// VaultSite is one vault's injection state: ingress stalls, prefetch
// poisoning and bank blackout windows. A nil *VaultSite injects nothing.
type VaultSite struct {
	inj *Injector
	id  int32

	// Per-site counters, folded by Injector.Counts. Keeping them here
	// rather than on the injector matters under the parallel engine:
	// stalls is written at request admission (shard 0) while poisoned and
	// blackouts are written inside the vault (its own shard) — distinct
	// words, so neither write shares memory across shards.
	stalls    uint64
	poisoned  uint64
	blackouts uint64

	// tr, when set via SetTracer, receives the vault-side emissions
	// (poison, blackout) instead of the injector's tracer; the parallel
	// runner points it at the vault shard's private ring.
	tr *obs.Tracer

	stallRNG  stream
	stallRate float64
	stallFor  sim.Time

	poisonRNG  stream
	poisonRate float64

	// Bank blackout windows: per-bank phase within the period, and the
	// index of the last window already counted (so a window blocking many
	// scheduling attempts counts once).
	period   sim.Time
	duration sim.Time
	phase    []sim.Time
	counted  []int64
}

// Vault returns the injection site for vault id with banks banks. Returns
// nil on a nil injector.
func (inj *Injector) Vault(id, banks int) *VaultSite {
	if inj == nil {
		return nil
	}
	v := &VaultSite{
		inj:        inj,
		id:         int32(id),
		stallRNG:   stream{state: mix(inj.seed, classVaultStall, uint64(id))},
		stallRate:  inj.spec.VaultStallRate,
		stallFor:   inj.spec.VaultStallTime,
		poisonRNG:  stream{state: mix(inj.seed, classPoison, uint64(id))},
		poisonRate: inj.spec.PoisonRate,
		period:     inj.spec.BankFailPeriod,
		duration:   inj.spec.BankFailDuration,
	}
	if v.period > 0 {
		v.phase = make([]sim.Time, banks)
		v.counted = make([]int64, banks)
		for b := range v.phase {
			// The phase stream is keyed per (vault,bank) and drawn once, so
			// window placement is independent of everything else.
			ps := stream{state: mix(inj.seed, classBankFail, uint64(id), uint64(b))}
			v.phase[b] = sim.Time(ps.next() % uint64(v.period))
			v.counted[b] = -1
		}
	}
	inj.vsites = append(inj.vsites, v)
	return v
}

// SetTracer redirects the site's vault-side emissions (poison, bank
// blackout) to tr. Ingress-stall emissions stay on the injector's
// tracer: they happen at request admission, which always runs on the
// coordinator shard.
func (v *VaultSite) SetTracer(tr *obs.Tracer) {
	if v != nil {
		v.tr = tr
	}
}

// vaultTracer returns the tracer for vault-side emissions.
func (v *VaultSite) vaultTracer() *obs.Tracer {
	if v.tr != nil {
		return v.tr
	}
	return v.inj.tr
}

// StallDelay draws one request's ingress stall: 0 for a clean delivery,
// otherwise the extra delay before the vault sees the request.
func (v *VaultSite) StallDelay(at sim.Time) sim.Time {
	if v == nil || v.stallRate <= 0 {
		return 0
	}
	if v.stallRNG.float() >= v.stallRate {
		return 0
	}
	v.stalls++
	v.inj.tr.Emit(obs.Event{At: int64(at), Type: obs.EvFaultVaultStall,
		Vault: v.id, Bank: -1, Arg: int64(v.stallFor)})
	return v.stallFor
}

// PoisonInsert draws whether a row arriving in the prefetch buffer at time
// at is damaged and must be discarded.
func (v *VaultSite) PoisonInsert(bank int, row int64, at sim.Time) bool {
	if v == nil || v.poisonRate <= 0 {
		return false
	}
	if v.poisonRNG.float() >= v.poisonRate {
		return false
	}
	v.poisoned++
	v.vaultTracer().Emit(obs.Event{At: int64(at), Type: obs.EvFaultPoison,
		Vault: v.id, Bank: int32(bank), Row: row})
	return true
}

// BankBlockedUntil reports the end of the unavailability window covering
// bank at time now, or 0 when the bank is available. Window placement is
// pure arithmetic over the pre-drawn phase, so the answer does not depend
// on how often the scheduler asks.
func (v *VaultSite) BankBlockedUntil(bank int, now sim.Time) sim.Time {
	if v == nil || v.period <= 0 || bank >= len(v.phase) {
		return 0
	}
	t := now - v.phase[bank]
	if t < 0 {
		return 0 // before the bank's first window
	}
	k := int64(t / v.period)
	start := v.phase[bank] + sim.Time(k)*v.period
	end := start + v.duration
	if now >= end {
		return 0
	}
	if v.counted[bank] != k {
		v.counted[bank] = k
		v.blackouts++
		v.vaultTracer().Emit(obs.Event{At: int64(start), Type: obs.EvFaultBankFail,
			Vault: v.id, Bank: int32(bank), Arg: int64(v.duration)})
	}
	return end
}
