package plot

import (
	"math"
	"strings"
	"testing"

	"camps/internal/stats"
)

func sample() *stats.Table {
	t := &stats.Table{Title: "demo figure", Columns: []string{"A", "BB"}}
	t.AddRow("HM1", 1.0, 2.0)
	t.AddRow("LM1", 0.5, 1.0)
	return t
}

func TestBarsBasic(t *testing.T) {
	out := Bars(sample(), Options{Width: 10})
	for _, want := range []string{"demo figure", "HM1", "LM1", "A ", "BB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Largest value (2.0) gets the full width of '#'.
	if !strings.Contains(out, strings.Repeat("#", 10)+" 2.000") {
		t.Fatalf("max bar not full width:\n%s", out)
	}
	// Half value gets roughly half the bars.
	if !strings.Contains(out, strings.Repeat("#", 5)+" 1.000") {
		t.Fatalf("mid bar not scaled:\n%s", out)
	}
}

func TestBarsBaseline(t *testing.T) {
	tb := &stats.Table{Title: "norm", Columns: []string{"X"}}
	tb.AddRow("up", 1.5)
	tb.AddRow("down", 0.5)
	out := Bars(tb, Options{Width: 8, Baseline: 1.0, UseBaseline: true})
	if !strings.Contains(out, "|"+strings.Repeat(">", 8)) {
		t.Fatalf("above-baseline bar missing:\n%s", out)
	}
	if !strings.Contains(out, strings.Repeat("<", 8)+"|") {
		t.Fatalf("below-baseline bar missing:\n%s", out)
	}
}

func TestBarsHandlesNonFinite(t *testing.T) {
	tb := &stats.Table{Columns: []string{"X"}}
	tb.AddRow("nan", math.NaN())
	tb.AddRow("inf", math.Inf(1))
	out := Bars(tb, Options{})
	if strings.Count(out, "?") != 2 {
		t.Fatalf("non-finite cells not flagged:\n%s", out)
	}
}

func TestBarsAllZero(t *testing.T) {
	tb := &stats.Table{Columns: []string{"X"}}
	tb.AddRow("z", 0)
	out := Bars(tb, Options{})
	if !strings.Contains(out, " 0.000") {
		t.Fatalf("zero row mis-rendered:\n%s", out)
	}
}

func TestColumn(t *testing.T) {
	out := Column(sample(), 1, Options{Width: 6})
	if !strings.Contains(out, "demo figure — BB") {
		t.Fatalf("column header missing:\n%s", out)
	}
	if !strings.Contains(out, "HM1") || !strings.Contains(out, "LM1") {
		t.Fatalf("row labels missing:\n%s", out)
	}
	if !strings.Contains(out, strings.Repeat("#", 6)+" 2.000") {
		t.Fatalf("column max bar wrong:\n%s", out)
	}
}

func TestColumnBaseline(t *testing.T) {
	tb := &stats.Table{Title: "t", Columns: []string{"S"}}
	tb.AddRow("a", 1.2)
	tb.AddRow("b", 0.9)
	out := Column(tb, 0, Options{Width: 10, Baseline: 1.0, UseBaseline: true})
	if !strings.Contains(out, ">") || !strings.Contains(out, "<") {
		t.Fatalf("baseline directions missing:\n%s", out)
	}
}
