// Package plot renders stats.Table figures as ASCII bar charts, so
// campbench can show the paper's figures directly in a terminal without
// any plotting dependency.
package plot

import (
	"fmt"
	"math"
	"strings"

	"camps/internal/stats"
)

// Options controls chart rendering.
type Options struct {
	// Width is the maximum bar width in characters (default 48).
	Width int
	// Baseline draws bars relative to this value instead of zero (useful
	// for normalized figures where 1.0 is the reference); bars below the
	// baseline render leftward with '<', above with '>'.
	Baseline float64
	// UseBaseline enables Baseline (0 is a valid baseline).
	UseBaseline bool
	// Precision is the number of value decimals (default 3).
	Precision int
}

func (o *Options) applyDefaults() {
	if o.Width <= 0 {
		o.Width = 48
	}
	if o.Precision <= 0 {
		o.Precision = 3
	}
}

// Bars renders every (row, column) cell of the table as one labelled bar,
// grouped by row. Values must be finite; NaN/Inf cells render as "?".
func Bars(t *stats.Table, opts Options) string {
	opts.applyDefaults()
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	maxAbs := 0.0
	for r := 0; r < t.Rows(); r++ {
		for c := range t.Columns {
			v := t.Value(r, c)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			d := v
			if opts.UseBaseline {
				d = v - opts.Baseline
			}
			if a := math.Abs(d); a > maxAbs {
				maxAbs = a
			}
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	labelW := 0
	for _, c := range t.Columns {
		if len(c) > labelW {
			labelW = len(c)
		}
	}
	for r := 0; r < t.Rows(); r++ {
		fmt.Fprintf(&sb, "%s\n", t.RowLabel(r))
		for c, name := range t.Columns {
			v := t.Value(r, c)
			fmt.Fprintf(&sb, "  %-*s ", labelW, name)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				sb.WriteString("?\n")
				continue
			}
			d := v
			if opts.UseBaseline {
				d = v - opts.Baseline
			}
			n := int(math.Round(math.Abs(d) / maxAbs * float64(opts.Width)))
			switch {
			case opts.UseBaseline && d < 0:
				fmt.Fprintf(&sb, "%s| %.*f\n", strings.Repeat("<", n), opts.Precision, v)
			case opts.UseBaseline:
				fmt.Fprintf(&sb, "|%s %.*f\n", strings.Repeat(">", n), opts.Precision, v)
			default:
				fmt.Fprintf(&sb, "%s %.*f\n", strings.Repeat("#", n), opts.Precision, v)
			}
		}
	}
	return sb.String()
}

// Column renders a single column of the table: one bar per row. Handy for
// per-mix series like Figure 5's CAMPS-MOD speedups.
func Column(t *stats.Table, col int, opts Options) string {
	opts.applyDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.Title, t.Columns[col])
	maxAbs := 0.0
	for r := 0; r < t.Rows(); r++ {
		v := t.Value(r, col)
		if opts.UseBaseline {
			v -= opts.Baseline
		}
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	labelW := 0
	for r := 0; r < t.Rows(); r++ {
		if len(t.RowLabel(r)) > labelW {
			labelW = len(t.RowLabel(r))
		}
	}
	for r := 0; r < t.Rows(); r++ {
		v := t.Value(r, col)
		d := v
		if opts.UseBaseline {
			d -= opts.Baseline
		}
		n := int(math.Round(math.Abs(d) / maxAbs * float64(opts.Width)))
		fmt.Fprintf(&sb, "  %-*s ", labelW, t.RowLabel(r))
		switch {
		case opts.UseBaseline && d < 0:
			fmt.Fprintf(&sb, "%s| %.*f\n", strings.Repeat("<", n), opts.Precision, v)
		case opts.UseBaseline:
			fmt.Fprintf(&sb, "|%s %.*f\n", strings.Repeat(">", n), opts.Precision, v)
		default:
			fmt.Fprintf(&sb, "%s %.*f\n", strings.Repeat("#", n), opts.Precision, v)
		}
	}
	return sb.String()
}
