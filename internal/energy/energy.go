// Package energy converts the simulator's operation counts into HMC energy
// estimates for Figure 9. The paper reports *relative* energy (normalized
// to the BASE scheme) driven chiefly by activation/precharge counts and row
// movement between banks and the prefetch buffer; the per-operation values
// here are representative of published HMC/3D-DRAM numbers and matter only
// through those ratios.
package energy

import (
	"camps/internal/dram"
	"camps/internal/sim"
)

// Model holds per-operation energies in picojoules plus background power.
type Model struct {
	ActPJ       float64 // one row activation
	PrePJ       float64 // one precharge
	ReadPJ      float64 // one 64B column read burst
	WritePJ     float64 // one 64B column write burst
	RowFetchPJ  float64 // one 1KB row copy bank -> prefetch buffer (TSV)
	RowStorePJ  float64 // one 1KB row copy prefetch buffer -> bank
	RefreshPJ   float64 // one per-bank refresh
	BufAccPJ    float64 // one prefetch-buffer access (SRAM in logic base)
	LinkPJJerB  float64 // serial-link energy per byte (SerDes dominated)
	LinkAwakeW  float64 // standby power per awake link direction (watts)
	BackgroundW float64 // remaining cube standby/peripheral power in watts
}

// Default returns representative per-op energies: DRAM core values in line
// with DDR3-class parts scaled for TSV-internal transfers, SerDes-dominated
// link energy, and a modest background term.
func Default() Model {
	return Model{
		ActPJ:       1700,
		PrePJ:       800,
		ReadPJ:      420,
		WritePJ:     450,
		RowFetchPJ:  4200, // 16 internal bursts, no I/O drivers
		RowStorePJ:  4500,
		RefreshPJ:   7200,
		BufAccPJ:    40,
		LinkPJJerB:  12,
		LinkAwakeW:  0.4, // per direction; 8 directions -> 3.2 W awake
		BackgroundW: 6.8, // DRAM standby, refresh logic, vault controllers
	}
}

// Breakdown itemizes an estimate; all values in picojoules.
type Breakdown struct {
	Activate   float64
	Precharge  float64
	Read       float64
	Write      float64
	RowFetch   float64
	RowStore   float64
	Refresh    float64
	Buffer     float64
	Link       float64
	Background float64
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.Activate + b.Precharge + b.Read + b.Write + b.RowFetch +
		b.RowStore + b.Refresh + b.Buffer + b.Link + b.Background
}

// Estimate computes the cube-wide energy for a run: ops is the aggregate
// DRAM operation count across all banks, bufAccesses the prefetch-buffer
// demand accesses (hits), linkBytes total bytes crossing the serial links
// in both directions, linkAwake the summed awake time across all link
// directions (elapsed x directions, minus time slept under link power
// management), and elapsed the simulated wall-clock time.
//
// Note 1 W x 1 ps = 1 pJ, so power terms multiply picosecond durations
// directly.
func (m Model) Estimate(ops dram.Ops, bufAccesses, linkBytes uint64,
	linkAwake, elapsed sim.Time) Breakdown {
	return Breakdown{
		Activate:   float64(ops.Activates) * m.ActPJ,
		Precharge:  float64(ops.Precharges) * m.PrePJ,
		Read:       float64(ops.Reads) * m.ReadPJ,
		Write:      float64(ops.Writes) * m.WritePJ,
		RowFetch:   float64(ops.RowFetches) * m.RowFetchPJ,
		RowStore:   float64(ops.RowStores) * m.RowStorePJ,
		Refresh:    float64(ops.Refreshes) * m.RefreshPJ,
		Buffer:     float64(bufAccesses) * m.BufAccPJ,
		Link:       float64(linkBytes)*m.LinkPJJerB + float64(linkAwake)*m.LinkAwakeW,
		Background: float64(elapsed) * m.BackgroundW,
	}
}
