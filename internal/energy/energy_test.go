package energy

import (
	"testing"

	"camps/internal/dram"
	"camps/internal/sim"
)

func TestEstimateComponents(t *testing.T) {
	m := Model{
		ActPJ: 10, PrePJ: 5, ReadPJ: 2, WritePJ: 3, RowFetchPJ: 20,
		RowStorePJ: 25, RefreshPJ: 50, BufAccPJ: 1, LinkPJJerB: 0.5,
		BackgroundW: 2.0,
	}
	ops := dram.Ops{
		Activates: 4, Precharges: 3, Reads: 10, Writes: 2,
		RowFetches: 5, RowStores: 1, Refreshes: 2,
	}
	b := m.Estimate(ops, 7, 100, 0, sim.Time(1e12)) // 1 second, links asleep
	if b.Activate != 40 || b.Precharge != 15 || b.Read != 20 || b.Write != 6 {
		t.Fatalf("core components wrong: %+v", b)
	}
	if b.RowFetch != 100 || b.RowStore != 25 || b.Refresh != 100 {
		t.Fatalf("row/refresh components wrong: %+v", b)
	}
	if b.Buffer != 7 || b.Link != 50 {
		t.Fatalf("buffer/link wrong: %+v", b)
	}
	if b.Background != 2e12 {
		t.Fatalf("background = %g, want 2e12 pJ (2W x 1s)", b.Background)
	}
	want := 40.0 + 15 + 20 + 6 + 100 + 25 + 100 + 7 + 50 + 2e12
	if b.Total() != want {
		t.Fatalf("total = %g, want %g", b.Total(), want)
	}
}

func TestDefaultModelOrdering(t *testing.T) {
	m := Default()
	// A whole-row fetch must cost more than a single-line read but less
	// than 16 independent reads (no I/O drivers, single activation window).
	if m.RowFetchPJ <= m.ReadPJ || m.RowFetchPJ >= 16*m.ReadPJ {
		t.Fatalf("row fetch energy %g not between one and sixteen reads", m.RowFetchPJ)
	}
	// Buffer accesses are far cheaper than DRAM column accesses.
	if m.BufAccPJ*5 > m.ReadPJ {
		t.Fatalf("buffer access %g too expensive relative to DRAM read %g", m.BufAccPJ, m.ReadPJ)
	}
}

func TestMoreActivationsCostMore(t *testing.T) {
	m := Default()
	few := m.Estimate(dram.Ops{Activates: 100, Precharges: 100}, 0, 0, 0, 0)
	many := m.Estimate(dram.Ops{Activates: 200, Precharges: 200}, 0, 0, 0, 0)
	if many.Total() <= few.Total() {
		t.Fatal("activation count does not drive energy")
	}
}

func TestLinkAwakePower(t *testing.T) {
	m := Model{LinkAwakeW: 0.5}
	// 1 us awake at 0.5 W -> 0.5e6 pJ.
	b := m.Estimate(dram.Ops{}, 0, 0, sim.Time(1e6), 0)
	if b.Link != 0.5e6 {
		t.Fatalf("link awake energy = %g, want 0.5e6", b.Link)
	}
	// Sleeping more (less awake time) costs less.
	slept := m.Estimate(dram.Ops{}, 0, 0, sim.Time(0.4e6), 0)
	if slept.Link >= b.Link {
		t.Fatal("sleeping did not reduce link energy")
	}
}
