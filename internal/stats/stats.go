// Package stats provides the measurement primitives shared by the
// simulator: counters, latency accumulators, histograms, and the aggregate
// math (geometric means, normalized speedups) used to reproduce the paper's
// figures.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a simple monotonic event counter.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// MarshalJSON encodes the counter as its bare value, so result structs
// that embed counters round-trip through checkpoint files.
func (c Counter) MarshalJSON() ([]byte, error) { return json.Marshal(c.n) }

// UnmarshalJSON decodes a bare value produced by MarshalJSON.
func (c *Counter) UnmarshalJSON(b []byte) error { return json.Unmarshal(b, &c.n) }

// LatencyAccum accumulates a latency distribution's sum/count/min/max.
type LatencyAccum struct {
	count uint64
	sum   float64
	min   float64
	max   float64
}

// Observe records one latency sample.
func (a *LatencyAccum) Observe(v float64) {
	if a.count == 0 || v < a.min {
		a.min = v
	}
	if a.count == 0 || v > a.max {
		a.max = v
	}
	a.count++
	a.sum += v
}

// Count returns the number of samples.
func (a LatencyAccum) Count() uint64 { return a.count }

// Sum returns the total of all samples.
func (a LatencyAccum) Sum() float64 { return a.sum }

// Mean returns the average sample, or 0 with no samples.
func (a LatencyAccum) Mean() float64 {
	if a.count == 0 {
		return 0
	}
	return a.sum / float64(a.count)
}

// Min returns the smallest sample, or 0 with no samples.
func (a LatencyAccum) Min() float64 { return a.min }

// Max returns the largest sample, or 0 with no samples.
func (a LatencyAccum) Max() float64 { return a.max }

// Merge folds another accumulator into this one.
func (a *LatencyAccum) Merge(b LatencyAccum) {
	if b.count == 0 {
		return
	}
	if a.count == 0 {
		*a = b
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.count += b.count
	a.sum += b.sum
}

// latencyAccumJSON is the wire form of LatencyAccum.
type latencyAccumJSON struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// MarshalJSON encodes the accumulator's four moments, so result structs
// that embed accumulators round-trip through checkpoint files.
func (a LatencyAccum) MarshalJSON() ([]byte, error) {
	return json.Marshal(latencyAccumJSON{Count: a.count, Sum: a.sum, Min: a.min, Max: a.max})
}

// UnmarshalJSON decodes the form produced by MarshalJSON.
func (a *LatencyAccum) UnmarshalJSON(b []byte) error {
	var w latencyAccumJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	a.count, a.sum, a.min, a.max = w.Count, w.Sum, w.Min, w.Max
	return nil
}

// Histogram is a fixed-bucket histogram with a configurable bucket width.
type Histogram struct {
	width    float64
	buckets  []uint64
	overflow uint64
	total    uint64
}

// NewHistogram returns a histogram with n buckets of the given width.
// Sample v lands in bucket floor(v/width); v >= n*width counts as overflow.
func NewHistogram(n int, width float64) *Histogram {
	if n <= 0 || width <= 0 {
		panic("stats: histogram needs positive bucket count and width")
	}
	return &Histogram{width: width, buckets: make([]uint64, n)}
}

// Observe records a sample.
func (h *Histogram) Observe(v float64) {
	h.total++
	if v < 0 {
		v = 0
	}
	i := int(v / h.width)
	if i >= len(h.buckets) {
		h.overflow++
		return
	}
	h.buckets[i]++
}

// Total returns the number of samples.
func (h *Histogram) Total() uint64 { return h.total }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Overflow returns the number of samples above the last bucket.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) using
// bucket upper edges. Overflowed samples report +Inf.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, b := range h.buckets {
		cum += b
		if cum >= target {
			return float64(i+1) * h.width
		}
	}
	return math.Inf(1)
}

// GeoMean returns the geometric mean of strictly positive values.
// It returns 0 for an empty slice and panics on non-positive input, since a
// non-positive IPC always indicates a bookkeeping bug upstream.
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %g", v))
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Speedup returns the normalized speedup of ipc over baseline, computed as
// the paper does: the ratio of geometric means of per-core IPCs.
func Speedup(ipc, baseline []float64) float64 {
	b := GeoMean(baseline)
	if b == 0 {
		return 0
	}
	return GeoMean(ipc) / b
}

// Ratio returns a/b, or 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// PercentChange returns (newv-oldv)/oldv*100, or 0 when oldv is 0.
func PercentChange(oldv, newv float64) float64 {
	if oldv == 0 {
		return 0
	}
	return (newv - oldv) / oldv * 100
}

// Table formats labelled rows of float columns as an aligned text table,
// used by the figure harness and the CLI tools.
type Table struct {
	Title   string
	Columns []string
	rows    []tableRow
}

type tableRow struct {
	label  string
	values []float64
}

// AddRow appends one row; the number of values must match Columns.
func (t *Table) AddRow(label string, values ...float64) {
	if len(values) != len(t.Columns) {
		panic(fmt.Sprintf("stats: row %q has %d values, want %d", label, len(values), len(t.Columns)))
	}
	t.rows = append(t.rows, tableRow{label: label, values: values})
}

// Rows returns the number of rows added.
func (t *Table) Rows() int { return len(t.rows) }

// Value returns the value at (row, col).
func (t *Table) Value(row, col int) float64 { return t.rows[row].values[col] }

// RowLabel returns the label of row i.
func (t *Table) RowLabel(i int) string { return t.rows[i].label }

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	labelW := len("workload")
	for _, r := range t.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	fmt.Fprintf(&sb, "%-*s", labelW+2, "workload")
	for _, c := range t.Columns {
		fmt.Fprintf(&sb, "%12s", c)
	}
	sb.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&sb, "%-*s", labelW+2, r.label)
		for _, v := range r.values {
			fmt.Fprintf(&sb, "%12.4f", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString("workload")
	for _, c := range t.Columns {
		sb.WriteByte(',')
		sb.WriteString(c)
	}
	sb.WriteByte('\n')
	for _, r := range t.rows {
		sb.WriteString(r.label)
		for _, v := range r.values {
			fmt.Fprintf(&sb, ",%.6f", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ColumnGeoMean returns the geometric mean of a column across rows.
func (t *Table) ColumnGeoMean(col int) float64 {
	vs := make([]float64, 0, len(t.rows))
	for _, r := range t.rows {
		vs = append(vs, r.values[col])
	}
	return GeoMean(vs)
}

// ColumnMean returns the arithmetic mean of a column across rows.
func (t *Table) ColumnMean(col int) float64 {
	vs := make([]float64, 0, len(t.rows))
	for _, r := range t.rows {
		vs = append(vs, r.values[col])
	}
	return Mean(vs)
}

// SortRows orders rows by label; used to keep parallel experiment output
// deterministic regardless of completion order.
func (t *Table) SortRows(less func(a, b string) bool) {
	sort.SliceStable(t.rows, func(i, j int) bool { return less(t.rows[i].label, t.rows[j].label) })
}
