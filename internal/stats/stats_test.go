package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 6 {
		t.Fatalf("counter = %d, want 6", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("counter after reset = %d, want 0", c.Value())
	}
}

func TestLatencyAccum(t *testing.T) {
	var a LatencyAccum
	if a.Mean() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
	for _, v := range []float64{10, 20, 30} {
		a.Observe(v)
	}
	if a.Count() != 3 || !almostEq(a.Mean(), 20) || a.Min() != 10 || a.Max() != 30 {
		t.Fatalf("accum = count %d mean %g min %g max %g", a.Count(), a.Mean(), a.Min(), a.Max())
	}
}

func TestLatencyAccumMerge(t *testing.T) {
	var a, b LatencyAccum
	a.Observe(1)
	a.Observe(3)
	b.Observe(10)
	a.Merge(b)
	if a.Count() != 3 || a.Max() != 10 || a.Min() != 1 || !almostEq(a.Sum(), 14) {
		t.Fatalf("merged accum wrong: %+v", a)
	}
	var empty LatencyAccum
	a.Merge(empty)
	if a.Count() != 3 {
		t.Fatal("merging empty changed count")
	}
	var c LatencyAccum
	c.Merge(a)
	if c.Count() != 3 || c.Min() != 1 {
		t.Fatal("merge into empty lost data")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4, 10)
	for _, v := range []float64{0, 5, 15, 35, 100, -2} {
		h.Observe(v)
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d, want 6", h.Total())
	}
	if h.Bucket(0) != 3 { // 0, 5, and clamped -2
		t.Fatalf("bucket 0 = %d, want 3", h.Bucket(0))
	}
	if h.Bucket(1) != 1 || h.Bucket(3) != 1 {
		t.Fatalf("buckets = [%d %d %d %d]", h.Bucket(0), h.Bucket(1), h.Bucket(2), h.Bucket(3))
	}
	if h.Overflow() != 1 {
		t.Fatalf("overflow = %d, want 1", h.Overflow())
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Fatalf("median = %g, want 10", q)
	}
	if q := h.Quantile(1.0); !math.IsInf(q, 1) {
		t.Fatalf("p100 with overflow = %g, want +Inf", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(2, 1)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
	if g := GeoMean([]float64{2, 8}); !almostEq(g, 4) {
		t.Fatalf("GeoMean(2,8) = %g, want 4", g)
	}
	if g := GeoMean([]float64{3, 3, 3}); !almostEq(g, 3) {
		t.Fatalf("GeoMean(3,3,3) = %g, want 3", g)
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean of zero did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

// Property: geomean lies between min and max and is scale-equivariant.
func TestGeoMeanProperties(t *testing.T) {
	prop := func(raw []uint8) bool {
		var vs []float64
		for _, r := range raw {
			vs = append(vs, float64(r)+1) // strictly positive
		}
		if len(vs) == 0 {
			return true
		}
		g := GeoMean(vs)
		mn, mx := vs[0], vs[0]
		for _, v := range vs {
			mn = math.Min(mn, v)
			mx = math.Max(mx, v)
		}
		if g < mn-1e-9 || g > mx+1e-9 {
			return false
		}
		scaled := make([]float64, len(vs))
		for i, v := range vs {
			scaled[i] = v * 2
		}
		return math.Abs(GeoMean(scaled)-2*g) < 1e-6*g
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupAndRatios(t *testing.T) {
	if s := Speedup([]float64{2, 2}, []float64{1, 1}); !almostEq(s, 2) {
		t.Fatalf("Speedup = %g, want 2", s)
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio with zero denominator should be 0")
	}
	if pc := PercentChange(100, 120); !almostEq(pc, 20) {
		t.Fatalf("PercentChange = %g, want 20", pc)
	}
	if PercentChange(0, 5) != 0 {
		t.Fatal("PercentChange from 0 should be 0")
	}
}

func TestTable(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"A", "B"}}
	tb.AddRow("HM1", 1.0, 2.0)
	tb.AddRow("LM1", 3.0, 4.0)
	if tb.Rows() != 2 || tb.Value(1, 1) != 4.0 || tb.RowLabel(0) != "HM1" {
		t.Fatal("table accessors broken")
	}
	out := tb.String()
	for _, want := range []string{"demo", "HM1", "LM1", "A", "B", "3.0000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "workload,A,B\n") || !strings.Contains(csv, "HM1,1.000000,2.000000") {
		t.Fatalf("csv wrong:\n%s", csv)
	}
	if g := tb.ColumnGeoMean(0); !almostEq(g, math.Sqrt(3)) {
		t.Fatalf("column geomean = %g", g)
	}
	if m := tb.ColumnMean(1); !almostEq(m, 3) {
		t.Fatalf("column mean = %g", m)
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	tb := &Table{Columns: []string{"A"}}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched AddRow did not panic")
		}
	}()
	tb.AddRow("x", 1, 2)
}

func TestTableSortRows(t *testing.T) {
	tb := &Table{Columns: []string{"A"}}
	tb.AddRow("b", 2)
	tb.AddRow("a", 1)
	tb.SortRows(func(x, y string) bool { return x < y })
	if tb.RowLabel(0) != "a" {
		t.Fatal("SortRows did not sort")
	}
}

// Regression: LatencyAccum's min/max must seed from the first sample
// rather than the zero value, so all-negative sample streams (e.g. clock
// skew deltas) report a negative max instead of a spurious 0.
func TestLatencyAccumNegativeSamples(t *testing.T) {
	var a LatencyAccum
	for _, v := range []float64{-30, -10, -20} {
		a.Observe(v)
	}
	if a.Min() != -30 || a.Max() != -10 {
		t.Fatalf("min/max = %g/%g, want -30/-10", a.Min(), a.Max())
	}
	if !almostEq(a.Mean(), -20) {
		t.Fatalf("mean = %g, want -20", a.Mean())
	}
}

// Regression: Merge must preserve min/max across disjoint negative and
// positive ranges and not re-seed from zero values.
func TestLatencyAccumMergeNegativeRanges(t *testing.T) {
	var neg, pos LatencyAccum
	neg.Observe(-5)
	neg.Observe(-1)
	pos.Observe(2)
	pos.Observe(8)
	neg.Merge(pos)
	if neg.Count() != 4 || neg.Min() != -5 || neg.Max() != 8 {
		t.Fatalf("merged = count %d min %g max %g, want 4/-5/8", neg.Count(), neg.Min(), neg.Max())
	}
	if !almostEq(neg.Sum(), 4) {
		t.Fatalf("merged sum = %g, want 4", neg.Sum())
	}
	// Merging an all-negative accumulator into an empty one must not keep
	// the empty zero max.
	var c LatencyAccum
	var onlyNeg LatencyAccum
	onlyNeg.Observe(-7)
	c.Merge(onlyNeg)
	if c.Max() != -7 || c.Min() != -7 {
		t.Fatalf("empty.Merge(neg) min/max = %g/%g, want -7/-7", c.Min(), c.Max())
	}
}

func TestCounterJSONRoundTrip(t *testing.T) {
	var c Counter
	c.Add(42)
	b, err := json.Marshal(struct{ N Counter }{c})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"N":42}` {
		t.Fatalf("counter marshalled as %s", b)
	}
	var back struct{ N Counter }
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.N.Value() != 42 {
		t.Fatalf("round-trip = %d, want 42", back.N.Value())
	}
}

func TestLatencyAccumJSONRoundTrip(t *testing.T) {
	var a LatencyAccum
	a.Observe(10)
	a.Observe(30)
	b, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back LatencyAccum
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != 2 || back.Sum() != 40 || back.Min() != 10 || back.Max() != 30 {
		t.Fatalf("round-trip = count %d sum %g min %g max %g", back.Count(), back.Sum(), back.Min(), back.Max())
	}
	if back.Mean() != a.Mean() {
		t.Fatalf("mean %g != %g", back.Mean(), a.Mean())
	}
}
