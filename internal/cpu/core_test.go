package cpu

import (
	"testing"

	"camps/internal/cache"
	"camps/internal/config"
	"camps/internal/sim"
	"camps/internal/trace"
)

// fakeMem completes reads after a fixed latency.
type fakeMem struct {
	eng     *sim.Engine
	latency sim.Time
	reads   int
	writes  int
}

func (m *fakeMem) ReadLine(_ uint64, done func(at sim.Time)) {
	m.reads++
	at := m.eng.Now() + m.latency
	m.eng.At(at, func() { done(at) })
}

func (m *fakeMem) WriteLine(uint64) { m.writes++ }

func testSetup(latency sim.Time, window int) (*sim.Engine, config.Config, *cache.Hierarchy, *fakeMem) {
	cfg := config.Default()
	cfg.Processor.WindowSize = window
	eng := sim.NewEngine()
	return eng, cfg, cache.NewHierarchy(cfg), &fakeMem{eng: eng, latency: latency}
}

// hitTrace repeats accesses to one line: everything after the first is an
// L1 hit.
func hitTrace(n int) trace.Reader {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{Gap: 4, Addr: 64}
	}
	return trace.NewSliceReader(recs)
}

// missTrace touches a fresh line every access: every access misses to
// memory.
func missTrace(n int) trace.Reader {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{Gap: 4, Addr: uint64(i+1) * 64}
	}
	return trace.NewSliceReader(recs)
}

func runCore(t *testing.T, eng *sim.Engine, c *Core) {
	t.Helper()
	c.Start()
	eng.Run()
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if !c.Finished() {
		t.Fatal("core never finished")
	}
}

func TestCacheHitIPCNearBound(t *testing.T) {
	eng, cfg, h, mem := testSetup(100*sim.Nanosecond, 8)
	done := false
	c := NewCore(eng, cfg, 0, hitTrace(10000), h, mem, 40000, func(int) { done = true })
	runCore(t, eng, c)
	if !done {
		t.Fatal("onFinish not called")
	}
	// Each record: 4 gap instructions (1 cycle at width 4) + 1 memory op
	// with a 2-cycle L1 hit -> 5 instructions / 3 cycles ~ 1.67 IPC.
	ipc := c.IPC()
	if ipc < 1.2 || ipc > 2.0 {
		t.Fatalf("cache-resident IPC = %g, want ~1.67", ipc)
	}
	if mem.reads > 1 {
		t.Fatalf("cache-resident trace issued %d memory reads", mem.reads)
	}
}

func TestMemoryLatencyLowersIPC(t *testing.T) {
	run := func(lat sim.Time) float64 {
		eng, cfg, h, mem := testSetup(lat, 8)
		c := NewCore(eng, cfg, 0, missTrace(3000), h, mem, 15000, nil)
		runCore(t, eng, c)
		return c.IPC()
	}
	fast := run(50 * sim.Nanosecond)
	slow := run(500 * sim.Nanosecond)
	if fast <= slow {
		t.Fatalf("IPC insensitive to memory latency: fast %g vs slow %g", fast, slow)
	}
	if slow <= 0 {
		t.Fatalf("slow IPC = %g, want positive", slow)
	}
}

func TestWiderWindowRaisesIPCUnderMisses(t *testing.T) {
	run := func(window int) float64 {
		eng, cfg, h, mem := testSetup(200*sim.Nanosecond, window)
		c := NewCore(eng, cfg, 0, missTrace(3000), h, mem, 15000, nil)
		runCore(t, eng, c)
		return c.IPC()
	}
	narrow := run(1)
	wide := run(8)
	if wide <= narrow*1.5 {
		t.Fatalf("MLP window has no effect: window1 %g vs window8 %g", narrow, wide)
	}
}

func TestStallTimeAccountedWhenWindowFull(t *testing.T) {
	eng, cfg, h, mem := testSetup(1*sim.Microsecond, 1)
	c := NewCore(eng, cfg, 0, missTrace(100), h, mem, 500, nil)
	runCore(t, eng, c)
	if c.StallTime() == 0 {
		t.Fatal("window-1 core with slow memory never stalled")
	}
}

func TestInstructionAccounting(t *testing.T) {
	eng, cfg, h, mem := testSetup(50*sim.Nanosecond, 8)
	// 100 records x (4 gap + 1 mem) = 500 instructions.
	c := NewCore(eng, cfg, 0, hitTrace(100), h, mem, 500, nil)
	runCore(t, eng, c)
	if c.Instructions() != 500 {
		t.Fatalf("instructions = %d, want 500", c.Instructions())
	}
}

func TestFinishOnTraceEOFBeforeBudget(t *testing.T) {
	eng, cfg, h, mem := testSetup(50*sim.Nanosecond, 8)
	finished := false
	c := NewCore(eng, cfg, 0, hitTrace(10), h, mem, 1<<40, func(int) { finished = true })
	c.Start()
	eng.Run()
	if !finished || !c.Finished() {
		t.Fatal("EOF did not finish the core")
	}
}

func TestWritebacksReachMemory(t *testing.T) {
	cfg := config.Default()
	// Tiny caches force dirty evictions quickly.
	cfg.L1 = config.CacheLevel{SizeBytes: 128, Ways: 1, LineBytes: 64, HitLatency: 2, MSHRs: 4}
	cfg.L2 = config.CacheLevel{SizeBytes: 256, Ways: 1, LineBytes: 64, HitLatency: 6, MSHRs: 4}
	cfg.L3 = config.CacheLevel{SizeBytes: 512, Ways: 1, LineBytes: 64, HitLatency: 20, MSHRs: 4, Shared: true}
	eng := sim.NewEngine()
	h := cache.NewHierarchy(cfg)
	mem := &fakeMem{eng: eng, latency: 10 * sim.Nanosecond}
	recs := make([]trace.Record, 500)
	for i := range recs {
		recs[i] = trace.Record{Gap: 2, Addr: uint64(i) * 64, Write: true}
	}
	c := NewCore(eng, cfg, 0, trace.NewSliceReader(recs), h, mem, 1000, nil)
	runCore(t, eng, c)
	if mem.writes == 0 {
		t.Fatal("dirty evictions never reached memory")
	}
	if c.MemWrites() != uint64(mem.writes) {
		t.Fatalf("core counted %d writes, memory saw %d", c.MemWrites(), mem.writes)
	}
}

func TestZeroBudgetPanics(t *testing.T) {
	eng, cfg, h, mem := testSetup(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero budget did not panic")
		}
	}()
	NewCore(eng, cfg, 0, hitTrace(1), h, mem, 0, nil)
}

func TestCoreDeterminism(t *testing.T) {
	run := func() (float64, uint64) {
		cfg := config.Default()
		eng := sim.NewEngine()
		h := cache.NewHierarchy(cfg)
		mem := &fakeMem{eng: eng, latency: 80 * sim.Nanosecond}
		gen := trace.MustGenerator(trace.Profile{
			Name: "d", FootprintBytes: 8 << 20, GapMean: 3, ReadFrac: 0.7,
			Streams: 2, StreamProb: 0.6, StrideBytes: 64,
			ConflictProb: 0.1, ConflictStreams: 2, ConflictStride: 512 << 10, LineBytes: 64,
		}, 0, 5)
		// The generator is infinite; halt the engine once the measured
		// region completes (the system driver's job in full simulations).
		var c *Core
		c = NewCore(eng, cfg, 0, gen, h, mem, 50000, func(int) { eng.Halt() })
		c.Start()
		eng.Run()
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		if !c.Finished() {
			t.Fatal("core never finished")
		}
		return c.IPC(), c.MemReads()
	}
	a1, a2 := run()
	b1, b2 := run()
	if a1 != b1 || a2 != b2 {
		t.Fatalf("nondeterministic core: (%g,%d) vs (%g,%d)", a1, a2, b1, b2)
	}
}
