// Package cpu implements the trace-driven core model: a 4-wide core with a
// bounded in-flight-miss window (memory-level parallelism), the standard
// simplification for studies whose subject is the memory system. IPC
// responds to main-memory latency exactly the way the paper's figures
// require: more time spent with a full miss window means fewer
// instructions per cycle.
//
// The core's native clock is its own cycle domain: it accumulates an
// integer cycle count and converts to engine time through the exact
// rational sim.Clock, so a 3 GHz core (1000/3 ps period) runs at 3 GHz
// rather than drifting to the truncated 333 ps ≈ 3.003 GHz. Each
// conversion rounds once from the total cycle count, so the error never
// accumulates past a picosecond.
package cpu

import (
	"errors"
	"fmt"
	"io"

	"camps/internal/cache"
	"camps/internal/config"
	"camps/internal/obs"
	"camps/internal/sim"
	"camps/internal/stats"
	"camps/internal/trace"
)

// Memory is the interface the cores' cache-miss traffic goes to (the HMC).
type Memory interface {
	// ReadLine fetches one cache line; done fires when data is back.
	ReadLine(addr uint64, done func(at sim.Time))
	// WriteLine posts one cache-line writeback.
	WriteLine(addr uint64)
}

// yieldQuantum bounds how far a core's local clock may run ahead of the
// global event clock before it reschedules itself, which bounds the
// functional-order skew between cores sharing the L3.
const yieldQuantum = 2000 // CPU cycles

// Core executes one trace.
type Core struct {
	eng    *sim.Engine
	id     int
	reader trace.Reader
	hier   *cache.Hierarchy
	mem    Memory

	issueWidth uint64
	window     int
	clk        sim.Clock
	quantum    sim.Time
	budget     uint64 // instructions in the measured region
	onFinish   func(id int)

	cycles       int64    // local clock, in core cycles
	localTime    sim.Time // clk.Cycles(cycles), kept in sync
	outstanding  int
	blocked      bool
	finished     bool
	finishCycles int64
	instret      uint64

	// Hot-path callbacks bound once so per-record scheduling and per-miss
	// issue do not allocate a new closure each time. Writebacks and demand
	// reads ride the engine's AtArg path: the address travels in the event
	// node instead of a capturing closure.
	stepFn      func()
	readDoneFn  func(sim.Time)
	writeLineFn func(uint64)
	issueReadFn func(uint64)

	// Optional core-side stride prefetcher on the L2 miss stream (the
	// paper's §2.4 comparison point); nil when disabled.
	stride       *cache.StrideDetector
	prefIssued   stats.Counter
	prefFiltered stats.Counter // predictions already cached

	memReads  stats.Counter
	memWrites stats.Counter
	stallTime sim.Time // time spent with a full window
	err       error
}

// NewCore builds a core. budget is the measured instruction count; when
// every core in a system reaches its budget the driver halts the engine
// (cores keep executing past their budget to keep contention realistic).
func NewCore(eng *sim.Engine, cfg config.Config, id int, r trace.Reader,
	h *cache.Hierarchy, mem Memory, budget uint64, onFinish func(id int)) *Core {
	if budget == 0 {
		panic("cpu: zero instruction budget")
	}
	clk := cfg.CPUClock()
	c := &Core{
		eng:        eng,
		id:         id,
		reader:     r,
		hier:       h,
		mem:        mem,
		issueWidth: uint64(cfg.Processor.IssueWidth),
		window:     cfg.Processor.WindowSize,
		clk:        clk,
		quantum:    clk.Cycles(yieldQuantum),
		budget:     budget,
		onFinish:   onFinish,
	}
	c.stepFn = c.step
	c.readDoneFn = c.readDone
	c.writeLineFn = func(addr uint64) { c.mem.WriteLine(addr) }
	c.issueReadFn = func(addr uint64) { c.mem.ReadLine(addr, c.readDoneFn) }
	if d := cfg.Processor.L2PrefetchDegree; d > 0 {
		c.stride = cache.NewStrideDetector(16, d)
	}
	return c
}

// Instrument registers the core's counters with the observability
// registry under the cpu.* namespace. Registration is additive across
// cores: snapshots report processor-wide totals. Call before Start.
func (c *Core) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("cpu.instructions", func() uint64 { return c.instret })
	reg.CounterFunc("cpu.mem_reads", c.memReads.Value)
	reg.CounterFunc("cpu.mem_writes", c.memWrites.Value)
	reg.CounterFunc("cpu.stride_prefetches", c.prefIssued.Value)
	reg.GaugeFunc("cpu.outstanding_misses", func() float64 { return float64(c.outstanding) })
	reg.GaugeFunc("cpu.stall_time_ps", func() float64 { return float64(c.stallTime) })
}

// Start begins execution at the current simulation time.
func (c *Core) Start() {
	c.cycles = c.clk.ToCyclesCeil(c.eng.Now())
	c.localTime = c.clk.Cycles(c.cycles)
	c.step()
}

// advance moves the local clock forward n cycles.
func (c *Core) advance(n int64) {
	c.cycles += n
	c.localTime = c.clk.Cycles(c.cycles)
}

// step processes trace records until the core must yield: window full,
// local clock too far ahead, trace exhausted, or engine halted.
func (c *Core) step() {
	for {
		if c.eng.Halted() || c.err != nil {
			return
		}
		if c.outstanding >= c.window {
			c.blocked = true
			return
		}
		if c.localTime > c.eng.Now()+c.quantum {
			at := c.localTime - c.quantum
			c.eng.At(at, c.stepFn)
			return
		}
		rec, err := c.reader.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				c.err = fmt.Errorf("cpu: core %d trace: %w", c.id, err)
			}
			c.finish()
			return
		}
		// Non-memory instructions retire issueWidth per cycle.
		gap := uint64(rec.Gap)
		c.advance(int64((gap + c.issueWidth - 1) / c.issueWidth))

		res := c.hier.Access(c.id, rec.Addr, rec.Write)
		memRead := res.Level == 4 && !rec.Write
		if memRead {
			// The cache-lookup latency of a miss overlaps with the memory
			// access itself (both ride in the out-of-order window), so
			// only charge the L1 probe serially.
			c.advance(int64(c.hier.L1(c.id).HitLatency()))
		} else {
			c.advance(int64(res.Latency))
		}
		issueAt := maxTime(c.localTime, c.eng.Now())
		for _, wb := range res.Writebacks {
			c.memWrites.Inc()
			c.eng.AtArg(issueAt, c.writeLineFn, wb)
		}
		if memRead {
			// Demand read miss: occupy a window slot until data returns.
			c.memReads.Inc()
			c.outstanding++
			c.eng.AtArg(issueAt, c.issueReadFn, rec.Addr)
		}
		if c.stride != nil && res.Level >= 3 && !rec.Write {
			// Train the core-side prefetcher on the L2 miss stream and
			// issue its predictions (no window slot: a separate engine).
			c.issueStridePrefetches(rec.Addr, issueAt)
		}
		// Write misses install dirty lines without a fill (write-validate);
		// their traffic reaches memory as eventual writebacks.
		c.retire(gap + 1)
	}
}

// issueStridePrefetches feeds the detector one L2-miss address and sends
// its predictions to memory; returned data installs into L2/L3 with dirty
// victims written back.
func (c *Core) issueStridePrefetches(addr uint64, at sim.Time) {
	for _, pa := range c.stride.Observe(addr) {
		pa := pa
		if c.hier.L2(c.id).Contains(pa) || c.hier.L3().Contains(pa) {
			c.prefFiltered.Inc()
			continue
		}
		c.prefIssued.Inc()
		c.eng.At(at, func() {
			c.mem.ReadLine(pa, func(sim.Time) {
				for _, wb := range c.hier.InstallPrefetched(c.id, pa) {
					c.mem.WriteLine(wb)
				}
			})
		})
	}
}

// StridePrefetches returns core-side prefetches issued (0 when disabled).
func (c *Core) StridePrefetches() uint64 { return c.prefIssued.Value() }

// readDone is called when an outstanding read's data arrives.
func (c *Core) readDone(at sim.Time) {
	c.outstanding--
	if c.blocked {
		c.blocked = false
		if at > c.localTime {
			// Stalled until the data instant; resume on the next core edge.
			c.stallTime += at - c.localTime
			c.cycles = c.clk.ToCyclesCeil(at)
			c.localTime = c.clk.Cycles(c.cycles)
		}
		c.step()
	}
}

// retire counts instructions and detects the budget boundary.
func (c *Core) retire(n uint64) {
	c.instret += n
	if !c.finished && c.instret >= c.budget {
		c.finished = true
		c.finishCycles = c.cycles
		if c.onFinish != nil {
			c.onFinish(c.id)
		}
	}
}

// finish handles trace exhaustion (only possible with finite readers).
func (c *Core) finish() {
	if !c.finished {
		c.finished = true
		c.finishCycles = c.cycles
		if c.onFinish != nil {
			c.onFinish(c.id)
		}
	}
}

// Err returns a trace-read error, if any occurred.
func (c *Core) Err() error { return c.err }

// Finished reports whether the measured region completed.
func (c *Core) Finished() bool { return c.finished }

// Instructions returns instructions retired so far (it keeps counting past
// the budget).
func (c *Core) Instructions() uint64 { return c.instret }

// IPC returns the measured-region instructions per cycle, computed from
// the core's exact cycle count (no time-domain round trip).
func (c *Core) IPC() float64 {
	if c.finishCycles == 0 {
		return 0
	}
	n := c.instret
	if n > c.budget {
		n = c.budget
	}
	return float64(n) / float64(c.finishCycles)
}

// MemReads returns demand read misses sent to memory.
func (c *Core) MemReads() uint64 { return c.memReads.Value() }

// MemWrites returns writebacks sent to memory.
func (c *Core) MemWrites() uint64 { return c.memWrites.Value() }

// StallTime returns time spent blocked on a full miss window.
func (c *Core) StallTime() sim.Time { return c.stallTime }

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
