package report

import (
	"context"
	"strings"
	"testing"

	"camps"
	"camps/internal/harness"
	"camps/internal/obs"
	"camps/internal/stats"
	"camps/internal/workload"
)

func testGrid(t *testing.T) *harness.Grid {
	t.Helper()
	hm1, _ := workload.MixByID("HM1")
	lm1, _ := workload.MixByID("LM1")
	g, err := harness.RunContext(context.Background(), harness.Options{
		Mixes:        []workload.Mix{hm1, lm1},
		WarmupRefs:   3_000,
		MeasureInstr: 40_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMarkdownReport(t *testing.T) {
	g := testGrid(t)
	md := Markdown(g, "CAMPS reproduction")
	for _, want := range []string{
		"# CAMPS reproduction",
		"## Headline comparison",
		"| metric | paper | measured |",
		"+17.9%", // paper headline present
		"Figure 5",
		"Figure 9",
		"## Per-class CAMPS-MOD speedup over BASE",
		"| HM |",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// Every figure table carries the AVG row.
	if strings.Count(md, "| AVG |") < 5 {
		t.Fatalf("AVG rows missing:\n%s", md)
	}
}

func TestMarkdownTable(t *testing.T) {
	tb := &stats.Table{Title: "Figure X", Columns: []string{"A", "B"}}
	tb.AddRow("r1", 1, 2)
	md := MarkdownTable(tb)
	for _, want := range []string{"## Figure X", "| workload | A | B |", "| r1 | 1.0000 | 2.0000 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("missing %q in:\n%s", want, md)
		}
	}
}

func TestSummary(t *testing.T) {
	g := testGrid(t)
	s := Summary(g)
	if !strings.Contains(s, "CAMPS-MOD improves average performance") {
		t.Fatalf("summary = %q", s)
	}
	if !strings.Contains(s, "2 workloads") {
		t.Fatalf("workload count missing: %q", s)
	}
	_ = camps.CAMPSMOD // keep the import honest
}

func TestTimeseries(t *testing.T) {
	reg := obs.NewRegistry()
	conflicts := reg.Counter("vault.row_conflicts")
	queue := reg.Gauge("vault.read_queue")
	lat := reg.Histogram("vault.service_latency_ps")

	var snaps []obs.Snapshot
	conflicts.Add(10)
	queue.Set(2)
	lat.ObserveInt(100)
	snaps = append(snaps, reg.Snapshot("epoch", 5_000_000))
	conflicts.Add(25)
	queue.Set(4)
	snaps = append(snaps, reg.Snapshot("final", 10_000_000))

	metrics := []string{"vault.row_conflicts", "vault.read_queue",
		"vault.service_latency_ps", "no.such.metric"}

	cum := Timeseries(snaps, metrics, false)
	if cum.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", cum.Rows())
	}
	if got := cum.Value(1, 0); got != 35 {
		t.Errorf("cumulative conflicts at final = %g, want 35", got)
	}
	if got := cum.Value(1, 1); got != 4 {
		t.Errorf("gauge column = %g, want 4", got)
	}
	if got := cum.Value(0, 2); got != 100 {
		t.Errorf("histogram mean column = %g, want 100", got)
	}
	if got := cum.Value(1, 3); got != 0 {
		t.Errorf("absent metric = %g, want 0", got)
	}

	delta := Timeseries(snaps, metrics, true)
	if got := delta.Value(0, 0); got != 10 {
		t.Errorf("first delta row = %g, want 10 (cumulative so far)", got)
	}
	if got := delta.Value(1, 0); got != 25 {
		t.Errorf("second delta row = %g, want 25", got)
	}
	// Row labels carry the simulation time and tag.
	if s := delta.String(); !strings.Contains(s, "final") || !strings.Contains(s, "10.0us") {
		t.Errorf("table output missing time/tag labels:\n%s", s)
	}
}
