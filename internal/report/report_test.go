package report

import (
	"strings"
	"testing"

	"camps"
	"camps/internal/harness"
	"camps/internal/stats"
	"camps/internal/workload"
)

func testGrid(t *testing.T) *harness.Grid {
	t.Helper()
	hm1, _ := workload.MixByID("HM1")
	lm1, _ := workload.MixByID("LM1")
	g, err := harness.Run(harness.Options{
		Mixes:        []workload.Mix{hm1, lm1},
		WarmupRefs:   3_000,
		MeasureInstr: 40_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMarkdownReport(t *testing.T) {
	g := testGrid(t)
	md := Markdown(g, "CAMPS reproduction")
	for _, want := range []string{
		"# CAMPS reproduction",
		"## Headline comparison",
		"| metric | paper | measured |",
		"+17.9%", // paper headline present
		"Figure 5",
		"Figure 9",
		"## Per-class CAMPS-MOD speedup over BASE",
		"| HM |",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// Every figure table carries the AVG row.
	if strings.Count(md, "| AVG |") < 5 {
		t.Fatalf("AVG rows missing:\n%s", md)
	}
}

func TestMarkdownTable(t *testing.T) {
	tb := &stats.Table{Title: "Figure X", Columns: []string{"A", "B"}}
	tb.AddRow("r1", 1, 2)
	md := MarkdownTable(tb)
	for _, want := range []string{"## Figure X", "| workload | A | B |", "| r1 | 1.0000 | 2.0000 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("missing %q in:\n%s", want, md)
		}
	}
}

func TestSummary(t *testing.T) {
	g := testGrid(t)
	s := Summary(g)
	if !strings.Contains(s, "CAMPS-MOD improves average performance") {
		t.Fatalf("summary = %q", s)
	}
	if !strings.Contains(s, "2 workloads") {
		t.Fatalf("workload count missing: %q", s)
	}
	_ = camps.CAMPSMOD // keep the import honest
}
