// Package report renders a harness grid as a self-contained Markdown
// reproduction report: every figure as a table, per-class summaries, and
// the paper's headline numbers alongside the measured ones.
package report

import (
	"fmt"
	"strings"

	"camps"
	"camps/internal/harness"
	"camps/internal/obs"
	"camps/internal/stats"
)

// paperHeadline holds the values the paper quotes in prose, used for the
// side-by-side summary.
var paperHeadline = []struct {
	name     string
	paper    string
	measured func(g *harness.Grid) string
}{
	{
		name:  "CAMPS-MOD speedup over BASE (avg)",
		paper: "+17.9%",
		measured: func(g *harness.Grid) string {
			f5 := g.Figure5()
			return fmt.Sprintf("%+.1f%%", (f5.Value(f5.Rows()-1, len(f5.Columns)-1)-1)*100)
		},
	},
	{
		name:  "CAMPS-MOD speedup over MMD (avg)",
		paper: "+8.7%",
		measured: func(g *harness.Grid) string {
			f5 := g.Figure5()
			avg := f5.Rows() - 1
			mmd, mod := f5.Value(avg, 2), f5.Value(avg, len(f5.Columns)-1)
			return fmt.Sprintf("%+.1f%%", (mod/mmd-1)*100)
		},
	},
	{
		name:  "conflict reduction vs MMD (avg)",
		paper: "13.6%",
		measured: func(g *harness.Grid) string {
			f6 := g.Figure6()
			avg := f6.Rows() - 1
			mmd, mod := f6.Value(avg, 1), f6.Value(avg, len(f6.Columns)-1)
			return fmt.Sprintf("%.1f%%", (1-mod/mmd)*100)
		},
	},
	{
		name:  "CAMPS-MOD prefetch accuracy (avg)",
		paper: "70.5%",
		measured: func(g *harness.Grid) string {
			f7 := g.Figure7()
			return fmt.Sprintf("%.1f%%", f7.Value(f7.Rows()-1, len(f7.Columns)-1))
		},
	},
	{
		name:  "CAMPS-MOD energy vs BASE (avg)",
		paper: "0.915",
		measured: func(g *harness.Grid) string {
			f9 := g.Figure9()
			return fmt.Sprintf("%.3f", f9.Value(f9.Rows()-1, len(f9.Columns)-1))
		},
	},
}

// Markdown renders the full report.
func Markdown(g *harness.Grid, title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n\n", title)
	sb.WriteString("Reproduction of the CAMPS paper's evaluation (ICPP 2018). ")
	sb.WriteString("Shapes, not absolute values, are the reproduction target; ")
	sb.WriteString("see EXPERIMENTS.md in the repository for methodology.\n\n")

	sb.WriteString("## Headline comparison\n\n")
	sb.WriteString("| metric | paper | measured |\n|---|---|---|\n")
	for _, h := range paperHeadline {
		fmt.Fprintf(&sb, "| %s | %s | %s |\n", h.name, h.paper, h.measured(g))
	}
	sb.WriteByte('\n')

	for _, fig := range g.Figures() {
		sb.WriteString(MarkdownTable(fig))
		sb.WriteByte('\n')
	}

	sb.WriteString("## Per-class CAMPS-MOD speedup over BASE\n\n")
	f5 := g.Figure5()
	groups := harness.GroupAverages(f5, len(f5.Columns)-1)
	sb.WriteString("| class | paper | measured |\n|---|---|---|\n")
	paperClass := map[string]string{"HM": "+24.9%", "LM": "+9.4%", "MX": "+19.6%"}
	for _, cls := range []string{"HM", "LM", "MX"} {
		if v, ok := groups[cls]; ok {
			fmt.Fprintf(&sb, "| %s | %s | %+.1f%% |\n", cls, paperClass[cls], (v-1)*100)
		}
	}
	return sb.String()
}

// MarkdownTable renders one stats.Table as a Markdown table with a heading.
func MarkdownTable(t *stats.Table) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s\n\n", t.Title)
	sb.WriteString("| workload |")
	for _, c := range t.Columns {
		fmt.Fprintf(&sb, " %s |", c)
	}
	sb.WriteString("\n|---|")
	for range t.Columns {
		sb.WriteString("---|")
	}
	sb.WriteByte('\n')
	for r := 0; r < t.Rows(); r++ {
		fmt.Fprintf(&sb, "| %s |", t.RowLabel(r))
		for c := range t.Columns {
			fmt.Fprintf(&sb, " %.4f |", t.Value(r, c))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Timeseries renders epoch snapshots from the observability layer as a
// table: one row per snapshot (labelled with its simulation time and
// tag), one column per requested metric. Metric names resolve against
// counters first, then gauges, then histogram means; absent names render
// as 0. With delta set, counter columns show per-epoch increments
// instead of cumulative totals — the per-epoch breakdown view used to
// compare scheme behaviour over time.
func Timeseries(snaps []obs.Snapshot, metrics []string, delta bool) *stats.Table {
	t := &stats.Table{
		Title:   "Epoch time series (per-epoch deltas for counters)",
		Columns: metrics,
	}
	if !delta {
		t.Title = "Epoch time series (cumulative)"
	}
	var prev obs.Snapshot
	for i, s := range snaps {
		row := make([]float64, len(metrics))
		for c, name := range metrics {
			switch {
			case hasCounter(s, name):
				v := s.Counters[name]
				if delta && i > 0 {
					v -= prev.Counters[name]
				}
				row[c] = float64(v)
			case hasGauge(s, name):
				row[c] = s.Gauges[name]
			default:
				if h, ok := s.Histograms[name]; ok {
					row[c] = h.Mean
				}
			}
		}
		label := fmt.Sprintf("%8.1fus %s", float64(s.AtPs)/1e6, s.Tag)
		t.AddRow(label, row...)
		prev = s
	}
	return t
}

func hasCounter(s obs.Snapshot, name string) bool {
	_, ok := s.Counters[name]
	return ok
}

func hasGauge(s obs.Snapshot, name string) bool {
	_, ok := s.Gauges[name]
	return ok
}

// Summary renders a compact one-paragraph textual summary of the grid,
// suitable for CLI output.
func Summary(g *harness.Grid) string {
	f5 := g.Figure5()
	avg := f5.Rows() - 1
	mod := f5.Value(avg, len(f5.Columns)-1)
	base := f5.Value(avg, 0)
	var mmd float64
	for c, name := range f5.Columns {
		if name == camps.MMD.String() {
			mmd = f5.Value(avg, c)
		}
	}
	return fmt.Sprintf(
		"CAMPS-MOD improves average performance by %.1f%% over BASE and %.1f%% over MMD across %d workloads.",
		(mod/base-1)*100, (mod/mmd-1)*100, f5.Rows()-1)
}

// Attribution renders an attribution summary as an aligned text block
// for CLI output: the per-cause latency breakdown (each cause's total,
// share of end-to-end latency, and mean per request), the prefetch
// efficacy ledger, and the per-vault conflict heatmap. Returns "" for a
// nil summary — callers print it unconditionally.
func Attribution(sum *obs.AttributionSummary) string {
	if sum == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "latency attribution (%d spans retired, %d started):\n",
		sum.SpansRetired, sum.SpansStarted)
	fmt.Fprintf(&sb, "  %-15s %16s %8s %12s\n", "cause", "total ps", "share", "mean ps/req")
	for _, cb := range sum.Causes {
		if cb.TotalPs == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  %-15s %16d %7.1f%% %12.0f\n",
			cb.Cause, cb.TotalPs, cb.Share*100, cb.MeanPs)
	}
	fmt.Fprintf(&sb, "  %-15s %16d %7.1f%%\n", "end-to-end", sum.E2ETotalPs, 100.0)
	if lg := sum.Ledger; lg != nil && lg.Classified() > 0 {
		total := float64(lg.Classified())
		fmt.Fprintf(&sb, "prefetch efficacy (%s, %d classified):\n", lg.Scheme, lg.Classified())
		for _, row := range []struct {
			name string
			n    uint64
		}{
			{"useful (timely)", lg.UsefulTimely},
			{"useful (late)", lg.UsefulLate},
			{"evicted unused", lg.EvictedUnused},
			{"conflict victim", lg.ConflictVictim},
		} {
			fmt.Fprintf(&sb, "  %-15s %16d %7.1f%%\n", row.name, row.n, float64(row.n)/total*100)
		}
	}
	if len(sum.VaultConflictPs) > 0 {
		var peak uint64
		for _, v := range sum.VaultConflictPs {
			if v > peak {
				peak = v
			}
		}
		if peak > 0 {
			sb.WriteString("bank-conflict heatmap (ps lost per vault):\n")
			for v, ps := range sum.VaultConflictPs {
				bar := 0
				if peak > 0 {
					bar = int(ps * 40 / peak)
				}
				fmt.Fprintf(&sb, "  v%-3d %14d %s\n", v, ps, strings.Repeat("#", bar))
			}
		}
	}
	return sb.String()
}

// FaultReport renders one run's injected-fault counters as an aligned
// text block for CLI output, or "" for a fault-free run — callers print
// it unconditionally.
func FaultReport(c *camps.FaultCounts) string {
	if c == nil || c.Total() == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("injected faults:\n")
	for _, row := range []struct {
		name string
		n    uint64
	}{
		{"link CRC errors", c.LinkCRCErrors},
		{"link retries", c.LinkRetries},
		{"vault stalls", c.VaultStalls},
		{"poisoned rows", c.PoisonedRows},
		{"bank blackouts", c.BankBlackouts},
	} {
		if row.n > 0 {
			fmt.Fprintf(&sb, "  %-20s %12d\n", row.name, row.n)
		}
	}
	return sb.String()
}
