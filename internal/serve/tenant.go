package serve

import (
	"context"
	"sync/atomic"
)

// Quota bounds one tenant's slice of the daemon. Zero-valued fields
// inherit the server defaults; TickBudget 0 means unlimited.
type Quota struct {
	// MaxInFlightCells caps the tenant's concurrently executing cells
	// across all of its jobs (cache hits and resumed cells do not occupy
	// a slot for long, but they do pass through the gate).
	MaxInFlightCells int `json:"max_inflight_cells,omitempty"`
	// MaxQueuedJobs caps jobs waiting in the admission queue (running
	// jobs do not count). Submissions beyond it are rejected quota_jobs.
	MaxQueuedJobs int `json:"max_queued_jobs,omitempty"`
	// TickBudget is the tenant's cumulative simulated-time entitlement
	// in picoseconds, charged per freshly executed cell (cache hits and
	// resumed cells are free). Once spent, submissions are rejected
	// quota_ticks. 0 = unlimited.
	TickBudget int64 `json:"tick_budget_ps,omitempty"`
}

// withDefaults fills zero fields from def.
func (q Quota) withDefaults(def Quota) Quota {
	if q.MaxInFlightCells == 0 {
		q.MaxInFlightCells = def.MaxInFlightCells
	}
	if q.MaxQueuedJobs == 0 {
		q.MaxQueuedJobs = def.MaxQueuedJobs
	}
	if q.TickBudget == 0 {
		q.TickBudget = def.TickBudget
	}
	return q
}

// tenant is the runtime state for one tenant. Counters are guarded by
// the server mutex; slots is a semaphore drained by worker goroutines.
type tenant struct {
	name  string
	quota Quota

	queued  int // jobs in the wait queue
	running int // jobs currently executing
	ticks   int64

	// slots is the in-flight-cell semaphore (capacity
	// quota.MaxInFlightCells); nil until the first job runs.
	slots chan struct{}
}

// overTickBudget reports whether the tenant has spent its entitlement.
func (t *tenant) overTickBudget() bool {
	return t.quota.TickBudget > 0 && t.ticks >= t.quota.TickBudget
}

// cellSlots lazily builds the tenant's in-flight-cell semaphore.
func (t *tenant) cellSlots() chan struct{} {
	if t.slots == nil {
		n := t.quota.MaxInFlightCells
		if n <= 0 {
			n = 1
		}
		t.slots = make(chan struct{}, n)
	}
	return t.slots
}

// slotGate implements exp.Gate over two semaphores: the server-wide
// worker pool and the job's tenant cap. Acquisition order is fixed
// (global, then tenant) and Release unwinds in reverse, so gates for
// different tenants can never deadlock against each other. inflight
// mirrors the held-slot count for the serve.inflight_cells gauge.
type slotGate struct {
	global   chan struct{}
	tenant   chan struct{}
	inflight *atomic.Int64
}

func (g *slotGate) Acquire(ctx context.Context) error {
	select {
	case g.global <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case g.tenant <- struct{}{}:
	case <-ctx.Done():
		<-g.global
		return ctx.Err()
	}
	g.inflight.Add(1)
	return nil
}

func (g *slotGate) Release() {
	<-g.tenant
	<-g.global
	g.inflight.Add(-1)
}
