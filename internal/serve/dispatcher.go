package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"camps"
	"camps/internal/exp"
	"camps/internal/obs"
)

// kick nudges the dispatcher without blocking (the channel is a
// level-triggered doorbell, not a queue).
func (s *Server) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// kickDone nudges the drain loop that a job just finished.
func (s *Server) kickDone() {
	select {
	case s.jobDone <- struct{}{}:
	default:
	}
}

// dispatch is the scheduling loop: on every doorbell it starts as many
// queued jobs as MaxActiveJobs allows, picking tenants round-robin so a
// tenant with a deep queue cannot starve the others (fair share; each
// tenant's own jobs stay FIFO).
func (s *Server) dispatch(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.wake:
		}
		for s.startOne(ctx) {
		}
	}
}

// startOne moves at most one queued job into execution; it reports
// whether it did (so the dispatcher keeps going until the queue or the
// job slots are exhausted).
func (s *Server) startOne(ctx context.Context) bool {
	s.mu.Lock()
	if s.draining || s.activeJobs >= s.cfg.MaxActiveJobs {
		s.mu.Unlock()
		return false
	}
	j := s.pickLocked()
	if j == nil {
		s.mu.Unlock()
		return false
	}
	tn := s.tenantLocked(j.tenant)
	slots := tn.cellSlots()
	jctx, cancel := context.WithCancel(ctx)
	if !j.deadline.IsZero() {
		jctx, cancel = context.WithDeadline(ctx, j.deadline)
	}
	j.cancel = cancel
	j.state = StateRunning
	tn.running++
	s.activeJobs++
	rec := jobRecord{Seq: j.seq, ID: j.id, Tenant: j.tenant, State: StateRunning, Cells: j.cells}
	if err := s.journal.append(rec); err != nil {
		s.logf("journal: recording %s running: %v", j.id, err)
	}
	st := j.statusLocked()
	s.mu.Unlock()
	s.publishState(j, st)
	go s.runJob(jctx, cancel, j, slots)
	return true
}

// pickLocked dequeues the next job under the round-robin cursor; the
// server mutex must be held. The queue map only ever holds non-empty
// tenant queues.
func (s *Server) pickLocked() *job {
	names := sortedKeys(s.queue)
	if len(names) == 0 {
		return nil
	}
	name := names[s.rrIdx%len(names)]
	q := s.queue[name]
	j := q[0]
	if len(q) == 1 {
		delete(s.queue, name)
	} else {
		s.queue[name] = q[1:]
	}
	s.rrIdx++ // advance so the next pick favors the following tenant
	s.tenants[name].queued--
	s.queuedTotal--
	return j
}

// cellEvent is the SSE "cell" frame: one completed cell with just
// enough results to follow a campaign live.
type cellEvent struct {
	Key        string  `json:"key"`
	Resumed    bool    `json:"resumed,omitempty"`
	Cached     bool    `json:"cached,omitempty"`
	Attempt    int     `json:"attempt,omitempty"`
	GeoMeanIPC float64 `json:"geomean_ipc"`
	ElapsedPS  int64   `json:"elapsed_ps"`
}

// resultKey rebuilds a CellResult's checkpoint key (the same string
// Cell.Key produces).
func resultKey(cr exp.CellResult) string {
	k := fmt.Sprintf("%s/%v/seed=%d", cr.Mix, cr.Scheme, cr.Seed)
	if cr.Knob != "" {
		k += fmt.Sprintf("/%s=%d", cr.Knob, cr.Value)
	}
	return k
}

// runJob executes one admitted job as an exp campaign: checkpointed to
// the job's cell store, gated by the global and tenant semaphores,
// cache-aware, and streaming progress over SSE. It classifies the
// campaign's exit into the job's terminal state — or, under drain,
// leaves the job checkpointed and non-terminal so the next daemon
// resumes it.
func (s *Server) runJob(ctx context.Context, cancel context.CancelFunc, j *job, tenantSlots chan struct{}) {
	defer cancel()
	defer func() {
		s.mu.Lock()
		s.activeJobs--
		s.tenantLocked(j.tenant).running--
		s.mu.Unlock()
		s.kickDone()
		s.kick()
	}()

	cells, err := j.spec.cells()
	if err != nil {
		s.finishJob(j, StateFailed, "expanding spec: "+err.Error())
		return
	}

	// cachedKeys marks cells served from the result cache, so the
	// Progress callback (which only sees CellResults) can attribute them:
	// cached and resumed cells are free of tick charges.
	var cachedKeys sync.Map

	par := s.cfg.Workers
	if len(cells) < par {
		par = len(cells)
	}
	opts := exp.Options{
		System:          s.cfg.System,
		WarmupRefs:      j.spec.Warmup,
		MeasureInstr:    j.spec.Instr,
		CheckInvariants: j.spec.Check,
		Parallelism:     par,
		CellTimeout:     s.cfg.CellTimeout,
		Retries:         s.cfg.Retries,
		Checkpoint:      s.cellStorePath(j.id),
		Resume:          true,
		Gate:            &slotGate{global: s.globalSlots, tenant: tenantSlots, inflight: &s.inflight},
		RunCell: func(ctx context.Context, c exp.Cell, o *exp.Options) (camps.Results, error) {
			key := cacheKey(s.sysHash, &j.spec, c)
			if res, ok := s.cache.get(key); ok {
				cachedKeys.Store(c.Key(), true)
				return res, nil
			}
			s.m.cacheMisses.Add(1)
			run := s.runCell
			if run == nil {
				run = exp.ExecuteCell
			}
			res, err := run(ctx, c, o)
			if err == nil {
				s.cache.put(key, res)
			}
			return res, err
		},
		Progress: func(cr exp.CellResult) {
			key := resultKey(cr)
			_, hit := cachedKeys.Load(key)
			s.mu.Lock()
			j.cellsDone++
			if hit {
				j.cached++
			}
			if !cr.Resumed && !hit {
				t := int64(cr.Results.ElapsedSim)
				j.ticks += t
				s.tenantLocked(j.tenant).ticks += t
			}
			s.mu.Unlock()
			switch {
			case cr.Resumed:
				s.m.cellsResumed.Add(1)
			case hit:
				s.m.cellsCached.Add(1)
			default:
				s.m.cellsExecuted.Add(1)
			}
			payload, _ := json.Marshal(cellEvent{
				Key: key, Resumed: cr.Resumed, Cached: hit, Attempt: cr.Attempt,
				GeoMeanIPC: cr.Results.GeoMeanIPC, ElapsedPS: int64(cr.Results.ElapsedSim),
			})
			j.stream.PublishFrame("cell", payload)
		},
	}
	if j.spec.Faults != "" {
		// Validated at admission; a parse error here means the journal was
		// hand-edited, and the job fails cleanly below via the campaign.
		opts.Faults, _ = camps.ParseFaultSpec(j.spec.Faults)
	}
	if j.spec.StreamEpochs {
		opts.CellObs = func(c exp.Cell) *obs.Suite {
			key := c.Key()
			suite := obs.NewSuite(64)
			suite.OnSnapshot = func(snap obs.Snapshot) {
				payload, err := json.Marshal(struct {
					Cell string `json:"cell"`
					obs.Snapshot
				}{key, snap})
				if err == nil {
					j.stream.PublishFrame("epoch", payload)
				}
			}
			return suite
		}
	}

	_, _, err = exp.Run(ctx, cells, opts)
	if err == nil {
		s.finishJob(j, StateDone, "")
		return
	}

	s.mu.Lock()
	draining := s.draining
	reason := j.cancelReason
	s.mu.Unlock()
	switch {
	case reason != "":
		// Client cancel or heartbeat reaping set the reason before
		// cancelling the context.
		s.finishJob(j, StateCancelled, reason)
	case ctx.Err() == context.DeadlineExceeded:
		s.finishJob(j, StateFailed, "deadline exceeded")
	case ctx.Err() != nil && draining:
		// Graceful drain: deliberately NOT terminal. The journal still says
		// running, so the next daemon re-queues the job and its checkpoint
		// store resumes the completed cells.
		s.logf("job %s checkpointed for drain", j.id)
	case ctx.Err() != nil:
		s.finishJob(j, StateCancelled, "cancelled")
	default:
		s.finishJob(j, StateFailed, err.Error())
	}
}

// finishJob records a running job's terminal state: journal (fsync'd),
// metrics, and the SSE terminal event.
func (s *Server) finishJob(j *job, state, reason string) {
	s.mu.Lock()
	j.state, j.reason = state, reason
	j.cancel = nil
	if err := s.journal.append(s.terminalRecordLocked(j)); err != nil {
		s.logf("journal: recording %s %s: %v", j.id, state, err)
	}
	s.maybeCompactLocked()
	s.bumpTerminal(state)
	payload, _ := json.Marshal(j.statusLocked())
	s.mu.Unlock()
	j.stream.Close(payload)
}

// finishQueuedLocked terminates a job that never started (cancel before
// dispatch, reaping, queued-deadline): it leaves the queue, its terminal
// record is journaled, and the returned frame must be passed to
// j.stream.Close by the caller after the mutex is released.
func (s *Server) finishQueuedLocked(j *job, state, reason string) []byte {
	q := s.queue[j.tenant]
	for i, other := range q {
		if other == j {
			rest := append(q[:i:i], q[i+1:]...)
			if len(rest) == 0 {
				delete(s.queue, j.tenant)
			} else {
				s.queue[j.tenant] = rest
			}
			s.tenantLocked(j.tenant).queued--
			s.queuedTotal--
			break
		}
	}
	j.state, j.reason = state, reason
	if err := s.journal.append(s.terminalRecordLocked(j)); err != nil {
		s.logf("journal: recording %s %s: %v", j.id, state, err)
	}
	s.maybeCompactLocked()
	s.bumpTerminal(state)
	payload, _ := json.Marshal(j.statusLocked())
	return payload
}

func (s *Server) terminalRecordLocked(j *job) jobRecord {
	return jobRecord{
		Seq: j.seq, ID: j.id, Tenant: j.tenant, State: j.state, Reason: j.reason,
		Cells: j.cells, CellsDone: j.cellsDone, Cached: j.cached, Ticks: j.ticks,
	}
}

func (s *Server) maybeCompactLocked() {
	if s.journal.needsCompaction() {
		if err := s.journal.compact(); err != nil {
			s.logf("journal: compacting: %v", err)
		}
	}
}

func (s *Server) bumpTerminal(state string) {
	switch state {
	case StateDone:
		s.m.jobsDone.Add(1)
	case StateFailed:
		s.m.jobsFailed.Add(1)
	case StateCancelled:
		s.m.jobsCancelled.Add(1)
	}
}

// heartbeatGrace is how long a job may go without a heartbeat before the
// reaper takes it: three missed beats.
func heartbeatGrace(heartbeatMS int64) time.Duration {
	if heartbeatMS <= 0 {
		return 0
	}
	return 3 * time.Duration(heartbeatMS) * time.Millisecond
}

// reap periodically cancels abandoned jobs (heartbeat lost) and fails
// queued jobs whose deadline passed before they ever started. Running
// jobs' deadlines are enforced by their contexts; the reaper only covers
// the queued window.
func (s *Server) reap(ctx context.Context) {
	t := time.NewTicker(s.reapEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		now := s.now()
		var cancels []context.CancelFunc
		type closing struct {
			stream *obs.StreamServer
			frame  []byte
		}
		var closers []closing
		s.mu.Lock()
		for _, id := range sortedKeys(s.jobs) {
			j := s.jobs[id]
			grace := heartbeatGrace(j.spec.HeartbeatMS)
			stale := grace > 0 && now.Sub(j.lastBeat) > grace
			switch j.state {
			case StateQueued:
				dead := !j.deadline.IsZero() && now.After(j.deadline)
				if !stale && !dead {
					continue
				}
				state, reason := StateCancelled, "reaped: heartbeat lost"
				if dead {
					state, reason = StateFailed, "deadline exceeded before start"
				} else {
					s.m.jobsReaped.Add(1)
				}
				frame := s.finishQueuedLocked(j, state, reason)
				closers = append(closers, closing{j.stream, frame})
			case StateRunning:
				if stale && j.cancelReason == "" {
					j.cancelReason = "reaped: heartbeat lost"
					s.m.jobsReaped.Add(1)
					if j.cancel != nil {
						cancels = append(cancels, j.cancel)
					}
				}
			}
		}
		s.mu.Unlock()
		for _, c := range cancels {
			c()
		}
		for _, cl := range closers {
			cl.stream.Close(cl.frame)
		}
	}
}

// Run serves the daemon on ln until ctx is cancelled, then drains:
// admission closes (503 draining), running jobs get DrainTimeout to
// finish, stragglers are cancelled and left checkpointed for the next
// daemon, every SSE subscriber receives a terminal event, and the
// journal is compacted and closed. Returns nil after a clean drain.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	jobsCtx, killJobs := context.WithCancel(context.Background())
	defer killJobs()
	go s.dispatch(jobsCtx)
	go s.reap(jobsCtx)
	s.kick() // schedule jobs recovered from the journal

	httpSrv := &http.Server{Handler: s.mux}
	serveErr := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			serveErr <- err
		}
	}()

	var retErr error
	select {
	case retErr = <-serveErr:
	case <-ctx.Done():
	}

	s.mu.Lock()
	s.draining = true
	active := s.activeJobs
	s.mu.Unlock()
	s.logf("draining: %d active job(s), budget %v", active, s.cfg.DrainTimeout)

	deadline := time.NewTimer(s.cfg.DrainTimeout)
	defer deadline.Stop()
	if !s.waitActive(deadline.C) {
		s.logf("drain deadline passed; cancelling in-flight jobs (checkpoints preserved)")
		killJobs()
		// Cancelled campaigns unwind within exp's hang grace; give them a
		// bounded second window rather than waiting forever.
		fallback := time.NewTimer(10 * time.Second)
		defer fallback.Stop()
		s.waitActive(fallback.C)
	}

	s.flushStreams()

	s.mu.Lock()
	s.maybeCompactLocked()
	if err := s.journal.close(); err != nil {
		s.logf("journal: close: %v", err)
	}
	s.mu.Unlock()

	shCtx, cancelSh := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancelSh()
	_ = httpSrv.Shutdown(shCtx)
	_ = httpSrv.Close()
	return retErr
}

// waitActive blocks until no job is running or the deadline channel
// fires; it reports whether the count reached zero.
func (s *Server) waitActive(deadline <-chan time.Time) bool {
	poll := time.NewTicker(50 * time.Millisecond)
	defer poll.Stop()
	for {
		s.mu.Lock()
		n := s.activeJobs
		s.mu.Unlock()
		if n == 0 {
			return true
		}
		select {
		case <-s.jobDone:
		case <-poll.C:
		case <-deadline:
			return false
		}
	}
}

// flushStreams closes every job's SSE stream with a terminal event.
// Jobs that finished normally already closed theirs (Close is
// idempotent); jobs held over for the next daemon report state
// "drained" so subscribers know to reconnect after the restart.
func (s *Server) flushStreams() {
	type closing struct {
		stream *obs.StreamServer
		frame  []byte
	}
	var toClose []closing
	s.mu.Lock()
	for _, id := range sortedKeys(s.jobs) {
		j := s.jobs[id]
		if j.stream == nil {
			continue
		}
		st := j.statusLocked()
		if !terminalState(j.state) {
			st.State = "drained"
			st.Reason = "daemon shutting down; job resumes on restart"
		}
		payload, _ := json.Marshal(st)
		toClose = append(toClose, closing{j.stream, payload})
	}
	s.mu.Unlock()
	for _, c := range toClose {
		c.stream.Close(c.frame)
	}
}
