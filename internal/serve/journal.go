package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"camps/internal/exp"
)

// jobRecord is one line of the job journal: a state transition for one
// job. The submitting record (state "queued") carries the full spec;
// later transitions omit it and the journal merges on load. Terminal
// records carry the job's final accounting so tenant budgets survive
// restarts without re-reading every cell store.
type jobRecord struct {
	Seq       uint64   `json:"seq"` // monotone job sequence; identity across restarts
	ID        string   `json:"id"`
	Tenant    string   `json:"tenant"`
	State     string   `json:"state"`
	Reason    string   `json:"reason,omitempty"`
	Cells     int      `json:"cells,omitempty"`
	CellsDone int      `json:"cells_done,omitempty"`
	Cached    int      `json:"cached,omitempty"`
	Ticks     int64    `json:"ticks_ps,omitempty"`
	Spec      *JobSpec `json:"spec,omitempty"`
}

// journal is the fsync'd JSONL log of job state transitions — the
// daemon's source of truth across crashes. Its durability contract
// mirrors exp.Store: every append is fsync'd before it is acknowledged,
// a torn final line (crash mid-append) is repaired away on open, the
// parent directory is fsync'd when the file is created, and compaction
// rewrites atomically via exp.AtomicWriteFile. Guarded by the server
// mutex.
type journal struct {
	f     *os.File
	path  string
	jobs  map[string]jobRecord // merged latest state per job id
	order []string             // job ids in first-seen (submission) order
	lines int                  // physical lines, for the compaction trigger
}

// openJournal opens (creating if needed) the journal, repairs a torn
// tail, and merges every job's transitions down to its latest state
// (retaining the spec from the submission record). A corrupt interior
// record is an error: the file is not one of ours.
func openJournal(path string) (*journal, error) {
	_, statErr := os.Stat(path)
	creating := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if creating {
		syncDir(path)
	}
	j := &journal{f: f, path: path, jobs: make(map[string]jobRecord)}
	if err := j.load(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// syncDir fsyncs path's parent directory (best-effort, matching
// exp.Store): without it, a crash right after creating the file can
// lose the directory entry — and with it the whole journal — on some
// filesystems, even though every record byte was fsync'd.
func syncDir(path string) {
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

func (j *journal) load() error {
	data, err := io.ReadAll(j.f)
	if err != nil {
		return err
	}
	var valid int
	for valid < len(data) {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break // torn final append: repair by truncation
		}
		line := data[valid : valid+nl+1]
		var rec jobRecord
		if jerr := json.Unmarshal(line, &rec); jerr != nil || rec.ID == "" {
			if valid+nl+1 == len(data) {
				break // the corrupt line is the last: torn append
			}
			if jerr == nil {
				jerr = fmt.Errorf("record has no id")
			}
			return fmt.Errorf("journal %s: corrupt record at offset %d: %w", j.path, valid, jerr)
		}
		valid += nl + 1
		j.lines++
		j.merge(rec)
	}
	if err := j.f.Truncate(int64(valid)); err != nil {
		return err
	}
	_, err = j.f.Seek(int64(valid), io.SeekStart)
	return err
}

// merge folds one transition into the per-job view, preserving the spec
// from the earliest record that carried it.
func (j *journal) merge(rec jobRecord) {
	prev, seen := j.jobs[rec.ID]
	if !seen {
		j.order = append(j.order, rec.ID)
	} else if rec.Spec == nil {
		rec.Spec = prev.Spec
	}
	j.jobs[rec.ID] = rec
}

// append durably writes one transition: marshal, write, fsync, merge.
func (j *journal) append(rec jobRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.lines++
	j.merge(rec)
	return nil
}

// needsCompaction reports whether the transition log has outgrown its
// merged view enough to be worth rewriting.
func (j *journal) needsCompaction() bool {
	return j.lines > 64 && j.lines > 4*len(j.jobs)
}

// compact rewrites the journal as one merged record per job in
// submission order, atomically (temp file, fsync, rename, directory
// fsync). The merged records carry their specs, so a compacted journal
// recovers identically to the original log.
func (j *journal) compact() error {
	var buf bytes.Buffer
	for _, id := range j.order {
		rec := j.jobs[id]
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	if err := exp.AtomicWriteFile(j.path, buf.Bytes(), 0o644); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	j.f = f
	j.lines = len(j.order)
	return nil
}

// nextSeq returns the sequence number for a newly submitted job: one
// past the highest the journal has seen, so ids stay unique across
// restarts.
func (j *journal) nextSeq() uint64 {
	var max uint64
	for _, rec := range j.jobs {
		if rec.Seq > max {
			max = rec.Seq
		}
	}
	return max + 1
}

// records returns the merged per-job records in submission order.
func (j *journal) records() []jobRecord {
	out := make([]jobRecord, 0, len(j.order))
	for _, id := range j.order {
		out = append(out, j.jobs[id])
	}
	return out
}

// close releases the journal file.
func (j *journal) close() error { return j.f.Close() }

// sortedKeys is a small helper for deterministic iteration over
// string-keyed maps in export paths.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
