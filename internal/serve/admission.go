package serve

import (
	"math"
	"time"
)

// Admission-rejection reasons, carried in the JSON error body so clients
// can react in kind: back off ("rate"), retry later ("queue_full",
// "shed"), stop submitting ("quota_*"), or fail over ("draining").
const (
	ReasonRate       = "rate"        // token bucket empty
	ReasonQueueFull  = "queue_full"  // bounded wait queue at capacity
	ReasonShed       = "shed"        // load shedding: priority too low for the current queue depth
	ReasonQuotaJobs  = "quota_jobs"  // tenant's queued-job quota exhausted
	ReasonQuotaTicks = "quota_ticks" // tenant's simulated-tick budget exhausted
	ReasonDraining   = "draining"    // daemon is shutting down; not accepting work
)

// rejection is one typed admission refusal. Zero value means admitted.
type rejection struct {
	Reason     string        // one of the Reason* constants
	RetryAfter time.Duration // hint for the Retry-After header (0 = none)
}

// tokenBucket is the submission rate limiter: rate tokens/second with a
// burst ceiling. It is driven by an injected clock so admission tests
// are deterministic. Guarded by the server mutex.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int, now time.Time) *tokenBucket {
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: now}
}

// take consumes one token if available; otherwise it reports how long
// until the next token accrues (the Retry-After hint).
func (b *tokenBucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens = math.Min(b.burst, b.tokens+elapsed*b.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}

// shedFloor maps queue load (queued jobs / queue capacity) to the
// minimum priority admitted. Below shedStart every priority is
// admitted; from there the floor climbs linearly so the lowest-priority
// work is shed first, and at load 1.0 the floor passes the maximum
// priority — but by then the queue_full check has already closed the
// door. Shedding happens only here, at the admission boundary: accepted
// jobs are never dropped.
func shedFloor(load, shedStart float64) int {
	if load <= shedStart || shedStart >= 1 {
		return 0
	}
	span := 1 - shedStart
	floor := (load - shedStart) / span * 10
	// The epsilon keeps float noise from bumping an exact boundary (e.g.
	// 1.0000000000000002) up a whole priority level.
	return int(math.Ceil(floor - 1e-9))
}
