package serve

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// Real-simulation settings shared by the killed daemon, the recovering
// daemon, and the control daemon — the exports are only comparable if
// all three simulate identically.
const (
	recoveryInstr  = 10_000
	recoveryWarmup = 1_000
)

const recoverySpec = `{"mixes":["HM1","HM2","HM3","HM4"],"schemes":["NONE","CAMPS-MOD"],"seeds":[1]}`

// TestCampserveChildProcess is not a test: it is the subprocess body for
// TestSIGKILLRecovery, re-executing this test binary as a daemon the
// parent can kill -9 mid-campaign.
func TestCampserveChildProcess(t *testing.T) {
	if os.Getenv("CAMPSERVE_CHILD") != "1" {
		t.Skip("subprocess helper for TestSIGKILLRecovery")
	}
	dir := os.Getenv("CAMPSERVE_DIR")
	// One worker serializes the campaign so the parent's kill lands with
	// most cells still pending.
	s, err := New(Config{DataDir: dir, Instr: recoveryInstr, Warmup: recoveryWarmup, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "addr"), []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	_ = s.Run(context.Background(), ln) // runs until the parent SIGKILLs us
}

// TestSIGKILLRecovery is the crash-safety acceptance test: a daemon is
// SIGKILL'd mid-campaign — no drain, no flush, nothing graceful — and a
// new daemon on the same data directory must repair the journal, resume
// the job from its cell checkpoints without re-running completed cells,
// and produce a results document byte-identical to an uninterrupted
// control run.
func TestSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess daemon + real simulations")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCampserveChildProcess$")
	cmd.Env = append(os.Environ(), "CAMPSERVE_CHILD=1", "CAMPSERVE_DIR="+dir)
	cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	// The child writes its ephemeral address once it is listening.
	var base string
	for deadline := time.Now().Add(60 * time.Second); ; {
		if b, err := os.ReadFile(filepath.Join(dir, "addr")); err == nil && len(b) > 0 {
			base = "http://" + string(b)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child daemon never published its address")
		}
		time.Sleep(10 * time.Millisecond)
	}

	client := &http.Client{}
	resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(recoverySpec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit to child: %d %s", resp.StatusCode, body)
	}
	var st status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	// Let the campaign make real progress, then kill -9 the daemon.
	for deadline := time.Now().Add(120 * time.Second); ; {
		r, err := client.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatalf("polling child: %v", err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		var cur status
		if err := json.Unmarshal(b, &cur); err != nil {
			t.Fatalf("polling child: %v (%s)", err, b)
		}
		if cur.CellsDone >= 1 {
			break
		}
		if terminalState(cur.State) {
			t.Fatalf("job finished (%s) before the kill; slow the cells down", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("child never completed a cell")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup of any kind
		t.Fatal(err)
	}
	cmd.Wait()
	killed = true

	// Recovery: a fresh daemon on the same directory must finish the job.
	d := startDaemon(t, Config{DataDir: dir, Instr: recoveryInstr, Warmup: recoveryWarmup}, nil)
	fin := d.await(st.ID)
	if fin.State != StateDone || fin.CellsDone != 8 {
		t.Fatalf("recovered job finished %+v; want done with 8 cells", fin)
	}
	if d.s.m.cellsResumed.Load() == 0 {
		t.Fatal("recovery re-ran every cell; the kill'd daemon's checkpoints were lost")
	}
	recovered := exportCells(t, d.results(st.ID))
	d.shutdown()

	// Control: the same spec, uninterrupted, in a fresh daemon.
	c := startDaemon(t, Config{DataDir: t.TempDir(), Instr: recoveryInstr, Warmup: recoveryWarmup}, nil)
	ctrl := c.submit(recoverySpec)
	if fin := c.await(ctrl.ID); fin.State != StateDone {
		t.Fatalf("control run finished %+v", fin)
	}
	control := exportCells(t, c.results(ctrl.ID))

	if string(recovered) != string(control) {
		t.Fatalf("recovered export differs from uninterrupted control:\n%s\nvs\n%s", recovered, control)
	}
}

// exportCells extracts the raw cells array of a results document (the
// job-identity fields differ between runs by construction).
func exportCells(t *testing.T, doc []byte) json.RawMessage {
	t.Helper()
	var d struct {
		Cells json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(doc, &d); err != nil {
		t.Fatal(err)
	}
	return d.Cells
}
