package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"

	"camps"
	"camps/internal/exp"
)

// resultCache memoizes completed cell results across jobs and tenants.
// It is sound because a CAMPS simulation is a pure function of its full
// configuration tuple — the cache key hashes the daemon's system config
// together with every per-cell input (mix, scheme, seed, knob/value,
// run lengths, fault spec, invariant checking) — so a hit is
// bit-identical to a fresh run. LRU-bounded; safe for concurrent use
// (it is read and written from exp worker goroutines).
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recent; values are *cacheEntry
	evicted uint64
}

type cacheEntry struct {
	key string
	res camps.Results
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		lru:     list.New(),
	}
}

func (c *resultCache) get(key string) (camps.Results, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return camps.Results{}, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) put(key string, res camps.Results) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, res: res})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evicted++
	}
}

// evictions returns the number of entries dropped by the LRU bound.
func (c *resultCache) evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicted
}

// len returns the live entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// cellKeyInputs is the canonical serialization hashed into a cache key.
// Every field that can change a cell's results must appear here.
type cellKeyInputs struct {
	SystemHash string `json:"system"`
	Mix        string `json:"mix"`
	Scheme     string `json:"scheme"`
	Seed       uint64 `json:"seed"`
	Knob       string `json:"knob,omitempty"`
	Value      int64  `json:"value,omitempty"`
	Instr      uint64 `json:"instr"`
	Warmup     uint64 `json:"warmup"`
	Faults     string `json:"faults,omitempty"`
	Check      bool   `json:"check,omitempty"`
}

// hashSystem canonicalizes the daemon's base system configuration once;
// it is part of every cache key so daemons with different hardware
// configs never share entries (relevant when a data dir moves between
// deployments).
func hashSystem(sys camps.SystemConfig) (string, error) {
	b, err := json.Marshal(sys)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// cacheKey derives the deterministic key for one cell under one spec.
func cacheKey(systemHash string, spec *JobSpec, c exp.Cell) string {
	in := cellKeyInputs{
		SystemHash: systemHash,
		Mix:        c.Mix.ID,
		Scheme:     c.Scheme.String(),
		Seed:       c.Seed,
		Knob:       c.Knob,
		Value:      c.Value,
		Instr:      spec.Instr,
		Warmup:     spec.Warmup,
		Faults:     spec.Faults,
		Check:      spec.Check,
	}
	b, err := json.Marshal(in)
	if err != nil {
		// Plain struct of scalars; cannot fail. Fall back to an
		// uncacheable unique-ish key rather than panicking the worker.
		return "uncacheable:" + c.Key()
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
