package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"camps"
	"camps/internal/exp"
	"camps/internal/obs"
)

// Config parameterizes the daemon. The zero value of every field except
// DataDir inherits a production-shaped default.
type Config struct {
	// DataDir holds the job journal and the per-job cell checkpoint
	// stores. Required; created if missing. A daemon restarted on the
	// same DataDir recovers its jobs.
	DataDir string
	// System is the base hardware configuration every cell starts from
	// (zero value: Table I). Job knob sweeps mutate copies.
	System camps.SystemConfig
	// Workers caps concurrently executing cells daemon-wide (default
	// NumCPU).
	Workers int
	// MaxActiveJobs caps concurrently running jobs (default 8); queued
	// jobs beyond it wait their turn under fair-share scheduling.
	MaxActiveJobs int
	// MaxQueue bounds the admission wait queue across all tenants
	// (default 64). Submissions beyond it are rejected queue_full.
	MaxQueue int
	// MaxCellsPerJob bounds one job's expanded campaign (default 512).
	MaxCellsPerJob int
	// RatePerSec and Burst shape the submission token bucket (defaults
	// 50/s, burst 100).
	RatePerSec float64
	Burst      int
	// ShedStart is the queue-load fraction where priority shedding
	// begins (default 0.5): above it, the minimum admitted priority
	// climbs linearly with load.
	ShedStart float64
	// DefaultQuota applies to tenants absent from Tenants; its own zero
	// fields default to 8 in-flight cells, 16 queued jobs, unlimited
	// ticks.
	DefaultQuota Quota
	// Tenants overrides quotas per tenant name.
	Tenants map[string]Quota
	// Instr and Warmup are the per-cell defaults for specs that omit
	// them (defaults 20000/2000 — small cells; production sweeps set
	// their own).
	Instr  uint64
	Warmup uint64
	// CellTimeout bounds one cell attempt (0 = none); Retries is the
	// per-cell transient-failure retry budget (default 1).
	CellTimeout time.Duration
	Retries     int
	// DrainTimeout bounds graceful drain: running jobs get this long to
	// finish before their contexts are cancelled and they checkpoint
	// (default 10s).
	DrainTimeout time.Duration
	// CacheSize bounds the deterministic result cache (entries, default
	// 4096).
	CacheSize int
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c *Config) applyDefaults() error {
	if c.DataDir == "" {
		return errors.New("serve: Config.DataDir is required")
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.MaxActiveJobs <= 0 {
		c.MaxActiveJobs = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.MaxCellsPerJob <= 0 {
		c.MaxCellsPerJob = 512
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = 50
	}
	if c.Burst <= 0 {
		c.Burst = 100
	}
	if c.ShedStart <= 0 || c.ShedStart > 1 {
		c.ShedStart = 0.5
	}
	if c.DefaultQuota.MaxInFlightCells <= 0 {
		c.DefaultQuota.MaxInFlightCells = 8
	}
	if c.DefaultQuota.MaxQueuedJobs <= 0 {
		c.DefaultQuota.MaxQueuedJobs = 16
	}
	if c.Instr == 0 {
		c.Instr = 20_000
	}
	if c.Warmup == 0 {
		c.Warmup = 2_000
	}
	if c.Retries <= 0 {
		c.Retries = 1
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 4096
	}
	return nil
}

// metrics are the daemon's serve.* counters, mirrored into the obs
// registry via CounterFunc readers over atomics (the registry itself is
// single-writer by design; atomics make the hot paths safe).
type metrics struct {
	admitted      atomic.Uint64
	rejRate       atomic.Uint64
	rejQueueFull  atomic.Uint64
	rejShed       atomic.Uint64
	rejQuotaJobs  atomic.Uint64
	rejQuotaTicks atomic.Uint64
	rejDraining   atomic.Uint64
	jobsDone      atomic.Uint64
	jobsFailed    atomic.Uint64
	jobsCancelled atomic.Uint64
	jobsReaped    atomic.Uint64
	cellsExecuted atomic.Uint64
	cellsCached   atomic.Uint64
	cellsResumed  atomic.Uint64
	cacheMisses   atomic.Uint64
}

// Server is the simulation-as-a-service daemon. Construct with New,
// serve with Run; the HTTP surface is also available via Handler for
// embedding.
type Server struct {
	cfg     Config
	sysHash string
	mux     *http.ServeMux
	reg     *obs.Registry
	cache   *resultCache
	m       metrics

	mu          sync.Mutex
	journal     *journal
	bucket      *tokenBucket
	jobs        map[string]*job
	queue       map[string][]*job // per-tenant FIFO of queued jobs
	queuedTotal int
	rrIdx       int // fair-share round-robin cursor over tenant names
	tenants     map[string]*tenant
	activeJobs  int
	draining    bool
	seq         uint64

	globalSlots chan struct{}
	inflight    atomic.Int64

	wake    chan struct{} // dispatcher kick (buffered 1)
	jobDone chan struct{} // drain-progress kick (buffered 1)

	// now and reapEvery are injected for deterministic tests.
	now       func() time.Time
	reapEvery time.Duration
	// runCell, when non-nil, replaces real cell execution (tests).
	runCell func(ctx context.Context, c exp.Cell, o *exp.Options) (camps.Results, error)
}

// New opens (or creates) the data directory, replays the job journal —
// repairing a torn tail and re-queueing every job that was queued or
// running when the previous process died — and builds the HTTP surface.
// It starts no goroutines; call Run to serve.
func New(cfg Config) (*Server, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(cfg.DataDir, "cells"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: data dir: %w", err)
	}
	sysHash, err := hashSystem(cfg.System)
	if err != nil {
		return nil, fmt.Errorf("serve: hashing system config: %w", err)
	}
	jn, err := openJournal(filepath.Join(cfg.DataDir, "jobs.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("serve: journal: %w", err)
	}
	s := &Server{
		cfg:         cfg,
		sysHash:     sysHash,
		reg:         obs.NewRegistry(),
		cache:       newResultCache(cfg.CacheSize),
		journal:     jn,
		jobs:        make(map[string]*job),
		queue:       make(map[string][]*job),
		tenants:     make(map[string]*tenant),
		globalSlots: make(chan struct{}, cfg.Workers),
		wake:        make(chan struct{}, 1),
		jobDone:     make(chan struct{}, 1),
		now:         time.Now,
		reapEvery:   250 * time.Millisecond,
	}
	s.bucket = newTokenBucket(cfg.RatePerSec, cfg.Burst, s.now())
	if err := s.recover(); err != nil {
		jn.close()
		return nil, err
	}
	s.registerMetrics()
	s.routes()
	return s, nil
}

// recover replays the journal into runtime state: terminal jobs are
// retained for status/results serving and their tick usage restored to
// tenant budgets; queued and running jobs are re-queued (their per-job
// checkpoint stores make the re-run exact and cheap — completed cells
// resume, only interrupted ones simulate again).
func (s *Server) recover() error {
	now := s.now()
	requeued := 0
	for _, rec := range s.journal.records() {
		if rec.Seq > s.seq {
			s.seq = rec.Seq
		}
		tn := s.tenantLocked(rec.Tenant)
		j := &job{
			id: rec.ID, seq: rec.Seq, tenant: rec.Tenant,
			state: rec.State, reason: rec.Reason, cells: rec.Cells,
			submitted: now, lastBeat: now,
		}
		if rec.Spec != nil {
			j.spec = *rec.Spec
		}
		if terminalState(rec.State) {
			j.cellsDone, j.cached, j.ticks = rec.CellsDone, rec.Cached, rec.Ticks
			tn.ticks += rec.Ticks
			s.jobs[j.id] = j
			continue
		}
		if rec.Spec == nil {
			// A journal from a newer schema or a hand-edited file; the job
			// cannot be re-run without its spec.
			j.state, j.reason = StateFailed, "journal record has no spec"
			s.jobs[j.id] = j
			continue
		}
		// Re-queue. Completed-cell ticks are re-charged from the job's
		// checkpoint store so tenant budgets survive the restart; the
		// resumed cells themselves are not re-charged when they replay
		// (Progress skips Resumed cells).
		if st, err := exp.OpenStore(s.cellStorePath(j.id)); err == nil {
			for _, rec := range st.Done() {
				j.ticks += int64(rec.Results.ElapsedSim)
			}
			st.Close()
		}
		tn.ticks += j.ticks
		j.state = StateQueued
		j.stream = obs.NewStreamServer()
		if j.spec.DeadlineMS > 0 {
			j.deadline = now.Add(time.Duration(j.spec.DeadlineMS) * time.Millisecond)
		}
		s.jobs[j.id] = j
		s.queue[j.tenant] = append(s.queue[j.tenant], j)
		tn.queued++
		s.queuedTotal++
		requeued++
	}
	if requeued > 0 {
		s.logf("recovered %d interrupted job(s) from %s", requeued, s.cfg.DataDir)
	}
	if s.journal.needsCompaction() {
		if err := s.journal.compact(); err != nil {
			return fmt.Errorf("serve: compacting journal: %w", err)
		}
	}
	return nil
}

// tenantLocked returns (creating if needed) the tenant record; the
// server mutex must be held (or the server not yet started).
func (s *Server) tenantLocked(name string) *tenant {
	tn, ok := s.tenants[name]
	if !ok {
		q := s.cfg.Tenants[name].withDefaults(s.cfg.DefaultQuota)
		tn = &tenant{name: name, quota: q}
		s.tenants[name] = tn
	}
	return tn
}

func (s *Server) cellStorePath(id string) string {
	return filepath.Join(s.cfg.DataDir, "cells", id+".jsonl")
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// registerMetrics exposes the serve.* namespace through the obs
// registry. All registrations happen here, before any goroutine exists,
// so later Snapshot calls race with nothing.
func (s *Server) registerMetrics() {
	s.reg.CounterFunc("serve.admitted", s.m.admitted.Load)
	s.reg.CounterFunc("serve.rejected_rate", s.m.rejRate.Load)
	s.reg.CounterFunc("serve.rejected_queue_full", s.m.rejQueueFull.Load)
	s.reg.CounterFunc("serve.rejected_shed", s.m.rejShed.Load)
	s.reg.CounterFunc("serve.rejected_quota_jobs", s.m.rejQuotaJobs.Load)
	s.reg.CounterFunc("serve.rejected_quota_ticks", s.m.rejQuotaTicks.Load)
	s.reg.CounterFunc("serve.rejected_draining", s.m.rejDraining.Load)
	s.reg.CounterFunc("serve.jobs_done", s.m.jobsDone.Load)
	s.reg.CounterFunc("serve.jobs_failed", s.m.jobsFailed.Load)
	s.reg.CounterFunc("serve.jobs_cancelled", s.m.jobsCancelled.Load)
	s.reg.CounterFunc("serve.jobs_reaped", s.m.jobsReaped.Load)
	s.reg.CounterFunc("serve.cells_executed", s.m.cellsExecuted.Load)
	s.reg.CounterFunc("serve.cells_cached", s.m.cellsCached.Load)
	s.reg.CounterFunc("serve.cells_resumed", s.m.cellsResumed.Load)
	s.reg.CounterFunc("serve.cache_misses", s.m.cacheMisses.Load)
	s.reg.CounterFunc("serve.cache_evicted", s.cache.evictions)
	s.reg.GaugeFunc("serve.queue_depth", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.queuedTotal)
	})
	s.reg.GaugeFunc("serve.active_jobs", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.activeJobs)
	})
	s.reg.GaugeFunc("serve.inflight_cells", func() float64 {
		return float64(s.inflight.Load())
	})
	s.reg.GaugeFunc("serve.cache_entries", func() float64 {
		return float64(s.cache.len())
	})
}

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /v1/jobs/{id}/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux = mux
}

// Handler returns the daemon's HTTP surface (for embedding or tests);
// Run serves it with lifecycle management.
func (s *Server) Handler() http.Handler { return s.mux }

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error        string `json:"error"`
	Reason       string `json:"reason,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// reject writes one typed admission refusal: 429 (or 503 while
// draining) with a Retry-After header and a structured body naming the
// reason, and bumps the matching counter.
func (s *Server) reject(w http.ResponseWriter, rej rejection, msg string) {
	code := http.StatusTooManyRequests
	switch rej.Reason {
	case ReasonRate:
		s.m.rejRate.Add(1)
	case ReasonQueueFull:
		s.m.rejQueueFull.Add(1)
	case ReasonShed:
		s.m.rejShed.Add(1)
	case ReasonQuotaJobs:
		s.m.rejQuotaJobs.Add(1)
	case ReasonQuotaTicks:
		s.m.rejQuotaTicks.Add(1)
	case ReasonDraining:
		s.m.rejDraining.Add(1)
		code = http.StatusServiceUnavailable
	}
	if rej.RetryAfter > 0 {
		secs := int64(math.Ceil(rej.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	writeJSON(w, code, errorBody{
		Error:        msg,
		Reason:       rej.Reason,
		RetryAfterMS: rej.RetryAfter.Milliseconds(),
	})
}

// admitLocked runs the admission pipeline in order — draining, token
// bucket, bounded queue, priority shedding, tenant quotas — returning
// the first refusal, or nil to admit. Shedding happens here and only
// here: once admitted, a job is never dropped by the daemon.
func (s *Server) admitLocked(spec *JobSpec, now time.Time) *rejection {
	if s.draining {
		return &rejection{Reason: ReasonDraining, RetryAfter: s.cfg.DrainTimeout}
	}
	if ok, retry := s.bucket.take(now); !ok {
		return &rejection{Reason: ReasonRate, RetryAfter: retry}
	}
	if s.queuedTotal >= s.cfg.MaxQueue {
		return &rejection{Reason: ReasonQueueFull, RetryAfter: time.Second}
	}
	load := float64(s.queuedTotal) / float64(s.cfg.MaxQueue)
	if floor := shedFloor(load, s.cfg.ShedStart); spec.Priority < floor {
		return &rejection{Reason: ReasonShed, RetryAfter: time.Second}
	}
	tn := s.tenantLocked(spec.Tenant)
	if tn.queued >= tn.quota.MaxQueuedJobs {
		return &rejection{Reason: ReasonQuotaJobs, RetryAfter: 2 * time.Second}
	}
	if tn.overTickBudget() {
		return &rejection{Reason: ReasonQuotaTicks}
	}
	return nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job spec: " + err.Error()})
		return
	}
	if hdr := r.Header.Get("X-Tenant"); hdr != "" {
		spec.Tenant = hdr
	}
	spec.normalize(s.cfg.Instr, s.cfg.Warmup)
	if err := spec.validate(s.cfg.MaxCellsPerJob); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job spec: " + err.Error()})
		return
	}

	s.mu.Lock()
	now := s.now()
	if rej := s.admitLocked(&spec, now); rej != nil {
		s.mu.Unlock()
		s.reject(w, *rej, "job not admitted: "+rej.Reason)
		return
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("j%06d", s.seq),
		seq:       s.seq,
		tenant:    spec.Tenant,
		spec:      spec,
		state:     StateQueued,
		cells:     spec.cellCount(),
		submitted: now,
		lastBeat:  now,
		stream:    obs.NewStreamServer(),
	}
	if spec.DeadlineMS > 0 {
		j.deadline = now.Add(time.Duration(spec.DeadlineMS) * time.Millisecond)
	}
	// The queued record is the job's durable birth certificate: it is
	// fsync'd before the client hears 202, so an accepted job survives
	// any crash after this point.
	rec := jobRecord{
		Seq: j.seq, ID: j.id, Tenant: j.tenant, State: StateQueued,
		Cells: j.cells, Spec: &j.spec,
	}
	if err := s.journal.append(rec); err != nil {
		s.seq--
		s.mu.Unlock()
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "journal: " + err.Error()})
		return
	}
	tn := s.tenantLocked(j.tenant)
	s.jobs[j.id] = j
	s.queue[j.tenant] = append(s.queue[j.tenant], j)
	tn.queued++
	s.queuedTotal++
	s.m.admitted.Add(1)
	st := j.statusLocked()
	s.mu.Unlock()

	s.publishState(j, st)
	s.kick()
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	s.mu.Lock()
	st := j.statusLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]status, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.statusLocked())
	}
	s.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	writeJSON(w, http.StatusOK, out)
}

// cellExport is one cell of a results document: identity plus the full
// simulation results, with execution bookkeeping (attempts, wall time)
// deliberately excluded so the document is a deterministic function of
// the job spec — byte-identical whether cells ran fresh, from cache, or
// across a crash/restart.
type cellExport struct {
	Key     string        `json:"key"`
	Results camps.Results `json:"results"`
}

// exportDoc is the JSON shape of GET /v1/jobs/{id}/results.
type exportDoc struct {
	ID     string       `json:"id"`
	Tenant string       `json:"tenant"`
	State  string       `json:"state"`
	Reason string       `json:"reason,omitempty"`
	Cells  []cellExport `json:"cells"`
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	s.mu.Lock()
	state, reason := j.state, j.reason
	s.mu.Unlock()
	if !terminalState(state) {
		writeJSON(w, http.StatusConflict, errorBody{Error: "job not finished", Reason: state})
		return
	}
	// Terminal jobs have no writer, so reading the store is safe; its
	// map is re-keyed and sorted so the export order is deterministic.
	st, err := exp.OpenStore(s.cellStorePath(j.id))
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "cell store: " + err.Error()})
		return
	}
	done := st.Done()
	st.Close()
	doc := exportDoc{ID: j.id, Tenant: j.tenant, State: state, Reason: reason, Cells: make([]cellExport, 0, len(done))}
	for _, key := range sortedKeys(done) {
		doc.Cells = append(doc.Cells, cellExport{Key: key, Results: done[key].Results})
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	s.mu.Lock()
	stream := j.stream
	st := j.statusLocked()
	s.mu.Unlock()
	if stream != nil {
		stream.Handler().ServeHTTP(w, r)
		return
	}
	// A terminal job recovered from the journal has no live stream; its
	// history is gone with the old process, but the contract — every
	// subscriber sees a terminal event — still holds.
	payload, _ := json.Marshal(st)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "event: terminal\ndata: %s\n\n", payload)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	s.mu.Lock()
	switch j.state {
	case StateQueued:
		frame := s.finishQueuedLocked(j, StateCancelled, "cancelled by client")
		st := j.statusLocked()
		s.mu.Unlock()
		j.stream.Close(frame)
		writeJSON(w, http.StatusOK, st)
	case StateRunning:
		j.cancelReason = "cancelled by client"
		cancel := j.cancel
		st := j.statusLocked()
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		writeJSON(w, http.StatusAccepted, st)
	default: // already terminal: cancellation is idempotent
		st := j.statusLocked()
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
	}
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	s.mu.Lock()
	j.lastBeat = s.now()
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Snapshot("serve", 0))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	resp := map[string]any{
		"status":   "ok",
		"draining": s.draining,
		"queued":   s.queuedTotal,
		"active":   s.activeJobs,
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// publishState emits one SSE "state" event for the job.
func (s *Server) publishState(j *job, st status) {
	if j.stream == nil {
		return
	}
	payload, _ := json.Marshal(st)
	j.stream.PublishFrame("state", payload)
}
