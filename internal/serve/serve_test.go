package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"camps"
	"camps/internal/exp"
	"camps/internal/sim"
)

// testDaemon is a served Server plus the client plumbing the tests use.
type testDaemon struct {
	t      *testing.T
	s      *Server
	base   string
	client *http.Client
	stop   context.CancelFunc
	done   chan error
}

// startDaemon boots a daemon on a loopback port. fake, when non-nil,
// replaces real cell execution; tweaks run against the Server before it
// starts (the only race-free moment to poke test knobs like reapEvery).
// Cleanup drains the daemon.
func startDaemon(t *testing.T, cfg Config, fake func(ctx context.Context, c exp.Cell, o *exp.Options) (camps.Results, error), tweaks ...func(*Server)) *testDaemon {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 2 * time.Second
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.runCell = fake
	for _, tw := range tweaks {
		tw(s)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := &testDaemon{
		t: t, s: s, base: "http://" + ln.Addr().String(),
		client: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}},
		stop:   cancel, done: make(chan error, 1),
	}
	go func() { d.done <- s.Run(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-d.done:
		case <-time.After(30 * time.Second):
			t.Error("daemon did not drain within 30s")
		}
		d.client.CloseIdleConnections()
	})
	return d
}

// shutdown drains the daemon now (instead of at cleanup) and waits. The
// drain result is pushed back so the cleanup's own wait still succeeds.
func (d *testDaemon) shutdown() {
	d.t.Helper()
	d.stop()
	select {
	case err := <-d.done:
		d.done <- err
	case <-time.After(30 * time.Second):
		d.t.Fatal("daemon did not drain within 30s")
	}
}

// post submits body and returns (status code, response body).
func (d *testDaemon) post(path, body string) (int, []byte) {
	d.t.Helper()
	resp, err := d.client.Post(d.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		d.t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		d.t.Fatal(err)
	}
	return resp.StatusCode, b
}

func (d *testDaemon) get(path string) (int, []byte) {
	d.t.Helper()
	resp, err := d.client.Get(d.base + path)
	if err != nil {
		d.t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		d.t.Fatal(err)
	}
	return resp.StatusCode, b
}

// submit posts a job spec and fails the test unless it is accepted.
func (d *testDaemon) submit(spec string) status {
	d.t.Helper()
	code, body := d.post("/v1/jobs", spec)
	if code != http.StatusAccepted {
		d.t.Fatalf("submit %s: %d %s", spec, code, body)
	}
	var st status
	if err := json.Unmarshal(body, &st); err != nil {
		d.t.Fatal(err)
	}
	return st
}

// await polls a job until it reaches a terminal state.
func (d *testDaemon) await(id string) status {
	d.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st status
		code, body := d.get("/v1/jobs/" + id)
		if code != http.StatusOK {
			d.t.Fatalf("status %s: %d %s", id, code, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			d.t.Fatal(err)
		}
		if terminalState(st.State) {
			return st
		}
		if time.Now().After(deadline) {
			d.t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// results fetches a terminal job's export document.
func (d *testDaemon) results(id string) []byte {
	d.t.Helper()
	code, body := d.get("/v1/jobs/" + id + "/results")
	if code != http.StatusOK {
		d.t.Fatalf("results %s: %d %s", id, code, body)
	}
	return body
}

// instantCell is the standard fake: deterministic results derived from
// the cell identity, 1000 simulated ps per cell.
func instantCell(ctx context.Context, c exp.Cell, o *exp.Options) (camps.Results, error) {
	return camps.Results{GeoMeanIPC: float64(c.Seed), ElapsedSim: sim.Time(1000)}, nil
}

// blockingCell returns a fake that blocks until release is closed (or
// the cell's context is cancelled) and counts executions.
func blockingCell(release <-chan struct{}, executed *atomic.Int64) func(context.Context, exp.Cell, *exp.Options) (camps.Results, error) {
	return func(ctx context.Context, c exp.Cell, o *exp.Options) (camps.Results, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return camps.Results{}, ctx.Err()
		}
		if executed != nil {
			executed.Add(1)
		}
		return instantCell(ctx, c, o)
	}
}

func reason(body []byte) string {
	var eb errorBody
	_ = json.Unmarshal(body, &eb)
	return eb.Reason
}

func TestSubmitValidation(t *testing.T) {
	d := startDaemon(t, Config{}, instantCell)
	cases := []string{
		`{not json`,
		`{"mixes":[],"schemes":["CAMPS-MOD"]}`,
		`{"mixes":["HM1"],"schemes":[]}`,
		`{"mixes":["no-such-mix"],"schemes":["CAMPS-MOD"]}`,
		`{"mixes":["HM1"],"schemes":["no-such-scheme"]}`,
		`{"mixes":["HM1"],"schemes":["CAMPS-MOD"],"priority":12}`,
		`{"mixes":["HM1"],"schemes":["CAMPS-MOD"],"values":[1,2]}`,
		`{"mixes":["HM1"],"schemes":["CAMPS-MOD"],"knob":"no-such-knob","values":[1]}`,
		`{"mixes":["HM1"],"schemes":["CAMPS-MOD"],"faults":"bogus"}`,
		`{"mixes":["HM1"],"schemes":["CAMPS-MOD"],"unknown_field":1}`,
	}
	for _, spec := range cases {
		if code, body := d.post("/v1/jobs", spec); code != http.StatusBadRequest {
			t.Errorf("spec %s: code %d (%s); want 400", spec, code, body)
		}
	}
	if code, body := d.get("/v1/jobs/j999999"); code != http.StatusNotFound {
		t.Errorf("unknown job: %d %s; want 404", code, body)
	}
}

func TestJobLifecycleResultsAndCache(t *testing.T) {
	// The fake switches from instant to blocking partway through the
	// test (for the 409 check) — via an atomic, so no race with workers.
	var blocked atomic.Bool
	release := make(chan struct{})
	fake := func(ctx context.Context, c exp.Cell, o *exp.Options) (camps.Results, error) {
		if blocked.Load() {
			select {
			case <-release:
			case <-ctx.Done():
				return camps.Results{}, ctx.Err()
			}
		}
		return instantCell(ctx, c, o)
	}
	d := startDaemon(t, Config{}, fake)
	spec := `{"tenant":"t1","mixes":["HM1","HM2"],"schemes":["CAMPS-MOD"],"seeds":[1,2]}`

	st := d.submit(spec)
	if st.State != StateQueued || st.Cells != 4 {
		t.Fatalf("submitted status %+v", st)
	}
	fin := d.await(st.ID)
	if fin.State != StateDone || fin.CellsDone != 4 || fin.Cached != 0 {
		t.Fatalf("first run finished %+v", fin)
	}
	if fin.TicksUsed != 4000 {
		t.Fatalf("ticks used %d; want 4000", fin.TicksUsed)
	}
	doc1 := d.results(st.ID)
	var parsed exportDoc
	if err := json.Unmarshal(doc1, &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.Cells) != 4 {
		t.Fatalf("export has %d cells; want 4", len(parsed.Cells))
	}
	for i := 1; i < len(parsed.Cells); i++ {
		if parsed.Cells[i-1].Key >= parsed.Cells[i].Key {
			t.Fatalf("export not sorted: %q before %q", parsed.Cells[i-1].Key, parsed.Cells[i].Key)
		}
	}

	// An identical spec must be served entirely from the result cache,
	// with a byte-identical cells array.
	st2 := d.submit(spec)
	fin2 := d.await(st2.ID)
	if fin2.State != StateDone || fin2.Cached != 4 {
		t.Fatalf("cached rerun finished %+v", fin2)
	}
	if fin2.TicksUsed != 0 {
		t.Fatalf("cached rerun charged %d ticks; want 0", fin2.TicksUsed)
	}
	stripID := func(doc []byte, id string) []byte {
		return bytes.ReplaceAll(doc, []byte(id), []byte("JOB"))
	}
	if got, want := stripID(d.results(st2.ID), st2.ID), stripID(doc1, st.ID); !bytes.Equal(got, want) {
		t.Fatalf("cache hit changed the export:\n%s\nvs\n%s", got, want)
	}

	// Results of a non-terminal job are a 409, not a partial read.
	blocked.Store(true)
	st3 := d.submit(`{"mixes":["HM3"],"schemes":["CAMPS-MOD"]}`)
	waitState(t, d, st3.ID, StateRunning)
	if code, _ := d.get("/v1/jobs/" + st3.ID + "/results"); code != http.StatusConflict {
		t.Fatalf("results of running job: %d; want 409", code)
	}
	close(release)
	d.await(st3.ID)

	// Metrics surface the serve.* namespace.
	code, body := d.get("/v1/metrics")
	if code != http.StatusOK || !bytes.Contains(body, []byte("serve.admitted")) {
		t.Fatalf("metrics: %d %s", code, body)
	}
}

// waitState polls until the job reports the wanted (non-terminal) state.
func waitState(t *testing.T, d *testDaemon, id, want string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st status
		_, body := d.get("/v1/jobs/" + id)
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return
		}
		if terminalState(st.State) || time.Now().After(deadline) {
			t.Fatalf("job %s in %s; want %s", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestAdmissionRateLimit(t *testing.T) {
	d := startDaemon(t, Config{RatePerSec: 0.0001, Burst: 2}, instantCell)
	spec := `{"mixes":["HM1"],"schemes":["CAMPS-MOD"]}`
	d.submit(spec)
	d.submit(spec)
	code, body := d.post("/v1/jobs", spec)
	if code != http.StatusTooManyRequests || reason(body) != ReasonRate {
		t.Fatalf("over-rate submit: %d %s; want 429 rate", code, body)
	}
}

func TestQueueFullAndShedding(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	d := startDaemon(t, Config{
		MaxActiveJobs: 1, MaxQueue: 10, ShedStart: 0.2,
		DefaultQuota: Quota{MaxQueuedJobs: 100},
	}, blockingCell(release, nil))
	spec := func(prio int) string {
		return fmt.Sprintf(`{"priority":%d,"mixes":["HM1"],"schemes":["CAMPS-MOD"]}`, prio)
	}
	running := d.submit(spec(9))
	waitState(t, d, running.ID, StateRunning) // occupies the only job slot
	for i := 0; i < 5; i++ {
		d.submit(spec(9)) // queue depth 5 of 10: load 0.5
	}
	// floor = ceil((0.5-0.2)/0.8*10) = 4: priority 3 is shed, 4 passes.
	code, body := d.post("/v1/jobs", spec(3))
	if code != http.StatusTooManyRequests || reason(body) != ReasonShed {
		t.Fatalf("low-priority submit under load: %d %s; want 429 shed", code, body)
	}
	for i := 0; i < 5; i++ {
		d.submit(spec(9)) // fill the queue to its bound
	}
	code, body = d.post("/v1/jobs", spec(9))
	if code != http.StatusTooManyRequests || reason(body) != ReasonQueueFull {
		t.Fatalf("submit past queue bound: %d %s; want 429 queue_full", code, body)
	}
	if h := code; h == http.StatusTooManyRequests {
		// Retry-After accompanies every 429.
		resp, err := d.client.Post(d.base+"/v1/jobs", "application/json", strings.NewReader(spec(9)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After header")
		}
	}
}

func TestTenantQuotas(t *testing.T) {
	release := make(chan struct{})
	d := startDaemon(t, Config{
		MaxActiveJobs: 1,
		Tenants:       map[string]Quota{"small": {MaxQueuedJobs: 2}},
	}, blockingCell(release, nil))
	spec := `{"tenant":"small","mixes":["HM1"],"schemes":["CAMPS-MOD"]}`
	first := d.submit(spec)
	waitState(t, d, first.ID, StateRunning)
	d.submit(spec)
	d.submit(spec)
	code, body := d.post("/v1/jobs", spec)
	if code != http.StatusTooManyRequests || reason(body) != ReasonQuotaJobs {
		t.Fatalf("submit past queued-job quota: %d %s; want 429 quota_jobs", code, body)
	}
	// Another tenant is unaffected: quotas are per tenant.
	if code, body := d.post("/v1/jobs", `{"tenant":"big","mixes":["HM1"],"schemes":["CAMPS-MOD"]}`); code != http.StatusAccepted {
		t.Fatalf("other tenant rejected: %d %s", code, body)
	}
	close(release)
}

func TestTickBudgetEnforcedAndPersisted(t *testing.T) {
	dir := t.TempDir()
	// Each fake cell simulates 1000ps; the budget admits two 1-cell jobs
	// (the check is at admission, against ticks already spent).
	cfg := Config{DataDir: dir, DefaultQuota: Quota{TickBudget: 1500}}
	d := startDaemon(t, cfg, instantCell)
	spec := `{"tenant":"metered","mixes":["HM1"],"schemes":["CAMPS-MOD"]}`
	d.await(d.submit(spec).ID)                                                           // 1000 ticks spent
	d.await(d.submit(`{"tenant":"metered","mixes":["HM2"],"schemes":["CAMPS-MOD"]}`).ID) // 2000
	code, body := d.post("/v1/jobs", spec)
	if code != http.StatusTooManyRequests || reason(body) != ReasonQuotaTicks {
		t.Fatalf("submit past tick budget: %d %s; want 429 quota_ticks", code, body)
	}
	d.shutdown()

	// Spent ticks are journaled with the terminal records, so the budget
	// survives a daemon restart.
	d2 := startDaemon(t, cfg, instantCell)
	code, body = d2.post("/v1/jobs", spec)
	if code != http.StatusTooManyRequests || reason(body) != ReasonQuotaTicks {
		t.Fatalf("submit past tick budget after restart: %d %s; want 429 quota_ticks", code, body)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	d := startDaemon(t, Config{MaxActiveJobs: 1}, blockingCell(release, nil))
	spec := `{"mixes":["HM1"],"schemes":["CAMPS-MOD"]}`
	running := d.submit(spec)
	waitState(t, d, running.ID, StateRunning)
	queued := d.submit(spec)

	code, body := d.post("/v1/jobs/"+queued.ID+"/cancel", "")
	if code != http.StatusOK {
		t.Fatalf("cancel queued: %d %s", code, body)
	}
	if st := d.await(queued.ID); st.State != StateCancelled {
		t.Fatalf("queued job after cancel: %+v", st)
	}

	code, body = d.post("/v1/jobs/"+running.ID+"/cancel", "")
	if code != http.StatusAccepted {
		t.Fatalf("cancel running: %d %s", code, body)
	}
	st := d.await(running.ID)
	if st.State != StateCancelled || !strings.Contains(st.Reason, "client") {
		t.Fatalf("running job after cancel: %+v", st)
	}
	// Cancellation is idempotent.
	if code, _ := d.post("/v1/jobs/"+running.ID+"/cancel", ""); code != http.StatusOK {
		t.Fatalf("re-cancel: %d; want 200", code)
	}
}

func TestHeartbeatReaping(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	d := startDaemon(t, Config{}, blockingCell(release, nil),
		func(s *Server) { s.reapEvery = 10 * time.Millisecond })

	// A job demanding heartbeats, whose client never sends one, is
	// reaped once three beat intervals lapse.
	st := d.submit(`{"heartbeat_ms":20,"mixes":["HM1"],"schemes":["CAMPS-MOD"]}`)
	fin := d.await(st.ID)
	if fin.State != StateCancelled || !strings.Contains(fin.Reason, "heartbeat") {
		t.Fatalf("abandoned job ended %+v; want cancelled for lost heartbeat", fin)
	}

	// A job whose client beats stays alive well past the grace window.
	st2 := d.submit(`{"heartbeat_ms":20,"mixes":["HM2"],"schemes":["CAMPS-MOD"]}`)
	for i := 0; i < 10; i++ {
		time.Sleep(20 * time.Millisecond)
		if code, _ := d.post("/v1/jobs/"+st2.ID+"/heartbeat", ""); code != http.StatusNoContent {
			t.Fatalf("heartbeat: code %d", code)
		}
	}
	var cur status
	_, body := d.get("/v1/jobs/" + st2.ID)
	if err := json.Unmarshal(body, &cur); err != nil {
		t.Fatal(err)
	}
	if terminalState(cur.State) {
		t.Fatalf("heartbeating job was reaped: %+v", cur)
	}
}

func TestJobDeadline(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	d := startDaemon(t, Config{}, blockingCell(release, nil))
	st := d.submit(`{"deadline_ms":60,"mixes":["HM1"],"schemes":["CAMPS-MOD"]}`)
	fin := d.await(st.ID)
	if fin.State != StateFailed || !strings.Contains(fin.Reason, "deadline") {
		t.Fatalf("deadlined job ended %+v; want failed (deadline)", fin)
	}
}

// sseEvents reads SSE frames from the stream until EOF and returns the
// event names in order.
func sseEvents(t *testing.T, r io.Reader) []string {
	t.Helper()
	var events []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			events = append(events, name)
		}
	}
	return events
}

// TestDrainCheckpointAndResume exercises the graceful-drain contract:
// SIGTERM (context cancellation) stops admission, in-flight work past
// the drain deadline is checkpointed — not lost, not marked terminal —
// every SSE subscriber gets a terminal event, and a new daemon on the
// same data dir resumes the job without re-running completed cells.
func TestDrainCheckpointAndResume(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	var executed atomic.Int64
	// The first two cells complete instantly; the rest block, pinning the
	// job mid-campaign. Workers=1 serializes so exactly two finish.
	var calls atomic.Int64
	fake := func(ctx context.Context, c exp.Cell, o *exp.Options) (camps.Results, error) {
		if calls.Add(1) > 2 {
			select {
			case <-release:
			case <-ctx.Done():
				return camps.Results{}, ctx.Err()
			}
		}
		executed.Add(1)
		return instantCell(ctx, c, o)
	}
	d := startDaemon(t, Config{DataDir: dir, Workers: 1, DrainTimeout: 100 * time.Millisecond}, fake)

	st := d.submit(`{"mixes":["HM1","HM2","HM3","HM4"],"schemes":["CAMPS-MOD"]}`)

	// Subscribe to the job's SSE stream before draining.
	resp, err := d.client.Get(d.base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	streamDone := make(chan []string, 1)
	go func() { streamDone <- sseEvents(t, resp.Body) }()

	// Wait until the two instant cells have landed.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur status
		_, body := d.get("/v1/jobs/" + st.ID)
		if err := json.Unmarshal(body, &cur); err != nil {
			t.Fatal(err)
		}
		if cur.CellsDone >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never completed its first two cells: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Drain. The blocked cells outlive the 100ms drain budget, so the
	// daemon cancels them and leaves the job checkpointed.
	d.shutdown()

	select {
	case events := <-streamDone:
		found := false
		for _, e := range events {
			if e == "terminal" {
				found = true
			}
		}
		if !found {
			t.Fatalf("SSE subscriber finished without a terminal event: %v", events)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream not flushed by drain")
	}

	// The journal must still carry the job as non-terminal (running), so
	// the next daemon re-queues it.
	jn, err := openJournal(dir + "/jobs.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	recs := jn.records()
	jn.close()
	if len(recs) != 1 || terminalState(recs[0].State) {
		t.Fatalf("journal after drain: %+v; want one non-terminal record", recs)
	}

	// A new daemon on the same dir resumes: the two completed cells come
	// from the checkpoint store, only the remaining two execute.
	already := executed.Load()
	close(release)
	d2 := startDaemon(t, Config{DataDir: dir, Workers: 1}, instantCell)
	fin := d2.await(st.ID)
	if fin.State != StateDone || fin.CellsDone != 4 {
		t.Fatalf("resumed job finished %+v", fin)
	}
	var doc exportDoc
	if err := json.Unmarshal(d2.results(st.ID), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Cells) != 4 {
		t.Fatalf("resumed export has %d cells; want 4", len(doc.Cells))
	}
	if already != 2 {
		t.Fatalf("pre-drain process executed %d cells; want 2", already)
	}
}

// TestDrainingRejectsSubmissions verifies the admission side of drain.
func TestDrainingRejectsSubmissions(t *testing.T) {
	d := startDaemon(t, Config{}, instantCell)
	d.s.mu.Lock()
	d.s.draining = true
	d.s.mu.Unlock()
	code, body := d.post("/v1/jobs", `{"mixes":["HM1"],"schemes":["CAMPS-MOD"]}`)
	if code != http.StatusServiceUnavailable || reason(body) != ReasonDraining {
		t.Fatalf("submit while draining: %d %s; want 503 draining", code, body)
	}
	d.s.mu.Lock()
	d.s.draining = false
	d.s.mu.Unlock()
}
