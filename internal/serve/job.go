// Package serve is the robustness layer that turns the camps simulation
// library into a long-running, multi-tenant simulation-as-a-service
// daemon (cmd/campserve). It accepts campaign jobs over HTTP, runs them
// on the internal/exp worker pool, and wraps every request path in the
// machinery a shared simulator needs to survive production traffic:
//
//   - token-bucket admission control with typed 429/Retry-After
//     rejections and a bounded wait queue;
//   - per-tenant quotas (in-flight cells, queued jobs, cumulative
//     simulated-tick budget) with fair-share scheduling across tenants;
//   - priority-aware load shedding driven by queue depth — work is shed
//     at the admission boundary only, never after acceptance;
//   - per-job deadlines, client cancellation, and heartbeat-based
//     abandonment reaping;
//   - a deterministic result cache keyed by the full cell identity
//     (system config, mix, scheme, seed, knob, faults, run lengths), so
//     repeated cells are served without simulating — sound because CAMPS
//     results are pure functions of that tuple;
//   - crash-safe persistence: every job transitions through an fsync'd
//     JSONL journal and every completed cell lands in an fsync'd
//     per-job checkpoint store, so a SIGKILL'd daemon restarts, repairs
//     both, resumes in-flight campaigns where they stopped, and
//     re-reports previously-streamed results idempotently;
//   - graceful drain on SIGTERM: stop admitting, finish or checkpoint
//     in-flight cells within a drain deadline, and flush every SSE
//     subscriber with a terminal event.
//
// See docs/SERVING.md for the HTTP API and the job-spec grammar.
package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"camps"
	"camps/internal/exp"
	"camps/internal/obs"
)

// Job states. A job is born queued, runs at most once at a time, and
// ends in exactly one of the terminal states. A daemon crash can leave
// a job in StateQueued or StateRunning; recovery re-queues both (the
// per-job checkpoint store makes re-running cheap and exact).
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"      // terminal: every cell completed
	StateFailed    = "failed"    // terminal: a cell failed, or the deadline passed
	StateCancelled = "cancelled" // terminal: client cancel, or heartbeat reaping
)

// terminalState reports whether state is one a job never leaves.
func terminalState(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// JobSpec is the client-submitted description of one campaign: the
// cross product of mixes × schemes × seeds (× knob values, when a knob
// sweep is requested), simulated with the given run lengths and fault
// environment. The zero values of the optional fields inherit the
// daemon's defaults.
type JobSpec struct {
	// Tenant names the submitting tenant; the X-Tenant header overrides
	// it, and an empty value falls back to "anon".
	Tenant string `json:"tenant,omitempty"`
	// Priority (1 lowest .. 9 highest; 0/absent selects the default 4)
	// orders load shedding: as the wait queue fills up, lower-priority
	// submissions are shed first.
	Priority int `json:"priority,omitempty"`
	// Mixes and Schemes are crossed to enumerate cells. Both accept any
	// registered name (Table II and extension mixes; every engine in the
	// prefetch registry).
	Mixes   []string `json:"mixes"`
	Schemes []string `json:"schemes"`
	// Seeds decorrelate synthetic traces (default [1]; 0 normalizes to 1).
	Seeds []uint64 `json:"seeds,omitempty"`
	// Knob/Values request a configuration sweep: every cell is further
	// crossed with each value of the named knob (see exp.Knobs).
	Knob   string  `json:"knob,omitempty"`
	Values []int64 `json:"values,omitempty"`
	// Instr and Warmup scale each cell's simulation (0 = daemon default).
	Instr  uint64 `json:"instr,omitempty"`
	Warmup uint64 `json:"warmup,omitempty"`
	// Faults is a deterministic fault-injection spec in the -faults
	// grammar ("" = fault-free).
	Faults string `json:"faults,omitempty"`
	// Check arms the epoch invariant checker in every cell.
	Check bool `json:"check,omitempty"`
	// DeadlineMS bounds the job's wall-clock life from submission;
	// a job that exceeds it fails with reason "deadline" (0 = none).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// HeartbeatMS, when >0, requires the client to POST
	// /v1/jobs/{id}/heartbeat at least every 3×HeartbeatMS; a job whose
	// client goes silent is reaped (cancelled), freeing its resources.
	HeartbeatMS int64 `json:"heartbeat_ms,omitempty"`
	// StreamEpochs forwards every cell's obs epoch snapshots to the
	// job's SSE stream (off by default: a large campaign generates many
	// thousands of epoch frames).
	StreamEpochs bool `json:"stream_epochs,omitempty"`
}

// normalize fills spec defaults in place. Called once at admission so
// the journaled spec is self-contained.
func (spec *JobSpec) normalize(defInstr, defWarmup uint64) {
	if spec.Tenant == "" {
		spec.Tenant = "anon"
	}
	if spec.Priority == 0 {
		spec.Priority = defaultPriority
	}
	if len(spec.Seeds) == 0 {
		spec.Seeds = []uint64{1}
	}
	for i, s := range spec.Seeds {
		if s == 0 {
			spec.Seeds[i] = 1
		}
	}
	if spec.Instr == 0 {
		spec.Instr = defInstr
	}
	if spec.Warmup == 0 {
		spec.Warmup = defWarmup
	}
}

// defaultPriority sits mid-scale so both directions of the shed policy
// are reachable without setting the field.
const defaultPriority = 4

// validate checks the spec against the registries and limits, returning
// a client-facing error. maxCells bounds the expanded campaign size.
func (spec *JobSpec) validate(maxCells int) error {
	if spec.Priority < 0 || spec.Priority > 9 {
		return fmt.Errorf("priority %d out of range [0,9]", spec.Priority)
	}
	if len(spec.Mixes) == 0 {
		return errors.New("spec needs at least one mix")
	}
	if len(spec.Schemes) == 0 {
		return errors.New("spec needs at least one scheme")
	}
	for _, id := range spec.Mixes {
		if _, err := camps.AnyMixByID(id); err != nil {
			return fmt.Errorf("mix %q: %w", id, err)
		}
	}
	for _, name := range spec.Schemes {
		if _, err := camps.ParseScheme(name); err != nil {
			return fmt.Errorf("scheme %q: %w", name, err)
		}
	}
	if spec.Knob != "" {
		if _, ok := exp.LookupKnob(spec.Knob); !ok {
			return fmt.Errorf("unknown knob %q", spec.Knob)
		}
		if len(spec.Values) == 0 {
			return errors.New("knob sweep needs values")
		}
	} else if len(spec.Values) != 0 {
		return errors.New("values without a knob")
	}
	if spec.Faults != "" {
		if _, err := camps.ParseFaultSpec(spec.Faults); err != nil {
			return fmt.Errorf("faults: %w", err)
		}
	}
	if spec.DeadlineMS < 0 || spec.HeartbeatMS < 0 {
		return errors.New("deadline_ms and heartbeat_ms must be non-negative")
	}
	if n := spec.cellCount(); n > maxCells {
		return fmt.Errorf("campaign expands to %d cells, above the per-job limit %d", n, maxCells)
	}
	return nil
}

// cellCount is the size of the expanded campaign.
func (spec *JobSpec) cellCount() int {
	n := len(spec.Mixes) * len(spec.Schemes) * len(spec.Seeds)
	if spec.Knob != "" {
		n *= len(spec.Values)
	}
	return n
}

// cells expands the spec into exp cells in deterministic enumeration
// order (seed-major, then mix, scheme, value — matching exp.Grid). The
// spec must already be validated; expansion errors are impossible then.
func (spec *JobSpec) cells() ([]exp.Cell, error) {
	var knob exp.Knob
	values := []int64{0}
	if spec.Knob != "" {
		k, ok := exp.LookupKnob(spec.Knob)
		if !ok {
			return nil, fmt.Errorf("unknown knob %q", spec.Knob)
		}
		knob, values = k, spec.Values
	}
	cells := make([]exp.Cell, 0, spec.cellCount())
	for _, seed := range spec.Seeds {
		for _, mixID := range spec.Mixes {
			mix, err := camps.AnyMixByID(mixID)
			if err != nil {
				return nil, err
			}
			for _, schemeName := range spec.Schemes {
				scheme, err := camps.ParseScheme(schemeName)
				if err != nil {
					return nil, err
				}
				for _, v := range values {
					c := exp.Cell{Mix: mix, Scheme: scheme, Seed: seed}
					if spec.Knob != "" {
						v := v
						c.Knob, c.Value = spec.Knob, v
						c.Apply = func(sys *camps.SystemConfig) { knob.Apply(sys, v) }
					}
					cells = append(cells, c)
				}
			}
		}
	}
	return cells, nil
}

// job is the server-side state of one campaign. Fields are guarded by
// the server mutex unless noted.
type job struct {
	id     string
	seq    uint64
	tenant string
	spec   JobSpec

	state  string
	reason string // human-readable cause for failed/cancelled

	cells     int   // expanded campaign size
	cellsDone int   // completed cells (resumed + cached + executed)
	cached    int   // cells served from the result cache
	ticks     int64 // cumulative simulated picoseconds charged to the tenant

	submitted time.Time
	lastBeat  time.Time // last heartbeat (or submission)
	deadline  time.Time // zero when the spec set no deadline

	// cancel tears down the running job's context; nil unless running.
	cancel       context.CancelFunc
	cancelReason string // set before cancel() so the runner can attribute the stop

	// stream fans job events (state transitions, per-cell completions,
	// optional epochs) out to SSE subscribers. Created at admission;
	// nil for jobs recovered into a terminal state, whose events
	// handler synthesizes a terminal-only stream.
	stream *obs.StreamServer
}

// status is the JSON shape of GET /v1/jobs/{id} (and of SSE "state"
// events' job summary).
type status struct {
	ID        string `json:"id"`
	Tenant    string `json:"tenant"`
	State     string `json:"state"`
	Reason    string `json:"reason,omitempty"`
	Cells     int    `json:"cells"`
	CellsDone int    `json:"cells_done"`
	Cached    int    `json:"cached"`
	TicksUsed int64  `json:"ticks_used"`
}

// statusLocked snapshots the job; the server mutex must be held.
func (j *job) statusLocked() status {
	return status{
		ID: j.id, Tenant: j.tenant, State: j.state, Reason: j.reason,
		Cells: j.cells, CellsDone: j.cellsDone, Cached: j.cached,
		TicksUsed: j.ticks,
	}
}
