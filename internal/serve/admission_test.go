package serve

import (
	"testing"
	"time"
)

// The token bucket is driven by an injected clock, so its behavior is a
// pure function of the call sequence.
func TestTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newTokenBucket(2, 3, now) // 2 tokens/s, burst 3

	for i := 0; i < 3; i++ {
		if ok, _ := b.take(now); !ok {
			t.Fatalf("take %d within burst refused", i)
		}
	}
	ok, retry := b.take(now)
	if ok {
		t.Fatal("take beyond burst admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry hint %v; want (0, 1s] at 2 tokens/s", retry)
	}

	// Half a second accrues one token at rate 2.
	now = now.Add(500 * time.Millisecond)
	if ok, _ := b.take(now); !ok {
		t.Fatal("token accrued over 500ms not granted")
	}
	if ok, _ := b.take(now); ok {
		t.Fatal("second token granted after only one accrued")
	}

	// A long idle period caps accrual at the burst.
	now = now.Add(time.Hour)
	granted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := b.take(now); ok {
			granted++
		}
	}
	if granted != 3 {
		t.Fatalf("after long idle granted %d tokens; want burst 3", granted)
	}
}

func TestShedFloor(t *testing.T) {
	cases := []struct {
		load, start float64
		want        int
	}{
		{0, 0.5, 0},    // idle: admit everything
		{0.5, 0.5, 0},  // at the threshold: still open
		{0.55, 0.5, 1}, // just above: shed only priority 0 (i.e. nothing real; min real is 1)
		{0.75, 0.5, 5}, // halfway up: floor mid-scale
		{0.95, 0.5, 9}, // nearly full: only the top priority passes
		{1.0, 0.5, 10}, // full: floor passes the scale (queue_full fires first anyway)
		{0.99, 1.0, 0}, // shedStart >= 1 disables shedding
		{0.2, 0.5, 0},  // below threshold
	}
	for _, c := range cases {
		if got := shedFloor(c.load, c.start); got != c.want {
			t.Errorf("shedFloor(%v, %v) = %d; want %d", c.load, c.start, got, c.want)
		}
	}
}

func TestQuotaDefaults(t *testing.T) {
	def := Quota{MaxInFlightCells: 8, MaxQueuedJobs: 16, TickBudget: 100}
	q := Quota{MaxQueuedJobs: 2}.withDefaults(def)
	if q.MaxInFlightCells != 8 || q.MaxQueuedJobs != 2 || q.TickBudget != 100 {
		t.Fatalf("withDefaults = %+v", q)
	}
	tn := &tenant{quota: Quota{TickBudget: 50}, ticks: 49}
	if tn.overTickBudget() {
		t.Fatal("under budget reported over")
	}
	tn.ticks = 50
	if !tn.overTickBudget() {
		t.Fatal("at budget not reported over")
	}
	tn.quota.TickBudget = 0
	if tn.overTickBudget() {
		t.Fatal("unlimited budget reported over")
	}
}
