package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"camps"
	"camps/internal/exp"
	"camps/internal/sim"
)

// TestSoak storms the daemon with thousands of concurrent small jobs
// from multiple tenants and then audits every robustness claim at once:
//
//   - every submission either lands a 202 or a typed 429 — the
//     admitted/rejected metrics reconcile exactly with what the clients
//     observed (no silently dropped work);
//   - every admitted job finishes done, with exactly its one cell's
//     correct result in the export (zero lost, zero duplicated);
//   - the per-tenant in-flight cell quota is never exceeded, measured
//     inside the execution path itself;
//   - a resubmitted spec is served from the result cache with a
//     byte-identical results document;
//   - the journal, reopened after drain, holds every job in a terminal
//     state.
//
// Run under -race (the CI serve step does), this doubles as the data
// race audit of the whole admission/dispatch/journal/stream machinery.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	const (
		tenants      = 3
		jobsPerTen   = 700 // 2100 total, ≥ the 2000 the acceptance bar asks for
		inflightCap  = 4
		ticksPerCell = 1000
	)

	// Per-tenant in-flight accounting, maintained inside the fake cell
	// runner. The tenant is recovered from the seed (tenant i uses seeds
	// in [i*1e6, i*1e6+jobsPerTen)).
	var inflight, peak [tenants]atomic.Int64
	fake := func(ctx context.Context, c exp.Cell, o *exp.Options) (camps.Results, error) {
		ten := int(c.Seed / 1_000_000)
		if ten >= 0 && ten < tenants {
			n := inflight[ten].Add(1)
			for {
				p := peak[ten].Load()
				if n <= p || peak[ten].CompareAndSwap(p, n) {
					break
				}
			}
			defer inflight[ten].Add(-1)
		}
		time.Sleep(200 * time.Microsecond) // force real overlap
		return camps.Results{GeoMeanIPC: float64(c.Seed), ElapsedSim: sim.Time(ticksPerCell)}, nil
	}

	dir := t.TempDir()
	d := startDaemon(t, Config{
		DataDir:       dir,
		Workers:       16,
		MaxActiveJobs: 32,
		MaxQueue:      64,
		RatePerSec:    1e6, // rate limiting is covered elsewhere; here the queues do the pushback
		Burst:         1 << 20,
		DefaultQuota:  Quota{MaxInFlightCells: inflightCap, MaxQueuedJobs: 8},
	}, fake)

	var rejected atomic.Int64
	var mu sync.Mutex
	ids := make(map[string]uint64) // job id -> seed
	errs := make(chan error, tenants*8)

	var wg sync.WaitGroup
	for ten := 0; ten < tenants; ten++ {
		const submitters = 8
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func(ten, g int) {
				defer wg.Done()
				for i := g; i < jobsPerTen; i += submitters {
					// +1 keeps seed 0 out of play (the spec normalizes 0 to 1).
					seed := uint64(ten)*1_000_000 + uint64(i) + 1
					spec := fmt.Sprintf(`{"tenant":"t%d","mixes":["HM1"],"schemes":["CAMPS-MOD"],"seeds":[%d]}`, ten, seed)
					id, nrej, err := submitWithRetry(d, spec)
					if err != nil {
						errs <- err
						return
					}
					rejected.Add(nrej)
					mu.Lock()
					ids[id] = seed
					mu.Unlock()
				}
			}(ten, g)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	total := tenants * jobsPerTen
	if len(ids) != total {
		t.Fatalf("submitted %d unique jobs; want %d", len(ids), total)
	}

	// Wait for the storm to finish, then audit every job's result.
	waitErrs := make(chan error, total)
	sem := make(chan struct{}, 32)
	var awaitWG sync.WaitGroup
	for id, seed := range ids {
		awaitWG.Add(1)
		go func(id string, seed uint64) {
			defer awaitWG.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			waitErrs <- auditJob(d, id, seed)
		}(id, seed)
	}
	awaitWG.Wait()
	close(waitErrs)
	for err := range waitErrs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Quota audit: execution-path concurrency never exceeded the cap.
	for ten := 0; ten < tenants; ten++ {
		if p := peak[ten].Load(); p > inflightCap {
			t.Errorf("tenant %d reached %d in-flight cells; quota is %d", ten, p, inflightCap)
		}
		if p := peak[ten].Load(); p == 0 {
			t.Errorf("tenant %d never executed a cell", ten)
		}
	}

	// Accounting identity: every submission is either admitted or
	// rejected with a typed reason — nothing vanishes.
	admitted := d.s.m.admitted.Load()
	rej := d.s.m.rejRate.Load() + d.s.m.rejQueueFull.Load() + d.s.m.rejShed.Load() +
		d.s.m.rejQuotaJobs.Load() + d.s.m.rejQuotaTicks.Load() + d.s.m.rejDraining.Load()
	if admitted != uint64(total) {
		t.Errorf("admitted metric %d; want %d", admitted, total)
	}
	if rej != uint64(rejected.Load()) {
		t.Errorf("rejection metrics %d; clients saw %d typed 429s", rej, rejected.Load())
	}
	if rejected.Load() == 0 {
		t.Log("note: storm completed without backpressure; queue bounds untested this run")
	}

	// Cache audit: a spec resubmitted after the storm is served from
	// cache, byte-identical to its fresh run.
	// A seed outside every storm tenant's range, so the first probe is
	// genuinely fresh.
	cacheSpec := fmt.Sprintf(`{"tenant":"t0","mixes":["HM1"],"schemes":["CAMPS-MOD"],"seeds":[%d]}`, uint64(9_999_999))
	fresh := d.submit(cacheSpec)
	if fin := d.await(fresh.ID); fin.State != StateDone || fin.Cached != 0 {
		t.Fatalf("fresh cache-probe job: %+v", fin)
	}
	hit := d.submit(cacheSpec)
	if fin := d.await(hit.ID); fin.State != StateDone || fin.Cached != 1 {
		t.Fatalf("resubmitted cache-probe job: %+v; want 1 cached cell", fin)
	}
	a := exportCells(t, d.results(fresh.ID))
	b := exportCells(t, d.results(hit.ID))
	if !bytes.Equal(a, b) {
		t.Fatalf("cache hit differs from fresh run:\n%s\nvs\n%s", a, b)
	}

	// Durability audit: after drain, the journal holds every job,
	// terminal, exactly once.
	d.shutdown()
	jn, err := openJournal(filepath.Join(dir, "jobs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	recs := jn.records()
	jn.close()
	if len(recs) != total+2 {
		t.Fatalf("journal holds %d jobs; want %d", len(recs), total+2)
	}
	for _, rec := range recs {
		if rec.State != StateDone {
			t.Fatalf("journal job %s in state %s after clean drain", rec.ID, rec.State)
		}
	}
}

// submitWithRetry posts spec until it is admitted, tolerating (and
// counting) typed 429 backpressure. Any other refusal is an error.
func submitWithRetry(d *testDaemon, spec string) (id string, rejections int64, err error) {
	deadline := time.Now().Add(120 * time.Second)
	backoff := 200 * time.Microsecond
	for {
		resp, err := d.client.Post(d.base+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			return "", rejections, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var st status
			if err := json.Unmarshal(body, &st); err != nil {
				return "", rejections, err
			}
			return st.ID, rejections, nil
		case http.StatusTooManyRequests:
			switch reason(body) {
			case ReasonRate, ReasonQueueFull, ReasonShed, ReasonQuotaJobs:
				rejections++
			default:
				return "", rejections, fmt.Errorf("429 with unexpected reason: %s", body)
			}
			if time.Now().After(deadline) {
				return "", rejections, fmt.Errorf("still rejected after 120s: %s", body)
			}
			time.Sleep(backoff)
			if backoff < 10*time.Millisecond {
				backoff *= 2
			}
		default:
			return "", rejections, fmt.Errorf("submit: %d %s", resp.StatusCode, body)
		}
	}
}

// auditJob waits for one soak job and verifies its export: done, one
// cell, the fake runner's deterministic result.
func auditJob(d *testDaemon, id string, seed uint64) error {
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := d.client.Get(d.base + "/v1/jobs/" + id)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st status
		if err := json.Unmarshal(body, &st); err != nil {
			return fmt.Errorf("job %s: %w (%s)", id, err, body)
		}
		if terminalState(st.State) {
			if st.State != StateDone || st.CellsDone != 1 {
				return fmt.Errorf("job %s ended %+v; want done with 1 cell", id, st)
			}
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := d.client.Get(d.base + "/v1/jobs/" + id + "/results")
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("results %s: %d %s", id, resp.StatusCode, body)
	}
	var doc exportDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		return err
	}
	if len(doc.Cells) != 1 {
		return fmt.Errorf("job %s exported %d cells; want exactly 1", id, len(doc.Cells))
	}
	wantKey := exp.Cell{Mix: mustMix("HM1"), Scheme: mustScheme("CAMPS-MOD"), Seed: seed}.Key()
	if doc.Cells[0].Key != wantKey {
		return fmt.Errorf("job %s exported cell %q; want %q", id, doc.Cells[0].Key, wantKey)
	}
	if got := doc.Cells[0].Results.GeoMeanIPC; got != float64(seed) {
		return fmt.Errorf("job %s result %v; want %v (lost or crossed results)", id, got, float64(seed))
	}
	return nil
}

func mustMix(id string) (m workloadMix) {
	m, err := camps.AnyMixByID(id)
	if err != nil {
		panic(err)
	}
	return m
}

func mustScheme(name string) camps.Scheme {
	s, err := camps.ParseScheme(name)
	if err != nil {
		panic(err)
	}
	return s
}

// workloadMix aliases the mix type without importing workload here.
type workloadMix = camps.Mix
